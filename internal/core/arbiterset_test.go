package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestArbiterSetGetCreatesOnceAndSorts(t *testing.T) {
	s := NewArbiterSet(FCFSPolicy{})
	s.SetIndexed(true)
	s.SetLogBound(4)
	b := s.Get("b")
	a := s.Get("a")
	def := s.Get("")
	if s.Get("b") != b || s.Get("a") != a || s.Get("") != def {
		t.Fatal("Get not idempotent")
	}
	if b == a || a == def {
		t.Fatal("targets share an arbiter")
	}
	got := s.Targets()
	want := []string{"", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if s.Lookup("c") != nil {
		t.Fatal("Lookup invented a target")
	}
}

func TestArbiterSetConcurrentGet(t *testing.T) {
	s := NewArbiterSet(FCFSPolicy{})
	var wg sync.WaitGroup
	arbs := make([]*Arbiter, 16)
	for i := range arbs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arbs[i] = s.Get(fmt.Sprintf("t%d", i%4))
		}(i)
	}
	wg.Wait()
	for i := range arbs {
		if arbs[i] != s.Get(fmt.Sprintf("t%d", i%4)) {
			t.Fatalf("racy Get returned a stale arbiter for t%d", i%4)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
}

// driveOne runs a single app through one arbitration on the target's
// arbiter at the given time.
func driveOne(t *testing.T, s *ArbiterSet, target, app string, now float64) {
	t.Helper()
	ar := s.Get(target)
	st, err := ar.Register(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Inform(now)
	if out := ar.Arbitrate(now); !out.Acted {
		t.Fatalf("%s/%s: arbitration did not act", target, app)
	}
}

func TestArbiterSetCombinedLogAndLastRecord(t *testing.T) {
	s := NewArbiterSet(FCFSPolicy{})
	driveOne(t, s, "b", "B1", 1)
	driveOne(t, s, "a", "A1", 2)
	driveOne(t, s, "a", "A2", 3)

	target, rec := s.LastRecord()
	if target != "a" || rec == nil || rec.Time != 3 {
		t.Fatalf("LastRecord = %q %+v, want target a at t=3", target, rec)
	}

	log := s.Log()
	if len(log) != 3 {
		t.Fatalf("merged log has %d records, want 3", len(log))
	}
	wantOrder := []struct {
		target string
		time   float64
	}{{"b", 1}, {"a", 2}, {"a", 3}}
	for i, w := range wantOrder {
		if log[i].Target != w.target || log[i].Time != w.time {
			t.Fatalf("log[%d] = %s t=%g, want %s t=%g", i, log[i].Target, log[i].Time, w.target, w.time)
		}
	}

	// Per-target independence: b's arbiter saw exactly one decision.
	if got := len(s.Lookup("b").Log()); got != 1 {
		t.Fatalf("target b logged %d decisions, want 1", got)
	}

	s.Reset()
	if _, rec := s.LastRecord(); rec != nil {
		t.Fatalf("LastRecord after Reset = %+v, want none", rec)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Reset dropped targets: len = %d, want 2", got)
	}
}

func TestArbiterSetLogBoundPropagates(t *testing.T) {
	s := NewArbiterSet(FCFSPolicy{})
	s.SetLogBound(2)
	pre := s.Get("pre")
	s.SetLogBound(2) // applying again to existing arbiters must be safe
	for i := 0; i < 5; i++ {
		app := fmt.Sprintf("A%d", i)
		st, err := pre.Register(app, 1)
		if err != nil {
			t.Fatal(err)
		}
		st.Inform(float64(i))
		pre.Arbitrate(float64(i))
		st.End()
	}
	if got := len(pre.Log()); got != 2 {
		t.Fatalf("bounded log kept %d records, want 2", got)
	}
}
