package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestInfoHelpers(t *testing.T) {
	in := Info{}
	in.SetInt(KeyFiles, 4)
	in.SetFloat(KeyBytesTotal, 1.5e9)
	if in.Int(KeyFiles, 0) != 4 {
		t.Fatal("int roundtrip failed")
	}
	if in.Float(KeyBytesTotal, 0) != 1.5e9 {
		t.Fatal("float roundtrip failed")
	}
	if in.Int("missing", 7) != 7 || in.Float("missing", 2.5) != 2.5 {
		t.Fatal("defaults not honored")
	}
	in["junk"] = "not-a-number"
	if in.Int("junk", 9) != 9 || in.Float("junk", 8) != 8 {
		t.Fatal("malformed values should yield defaults")
	}
	c := in.Clone()
	c[KeyFiles] = "5"
	if in[KeyFiles] != "4" {
		t.Fatal("Clone should not alias")
	}
	if in.String() == "" {
		t.Fatal("String empty")
	}
}

func TestPropertyInfoRoundTrip(t *testing.T) {
	f := func(v int64, x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		in := Info{}
		in.SetInt("i", v)
		in.SetFloat("f", x)
		return in.Int("i", -1) == v && in.Float("f", -1) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeIO simulates an application's I/O phase with nrounds rounds of
// roundTime seconds each, using the coordination session.
func fakeIO(eng *sim.Engine, sess *Session, start float64, nrounds int, roundTime float64, info Info, done *float64) {
	eng.GoAt(start, sess.C.Name(), func(p *sim.Proc) {
		sess.Begin(p, info)
		for r := 0; r < nrounds; r++ {
			p.Sleep(roundTime) // the "atomic access"
			sess.C.Progress(float64(r+1) / float64(nrounds))
			if r < nrounds-1 {
				sess.Yield(p)
			}
		}
		sess.End(p)
		*done = p.Now()
	})
}

func basicInfo(bytes float64, cores int) Info {
	in := Info{}
	in.SetFloat(KeyBytesTotal, bytes)
	in.SetInt(KeyCores, int64(cores))
	in.SetFloat(KeyAloneBW, bytes) // solo time 1s per byte-unit scaling
	return in
}

func TestFCFSSerializesSecondArrival(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 100))
	b := NewSession(layer.Register("B", 100))
	var doneA, doneB float64
	// A: 10 rounds x 1s starting at 0. B: same, starting at 3.
	fakeIO(eng, a, 0, 10, 1, basicInfo(10, 100), &doneA)
	fakeIO(eng, b, 3, 10, 1, basicInfo(10, 100), &doneB)
	eng.Run()
	if !almostEq(doneA, 10, 1e-2) {
		t.Fatalf("A done at %v, want ~10 (undisturbed)", doneA)
	}
	// B waits for A (t=10) then runs 10s.
	if !almostEq(doneB, 20, 1e-2) {
		t.Fatalf("B done at %v, want ~20 (serialized)", doneB)
	}
}

func TestFCFSFirstArrivalKeepsAccessAcrossYields(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 10))
	b := NewSession(layer.Register("B", 10))
	var doneA, doneB float64
	fakeIO(eng, a, 0, 5, 1, basicInfo(5, 10), &doneA)
	fakeIO(eng, b, 0.5, 5, 1, basicInfo(5, 10), &doneB)
	eng.Run()
	if !almostEq(doneA, 5, 1e-2) {
		t.Fatalf("A done at %v, want ~5", doneA)
	}
	if !almostEq(doneB, 10, 1e-2) {
		t.Fatalf("B done at %v, want ~10", doneB)
	}
}

func TestInterruptPausesFirstApp(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, InterruptPolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 100))
	b := NewSession(layer.Register("B", 100))
	var doneA, doneB float64
	fakeIO(eng, a, 0, 10, 1, basicInfo(10, 100), &doneA)
	fakeIO(eng, b, 3, 4, 1, basicInfo(4, 100), &doneB)
	eng.Run()
	// B is authorized immediately on arrival (t=3) and runs 4s -> ~7;
	// A overlaps for one round until its yield point at t=4.
	if !almostEq(doneB, 7, 0.1) {
		t.Fatalf("B done at %v, want ~7 (prompt access)", doneB)
	}
	// A: 4 rounds by t=4, paused until ~7, 6 rounds left -> ~13.
	if !almostEq(doneA, 13, 0.1) {
		t.Fatalf("A done at %v, want ~13 (interrupted)", doneA)
	}
}

func TestInterferePolicyLetsBothRun(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, InterferePolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 10))
	b := NewSession(layer.Register("B", 10))
	var doneA, doneB float64
	fakeIO(eng, a, 0, 5, 1, basicInfo(5, 10), &doneA)
	fakeIO(eng, b, 1, 5, 1, basicInfo(5, 10), &doneB)
	eng.Run()
	// No blocking: both finish after their own 5s.
	if !almostEq(doneA, 5, 1e-2) || !almostEq(doneB, 6, 1e-2) {
		t.Fatalf("done = %v %v, want 5, 6", doneA, doneB)
	}
}

func TestWaitBeforeInformPanics(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 0)
	c := layer.Register("A", 1)
	recovered := false
	eng.Go("p", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		c.Wait(p)
	})
	eng.Run()
	if !recovered {
		t.Fatal("expected panic from Wait before Inform")
	}
}

func TestCompleteWithoutPreparePanics(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 0)
	c := layer.Register("A", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Complete()
}

func TestDuplicateRegisterPanics(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 0)
	layer.Register("A", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	layer.Register("A", 2)
}

func TestPrepareCompleteStack(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 0)
	c := layer.Register("A", 8)
	base := Info{}
	base.SetFloat(KeyBytesTotal, 100)
	base.SetInt(KeyFiles, 2)
	c.Prepare(base)
	over := Info{}
	over.SetFloat(KeyBytesTotal, 50)
	c.Prepare(over)
	v := c.app.View()
	if v.BytesTotal != 50 || v.Files != 2 {
		t.Fatalf("stacked view = %+v", v)
	}
	c.Complete()
	v = c.app.View()
	if v.BytesTotal != 100 {
		t.Fatalf("after Complete view = %+v", v)
	}
}

func TestDecisionLog(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 1))
	var done float64
	fakeIO(eng, a, 0, 2, 1, basicInfo(2, 1), &done)
	eng.Run()
	if len(layer.Log()) == 0 {
		t.Fatal("no decisions logged")
	}
	for _, d := range layer.Log() {
		if d.Policy != "fcfs" {
			t.Fatalf("unexpected policy in log: %+v", d)
		}
	}
}

func TestPerfModelAloneBW(t *testing.T) {
	m := &PerfModel{FSBandwidth: 1000, ProcNIC: 10}
	// Injection-limited app.
	if got := m.AloneBW(AppView{Cores: 10}); got != 100 {
		t.Fatalf("AloneBW = %v, want 100", got)
	}
	// FS-limited app.
	if got := m.AloneBW(AppView{Cores: 1000}); got != 1000 {
		t.Fatalf("AloneBW = %v, want 1000", got)
	}
	// Declared value wins.
	if got := m.AloneBW(AppView{Cores: 10, AloneBW: 42}); got != 42 {
		t.Fatalf("AloneBW = %v, want 42", got)
	}
}

func TestDynamicDecisionThreshold(t *testing.T) {
	// Paper §IV-D: with equal core counts, interrupt A iff
	// remaining(A) > solo(B), i.e. dt < T_A(alone) - T_B(alone).
	m := &PerfModel{FSBandwidth: 1000, ProcNIC: 1000}
	pol := DynamicPolicy{Metric: CPUSecondsWasted{}, Model: m}

	mk := func(remA, totalB float64) []AppView {
		return []AppView{
			{Name: "A", Cores: 2048, Arrival: 0, BytesTotal: 4000, BytesDone: 4000 - remA, AloneBW: 1000, State: Active},
			{Name: "B", Cores: 2048, Arrival: 5, BytesTotal: totalB, AloneBW: 1000, State: Waiting},
		}
	}
	// A has plenty remaining (3000 = 3s) vs B small (1000 = 1s): interrupt.
	dec := pol.Arbitrate(5, mk(3000, 1000))
	if !dec.Allowed["B"] || dec.Allowed["A"] {
		t.Fatalf("want interrupt (B only), got %+v", dec)
	}
	// A nearly done (500 = 0.5s) vs B 1s: FCFS (B waits).
	dec = pol.Arbitrate(5, mk(500, 1000))
	if !dec.Allowed["A"] || dec.Allowed["B"] {
		t.Fatalf("want FCFS (A only), got %+v", dec)
	}
}

func TestDynamicPolicyEndToEnd(t *testing.T) {
	// A writes 4 "files" x 2s; B arrives early with 1 file x 2s; with the
	// CPU-seconds metric and equal cores, B should interrupt A.
	eng := sim.NewEngine()
	m := &PerfModel{FSBandwidth: 1, ProcNIC: 1}
	layer := NewLayer(eng, DynamicPolicy{Metric: CPUSecondsWasted{}, Model: m}, 1e-4)
	a := NewSession(layer.Register("A", 2048))
	b := NewSession(layer.Register("B", 2048))

	infoA := Info{}
	infoA.SetFloat(KeyBytesTotal, 8)
	infoA.SetFloat(KeyAloneBW, 1)
	infoB := Info{}
	infoB.SetFloat(KeyBytesTotal, 2)
	infoB.SetFloat(KeyAloneBW, 1)

	var doneA, doneB float64
	eng.Go("A", func(p *sim.Proc) {
		a.Begin(p, infoA)
		for r := 0; r < 4; r++ {
			p.Sleep(2)
			a.C.Progress(float64(2 * (r + 1)))
			if r < 3 {
				a.Yield(p)
			}
		}
		a.End(p)
		doneA = p.Now()
	})
	eng.GoAt(1, "B", func(p *sim.Proc) {
		b.Begin(p, infoB)
		p.Sleep(2)
		b.C.Progress(2)
		b.End(p)
		doneB = p.Now()
	})
	eng.Run()
	// B arrives at t=1 with solo 2s; A remaining 7s > 2s -> interrupt: B is
	// authorized at once and finishes at ~3 (one round overlaps with A).
	if !almostEq(doneB, 3, 0.1) {
		t.Fatalf("B done at %v, want ~3 (interrupted A)", doneB)
	}
	// A: round 1 ends t=2, paused until ~3, rounds 2-4 -> done ~9.
	if !almostEq(doneA, 9, 0.1) {
		t.Fatalf("A done at %v, want ~9", doneA)
	}
}

func TestDelayPolicyWindow(t *testing.T) {
	m := &PerfModel{FSBandwidth: 100, ProcNIC: 100}
	pol := DelayPolicy{Overlap: 1.0, Model: m}
	apps := []AppView{
		{Name: "A", Cores: 1, Arrival: 0, BytesTotal: 1000, BytesDone: 0, AloneBW: 100, State: Active},
		{Name: "B", Cores: 1, Arrival: 1, BytesTotal: 200, AloneBW: 100, State: Waiting},
	}
	// A rem = 10s; B solo = 2s; window 2 < 10 -> B delayed, recheck in 8s.
	dec := pol.Arbitrate(1, apps)
	if dec.Allowed["B"] {
		t.Fatalf("B should be delayed: %+v", dec)
	}
	if !almostEq(dec.RecheckAfter, 8, 1e-6) {
		t.Fatalf("recheck = %v, want 8", dec.RecheckAfter)
	}
	// A nearly done: overlap allowed.
	apps[0].BytesDone = 900
	dec = pol.Arbitrate(1, apps)
	if !dec.Allowed["B"] || !dec.Allowed["A"] {
		t.Fatalf("both should run: %+v", dec)
	}
}

func TestMetrics(t *testing.T) {
	apps := []AppView{{Cores: 10}, {Cores: 20}}
	times := []float64{2, 3}
	if got := (CPUSecondsWasted{}).Cost(apps, times); got != 10*2+20*3 {
		t.Fatalf("cpu-seconds = %v", got)
	}
	if got := (SumIOTime{}).Cost(apps, times); got != 5 {
		t.Fatalf("sum = %v", got)
	}
	if got := (Makespan{}).Cost(apps, times); got != 3 {
		t.Fatalf("makespan = %v", got)
	}
	m := &PerfModel{FSBandwidth: 1, ProcNIC: 1}
	si := SumInterferenceFactors{Model: m}
	apps = []AppView{
		{Cores: 1, BytesTotal: 2, AloneBW: 1}, // solo 2s
		{Cores: 1, BytesTotal: 3, AloneBW: 1}, // solo 3s
	}
	if got := si.Cost(apps, []float64{4, 3}); !almostEq(got, 4.0/2+3.0/3, 1e-9) {
		t.Fatalf("sumI = %v", got)
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Waiting.String() != "waiting" || Active.String() != "active" {
		t.Fatal("state names")
	}
}

func TestSharedFinishTimes(t *testing.T) {
	m := &PerfModel{FSBandwidth: 100, ProcNIC: 1}
	apps := []AppView{
		{Name: "A", Cores: 100, BytesTotal: 100},
		{Name: "B", Cores: 100, BytesTotal: 100},
	}
	fin := m.SharedFinishTimes(apps)
	// Equal weights, combined demand saturates: both at 50 B/s -> 2s.
	if !almostEq(fin[0], 2, 1e-6) || !almostEq(fin[1], 2, 1e-6) {
		t.Fatalf("fin = %v, want [2 2]", fin)
	}
}

func TestThreeAppFCFSQueue(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 1e-4)
	var doneA, doneB, doneC float64
	a := NewSession(layer.Register("A", 10))
	b := NewSession(layer.Register("B", 10))
	c := NewSession(layer.Register("C", 10))
	fakeIO(eng, a, 0, 4, 1, basicInfo(4, 10), &doneA)
	fakeIO(eng, b, 1, 4, 1, basicInfo(4, 10), &doneB)
	fakeIO(eng, c, 2, 4, 1, basicInfo(4, 10), &doneC)
	eng.Run()
	// Strict arrival order: A 0-4, B 4-8, C 8-12.
	if !almostEq(doneA, 4, 0.05) || !almostEq(doneB, 8, 0.05) || !almostEq(doneC, 12, 0.05) {
		t.Fatalf("done = %v %v %v, want 4 8 12", doneA, doneB, doneC)
	}
}

func TestThreeAppInterruptStack(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, InterruptPolicy{}, 1e-4)
	var doneA, doneB, doneC float64
	a := NewSession(layer.Register("A", 10))
	b := NewSession(layer.Register("B", 10))
	c := NewSession(layer.Register("C", 10))
	fakeIO(eng, a, 0, 10, 1, basicInfo(10, 10), &doneA)
	fakeIO(eng, b, 2, 4, 1, basicInfo(4, 10), &doneB)
	fakeIO(eng, c, 3, 2, 1, basicInfo(2, 10), &doneC)
	eng.Run()
	// C (newest) preempts B which preempted A: LIFO resume order.
	if !(doneC < doneB && doneB < doneA) {
		t.Fatalf("completion order wrong: A=%v B=%v C=%v", doneA, doneB, doneC)
	}
	// C runs essentially solo from its arrival (one round of overlap).
	if !almostEq(doneC, 5, 0.1) {
		t.Fatalf("C done at %v, want ~5", doneC)
	}
}

func TestThreeAppDynamicSJFQueue(t *testing.T) {
	// A (huge) is active; B (medium) and C (tiny) wait. With the
	// cpu-seconds metric and equal cores, the dynamic policy should run the
	// tiny job before the medium one (shortest-job-first queueing), the
	// paper's "choose a place in the queue" generalization.
	m := &PerfModel{FSBandwidth: 100, ProcNIC: 100}
	pol := DynamicPolicy{Metric: CPUSecondsWasted{}, Model: m}
	apps := []AppView{
		{Name: "A", Cores: 64, Arrival: 0, BytesTotal: 10000, BytesDone: 9900, AloneBW: 100, State: Active},
		{Name: "B", Cores: 64, Arrival: 1, BytesTotal: 5000, AloneBW: 100, State: Waiting},
		{Name: "C", Cores: 64, Arrival: 2, BytesTotal: 100, AloneBW: 100, State: Waiting},
	}
	dec := pol.Arbitrate(2, apps)
	// A is nearly done (1s left): not worth interrupting for C (1s solo).
	// After A, C should go before B — but right now only A is authorized.
	if !dec.Allowed["A"] || dec.Allowed["B"] || dec.Allowed["C"] {
		t.Fatalf("expected A to continue: %+v", dec)
	}
	// Once A leaves, SJF should pick C over the earlier-arrived B.
	apps2 := []AppView{apps[1], apps[2]}
	dec = pol.Arbitrate(3, apps2)
	if !dec.Allowed["C"] || dec.Allowed["B"] {
		t.Fatalf("expected SJF to pick C: %+v", dec)
	}
}

func TestSystemBusy(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, InterferePolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 1))
	b := layer.Register("B", 1)
	var busyDuring, busyAfter bool
	var doneA float64
	fakeIO(eng, a, 0, 3, 1, basicInfo(3, 1), &doneA)
	eng.GoAt(1, "probe", func(p *sim.Proc) {
		busyDuring = b.SystemBusy()
		p.SleepUntil(10)
		busyAfter = b.SystemBusy()
	})
	eng.Run()
	if !busyDuring {
		t.Fatal("B should see the system busy while A writes")
	}
	if busyAfter {
		t.Fatal("B should see the system idle after A ends")
	}
}

func TestWaitTimeAccounting(t *testing.T) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, FCFSPolicy{}, 1e-4)
	a := NewSession(layer.Register("A", 1))
	b := NewSession(layer.Register("B", 1))
	var doneA, doneB float64
	fakeIO(eng, a, 0, 5, 1, basicInfo(5, 1), &doneA)
	fakeIO(eng, b, 1, 5, 1, basicInfo(5, 1), &doneB)
	eng.Run()
	// B waited ~4s for A.
	if w := b.C.WaitTime(); !almostEq(w, 4, 0.05) {
		t.Fatalf("B wait time %v, want ~4", w)
	}
	if w := a.C.WaitTime(); w > 0.05 {
		t.Fatalf("A wait time %v, want ~0", w)
	}
	// IOTime covers the whole phase including the wait.
	if io := b.C.IOTime(); !almostEq(io, 9, 0.1) {
		t.Fatalf("B io time %v, want ~9", io)
	}
}

func TestPriorityPolicy(t *testing.T) {
	pol := PriorityPolicy{Priorities: map[string]int{"A": 1, "B": 5}}
	apps := []AppView{
		{Name: "A", Arrival: 0, State: Active},
		{Name: "B", Arrival: 3, State: Waiting},
	}
	dec := pol.Arbitrate(3, apps)
	if !dec.Allowed["B"] || dec.Allowed["A"] {
		t.Fatalf("high-priority B should win: %+v", dec)
	}
	// Without priorities, arrival order wins (first in sorted views).
	pol = PriorityPolicy{}
	dec = pol.Arbitrate(3, apps)
	if !dec.Allowed["A"] {
		t.Fatalf("equal priorities should fall back to arrival: %+v", dec)
	}
}

func TestFairSharePolicy(t *testing.T) {
	pol := FairSharePolicy{Quantum: 2}
	apps := []AppView{
		{Name: "A", BytesTotal: 100, BytesDone: 80, State: Active},
		{Name: "B", BytesTotal: 100, BytesDone: 10, State: Waiting},
	}
	dec := pol.Arbitrate(0, apps)
	if !dec.Allowed["B"] {
		t.Fatalf("least-served B should win: %+v", dec)
	}
	if dec.RecheckAfter != 2 {
		t.Fatalf("recheck = %v, want quantum 2", dec.RecheckAfter)
	}
	// Single app: no recheck needed.
	dec = pol.Arbitrate(0, apps[:1])
	if dec.RecheckAfter != 0 {
		t.Fatalf("single app should not schedule rechecks: %+v", dec)
	}
}

func TestFairShareEndToEndAlternates(t *testing.T) {
	// Quantum longer than the round time, so revocations actually bite at
	// the next coordination point (with a shorter quantum the lag between
	// revocation and the app's next yield lets both run most of the time).
	eng := sim.NewEngine()
	layer := NewLayer(eng, FairSharePolicy{Quantum: 1.5}, 1e-4)
	a := NewSession(layer.Register("A", 1))
	b := NewSession(layer.Register("B", 1))
	var doneA, doneB float64
	fakeIO(eng, a, 0, 6, 1, basicInfo(6, 1), &doneA)
	fakeIO(eng, b, 0.1, 6, 1, basicInfo(6, 1), &doneB)
	eng.Run()
	// Time-sliced: completions equalized, both slowed beyond their 6s of
	// work by the alternating waits.
	if math.Abs(doneA-doneB) > 2.5 {
		t.Fatalf("fair sharing should equalize completions: %v vs %v", doneA, doneB)
	}
	if doneA < 7.5 || doneB < 7.5 {
		t.Fatalf("both should be slowed: %v %v", doneA, doneB)
	}
}
