package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// randomScenario drives nApps fake applications with random phase counts,
// round times and start offsets under the given policy, and returns the
// layer (for log inspection) plus a flag set when every app completed.
func randomScenario(seed int64, policy Policy, nApps int) (*Layer, bool) {
	eng := sim.NewEngine()
	layer := NewLayer(eng, policy, 1e-4)
	rng := rand.New(rand.NewSource(seed))
	completed := 0
	for i := 0; i < nApps; i++ {
		name := string(rune('A' + i))
		cores := 1 << (2 + rng.Intn(8))
		sess := NewSession(layer.Register(name, cores))
		start := rng.Float64() * 10
		rounds := 1 + rng.Intn(6)
		roundTime := 0.2 + rng.Float64()*2
		phases := 1 + rng.Intn(3)
		gap := rng.Float64() * 5
		bytes := float64(rounds) * roundTime // arbitrary unit work
		eng.GoAt(start, name, func(p *sim.Proc) {
			for ph := 0; ph < phases; ph++ {
				if ph > 0 {
					p.Sleep(gap)
				}
				info := Info{}
				info.SetFloat(KeyBytesTotal, bytes)
				info.SetFloat(KeyAloneBW, 1)
				info.SetInt(KeyCores, int64(cores))
				sess.Begin(p, info)
				for r := 0; r < rounds; r++ {
					p.Sleep(roundTime)
					sess.C.Progress(float64(r+1) * roundTime)
					if r < rounds-1 {
						sess.Yield(p)
					}
				}
				sess.End(p)
			}
			completed++
		})
	}
	eng.RunUntil(1e6) // generous horizon; far beyond any legitimate schedule
	return layer, completed == nApps
}

func policyForSeed(seed int64) Policy {
	m := &PerfModel{FSBandwidth: 1, ProcNIC: 1}
	switch seed % 5 {
	case 0:
		return InterferePolicy{}
	case 1:
		return FCFSPolicy{}
	case 2:
		return InterruptPolicy{}
	case 3:
		return DynamicPolicy{Metric: CPUSecondsWasted{}, Model: m, AllowInterfere: seed%2 == 0}
	default:
		return DelayPolicy{Overlap: 0.5, Model: m}
	}
}

// Property: liveness — whatever the policy and workload shape, every
// application finishes all of its phases (no deadlock, no starvation in a
// finite workload).
func TestPropertyAllPoliciesLive(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%4+4)%4 // 2..5 apps
		_, done := randomScenario(seed, policyForSeed(seed), n)
		if !done {
			t.Logf("seed %d: apps did not complete", seed)
		}
		return done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: safety — serializing policies (FCFS, interrupt, dynamic without
// the interference candidate) never authorize two applications at once.
func TestPropertySerializingPoliciesAuthorizeOne(t *testing.T) {
	m := &PerfModel{FSBandwidth: 1, ProcNIC: 1}
	pols := []Policy{
		FCFSPolicy{},
		InterruptPolicy{},
		DynamicPolicy{Metric: CPUSecondsWasted{}, Model: m},
	}
	f := func(seed int64) bool {
		pol := pols[int((seed%3+3)%3)]
		layer, done := randomScenario(seed, pol, 3)
		if !done {
			return false
		}
		for _, d := range layer.Log() {
			if len(d.Allowed) > 1 {
				t.Logf("seed %d: %s authorized %v", seed, pol.Name(), d.Allowed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decision log is well-formed — times nondecreasing and every
// authorized name is a registered app.
func TestPropertyDecisionLogWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		layer, done := randomScenario(seed, policyForSeed(seed), 4)
		if !done {
			return false
		}
		valid := map[string]bool{"A": true, "B": true, "C": true, "D": true}
		last := -1.0
		for _, d := range layer.Log() {
			if d.Time < last {
				return false
			}
			last = d.Time
			for _, name := range d.Allowed {
				if !valid[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under FCFS, the first arrival of two non-overlapping phases is
// never delayed: an app alone in the system always proceeds immediately.
func TestPropertyLoneAppNeverWaits(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		layer := NewLayer(eng, policyForSeed(seed), 1e-4)
		sess := NewSession(layer.Register("A", 4))
		rng := rand.New(rand.NewSource(seed))
		ioTime := 0.5 + rng.Float64()*3
		var done float64
		eng.Go("A", func(p *sim.Proc) {
			info := Info{}
			info.SetFloat(KeyBytesTotal, 1)
			sess.Begin(p, info)
			p.Sleep(ioTime)
			sess.End(p)
			done = p.Now()
		})
		eng.Run()
		// Only coordination latency (2 messages) may be added.
		return done <= ioTime+4*layer.Latency()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
