package core

import (
	"fmt"

	"repro/internal/sim"
)

// State is a coordinator's position in the coordination protocol.
type State int

const (
	// Idle: not in an I/O phase; invisible to arbitration.
	Idle State = iota
	// Waiting: has informed the layer and is waiting for authorization
	// (either fresh, or paused mid-phase after an interruption).
	Waiting
	// Active: authorized and inside an I/O step.
	Active
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Waiting:
		return "waiting"
	case Active:
		return "active"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// AppView is the snapshot of one application's declared state handed to a
// Policy for arbitration. All knowledge comes from the app's Prepare info
// and its progress reports — the layer has no privileged information, which
// mirrors the paper's design: coordination works only from what applications
// share.
type AppView struct {
	Name       string
	Cores      int
	State      State
	Arrival    float64 // when this I/O phase first informed the layer
	BytesTotal float64 // declared bytes for the phase
	BytesDone  float64 // progress reported at Release points
	Files      int
	Rounds     int
	AloneBW    float64 // declared solo bandwidth; 0 = unknown
}

// Remaining returns the declared bytes still to write.
func (v AppView) Remaining() float64 {
	r := v.BytesTotal - v.BytesDone
	if r < 0 {
		r = 0
	}
	return r
}

// Decision is a policy's arbitration outcome.
type Decision struct {
	// Allowed maps application name -> authorized to access the file
	// system. Missing names are treated as not allowed.
	Allowed map[string]bool
	// RecheckAfter, when positive, asks the layer to re-arbitrate after
	// that many seconds even if nothing changes (used by delay policies).
	RecheckAfter float64
	// Reason is a human-readable explanation, kept in the decision log.
	Reason string
}

// AllowAll builds a decision authorizing every listed app.
func AllowAll(apps []AppView, reason string) Decision {
	d := Decision{Allowed: make(map[string]bool, len(apps)), Reason: reason}
	for _, a := range apps {
		d.Allowed[a.Name] = true
	}
	return d
}

// AllowOnly builds a decision authorizing exactly one app.
func AllowOnly(name, reason string) Decision {
	return Decision{Allowed: map[string]bool{name: true}, Reason: reason}
}

// Policy arbitrates file-system access among the applications currently in
// an I/O phase. Arbitrate is called whenever the set or progress of
// participating applications changes. The views are sorted by arrival time
// (ties by name) before the call.
type Policy interface {
	Name() string
	Arbitrate(now float64, apps []AppView) Decision
}

// DecisionRecord is a logged arbitration outcome.
type DecisionRecord struct {
	Time    float64
	Policy  string
	Allowed []string // sorted
	Reason  string
}

// Layer is the shared coordination medium: the stand-in for the common
// communicator the paper's prototype builds by launching all instances in
// one mpirun. Coordinators register here and every state change triggers an
// arbitration after the configured message latency.
//
// The arbitration state machine itself — view construction, the policy
// call, decision application — lives in an Arbiter shared with the network
// daemon (internal/server); the Layer contributes only the discrete-event
// mechanics: message latency, recheck scheduling and waking parked
// processes.
type Layer struct {
	eng     *sim.Engine
	arb     *Arbiter
	latency float64
	coords  []*Coordinator
	recheck *sim.Event
}

// NewLayer creates a coordination layer with the given policy and one-way
// coordination message latency in seconds (the paper implements this as MPI
// messages between rank-0 coordinators; a millisecond is typical).
func NewLayer(eng *sim.Engine, policy Policy, latency float64) *Layer {
	if latency < 0 {
		panic("core: negative latency")
	}
	return &Layer{eng: eng, arb: NewArbiter(policy), latency: latency}
}

// Policy returns the active policy.
func (l *Layer) Policy() Policy { return l.arb.Policy() }

// Reset returns the layer to its just-constructed state on a freshly reset
// engine, keeping the registered coordinators (and hence the policy and the
// arrival tie-break order) so a reused platform re-runs a scenario without
// re-registering. The decision log restarts with fresh backing — log slices
// already handed out via Log stay valid. The pending recheck event, if any,
// was dropped by the engine reset.
func (l *Layer) Reset() {
	l.recheck = nil
	l.arb.Reset()
	for _, c := range l.coords {
		c.reset()
	}
}

// Latency returns the one-way message latency.
func (l *Layer) Latency() float64 { return l.latency }

// Log returns the arbitration decision log.
func (l *Layer) Log() []DecisionRecord { return l.arb.Log() }

// Register creates a coordinator for an application. Cores is the size of
// the job, used by machine-wide efficiency metrics.
func (l *Layer) Register(name string, cores int) *Coordinator {
	app, err := l.arb.Register(name, cores)
	if err != nil {
		panic(err.Error())
	}
	c := &Coordinator{layer: l, app: app}
	app.Data = c
	l.coords = append(l.coords, c)
	return c
}

// poke schedules an arbitration after the message latency. Every protocol
// action (Inform, Release, End) calls it.
func (l *Layer) poke() {
	l.eng.Schedule(l.latency, l.arbitrate)
}

func (l *Layer) arbitrate() {
	if l.recheck != nil {
		l.eng.Cancel(l.recheck)
		l.recheck = nil
	}
	out := l.arb.Arbitrate(l.eng.Now())
	if !out.Acted {
		return
	}
	if rec := l.arb.LastRecord(); rec != nil {
		l.eng.Tracef("calciom: policy=%s allowed=%v reason=%s", rec.Policy, rec.Allowed, rec.Reason)
	}
	for _, a := range out.Granted {
		c := a.Data.(*Coordinator)
		if c.waiting != nil {
			// Authorization message travels back to the application.
			r := c.waiting
			l.eng.Schedule(l.latency, r.Resume)
		}
	}
	if out.RecheckAfter > 0 {
		l.recheck = l.eng.Schedule(out.RecheckAfter, l.arbitrate)
	}
}
