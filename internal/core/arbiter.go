package core

import (
	"fmt"
	"sort"
)

// AppState is one application's protocol state as the arbitration core sees
// it: registration identity, the folded Prepare info, phase state and the
// current authorization. It is the piece of the coordination layer shared
// between the two deployment modes — the discrete-event simulator wraps one
// per Coordinator, and the network daemon wraps one per client session — so
// view construction and decision application cannot drift between them.
//
// AppState methods never panic: protocol violations (Complete without
// Prepare, Release while not active) are returned as errors, because on the
// daemon path they are client bugs the server must survive. The simulator's
// Coordinator converts them back to panics, as a protocol violation there is
// a bug in the experiment itself.
type AppState struct {
	// Data is an owner-managed cookie: the sim layer stores the
	// *Coordinator, the daemon stores its session. The arbitration core
	// never touches it.
	Data any

	name     string
	cores    int
	regCores int // cores at registration; Prepare may override cores, Reset restores this
	idx      int // position in Arbiter.apps; -1 once unregistered

	state      State
	arrival    float64
	authorized bool

	bytesTotal float64
	bytesDone  float64
	files      int
	rounds     int
	aloneBW    float64

	infoStack []Info

	allowedNow bool // per-arbitration scratch, meaningful only inside Arbitrate
}

// Name returns the application name.
func (a *AppState) Name() string { return a.name }

// Cores returns the application's core count (possibly updated by Prepare).
func (a *AppState) Cores() int { return a.cores }

// State returns the protocol state.
func (a *AppState) State() State { return a.state }

// Authorized reports the current arbitration outcome for this application.
func (a *AppState) Authorized() bool { return a.authorized }

// View snapshots the application for arbitration.
func (a *AppState) View() AppView {
	return AppView{
		Name:       a.name,
		Cores:      a.cores,
		State:      a.state,
		Arrival:    a.arrival,
		BytesTotal: a.bytesTotal,
		BytesDone:  a.bytesDone,
		Files:      a.files,
		Rounds:     a.rounds,
		AloneBW:    a.aloneBW,
	}
}

// Prepare stacks information about the upcoming I/O accesses, as the paper's
// Prepare(MPI_Info) does. Recognized keys update the view policies see.
func (a *AppState) Prepare(info Info) {
	a.infoStack = append(a.infoStack, info.Clone())
	a.applyInfo()
}

// Complete unstacks the most recent Prepare.
func (a *AppState) Complete() error {
	if len(a.infoStack) == 0 {
		return fmt.Errorf("core: %s: Complete without Prepare", a.name)
	}
	a.infoStack = a.infoStack[:len(a.infoStack)-1]
	a.applyInfo()
	return nil
}

// applyInfo folds the info stack (later entries win) into the typed view.
func (a *AppState) applyInfo() {
	a.bytesTotal, a.files, a.rounds, a.aloneBW = 0, 0, 0, 0
	for _, in := range a.infoStack {
		if v := in.Float(KeyBytesTotal, -1); v >= 0 {
			a.bytesTotal = v
		}
		if v := in.Int(KeyFiles, -1); v >= 0 {
			a.files = int(v)
		}
		if v := in.Int(KeyRounds, -1); v >= 0 {
			a.rounds = int(v)
		}
		if v := in.Float(KeyAloneBW, -1); v >= 0 {
			a.aloneBW = v
		}
		if v := in.Int(KeyCores, -1); v > 0 {
			a.cores = int(v)
		}
	}
}

// Inform announces the application's intent (or continued intent) to do I/O.
// On the first Inform of a phase it records the arrival time and resets the
// progress counter; it reports whether this opened a fresh phase.
func (a *AppState) Inform(now float64) (fresh bool) {
	if a.state != Idle {
		return false
	}
	a.state = Waiting
	a.arrival = now
	a.bytesDone = 0
	return true
}

// Activate marks the application inside an I/O step, the transition a
// successful Wait makes.
func (a *AppState) Activate() error {
	if a.state == Idle {
		return fmt.Errorf("core: %s: Wait before Inform", a.name)
	}
	a.state = Active
	return nil
}

// Release ends one step of the I/O access; a new Inform is required before
// the next access step, per the paper's API contract.
func (a *AppState) Release() error {
	if a.state != Active {
		return fmt.Errorf("core: %s: Release while %v", a.name, a.state)
	}
	a.state = Waiting
	return nil
}

// End terminates the I/O phase entirely: the application becomes invisible
// to arbitration until its next Inform.
func (a *AppState) End() {
	a.state = Idle
	a.authorized = false
}

// Progress records bytes written so far in this phase.
func (a *AppState) Progress(bytesDone float64) {
	if bytesDone > a.bytesDone {
		a.bytesDone = bytesDone
	}
}

// IndexedArbitrator is an optional allocation-free fast path for policies:
// instead of returning a Decision with a freshly allocated Allowed map, the
// policy marks allowed[i] for each authorized apps[i]. The views arrive
// sorted by (arrival, name) and allowed arrives all-false, len(allowed) ==
// len(apps). The returned reason should be a constant (no formatting) so the
// fast path stays allocation-free; recheck follows Decision.RecheckAfter
// semantics.
//
// The daemon's arbitration loop enables this path (Arbiter.SetIndexed); the
// simulator keeps the map-based path so its decision logs — which feed the
// figure reproductions — are byte-identical to the original implementation.
type IndexedArbitrator interface {
	ArbitrateIndexed(now float64, apps []AppView, allowed []bool) (reason string, recheck float64)
}

// Outcome is the result of one Arbiter.Arbitrate call. The Granted and
// Revoked slices are scratch owned by the Arbiter, valid until the next
// Arbitrate call; callers must not retain them.
type Outcome struct {
	// Acted is false when no application was in an I/O phase (nothing to
	// arbitrate, no decision logged).
	Acted bool
	// Reason is the policy's explanation for the decision.
	Reason string
	// RecheckAfter, when positive, asks the caller to re-arbitrate after
	// that many seconds even if nothing changes.
	RecheckAfter float64
	// Granted lists apps whose authorization flipped false→true, in
	// registration order.
	Granted []*AppState
	// Revoked lists apps whose authorization flipped true→false, in
	// registration order.
	Revoked []*AppState
}

// Arbiter owns the arbitration state machine shared by the simulator Layer
// and the network daemon: the registered applications, the sorted AppView
// scratch handed to the policy, and the application of the policy's decision
// back onto per-app authorization bits. Steady-state arbitration reuses all
// scratch; with a policy implementing IndexedArbitrator and logging bounded,
// the hot path performs no per-request allocation.
//
// The Arbiter is not goroutine-safe: the sim engine is single-threaded, and
// the daemon funnels every request through one arbitration goroutine (which
// is also what makes daemon decisions deterministic given a serialized
// request order).
type Arbiter struct {
	policy     Policy
	useIndexed bool
	logBound   int // <0 unlimited, 0 disabled, >0 keep last N records

	apps []*AppState

	// Arbitration scratch, reused across calls.
	views    []AppView
	viewApps []*AppState
	allowed  []bool
	granted  []*AppState
	revoked  []*AppState

	// log is append-only when unbounded; with a positive bound it becomes
	// a ring once full — logHead is the next overwrite slot and each
	// overwritten record's Allowed backing is reused, so bounded logging
	// costs no steady-state allocation.
	log     []DecisionRecord
	logHead int
}

// NewArbiter creates an arbiter running the given policy, with unlimited
// decision logging and the map-based policy path (simulator defaults).
func NewArbiter(policy Policy) *Arbiter {
	if policy == nil {
		panic("core: nil policy")
	}
	return &Arbiter{policy: policy, logBound: -1}
}

// Policy returns the active policy.
func (ar *Arbiter) Policy() Policy { return ar.policy }

// SetIndexed selects the IndexedArbitrator fast path when the policy
// implements it. Decisions are identical; only Reason strings differ
// (constants instead of formatted text).
func (ar *Arbiter) SetIndexed(on bool) { ar.useIndexed = on }

// Reset returns the arbiter to its just-constructed state while keeping the
// registered applications (in registration order) and the arbitration
// scratch: every AppState goes back to Idle/unauthorized with an empty info
// stack, and the decision log restarts with fresh backing — the old log
// slice may have escaped via Log and must stay valid for its holder.
func (ar *Arbiter) Reset() {
	for _, a := range ar.apps {
		a.state = Idle
		a.arrival = 0
		a.authorized = false
		a.cores = a.regCores // undo any Prepare(KeyCores) override
		a.bytesTotal, a.bytesDone = 0, 0
		a.files, a.rounds = 0, 0
		a.aloneBW = 0
		a.allowedNow = false
		for i := range a.infoStack {
			a.infoStack[i] = nil
		}
		a.infoStack = a.infoStack[:0]
	}
	ar.log = nil
	ar.logHead = 0
}

// SetLogBound bounds the decision log: negative keeps everything (default),
// zero disables logging, positive keeps the most recent n records in a ring
// whose steady state allocates nothing. Set it before the first Arbitrate;
// changing the bound later scrambles the ring order.
func (ar *Arbiter) SetLogBound(n int) { ar.logBound = n }

// Log returns the arbitration decision log, oldest first. Once a bounded
// log has wrapped, this builds an ordered copy (a cold path; the hot path
// never calls it).
func (ar *Arbiter) Log() []DecisionRecord {
	if ar.logBound <= 0 || len(ar.log) < ar.logBound || ar.logHead == 0 {
		return ar.log
	}
	out := make([]DecisionRecord, 0, len(ar.log))
	out = append(out, ar.log[ar.logHead:]...)
	return append(out, ar.log[:ar.logHead]...)
}

// LastRecord returns the most recent decision record, or nil.
func (ar *Arbiter) LastRecord() *DecisionRecord {
	if len(ar.log) == 0 {
		return nil
	}
	if ar.logBound > 0 && len(ar.log) == ar.logBound {
		return &ar.log[(ar.logHead+ar.logBound-1)%ar.logBound]
	}
	return &ar.log[len(ar.log)-1]
}

// Apps returns the registered applications in registration order. The slice
// is owned by the Arbiter.
func (ar *Arbiter) Apps() []*AppState { return ar.apps }

// OtherAuthorized reports whether any registered application other than app
// currently holds authorization. The daemon and offline trace replay both
// use it to classify a deferred Wait as convoy (queued behind a holder)
// versus protocol (deferred with nobody authorized), so the classification
// cannot drift between live stats and replay.
func (ar *Arbiter) OtherAuthorized(app *AppState) bool {
	for _, a := range ar.apps {
		if a != app && a.authorized {
			return true
		}
	}
	return false
}

// Register adds an application. Names must be unique among currently
// registered applications.
func (ar *Arbiter) Register(name string, cores int) (*AppState, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty application name")
	}
	for _, a := range ar.apps {
		if a.name == name {
			return nil, fmt.Errorf("core: duplicate coordinator %q", name)
		}
	}
	a := &AppState{name: name, cores: cores, regCores: cores, idx: len(ar.apps)}
	ar.apps = append(ar.apps, a)
	return a, nil
}

// Unregister removes an application (a daemon session disconnecting). The
// registration order of the remaining applications is preserved, so decision
// application — and therefore grant delivery order — stays deterministic.
// Unregistering twice is a no-op.
func (ar *Arbiter) Unregister(a *AppState) {
	if a == nil || a.idx < 0 {
		return
	}
	copy(ar.apps[a.idx:], ar.apps[a.idx+1:])
	ar.apps[len(ar.apps)-1] = nil
	ar.apps = ar.apps[:len(ar.apps)-1]
	for i := a.idx; i < len(ar.apps); i++ {
		ar.apps[i].idx = i
	}
	a.idx = -1
}

// viewLess orders views by (arrival, name), the order policies are
// guaranteed to see.
func viewLess(a, b *AppView) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.Name < b.Name
}

// Arbitrate runs one arbitration round at the given time: it snapshots every
// non-idle application, sorts the views by (arrival, name), asks the policy
// for a decision, applies it to the per-app authorization bits, and logs the
// outcome. Authorization changes are reported in registration order so the
// caller's follow-up actions (waking simulated processes, pushing grants to
// network clients) happen in a deterministic order.
func (ar *Arbiter) Arbitrate(now float64) Outcome {
	ar.views = ar.views[:0]
	ar.viewApps = ar.viewApps[:0]
	for _, a := range ar.apps {
		if a.state == Idle {
			continue
		}
		ar.views = append(ar.views, a.View())
		ar.viewApps = append(ar.viewApps, a)
	}
	if len(ar.views) == 0 {
		return Outcome{}
	}
	// Insertion sort: views are near-sorted (arrivals are monotone within a
	// session) and the loop allocates nothing, unlike sort.Slice.
	for i := 1; i < len(ar.views); i++ {
		v, va := ar.views[i], ar.viewApps[i]
		j := i - 1
		for j >= 0 && viewLess(&v, &ar.views[j]) {
			ar.views[j+1], ar.viewApps[j+1] = ar.views[j], ar.viewApps[j]
			j--
		}
		ar.views[j+1], ar.viewApps[j+1] = v, va
	}

	ar.allowed = ar.allowed[:0]
	for range ar.views {
		ar.allowed = append(ar.allowed, false)
	}
	var reason string
	var recheck float64
	if ip, ok := ar.policy.(IndexedArbitrator); ok && ar.useIndexed {
		reason, recheck = ip.ArbitrateIndexed(now, ar.views, ar.allowed)
	} else {
		dec := ar.policy.Arbitrate(now, ar.views)
		reason, recheck = dec.Reason, dec.RecheckAfter
		for i, v := range ar.views {
			ar.allowed[i] = dec.Allowed[v.Name]
		}
	}

	for i, a := range ar.viewApps {
		a.allowedNow = ar.allowed[i]
	}
	ar.granted = ar.granted[:0]
	ar.revoked = ar.revoked[:0]
	for _, a := range ar.apps {
		if a.state == Idle {
			continue
		}
		was := a.authorized
		a.authorized = a.allowedNow
		switch {
		case a.authorized && !was:
			ar.granted = append(ar.granted, a)
		case !a.authorized && was:
			ar.revoked = append(ar.revoked, a)
		}
	}

	if ar.logBound != 0 {
		var names []string
		wrap := ar.logBound > 0 && len(ar.log) == ar.logBound
		if wrap {
			names = ar.log[ar.logHead].Allowed[:0] // reuse the evicted record's backing
		}
		for i, v := range ar.views {
			if ar.allowed[i] {
				names = append(names, v.Name)
			}
		}
		sort.Strings(names)
		rec := DecisionRecord{Time: now, Policy: ar.policy.Name(), Allowed: names, Reason: reason}
		if wrap {
			ar.log[ar.logHead] = rec
			ar.logHead = (ar.logHead + 1) % ar.logBound
		} else {
			ar.log = append(ar.log, rec)
		}
	}

	return Outcome{
		Acted:        true,
		Reason:       reason,
		RecheckAfter: recheck,
		Granted:      ar.granted,
		Revoked:      ar.revoked,
	}
}
