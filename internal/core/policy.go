package core

import (
	"fmt"
	"math"
)

// InterferePolicy lets every application access the file system at once:
// the uncoordinated baseline ("let them interfere").
type InterferePolicy struct{}

// Name implements Policy.
func (InterferePolicy) Name() string { return "interfere" }

// Arbitrate implements Policy.
func (InterferePolicy) Arbitrate(now float64, apps []AppView) Decision {
	return AllowAll(apps, "interference allowed")
}

// FCFSPolicy serializes accesses first-come-first-served: the application
// whose I/O phase arrived first holds the file system until its phase ends;
// later arrivals wait (paper §III-A1, Fig. 5b).
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Arbitrate implements Policy. Views arrive sorted by (arrival, name).
func (FCFSPolicy) Arbitrate(now float64, apps []AppView) Decision {
	head := apps[0]
	return AllowOnly(head.Name, fmt.Sprintf("%s arrived first (t=%.3f)", head.Name, head.Arrival))
}

// InterruptPolicy serializes in the opposite direction: the most recent
// arrival preempts whoever is accessing; the interrupted application resumes
// when the newcomer finishes (paper §III-A2, Fig. 5c). Preemption takes
// effect at the interrupted application's next coordination point.
type InterruptPolicy struct{}

// Name implements Policy.
func (InterruptPolicy) Name() string { return "interrupt" }

// Arbitrate implements Policy.
func (InterruptPolicy) Arbitrate(now float64, apps []AppView) Decision {
	newest := apps[len(apps)-1]
	return AllowOnly(newest.Name, fmt.Sprintf("%s arrived last (t=%.3f)", newest.Name, newest.Arrival))
}

// ArbitrateIndexed implements IndexedArbitrator: everyone is allowed.
func (InterferePolicy) ArbitrateIndexed(now float64, apps []AppView, allowed []bool) (string, float64) {
	for i := range allowed {
		allowed[i] = true
	}
	return "interference allowed", 0
}

// ArbitrateIndexed implements IndexedArbitrator: the earliest arrival holds
// the file system.
func (FCFSPolicy) ArbitrateIndexed(now float64, apps []AppView, allowed []bool) (string, float64) {
	allowed[0] = true
	return "fcfs: earliest arrival holds access", 0
}

// ArbitrateIndexed implements IndexedArbitrator: the newest arrival preempts.
func (InterruptPolicy) ArbitrateIndexed(now float64, apps []AppView, allowed []bool) (string, float64) {
	allowed[len(apps)-1] = true
	return "interrupt: newest arrival preempts", 0
}

// DelayPolicy implements the Fig. 12 tradeoff: when interference is mild,
// full serialization wastes time, so a newcomer is merely delayed until the
// current holder's estimated remaining time drops below Overlap times the
// newcomer's own solo time, and then both are allowed to overlap.
//
// Overlap = 0 degenerates to FCFS; Overlap = +Inf to interference.
type DelayPolicy struct {
	Overlap float64    // fraction of the newcomer's solo time allowed to overlap
	Model   *PerfModel // estimation model (required)
}

// Name implements Policy.
func (d DelayPolicy) Name() string { return fmt.Sprintf("delay(%.2f)", d.Overlap) }

// Arbitrate implements Policy.
func (d DelayPolicy) Arbitrate(now float64, apps []AppView) Decision {
	if d.Model == nil {
		panic("core: DelayPolicy needs a PerfModel")
	}
	if len(apps) == 1 {
		return AllowAll(apps, "single application")
	}
	// The earliest arrival is the holder; later arrivals overlap only
	// inside their allowed window.
	holder := apps[0]
	remHold := d.Model.SoloTime(holder, holder.Remaining())
	allowed := map[string]bool{holder.Name: true}
	recheck := math.Inf(1)
	for _, a := range apps[1:] {
		window := d.Overlap * d.Model.SoloTime(a, a.Remaining())
		if remHold <= window {
			allowed[a.Name] = true
			continue
		}
		// Not yet: re-examine when the holder should be within range.
		if wait := remHold - window; wait < recheck {
			recheck = wait
		}
	}
	dec := Decision{Allowed: allowed, Reason: fmt.Sprintf("holder %s rem=%.2fs", holder.Name, remHold)}
	if !math.IsInf(recheck, 1) && recheck > 0 {
		dec.RecheckAfter = recheck
	}
	return dec
}

// ArbitrateIndexed implements IndexedArbitrator with the same overlap-window
// decision as Arbitrate, but writing into the caller's allowed scratch and
// returning a constant reason, so the daemon's hot path does not allocate.
func (d DelayPolicy) ArbitrateIndexed(now float64, apps []AppView, allowed []bool) (string, float64) {
	if d.Model == nil {
		panic("core: DelayPolicy needs a PerfModel")
	}
	allowed[0] = true
	if len(apps) == 1 {
		return "single application", 0
	}
	holder := apps[0]
	remHold := d.Model.SoloTime(holder, holder.Remaining())
	recheck := math.Inf(1)
	for i, a := range apps {
		if i == 0 {
			continue
		}
		window := d.Overlap * d.Model.SoloTime(a, a.Remaining())
		if remHold <= window {
			allowed[i] = true
			continue
		}
		if wait := remHold - window; wait < recheck {
			recheck = wait
		}
	}
	if math.IsInf(recheck, 1) || recheck <= 0 {
		recheck = 0
	}
	return "delay: holder continues, overlap inside window", recheck
}
