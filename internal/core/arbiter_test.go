package core

import (
	"fmt"
	"testing"
)

// TestIndexedMatchesMapDecisions pins the equivalence of the two policy
// paths: for every policy offering the indexed fast path, both paths must
// authorize exactly the same set of applications across a range of states.
func TestIndexedMatchesMapDecisions(t *testing.T) {
	model := &PerfModel{FSBandwidth: 1e9, ProcNIC: 1e7}
	policies := []Policy{
		InterferePolicy{},
		FCFSPolicy{},
		InterruptPolicy{},
		DelayPolicy{Overlap: 0.5, Model: model},
	}
	mkViews := func(n int, actives int) []AppView {
		vs := make([]AppView, n)
		for i := range vs {
			st := Waiting
			if i < actives {
				st = Active
			}
			vs[i] = AppView{
				Name: fmt.Sprintf("app-%02d", i), Cores: 16 * (i + 1), State: st,
				Arrival: float64(i), BytesTotal: 1e8 * float64(i+1), BytesDone: 1e7 * float64(i),
			}
		}
		return vs
	}
	for _, p := range policies {
		ip, ok := p.(IndexedArbitrator)
		if !ok {
			t.Fatalf("%s: no indexed path", p.Name())
		}
		for n := 1; n <= 5; n++ {
			for actives := 0; actives <= 1; actives++ {
				vs := mkViews(n, actives)
				dec := p.Arbitrate(100, vs)
				allowed := make([]bool, n)
				_, recheck := ip.ArbitrateIndexed(100, vs, allowed)
				for i, v := range vs {
					if allowed[i] != dec.Allowed[v.Name] {
						t.Fatalf("%s n=%d actives=%d: %s indexed=%v map=%v",
							p.Name(), n, actives, v.Name, allowed[i], dec.Allowed[v.Name])
					}
				}
				if (recheck > 0) != (dec.RecheckAfter > 0) {
					t.Fatalf("%s n=%d: recheck indexed=%v map=%v", p.Name(), n, recheck, dec.RecheckAfter)
				}
			}
		}
	}
}

// TestArbiterBoundedLogRing exercises the ring: order is preserved across
// the wrap and LastRecord always points at the newest decision.
func TestArbiterBoundedLogRing(t *testing.T) {
	ar := NewArbiter(FCFSPolicy{})
	ar.SetLogBound(4)
	a, err := ar.Register("A", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Inform(float64(i))
		out := ar.Arbitrate(float64(i))
		if !out.Acted {
			t.Fatal("no arbitration")
		}
		a.End()

		log := ar.Log()
		want := i + 1
		if want > 4 {
			want = 4
		}
		if len(log) != want {
			t.Fatalf("after %d decisions: log len %d, want %d", i+1, len(log), want)
		}
		for j := 1; j < len(log); j++ {
			if log[j].Time <= log[j-1].Time {
				t.Fatalf("log out of order: %+v", log)
			}
		}
		if last := ar.LastRecord(); last == nil || last.Time != float64(i) {
			t.Fatalf("LastRecord = %+v, want time %d", last, i)
		}
	}
}

// TestArbiterUnregisterPreservesOrder checks registration order (and with
// it deterministic grant delivery) survives removals.
func TestArbiterUnregisterPreservesOrder(t *testing.T) {
	ar := NewArbiter(InterferePolicy{})
	var apps []*AppState
	for i := 0; i < 5; i++ {
		a, err := ar.Register(fmt.Sprintf("app-%d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	ar.Unregister(apps[1])
	ar.Unregister(apps[3])
	ar.Unregister(apps[3]) // double unregister is a no-op
	got := ar.Apps()
	want := []string{"app-0", "app-2", "app-4"}
	if len(got) != len(want) {
		t.Fatalf("apps = %d, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name() != want[i] {
			t.Fatalf("apps[%d] = %s, want %s", i, a.Name(), want[i])
		}
	}
	// The freed name is reusable.
	if _, err := ar.Register("app-1", 1); err != nil {
		t.Fatal(err)
	}
	// All still-registered apps get granted and reported in order.
	now := 0.0
	for _, a := range ar.Apps() {
		a.Inform(now)
		now++
	}
	out := ar.Arbitrate(now)
	if len(out.Granted) != 4 {
		t.Fatalf("granted %d apps, want 4", len(out.Granted))
	}
	for i, a := range out.Granted {
		if want := ar.Apps()[i].Name(); a.Name() != want {
			t.Fatalf("grant order %d = %s, want %s", i, a.Name(), want)
		}
	}
}

// TestResetRestoresRegistrationCores: Prepare(KeyCores) overrides the view's
// core count for the phase; Reset must restore the registration value so a
// reused arbiter arbitrates exactly like a fresh one.
func TestResetRestoresRegistrationCores(t *testing.T) {
	ar := NewArbiter(FCFSPolicy{})
	a, err := ar.Register("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	info := Info{}
	info.SetInt(KeyCores, 64)
	a.Prepare(info)
	if a.Cores() != 64 {
		t.Fatalf("cores after Prepare = %d, want 64", a.Cores())
	}
	ar.Reset()
	if a.Cores() != 8 {
		t.Fatalf("cores after Reset = %d, want the registration value 8", a.Cores())
	}
	if a.State() != Idle || a.Authorized() || len(ar.Log()) != 0 {
		t.Fatal("Reset left protocol state or log behind")
	}
}
