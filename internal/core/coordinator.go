package core

import (
	"repro/internal/sim"

	"fmt"
)

// Coordinator is the per-application endpoint of the coordination layer —
// the role rank 0 plays in the paper's prototype. It exposes the CALCioM
// API (Prepare/Complete/Inform/Check/Wait/Release) plus a small Session
// convenience wrapper used by the I/O drivers.
//
// CALCioM deliberately gives applications no lock and no way to force
// another application to stop: Check and Wait only observe the
// authorization state that arbitration produces, and an interrupted
// application pauses itself at its next coordination point.
//
// The protocol state itself lives in an AppState shared with the network
// daemon's sessions; the Coordinator adds only what is simulator-specific —
// the parked process resumer and the phase-time accounting.
type Coordinator struct {
	layer *Layer
	app   *AppState

	waiting *sim.Resumer

	// Accounting for metrics: total time spent between Begin and End of
	// phases (observed I/O time including coordination waits), and time
	// spent waiting/paused.
	phaseStart float64
	ioTime     float64
	waitTime   float64
	phases     int
}

// reset clears the simulator-specific per-run state (the parked-process
// resumer and the phase-time accounting); the shared AppState is reset by
// the owning Arbiter.
func (c *Coordinator) reset() {
	c.waiting = nil
	c.phaseStart = 0
	c.ioTime = 0
	c.waitTime = 0
	c.phases = 0
}

// Name returns the application name.
func (c *Coordinator) Name() string { return c.app.name }

// Cores returns the application's core count.
func (c *Coordinator) Cores() int { return c.app.cores }

// State returns the coordinator's protocol state.
func (c *Coordinator) State() State { return c.app.state }

// IOTime returns accumulated wall time inside I/O phases (incl. waits).
func (c *Coordinator) IOTime() float64 { return c.ioTime }

// WaitTime returns accumulated time spent blocked in Wait.
func (c *Coordinator) WaitTime() float64 { return c.waitTime }

// Prepare stacks information about the upcoming I/O accesses, as the paper's
// Prepare(MPI_Info) does. Recognized keys update the view the policies see.
func (c *Coordinator) Prepare(info Info) { c.app.Prepare(info) }

// Complete unstacks the most recent Prepare.
func (c *Coordinator) Complete() {
	if err := c.app.Complete(); err != nil {
		panic(err.Error())
	}
}

// Inform announces the application's intent (or continued intent) to do I/O
// to all other applications. Non-blocking: the information travels with the
// layer's message latency and triggers arbitration.
func (c *Coordinator) Inform(p *sim.Proc) {
	if c.app.Inform(p.Now()) {
		c.phaseStart = p.Now()
		c.phases++
	}
	c.layer.poke()
}

// Check reports whether the application is currently authorized to access
// the file system. It never blocks: an application free to reorganize its
// work can poll Check and do something else when denied.
func (c *Coordinator) Check() bool { return c.app.authorized }

// SystemBusy reports whether any *other* application is currently in an
// I/O phase (wanting, writing or paused). The paper's §III-C offers the
// coordination API to applications precisely so they "can observe the load
// of the storage stack at any point in the program and decide to schedule
// their operations differently — for instance, starting a new iteration of
// computation and coming back to the I/O phase later".
func (c *Coordinator) SystemBusy() bool {
	for _, o := range c.layer.coords {
		if o != c && o.app.state != Idle {
			return true
		}
	}
	return false
}

// Wait blocks until the application is authorized, then marks it Active.
func (c *Coordinator) Wait(p *sim.Proc) {
	if c.app.state == Idle {
		panic(fmt.Sprintf("core: %s: Wait before Inform", c.app.name))
	}
	start := p.Now()
	for !c.app.authorized {
		c.app.state = Waiting
		r := p.Suspend()
		c.waiting = r
		r.Park()
		c.waiting = nil
	}
	if err := c.app.Activate(); err != nil {
		panic(err.Error())
	}
	c.waitTime += p.Now() - start
}

// Release ends one step of the I/O access: it reports progress, lets the
// layer re-evaluate the global strategy, and responds to pending requests
// from other applications. A new Inform is required before the next access
// step, per the paper's API contract.
func (c *Coordinator) Release(p *sim.Proc) {
	if err := c.app.Release(); err != nil {
		panic(err.Error())
	}
	c.layer.poke()
}

// Progress records bytes written so far in this phase. Called by the I/O
// driver; the value rides along with the next Inform/Release message.
func (c *Coordinator) Progress(bytesDone float64) { c.app.Progress(bytesDone) }

// End terminates the I/O phase entirely: the application becomes invisible
// to arbitration until its next Inform.
func (c *Coordinator) End(p *sim.Proc) {
	c.app.End()
	c.ioTime += p.Now() - c.phaseStart
	c.layer.poke()
}

// Session bundles the common call sequences a driver needs at its
// coordination points.
type Session struct {
	C *Coordinator
}

// NewSession wraps a coordinator.
func NewSession(c *Coordinator) *Session { return &Session{C: c} }

// Begin opens an I/O phase: Prepare + Inform + Wait.
func (s *Session) Begin(p *sim.Proc, info Info) {
	s.C.Prepare(info)
	s.C.Inform(p)
	s.C.Wait(p)
}

// Yield is a coordination point between atomic accesses: Release + Inform +
// Wait. If arbitration has revoked authorization (an interruption), the call
// blocks until access is granted back; otherwise it costs only the
// coordination messages.
func (s *Session) Yield(p *sim.Proc) {
	s.C.Release(p)
	s.C.Inform(p)
	s.C.Wait(p)
}

// End closes the phase: Release + Complete + End.
func (s *Session) End(p *sim.Proc) {
	s.C.Release(p)
	s.C.Complete()
	s.C.End(p)
}
