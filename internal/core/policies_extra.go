package core

import (
	"fmt"
	"sort"
)

// PriorityPolicy authorizes the waiting application with the highest
// operator-assigned priority; ties fall back to arrival order. Applications
// without an assigned priority default to zero. This models a
// system-provided entity enforcing site policy (the centralized variant the
// paper's §III-B leaves open).
type PriorityPolicy struct {
	// Priorities maps application name -> priority (higher wins).
	Priorities map[string]int
}

// Name implements Policy.
func (PriorityPolicy) Name() string { return "priority" }

// Arbitrate implements Policy.
func (p PriorityPolicy) Arbitrate(now float64, apps []AppView) Decision {
	best := apps[0]
	bestPrio := p.Priorities[best.Name]
	for _, a := range apps[1:] {
		if prio := p.Priorities[a.Name]; prio > bestPrio {
			best, bestPrio = a, prio
		}
	}
	return AllowOnly(best.Name, fmt.Sprintf("priority %d", bestPrio))
}

// FairSharePolicy time-slices the file system between the applications that
// want it: the app that has consumed the least I/O service so far gets the
// next quantum. This is the "fair sharing of throughput" strawman the
// paper's introduction argues against — each application gets the same
// quality of service, and machine-wide efficiency suffers; the experiments
// quantify by how much.
type FairSharePolicy struct {
	// Quantum is the re-arbitration period in seconds (default 1).
	Quantum float64
}

// Name implements Policy.
func (FairSharePolicy) Name() string { return "fairshare" }

// Arbitrate implements Policy. Consumed service is approximated by the
// progress each application has reported (bytes done): the app with the
// least progress fraction is served next.
func (f FairSharePolicy) Arbitrate(now float64, apps []AppView) Decision {
	type cand struct {
		name string
		frac float64
	}
	cands := make([]cand, 0, len(apps))
	for _, a := range apps {
		frac := 0.0
		if a.BytesTotal > 0 {
			frac = a.BytesDone / a.BytesTotal
		}
		cands = append(cands, cand{a.Name, frac})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].frac != cands[j].frac {
			return cands[i].frac < cands[j].frac
		}
		return cands[i].name < cands[j].name
	})
	q := f.Quantum
	if q <= 0 {
		q = 1
	}
	dec := AllowOnly(cands[0].name, fmt.Sprintf("least served (%.0f%% done)", 100*cands[0].frac))
	if len(apps) > 1 {
		dec.RecheckAfter = q
	}
	return dec
}
