// Package core implements CALCioM, the paper's contribution: a
// cross-application layer for coordinated I/O management. Applications
// register a Coordinator with a shared Layer, describe their upcoming I/O
// with Prepare, announce it with Inform, and gate their accesses with
// Check/Wait/Release. A pluggable Policy arbitrates who may access the file
// system, either statically (interfere, FCFS serialization, interruption) or
// dynamically by minimizing a machine-wide efficiency Metric.
package core

import (
	"fmt"
	"sort"
	"strconv"
)

// Info carries application-declared knowledge about upcoming I/O, mirroring
// the MPI_Info (key,value) structure the paper's Prepare call uses.
type Info map[string]string

// Well-known Info keys. The paper's Section III-C gives the number of files,
// the number of rounds of collective buffering and the amount of data per
// round as examples of values worth communicating.
const (
	KeyBytesTotal    = "bytes_total"     // total bytes this I/O phase will write
	KeyBytesPerRound = "bytes_per_round" // bytes written per collective-buffering round
	KeyFiles         = "files"           // number of files in the phase
	KeyRounds        = "rounds"          // rounds of collective buffering
	KeyCores         = "cores"           // cores the application occupies
	KeyAloneBW       = "alone_bw"        // estimated solo bandwidth (bytes/s), optional
)

// Clone returns a copy of the info map.
func (in Info) Clone() Info {
	out := make(Info, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// SetInt stores an integer value.
func (in Info) SetInt(key string, v int64) { in[key] = strconv.FormatInt(v, 10) }

// SetFloat stores a float value.
func (in Info) SetFloat(key string, v float64) { in[key] = strconv.FormatFloat(v, 'g', -1, 64) }

// Int returns the integer value for key, or def if absent or malformed.
func (in Info) Int(key string, def int64) int64 {
	s, ok := in[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return v
}

// Float returns the float value for key, or def if absent or malformed.
func (in Info) Float(key string, def float64) float64 {
	s, ok := in[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return v
}

// Keys returns the keys in sorted order (for deterministic formatting).
func (in Info) Keys() []string {
	ks := make([]string, 0, len(in))
	for k := range in {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// String renders the info deterministically.
func (in Info) String() string {
	s := "{"
	for i, k := range in.Keys() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", k, in[k])
	}
	return s + "}"
}
