package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fluid"
)

// PerfModel estimates I/O completion times from the information applications
// share. It deliberately uses only coarse, application-declarable quantities
// (remaining bytes, cores, injection limits), like the paper's closed-form
// decision in §IV-D.
type PerfModel struct {
	// FSBandwidth is the file system's aggregate sustained bandwidth.
	FSBandwidth float64
	// ProcNIC is the per-core injection bandwidth limit, used to estimate
	// solo bandwidth when an application does not declare one.
	ProcNIC float64
}

// AloneBW returns the app's estimated solo bandwidth.
func (m *PerfModel) AloneBW(v AppView) float64 {
	if v.AloneBW > 0 {
		return v.AloneBW
	}
	inj := float64(v.Cores) * m.ProcNIC
	if inj <= 0 || inj > m.FSBandwidth {
		return m.FSBandwidth
	}
	return inj
}

// SoloTime estimates the time for the app to write `bytes` alone.
func (m *PerfModel) SoloTime(v AppView, bytes float64) float64 {
	bw := m.AloneBW(v)
	if bw <= 0 {
		return math.Inf(1)
	}
	return bytes / bw
}

// SharedFinishTimes estimates per-app completion times (from now) if all
// the given apps interfere, using the same weighted max-min fluid model as
// the simulated servers: weight = cores (concurrent client streams), cap =
// injection limit.
func (m *PerfModel) SharedFinishTimes(apps []AppView) []float64 {
	flows := make([]fluid.Flow, len(apps))
	for i, a := range apps {
		inj := float64(a.Cores) * m.ProcNIC
		flows[i] = fluid.Flow{Work: a.Remaining(), Weight: float64(a.Cores), Cap: inj}
	}
	return fluid.FinishTimes(m.FSBandwidth, flows)
}

// Metric is a machine-wide efficiency objective: given the per-app estimated
// I/O-phase durations (from the decision instant to each app's completion,
// waiting included), it returns a cost to minimize.
type Metric interface {
	Name() string
	Cost(apps []AppView, ioTime []float64) float64
}

// CPUSecondsWasted is the paper's §IV-D metric: f = Σ_X N_X · T_X, the CPU
// time burned in I/O phases instead of computation.
type CPUSecondsWasted struct{}

// Name implements Metric.
func (CPUSecondsWasted) Name() string { return "cpu-seconds" }

// Cost implements Metric.
func (CPUSecondsWasted) Cost(apps []AppView, ioTime []float64) float64 {
	var f float64
	for i, a := range apps {
		f += float64(a.Cores) * ioTime[i]
	}
	return f
}

// SumIOTime minimizes the plain sum of I/O times (cores ignored).
type SumIOTime struct{}

// Name implements Metric.
func (SumIOTime) Name() string { return "sum-io-time" }

// Cost implements Metric.
func (SumIOTime) Cost(apps []AppView, ioTime []float64) float64 {
	var f float64
	for _, t := range ioTime {
		f += t
	}
	return f
}

// SumInterferenceFactors approximates Σ I_X = Σ T_X / T_X(alone); favors
// protecting small applications from large ones (paper §III-A4).
type SumInterferenceFactors struct {
	Model *PerfModel
}

// Name implements Metric.
func (SumInterferenceFactors) Name() string { return "sum-interference" }

// Cost implements Metric.
func (s SumInterferenceFactors) Cost(apps []AppView, ioTime []float64) float64 {
	var f float64
	for i, a := range apps {
		solo := s.Model.SoloTime(a, a.Remaining())
		if solo <= 0 {
			continue
		}
		f += ioTime[i] / solo
	}
	return f
}

// Makespan minimizes the time until the last app finishes its I/O.
type Makespan struct{}

// Name implements Metric.
func (Makespan) Name() string { return "makespan" }

// Cost implements Metric.
func (Makespan) Cost(apps []AppView, ioTime []float64) float64 {
	var m float64
	for _, t := range ioTime {
		if t > m {
			m = t
		}
	}
	return m
}

// DynamicPolicy is CALCioM's adaptive strategy (§III-A4, §IV-D): at every
// arbitration it evaluates candidate schedules — interfere, FCFS order,
// interrupt order — under the estimation model and authorizes according to
// whichever minimizes the configured machine-wide metric.
type DynamicPolicy struct {
	Metric Metric
	Model  *PerfModel
	// AllowInterfere includes the "let them interfere" candidate; the
	// paper's §IV-D evaluation chooses only between FCFS and interruption,
	// so experiments can switch the third candidate off for parity.
	AllowInterfere bool
}

// Name implements Policy.
func (d DynamicPolicy) Name() string { return "dynamic(" + d.Metric.Name() + ")" }

// Arbitrate implements Policy.
func (d DynamicPolicy) Arbitrate(now float64, apps []AppView) Decision {
	if d.Model == nil || d.Metric == nil {
		panic("core: DynamicPolicy needs Model and Metric")
	}
	if len(apps) == 1 {
		return AllowAll(apps, "single application")
	}

	type candidate struct {
		name    string
		decide  func() Decision
		ioTimes []float64
	}
	var cands []candidate

	// Serial schedules: finish times accumulate in queue order.
	serialTimes := func(order []int) []float64 {
		times := make([]float64, len(apps))
		acc := 0.0
		for _, i := range order {
			acc += d.Model.SoloTime(apps[i], apps[i].Remaining())
			times[i] = acc
		}
		return times
	}

	// Split into currently-active holders and waiters (both pre-sorted by
	// arrival). Candidate schedules are built around the holder so a
	// decision made earlier is not flip-flopped at every re-arbitration:
	// the serialize candidate continues whoever is writing, and the
	// interrupt candidate promotes the newest waiter ahead of it.
	var actives, waiters []int
	for i, a := range apps {
		if a.State == Active {
			actives = append(actives, i)
		} else {
			waiters = append(waiters, i)
		}
	}

	continueOrder := append(append([]int{}, actives...), waiters...)
	cands = append(cands, candidate{
		name:    "serialize",
		ioTimes: serialTimes(continueOrder),
		decide: func() Decision {
			head := apps[continueOrder[0]].Name
			return AllowOnly(head, "dynamic: serialize after "+head)
		},
	})

	if len(waiters) > 1 {
		// Shortest-remaining-first among the waiters (holders keep going):
		// with several applications queued, the paper's "choose a place in
		// the queue" generalization. SJF minimizes the sum of waiting
		// times, which metrics like CPU-seconds reward.
		sjf := append([]int{}, actives...)
		ws := append([]int{}, waiters...)
		sort.Slice(ws, func(a, b int) bool {
			ta := d.Model.SoloTime(apps[ws[a]], apps[ws[a]].Remaining())
			tb := d.Model.SoloTime(apps[ws[b]], apps[ws[b]].Remaining())
			if ta != tb {
				return ta < tb
			}
			return apps[ws[a]].Name < apps[ws[b]].Name
		})
		sjf = append(sjf, ws...)
		cands = append(cands, candidate{
			name:    "sjf",
			ioTimes: serialTimes(sjf),
			decide: func() Decision {
				head := apps[sjf[0]].Name
				return AllowOnly(head, "dynamic: shortest job first ("+head+")")
			},
		})
	}

	if len(waiters) > 0 && len(actives) > 0 {
		newest := waiters[len(waiters)-1]
		intOrder := []int{newest}
		intOrder = append(intOrder, actives...)
		for _, wi := range waiters {
			if wi != newest {
				intOrder = append(intOrder, wi)
			}
		}
		cands = append(cands, candidate{
			name:    "interrupt",
			ioTimes: serialTimes(intOrder),
			decide: func() Decision {
				return AllowOnly(apps[newest].Name, "dynamic: interrupt for newcomer")
			},
		})
	}

	if d.AllowInterfere {
		cands = append(cands, candidate{
			name:    "interfere",
			ioTimes: d.Model.SharedFinishTimes(apps),
			decide: func() Decision {
				return AllowAll(apps, "dynamic: interference is cheap")
			},
		})
	}

	best, bestCost := -1, math.Inf(1)
	for i, c := range cands {
		cost := d.Metric.Cost(apps, c.ioTimes)
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	dec := cands[best].decide()
	dec.Reason = fmt.Sprintf("%s (cost %.4g by %s)", dec.Reason, bestCost, d.Metric.Name())
	return dec
}
