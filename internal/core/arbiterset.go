package core

import (
	"sort"
	"sync"
)

// TargetDecision is one arbitration decision attributed to the storage
// target whose arbiter made it, the unit of the combined cross-target log.
type TargetDecision struct {
	Target string
	DecisionRecord
}

// ArbiterSet owns one Arbiter per storage target: the coordination domain of
// the sharded daemon, where contention — and therefore arbitration — is
// independent per target (an application writing to server A must never
// convoy behind one writing to server B). Arbiters are created on demand by
// Get and live for the set's lifetime.
//
// Concurrency contract: the registry itself (Get/Lookup/Targets/Len) is safe
// for concurrent use — the daemon's reader goroutines resolve targets while
// shard goroutines arbitrate. Each Arbiter, however, keeps the single-owner
// discipline of the unsharded design: exactly one goroutine (the target's
// arbitration goroutine) may call its mutating methods. The combining
// methods (LastRecord, Log, Reset, Each) read or write across every arbiter
// and are therefore only safe once those owners are quiescent — snapshots in
// the live daemon are instead assembled per shard and merged by the caller.
type ArbiterSet struct {
	policy   Policy
	indexed  bool
	logBound int
	hasBound bool

	mu       sync.RWMutex
	byTarget map[string]*Arbiter
	targets  []string // sorted
}

// NewArbiterSet builds an empty set. Every arbiter created by Get runs the
// given policy; the policies shipped with this package are stateless values,
// so one policy serves all targets. A policy with mutable per-domain state
// would need one set per target instead.
func NewArbiterSet(policy Policy) *ArbiterSet {
	if policy == nil {
		panic("core: nil policy")
	}
	return &ArbiterSet{policy: policy, byTarget: make(map[string]*Arbiter)}
}

// Policy returns the policy shared by every arbiter in the set.
func (s *ArbiterSet) Policy() Policy { return s.policy }

// SetIndexed selects the IndexedArbitrator fast path on every current and
// future arbiter. Call it before handing arbiters to their owner goroutines.
func (s *ArbiterSet) SetIndexed(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexed = on
	for _, ar := range s.byTarget {
		ar.SetIndexed(on)
	}
}

// SetLogBound applies the decision-log bound to every current and future
// arbiter (see Arbiter.SetLogBound). Call it before the first Arbitrate.
func (s *ArbiterSet) SetLogBound(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logBound, s.hasBound = n, true
	for _, ar := range s.byTarget {
		ar.SetLogBound(n)
	}
}

// Get returns the arbiter for the target, creating it on first use with the
// set's policy, indexed mode and log bound.
func (s *ArbiterSet) Get(target string) *Arbiter {
	s.mu.RLock()
	ar := s.byTarget[target]
	s.mu.RUnlock()
	if ar != nil {
		return ar
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ar = s.byTarget[target]; ar != nil {
		return ar
	}
	ar = NewArbiter(s.policy)
	ar.SetIndexed(s.indexed)
	if s.hasBound {
		ar.SetLogBound(s.logBound)
	}
	s.byTarget[target] = ar
	i := sort.SearchStrings(s.targets, target)
	s.targets = append(s.targets, "")
	copy(s.targets[i+1:], s.targets[i:])
	s.targets[i] = target
	return ar
}

// Lookup returns the target's arbiter, or nil when none exists yet.
func (s *ArbiterSet) Lookup(target string) *Arbiter {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byTarget[target]
}

// Targets returns the known target names, sorted.
func (s *ArbiterSet) Targets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.targets...)
}

// Len returns the number of targets.
func (s *ArbiterSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byTarget)
}

// Each visits every arbiter in sorted target order. See the concurrency
// contract: the arbiters' owner goroutines must be quiescent.
func (s *ArbiterSet) Each(fn func(target string, ar *Arbiter)) {
	s.mu.RLock()
	targets := append([]string(nil), s.targets...)
	s.mu.RUnlock()
	for _, t := range targets {
		fn(t, s.Lookup(t))
	}
}

// Reset returns every arbiter to its just-constructed state (keeping
// registered applications, per Arbiter.Reset). The registry itself — which
// targets exist — is retained.
func (s *ArbiterSet) Reset() {
	s.Each(func(_ string, ar *Arbiter) { ar.Reset() })
}

// LastRecord is the combining layer's "latest decision": the most recent
// decision record across every target, ties broken toward the smaller
// target name so the answer is deterministic. It returns zero values when
// no arbiter has decided anything.
func (s *ArbiterSet) LastRecord() (target string, rec *DecisionRecord) {
	s.Each(func(t string, ar *Arbiter) {
		r := ar.LastRecord()
		if r == nil {
			return
		}
		if rec == nil || r.Time > rec.Time {
			target, rec = t, r
		}
	})
	return target, rec
}

// Log merges the per-target decision logs into one cross-target record,
// ordered by time with ties broken by target name then per-target order —
// deterministic for a deterministic set of shard histories. It allocates
// the merged slice; like Arbiter.Log it is a cold path.
func (s *ArbiterSet) Log() []TargetDecision {
	var out []TargetDecision
	s.Each(func(t string, ar *Arbiter) {
		for _, rec := range ar.Log() {
			out = append(out, TargetDecision{Target: t, DecisionRecord: rec})
		}
	})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Target < out[j].Target
	})
	return out
}
