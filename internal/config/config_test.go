package config

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/pfs"
)

const sample = `{
  "name": "test",
  "fs": {"servers": 4, "stripe_kib": 64, "server_mibps": 100},
  "proc_nic_mibps": 4,
  "comm_mibps_per_proc": 2,
  "coord_latency_s": 0.001,
  "apps": [
    {"name": "A", "procs": 32, "granularity": "round",
     "workload": {"pattern": "contiguous", "block_mib": 8, "blocks_per_proc": 1, "req_mib": 2}},
    {"name": "B", "procs": 8,
     "workload": {"pattern": "strided", "block_mib": 2, "blocks_per_proc": 4,
                  "cb_buf_mib": 16, "access": "read"}}
  ]
}`

func TestParseValid(t *testing.T) {
	sc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "test" || sc.FS.Servers != 4 {
		t.Fatalf("scenario = %+v", sc)
	}
	if sc.FS.StripeBytes != 64<<10 || sc.FS.ServerBW != 100*float64(1<<20) {
		t.Fatalf("fs units wrong: %+v", sc.FS)
	}
	if len(sc.Apps) != 2 {
		t.Fatalf("apps = %d", len(sc.Apps))
	}
	a := sc.Apps[0]
	if a.W.Pattern != ior.Contiguous || a.W.BlockSize != 8<<20 || a.Gran != ior.PerRound {
		t.Fatalf("app A = %+v", a)
	}
	b := sc.Apps[1]
	if b.W.Pattern != ior.Strided || b.W.Access != ior.ReadAccess {
		t.Fatalf("app B = %+v", b)
	}
}

func TestParsedScenarioRuns(t *testing.T) {
	sc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	res := sc.Run(delta.FCFS, []float64{0, 1})
	if res.IOTime[0] <= 0 || res.IOTime[1] <= 0 {
		t.Fatalf("run produced no I/O: %+v", res.IOTime)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name":"x","bogus":1}`,
		"no apps":         `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[]}`,
		"bad pattern":     `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[{"name":"a","procs":1,"workload":{"pattern":"zig","block_mib":1,"blocks_per_proc":1}}]}`,
		"bad granularity": `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[{"name":"a","procs":1,"granularity":"nano","workload":{"block_mib":1,"blocks_per_proc":1}}]}`,
		"bad access":      `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[{"name":"a","procs":1,"workload":{"block_mib":1,"blocks_per_proc":1,"access":"scan"}}]}`,
		"zero nic":        `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"apps":[{"name":"a","procs":1,"workload":{"block_mib":1,"blocks_per_proc":1}}]}`,
		"bad fs policy":   `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10,"policy":"rand"},"proc_nic_mibps":1,"apps":[{"name":"a","procs":1,"workload":{"block_mib":1,"blocks_per_proc":1}}]}`,
		"zero procs":      `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[{"name":"a","procs":0,"workload":{"block_mib":1,"blocks_per_proc":1}}]}`,
		"zero block":      `{"name":"x","fs":{"servers":1,"stripe_kib":64,"server_mibps":10},"proc_nic_mibps":1,"apps":[{"name":"a","procs":1,"workload":{"block_mib":0,"blocks_per_proc":1}}]}`,
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFSPolicyParsing(t *testing.T) {
	for in, want := range map[string]pfs.SchedPolicy{
		"": pfs.Share, "share": pfs.Share, "fifo": pfs.FIFO, "exclusive": pfs.Exclusive,
	} {
		got, err := parseFSPolicy(in)
		if err != nil || got != want {
			t.Fatalf("parseFSPolicy(%q) = %v, %v", in, got, err)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	s := Scenario{
		Name:         "rt",
		FS:           FS{Servers: 2, StripeKiB: 64, ServerMiBps: 10},
		ProcNICMiBps: 1,
		Apps: []App{{
			Name: "a", Procs: 4,
			Workload: Workload{Pattern: "contiguous", BlockMiB: 1, BlocksPerProc: 1},
		}},
	}
	var buf bytes.Buffer
	if err := Dump(&buf, s); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "rt" || len(sc.Apps) != 1 {
		t.Fatalf("round trip lost data: %+v", sc)
	}
}
