// Package config serializes experiment scenarios to and from JSON so the
// command-line tools can run user-defined setups without recompilation.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/pfs"
)

// Workload mirrors ior.Workload with JSON-friendly field names and MiB
// units.
type Workload struct {
	Pattern       string  `json:"pattern"` // "contiguous" | "strided"
	BlockMiB      int64   `json:"block_mib"`
	BlocksPerProc int     `json:"blocks_per_proc"`
	Files         int     `json:"files,omitempty"`
	ReqMiB        int64   `json:"req_mib,omitempty"`
	Aggregators   int     `json:"aggregators,omitempty"`
	CBBufMiB      int64   `json:"cb_buf_mib,omitempty"`
	Phases        int     `json:"phases,omitempty"`
	ComputeTime   float64 `json:"compute_time_s,omitempty"`
	Adaptive      bool    `json:"adaptive,omitempty"`
	Access        string  `json:"access,omitempty"` // "write" (default) | "read"
}

// App mirrors delta.AppSpec.
type App struct {
	Name        string   `json:"name"`
	Procs       int      `json:"procs"`
	Nodes       int      `json:"nodes,omitempty"`
	Granularity string   `json:"granularity,omitempty"` // "phase" | "file" | "round"
	Workload    Workload `json:"workload"`
}

// FS mirrors pfs.Config in MiB units.
type FS struct {
	Servers     int     `json:"servers"`
	StripeKiB   int64   `json:"stripe_kib"`
	ServerMiBps float64 `json:"server_mibps"`
	CacheMiBps  float64 `json:"cache_mibps,omitempty"`
	CacheMiB    float64 `json:"cache_mib,omitempty"`
	Policy      string  `json:"policy,omitempty"` // "share" | "fifo" | "exclusive"
	TrueNetwork bool    `json:"true_network,omitempty"`
}

// Scenario is the JSON form of delta.Scenario.
type Scenario struct {
	Name            string  `json:"name"`
	FS              FS      `json:"fs"`
	ProcNICMiBps    float64 `json:"proc_nic_mibps"`
	CommMiBpsPerCPU float64 `json:"comm_mibps_per_proc,omitempty"`
	CommAlpha       float64 `json:"comm_alpha_s,omitempty"`
	CoordLatency    float64 `json:"coord_latency_s,omitempty"`
	Apps            []App   `json:"apps"`
}

const miB = float64(1 << 20)

// Parse reads a JSON scenario. Unknown keys are rejected and parse errors
// carry line:column positions.
func Parse(r io.Reader) (delta.Scenario, error) {
	data, err := readAll(r)
	if err != nil {
		return delta.Scenario{}, err
	}
	var s Scenario
	if err := strictUnmarshal(data, &s); err != nil {
		return delta.Scenario{}, err
	}
	return s.Build()
}

// Load reads a JSON scenario from a file.
func Load(path string) (delta.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return delta.Scenario{}, err
	}
	defer f.Close()
	return Parse(f)
}

// Build converts to the runtime scenario, validating everything.
func (s Scenario) Build() (delta.Scenario, error) {
	fsPolicy, err := parseFSPolicy(s.FS.Policy)
	if err != nil {
		return delta.Scenario{}, err
	}
	sc := delta.Scenario{
		Name: s.Name,
		FS: pfs.Config{
			Servers:     s.FS.Servers,
			StripeBytes: s.FS.StripeKiB << 10,
			ServerBW:    s.FS.ServerMiBps * miB,
			CacheBW:     s.FS.CacheMiBps * miB,
			CacheBytes:  s.FS.CacheMiB * miB,
			Policy:      fsPolicy,
		},
		ProcNIC:       s.ProcNICMiBps * miB,
		CommBWPerProc: s.CommMiBpsPerCPU * miB,
		CommAlpha:     s.CommAlpha,
		CoordLatency:  s.CoordLatency,
		TrueNetwork:   s.FS.TrueNetwork,
	}
	if err := sc.FS.Validate(); err != nil {
		return delta.Scenario{}, err
	}
	if sc.ProcNIC <= 0 {
		return delta.Scenario{}, fmt.Errorf("config: proc_nic_mibps must be positive")
	}
	if len(s.Apps) == 0 {
		return delta.Scenario{}, fmt.Errorf("config: need at least one app")
	}
	for _, a := range s.Apps {
		spec, err := a.build()
		if err != nil {
			return delta.Scenario{}, err
		}
		sc.Apps = append(sc.Apps, spec)
	}
	return sc, nil
}

func (a App) build() (delta.AppSpec, error) {
	if a.Name == "" || a.Procs <= 0 {
		return delta.AppSpec{}, fmt.Errorf("config: app needs a name and positive procs")
	}
	w, err := a.Workload.build()
	if err != nil {
		return delta.AppSpec{}, fmt.Errorf("config: app %s: %w", a.Name, err)
	}
	gran, err := parseGranularity(a.Granularity)
	if err != nil {
		return delta.AppSpec{}, fmt.Errorf("config: app %s: %w", a.Name, err)
	}
	return delta.AppSpec{Name: a.Name, Procs: a.Procs, Nodes: a.Nodes, W: w, Gran: gran}, nil
}

func (w Workload) build() (ior.Workload, error) {
	out := ior.Workload{
		BlockSize:     w.BlockMiB << 20,
		BlocksPerProc: w.BlocksPerProc,
		Files:         w.Files,
		ReqBytes:      w.ReqMiB << 20,
		CB:            ior.CollectiveBuffering{Aggregators: w.Aggregators, BufBytes: w.CBBufMiB << 20},
		Phases:        w.Phases,
		ComputeTime:   w.ComputeTime,
		Adaptive:      w.Adaptive,
	}
	switch w.Pattern {
	case "", "contiguous":
		out.Pattern = ior.Contiguous
	case "strided":
		out.Pattern = ior.Strided
	default:
		return out, fmt.Errorf("unknown pattern %q", w.Pattern)
	}
	switch w.Access {
	case "", "write":
		out.Access = ior.WriteAccess
	case "read":
		out.Access = ior.ReadAccess
	default:
		return out, fmt.Errorf("unknown access %q", w.Access)
	}
	if out.BlockSize <= 0 || out.BlocksPerProc <= 0 {
		return out, fmt.Errorf("block_mib and blocks_per_proc must be positive")
	}
	return out, nil
}

func parseGranularity(s string) (ior.Granularity, error) {
	switch s {
	case "", "round":
		return ior.PerRound, nil
	case "file":
		return ior.PerFile, nil
	case "phase":
		return ior.PerPhase, nil
	}
	return 0, fmt.Errorf("unknown granularity %q", s)
}

func parseFSPolicy(s string) (pfs.SchedPolicy, error) {
	switch s {
	case "", "share":
		return pfs.Share, nil
	case "fifo":
		return pfs.FIFO, nil
	case "exclusive":
		return pfs.Exclusive, nil
	}
	return 0, fmt.Errorf("config: unknown fs policy %q", s)
}

// Dump serializes a JSON form of the scenario description (not the runtime
// scenario — round-tripping units back would lose intent).
func Dump(w io.Writer, s Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
