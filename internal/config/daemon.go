package config

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Daemon is the JSON configuration of calciomd, the live coordination
// daemon. Like Scenario it is strict: unknown keys are rejected with line
// positions, so a typo'd setting cannot silently fall back to a default.
type Daemon struct {
	// ListenAddr is the TCP address to serve on (default "127.0.0.1:9595").
	ListenAddr string `json:"listen_addr,omitempty"`
	// Policy selects the arbitration policy: "fcfs" (default),
	// "interrupt", "interfere" or "delay".
	Policy string `json:"policy,omitempty"`
	// DelayOverlap is the delay policy's allowed overlap fraction.
	DelayOverlap float64 `json:"delay_overlap,omitempty"`
	// SessionTimeoutS evicts sessions idle longer than this many seconds;
	// 0 disables eviction.
	SessionTimeoutS float64 `json:"session_timeout_s,omitempty"`
	// GrantGraceS keeps a disconnected session's registration and grants
	// alive this many seconds so a reconnecting client can resume without
	// losing its place; 0 drops disconnected sessions immediately. Must be
	// shorter than session_timeout_s when both are set — the grace window
	// is for reconnection, idle eviction is for abandonment.
	GrantGraceS float64 `json:"grant_grace_s,omitempty"`
	// DecisionLog bounds the decision log kept for stats (default 256).
	DecisionLog int `json:"decision_log,omitempty"`
	// FSMiBps and ProcNICMiBps describe the storage system for the
	// performance model behind the delay policy and the live interference
	// factors in stats. Optional for model-free policies.
	FSMiBps      float64 `json:"fs_mibps,omitempty"`
	ProcNICMiBps float64 `json:"proc_nic_mibps,omitempty"`
	// RecordPath, when set, records every coordination event to this file
	// (internal/trace format) for offline re-arbitration with
	// calciom-replay. Recording never blocks or allocates on the
	// arbitration hot path; overflow beyond RecordBuffer in-flight events
	// is dropped and counted instead.
	RecordPath string `json:"record_path,omitempty"`
	// RecordBuffer is the in-flight event capacity between the arbitration
	// goroutine and the trace writer; 0 means the trace package default.
	RecordBuffer int `json:"record_buffer,omitempty"`
	// RecordSyncEvery emits a crash-consistency sync point in the trace
	// every this many events (0 = the trace package default); a daemon that
	// dies mid-write leaves a trace readable up to the last sync.
	RecordSyncEvery int `json:"record_sync_every,omitempty"`
	// RecordSyncIntervalS additionally syncs the trace on this wall-clock
	// period in seconds (0 = the trace package default; -1 disables the
	// timer, syncing on event count only).
	RecordSyncIntervalS float64 `json:"record_sync_interval_s,omitempty"`
	// AdminAddr, when set, serves the observability endpoints on this TCP
	// address: /metrics (Prometheus text format), /healthz, /statusz (the
	// full stats snapshot as JSON) and net/http/pprof. Enabling it also
	// turns on hot-path metrics collection (still allocation-free). Empty
	// disables the listener and collection entirely.
	AdminAddr string `json:"admin_addr,omitempty"`
	// LogLevel enables grant-lifecycle structured logging to stderr at the
	// given slog level: "debug" (includes per-grant events), "info",
	// "warn" or "error". Empty disables event logging.
	LogLevel string `json:"log_level,omitempty"`
	// LogSample thins high-frequency grant events: only every LogSample-th
	// grant is logged (lifecycle events are never sampled away). 0 or 1
	// logs every grant.
	LogSample int `json:"log_sample,omitempty"`
	// MaxSessions bounds concurrently registered sessions; registrations
	// beyond it are rejected with the retryable code "busy". 0 means
	// unlimited. Resumes of existing names never count against the bound.
	MaxSessions int `json:"max_sessions,omitempty"`
	// HandshakeTimeoutS drops connections that have not completed register
	// within this many seconds of connecting, closing the slow-loris hole
	// (idle eviction only covers registered sessions). 0 disables the
	// deadline. Must be shorter than session_timeout_s when both are set.
	HandshakeTimeoutS float64 `json:"handshake_timeout_s,omitempty"`
	// MaxRequestsPerSec rate-limits each connection with a token bucket of
	// this rate (burst equal to the rate): a violator gets one retryable
	// "overloaded" reply, then is disconnected on sustained abuse. 0
	// disables per-connection rate limiting.
	MaxRequestsPerSec float64 `json:"max_requests_per_sec,omitempty"`
	// AcceptLoops shards the listener's accept loop across this many
	// goroutines so connection-churn bursts are not serialized behind one
	// accept caller. 0 (or 1) means a single loop.
	AcceptLoops int `json:"accept_loops,omitempty"`
	// SockBufferBytes, when positive, sets the kernel read and write buffer
	// sizes (SO_RCVBUF/SO_SNDBUF) on every accepted connection. 0 keeps
	// the OS defaults.
	SockBufferBytes int `json:"sock_buffer_bytes,omitempty"`
}

// DefaultListenAddr is used when listen_addr is omitted.
const DefaultListenAddr = "127.0.0.1:9595"

// ParseDaemon reads a strict JSON daemon configuration.
func ParseDaemon(r io.Reader) (Daemon, error) {
	data, err := readAll(r)
	if err != nil {
		return Daemon{}, err
	}
	var d Daemon
	if err := strictUnmarshal(data, &d); err != nil {
		return Daemon{}, err
	}
	if err := d.validateAt(data); err != nil {
		return Daemon{}, err
	}
	if err := d.Validate(); err != nil {
		return Daemon{}, err
	}
	return d, nil
}

// validateAt re-checks the overload-protection settings against the raw
// document so the error carries a line:column position pointing at the
// offending key, like strictUnmarshal's own errors. Only checks that need
// the document are here: an explicit max_sessions below 1 (indistinguishable
// from "unset" after unmarshal — 0 is the unlimited default when the key is
// absent) and a handshake deadline at or past the idle-eviction timeout.
func (d Daemon) validateAt(data []byte) error {
	if off := findKey(data, "max_sessions"); off >= 0 && d.MaxSessions < 1 {
		line, col := lineCol(data, off)
		return fmt.Errorf("config: line %d:%d: max_sessions must be >= 1 (omit the key for unlimited)", line, col)
	}
	if d.HandshakeTimeoutS > 0 && d.SessionTimeoutS > 0 && d.HandshakeTimeoutS >= d.SessionTimeoutS {
		if off := findKey(data, "handshake_timeout_s"); off >= 0 {
			line, col := lineCol(data, off)
			return fmt.Errorf("config: line %d:%d: handshake_timeout_s must be shorter than session_timeout_s", line, col)
		}
	}
	return nil
}

// LoadDaemon reads a daemon configuration file.
func LoadDaemon(path string) (Daemon, error) {
	f, err := os.Open(path)
	if err != nil {
		return Daemon{}, err
	}
	defer f.Close()
	return ParseDaemon(f)
}

// Validate checks the settings without building anything.
func (d Daemon) Validate() error {
	switch d.Policy {
	case "", "fcfs", "interrupt", "interfere":
	case "delay":
		if d.DelayOverlap < 0 {
			return fmt.Errorf("config: delay_overlap must be >= 0")
		}
		if d.FSMiBps <= 0 {
			return fmt.Errorf("config: policy \"delay\" needs fs_mibps for its performance model")
		}
	default:
		return fmt.Errorf("config: unknown policy %q (want fcfs, interrupt, interfere or delay)", d.Policy)
	}
	if d.SessionTimeoutS < 0 {
		return fmt.Errorf("config: session_timeout_s must be >= 0")
	}
	if d.GrantGraceS < 0 {
		return fmt.Errorf("config: grant_grace_s must be >= 0")
	}
	if d.GrantGraceS > 0 && d.SessionTimeoutS > 0 && d.GrantGraceS >= d.SessionTimeoutS {
		return fmt.Errorf("config: grant_grace_s must be shorter than session_timeout_s")
	}
	if d.FSMiBps < 0 || d.ProcNICMiBps < 0 {
		return fmt.Errorf("config: fs_mibps and proc_nic_mibps must be >= 0")
	}
	// record_buffer without record_path is deliberately allowed: the path
	// often arrives later as a flag override (calciomd -record), and an
	// unused buffer size is harmless.
	if d.RecordBuffer < 0 {
		return fmt.Errorf("config: record_buffer must be >= 0")
	}
	if d.RecordSyncEvery < 0 {
		return fmt.Errorf("config: record_sync_every must be >= 0")
	}
	if d.RecordSyncIntervalS < -1 {
		return fmt.Errorf("config: record_sync_interval_s must be >= 0, or -1 to disable")
	}
	switch d.LogLevel {
	case "", "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("config: unknown log_level %q (want debug, info, warn or error)", d.LogLevel)
	}
	if d.LogSample < 0 {
		return fmt.Errorf("config: log_sample must be >= 0")
	}
	if d.MaxSessions < 0 {
		return fmt.Errorf("config: max_sessions must be >= 1, or 0 for unlimited")
	}
	if d.HandshakeTimeoutS < 0 {
		return fmt.Errorf("config: handshake_timeout_s must be >= 0")
	}
	if d.HandshakeTimeoutS > 0 && d.SessionTimeoutS > 0 && d.HandshakeTimeoutS >= d.SessionTimeoutS {
		return fmt.Errorf("config: handshake_timeout_s must be shorter than session_timeout_s")
	}
	if d.MaxRequestsPerSec < 0 {
		return fmt.Errorf("config: max_requests_per_sec must be >= 0")
	}
	if d.AcceptLoops < 0 {
		return fmt.Errorf("config: accept_loops must be >= 0")
	}
	if d.SockBufferBytes < 0 {
		return fmt.Errorf("config: sock_buffer_bytes must be >= 0")
	}
	return nil
}

// EventLevel returns the slog level for grant-lifecycle event logging and
// whether logging is enabled at all (log_level nonempty).
func (d Daemon) EventLevel() (slog.Level, bool) {
	switch d.LogLevel {
	case "debug":
		return slog.LevelDebug, true
	case "info":
		return slog.LevelInfo, true
	case "warn":
		return slog.LevelWarn, true
	case "error":
		return slog.LevelError, true
	}
	return 0, false
}

// LogSampleN returns the grant-event sampling stride with the default
// applied (1 = every grant).
func (d Daemon) LogSampleN() int {
	if d.LogSample < 1 {
		return 1
	}
	return d.LogSample
}

// PolicyName returns the configured policy with the default applied.
func (d Daemon) PolicyName() string {
	if d.Policy == "" {
		return "fcfs"
	}
	return d.Policy
}

// TraceHeader describes this configuration in a trace header, so offline
// replay can rebuild the recording policy and its performance model.
func (d Daemon) TraceHeader() trace.Header {
	return trace.Header{
		Source:       trace.SourceDaemon,
		Policy:       d.PolicyName(),
		DelayOverlap: d.DelayOverlap,
		FSMiBps:      d.FSMiBps,
		ProcNICMiBps: d.ProcNICMiBps,
	}
}

// Addr returns the listen address with the default applied.
func (d Daemon) Addr() string {
	if d.ListenAddr == "" {
		return DefaultListenAddr
	}
	return d.ListenAddr
}

// SessionTimeout returns the eviction timeout as a duration.
func (d Daemon) SessionTimeout() time.Duration {
	return time.Duration(d.SessionTimeoutS * float64(time.Second))
}

// GrantGrace returns the disconnect grace window as a duration.
func (d Daemon) GrantGrace() time.Duration {
	return time.Duration(d.GrantGraceS * float64(time.Second))
}

// HandshakeTimeout returns the pre-register deadline as a duration.
func (d Daemon) HandshakeTimeout() time.Duration {
	return time.Duration(d.HandshakeTimeoutS * float64(time.Second))
}

// TraceOptions returns the recording options (buffer and crash-consistency
// sync cadence) for trace.NewWriterOptions, defaults applied: calciomd
// always records crash-consistently unless the sync timer is explicitly
// disabled with record_sync_interval_s = -1.
func (d Daemon) TraceOptions() trace.Options {
	o := trace.Options{Buffer: d.RecordBuffer, SyncEvery: d.RecordSyncEvery}
	if o.SyncEvery == 0 {
		o.SyncEvery = trace.DefaultSyncEvery
	}
	switch {
	case d.RecordSyncIntervalS < 0:
		o.SyncInterval = 0 // timer disabled; sync on event count only
	case d.RecordSyncIntervalS == 0:
		o.SyncInterval = trace.DefaultSyncInterval
	default:
		o.SyncInterval = time.Duration(d.RecordSyncIntervalS * float64(time.Second))
	}
	return o
}

// Model builds the performance model, or nil when no bandwidths are given.
func (d Daemon) Model() *core.PerfModel {
	if d.FSMiBps <= 0 {
		return nil
	}
	return &core.PerfModel{FSBandwidth: d.FSMiBps * miB, ProcNIC: d.ProcNICMiBps * miB}
}

// BuildPolicy constructs the configured arbitration policy.
func (d Daemon) BuildPolicy() (core.Policy, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch d.Policy {
	case "", "fcfs":
		return core.FCFSPolicy{}, nil
	case "interrupt":
		return core.InterruptPolicy{}, nil
	case "interfere":
		return core.InterferePolicy{}, nil
	case "delay":
		return core.DelayPolicy{Overlap: d.DelayOverlap, Model: d.Model()}, nil
	}
	panic("unreachable")
}
