package config

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestStrictErrorsCarryLineNumbers pins the failure-reporting contract for
// both config dialects: unknown keys are rejected (not silently ignored)
// and every error names the offending line.
func TestStrictErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must contain
	}{
		{
			name: "unknown scenario key with line",
			in: "{\n" +
				`  "name": "x",` + "\n" +
				`  "proc_nic_mibbs": 4` + "\n" +
				"}",
			want: []string{"line 3", "proc_nic_mibbs"},
		},
		{
			name: "unknown nested key with line",
			in: "{\n" +
				`  "name": "x",` + "\n" +
				`  "fs": {` + "\n" +
				`    "servers": 1,` + "\n" +
				`    "stripe_kb": 64` + "\n" +
				"  }\n}",
			want: []string{"line 5", "stripe_kb"},
		},
		{
			name: "syntax error with line",
			in:   "{\n  \"name\": \"x\",\n  \"fs\": {,}\n}",
			want: []string{"line 3"},
		},
		{
			name: "type error with line",
			in:   "{\n  \"name\": 42\n}",
			want: []string{"line 2", "name"},
		},
		{
			name: "trailing garbage",
			in:   `{"name":"x"}{"again":true}`,
			want: []string{"line 1", "after top-level value"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("expected error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestParseDaemon(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		check func(t *testing.T, d Daemon, err error)
	}{
		{
			name: "defaults",
			in:   `{}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if d.Addr() != DefaultListenAddr {
					t.Fatalf("addr = %q", d.Addr())
				}
				p, err := d.BuildPolicy()
				if err != nil || p.Name() != "fcfs" {
					t.Fatalf("default policy = %v, %v", p, err)
				}
				if d.Model() != nil {
					t.Fatal("model without bandwidths should be nil")
				}
			},
		},
		{
			name: "full settings",
			in: `{"listen_addr": "0.0.0.0:7777", "policy": "delay", "delay_overlap": 0.5,
			     "session_timeout_s": 30, "decision_log": 64,
			     "fs_mibps": 4000, "proc_nic_mibps": 100}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if d.Addr() != "0.0.0.0:7777" || d.SessionTimeout() != 30*time.Second || d.DecisionLog != 64 {
					t.Fatalf("daemon = %+v", d)
				}
				p, err := d.BuildPolicy()
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := p.(core.DelayPolicy); !ok {
					t.Fatalf("policy = %T", p)
				}
				m := d.Model()
				if m == nil || m.FSBandwidth != 4000*miB || m.ProcNIC != 100*miB {
					t.Fatalf("model = %+v", m)
				}
			},
		},
		{
			name: "interrupt policy",
			in:   `{"policy": "interrupt"}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if p, _ := d.BuildPolicy(); p.Name() != "interrupt" {
					t.Fatalf("policy = %v", p)
				}
			},
		},
		{
			name: "unknown policy",
			in:   `{"policy": "roulette"}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "unknown policy") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "delay needs model",
			in:   `{"policy": "delay", "delay_overlap": 1}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "fs_mibps") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "negative timeout",
			in:   `{"session_timeout_s": -1}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "session_timeout_s") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "unknown key with line",
			in:   "{\n  \"listen_adr\": \":1\"\n}",
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "line 2") ||
					!strings.Contains(err.Error(), "listen_adr") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "record section",
			in: `{"policy": "delay", "delay_overlap": 0.25, "fs_mibps": 2048,
			     "record_path": "run.trace", "record_buffer": 4096}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if d.RecordPath != "run.trace" || d.RecordBuffer != 4096 {
					t.Fatalf("record settings = %+v", d)
				}
				hdr := d.TraceHeader()
				if hdr.Source != trace.SourceDaemon || hdr.Policy != "delay" ||
					hdr.DelayOverlap != 0.25 || hdr.FSMiBps != 2048 {
					t.Fatalf("trace header = %+v", hdr)
				}
			},
		},
		{
			name: "trace header applies policy default",
			in:   `{"record_path": "run.trace"}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if hdr := d.TraceHeader(); hdr.Policy != "fcfs" {
					t.Fatalf("header policy = %q, want fcfs default", hdr.Policy)
				}
			},
		},
		{
			name: "negative record buffer",
			in:   `{"record_path": "x", "record_buffer": -1}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "record_buffer") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			// The path may arrive later as a -record flag override, so a
			// config carrying only the buffer size must load cleanly.
			name: "record buffer without path is allowed",
			in:   `{"record_buffer": 16}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if d.RecordBuffer != 16 {
					t.Fatalf("record buffer = %d", d.RecordBuffer)
				}
			},
		},
		{
			name: "overload settings",
			in: `{"max_sessions": 128, "handshake_timeout_s": 5,
			     "session_timeout_s": 60, "max_requests_per_sec": 500}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err != nil {
					t.Fatal(err)
				}
				if d.MaxSessions != 128 || d.MaxRequestsPerSec != 500 {
					t.Fatalf("overload settings = %+v", d)
				}
				if d.HandshakeTimeout() != 5*time.Second {
					t.Fatalf("handshake timeout = %v", d.HandshakeTimeout())
				}
			},
		},
		{
			// An explicit zero is rejected with a position: after unmarshal it
			// is indistinguishable from "unset", so the raw document decides.
			name: "explicit max_sessions zero with line",
			in:   "{\n  \"max_sessions\": 0\n}",
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "line 2") ||
					!strings.Contains(err.Error(), "max_sessions") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "handshake deadline at the eviction timeout with line",
			in:   "{\n  \"session_timeout_s\": 30,\n  \"handshake_timeout_s\": 30\n}",
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "line 3") ||
					!strings.Contains(err.Error(), "shorter than session_timeout_s") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "negative handshake timeout",
			in:   `{"handshake_timeout_s": -1}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "handshake_timeout_s") {
					t.Fatalf("err = %v", err)
				}
			},
		},
		{
			name: "negative rate limit",
			in:   `{"max_requests_per_sec": -5}`,
			check: func(t *testing.T, d Daemon, err error) {
				if err == nil || !strings.Contains(err.Error(), "max_requests_per_sec") {
					t.Fatalf("err = %v", err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ParseDaemon(strings.NewReader(tc.in))
			tc.check(t, d, err)
		})
	}
}
