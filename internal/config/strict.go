package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
)

// strictUnmarshal decodes JSON into v with unknown fields rejected and every
// reportable error carrying a line:column position, so a typo in a config
// file points at the offending line instead of failing silently (the
// pre-daemon parser ignored positions entirely) or with a bare offset.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return positionError(data, dec, err)
	}
	// Trailing non-whitespace after the document is almost always a paste
	// accident; report it rather than silently ignoring it.
	if dec.More() {
		line, col := lineCol(data, int(dec.InputOffset()))
		return fmt.Errorf("config: line %d:%d: unexpected data after top-level value", line, col)
	}
	return nil
}

var unknownFieldRe = regexp.MustCompile(`unknown field "([^"]+)"`)

// positionError augments a json decoding error with a line:column position.
func positionError(data []byte, dec *json.Decoder, err error) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		line, col := lineCol(data, int(e.Offset))
		return fmt.Errorf("config: line %d:%d: %v", line, col, err)
	case *json.UnmarshalTypeError:
		line, col := lineCol(data, int(e.Offset))
		where := e.Field
		if where == "" {
			where = "value"
		}
		return fmt.Errorf("config: line %d:%d: %s: cannot unmarshal %s into %s", line, col, where, e.Value, e.Type)
	}
	// encoding/json reports unknown fields as a plain error with no offset;
	// recover the position by locating the field name used as a key. The
	// decoder's input offset bounds the search: the key was read before it.
	if m := unknownFieldRe.FindStringSubmatch(err.Error()); m != nil {
		if off := findKey(data[:clampOffset(data, dec.InputOffset())], m[1]); off >= 0 {
			line, col := lineCol(data, off)
			return fmt.Errorf("config: line %d:%d: unknown field %q", line, col, m[1])
		}
		return fmt.Errorf("config: unknown field %q", m[1])
	}
	return fmt.Errorf("config: %w", err)
}

func clampOffset(data []byte, off int64) int {
	if off < 0 || off > int64(len(data)) {
		return len(data)
	}
	return int(off)
}

// findKey returns the byte offset of the last occurrence of `"key"` that is
// followed by a colon (i.e. used as an object key), or -1. The decoder stops
// right after the offending key, so the last occurrence before its input
// offset is the one that failed.
func findKey(data []byte, key string) int {
	quoted := strconv.Quote(key)
	for off := len(data); off > 0; {
		i := bytes.LastIndex(data[:off], []byte(quoted))
		if i < 0 {
			return -1
		}
		rest := bytes.TrimLeft(data[i+len(quoted):], " \t\r\n")
		if len(rest) > 0 && rest[0] == ':' {
			return i
		}
		off = i
	}
	return -1
}

// lineCol converts a byte offset to 1-based line and column numbers.
func lineCol(data []byte, off int) (line, col int) {
	if off > len(data) {
		off = len(data)
	}
	line = 1 + bytes.Count(data[:off], []byte{'\n'})
	last := bytes.LastIndexByte(data[:off], '\n')
	return line, off - last
}

// readAll slurps a reader for strict parsing.
func readAll(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("config: read: %w", err)
	}
	return data, nil
}
