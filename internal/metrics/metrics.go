// Package metrics computes the paper's evaluation quantities: per-application
// interference factors and machine-wide efficiency metrics over a set of
// concurrently running applications.
package metrics

import (
	"fmt"
	"math"
)

// AppResult is one application's outcome in one experiment run.
type AppResult struct {
	Name      string
	Cores     int
	IOTime    float64 // observed I/O phase time (waits included)
	AloneTime float64 // calibrated solo time for the same work
}

// InterferenceFactor is the paper's I = T / T_alone (Section II-C); 1 means
// no interference.
func (a AppResult) InterferenceFactor() float64 {
	if a.AloneTime <= 0 {
		return math.NaN()
	}
	return a.IOTime / a.AloneTime
}

// Report aggregates one run.
type Report struct {
	Apps []AppResult
}

// SumInterference is Σ_X I_X, the metric §III-A4 proposes minimizing.
func (r Report) SumInterference() float64 {
	var s float64
	for _, a := range r.Apps {
		s += a.InterferenceFactor()
	}
	return s
}

// SumInterferenceFinite is SumInterference restricted to applications with
// a calibrated AloneTime, so the aggregate stays finite when some apps have
// no solo estimate. The daemon's live snapshot and offline trace replay
// both report this form.
func (r Report) SumInterferenceFinite() float64 {
	var s float64
	for _, a := range r.Apps {
		if a.AloneTime > 0 {
			s += a.InterferenceFactor()
		}
	}
	return s
}

// CPUSecondsWasted is f = Σ_X N_X · T_X (paper §IV-D): core-seconds spent
// in I/O rather than computation.
func (r Report) CPUSecondsWasted() float64 {
	var s float64
	for _, a := range r.Apps {
		s += float64(a.Cores) * a.IOTime
	}
	return s
}

// CPUSecondsPerCore normalizes f by the total core count, the y-axis of the
// paper's Fig. 11.
func (r Report) CPUSecondsPerCore() float64 {
	cores := 0
	for _, a := range r.Apps {
		cores += a.Cores
	}
	if cores == 0 {
		return 0
	}
	return r.CPUSecondsWasted() / float64(cores)
}

// SumIOTime is Σ_X T_X.
func (r Report) SumIOTime() float64 {
	var s float64
	for _, a := range r.Apps {
		s += a.IOTime
	}
	return s
}

// MaxInterference returns the worst per-app factor — the "14× slowdown"
// headline number of the paper is a MaxInterference value.
func (r Report) MaxInterference() float64 {
	m := math.Inf(-1)
	for _, a := range r.Apps {
		if f := a.InterferenceFactor(); f > m {
			m = f
		}
	}
	return m
}

// String renders the report compactly.
func (r Report) String() string {
	s := ""
	for _, a := range r.Apps {
		s += fmt.Sprintf("%s[%d cores]: T=%.3fs Talone=%.3fs I=%.3f\n",
			a.Name, a.Cores, a.IOTime, a.AloneTime, a.InterferenceFactor())
	}
	s += fmt.Sprintf("sumI=%.3f cpuSecWasted=%.1f perCore=%.3f",
		r.SumInterference(), r.CPUSecondsWasted(), r.CPUSecondsPerCore())
	return s
}
