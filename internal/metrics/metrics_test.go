package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Report {
	return Report{Apps: []AppResult{
		{Name: "A", Cores: 2048, IOTime: 20, AloneTime: 10},
		{Name: "B", Cores: 24, IOTime: 14, AloneTime: 1},
	}}
}

func TestInterferenceFactor(t *testing.T) {
	a := AppResult{IOTime: 20, AloneTime: 10}
	if got := a.InterferenceFactor(); got != 2 {
		t.Fatalf("I = %v, want 2", got)
	}
	bad := AppResult{IOTime: 5}
	if !math.IsNaN(bad.InterferenceFactor()) {
		t.Fatal("expected NaN without alone time")
	}
}

func TestMachineMetrics(t *testing.T) {
	r := sample()
	if got := r.SumInterference(); got != 16 {
		t.Fatalf("sumI = %v, want 16", got)
	}
	if got := r.CPUSecondsWasted(); got != 2048*20+24*14 {
		t.Fatalf("f = %v", got)
	}
	want := (2048*20.0 + 24*14.0) / 2072.0
	if got := r.CPUSecondsPerCore(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("perCore = %v, want %v", got, want)
	}
	if got := r.SumIOTime(); got != 34 {
		t.Fatalf("sumT = %v", got)
	}
	if got := r.MaxInterference(); got != 14 {
		t.Fatalf("maxI = %v", got)
	}
}

func TestEmptyReport(t *testing.T) {
	var r Report
	if r.CPUSecondsPerCore() != 0 {
		t.Fatal("empty per-core should be 0")
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"A[2048 cores]", "I=2.000", "sumI=16.000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

// Property: CPUSecondsWasted is linear in IOTime and per-core is a convex
// combination bounded by min/max app time.
func TestPropertyPerCoreBounds(t *testing.T) {
	f := func(t1, t2 float64, c1, c2 uint8) bool {
		if math.IsNaN(t1) || math.IsNaN(t2) {
			return true
		}
		t1, t2 = math.Abs(t1), math.Abs(t2)
		if t1 > 1e12 || t2 > 1e12 {
			return true
		}
		n1, n2 := int(c1)+1, int(c2)+1
		r := Report{Apps: []AppResult{
			{Cores: n1, IOTime: t1, AloneTime: 1},
			{Cores: n2, IOTime: t2, AloneTime: 1},
		}}
		pc := r.CPUSecondsPerCore()
		lo, hi := math.Min(t1, t2), math.Max(t1, t2)
		return pc >= lo-1e-9 && pc <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
