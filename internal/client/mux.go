package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/internal/wirebin"
)

// muxWriteBufferBytes sizes the shared write buffer: larger than a single
// client's because one flush carries requests for many streams.
const muxWriteBufferBytes = 32 << 10

// Mux shares one physical daemon connection across many logical sessions
// (protocol version wire.VersionBinaryMux). Each Client() handle is a full
// Client — register, coordinate, reconnect/resume, fail open — but its
// frames ride the shared connection under a stream id instead of a socket
// of their own, so N sessions cost one descriptor, one reader goroutine,
// and (through group-committed writes) ~1 write syscall per burst of
// concurrent requests instead of N.
//
// Writes group-commit: concurrent senders append to the shared buffered
// writer and only the last writer in a burst flushes, so the syscall is
// amortized across every stream that had a request in flight. The daemon
// batches its responses the same way on its shared write loop.
//
// Connection failure is shared by construction: when the physical
// connection dies every stream's parked calls fail together, and (with
// Options.Reconnect) one redial resumes every registered stream — each
// re-registers under its own name with a bumped incarnation, exactly as a
// plain client would, before its callers unpark. Options.FailOpen degrades
// every stream together on schedule.
type Mux struct {
	addr string
	opts Options

	// mu guards the connection state machine and the stream table.
	mu         sync.Mutex
	conn       net.Conn
	gen        uint64
	healthy    bool
	closed     bool
	recovering bool
	dead       error // terminal: the connection is gone and reconnect is off
	clients    map[uint64]*Client
	nextStream uint64

	// Group-commit write state: senders append frames to bw under wmu and
	// nudge flushCh; the flusher goroutine runs once a sender parks for its
	// response and flushes everything buffered in between with one syscall.
	wmu     sync.Mutex
	bw      *bufio.Writer
	scratch []byte
	flushCh chan struct{}

	done     chan struct{}
	doneOnce sync.Once
}

// DialMux connects one multiplexed physical connection. The codec is the v2
// binary wire format with the mux extension — Options.Codec is ignored. As
// with DialOptions, a failed initial dial is fatal unless both Reconnect
// and FailOpen are set, in which case the mux starts down and recovers (or
// degrades) in the background.
func DialMux(addr string, opts Options) (*Mux, error) {
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = DefaultBackoffMin
	}
	if opts.BackoffMax < opts.BackoffMin {
		opts.BackoffMax = DefaultBackoffMax
	}
	opts.Codec = wirebin.Codec{}
	m := &Mux{
		addr:    addr,
		opts:    opts,
		clients: make(map[uint64]*Client),
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go m.flusher()
	conn, err := m.dial()
	if err != nil {
		if !opts.Reconnect || opts.FailOpen <= 0 {
			return nil, err
		}
		m.recovering = true
		go m.recoverLoop()
		return m, nil
	}
	m.adopt(conn)
	return m, nil
}

// Client opens a new logical session on the mux. The handle is an ordinary
// *Client; Close it to drop the stream without touching the shared
// connection. Sessions created while the mux is down start down and unpark
// when the connection recovers.
func (m *Mux) Client() (*Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.nextStream++
	c := &Client{
		addr:    m.addr,
		opts:    m.opts,
		codec:   m.opts.Codec,
		mx:      m,
		stream:  m.nextStream,
		pending: make(map[uint64]*pendingCall),
		auth:    make(map[string]bool),
		journal: make(map[string]*tjournal),
		done:    make(chan struct{}),
	}
	if m.dead != nil {
		c.termErr = m.dead
	} else if m.healthy {
		c.healthy = true
	} else {
		c.stateCh = make(chan struct{})
		c.recovering = true
	}
	m.clients[c.stream] = c
	return c, nil
}

// Close tears the mux down: the shared connection closes and every stream's
// client closes with it.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conn := m.conn
	clients := make([]*Client, 0, len(m.clients))
	for _, c := range m.clients {
		clients = append(clients, c)
	}
	m.mu.Unlock()
	m.doneOnce.Do(func() { close(m.done) })
	if conn != nil {
		conn.Close()
	}
	for _, c := range clients {
		c.Close()
	}
	return nil
}

// detach removes a closed client's stream from the table.
func (m *Mux) detach(stream uint64) {
	m.mu.Lock()
	delete(m.clients, stream)
	m.mu.Unlock()
}

// dial establishes and negotiates one physical connection: the two-byte
// mux hello, then the daemon's echoed ack. Unlike a plain binary client the
// hello is not pipelined with a request — the round trip is paid once per
// physical connection and amortized over every stream it will carry.
func (m *Mux) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", m.addr, time.Second)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	hello := [2]byte{wire.HelloMagic, wire.VersionBinaryMux}
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	var ack [2]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, err
	}
	if ack != hello {
		conn.Close()
		return nil, fmt.Errorf("client: bad mux negotiation ack %x", ack)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// adopt installs a negotiated connection, starts its reader, and resumes
// every registered stream. Streams unpark one by one as their resume
// register lands (an unregistered stream unparks immediately), so callers
// never race their own re-registration.
func (m *Mux) adopt(conn net.Conn) {
	m.mu.Lock()
	m.conn = conn
	m.gen++
	gen := m.gen
	m.healthy = true
	m.recovering = false
	clients := make([]*Client, 0, len(m.clients))
	for _, c := range m.clients {
		clients = append(clients, c)
	}
	m.mu.Unlock()
	m.wmu.Lock()
	m.bw = bufio.NewWriterSize(conn, muxWriteBufferBytes)
	m.wmu.Unlock()
	go m.readLoop(conn, gen)
	for _, c := range clients {
		go m.resume(c)
	}
}

// readLoop is the one reader of the shared connection: it demultiplexes
// response frames by stream id into each client's dispatch — the same
// single-writer arrival-order guarantee a private read loop gives.
func (m *Mux) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(conn, muxWriteBufferBytes)
	dec := wirebin.NewMuxResponseReader(br)
	var err error
	for {
		var resp wire.Response
		var sid uint64
		if sid, err = dec.Read(&resp); err != nil {
			break
		}
		m.mu.Lock()
		c := m.clients[sid]
		m.mu.Unlock()
		if c != nil {
			c.dispatch(&resp)
		}
	}
	m.connLost(gen, err)
}

// send encodes one stream's request into the shared write buffer and nudges
// the flusher. Group commit: the flusher only runs once the sender has
// yielded (usually parking for its response), so every stream that sends in
// the meantime rides the same flush — one write syscall for the burst. A
// flush error is not reported here; the broken connection fails the read
// loop, which owns connection loss.
func (m *Mux) send(stream uint64, req *wire.Request) error {
	m.wmu.Lock()
	var err error
	if m.bw == nil {
		err = errors.New("not connected")
	} else {
		m.scratch, err = wirebin.AppendMuxRequest(m.scratch[:0], stream, req)
		if err == nil {
			_, err = m.bw.Write(m.scratch)
		}
	}
	m.wmu.Unlock()
	if err == nil {
		select {
		case m.flushCh <- struct{}{}:
		default: // a flush is already scheduled; it will carry this frame
		}
	}
	return err
}

// flusher is the write loop's flush half, one per Mux for its lifetime: it
// wakes after a burst of sends and commits whatever they buffered. The
// channel holds at most one pending nudge — a flush commits everything
// buffered so far, so one scheduled flush covers any number of writers.
func (m *Mux) flusher() {
	for {
		select {
		case <-m.flushCh:
		case <-m.done:
			return
		}
		// The nudge parks the flusher in the scheduler's run-next slot, ahead
		// of every other runnable goroutine; step to the back of the queue so
		// streams that are ready to send get their frames into this flush
		// instead of each paying for their own.
		runtime.Gosched()
		m.wmu.Lock()
		if m.bw != nil {
			m.bw.Flush()
		}
		m.wmu.Unlock()
	}
}

// connLost handles the death of connection generation gen: every stream
// fails down together, then one recovery redials for all of them.
func (m *Mux) connLost(gen uint64, cause error) {
	m.mu.Lock()
	if m.closed || gen != m.gen || !m.healthy {
		m.mu.Unlock()
		return
	}
	m.healthy = false
	m.conn.Close()
	reconnect := m.opts.Reconnect
	if reconnect {
		m.recovering = true
	} else {
		m.dead = fmt.Errorf("client: connection lost: %w", cause)
	}
	clients := make([]*Client, 0, len(m.clients))
	for _, c := range m.clients {
		clients = append(clients, c)
	}
	m.mu.Unlock()
	for _, c := range clients {
		c.muxDown(cause, reconnect)
	}
	if reconnect {
		go m.recoverLoop()
	}
}

// recoverLoop redials with exponential backoff plus jitter until a
// connection is adopted or the mux closes. Past the FailOpen deadline every
// stream degrades (new streams degrade on the next tick).
func (m *Mux) recoverLoop() {
	backoff := m.opts.BackoffMin
	var failAt time.Time
	if m.opts.FailOpen > 0 {
		failAt = time.Now().Add(m.opts.FailOpen)
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		clients := make([]*Client, 0, len(m.clients))
		for _, c := range m.clients {
			clients = append(clients, c)
		}
		m.mu.Unlock()
		if !failAt.IsZero() && time.Now().After(failAt) {
			for _, c := range clients {
				c.enterDegraded()
			}
		}
		conn, err := m.dial()
		if err == nil {
			m.adopt(conn)
			return
		}
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-time.After(d):
		case <-m.done:
			return
		}
		if backoff *= 2; backoff > m.opts.BackoffMax {
			backoff = m.opts.BackoffMax
		}
	}
}

// resume re-establishes one stream on a fresh connection: a registered
// client re-registers (same name, next incarnation, accumulated degraded
// report) before its callers unpark; an unregistered one unparks
// immediately. The register rides the new connection's ordinary request
// path — the daemon opens the stream on its first frame, exactly like a
// reconnecting plain client.
func (m *Mux) resume(c *Client) {
	c.regMu.Lock()
	registered := c.registered
	var req wire.Request
	if registered {
		c.incarnation++
		req = wire.Request{
			Type:        wire.TypeRegister,
			App:         c.regName,
			Cores:       c.regCores,
			Target:      c.defTarget,
			Incarnation: c.incarnation,
		}
	}
	c.regMu.Unlock()
	if !registered {
		c.muxUp()
		return
	}
	self, deg := c.snapshotReport()
	req.SelfGrants = self
	req.DegradedS = deg
	_, err := c.rawCall(req)
	if err != nil {
		var re *ReplyError
		if errors.As(err, &re) {
			if !wire.Retryable(re.Code) {
				c.terminal(re)
				return
			}
			// Draining (or overload at register): cycle the shared
			// connection; the next adoption retries every stream's resume.
			m.kick()
			return
		}
		// Transport loss: the connection died again and its connLost path
		// owns the next recovery round. Leave the stream down.
		return
	}
	c.markReported(self, deg)
	c.muxUp()
}

// kick force-cycles the shared connection (the daemon said it is draining):
// closing it sends every stream through the shared recovery path.
func (m *Mux) kick() {
	m.mu.Lock()
	if m.healthy && m.conn != nil {
		m.conn.Close()
	}
	m.mu.Unlock()
	// Give the read loop a moment to observe the close; await handles the
	// rest once connLost has run.
	time.Sleep(time.Millisecond)
}

// muxDown fails one stream's client when the shared connection dies:
// parked calls fail (retryable), and the client parks down (reconnect) or
// dies (fail-fast), mirroring connLost without a connection of its own.
func (c *Client) muxDown(cause error, reconnect bool) {
	c.cmu.Lock()
	if c.closed || !c.healthy {
		c.cmu.Unlock()
		return
	}
	c.healthy = false
	if reconnect {
		c.stateCh = make(chan struct{})
		c.recovering = true
	} else {
		c.termErr = fmt.Errorf("client: connection lost: %w", cause)
	}
	c.cmu.Unlock()
	c.failPending(reconnect, fmt.Errorf("client: connection lost: %w", cause))
	if !reconnect {
		c.finish()
	}
}

// muxUp unparks one stream's client after the shared connection (and this
// stream's resume, when it was registered) is back.
func (c *Client) muxUp() {
	c.cmu.Lock()
	if c.closed || c.termErr != nil {
		c.cmu.Unlock()
		return
	}
	c.healthy = true
	c.recovering = false
	if c.degraded {
		c.degraded = false
		c.endWindow()
	}
	st := c.stateCh
	c.stateCh = nil
	c.cmu.Unlock()
	c.epoch.Add(1)
	if st != nil {
		close(st)
	}
}
