// Package client is the application-side library for calciomd: a blocking
// client that mirrors the in-simulator core.Coordinator API
// (Prepare/Complete/Inform/Check/Wait/Release/End plus a Session wrapper
// with Begin/Yield/End), so driver code written against the simulator's
// coordination calls maps one-to-one onto the live daemon.
//
// Coordination is per storage target: Client.Target returns a handle scoped
// to one target's independent coordination domain, and the plain Client
// methods are the handle for the session's default target (set by
// RegisterOn, itself defaulting to "") — so code that never mentions
// targets speaks the original single-target protocol unchanged. Waiting on
// one target never blocks calls on another from a different goroutine, but
// a single Client remains a one-application-goroutine object per target
// handle; the internal reader goroutine that dispatches responses and
// per-target authorization pushes is fully encapsulated.
//
// # Fault tolerance
//
// A Client dialed with Options.Reconnect survives its coordinator: a lost
// connection triggers automatic redial with exponential backoff and jitter,
// and the session resumes — it re-registers under the same application name
// with a monotonically increasing incarnation, then lazily re-drives each
// target's protocol state (the stacked prepares, the open phase, and a
// re-acquiring Wait when it held authorization) from a client-side journal
// before retrying the interrupted call. The daemon resets a resumed
// session's protocol state at rebind, so the journal re-drive is correct
// whether the daemon kept the session in a grace window, restarted from
// scratch, or never heard of it.
//
// CALCioM coordination is advisory, so a dead coordinator must never wedge
// the application's I/O: Options.FailOpen bounds how long any call blocks
// on an unreachable daemon. Past the deadline the client enters degraded
// mode — every coordination verb succeeds locally and Wait self-grants —
// while reconnection continues in the background; on resume the
// self-granted waits and the degraded seconds are reported to the daemon,
// which surfaces them in Stats so operators can see exactly when
// coordination lapsed. Without Reconnect (plain Dial) any connection error
// remains terminal, exactly the original fail-fast behavior.
package client

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrClosed reports a call on a closed client.
var ErrClosed = errors.New("client: closed")

// ReplyError is an error reply from the daemon: the protocol-level failure
// of one request, as opposed to a transport failure. Code classifies it
// (see the wire.Code* constants); Retryable codes name transient daemon
// conditions — draining (retried through a reconnect cycle), busy and
// overloaded (retried in place after an exponential backoff) — that a
// reconnecting client retries transparently.
type ReplyError struct {
	Code string
	Msg  string
}

func (e *ReplyError) Error() string { return e.Msg }

// transportError marks a connection-level failure (send, receive, or the
// connection dying under a parked call) — retryable after reconnecting.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// completion is the single message a pending call receives: the daemon's
// response, or lost=true when the connection died (or the client closed)
// under the call.
type completion struct {
	resp wire.Response
	lost bool
}

// pendingCall parks one in-flight request. The channel has capacity one and
// receives exactly one completion per round trip — whoever removes the entry
// from the pending map (reader, connection-loss sweep, or the failed sender
// itself) owns delivery — so the call object and its channel are pooled and
// reused across requests instead of allocated per call.
type pendingCall struct {
	ch chan completion
}

var callPool = sync.Pool{New: func() any { return &pendingCall{ch: make(chan completion, 1)} }}

// failPending completes every parked call with lost=true. With reconnect the
// pending map is replaced (later calls park against the next connection);
// otherwise it is retired and cause becomes the terminal receive error.
func (c *Client) failPending(reconnect bool, cause error) {
	c.mu.Lock()
	pend := c.pending
	if reconnect {
		c.pending = make(map[uint64]*pendingCall)
	} else {
		c.pending = nil
		c.err = cause
	}
	c.mu.Unlock()
	for _, pc := range pend {
		pc.ch <- completion{lost: true}
	}
}

// Default backoff bounds for Options.Reconnect.
const (
	DefaultBackoffMin = 25 * time.Millisecond
	DefaultBackoffMax = time.Second
)

// Options configures the client's failure behavior. The zero value is the
// original fail-fast client: one connection, any error terminal.
type Options struct {
	// Reconnect redials a lost connection with exponential backoff plus
	// jitter and resumes the session (same name, higher incarnation, state
	// re-driven from the client-side journal) instead of failing calls.
	Reconnect bool
	// BackoffMin/BackoffMax bound the redial backoff; zero means the
	// defaults (25ms / 1s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// FailOpen, when positive, bounds how long coordination blocks on an
	// unreachable daemon: past this deadline the session self-grants
	// (degraded, uncoordinated I/O — counted and reported on resume) while
	// reconnection continues in the background. 0 means block until the
	// daemon is back (never uncoordinated). Requires Reconnect.
	FailOpen time.Duration
	// DegradedHist, when non-nil, observes the length in seconds of every
	// closed degraded window, so a fleet embedding the client can expose
	// its fail-open episodes on the same /metrics surface as the daemon.
	// Observation happens when a window closes (connection re-adopted or
	// final report), never on the coordination path.
	DegradedHist *obs.Histogram
	// Codec selects the wire encoding. Nil (or wire.JSON) speaks the v1
	// length-prefixed JSON protocol byte for byte. wirebin.Codec negotiates
	// the v2 binary codec: the client pipelines the two-byte hello with its
	// first request, so negotiation adds no round trip, but the daemon must
	// understand the hello — a binary client cannot talk to a pre-v2
	// daemon.
	Codec wire.Codec
}

// tjournal is the client's per-target protocol journal: enough intended
// state to re-drive a target after a resume (the daemon resets the session
// at rebind) and to keep coordinating locally in degraded mode. Owned by
// the goroutine driving that target's handle, like the handle itself.
type tjournal struct {
	epoch     uint64      // connection epoch this target last synced at
	prepared  []core.Info // the prepare stack, oldest first
	phaseOpen bool        // Inform succeeded since the last End
	holding   bool        // Wait succeeded since the last End
}

// Client is one application's connection to the coordination daemon.
type Client struct {
	addr string
	opts Options

	// cmu guards the connection state machine: the current connection and
	// its generation, healthy/degraded/terminal mode, and the stateCh pulse
	// callers park on while the connection is down.
	cmu        sync.Mutex
	conn       net.Conn
	gen        uint64
	healthy    bool
	degraded   bool
	termErr    error
	closed     bool
	stateCh    chan struct{} // non-nil while down/degraded; closed on any mode change
	recovering bool          // a recoverLoop goroutine is running

	// codec is the negotiated wire format, resolved once at dial (nil
	// Options.Codec means wire.JSON) and immutable afterwards.
	codec wire.Codec

	wmu sync.Mutex
	bw  *bufio.Writer
	enc wire.RequestWriter // encodes into bw; rebuilt with it at adopt

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	err     error // terminal receive error; set once (fail-fast mode)

	// mx/stream are set on clients created by Mux.Client: the shared
	// physical connection this logical session rides and its stream id.
	// Such a client never owns conn/bw/enc — writes go through mx and the
	// mux read loop dispatches responses by stream id.
	mx     *Mux
	stream uint64

	// auth caches the server's per-target view, updated by responses and by
	// pushed grant/revoke notifications (the server echoes the resolved
	// target on every frame), so Check can be answered with a round trip
	// (authoritative) while pushes keep it warm in between.
	amu  sync.Mutex
	auth map[string]bool

	// defTarget is the session's default target, set by RegisterOn before
	// any other coordination call (so later reads need no lock).
	defTarget string

	// Registration identity, kept for resume. regMu guards the fields; the
	// incarnation increases on every register attempt so a resume always
	// outbids whatever the daemon last accepted from this client.
	regMu       sync.Mutex
	regName     string
	regCores    int
	registered  bool
	incarnation uint64

	// epoch counts adopted connections; a journal whose epoch lags must
	// resync before its target's next call.
	epoch   atomic.Uint64
	jmu     sync.Mutex
	journal map[string]*tjournal

	// Degraded (fail-open) accounting. pendSelf/pendDegraded are the
	// not-yet-reported amounts a resume handshake carries to the daemon.
	dmu           sync.Mutex
	selfGrants    uint64
	degradedSec   float64
	windows       uint64
	degradedSince time.Time
	inWindow      bool
	pendSelf      uint64
	pendDegraded  float64

	// Client-side trace capture (CaptureTo); nil when not recording.
	tw       *trace.Writer
	tsid     uint32
	tclock   func() float64
	traceReg atomic.Bool // a successful Register was recorded

	done     chan struct{} // closed when the client is finished (Close, or fail-fast death)
	doneOnce sync.Once
}

func (c *Client) finish() { c.doneOnce.Do(func() { close(c.done) }) }

// Dial connects to a daemon with the original fail-fast behavior: any
// connection error is terminal.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to a daemon with explicit failure behavior. With
// Reconnect set, even the initial dial failing is not fatal if FailOpen is
// positive — the client starts disconnected, recovering in the background,
// and fails open on schedule; with FailOpen zero the initial dial must
// succeed.
func DialOptions(addr string, opts Options) (*Client, error) {
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = DefaultBackoffMin
	}
	if opts.BackoffMax < opts.BackoffMin {
		opts.BackoffMax = DefaultBackoffMax
	}
	c := &Client{
		addr:    addr,
		opts:    opts,
		codec:   opts.Codec,
		pending: make(map[uint64]*pendingCall),
		auth:    make(map[string]bool),
		journal: make(map[string]*tjournal),
		done:    make(chan struct{}),
	}
	if c.codec == nil {
		c.codec = wire.JSON
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		if !opts.Reconnect || opts.FailOpen <= 0 {
			return nil, err
		}
		// Start down: recoverLoop owns the dial, fail-open owns the bound.
		c.stateCh = make(chan struct{})
		c.recovering = true
		go c.recoverLoop()
		return c, nil
	}
	c.adopt(conn, false)
	return c, nil
}

// CaptureTo attaches a client-side trace recorder: every successful
// coordination call is recorded (at its send time) under the given session
// identity, and a served Wait additionally records the observed grant. The
// writer may be shared by many clients — calciom-load records its whole
// fleet into one file. Unlike a daemon-side trace this capture is
// observational: timestamps are client clocks, and the grant events are
// client-observed, so it supports what-if replay but not exact
// verification. Set it before the first call; the recorded Info maps must
// not be mutated afterwards. (With Reconnect, resumed state is re-driven
// and so recorded again — the capture shows the retries, like the daemon's
// own trace would.)
func (c *Client) CaptureTo(w *trace.Writer, sid uint32, clock func() float64) {
	c.tw, c.tsid, c.tclock = w, sid, clock
}

func (c *Client) rec(ev trace.Event) {
	if c.tw != nil {
		ev.SID = c.tsid
		c.tw.Record(ev)
	}
}

func (c *Client) tnow() float64 {
	if c.tclock == nil {
		return 0
	}
	return c.tclock()
}

// Close tears the client down; outstanding calls fail with ErrClosed. With
// a capture attached, one unregister is recorded for the whole session —
// replay propagates it to every target the session coordinated on.
func (c *Client) Close() error {
	if c.tw != nil && c.traceReg.CompareAndSwap(true, false) {
		c.rec(trace.Event{Type: trace.EvUnregister, Time: c.tnow(), Target: c.defTarget})
	}
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	if c.stateCh != nil {
		close(c.stateCh)
		c.stateCh = nil
	}
	c.cmu.Unlock()
	c.finish()
	if c.mx != nil {
		// A mux client owns no connection: leave the shared one alone and
		// just remove the stream, so the daemon's idle eviction (or the mux
		// closing) reclaims the server-side session.
		c.mx.detach(c.stream)
	}
	c.failPending(false, ErrClosed)
	if conn != nil {
		conn.Close()
	}
	return nil
}

// adopt installs a (re)established connection and wakes blocked callers.
// negotiated reports whether codec negotiation already happened on the
// connection (the resume handshake does it before adopt); when it has not
// and the codec is binary, the two-byte hello is buffered here — flushed
// with the first request, so negotiation costs no round trip — and the read
// loop strips the daemon's ack before the first frame.
func (c *Client) adopt(conn net.Conn, negotiated bool) {
	c.cmu.Lock()
	c.conn = conn
	c.gen++
	gen := c.gen
	c.healthy = true
	c.recovering = false
	if c.degraded {
		c.degraded = false
		c.endWindow()
	}
	st := c.stateCh
	c.stateCh = nil
	c.cmu.Unlock()
	c.epoch.Add(1)
	expectAck := !negotiated && c.codec.Name() != "json"
	c.wmu.Lock()
	c.bw = bufio.NewWriter(conn)
	if expectAck {
		c.bw.Write([]byte{wire.HelloMagic, wire.VersionBinary})
	}
	c.enc = c.codec.NewRequestWriter(c.bw)
	c.wmu.Unlock()
	go c.readLoop(conn, gen, expectAck)
	if st != nil {
		close(st)
	}
}

// readLoop dispatches responses to their waiting callers and folds
// unsolicited grant/revoke pushes into the cached authorization state. One
// runs per adopted connection; on exit it reports the loss.
func (c *Client) readLoop(conn net.Conn, gen uint64, expectAck bool) {
	br := bufio.NewReader(conn)
	var err error
	if expectAck {
		var ack [2]byte
		if _, err = io.ReadFull(br, ack[:]); err == nil &&
			(ack[0] != wire.HelloMagic || ack[1] != wire.VersionBinary) {
			err = fmt.Errorf("client: bad codec negotiation ack %x", ack)
		}
		if err != nil {
			c.connLost(gen, err)
			return
		}
	}
	dec := c.codec.NewResponseReader(br)
	for {
		var resp wire.Response
		if err = dec.Read(&resp); err != nil {
			break
		}
		c.dispatch(&resp)
	}
	c.connLost(gen, err)
}

// dispatch folds one received response into the client: pushes update the
// cached authorization, replies complete their pending call. Called from the
// single reader of whichever connection serves this client — its own read
// loop, or the shared mux read loop.
func (c *Client) dispatch(resp *wire.Response) {
	switch resp.Type {
	case wire.TypeGrant:
		c.setAuth(resp.Target, true)
	case wire.TypeRevoke:
		c.setAuth(resp.Target, false)
	case wire.TypeResp:
		// Every response carries the server's current authorization on
		// the request's (resolved) target; caching it here — the single
		// writer, in arrival order — means a pushed revocation can
		// never be overwritten by a caller goroutine finishing an older
		// round trip late. Overload replies (busy, shed, rate-limited)
		// are the exception: the daemon emits them from its reader
		// goroutine without sight of shard state, so their Authorized
		// bit carries no information.
		if resp.Code != wire.CodeBusy && resp.Code != wire.CodeOverloaded {
			c.setAuth(resp.Target, resp.Authorized)
		}
		c.mu.Lock()
		pc := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if pc != nil {
			pc.ch <- completion{resp: *resp}
		}
	}
}

// connLost handles the death of the connection generation gen: parked calls
// are failed (they retry through the recovery path), and either the
// recovery goroutine starts (Reconnect) or the client dies (fail-fast).
func (c *Client) connLost(gen uint64, cause error) {
	c.cmu.Lock()
	if c.closed || gen != c.gen || !c.healthy {
		c.cmu.Unlock()
		return
	}
	c.healthy = false
	c.conn.Close()
	reconnect := c.opts.Reconnect
	if reconnect {
		c.stateCh = make(chan struct{})
		c.recovering = true
	} else {
		c.termErr = fmt.Errorf("client: connection lost: %w", cause)
	}
	c.cmu.Unlock()

	c.failPending(reconnect, fmt.Errorf("client: connection lost: %w", cause))
	if reconnect {
		go c.recoverLoop()
	} else {
		c.finish()
	}
}

// recoverLoop redials with exponential backoff plus jitter until a
// connection is adopted, the client closes, or a resume is fatally
// rejected. When FailOpen is set and the deadline passes, the client enters
// degraded mode (callers self-serve) while the loop keeps trying.
func (c *Client) recoverLoop() {
	backoff := c.opts.BackoffMin
	var failAt time.Time
	if c.opts.FailOpen > 0 {
		failAt = time.Now().Add(c.opts.FailOpen)
	}
	for {
		c.cmu.Lock()
		if c.closed {
			c.cmu.Unlock()
			return
		}
		degraded := c.degraded
		c.cmu.Unlock()
		if !degraded && !failAt.IsZero() && time.Now().After(failAt) {
			c.enterDegraded()
		}
		conn, err := net.DialTimeout("tcp", c.addr, time.Second)
		if err == nil {
			ferr, fatal := c.handshake(conn)
			if ferr == nil {
				c.adopt(conn, true)
				return
			}
			conn.Close()
			if fatal {
				c.terminal(ferr)
				return
			}
		}
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-time.After(d):
		case <-c.done:
			return
		}
		if backoff *= 2; backoff > c.opts.BackoffMax {
			backoff = c.opts.BackoffMax
		}
	}
}

// handshake re-registers on a fresh connection before it is adopted: the
// resume carries the same name, the next incarnation, and the accumulated
// degraded report, pipelined behind the codec hello when the codec is
// binary (so adopt never re-negotiates a handshaken connection). A client
// that never registered resumes nothing but still negotiates the codec.
// Returns (nil, _) on success; fatal reports an unrecoverable rejection
// (another incarnation won the name).
func (c *Client) handshake(conn net.Conn) (error, bool) {
	binary := c.codec.Name() != "json"
	c.regMu.Lock()
	registered := c.registered
	var req wire.Request
	if registered {
		c.incarnation++
		req = wire.Request{
			Seq:         c.seq.Add(1),
			Type:        wire.TypeRegister,
			App:         c.regName,
			Cores:       c.regCores,
			Target:      c.defTarget,
			Incarnation: c.incarnation,
		}
	}
	c.regMu.Unlock()
	if !registered && !binary {
		return nil, false
	}
	var reportSelf uint64
	var reportDeg float64
	var hs bytes.Buffer
	if binary {
		hs.Write([]byte{wire.HelloMagic, wire.VersionBinary})
	}
	if registered {
		reportSelf, reportDeg = c.snapshotReport()
		req.SelfGrants = reportSelf
		req.DegradedS = reportDeg
		if err := c.codec.NewRequestWriter(&hs).Write(&req); err != nil {
			return err, false
		}
	}

	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(hs.Bytes()); err != nil {
		return err, false
	}
	if binary {
		var ack [2]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			return err, false
		}
		if ack[0] != wire.HelloMagic || ack[1] != wire.VersionBinary {
			return fmt.Errorf("client: bad codec negotiation ack %x", ack), false
		}
	}
	if !registered {
		return nil, false
	}
	// Reading on the raw connection (no buffering) cannot over-read past
	// the register answer, so the reader the adopted connection builds
	// later sees a clean frame boundary.
	dec := c.codec.NewResponseReader(conn)
	for {
		var resp wire.Response
		if err := dec.Read(&resp); err != nil {
			return err, false
		}
		if resp.Type != wire.TypeResp || resp.Seq != req.Seq {
			continue // a stale push; the register answer is still coming
		}
		if resp.Err != "" {
			return &ReplyError{Code: resp.Code, Msg: resp.Err}, !wire.Retryable(resp.Code)
		}
		c.markReported(reportSelf, reportDeg)
		return nil, false
	}
}

// terminal kills the client: recovery is impossible (the name was taken by
// a newer incarnation, or an equally unrecoverable rejection).
func (c *Client) terminal(err error) {
	c.cmu.Lock()
	if c.closed {
		c.cmu.Unlock()
		return
	}
	c.termErr = err
	c.recovering = false
	st := c.stateCh
	c.stateCh = nil
	c.cmu.Unlock()
	if st != nil {
		close(st)
	}
}

// enterDegraded flips the client into fail-open mode: coordination verbs
// self-serve from here until a connection is adopted.
func (c *Client) enterDegraded() {
	c.cmu.Lock()
	if c.closed || c.degraded || c.healthy {
		c.cmu.Unlock()
		return
	}
	c.degraded = true
	st := c.stateCh
	c.stateCh = make(chan struct{})
	c.cmu.Unlock()
	c.dmu.Lock()
	c.degradedSince = time.Now()
	c.inWindow = true
	c.windows++
	c.dmu.Unlock()
	if st != nil {
		close(st)
	}
}

// endWindow closes the open degraded window (caller holds cmu).
func (c *Client) endWindow() {
	c.dmu.Lock()
	if c.inWindow {
		d := time.Since(c.degradedSince).Seconds()
		c.degradedSec += d
		c.pendDegraded += d
		c.inWindow = false
		if c.opts.DegradedHist != nil {
			c.opts.DegradedHist.Observe(d)
		}
	}
	c.dmu.Unlock()
}

// snapshotReport returns the degraded amounts to report on a resume: the
// unreported totals plus the still-open window so far.
func (c *Client) snapshotReport() (uint64, float64) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	self, deg := c.pendSelf, c.pendDegraded
	if c.inWindow {
		deg += time.Since(c.degradedSince).Seconds()
	}
	return self, deg
}

// markReported subtracts amounts the daemon has accepted. Self-grants that
// landed during the handshake stay pending for the next report; reported
// open-window seconds are rebased by moving the window start forward.
func (c *Client) markReported(self uint64, deg float64) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.pendSelf -= min(self, c.pendSelf)
	c.pendDegraded -= deg
	if c.pendDegraded < 0 {
		// Part of the report came from the open window; rebase it so the
		// remainder is not reported twice.
		if c.inWindow {
			c.degradedSince = c.degradedSince.Add(time.Duration(-c.pendDegraded * float64(time.Second)))
		}
		c.pendDegraded = 0
	}
}

// DegradedReport is a client's cumulative fail-open accounting.
type DegradedReport struct {
	// SelfGrants counts Waits the client granted itself while the daemon
	// was unreachable past the fail-open deadline.
	SelfGrants uint64
	// Seconds is the total time spent in degraded (uncoordinated) mode.
	Seconds float64
	// Windows counts distinct degraded episodes.
	Windows uint64
}

// DegradedReport returns the client's fail-open accounting so far (an open
// degraded window is included up to now). The same numbers are reported to
// the daemon on resume and surfaced in its Stats.
func (c *Client) DegradedReport() DegradedReport {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	r := DegradedReport{SelfGrants: c.selfGrants, Seconds: c.degradedSec, Windows: c.windows}
	if c.inWindow {
		r.Seconds += time.Since(c.degradedSince).Seconds()
	}
	return r
}

// mode reads the connection state machine for the retry loop.
type mode int

const (
	modeHealthy mode = iota
	modeDown
	modeDegraded
	modeTerminal
	modeClosed
)

func (c *Client) mode() (mode, chan struct{}, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	switch {
	case c.closed:
		return modeClosed, nil, ErrClosed
	case c.termErr != nil:
		return modeTerminal, nil, c.termErr
	case c.degraded:
		return modeDegraded, nil, nil
	case c.healthy:
		return modeHealthy, nil, nil
	default:
		return modeDown, c.stateCh, nil
	}
}

// await parks until the connection state changes from down, returning the
// mode that ended the wait.
func (c *Client) await() (mode, error) {
	for {
		m, st, err := c.mode()
		if m != modeDown {
			return m, err
		}
		if st == nil {
			return m, errors.New("client: connection down")
		}
		select {
		case <-st:
		case <-c.done:
			return modeClosed, ErrClosed
		}
	}
}

// rawCall performs one blocking request/response round trip on the current
// connection. Responses may be served out of order by the daemon (Wait is
// answered only at grant time), so each call parks on its own channel keyed
// by Seq. Failures are typed: *transportError is retryable after recovery,
// *ReplyError is the daemon's answer.
func (c *Client) rawCall(req wire.Request) (wire.Response, error) {
	req.Seq = c.seq.Add(1)
	pc := callPool.Get().(*pendingCall)
	c.mu.Lock()
	if c.pending == nil {
		err := c.err
		c.mu.Unlock()
		callPool.Put(pc)
		return wire.Response{}, err
	}
	c.pending[req.Seq] = pc
	c.mu.Unlock()

	var err error
	if c.mx != nil {
		err = c.mx.send(c.stream, &req)
	} else {
		c.wmu.Lock()
		if c.enc == nil {
			err = errors.New("not connected")
		} else {
			if err = c.enc.Write(&req); err == nil {
				err = c.bw.Flush()
			}
		}
		c.wmu.Unlock()
	}
	if err != nil {
		// Reclaim the entry — unless a concurrent connection-loss sweep (or
		// a response racing the send failure) already took it, in which case
		// a completion is in flight and must be drained before reuse.
		c.mu.Lock()
		_, mine := c.pending[req.Seq]
		if mine {
			delete(c.pending, req.Seq)
		}
		c.mu.Unlock()
		if !mine {
			<-pc.ch
		}
		callPool.Put(pc)
		return wire.Response{}, &transportError{fmt.Errorf("client: send: %w", err)}
	}

	comp := <-pc.ch
	callPool.Put(pc)
	if comp.lost {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = &transportError{errors.New("client: connection lost")}
		}
		return wire.Response{}, err
	}
	if comp.resp.Err != "" {
		return comp.resp, &ReplyError{Code: comp.resp.Code, Msg: comp.resp.Err}
	}
	return comp.resp, nil
}

// call wraps rawCall with the recovery loop for requests with no per-target
// journal (stats): transport errors wait out the outage and retry;
// retryable daemon errors force a reconnect cycle (draining) or an
// in-place backoff (busy/overloaded) first.
func (c *Client) call(req wire.Request) (wire.Response, error) {
	overload := 0
	for {
		m, _, err := c.mode()
		switch m {
		case modeClosed, modeTerminal:
			return wire.Response{}, err
		case modeDegraded:
			return wire.Response{}, errors.New("client: degraded: coordinator unreachable")
		case modeDown:
			if _, err := c.await(); err != nil {
				return wire.Response{}, err
			}
			continue
		}
		resp, err := c.rawCall(req)
		if err == nil {
			return resp, nil
		}
		if !c.opts.Reconnect {
			return resp, err
		}
		if isTransport(err) {
			continue // loop re-reads mode and parks in await
		}
		var re *ReplyError
		if errors.As(err, &re) && wire.Retryable(re.Code) {
			if overload = c.retryReply(re.Code, overload); overload < 0 {
				return wire.Response{}, ErrClosed
			}
			continue
		}
		return resp, err
	}
}

// retryReply handles one retryable daemon error inside a retry loop:
// draining cycles the connection (the daemon is going away; the successor
// is reached by redial), while the overload codes — busy at admission,
// overloaded under shedding or rate limiting — back off in place, because
// the connection is healthy and cycling it would only add load to a daemon
// already protecting itself. attempt counts prior overload backoffs (for
// the exponential schedule); the return is the next attempt count, or -1
// when the client closed mid-backoff and the caller must give up.
func (c *Client) retryReply(code string, attempt int) int {
	if code == wire.CodeDraining {
		c.kickReconnect()
		return attempt
	}
	d := c.opts.BackoffMin << min(attempt, 16)
	if d <= 0 || d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	select {
	case <-time.After(d):
		return attempt + 1
	case <-c.done:
		return -1
	}
}

// kickReconnect force-cycles the current connection (the daemon said it is
// draining): closing it makes the read loop exit into the recovery path.
func (c *Client) kickReconnect() {
	if c.mx != nil {
		c.mx.kick()
		return
	}
	c.cmu.Lock()
	if c.healthy && c.conn != nil {
		c.conn.Close()
	}
	c.cmu.Unlock()
	// Give the read loop a moment to observe the close; await handles the
	// rest once connLost has run.
	time.Sleep(time.Millisecond)
}

func (c *Client) setAuth(target string, v bool) {
	c.amu.Lock()
	c.auth[target] = v
	c.amu.Unlock()
}

func (c *Client) getAuth(target string) bool {
	c.amu.Lock()
	defer c.amu.Unlock()
	return c.auth[target]
}

func (c *Client) journalFor(target string) *tjournal {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	j := c.journal[target]
	if j == nil {
		j = &tjournal{epoch: c.epoch.Load()}
		c.journal[target] = j
	}
	return j
}

// ensureSynced re-drives a target's journal after a resume: the daemon
// reset the session's protocol state at rebind, so the stacked prepares,
// the open phase, and — when the client held authorization — a blocking
// re-acquiring Wait are re-issued before the interrupted call retries.
func (c *Client) ensureSynced(t Target) error {
	if !c.opts.Reconnect {
		return nil
	}
	c.regMu.Lock()
	registered := c.registered
	c.regMu.Unlock()
	if !registered {
		return nil
	}
	j := c.journalFor(t.resolved())
	cur := c.epoch.Load()
	if j.epoch == cur {
		return nil
	}
	j.epoch = cur
	redrive := func(req wire.Request) error {
		if _, err := c.rawCall(req); err != nil {
			j.epoch = 0 // resync again after the next recovery
			return err
		}
		return nil
	}
	for _, info := range j.prepared {
		if err := redrive(wire.Request{Type: wire.TypePrepare, Info: info, Target: t.send}); err != nil {
			return err
		}
	}
	if j.phaseOpen {
		if err := redrive(wire.Request{Type: wire.TypeInform, Target: t.send}); err != nil {
			return err
		}
		if j.holding {
			if err := redrive(wire.Request{Type: wire.TypeWait, Target: t.send}); err != nil {
				return err
			}
		}
	}
	return nil
}

// note updates the target's journal after one successful verb, keeping it
// exactly the state a resync must re-drive.
func (j *tjournal) note(typ string, info core.Info) {
	switch typ {
	case wire.TypePrepare:
		j.prepared = append(j.prepared, info)
	case wire.TypeComplete:
		if n := len(j.prepared); n > 0 {
			j.prepared = j.prepared[:n-1]
		}
	case wire.TypeInform:
		j.phaseOpen = true
	case wire.TypeWait:
		j.holding = true
	case wire.TypeEnd:
		j.phaseOpen = false
		j.holding = false
	}
}

// selfServe answers one coordination verb locally in degraded mode: the
// journal advances exactly as if the daemon had said yes, and a Wait is a
// counted self-grant. When the daemon comes back the journal re-drives the
// resulting state through the real protocol.
func (c *Client) selfServe(t Target, req wire.Request) wire.Response {
	j := c.journalFor(t.resolved())
	j.note(req.Type, core.Info(req.Info))
	resp := wire.Response{Type: wire.TypeResp, OK: true, Target: t.resolved()}
	switch req.Type {
	case wire.TypeWait:
		c.dmu.Lock()
		c.selfGrants++
		c.pendSelf++
		c.dmu.Unlock()
		c.setAuth(t.resolved(), true)
		resp.Authorized = true
	case wire.TypeCheck:
		// Degraded coordination is self-coordination: the session is always
		// authorized by itself.
		resp.Authorized = true
	case wire.TypeEnd:
		c.setAuth(t.resolved(), false)
	default:
		resp.Authorized = c.getAuth(t.resolved())
	}
	return resp
}

// invoke is the robust round trip for one coordination verb on one target:
// degraded mode self-serves, a stale journal resyncs first, transport
// errors wait out the outage and retry, and retryable daemon errors force
// a reconnect cycle (draining) or an in-place backoff (busy/overloaded).
// On success the journal advances.
func (t Target) invoke(req wire.Request) (wire.Response, error) {
	c := t.c
	overload := 0
	for {
		m, _, err := c.mode()
		switch m {
		case modeClosed, modeTerminal:
			return wire.Response{}, err
		case modeDegraded:
			return c.selfServe(t, req), nil
		case modeDown:
			if _, err := c.await(); err != nil {
				return wire.Response{}, err
			}
			continue
		}
		if err := c.ensureSynced(t); err != nil {
			if isTransport(err) && c.opts.Reconnect {
				continue
			}
			return wire.Response{}, err
		}
		resp, err := c.rawCall(req)
		if err == nil {
			c.journalFor(t.resolved()).note(req.Type, core.Info(req.Info))
			return resp, nil
		}
		if !c.opts.Reconnect {
			return resp, err
		}
		if isTransport(err) {
			continue
		}
		var re *ReplyError
		if errors.As(err, &re) && wire.Retryable(re.Code) {
			if overload = c.retryReply(re.Code, overload); overload < 0 {
				return wire.Response{}, ErrClosed
			}
			continue
		}
		return resp, err
	}
}

// Target is a handle for one storage target's coordination domain: the
// same blocking call set as the Client, addressed at that target. Handles
// are cheap values; a client may hold one per target and drive them from
// different goroutines (each handle stays a one-goroutine object, like a
// Client).
type Target struct {
	c *Client
	// send is the wire Target field: "" lets the server resolve the
	// session default, keeping the default path byte-identical to the
	// pre-target protocol. The resolved name — used for the authorization
	// cache and trace capture — is computed per call, so a handle created
	// before RegisterOn still resolves the registered default.
	send string
}

// Target returns the handle for one storage target. An empty name means
// the session's default target.
func (c *Client) Target(name string) Target { return Target{c: c, send: name} }

// resolved is the target the server will route to: the explicit name, or
// the session's default.
func (t Target) resolved() string {
	if t.send == "" {
		return t.c.defTarget
	}
	return t.send
}

// Name returns the resolved target name.
func (t Target) Name() string { return t.resolved() }

// Register introduces the application to the daemon. It must be the first
// call; names must be unique among live sessions.
func (c *Client) Register(name string, cores int) error {
	return c.RegisterOn(name, cores, "")
}

// RegisterOn is Register with a default storage target: requests that do
// not name a target coordinate there. It must be the first call on the
// client (later calls read the default without synchronization).
//
// With Reconnect, the register carries incarnation 1 and every retry or
// resume bumps it, so the daemon can tell a resumed session from a name
// collision; in degraded mode registration succeeds locally and reaches
// the daemon when it comes back.
func (c *Client) RegisterOn(name string, cores int, target string) error {
	at := c.tnow()
	commit := func() {
		c.defTarget = target
		c.regMu.Lock()
		c.regName, c.regCores, c.registered = name, cores, true
		c.regMu.Unlock()
		c.traceReg.Store(true)
		c.rec(trace.Event{Type: trace.EvRegister, Time: at, App: name, Cores: int32(cores), Target: target})
	}
	overload := 0
	for {
		m, _, err := c.mode()
		switch m {
		case modeClosed, modeTerminal:
			return err
		case modeDegraded:
			// Fail-open before the daemon ever heard of us: the session runs
			// uncoordinated and registers (reporting the lapse) on recovery.
			commit()
			return nil
		case modeDown:
			if _, err := c.await(); err != nil {
				return err
			}
			continue
		}
		req := wire.Request{Type: wire.TypeRegister, App: name, Cores: cores, Target: target}
		if c.opts.Reconnect {
			c.regMu.Lock()
			c.incarnation++
			req.Incarnation = c.incarnation
			c.regMu.Unlock()
			req.SelfGrants, req.DegradedS = c.snapshotReport()
		}
		_, err = c.rawCall(req)
		if err == nil {
			if c.opts.Reconnect {
				c.markReported(req.SelfGrants, req.DegradedS)
			}
			commit()
			return nil
		}
		if !c.opts.Reconnect {
			return err
		}
		if isTransport(err) {
			// The register may have landed before the connection died; the
			// next attempt's higher incarnation resumes it either way.
			continue
		}
		var re *ReplyError
		if errors.As(err, &re) && wire.Retryable(re.Code) {
			if overload = c.retryReply(re.Code, overload); overload < 0 {
				return ErrClosed
			}
			continue
		}
		return err
	}
}

// Prepare stacks information about the upcoming I/O accesses on this
// target, as the paper's Prepare(MPI_Info) does.
func (t Target) Prepare(info core.Info) error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypePrepare, Info: info, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvPrepare, Time: at, Info: info, Target: t.resolved()})
	}
	return err
}

// Complete unstacks the most recent Prepare.
func (t Target) Complete() error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypeComplete, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvComplete, Time: at, Target: t.resolved()})
	}
	return err
}

// Inform announces the application's intent (or continued intent) to do
// I/O on this target. Non-blocking beyond the round trip; triggers the
// target's arbitration.
func (t Target) Inform() error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypeInform, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvInform, Time: at, Target: t.resolved()})
	}
	return err
}

// Progress reports bytes moved so far. Like the simulator's state-free
// Coordinator.Progress it neither opens a phase nor triggers arbitration;
// the value influences the next inform/release arbitration.
func (t Target) Progress(bytesDone float64) error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypeProgress, BytesDone: bytesDone, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvProgress, Time: at, Bytes: bytesDone, Target: t.resolved()})
	}
	return err
}

// Check polls authorization on this target with a round trip. It never
// blocks waiting for a grant. In degraded mode it reports true: a session
// coordinating with itself is always authorized.
func (t Target) Check() (bool, error) {
	at := t.c.tnow()
	resp, err := t.invoke(wire.Request{Type: wire.TypeCheck, Target: t.send})
	if err != nil {
		return false, err
	}
	t.c.rec(trace.Event{Type: trace.EvCheck, Time: at, Target: t.resolved()})
	return resp.Authorized, nil
}

// Authorized returns the cached authorization state for this target,
// updated by pushed grants/revocations — Check without the round trip.
func (t Target) Authorized() bool { return t.c.getAuth(t.resolved()) }

// Wait blocks until the daemon authorizes the application's access on this
// target (a Wait on another target from another goroutine is unaffected —
// the domains arbitrate independently). With a capture attached, the wait
// is recorded at send time and the observed grant at response time. In
// degraded mode Wait self-grants immediately (counted, reported on
// resume); with Reconnect a Wait lost to a connection drop is re-issued
// after the session resumes, so the grant is re-acquired, not lost.
func (t Target) Wait() error {
	t.c.rec(trace.Event{Type: trace.EvWait, Time: t.c.tnow(), Target: t.resolved()})
	_, err := t.invoke(wire.Request{Type: wire.TypeWait, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvGrant, Time: t.c.tnow(), Target: t.resolved()})
	}
	return err
}

// Release ends one step of the I/O access, reporting progress. A new
// Inform is required before the next access step.
func (t Target) Release(bytesDone float64) error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypeRelease, BytesDone: bytesDone, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvRelease, Time: at, Bytes: bytesDone, Target: t.resolved()})
	}
	return err
}

// End terminates the I/O phase on this target entirely.
func (t Target) End() error {
	at := t.c.tnow()
	_, err := t.invoke(wire.Request{Type: wire.TypeEnd, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvEnd, Time: at, Target: t.resolved()})
	}
	return err
}

// Prepare stacks information about the upcoming I/O accesses on the
// default target, as the paper's Prepare(MPI_Info) does.
func (c *Client) Prepare(info core.Info) error { return c.Target("").Prepare(info) }

// Complete unstacks the most recent Prepare.
func (c *Client) Complete() error { return c.Target("").Complete() }

// Inform announces the application's intent (or continued intent) to do
// I/O. Non-blocking beyond the round trip; triggers arbitration.
func (c *Client) Inform() error { return c.Target("").Inform() }

// Progress reports bytes moved so far on the default target. Release and
// the Session helpers piggyback progress anyway, so an explicit Progress
// round trip is only needed between coordination points.
func (c *Client) Progress(bytesDone float64) error { return c.Target("").Progress(bytesDone) }

// Check polls authorization with a round trip. It never blocks waiting for
// a grant: an application free to reorganize its work can Check and do
// something else when denied.
func (c *Client) Check() (bool, error) { return c.Target("").Check() }

// Authorized returns the cached authorization state on the default target,
// updated by pushed grants/revocations — Check without the round trip.
func (c *Client) Authorized() bool { return c.getAuth(c.defTarget) }

// Wait blocks until the daemon authorizes the application's access. The
// response is deferred server-side until arbitration grants access. With a
// capture attached, the wait is recorded at send time — BEFORE the round
// trip, unlike the quick calls, because a deferred Wait can return seconds
// later and a post-hoc record would land after other clients' events and
// collapse the measured wait in replay — and the observed grant at
// response time. A failed Wait leaves a pending wait event in the trace;
// replay censors it, exactly like a session that vanished mid-wait.
func (c *Client) Wait() error { return c.Target("").Wait() }

// Release ends one step of the I/O access, reporting progress. A new
// Inform is required before the next access step.
func (c *Client) Release(bytesDone float64) error { return c.Target("").Release(bytesDone) }

// End terminates the I/O phase entirely.
func (c *Client) End() error { return c.Target("").End() }

// Stats fetches the daemon's live metrics snapshot. It cannot be
// self-served: in degraded mode it errors.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.call(wire.Request{Type: wire.TypeStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		return wire.Stats{}, errors.New("client: stats response without payload")
	}
	return *resp.Stats, nil
}

// Session bundles the common call sequences a driver needs at its
// coordination points on one storage target, mirroring core.Session so the
// same driver shape runs against the simulator or the daemon.
type Session struct {
	C *Client
	t Target
}

// NewSession wraps a client, coordinating on its default target.
func NewSession(c *Client) *Session { return NewSessionOn(c, "") }

// NewSessionOn wraps a client, coordinating on the given storage target
// ("" = the session's default target).
func NewSessionOn(c *Client, target string) *Session {
	return &Session{C: c, t: c.Target(target)}
}

// Begin opens an I/O phase: Prepare + Inform + Wait.
func (s *Session) Begin(info core.Info) error {
	if err := s.t.Prepare(info); err != nil {
		return err
	}
	if err := s.t.Inform(); err != nil {
		return err
	}
	return s.t.Wait()
}

// Yield is a coordination point between atomic accesses: Release + Inform +
// Wait. If arbitration has revoked authorization, the call blocks until
// access is granted back.
func (s *Session) Yield(bytesDone float64) error {
	if err := s.t.Release(bytesDone); err != nil {
		return err
	}
	if err := s.t.Inform(); err != nil {
		return err
	}
	return s.t.Wait()
}

// End closes the phase: Release + Complete + End.
func (s *Session) End(bytesDone float64) error {
	if err := s.t.Release(bytesDone); err != nil {
		return err
	}
	if err := s.t.Complete(); err != nil {
		return err
	}
	return s.t.End()
}
