// Package client is the application-side library for calciomd: a blocking
// client that mirrors the in-simulator core.Coordinator API
// (Prepare/Complete/Inform/Check/Wait/Release/End plus a Session wrapper
// with Begin/Yield/End), so driver code written against the simulator's
// coordination calls maps one-to-one onto the live daemon.
//
// Coordination is per storage target: Client.Target returns a handle scoped
// to one target's independent coordination domain, and the plain Client
// methods are the handle for the session's default target (set by
// RegisterOn, itself defaulting to "") — so code that never mentions
// targets speaks the original single-target protocol unchanged. Waiting on
// one target never blocks calls on another from a different goroutine, but
// a single Client remains a one-application-goroutine object per target
// handle; the internal reader goroutine that dispatches responses and
// per-target authorization pushes is fully encapsulated.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Client is one application's connection to the coordination daemon.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	err     error // terminal receive error; set once

	// auth caches the server's per-target view, updated by responses and by
	// pushed grant/revoke notifications (the server echoes the resolved
	// target on every frame), so Check can be answered with a round trip
	// (authoritative) while pushes keep it warm in between.
	amu  sync.Mutex
	auth map[string]bool

	// defTarget is the session's default target, set by RegisterOn before
	// any other coordination call (so later reads need no lock).
	defTarget string

	// Client-side trace capture (CaptureTo); nil when not recording.
	tw       *trace.Writer
	tsid     uint32
	tclock   func() float64
	traceReg atomic.Bool // a successful Register was recorded

	done chan struct{}
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan wire.Response),
		auth:    make(map[string]bool),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// CaptureTo attaches a client-side trace recorder: every successful
// coordination call is recorded (at its send time) under the given session
// identity, and a served Wait additionally records the observed grant. The
// writer may be shared by many clients — calciom-load records its whole
// fleet into one file. Unlike a daemon-side trace this capture is
// observational: timestamps are client clocks, and the grant events are
// client-observed, so it supports what-if replay but not exact
// verification. Set it before the first call; the recorded Info maps must
// not be mutated afterwards.
func (c *Client) CaptureTo(w *trace.Writer, sid uint32, clock func() float64) {
	c.tw, c.tsid, c.tclock = w, sid, clock
}

func (c *Client) rec(ev trace.Event) {
	if c.tw != nil {
		ev.SID = c.tsid
		c.tw.Record(ev)
	}
}

func (c *Client) tnow() float64 {
	if c.tclock == nil {
		return 0
	}
	return c.tclock()
}

// Close tears the connection down; outstanding calls fail. With a capture
// attached, one unregister is recorded for the whole session — replay
// propagates it to every target the session coordinated on.
func (c *Client) Close() error {
	if c.tw != nil && c.traceReg.CompareAndSwap(true, false) {
		c.rec(trace.Event{Type: trace.EvUnregister, Time: c.tnow(), Target: c.defTarget})
	}
	return c.conn.Close()
}

// readLoop dispatches responses to their waiting callers and folds
// unsolicited grant/revoke pushes into the cached authorization state.
func (c *Client) readLoop() {
	dec := wire.NewReader(bufio.NewReader(c.conn))
	var err error
	for {
		var resp wire.Response
		if err = dec.Read(&resp); err != nil {
			break
		}
		switch resp.Type {
		case wire.TypeGrant:
			c.setAuth(resp.Target, true)
		case wire.TypeRevoke:
			c.setAuth(resp.Target, false)
		case wire.TypeResp:
			// Every response carries the server's current authorization on
			// the request's (resolved) target; caching it here — the single
			// writer, in arrival order — means a pushed revocation can
			// never be overwritten by a caller goroutine finishing an older
			// round trip late.
			c.setAuth(resp.Target, resp.Authorized)
			c.mu.Lock()
			ch := c.pending[resp.Seq]
			delete(c.pending, resp.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		}
	}
	c.mu.Lock()
	c.err = fmt.Errorf("client: connection lost: %w", err)
	pend := c.pending
	c.pending = nil
	c.mu.Unlock()
	close(c.done)
	for _, ch := range pend {
		close(ch)
	}
}

// call performs one blocking request/response round trip. Responses may be
// served out of order by the daemon (Wait is answered only at grant time),
// so each call parks on its own channel keyed by Seq.
func (c *Client) call(req wire.Request) (wire.Response, error) {
	req.Seq = c.seq.Add(1)
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.pending == nil {
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.Write(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return wire.Response{}, fmt.Errorf("client: send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *Client) setAuth(target string, v bool) {
	c.amu.Lock()
	c.auth[target] = v
	c.amu.Unlock()
}

func (c *Client) getAuth(target string) bool {
	c.amu.Lock()
	defer c.amu.Unlock()
	return c.auth[target]
}

// Target is a handle for one storage target's coordination domain: the
// same blocking call set as the Client, addressed at that target. Handles
// are cheap values; a client may hold one per target and drive them from
// different goroutines (each handle stays a one-goroutine object, like a
// Client).
type Target struct {
	c *Client
	// send is the wire Target field: "" lets the server resolve the
	// session default, keeping the default path byte-identical to the
	// pre-target protocol. The resolved name — used for the authorization
	// cache and trace capture — is computed per call, so a handle created
	// before RegisterOn still resolves the registered default.
	send string
}

// Target returns the handle for one storage target. An empty name means
// the session's default target.
func (c *Client) Target(name string) Target { return Target{c: c, send: name} }

// resolved is the target the server will route to: the explicit name, or
// the session's default.
func (t Target) resolved() string {
	if t.send == "" {
		return t.c.defTarget
	}
	return t.send
}

// Name returns the resolved target name.
func (t Target) Name() string { return t.resolved() }

// Register introduces the application to the daemon. It must be the first
// call; names must be unique among live sessions.
func (c *Client) Register(name string, cores int) error {
	return c.RegisterOn(name, cores, "")
}

// RegisterOn is Register with a default storage target: requests that do
// not name a target coordinate there. It must be the first call on the
// client (later calls read the default without synchronization).
func (c *Client) RegisterOn(name string, cores int, target string) error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeRegister, App: name, Cores: cores, Target: target})
	if err == nil {
		c.defTarget = target
		c.traceReg.Store(true)
		c.rec(trace.Event{Type: trace.EvRegister, Time: t, App: name, Cores: int32(cores), Target: target})
	}
	return err
}

// Prepare stacks information about the upcoming I/O accesses on this
// target, as the paper's Prepare(MPI_Info) does.
func (t Target) Prepare(info core.Info) error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypePrepare, Info: info, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvPrepare, Time: at, Info: info, Target: t.resolved()})
	}
	return err
}

// Complete unstacks the most recent Prepare.
func (t Target) Complete() error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypeComplete, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvComplete, Time: at, Target: t.resolved()})
	}
	return err
}

// Inform announces the application's intent (or continued intent) to do
// I/O on this target. Non-blocking beyond the round trip; triggers the
// target's arbitration.
func (t Target) Inform() error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypeInform, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvInform, Time: at, Target: t.resolved()})
	}
	return err
}

// Progress reports bytes moved so far. Like the simulator's state-free
// Coordinator.Progress it neither opens a phase nor triggers arbitration;
// the value influences the next inform/release arbitration.
func (t Target) Progress(bytesDone float64) error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypeProgress, BytesDone: bytesDone, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvProgress, Time: at, Bytes: bytesDone, Target: t.resolved()})
	}
	return err
}

// Check polls authorization on this target with a round trip. It never
// blocks waiting for a grant.
func (t Target) Check() (bool, error) {
	at := t.c.tnow()
	resp, err := t.c.call(wire.Request{Type: wire.TypeCheck, Target: t.send})
	if err != nil {
		return false, err
	}
	t.c.rec(trace.Event{Type: trace.EvCheck, Time: at, Target: t.resolved()})
	return resp.Authorized, nil
}

// Authorized returns the cached authorization state for this target,
// updated by pushed grants/revocations — Check without the round trip.
func (t Target) Authorized() bool { return t.c.getAuth(t.resolved()) }

// Wait blocks until the daemon authorizes the application's access on this
// target (a Wait on another target from another goroutine is unaffected —
// the domains arbitrate independently). With a capture attached, the wait
// is recorded at send time and the observed grant at response time.
func (t Target) Wait() error {
	t.c.rec(trace.Event{Type: trace.EvWait, Time: t.c.tnow(), Target: t.resolved()})
	_, err := t.c.call(wire.Request{Type: wire.TypeWait, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvGrant, Time: t.c.tnow(), Target: t.resolved()})
	}
	return err
}

// Release ends one step of the I/O access, reporting progress. A new
// Inform is required before the next access step.
func (t Target) Release(bytesDone float64) error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypeRelease, BytesDone: bytesDone, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvRelease, Time: at, Bytes: bytesDone, Target: t.resolved()})
	}
	return err
}

// End terminates the I/O phase on this target entirely.
func (t Target) End() error {
	at := t.c.tnow()
	_, err := t.c.call(wire.Request{Type: wire.TypeEnd, Target: t.send})
	if err == nil {
		t.c.rec(trace.Event{Type: trace.EvEnd, Time: at, Target: t.resolved()})
	}
	return err
}

// Prepare stacks information about the upcoming I/O accesses on the
// default target, as the paper's Prepare(MPI_Info) does.
func (c *Client) Prepare(info core.Info) error { return c.Target("").Prepare(info) }

// Complete unstacks the most recent Prepare.
func (c *Client) Complete() error { return c.Target("").Complete() }

// Inform announces the application's intent (or continued intent) to do
// I/O. Non-blocking beyond the round trip; triggers arbitration.
func (c *Client) Inform() error { return c.Target("").Inform() }

// Progress reports bytes moved so far on the default target. Release and
// the Session helpers piggyback progress anyway, so an explicit Progress
// round trip is only needed between coordination points.
func (c *Client) Progress(bytesDone float64) error { return c.Target("").Progress(bytesDone) }

// Check polls authorization with a round trip. It never blocks waiting for
// a grant: an application free to reorganize its work can Check and do
// something else when denied.
func (c *Client) Check() (bool, error) { return c.Target("").Check() }

// Authorized returns the cached authorization state on the default target,
// updated by pushed grants/revocations — Check without the round trip.
func (c *Client) Authorized() bool { return c.getAuth(c.defTarget) }

// Wait blocks until the daemon authorizes the application's access. The
// response is deferred server-side until arbitration grants access. With a
// capture attached, the wait is recorded at send time — BEFORE the round
// trip, unlike the quick calls, because a deferred Wait can return seconds
// later and a post-hoc record would land after other clients' events and
// collapse the measured wait in replay — and the observed grant at
// response time. A failed Wait leaves a pending wait event in the trace;
// replay censors it, exactly like a session that vanished mid-wait.
func (c *Client) Wait() error { return c.Target("").Wait() }

// Release ends one step of the I/O access, reporting progress. A new
// Inform is required before the next access step.
func (c *Client) Release(bytesDone float64) error { return c.Target("").Release(bytesDone) }

// End terminates the I/O phase entirely.
func (c *Client) End() error { return c.Target("").End() }

// Stats fetches the daemon's live metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.call(wire.Request{Type: wire.TypeStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		return wire.Stats{}, errors.New("client: stats response without payload")
	}
	return *resp.Stats, nil
}

// Session bundles the common call sequences a driver needs at its
// coordination points on one storage target, mirroring core.Session so the
// same driver shape runs against the simulator or the daemon.
type Session struct {
	C *Client
	t Target
}

// NewSession wraps a client, coordinating on its default target.
func NewSession(c *Client) *Session { return NewSessionOn(c, "") }

// NewSessionOn wraps a client, coordinating on the given storage target
// ("" = the session's default target).
func NewSessionOn(c *Client, target string) *Session {
	return &Session{C: c, t: c.Target(target)}
}

// Begin opens an I/O phase: Prepare + Inform + Wait.
func (s *Session) Begin(info core.Info) error {
	if err := s.t.Prepare(info); err != nil {
		return err
	}
	if err := s.t.Inform(); err != nil {
		return err
	}
	return s.t.Wait()
}

// Yield is a coordination point between atomic accesses: Release + Inform +
// Wait. If arbitration has revoked authorization, the call blocks until
// access is granted back.
func (s *Session) Yield(bytesDone float64) error {
	if err := s.t.Release(bytesDone); err != nil {
		return err
	}
	if err := s.t.Inform(); err != nil {
		return err
	}
	return s.t.Wait()
}

// End closes the phase: Release + Complete + End.
func (s *Session) End(bytesDone float64) error {
	if err := s.t.Release(bytesDone); err != nil {
		return err
	}
	if err := s.t.Complete(); err != nil {
		return err
	}
	return s.t.End()
}
