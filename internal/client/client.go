// Package client is the application-side library for calciomd: a blocking
// client that mirrors the in-simulator core.Coordinator API
// (Prepare/Complete/Inform/Check/Wait/Release/End plus a Session wrapper
// with Begin/Yield/End), so driver code written against the simulator's
// coordination calls maps one-to-one onto the live daemon.
//
// A Client is safe for use by one application goroutine (like a Coordinator
// belongs to one simulated process); the internal reader goroutine that
// dispatches responses and authorization pushes is fully encapsulated.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Client is one application's connection to the coordination daemon.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	err     error // terminal receive error; set once

	// authorized caches the server's view, updated by responses and by
	// pushed grant/revoke notifications, so Check can be answered with a
	// round trip (authoritative) while pushes keep it warm in between.
	authorized atomic.Bool

	// Client-side trace capture (CaptureTo); nil when not recording.
	tw       *trace.Writer
	tsid     uint32
	tclock   func() float64
	traceReg atomic.Bool // a successful Register was recorded

	done chan struct{}
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(map[uint64]chan wire.Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// CaptureTo attaches a client-side trace recorder: every successful
// coordination call is recorded (at its send time) under the given session
// identity, and a served Wait additionally records the observed grant. The
// writer may be shared by many clients — calciom-load records its whole
// fleet into one file. Unlike a daemon-side trace this capture is
// observational: timestamps are client clocks, and the grant events are
// client-observed, so it supports what-if replay but not exact
// verification. Set it before the first call; the recorded Info maps must
// not be mutated afterwards.
func (c *Client) CaptureTo(w *trace.Writer, sid uint32, clock func() float64) {
	c.tw, c.tsid, c.tclock = w, sid, clock
}

func (c *Client) rec(ev trace.Event) {
	if c.tw != nil {
		ev.SID = c.tsid
		c.tw.Record(ev)
	}
}

func (c *Client) tnow() float64 {
	if c.tclock == nil {
		return 0
	}
	return c.tclock()
}

// Close tears the connection down; outstanding calls fail.
func (c *Client) Close() error {
	if c.tw != nil && c.traceReg.CompareAndSwap(true, false) {
		c.rec(trace.Event{Type: trace.EvUnregister, Time: c.tnow()})
	}
	return c.conn.Close()
}

// readLoop dispatches responses to their waiting callers and folds
// unsolicited grant/revoke pushes into the cached authorization state.
func (c *Client) readLoop() {
	dec := wire.NewReader(bufio.NewReader(c.conn))
	var err error
	for {
		var resp wire.Response
		if err = dec.Read(&resp); err != nil {
			break
		}
		switch resp.Type {
		case wire.TypeGrant:
			c.authorized.Store(true)
		case wire.TypeRevoke:
			c.authorized.Store(false)
		case wire.TypeResp:
			// Every response carries the server's current authorization;
			// caching it here — the single writer, in arrival order —
			// means a pushed revocation can never be overwritten by a
			// caller goroutine finishing an older round trip late.
			c.authorized.Store(resp.Authorized)
			c.mu.Lock()
			ch := c.pending[resp.Seq]
			delete(c.pending, resp.Seq)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		}
	}
	c.mu.Lock()
	c.err = fmt.Errorf("client: connection lost: %w", err)
	pend := c.pending
	c.pending = nil
	c.mu.Unlock()
	close(c.done)
	for _, ch := range pend {
		close(ch)
	}
}

// call performs one blocking request/response round trip. Responses may be
// served out of order by the daemon (Wait is answered only at grant time),
// so each call parks on its own channel keyed by Seq.
func (c *Client) call(req wire.Request) (wire.Response, error) {
	req.Seq = c.seq.Add(1)
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.pending == nil {
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.Write(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return wire.Response{}, fmt.Errorf("client: send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return wire.Response{}, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Register introduces the application to the daemon. It must be the first
// call; names must be unique among live sessions.
func (c *Client) Register(name string, cores int) error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeRegister, App: name, Cores: cores})
	if err == nil {
		c.traceReg.Store(true)
		c.rec(trace.Event{Type: trace.EvRegister, Time: t, App: name, Cores: int32(cores)})
	}
	return err
}

// Prepare stacks information about the upcoming I/O accesses, as the
// paper's Prepare(MPI_Info) does.
func (c *Client) Prepare(info core.Info) error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypePrepare, Info: info})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvPrepare, Time: t, Info: info})
	}
	return err
}

// Complete unstacks the most recent Prepare.
func (c *Client) Complete() error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeComplete})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvComplete, Time: t})
	}
	return err
}

// Inform announces the application's intent (or continued intent) to do
// I/O. Non-blocking beyond the round trip; triggers arbitration.
func (c *Client) Inform() error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeInform})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvInform, Time: t})
	}
	return err
}

// Progress reports bytes moved so far. Like the simulator's state-free
// Coordinator.Progress it neither opens a phase nor triggers arbitration;
// the value influences the next inform/release arbitration. Release and
// the Session helpers piggyback progress anyway, so an explicit Progress
// round trip is only needed between coordination points.
func (c *Client) Progress(bytesDone float64) error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeProgress, BytesDone: bytesDone})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvProgress, Time: t, Bytes: bytesDone})
	}
	return err
}

// Check polls authorization with a round trip. It never blocks waiting for
// a grant: an application free to reorganize its work can Check and do
// something else when denied.
func (c *Client) Check() (bool, error) {
	t := c.tnow()
	resp, err := c.call(wire.Request{Type: wire.TypeCheck})
	if err != nil {
		return false, err
	}
	c.rec(trace.Event{Type: trace.EvCheck, Time: t})
	return resp.Authorized, nil
}

// Authorized returns the cached authorization state, updated by pushed
// grants/revocations — Check without the round trip.
func (c *Client) Authorized() bool { return c.authorized.Load() }

// Wait blocks until the daemon authorizes the application's access. The
// response is deferred server-side until arbitration grants access. With a
// capture attached, the wait is recorded at send time — BEFORE the round
// trip, unlike the quick calls, because a deferred Wait can return seconds
// later and a post-hoc record would land after other clients' events and
// collapse the measured wait in replay — and the observed grant at
// response time. A failed Wait leaves a pending wait event in the trace;
// replay censors it, exactly like a session that vanished mid-wait.
func (c *Client) Wait() error {
	c.rec(trace.Event{Type: trace.EvWait, Time: c.tnow()})
	_, err := c.call(wire.Request{Type: wire.TypeWait})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvGrant, Time: c.tnow()})
	}
	return err
}

// Release ends one step of the I/O access, reporting progress. A new
// Inform is required before the next access step.
func (c *Client) Release(bytesDone float64) error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeRelease, BytesDone: bytesDone})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvRelease, Time: t, Bytes: bytesDone})
	}
	return err
}

// End terminates the I/O phase entirely.
func (c *Client) End() error {
	t := c.tnow()
	_, err := c.call(wire.Request{Type: wire.TypeEnd})
	if err == nil {
		c.rec(trace.Event{Type: trace.EvEnd, Time: t})
	}
	return err
}

// Stats fetches the daemon's live metrics snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.call(wire.Request{Type: wire.TypeStats})
	if err != nil {
		return wire.Stats{}, err
	}
	if resp.Stats == nil {
		return wire.Stats{}, errors.New("client: stats response without payload")
	}
	return *resp.Stats, nil
}

// Session bundles the common call sequences a driver needs at its
// coordination points, mirroring core.Session so the same driver shape runs
// against the simulator or the daemon.
type Session struct {
	C *Client
}

// NewSession wraps a client.
func NewSession(c *Client) *Session { return &Session{C: c} }

// Begin opens an I/O phase: Prepare + Inform + Wait.
func (s *Session) Begin(info core.Info) error {
	if err := s.C.Prepare(info); err != nil {
		return err
	}
	if err := s.C.Inform(); err != nil {
		return err
	}
	return s.C.Wait()
}

// Yield is a coordination point between atomic accesses: Release + Inform +
// Wait. If arbitration has revoked authorization, the call blocks until
// access is granted back.
func (s *Session) Yield(bytesDone float64) error {
	if err := s.C.Release(bytesDone); err != nil {
		return err
	}
	if err := s.C.Inform(); err != nil {
		return err
	}
	return s.C.Wait()
}

// End closes the phase: Release + Complete + End.
func (s *Session) End(bytesDone float64) error {
	if err := s.C.Release(bytesDone); err != nil {
		return err
	}
	if err := s.C.Complete(); err != nil {
		return err
	}
	return s.C.End()
}
