package client_test

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wirebin"
)

// TestBinaryResumeAfterCut drives the reconnect/resume machinery over the
// binary codec: the resume handshake must renegotiate the codec on the
// fresh connection (hello pipelined with the re-register) and re-drive the
// session state, exactly like the JSON path.
func TestBinaryResumeAfterCut(t *testing.T) {
	_, addr := startServer(t, server.Config{GrantGrace: 5 * time.Second})
	p, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := client.DialOptions(p.Addr(), client.Options{
		Reconnect: true, Codec: wirebin.Codec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	sess := client.NewSession(c)
	if err := sess.Begin(info(100)); err != nil {
		t.Fatal(err)
	}

	p.Cut()
	done := make(chan error, 1)
	go func() {
		if err := sess.Yield(50); err != nil {
			done <- err
			return
		}
		done <- sess.End(100)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("binary session after cut: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("binary session hung after disconnect-resume")
	}
	if r := c.DegradedReport(); r.SelfGrants != 0 {
		t.Fatalf("coordinated binary resume self-granted %d times", r.SelfGrants)
	}
}
