package client_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/wirebin"
)

// TestMuxSessions drives several logical sessions over one physical
// connection end to end: independent registration, coordination on shared
// and distinct targets, stats, and stream teardown that leaves the other
// streams (and the shared connection) alive.
func TestMuxSessions(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	m, err := client.DialMux(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const n = 8
	clients := make([]*client.Client, n)
	for i := range clients {
		c, err := m.Client()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(fmt.Sprintf("mux-%d", i), 1); err != nil {
			t.Fatalf("register stream %d: %v", i, err)
		}
		clients[i] = c
	}

	// Every stream runs grant cycles concurrently, half on a shared target
	// (arbitrated against each other) and half on private ones.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			target := "shared"
			if i%2 == 1 {
				target = fmt.Sprintf("solo-%d", i)
			}
			sess := client.NewSessionOn(c, target)
			for k := 0; k < 5; k++ {
				if err := sess.Begin(info(10)); err != nil {
					errs[i] = err
					return
				}
				if err := sess.End(10); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d cycles: %v", i, err)
		}
	}

	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != n {
		t.Fatalf("daemon sees %d sessions over the mux, want %d", st.Sessions, n)
	}

	// Closing one stream must not disturb its siblings.
	if err := clients[0].Close(); err != nil {
		t.Fatal(err)
	}
	sess := client.NewSessionOn(clients[1], "after-close")
	if err := sess.Begin(info(1)); err != nil {
		t.Fatalf("sibling stream after close: %v", err)
	}
	if err := sess.End(1); err != nil {
		t.Fatal(err)
	}
}

// TestMuxResumeAfterCut cuts the shared physical connection under several
// registered streams: one redial must resume every stream (same names,
// bumped incarnations) and the interrupted calls must retry through, with
// no self-grants because coordination never lapsed.
func TestMuxResumeAfterCut(t *testing.T) {
	_, addr := startServer(t, server.Config{GrantGrace: 5 * time.Second})
	p, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	m, err := client.DialMux(p.Addr(), client.Options{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const n = 4
	sessions := make([]*client.Session, n)
	clients := make([]*client.Client, n)
	for i := range sessions {
		c, err := m.Client()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(fmt.Sprintf("cut-%d", i), 1); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		sessions[i] = client.NewSessionOn(c, fmt.Sprintf("t%d", i))
		if err := sessions[i].Begin(info(100)); err != nil {
			t.Fatal(err)
		}
	}

	p.Cut()
	done := make(chan error, n)
	for _, sess := range sessions {
		go func(sess *client.Session) {
			if err := sess.Yield(50); err != nil {
				done <- err
				return
			}
			done <- sess.End(100)
		}(sess)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("mux session after cut: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("mux session hung after disconnect-resume")
		}
	}
	for i, c := range clients {
		if r := c.DegradedReport(); r.SelfGrants != 0 {
			t.Fatalf("coordinated mux resume self-granted %d times on stream %d", r.SelfGrants, i)
		}
	}
}

// TestRawCallAllocs pins the pooled request path: one blocking round trip
// reuses its parked-call state (channel and pool entry) instead of
// allocating it, which removed two of the client's ~4.75 allocations per
// request. The bound covers the whole process — client call path, client
// read loop, and the in-process daemon's (zero-alloc) hot path.
func TestRawCallAllocs(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.DialOptions(addr, client.Options{Codec: wirebin.Codec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("alloc", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Inform(); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(2000, func() {
		if err := c.Inform(); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 4.0 with the pool (channel + pending map entry reused);
	// before pooling the same loop measured ~6. Headroom for runtime noise,
	// strict enough to catch the pool regressing.
	if got > 5 {
		t.Fatalf("Inform round trip allocates %.1f objects, want <= 5 (pooled pending calls)", got)
	}
}
