package client_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wire"
)

// startServer runs a daemon on an ephemeral port and returns its address.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Policy == nil {
		cfg.Policy = core.FCFSPolicy{}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func info(bytes float64) core.Info {
	in := core.Info{}
	in.SetFloat(core.KeyBytesTotal, bytes)
	return in
}

// TestResumeReclaimsGrant is the grant-never-lost / never-duplicated
// invariant across a forced disconnect of a grant holder: A holds the
// grant, B is parked waiting, A's connection is cut. A resumes within the
// grace window, re-drives its state, and both clients complete their
// phases — nothing hangs, and FCFS still serializes them (the arbitration
// itself guarantees a single holder; the test drives the full cycle).
func TestResumeReclaimsGrant(t *testing.T) {
	_, addr := startServer(t, server.Config{GrantGrace: 5 * time.Second})
	p, err := chaos.New(chaos.Options{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a, err := client.DialOptions(p.Addr(), client.Options{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}

	sa := client.NewSession(a)
	if err := sa.Begin(info(100)); err != nil {
		t.Fatal(err)
	}
	// B parks behind A.
	if err := b.Prepare(info(100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	bWait := make(chan error, 1)
	go func() { bWait <- b.Wait() }()
	time.Sleep(30 * time.Millisecond)

	// Cut the holder's connection. Within the grace window A resumes and
	// re-acquires; its next coordination point must succeed.
	p.Cut()
	aDone := make(chan error, 1)
	go func() {
		if err := sa.Yield(50); err != nil {
			aDone <- err
			return
		}
		aDone <- sa.End(100)
	}()

	// The resume's re-arbitration may hand the grant to B first; drive B
	// through its phase so A can finish either way.
	select {
	case err := <-bWait:
		if err != nil {
			t.Fatalf("B wait: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("B hung waiting after holder disconnect-resume")
	}
	if err := b.Release(100); err != nil {
		t.Fatal(err)
	}
	if err := b.Complete(); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-aDone:
		if err != nil {
			t.Fatalf("A after resume: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("A hung after disconnect-resume")
	}
	if r := a.DegradedReport(); r.SelfGrants != 0 {
		t.Fatalf("coordinated resume self-granted %d times", r.SelfGrants)
	}
	// The daemon counted the resume in its degraded accounting (a resumed
	// session with zero self-grants: coordination never lapsed).
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range st.Degraded {
		if d.Name == "A" && d.Resumes >= 1 && d.SelfGrants == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats missing A's resume: %+v", st.Degraded)
	}
}

// TestGraceExpiryReleasesGrant: a crashed holder without resume must not
// convoy the target forever — after the grace window its grant is revoked
// and the waiter is served.
func TestGraceExpiryReleasesGrant(t *testing.T) {
	grace := 150 * time.Millisecond
	_, addr := startServer(t, server.Config{GrantGrace: grace})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.NewSession(a).Begin(info(100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Prepare(info(100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	bWait := make(chan error, 1)
	start := time.Now()
	go func() { bWait <- b.Wait() }()
	time.Sleep(20 * time.Millisecond)
	a.Close() // crash: no End, no resume
	select {
	case err := <-bWait:
		if err != nil {
			t.Fatalf("B wait: %v", err)
		}
		if since := time.Since(start); since < grace {
			t.Fatalf("waiter served after %v, before the %v grace window", since, grace)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("grace window never expired: waiter hung behind a dead holder")
	}
}

// TestStaleIncarnationRejected: a second client claiming a live name with a
// non-winning incarnation is rejected with the typed code, not resumed.
func TestStaleIncarnationRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{GrantGrace: time.Second})
	a, err := client.DialOptions(addr, client.Options{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Register("APP", 1); err != nil {
		t.Fatal(err)
	}
	b, err := client.DialOptions(addr, client.Options{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	err = b.Register("APP", 1)
	var re *client.ReplyError
	if !errors.As(err, &re) || re.Code != wire.CodeStaleIncarnation {
		t.Fatalf("same-incarnation register: err=%v, want code %q", err, wire.CodeStaleIncarnation)
	}
	// A legacy (incarnation-less) client colliding with a live name gets the
	// duplicate code.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Register("APP", 1)
	if !errors.As(err, &re) || re.Code != wire.CodeDuplicate {
		t.Fatalf("legacy duplicate register: err=%v, want code %q", err, wire.CodeDuplicate)
	}
}

// TestDrainAnswersPendingWaits: a graceful drain must answer parked waits
// with the retryable draining code instead of leaving them hanging.
func TestDrainAnswersPendingWaits(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	a, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.NewSession(a).Begin(info(100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Prepare(info(100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	bWait := make(chan error, 1)
	go func() { bWait <- b.Wait() }()
	time.Sleep(30 * time.Millisecond)
	srv.Drain()
	select {
	case err := <-bWait:
		var re *client.ReplyError
		if !errors.As(err, &re) || re.Code != wire.CodeDraining {
			t.Fatalf("parked wait after drain: err=%v, want code %q", err, wire.CodeDraining)
		}
		if !wire.Retryable(re.Code) {
			t.Fatal("draining must be classified retryable")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked wait hung across drain")
	}
}

// TestFailOpenSelfGrants: with no daemon at all, a fail-open client
// degrades on schedule, self-grants, and — once a daemon appears — resumes
// and reports the lapse, which surfaces in the daemon's stats.
func TestFailOpenSelfGrants(t *testing.T) {
	// Reserve an address, then free it so the client initially has nothing
	// to talk to. (Go listeners set SO_REUSEADDR, so the daemon can bind it
	// afterwards.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c, err := client.DialOptions(addr, client.Options{
		Reconnect:  true,
		FailOpen:   60 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fail-open dial must not fail on a dead address: %v", err)
	}
	defer c.Close()

	done := make(chan error, 1)
	s := client.NewSession(c)
	go func() {
		if err := c.Register("SOLO", 4); err != nil {
			done <- err
			return
		}
		if err := s.Begin(info(100)); err != nil {
			done <- err
			return
		}
		done <- s.End(100)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded phase: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fail-open client blocked forever without a daemon")
	}
	r := c.DegradedReport()
	if r.SelfGrants != 1 || r.Windows != 1 {
		t.Fatalf("degraded report %+v, want 1 self-grant in 1 window", r)
	}

	// A daemon appears on the reserved address: the client must resume and
	// report its lapse.
	srvln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind reserved address %s: %v", addr, err)
	}
	srv, err := server.New(server.Config{Policy: core.FCFSPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(srvln)
	defer srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.SelfGrants >= 1 {
			// Resumes stays 0 here: the session registered locally while
			// degraded, so this daemon-side register is its first.
			found := false
			for _, d := range st.Degraded {
				if d.Name == "SOLO" && d.SelfGrants == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("stats degraded block missing SOLO: %+v", st.Degraded)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never learned of the degraded window: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the resumed session coordinates normally again.
	if err := s.Begin(info(10)); err != nil {
		t.Fatalf("post-resume begin: %v", err)
	}
	if err := s.End(10); err != nil {
		t.Fatalf("post-resume end: %v", err)
	}
	if r := c.DegradedReport(); r.SelfGrants != 1 {
		t.Fatalf("post-resume waits must be coordinated, got %d self-grants", r.SelfGrants)
	}
}

// TestReconnectStorm: a fleet behind a reset-happy chaos proxy, every
// connection repeatedly torn mid-protocol, must still complete every phase
// with zero errors and zero self-grants (no fail-open: every wait is
// daemon-coordinated, re-acquired across resumes).
func TestReconnectStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm")
	}
	_, addr := startServer(t, server.Config{GrantGrace: 5 * time.Second})
	p, err := chaos.New(chaos.Options{Target: addr, ResetEvery: 60 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const clients, phases, steps = 8, 3, 2
	var wg sync.WaitGroup
	errs := make([]error, clients)
	waits := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.DialOptions(p.Addr(), client.Options{
				Reconnect:  true,
				BackoffMin: 5 * time.Millisecond,
				BackoffMax: 50 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			if err := c.Register(fmt.Sprintf("storm-%d", i), 2); err != nil {
				errs[i] = err
				return
			}
			s := client.NewSession(c)
			for ph := 0; ph < phases; ph++ {
				if err := s.Begin(info(1000)); err != nil {
					errs[i] = fmt.Errorf("phase %d begin: %w", ph, err)
					return
				}
				waits[i]++
				for st := 1; st < steps; st++ {
					if err := s.Yield(float64(st) * 100); err != nil {
						errs[i] = fmt.Errorf("phase %d yield: %w", ph, err)
						return
					}
					waits[i]++
				}
				if err := s.End(1000); err != nil {
					errs[i] = fmt.Errorf("phase %d end: %w", ph, err)
					return
				}
			}
			if r := c.DegradedReport(); r.SelfGrants != 0 {
				errs[i] = fmt.Errorf("self-granted %d waits without fail-open", r.SelfGrants)
			}
		}(i)
	}
	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(120 * time.Second):
		t.Fatal("reconnect storm: fleet hung")
	}
	total := 0
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
		total += waits[i]
	}
	if want := clients * phases * steps; total != want {
		t.Fatalf("fleet served %d waits, want %d", total, want)
	}
}

// TestDegradedHistObservesWindow: a closed degraded window lands in
// Options.DegradedHist exactly once, carrying the window's length.
func TestDegradedHistObservesWindow(t *testing.T) {
	// Reserve an address, then free it so the client degrades first and a
	// daemon can appear on it later (Go listeners set SO_REUSEADDR).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	h := obs.NewHistogram(obs.DefaultLatencyBuckets)
	c, err := client.DialOptions(addr, client.Options{
		Reconnect:    true,
		FailOpen:     40 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		DegradedHist: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Drive one phase against the dead address: the client degrades on the
	// fail-open schedule and self-grants its way through.
	done := make(chan error, 1)
	s := client.NewSession(c)
	go func() {
		if err := c.Register("HIST", 4); err != nil {
			done <- err
			return
		}
		if err := s.Begin(info(100)); err != nil {
			done <- err
			return
		}
		done <- s.End(100)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded phase: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fail-open client blocked forever without a daemon")
	}
	if got := h.Snapshot().Count; got != 0 {
		t.Fatalf("histogram observed %d windows while one is still open, want 0", got)
	}

	// A daemon appears: adoption closes the window, which must observe.
	srvln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind reserved address %s: %v", addr, err)
	}
	srv, err := server.New(server.Config{Policy: core.FCFSPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(srvln)
	defer srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if sn := h.Snapshot(); sn.Count >= 1 {
			if sn.Count != 1 {
				t.Fatalf("histogram observed %d windows, want 1", sn.Count)
			}
			r := c.DegradedReport()
			if sn.Sum <= 0 || sn.Sum > r.Seconds+0.001 {
				t.Fatalf("histogram sum %.3fs inconsistent with degraded report %.3fs", sn.Sum, r.Seconds)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("degraded window never observed into the histogram")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
