package client_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
)

// The happy paths are exercised end-to-end by internal/server's integration
// and stress tests; here we pin the client-side failure modes.

func TestConnectionLossFailsPendingCalls(t *testing.T) {
	srv, err := server.New(server.Config{Policy: core.FCFSPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	go srv.ListenAndServe()
	t.Cleanup(func() { srv.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(time.Millisecond)
	}

	a, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	// A holds access; B parks in Wait, then the daemon goes away: B's
	// blocked Wait and every later call must fail, not hang.
	in := core.Info{}
	in.SetFloat(core.KeyBytesTotal, 10)
	if err := client.NewSession(a).Begin(in); err != nil {
		t.Fatal(err)
	}
	if err := b.Prepare(in); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- b.Wait() }()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-waitErr:
		if err == nil || !strings.Contains(err.Error(), "connection lost") {
			t.Fatalf("blocked Wait after shutdown: %v, want connection lost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Wait hung after server shutdown")
	}
	if err := b.Inform(); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
	if b.Authorized() {
		t.Fatal("dead client still reports authorization")
	}
}
