// Package platform builds and reuses the whole simulated platform — the
// pfs + ior + mpi + core.Layer object graph on one sim.Engine — so that
// re-running a scenario (a ∆-sweep point, a solo calibration, a what-if
// evaluation) costs a Reset instead of a rebuild.
//
// The reuse contract mirrors sim.Engine.Reset: Reset retains everything
// that is expensive to construct — servers and stores with their request
// and job pools, fabric links and pooled flows, cached file objects and
// request-name strings, registered coordinators, runners with their armed
// workloads and stats backing — and clears only logical state (queues,
// in-flight transfers, protocol states, statistics, the virtual clock).
// Construction order is identical to a from-scratch build (fabric, then
// servers, then app NICs, then coordinator registrations), so link and
// registration IDs — and therefore every float accumulation order in the
// solvers — match a fresh platform exactly: a reused platform's results
// are bit-identical to a fresh one's.
package platform

import (
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/ior"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// AppSpec describes one application of a scenario.
type AppSpec struct {
	Name  string
	Procs int
	Nodes int // 0 = one proc per node
	W     ior.Workload
	Gran  ior.Granularity
}

// Spec is the comparable description of a platform: the machine constants
// plus the applications. Spec.FS.Fabric must be nil; explicit-fabric mode
// is requested via TrueNetwork and the fabric is built (and reset) by the
// platform itself.
type Spec struct {
	FS            pfs.Config
	TrueNetwork   bool
	ProcNIC       float64
	CommBWPerProc float64
	CommAlpha     float64
	CoordLatency  float64
	Apps          []AppSpec
}

// Equal reports whether two specs describe the same platform.
func (s Spec) Equal(o Spec) bool {
	if s.FS != o.FS || s.TrueNetwork != o.TrueNetwork ||
		s.ProcNIC != o.ProcNIC || s.CommBWPerProc != o.CommBWPerProc ||
		s.CommAlpha != o.CommAlpha || s.CoordLatency != o.CoordLatency ||
		len(s.Apps) != len(o.Apps) {
		return false
	}
	for i := range s.Apps {
		if s.Apps[i] != o.Apps[i] {
			return false
		}
	}
	return true
}

// Model returns the coordination-layer performance model for the spec.
func (s Spec) Model() *core.PerfModel {
	return &core.PerfModel{
		FSBandwidth: float64(s.FS.Servers) * s.FS.ServerBW,
		ProcNIC:     s.ProcNIC,
	}
}

// Platform is a built simulation platform, reusable across runs.
type Platform struct {
	Eng     *sim.Engine
	Fab     *fabric.Fabric // nil without TrueNetwork
	FS      *pfs.System
	MPI     *mpi.Platform
	Apps    []*mpi.App
	Layer   *core.Layer // nil for uncoordinated platforms
	Runners []*ior.Runner
}

// New builds a platform on the engine, which must be freshly reset (or
// new). newPolicy, when non-nil, is called once to build the coordination
// policy; nil builds an uncoordinated platform.
func New(eng *sim.Engine, spec Spec, newPolicy func(*core.PerfModel) core.Policy) *Platform {
	if spec.FS.Fabric != nil {
		panic("platform: Spec.FS.Fabric must be nil; set TrueNetwork")
	}
	fsCfg := spec.FS
	p := &Platform{Eng: eng}
	if spec.TrueNetwork {
		p.Fab = fabric.New(eng)
		fsCfg.Fabric = p.Fab
	}
	p.FS = pfs.New(eng, fsCfg)
	p.MPI = &mpi.Platform{
		Eng:           eng,
		FS:            p.FS,
		ProcNIC:       spec.ProcNIC,
		CommBWPerProc: spec.CommBWPerProc,
		CommAlpha:     spec.CommAlpha,
	}
	if newPolicy != nil {
		p.Layer = core.NewLayer(eng, newPolicy(spec.Model()), spec.CoordLatency)
	}
	for _, as := range spec.Apps {
		app := p.MPI.NewApp(as.Name, as.Procs, as.Nodes)
		var sess *core.Session
		if p.Layer != nil {
			sess = core.NewSession(p.Layer.Register(as.Name, as.Procs))
		}
		p.Apps = append(p.Apps, app)
		p.Runners = append(p.Runners, ior.NewRunner(app, as.W, sess, as.Gran))
	}
	return p
}

// Reset re-arms the platform for another run: engine clock and event pools,
// fabric flows, file-system queues and stores, coordination protocol state
// and runner statistics all return to their just-built state; see the
// package comment for what is retained. Reset panics (via the engine) if a
// previous run is still in flight.
func (p *Platform) Reset() {
	p.Eng.Reset()
	if p.Fab != nil {
		p.Fab.Reset()
	}
	p.FS.Reset()
	p.MPI.Reset()
	if p.Layer != nil {
		p.Layer.Reset()
	}
	for _, r := range p.Runners {
		r.Reset()
	}
}

// Run resets the platform and executes one run with each app's I/O phase
// starting at the given absolute time; rec, when non-nil, records
// compute/wait/comm/write intervals (it must not be shared between
// concurrent platforms). It returns the makespan (the final clock value).
func (p *Platform) Run(starts []float64, rec *timeline.Recorder) float64 {
	if len(starts) != len(p.Runners) {
		panic("platform: starts length mismatch")
	}
	p.Reset()
	for i, r := range p.Runners {
		r.Timeline = rec
		r.Start(starts[i])
	}
	return p.Eng.Run()
}

// Pool builds platforms on one shared engine and caches them by spec, so a
// sweep worker acquires its platform once and every later Acquire with an
// equal spec is a Reset, not a rebuild. Distinct specs (a solo calibration
// next to the full scenario, say) coexist as separate entries; only one
// platform of a pool may run at a time, since they share the engine.
//
// The pool distinguishes coordinated from uncoordinated entries, but it
// cannot compare policy constructors: callers that sweep different policy
// families must use one Pool per family (as the delta sweep workers do).
type Pool struct {
	eng     *sim.Engine
	entries []poolEntry
}

type poolEntry struct {
	spec        Spec
	coordinated bool
	plat        *Platform
}

// NewPool returns an empty pool with its own engine.
func NewPool() *Pool { return &Pool{eng: sim.NewEngine()} }

// Engine returns the pool's shared engine.
func (p *Pool) Engine() *sim.Engine { return p.eng }

// Acquire returns a platform for the spec, reusing the cached object graph
// when an entry with an equal spec and the same coordination mode exists,
// and building one otherwise. Platform.Run resets before starting, so the
// returned platform is ready to use either way.
func (p *Pool) Acquire(spec Spec, newPolicy func(*core.PerfModel) core.Policy) *Platform {
	coordinated := newPolicy != nil
	for i := range p.entries {
		e := &p.entries[i]
		if e.coordinated == coordinated && e.spec.Equal(spec) {
			return e.plat
		}
	}
	p.eng.Reset()
	plat := New(p.eng, spec, newPolicy)
	apps := append([]AppSpec(nil), spec.Apps...)
	spec.Apps = apps // own the slice: callers may mutate theirs
	p.entries = append(p.entries, poolEntry{spec: spec, coordinated: coordinated, plat: plat})
	return plat
}
