package platform

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// testSpec is a small but non-trivial scenario: striping across 4 servers,
// two 32-proc apps, per-round granularity.
func testSpec(trueNet bool) Spec {
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 8 << 20, BlocksPerProc: 1, ReqBytes: 2 << 20}
	return Spec{
		FS:            pfs.Config{Servers: 4, StripeBytes: 1 << 20, ServerBW: 64 << 20},
		TrueNetwork:   trueNet,
		ProcNIC:       4 << 20,
		CommBWPerProc: 4 << 20,
		CoordLatency:  1e-4,
		Apps: []AppSpec{
			{Name: "A", Procs: 32, Nodes: 8, W: w, Gran: ior.PerRound},
			{Name: "B", Procs: 32, Nodes: 8, W: w, Gran: ior.PerRound},
		},
	}
}

func fcfs(*core.PerfModel) core.Policy { return core.FCFSPolicy{} }

// snapshot captures everything observable about one run.
type snapshot struct {
	makespan  float64
	io        [2]float64
	phases    [2]int
	decisions []core.DecisionRecord
}

func runSnapshot(p *Platform, starts []float64) snapshot {
	s := snapshot{makespan: p.Run(starts, nil)}
	for i, r := range p.Runners {
		s.io[i] = r.Stats.TotalIOTime()
		s.phases[i] = len(r.Stats.Phases)
	}
	if p.Layer != nil {
		s.decisions = p.Layer.Log()
	}
	return s
}

func sameSnapshot(a, b snapshot) bool {
	if a.makespan != b.makespan || a.io != b.io || a.phases != b.phases ||
		len(a.decisions) != len(b.decisions) {
		return false
	}
	for i := range a.decisions {
		da, db := a.decisions[i], b.decisions[i]
		if da.Time != db.Time || da.Policy != db.Policy || da.Reason != db.Reason ||
			len(da.Allowed) != len(db.Allowed) {
			return false
		}
		for j := range da.Allowed {
			if da.Allowed[j] != db.Allowed[j] {
				return false
			}
		}
	}
	return true
}

// TestReusedPlatformMatchesFresh is the platform-reuse contract: a reused
// (reset) platform must reproduce a fresh platform's results bit-for-bit,
// under both contention models and both with and without a coordination
// layer — including the decision log, which is rebuilt from scratch.
func TestReusedPlatformMatchesFresh(t *testing.T) {
	for _, trueNet := range []bool{false, true} {
		for _, coordinated := range []bool{false, true} {
			spec := testSpec(trueNet)
			var policy func(*core.PerfModel) core.Policy
			if coordinated {
				policy = fcfs
			}
			starts := []float64{0, 0.7}

			fresh := runSnapshot(New(sim.NewEngine(), spec, policy), starts)
			reused := New(sim.NewEngine(), spec, policy)
			for i := 0; i < 3; i++ {
				if got := runSnapshot(reused, starts); !sameSnapshot(fresh, got) {
					t.Fatalf("trueNet=%v coordinated=%v: reused run %d diverged: %+v vs %+v",
						trueNet, coordinated, i, fresh, got)
				}
			}
		}
	}
}

// TestDecisionLogSurvivesReuse: the decision log handed out by Layer.Log
// must stay intact when the platform is reset and re-run (fresh backing per
// run, no aliasing).
func TestDecisionLogSurvivesReuse(t *testing.T) {
	p := New(sim.NewEngine(), testSpec(false), fcfs)
	starts := []float64{0, 0.7}
	p.Run(starts, nil)
	log1 := p.Layer.Log()
	want := make([]core.DecisionRecord, len(log1))
	copy(want, log1)

	p.Run([]float64{0, 2.5}, nil) // different offsets: different decisions
	for i := range want {
		if want[i].Time != log1[i].Time || want[i].Reason != log1[i].Reason {
			t.Fatalf("decision log aliased by the next run at %d", i)
		}
	}
}

// TestPoolReusesAndDistinguishes: equal specs share one platform; different
// specs (here: the solo calibration next to the full scenario, and a
// coordinated next to an uncoordinated entry) get their own.
func TestPoolReusesAndDistinguishes(t *testing.T) {
	pool := NewPool()
	spec := testSpec(false)

	p1 := pool.Acquire(spec, nil)
	p2 := pool.Acquire(spec, nil)
	if p1 != p2 {
		t.Fatal("equal specs should reuse one platform")
	}

	solo := spec
	solo.Apps = spec.Apps[:1]
	p3 := pool.Acquire(solo, nil)
	if p3 == p1 {
		t.Fatal("solo spec must not reuse the two-app platform")
	}
	if p4 := pool.Acquire(solo, nil); p4 != p3 {
		t.Fatal("solo spec should reuse the solo platform")
	}

	p5 := pool.Acquire(spec, fcfs)
	if p5 == p1 {
		t.Fatal("coordinated spec must not reuse the uncoordinated platform")
	}
	if p5.Layer == nil || p1.Layer != nil {
		t.Fatal("coordination layers wired wrong")
	}

	// Interleaving entries on the shared engine must not corrupt results.
	a := runSnapshot(p1, []float64{0, 1})
	runSnapshot(p3, []float64{0})
	runSnapshot(p5, []float64{0, 1})
	if b := runSnapshot(p1, []float64{0, 1}); !sameSnapshot(a, b) {
		t.Fatalf("interleaved pool entries diverged: %+v vs %+v", a, b)
	}
}

// TestPoolOwnsSpec: mutating the caller's Apps slice after Acquire must not
// corrupt the pool's cache key.
func TestPoolOwnsSpec(t *testing.T) {
	pool := NewPool()
	spec := testSpec(false)
	apps := spec.Apps
	p1 := pool.Acquire(spec, nil)
	apps[0].Procs = 7 // caller scribbles over its slice
	spec.Apps = apps
	if p2 := pool.Acquire(spec, nil); p2 == p1 {
		t.Fatal("mutated spec must rebuild, not reuse")
	}
}

// TestSteadyStateRunAllocFree locks in the tentpole property: the 2nd+ run
// of a scenario on a reused platform allocates nothing, under both the
// default (fluid) and the explicit-fabric contention model. This is the
// per-point cost of a ∆-sweep after its first point.
func TestSteadyStateRunAllocFree(t *testing.T) {
	for _, trueNet := range []bool{false, true} {
		pl := NewPool().Acquire(testSpec(trueNet), nil)
		starts := []float64{0, 1}
		pl.Run(starts, nil) // first run pays the pools
		pl.Run(starts, nil)
		allocs := testing.AllocsPerRun(50, func() { pl.Run(starts, nil) })
		if allocs != 0 {
			t.Fatalf("trueNet=%v: steady-state run allocates %.1f objects, want 0", trueNet, allocs)
		}
	}
}

// TestSpecFabricRejected: explicit fabrics are built by the platform, never
// passed in.
func TestSpecFabricRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Spec with preset Fabric")
		}
	}()
	spec := testSpec(true)
	spec.FS.Fabric = New(sim.NewEngine(), testSpec(true), nil).Fab
	_ = New(sim.NewEngine(), spec, nil)
}
