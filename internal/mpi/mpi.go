// Package mpi provides a minimal MPI-like application model for the
// simulator: applications with a process count and node layout, an
// alpha-beta cost model for the collective communication used by two-phase
// I/O, and injection-bandwidth accounting toward the file system.
//
// The paper runs its benchmark instances as MPI programs sharing
// MPI_COMM_WORLD so coordinators can talk to each other; here applications
// share a sim.Engine and the coordination layer models the message latency
// explicitly.
package mpi

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Platform ties together the machine-level constants shared by all
// applications of an experiment.
type Platform struct {
	Eng *sim.Engine
	FS  *pfs.System

	// ProcNIC is the injection bandwidth one process can push toward the
	// file system (bytes/s). An application's aggregate injection limit is
	// Procs * ProcNIC; this is what makes small applications unable to
	// saturate the file system alone (Figs. 4, 6, 7b).
	ProcNIC float64

	// CommBWPerProc is the per-process bandwidth available for
	// application-internal collective communication (bytes/s). The
	// interconnect is private to each application (a BG/P partition or a
	// dedicated set of cluster nodes), so comm phases do not contend with
	// the other application's I/O — the effect Fig. 8b measures.
	CommBWPerProc float64

	// CommAlpha is the per-hop latency of the interconnect (seconds),
	// used by the log2(P) terms of the collective cost model.
	CommAlpha float64
}

// Reset re-arms the platform for another simulation run. The reuse
// contract: everything in this package is immutable after construction —
// Platform carries machine constants, App carries a job's shape and its
// fabric NIC link (whose transient flow state lives in the fabric, reset
// there) — so Reset only revalidates the invariants. It exists so the
// platform-level reset sequence (engine, fabric, pfs, mpi, layer, runners)
// is explicit at every layer.
func (pl *Platform) Reset() {
	if err := pl.Validate(); err != nil {
		panic(err)
	}
}

// Validate checks platform invariants.
func (pl *Platform) Validate() error {
	if pl.Eng == nil || pl.FS == nil {
		return fmt.Errorf("mpi: platform needs an engine and a file system")
	}
	if pl.ProcNIC <= 0 {
		return fmt.Errorf("mpi: ProcNIC must be positive, got %v", pl.ProcNIC)
	}
	if pl.CommBWPerProc < 0 || pl.CommAlpha < 0 {
		return fmt.Errorf("mpi: negative comm parameters")
	}
	return nil
}

// App is a running application: a job occupying Procs cores on Nodes nodes.
type App struct {
	Plat  *Platform
	Name  string
	Procs int
	Nodes int

	// nic is the app's aggregate injection link when the platform's file
	// system runs in explicit-fabric mode (nil otherwise).
	nic *fabric.Link
}

// NewApp registers an application on the platform. Nodes defaults to Procs
// when zero (one process per node).
func (pl *Platform) NewApp(name string, procs, nodes int) *App {
	if err := pl.Validate(); err != nil {
		panic(err)
	}
	if procs <= 0 {
		panic(fmt.Sprintf("mpi: app %q needs at least one process", name))
	}
	if nodes <= 0 {
		nodes = procs
	}
	a := &App{Plat: pl, Name: name, Procs: procs, Nodes: nodes}
	if fb := pl.FS.Config().Fabric; fb != nil {
		a.nic = fb.NewLink("nic:"+name, float64(procs)*pl.ProcNIC)
	}
	return a
}

// NIC returns the app's aggregate injection link in explicit-fabric mode,
// nil otherwise.
func (a *App) NIC() *fabric.Link { return a.nic }

// InjectionBW is the application's aggregate bandwidth limit toward the
// file system when all processes write.
func (a *App) InjectionBW() float64 { return float64(a.Procs) * a.Plat.ProcNIC }

// AloneBW estimates the application's solo write bandwidth: its injection
// limit or the file system's aggregate bandwidth, whichever binds.
func (a *App) AloneBW() float64 {
	return math.Min(a.InjectionBW(), a.Plat.FS.AggregateBW())
}

// AlltoallTime is the alpha-beta cost of redistributing totalBytes among the
// application's processes (the shuffle phase of two-phase I/O): a log2(P)
// latency term plus the bandwidth term at aggregate comm bandwidth.
func (a *App) AlltoallTime(totalBytes float64) float64 {
	if totalBytes <= 0 {
		return 0
	}
	lat := a.Plat.CommAlpha * log2ceil(a.Procs)
	bw := float64(a.Procs) * a.Plat.CommBWPerProc
	if bw <= 0 {
		return lat
	}
	return lat + totalBytes/bw
}

// BarrierTime is the alpha-beta cost of a barrier across the application.
func (a *App) BarrierTime() float64 {
	return a.Plat.CommAlpha * log2ceil(a.Procs)
}

func log2ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}
