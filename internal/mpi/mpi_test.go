package mpi

import (
	"math"
	"testing"

	"repro/internal/pfs"
	"repro/internal/sim"
)

func testPlatform() *Platform {
	eng := sim.NewEngine()
	fs := pfs.New(eng, pfs.Config{Servers: 4, StripeBytes: 1 << 20, ServerBW: 100 << 20})
	return &Platform{
		Eng:           eng,
		FS:            fs,
		ProcNIC:       3 << 20,
		CommBWPerProc: 1 << 20,
		CommAlpha:     1e-6,
	}
}

func TestNewAppDefaults(t *testing.T) {
	pl := testPlatform()
	a := pl.NewApp("a", 64, 0)
	if a.Nodes != 64 {
		t.Fatalf("nodes default = %d, want procs", a.Nodes)
	}
	b := pl.NewApp("b", 64, 16)
	if b.Nodes != 16 {
		t.Fatalf("nodes = %d", b.Nodes)
	}
}

func TestInjectionAndAloneBW(t *testing.T) {
	pl := testPlatform()
	small := pl.NewApp("small", 8, 0)
	if got := small.InjectionBW(); got != 8*3<<20 {
		t.Fatalf("injection = %v", got)
	}
	// Small app is injection limited.
	if got := small.AloneBW(); got != small.InjectionBW() {
		t.Fatalf("alone = %v, want injection-limited", got)
	}
	// Big app is FS limited.
	big := pl.NewApp("big", 4096, 0)
	if got := big.AloneBW(); got != pl.FS.AggregateBW() {
		t.Fatalf("alone = %v, want FS aggregate", got)
	}
}

func TestAlltoallTime(t *testing.T) {
	pl := testPlatform()
	a := pl.NewApp("a", 256, 64)
	bytes := 256.0 * float64(1<<20)
	got := a.AlltoallTime(bytes)
	wantBW := bytes / (256 * float64(1<<20))
	wantLat := 1e-6 * 8 // log2(256) = 8
	if math.Abs(got-(wantBW+wantLat)) > 1e-12 {
		t.Fatalf("alltoall = %v, want %v", got, wantBW+wantLat)
	}
	if a.AlltoallTime(0) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}

func TestAlltoallScalesWithProcs(t *testing.T) {
	pl := testPlatform()
	small := pl.NewApp("s", 64, 0)
	big := pl.NewApp("b", 1024, 0)
	bytes := float64(1 << 30)
	if small.AlltoallTime(bytes) <= big.AlltoallTime(bytes) {
		t.Fatal("more procs should shuffle the same bytes faster")
	}
}

func TestBarrierTime(t *testing.T) {
	pl := testPlatform()
	one := pl.NewApp("one", 1, 0)
	if one.BarrierTime() != 0 {
		t.Fatal("single-proc barrier should be free")
	}
	big := pl.NewApp("big", 1024, 0)
	if got := big.BarrierTime(); math.Abs(got-10e-6) > 1e-12 {
		t.Fatalf("barrier = %v, want 10us", got)
	}
}

func TestValidation(t *testing.T) {
	pl := testPlatform()
	pl.ProcNIC = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad platform")
		}
	}()
	pl.NewApp("x", 1, 0)
}

func TestZeroProcsPanics(t *testing.T) {
	pl := testPlatform()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero procs")
		}
	}()
	pl.NewApp("x", 0, 0)
}
