// Package fabric models a network fabric as a set of capacity-limited links
// and flows that traverse several links at once, with rates assigned by
// global max-min fairness (progressive filling). It generalizes the
// single-resource model of internal/fluid: a flow from a client NIC through
// a switch to a storage server is limited by its tightest link, and freed
// capacity is redistributed among the remaining flows.
//
// The paper's platforms have exactly this structure — compute-node NICs, a
// shared InfiniBand switch or BG/P tree, and storage servers — and the
// simulator's default single-resource approximation (per-request static
// rate caps) is validated against this model in the ablation benchmarks.
//
// The solver is the hot path of every TrueNetwork simulation, so it is
// index-based and allocation-free in steady state: links carry dense integer
// IDs indexing reusable per-link scratch arrays, memberships are slices with
// swap-delete (no maps), and all iteration is in slice order, which makes
// floating-point accumulation order — and therefore every simulated rate —
// reproducible bit-for-bit across runs.
package fabric

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Link is one capacity-limited element of the fabric. Links have dense IDs
// (creation order) that index the solver's per-link scratch arrays.
type Link struct {
	fab      *Fabric
	id       int
	name     string
	capacity float64
	flows    []linkRef // flows currently crossing this link
}

// linkRef is one entry of a link's membership slice: the flow plus the index
// of this link within the flow's own path, so a swap-delete on either side
// can repair the other side's back-index in O(1).
type linkRef struct {
	f    *Flow
	slot int // index of this link in f.links / f.pos
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link capacity.
func (l *Link) Capacity() float64 { return l.capacity }

// Flows returns the number of flows currently crossing the link.
func (l *Link) Flows() int { return len(l.flows) }

// SetCapacity changes the link capacity and reassigns all rates.
func (l *Link) SetCapacity(c float64) {
	if c < 0 || math.IsNaN(c) {
		panic("fabric: negative or NaN capacity")
	}
	l.fab.advance()
	l.capacity = c
	l.fab.reassign()
}

// Flow is a transfer crossing one or more links.
type Flow struct {
	fab       *Fabric
	id        uint64 // creation sequence; total-order tiebreak
	idx       int    // index in fab.flows; -1 once done or cancelled
	name      string
	links     []*Link
	pos       []int // pos[k] = index of this flow in links[k].flows
	weight    float64
	remaining float64
	total     float64
	rate      float64
	done      bool
	cancelled bool
	onDone    func()
}

// Name returns the flow name.
func (f *Flow) Name() string { return f.name }

// Rate returns the currently assigned rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports completion.
func (f *Flow) Done() bool { return f.done }

// Remaining returns the bytes left, integrated to the current time.
func (f *Flow) Remaining() float64 {
	if f.done || f.cancelled {
		return 0
	}
	f.fab.advance()
	return f.remaining
}

// Fabric owns the links and flows and assigns max-min fair rates.
type Fabric struct {
	eng        *sim.Engine
	links      []*Link
	flows      []*Flow // active flows, dense, swap-delete on removal
	nextID     uint64
	lastUpdate float64
	completion *sim.Timer

	// Flow recycling. Completed and cancelled flows retire (bounded) but are
	// NOT reused within the same run: a caller may legitimately hold a
	// finished flow's handle and read Done/Remaining. Reset moves retired
	// flows to the free list, so a reused fabric replays a run without
	// re-paying its flow allocations.
	flowFree    []*Flow
	flowRetired []*Flow

	// Solver scratch, reused across reassign calls so the steady state
	// performs no allocations. Per-link arrays are indexed by Link.id;
	// frozen is indexed by Flow.idx.
	linkRemaining []float64
	linkActive    []int
	linkWeight    []float64
	frozen        []bool
	finished      []*Flow
}

// New creates an empty fabric.
func New(eng *sim.Engine) *Fabric {
	fb := &Fabric{eng: eng, lastUpdate: eng.Now()}
	fb.completion = eng.NewTimer(fb.onCompletion)
	return fb
}

// NewLink adds a link with the given capacity.
func (fb *Fabric) NewLink(name string, capacity float64) *Link {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fabric: negative or NaN capacity %v", capacity))
	}
	l := &Link{fab: fb, id: len(fb.links), name: name, capacity: capacity}
	fb.links = append(fb.links, l)
	fb.linkRemaining = append(fb.linkRemaining, 0)
	fb.linkActive = append(fb.linkActive, 0)
	fb.linkWeight = append(fb.linkWeight, 0)
	return l
}

// Start begins a transfer of `bytes` across the given links (all must
// belong to this fabric). Weight scales the flow's share on every link it
// crosses. onDone runs in scheduler context at completion.
//
// The links slice is copied into flow-owned storage, so callers may reuse
// their own scratch slice across Start calls.
func (fb *Fabric) Start(name string, bytes, weight float64, links []*Link, onDone func()) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("fabric: bad byte count %v", bytes))
	}
	if !(weight > 0) { // also rejects NaN
		panic("fabric: weight must be positive")
	}
	if len(links) == 0 {
		panic("fabric: flow must cross at least one link")
	}
	f := fb.getFlow()
	f.fab, f.id, f.name, f.weight = fb, fb.nextID, name, weight
	f.remaining, f.total, f.onDone = bytes, bytes, onDone
	f.rate, f.done, f.cancelled = 0, false, false
	f.links = append(f.links[:0], links...)
	f.pos = f.pos[:0]
	for range links {
		f.pos = append(f.pos, 0)
	}
	fb.nextID++
	fb.advance()
	f.idx = len(fb.flows)
	fb.flows = append(fb.flows, f)
	for k, l := range f.links {
		if l.fab != fb {
			panic("fabric: link belongs to a different fabric")
		}
		f.pos[k] = len(l.flows)
		l.flows = append(l.flows, linkRef{f: f, slot: k})
	}
	fb.reassign()
	return f
}

// getFlow pops a pooled flow or allocates a fresh one.
func (fb *Fabric) getFlow() *Flow {
	if n := len(fb.flowFree); n > 0 {
		f := fb.flowFree[n-1]
		fb.flowFree[n-1] = nil
		fb.flowFree = fb.flowFree[:n-1]
		return f
	}
	return &Flow{}
}

// maxRetired bounds the retired-flow list: a run that churns through more
// flows than this simply lets the excess be garbage collected, trading a
// little steady-state allocation for a bounded pool.
const maxRetired = 4096

// retire parks a finished or cancelled flow for recycling at the next Reset.
func (fb *Fabric) retire(f *Flow) {
	if len(fb.flowRetired) < maxRetired {
		fb.flowRetired = append(fb.flowRetired, f)
	}
}

// Cancel removes an unfinished flow; its onDone never runs.
func (f *Flow) Cancel() {
	if f.done || f.cancelled {
		return
	}
	f.fab.advance()
	f.cancelled = true
	f.fab.remove(f)
	f.onDone = nil
	f.fab.retire(f)
	f.fab.reassign()
}

// remove unlinks f from the active set and every link it crosses, repairing
// the swapped-in entries' back-indices.
func (fb *Fabric) remove(f *Flow) {
	for k, l := range f.links {
		p := f.pos[k]
		last := len(l.flows) - 1
		if p != last {
			moved := l.flows[last]
			l.flows[p] = moved
			moved.f.pos[moved.slot] = p
		}
		l.flows[last] = linkRef{}
		l.flows = l.flows[:last]
	}
	last := len(fb.flows) - 1
	if f.idx != last {
		moved := fb.flows[last]
		fb.flows[f.idx] = moved
		moved.idx = f.idx
	}
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	f.idx = -1
}

// advance integrates progress of the active flows to the current time.
func (fb *Fabric) advance() {
	now := fb.eng.Now()
	dt := now - fb.lastUpdate
	if dt > 0 {
		for _, f := range fb.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	fb.lastUpdate = now
}

func (f *Flow) eps() float64 {
	e := f.total * 1e-9
	if e < 1e-6 {
		e = 1e-6
	}
	return e
}

// reassign completes finished flows, recomputes max-min rates and schedules
// the next completion. All simultaneous completions are collected and
// removed in one batch, so N flows finishing at the same instant cost one
// progressive fill, not N.
func (fb *Fabric) reassign() {
	finished := fb.finished[:0]
	for _, f := range fb.flows {
		if f.remaining <= f.eps() {
			f.remaining = 0
			f.done = true
			f.rate = 0
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		fb.remove(f)
	}

	fb.progressiveFill()

	fb.completion.Cancel()
	next := math.Inf(1)
	for _, f := range fb.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < next {
				next = t
			}
		}
	}
	if !math.IsInf(next, 1) {
		fb.completion.Schedule(next)
	}

	// Deterministic callback order: sort the batch by the documented total
	// order before dispatch, so completion side effects replay identically.
	sortFlows(finished)
	for _, f := range finished {
		if f.onDone != nil {
			fb.eng.Post(f.onDone)
		}
	}
	// Retain the (now drained) batch buffer, dropping the flow pointers so
	// completed flows do not leak through the scratch; the flows themselves
	// retire for recycling at the next Reset.
	for i, f := range finished {
		f.onDone = nil
		fb.retire(f)
		finished[i] = nil
	}
	fb.finished = finished[:0]
}

// Reset returns the fabric to a pristine state on a freshly reset engine:
// no active flows, flow IDs restarted, progress clock re-anchored at the
// engine's current time. Links — and any capacity changes made to them —
// survive, as do the solver scratch arrays and the retired flows, which move
// to the free list so a reused fabric replays a run allocation-free.
//
// Call Reset only after sim.Engine.Reset (or with no pending completion
// event); flow handles from before the reset must not be used afterwards,
// as their structs are recycled.
func (fb *Fabric) Reset() {
	// A run stopped mid-flight leaves active flows; retire them too. Link
	// membership lists are wiped wholesale below.
	for _, f := range fb.flows {
		f.idx = -1
		f.onDone = nil
		fb.retire(f)
	}
	for _, l := range fb.links {
		for i := range l.flows {
			l.flows[i] = linkRef{}
		}
		l.flows = l.flows[:0]
	}
	for i := range fb.flows {
		fb.flows[i] = nil
	}
	fb.flows = fb.flows[:0]
	fb.flowFree = append(fb.flowFree, fb.flowRetired...)
	for i := range fb.flowRetired {
		fb.flowRetired[i] = nil
	}
	fb.flowRetired = fb.flowRetired[:0]
	fb.nextID = 0
	fb.lastUpdate = fb.eng.Now()
	fb.completion.Cancel()
}

func (fb *Fabric) onCompletion() {
	fb.advance()
	fb.reassign()
}

// progressiveFill implements weighted global max-min fairness: rates grow
// proportionally to weights until a link saturates; flows crossing the
// saturated link freeze, remaining capacity keeps filling the others.
//
// The fill loop runs entirely on the fabric's scratch arrays and iterates
// links and flows in dense ID / slice order, so it allocates nothing and
// accumulates floats in a reproducible order. Complexity is O(B · (F·L̄ +
// L)) for B saturation rounds (bottleneck links), F active flows crossing
// L̄ links each, and L links total.
func (fb *Fabric) progressiveFill() {
	remaining := fb.linkRemaining
	active := fb.linkActive
	weight := fb.linkWeight
	for i, l := range fb.links {
		remaining[i] = l.capacity
		active[i] = 0
		weight[i] = 0
	}
	if cap(fb.frozen) < len(fb.flows) {
		fb.frozen = make([]bool, len(fb.flows))
	}
	frozen := fb.frozen[:len(fb.flows)]
	for i, f := range fb.flows {
		frozen[i] = false
		f.rate = 0
		for _, l := range f.links {
			active[l.id]++
			weight[l.id] += f.weight
		}
	}
	unfrozen := len(fb.flows)

	for unfrozen > 0 {
		// Find the link that saturates first: the one minimizing
		// remaining / weight-of-active-flows.
		level := math.Inf(1)
		tight := -1
		for i := range fb.links {
			if active[i] == 0 || weight[i] <= 0 {
				continue
			}
			lv := remaining[i] / weight[i]
			if lv < level {
				level = lv
				tight = i
			}
		}
		if tight < 0 || math.IsInf(level, 1) {
			// No constraining link: remaining flows are unbounded. Give
			// them infinite rate (they complete immediately).
			for i, f := range fb.flows {
				if !frozen[i] {
					f.rate = math.Inf(1)
				}
			}
			return
		}
		// Raise every unfrozen flow's rate by level*weight; freeze the
		// flows on the tight link.
		for i, f := range fb.flows {
			if frozen[i] {
				continue
			}
			inc := level * f.weight
			f.rate += inc
			for _, l := range f.links {
				remaining[l.id] -= inc
				if remaining[l.id] < 0 {
					remaining[l.id] = 0
				}
			}
		}
		for _, ref := range fb.links[tight].flows {
			f := ref.f
			if frozen[f.idx] {
				continue
			}
			frozen[f.idx] = true
			unfrozen--
			for _, l := range f.links {
				active[l.id]--
				weight[l.id] -= f.weight
			}
		}
	}
}

// sortFlows orders a completion batch by (name, total, id). The id — the
// fabric-wide creation sequence number — makes the order total: two flows
// never share an id, so batches with duplicate names and sizes still
// dispatch their callbacks in a single well-defined (creation) order.
func sortFlows(fs []*Flow) {
	// Insertion sort; n is tiny.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0; j-- {
			a, b := fs[j-1], fs[j]
			if a.name < b.name ||
				(a.name == b.name && (a.total < b.total ||
					(a.total == b.total && a.id < b.id))) {
				break
			}
			fs[j-1], fs[j] = fs[j], fs[j-1]
		}
	}
}
