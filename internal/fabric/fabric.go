// Package fabric models a network fabric as a set of capacity-limited links
// and flows that traverse several links at once, with rates assigned by
// global max-min fairness (progressive filling). It generalizes the
// single-resource model of internal/fluid: a flow from a client NIC through
// a switch to a storage server is limited by its tightest link, and freed
// capacity is redistributed among the remaining flows.
//
// The paper's platforms have exactly this structure — compute-node NICs, a
// shared InfiniBand switch or BG/P tree, and storage servers — and the
// simulator's default single-resource approximation (per-request static
// rate caps) is validated against this model in the ablation benchmarks.
package fabric

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Link is one capacity-limited element of the fabric.
type Link struct {
	fab      *Fabric
	name     string
	capacity float64
	flows    map[*Flow]struct{}
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link capacity.
func (l *Link) Capacity() float64 { return l.capacity }

// SetCapacity changes the link capacity and reassigns all rates.
func (l *Link) SetCapacity(c float64) {
	if c < 0 {
		panic("fabric: negative capacity")
	}
	l.fab.advance()
	l.capacity = c
	l.fab.reassign()
}

// Flow is a transfer crossing one or more links.
type Flow struct {
	fab       *Fabric
	name      string
	links     []*Link
	weight    float64
	remaining float64
	total     float64
	rate      float64
	done      bool
	cancelled bool
	onDone    func()
}

// Name returns the flow name.
func (f *Flow) Name() string { return f.name }

// Rate returns the currently assigned rate.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports completion.
func (f *Flow) Done() bool { return f.done }

// Remaining returns the bytes left, integrated to the current time.
func (f *Flow) Remaining() float64 {
	if f.done || f.cancelled {
		return 0
	}
	f.fab.advance()
	return f.remaining
}

// Fabric owns the links and flows and assigns max-min fair rates.
type Fabric struct {
	eng        *sim.Engine
	links      []*Link
	flows      map[*Flow]struct{}
	lastUpdate float64
	completion *sim.Event
}

// New creates an empty fabric.
func New(eng *sim.Engine) *Fabric {
	return &Fabric{eng: eng, flows: make(map[*Flow]struct{}), lastUpdate: eng.Now()}
}

// NewLink adds a link with the given capacity.
func (fb *Fabric) NewLink(name string, capacity float64) *Link {
	if capacity < 0 {
		panic(fmt.Sprintf("fabric: negative capacity %v", capacity))
	}
	l := &Link{fab: fb, name: name, capacity: capacity, flows: make(map[*Flow]struct{})}
	fb.links = append(fb.links, l)
	return l
}

// Start begins a transfer of `bytes` across the given links (all must
// belong to this fabric). Weight scales the flow's share on every link it
// crosses. onDone runs in scheduler context at completion.
func (fb *Fabric) Start(name string, bytes, weight float64, links []*Link, onDone func()) *Flow {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("fabric: bad byte count %v", bytes))
	}
	if weight <= 0 {
		panic("fabric: weight must be positive")
	}
	if len(links) == 0 {
		panic("fabric: flow must cross at least one link")
	}
	f := &Flow{
		fab: fb, name: name, links: links, weight: weight,
		remaining: bytes, total: bytes, onDone: onDone,
	}
	fb.advance()
	fb.flows[f] = struct{}{}
	for _, l := range links {
		if l.fab != fb {
			panic("fabric: link belongs to a different fabric")
		}
		l.flows[f] = struct{}{}
	}
	fb.reassign()
	return f
}

// Cancel removes an unfinished flow; its onDone never runs.
func (f *Flow) Cancel() {
	if f.done || f.cancelled {
		return
	}
	f.fab.advance()
	f.cancelled = true
	f.fab.remove(f)
	f.fab.reassign()
}

func (fb *Fabric) remove(f *Flow) {
	delete(fb.flows, f)
	for _, l := range f.links {
		delete(l.flows, f)
	}
}

func (fb *Fabric) advance() {
	now := fb.eng.Now()
	dt := now - fb.lastUpdate
	if dt > 0 {
		for f := range fb.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	fb.lastUpdate = now
}

func (f *Flow) eps() float64 {
	e := f.total * 1e-9
	if e < 1e-6 {
		e = 1e-6
	}
	return e
}

// reassign completes finished flows, recomputes max-min rates and
// schedules the next completion.
func (fb *Fabric) reassign() {
	var finished []*Flow
	for f := range fb.flows {
		if f.remaining <= f.eps() {
			f.remaining = 0
			f.done = true
			f.rate = 0
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		fb.remove(f)
	}

	fb.progressiveFill()

	if fb.completion != nil {
		fb.eng.Cancel(fb.completion)
		fb.completion = nil
	}
	next := math.Inf(1)
	for f := range fb.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < next {
				next = t
			}
		}
	}
	if !math.IsInf(next, 1) {
		fb.completion = fb.eng.Schedule(next, fb.onCompletion)
	}

	// Deterministic callback order: finished flows ran through a map, so
	// sort by name+total for reproducibility.
	sortFlows(finished)
	for _, f := range finished {
		if f.onDone != nil {
			fn := f.onDone
			fb.eng.Schedule(0, fn)
		}
	}
}

func (fb *Fabric) onCompletion() {
	fb.completion = nil
	fb.advance()
	fb.reassign()
}

// progressiveFill implements weighted global max-min fairness: rates grow
// proportionally to weights until a link saturates; flows crossing the
// saturated link freeze, remaining capacity keeps filling the others.
func (fb *Fabric) progressiveFill() {
	type linkState struct {
		remaining float64
		active    int // unfrozen flows crossing the link
		weight    float64
	}
	states := make(map[*Link]*linkState, len(fb.links))
	for _, l := range fb.links {
		states[l] = &linkState{remaining: l.capacity}
	}
	frozen := make(map[*Flow]bool, len(fb.flows))
	for f := range fb.flows {
		f.rate = 0
		for _, l := range f.links {
			states[l].active++
			states[l].weight += f.weight
		}
	}
	unfrozen := len(fb.flows)

	for unfrozen > 0 {
		// Find the link that saturates first: the one minimizing
		// remaining / weight-of-active-flows.
		level := math.Inf(1)
		var tight *Link
		for _, l := range fb.links {
			st := states[l]
			if st.active == 0 {
				continue
			}
			if st.weight <= 0 {
				continue
			}
			lv := st.remaining / st.weight
			if lv < level {
				level = lv
				tight = l
			}
		}
		if tight == nil || math.IsInf(level, 1) {
			// No constraining link: remaining flows are unbounded. Give
			// them infinite rate (they complete immediately).
			for f := range fb.flows {
				if !frozen[f] {
					f.rate = math.Inf(1)
				}
			}
			return
		}
		// Raise every unfrozen flow's rate by level*weight; freeze the
		// flows on the tight link.
		for f := range fb.flows {
			if frozen[f] {
				continue
			}
			inc := level * f.weight
			f.rate += inc
			for _, l := range f.links {
				states[l].remaining -= inc
				if states[l].remaining < 0 {
					states[l].remaining = 0
				}
			}
		}
		for f := range tight.flows {
			if frozen[f] {
				continue
			}
			frozen[f] = true
			unfrozen--
			for _, l := range f.links {
				states[l].active--
				states[l].weight -= f.weight
			}
		}
	}
}

func sortFlows(fs []*Flow) {
	// Insertion sort by (name, total); n is tiny.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0; j-- {
			a, b := fs[j-1], fs[j]
			if a.name < b.name || (a.name == b.name && a.total <= b.total) {
				break
			}
			fs[j-1], fs[j] = fs[j], fs[j-1]
		}
	}
}
