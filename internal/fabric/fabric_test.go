package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fluid"
	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleLinkSingleFlow(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	var done float64
	fb.Start("f", 1000, 1, []*Link{l}, func() { done = eng.Now() })
	eng.Run()
	if !almostEq(done, 10, 1e-9) {
		t.Fatalf("done = %v, want 10", done)
	}
}

func TestBottleneckIsTightestLink(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	nic := fb.NewLink("nic", 10)
	server := fb.NewLink("srv", 100)
	var done float64
	fb.Start("f", 100, 1, []*Link{nic, server}, func() { done = eng.Now() })
	eng.Run()
	if !almostEq(done, 10, 1e-9) {
		t.Fatalf("done = %v, want 10 (NIC bound)", done)
	}
}

func TestClassicMaxMinExample(t *testing.T) {
	// Two flows share link L1 (cap 10); flow 2 also crosses L2 (cap 3).
	// Max-min: flow 2 gets 3 (bottleneck L2), flow 1 gets 7.
	eng := sim.NewEngine()
	fb := New(eng)
	l1 := fb.NewLink("l1", 10)
	l2 := fb.NewLink("l2", 3)
	f1 := fb.Start("f1", 1e6, 1, []*Link{l1}, nil)
	f2 := fb.Start("f2", 1e6, 1, []*Link{l1, l2}, nil)
	if !almostEq(f1.Rate(), 7, 1e-9) {
		t.Fatalf("f1 rate = %v, want 7", f1.Rate())
	}
	if !almostEq(f2.Rate(), 3, 1e-9) {
		t.Fatalf("f2 rate = %v, want 3", f2.Rate())
	}
	f1.Cancel()
	f2.Cancel()
	eng.Run()
}

func TestWeightedShares(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	f1 := fb.Start("f1", 1e6, 3, []*Link{l}, nil)
	f2 := fb.Start("f2", 1e6, 1, []*Link{l}, nil)
	if !almostEq(f1.Rate(), 75, 1e-9) || !almostEq(f2.Rate(), 25, 1e-9) {
		t.Fatalf("rates %v/%v, want 75/25", f1.Rate(), f2.Rate())
	}
	f1.Cancel()
	f2.Cancel()
	eng.Run()
}

func TestFreedCapacityRedistributes(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	var t1, t2 float64
	fb.Start("f1", 500, 1, []*Link{l}, func() { t1 = eng.Now() })
	fb.Start("f2", 1000, 1, []*Link{l}, func() { t2 = eng.Now() })
	eng.Run()
	// Both at 50 until f1 finishes at t=10; f2 then gets 100 for its
	// remaining 500: t2 = 15.
	if !almostEq(t1, 10, 1e-9) || !almostEq(t2, 15, 1e-9) {
		t.Fatalf("t1=%v t2=%v, want 10, 15", t1, t2)
	}
}

func TestSetCapacityMidFlight(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	var done float64
	fb.Start("f", 1000, 1, []*Link{l}, func() { done = eng.Now() })
	eng.Schedule(5, func() { l.SetCapacity(50) })
	eng.Run()
	// 500 at 100, then 500 at 50: t = 15.
	if !almostEq(done, 15, 1e-9) {
		t.Fatalf("done = %v, want 15", done)
	}
}

func TestCancelNeverCompletes(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	f := fb.Start("f", 1e9, 1, []*Link{l}, func() { t.Error("cancelled flow completed") })
	eng.Schedule(1, f.Cancel)
	eng.Run()
	if f.Done() {
		t.Fatal("cancelled flow reports done")
	}
	if f.Remaining() != 0 {
		t.Fatal("cancelled flow should report zero remaining")
	}
}

func TestZeroCapacityLinkStalls(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 0)
	f := fb.Start("f", 100, 1, []*Link{l}, nil)
	if f.Rate() != 0 {
		t.Fatalf("rate = %v, want 0", f.Rate())
	}
	eng.Schedule(5, func() { l.SetCapacity(100) })
	var done bool
	eng.Schedule(10, func() { done = f.Done() })
	eng.Run()
	if !done {
		t.Fatal("flow should complete after capacity restored")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 10)
	other := New(eng).NewLink("x", 10)
	cases := []func(){
		func() { fb.Start("f", -1, 1, []*Link{l}, nil) },
		func() { fb.Start("f", 1, 0, []*Link{l}, nil) },
		func() { fb.Start("f", 1, 1, nil, nil) },
		func() { fb.Start("f", 1, 1, []*Link{other}, nil) },
		func() { fb.NewLink("bad", -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: on a single link, the fabric agrees with the fluid resource
// (same water-filling semantics, no caps).
func TestPropertySingleLinkMatchesFluid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		capacity := 10 + rng.Float64()*1000
		works := make([]float64, n)
		weights := make([]float64, n)
		for i := range works {
			works[i] = 1 + rng.Float64()*1e5
			weights[i] = 1 + rng.Float64()*8
		}

		eng1 := sim.NewEngine()
		fb := New(eng1)
		l := fb.NewLink("l", capacity)
		gotFab := make([]float64, n)
		for i := range works {
			i := i
			fb.Start("f", works[i], weights[i], []*Link{l}, func() { gotFab[i] = eng1.Now() })
		}
		eng1.Run()

		eng2 := sim.NewEngine()
		r := fluid.NewResource(eng2, "r", capacity)
		gotFluid := make([]float64, n)
		for i := range works {
			i := i
			r.Submit("j", works[i], weights[i], 0, func() { gotFluid[i] = eng2.Now() })
		}
		eng2.Run()

		for i := range works {
			if !almostEq(gotFab[i], gotFluid[i], 1e-6) {
				t.Logf("seed %d flow %d: fabric %v fluid %v", seed, i, gotFab[i], gotFluid[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rates never exceed any crossed link's capacity, and a
// saturated link is fully used while it has flows.
func TestPropertyCapacityRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		fb := New(eng)
		nlinks := 2 + rng.Intn(4)
		links := make([]*Link, nlinks)
		for i := range links {
			links[i] = fb.NewLink("l", 10+rng.Float64()*100)
		}
		nflows := 1 + rng.Intn(8)
		flows := make([]*Flow, nflows)
		for i := range flows {
			// Random subset of links (at least one).
			var path []*Link
			for _, l := range links {
				if rng.Intn(2) == 0 {
					path = append(path, l)
				}
			}
			if len(path) == 0 {
				path = append(path, links[rng.Intn(nlinks)])
			}
			flows[i] = fb.Start("f", 1e9, 1+rng.Float64()*4, path, nil)
		}
		linkRate := func(l *Link) float64 {
			var sum float64
			for _, ref := range l.flows {
				sum += ref.f.rate
			}
			return sum
		}
		ok := true
		for _, l := range links {
			if sum := linkRate(l); sum > l.capacity*(1+1e-9) {
				t.Logf("seed %d: link over capacity: %v > %v", seed, sum, l.capacity)
				ok = false
			}
		}
		// Max-min property: every flow is bottlenecked somewhere — it
		// crosses at least one saturated link.
		for _, fl := range flows {
			bottlenecked := false
			for _, l := range fl.links {
				sum := linkRate(l)
				if sum >= l.capacity*(1-1e-9) {
					bottlenecked = true
				}
			}
			if !bottlenecked && !math.IsInf(fl.rate, 1) {
				t.Logf("seed %d: flow with rate %v not bottlenecked", seed, fl.rate)
				ok = false
			}
		}
		for _, fl := range flows {
			fl.Cancel()
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total work is conserved — sum of (work / avg rate over time)
// equality is awkward, so check the simpler invariant: a fully shared
// single-bottleneck fabric drains exactly at capacity.
func TestPropertyDrainAtCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		fb := New(eng)
		l := fb.NewLink("l", 100)
		total := 0.0
		n := 1 + rng.Intn(6)
		var last float64
		for i := 0; i < n; i++ {
			w := 100 + rng.Float64()*1e4
			total += w
			fb.Start("f", w, 1+rng.Float64()*3, []*Link{l}, func() { last = eng.Now() })
		}
		eng.Run()
		return almostEq(last, total/100, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCompletionCallbackTotalOrder pins the documented completion dispatch
// order: a simultaneous batch runs its callbacks sorted by (name, total,
// creation id) — a total order, so even identical names and sizes dispatch
// in creation order, run after run.
func TestCompletionCallbackTotalOrder(t *testing.T) {
	for run := 0; run < 5; run++ {
		eng := sim.NewEngine()
		fb := New(eng)
		l := fb.NewLink("l", 100)
		var order []int
		// Same name and same total: only the creation id breaks the tie.
		for i := 0; i < 6; i++ {
			i := i
			fb.Start("twin", 500, 1, []*Link{l}, func() { order = append(order, i) })
		}
		eng.Run()
		if len(order) != 6 {
			t.Fatalf("run %d: %d callbacks, want 6", run, len(order))
		}
		for i := range order {
			if order[i] != i {
				t.Fatalf("run %d: callback order = %v, want creation order", run, order)
			}
		}
	}
}

// TestBatchedCompletions: N flows finishing at the same instant are removed
// in one batch and the survivors' rates reflect a single refill.
func TestBatchedCompletions(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	l := fb.NewLink("l", 100)
	var finishedAt []float64
	for i := 0; i < 4; i++ {
		fb.Start("short", 100, 1, []*Link{l}, func() { finishedAt = append(finishedAt, eng.Now()) })
	}
	long := fb.Start("long", 1000, 1, []*Link{l}, nil)
	// Each of the 5 flows gets 20; the four shorts finish together at t=5.
	eng.RunUntil(5.0)
	if len(finishedAt) != 4 {
		t.Fatalf("%d flows finished, want 4 (batch)", len(finishedAt))
	}
	for _, at := range finishedAt {
		if !almostEq(at, 5, 1e-9) {
			t.Fatalf("finish times %v, want all 5", finishedAt)
		}
	}
	if !almostEq(long.Rate(), 100, 1e-9) {
		t.Fatalf("survivor rate = %v, want 100 after batch refill", long.Rate())
	}
}

// TestReassignDeterministicRates: identical construction sequences produce
// bit-identical rates — the solver's float accumulation order is fixed by
// the dense ID iteration, with no map-order dependence.
func TestReassignDeterministicRates(t *testing.T) {
	build := func() []float64 {
		eng := sim.NewEngine()
		fb := New(eng)
		links := make([]*Link, 8)
		for i := range links {
			links[i] = fb.NewLink("l", 10+float64(i)*3.7)
		}
		var flows []*Flow
		for i := 0; i < 32; i++ {
			path := []*Link{links[i%8], links[(i*3+1)%8]}
			flows = append(flows, fb.Start("f", 1e9, 1+float64(i%5)*0.31, path, nil))
		}
		rates := make([]float64, len(flows))
		for i, f := range flows {
			rates[i] = f.Rate()
		}
		return rates
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d: rate %v vs %v — solver is nondeterministic", i, a[i], b[i])
		}
	}
}

// TestReassignSteadyStateAllocFree locks in the solver's headline property:
// with a populated fabric and no flow churn, advance+reassign allocates
// nothing.
func TestReassignSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	fb := New(eng)
	nic := fb.NewLink("nic", 4e9)
	servers := make([]*Link, 8)
	for i := range servers {
		servers[i] = fb.NewLink("srv", 1e9)
	}
	for i := 0; i < 32; i++ {
		fb.Start("f", 1e18, 1+float64(i%3), []*Link{nic, servers[i%8]}, nil)
	}
	n := 0
	allocs := testing.AllocsPerRun(1000, func() {
		servers[0].SetCapacity(1e9 + float64(n&1)*1e8)
		n++
	})
	if allocs != 0 {
		t.Fatalf("steady-state reassign allocates %.1f objects/op, want 0", allocs)
	}
}
