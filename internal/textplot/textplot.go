// Package textplot renders small ASCII line and bar charts for terminal
// output. It exists so the example programs and CLI can show ∆-graph shapes
// without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a plot.
type Series struct {
	Name   string
	Y      []float64
	Symbol byte // plotting glyph; 0 picks one automatically
}

var defaultSymbols = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Line renders an ASCII line chart of the series over the shared X axis.
func Line(title string, x []float64, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		return title + ": (no data)\n"
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xmin, xmax := x[0], x[0]
	for _, v := range x {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := s.Symbol
		if sym == 0 {
			sym = defaultSymbols[si%len(defaultSymbols)]
		}
		for i, v := range s.Y {
			if i >= len(x) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c := int(math.Round((x[i] - xmin) / (xmax - xmin) * float64(width-1)))
			r := height - 1 - int(math.Round((v-ymin)/(ymax-ymin)*float64(height-1)))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = sym
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yl := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", yl, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	legend := make([]string, len(series))
	for si, s := range series {
		sym := s.Symbol
		if sym == 0 {
			sym = defaultSymbols[si%len(defaultSymbols)]
		}
		legend[si] = fmt.Sprintf("%c=%s", sym, s.Name)
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// Bar renders a horizontal bar chart of label/value pairs.
func Bar(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("textplot: labels and values length mismatch")
	}
	if width < 10 {
		width = 10
	}
	maxv := 0.0
	maxl := 0
	for i, v := range values {
		if v > maxv {
			maxv = v
		}
		if len(labels[i]) > maxl {
			maxl = len(labels[i])
		}
	}
	if maxv == 0 {
		maxv = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		n := int(math.Round(v / maxv * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%*s |%s %.4g\n", maxl, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
