package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	s := []Series{
		{Name: "up", Y: []float64{1, 2, 3, 4}},
		{Name: "down", Y: []float64{4, 3, 2, 1}},
	}
	out := Line("title", x, s, 40, 8)
	for _, want := range []string{"title", "*=up", "+=down", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Fatalf("too few lines: %d", lines)
	}
}

func TestLineHandlesNaN(t *testing.T) {
	out := Line("t", []float64{0, 1}, []Series{{Name: "s", Y: []float64{math.NaN(), 1}}}, 20, 5)
	if !strings.Contains(out, "s") {
		t.Fatal("series name missing")
	}
}

func TestLineNoData(t *testing.T) {
	out := Line("t", []float64{0}, []Series{{Name: "s", Y: []float64{math.NaN()}}}, 20, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("want no-data marker, got %q", out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	out := Line("t", []float64{0, 1}, []Series{{Name: "s", Y: []float64{2, 2}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series should still plot")
	}
}

func TestLineCustomSymbol(t *testing.T) {
	out := Line("t", []float64{0, 1}, []Series{{Name: "s", Y: []float64{1, 2}, Symbol: 'Q'}}, 20, 5)
	if !strings.Contains(out, "Q=s") {
		t.Fatal("custom symbol not used")
	}
}

func TestBar(t *testing.T) {
	out := Bar("bars", []string{"aa", "b"}, []float64{2, 4}, 10)
	for _, want := range []string{"bars", "aa |", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bar("x", []string{"a"}, []float64{1, 2}, 10)
}

func TestBarZeroValues(t *testing.T) {
	out := Bar("z", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a |") {
		t.Fatalf("unexpected: %q", out)
	}
}
