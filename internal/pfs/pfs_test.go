package pfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// naivePerServer is the obvious O(length/stripe) reference implementation.
func naivePerServer(offset, length, stripe int64, nservers, first int) []int64 {
	out := make([]int64, nservers)
	for b := offset; b < offset+length; {
		unit := b / stripe
		srv := int((unit + int64(first)) % int64(nservers))
		end := (unit + 1) * stripe
		if end > offset+length {
			end = offset + length
		}
		out[srv] += end - b
		b = end
	}
	return out
}

func TestPerServerBytesSimple(t *testing.T) {
	// 4 full stripes of 10 over 2 servers.
	got := PerServerBytes(0, 40, 10, 2, 0)
	if got[0] != 20 || got[1] != 20 {
		t.Fatalf("got %v, want [20 20]", got)
	}
}

func TestPerServerBytesPartial(t *testing.T) {
	// Offset mid-stripe.
	got := PerServerBytes(5, 10, 10, 2, 0)
	// [5,10) on srv0 = 5 bytes; [10,15) on srv1 = 5 bytes.
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("got %v, want [5 5]", got)
	}
}

func TestPerServerBytesSingleUnit(t *testing.T) {
	got := PerServerBytes(3, 4, 10, 3, 1)
	// Unit 0 -> server (0+1)%3 = 1.
	if got[0] != 0 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("got %v, want [0 4 0]", got)
	}
}

func TestPerServerBytesZeroLength(t *testing.T) {
	got := PerServerBytes(100, 0, 10, 4, 0)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("got %v, want zeros", got)
		}
	}
}

// Property: the fast decomposition matches the naive one and conserves
// bytes.
func TestPropertyStripingMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stripe := int64(1 + rng.Intn(1<<16))
		nservers := 1 + rng.Intn(40)
		first := rng.Intn(nservers)
		offset := int64(rng.Intn(1 << 20))
		length := int64(rng.Intn(1 << 22))
		got := PerServerBytes(offset, length, stripe, nservers, first)
		want := naivePerServer(offset, length, stripe, nservers, first)
		var sum int64
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: server %d got %d want %d", seed, i, got[i], want[i])
				return false
			}
			sum += got[i]
		}
		return sum == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: striping balance — any extent spanning many stripes is spread
// within one stripe unit of even across servers.
func TestPropertyStripingBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stripe := int64(1 + rng.Intn(1<<12))
		nservers := 1 + rng.Intn(16)
		length := stripe * int64(nservers) * int64(2+rng.Intn(10))
		got := PerServerBytes(int64(rng.Intn(1<<16)), length, stripe, nservers, rng.Intn(nservers))
		min, max := got[0], got[0]
		for _, b := range got {
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		return max-min <= 2*stripe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func defaultCfg() Config {
	return Config{Servers: 4, StripeBytes: 64 << 10, ServerBW: 100 << 20}
}

func TestWriteAlone(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	f := fs.Create("a")
	var elapsed float64
	eng.Go("w", func(p *sim.Proc) {
		elapsed = f.Write(p, Request{App: "a", Length: 400 << 20, Weight: 4})
	})
	eng.Run()
	// 400 MiB over 4 servers at 100 MiB/s each -> 1 second.
	if !almostEq(elapsed, 1.0, 1e-6) {
		t.Fatalf("elapsed = %v, want 1.0", elapsed)
	}
}

func TestWriteInjectionCap(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	f := fs.Create("a")
	var elapsed float64
	eng.Go("w", func(p *sim.Proc) {
		// Injection-limited to 100 MiB/s total: 4x slower than the FS.
		elapsed = f.Write(p, Request{App: "a", Length: 400 << 20, Weight: 4, RateCap: 100 << 20})
	})
	eng.Run()
	if !almostEq(elapsed, 4.0, 1e-6) {
		t.Fatalf("elapsed = %v, want 4.0 (injection limited)", elapsed)
	}
}

func TestTwoWritersShare(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	fa, fb := fs.Create("a"), fs.Create("b")
	var ta, tb float64
	eng.Go("a", func(p *sim.Proc) {
		ta = fa.Write(p, Request{App: "a", Length: 400 << 20, Weight: 4})
	})
	eng.Go("b", func(p *sim.Proc) {
		tb = fb.Write(p, Request{App: "b", Length: 400 << 20, Weight: 4})
	})
	eng.Run()
	// Equal weights: both take 2x the alone time.
	if !almostEq(ta, 2.0, 1e-6) || !almostEq(tb, 2.0, 1e-6) {
		t.Fatalf("ta=%v tb=%v, want 2.0 both", ta, tb)
	}
}

func TestWeightProportionalCrush(t *testing.T) {
	// A big app (weight 42) against a small one (weight 1): the small app
	// suffers a large interference factor — the Fig. 4/6 mechanism.
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	fa, fb := fs.Create("a"), fs.Create("b")
	var ta, tb float64
	eng.Go("a", func(p *sim.Proc) {
		ta = fa.Write(p, Request{App: "a", Length: 420 << 20, Weight: 42})
	})
	eng.Go("b", func(p *sim.Proc) {
		tb = fb.Write(p, Request{App: "b", Length: 10 << 20, Weight: 1})
	})
	eng.Run()
	if tb < ta/3 {
		t.Fatalf("small app finished too fast: ta=%v tb=%v", ta, tb)
	}
	// Small app alone would need 10/400 s = 0.025s; in contention its share
	// is 400*(1/43) MiB/s -> ~1.07s.
	if !almostEq(tb, 10.0/(400.0/43.0), 1e-3) {
		t.Fatalf("tb = %v, want ~1.075", tb)
	}
}

func TestFIFOServersServeOneAtATime(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = FIFO
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	fa, fb := fs.Create("a"), fs.Create("b")
	var ta, tb float64
	eng.Go("a", func(p *sim.Proc) {
		ta = fa.Write(p, Request{App: "a", Length: 400 << 20, Weight: 4})
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Sleep(1e-6) // arrive strictly second
		tb = fb.Write(p, Request{App: "b", Length: 400 << 20, Weight: 4})
	})
	eng.Run()
	// A runs alone (~1s), B queues behind it on every server (~2s total).
	if !almostEq(ta, 1.0, 1e-3) {
		t.Fatalf("ta = %v, want ~1.0 under FIFO", ta)
	}
	if !almostEq(tb, 2.0, 1e-3) {
		t.Fatalf("tb = %v, want ~2.0 under FIFO", tb)
	}
}

func TestExclusiveServesAppAtATime(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = Exclusive
	eng := sim.NewEngine()
	fs := New(eng, cfg)
	fa, fb := fs.Create("a"), fs.Create("b")
	done := make(map[string]float64)
	eng.Go("a", func(p *sim.Proc) {
		fa.Write(p, Request{App: "a", Length: 200 << 20, Weight: 2})
		done["a"] = p.Now()
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Sleep(1e-6)
		fb.Write(p, Request{App: "b", Length: 200 << 20, Weight: 2})
		done["b"] = p.Now()
	})
	eng.Run()
	if done["a"] >= done["b"] {
		t.Fatalf("app a should finish first: %v", done)
	}
	if !almostEq(done["a"], 0.5, 1e-3) || !almostEq(done["b"], 1.0, 1e-3) {
		t.Fatalf("done = %v, want a~0.5 b~1.0", done)
	}
}

func TestCreateRotatesFirstServer(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		f := fs.Create("f")
		seen[f.first] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first servers not rotated: %v", seen)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Servers: 0, StripeBytes: 1, ServerBW: 1},
		{Servers: 1, StripeBytes: 0, ServerBW: 1},
		{Servers: 1, StripeBytes: 1, ServerBW: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := defaultCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAggregateBW(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	if got := fs.AggregateBW(); !almostEq(got, 4*100<<20, 1e-12) {
		t.Fatalf("aggregate = %v", got)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if Share.String() != "share" || FIFO.String() != "fifo" || Exclusive.String() != "exclusive" {
		t.Fatal("unexpected policy names")
	}
}

func TestFabricModeWrite(t *testing.T) {
	eng := sim.NewEngine()
	fb := fabric.New(eng)
	cfg := defaultCfg()
	cfg.Fabric = fb
	fs := New(eng, cfg)
	nicA := fb.NewLink("nicA", 100<<20) // A is NIC-bound: 100 MiB/s
	f := fs.Create("a")
	var elapsed float64
	eng.Go("w", func(p *sim.Proc) {
		elapsed = f.Write(p, Request{App: "a", Length: 400 << 20, Weight: 4, ClientLink: nicA})
	})
	eng.Run()
	if !almostEq(elapsed, 4.0, 1e-6) {
		t.Fatalf("elapsed = %v, want 4.0 (NIC bound)", elapsed)
	}
}

func TestFabricModeGlobalMaxMin(t *testing.T) {
	// Big app (fast NIC) and small app (slow NIC) share the servers: the
	// small app is bounded by its NIC, the big one takes the rest.
	eng := sim.NewEngine()
	fb := fabric.New(eng)
	cfg := defaultCfg() // 4 servers x 100 MiB/s
	cfg.Fabric = fb
	fs := New(eng, cfg)
	nicBig := fb.NewLink("nicBig", 1<<40)
	nicSmall := fb.NewLink("nicSmall", 40<<20)
	fbig, fsmall := fs.Create("big"), fs.Create("small")
	var tBig, tSmall float64
	eng.Go("big", func(p *sim.Proc) {
		tBig = fbig.Write(p, Request{App: "big", Length: 720 << 20, Weight: 42, ClientLink: nicBig})
	})
	eng.Go("small", func(p *sim.Proc) {
		tSmall = fsmall.Write(p, Request{App: "small", Length: 40 << 20, Weight: 1, ClientLink: nicSmall})
	})
	eng.Run()
	// Small app alone is NIC-bound: 40 MiB at 40 MiB/s = 1 s. Under
	// contention its per-server share is 100*(1/43) ≈ 2.3 MiB/s until the
	// big app finishes (~1.84 s), then it speeds back up: ~2.4 s total.
	if tSmall < 2 {
		t.Fatalf("small app finished too fast under contention: %v (want > 2x alone)", tSmall)
	}
	if !almostEq(tBig, 720.0/(400.0*42.0/43.0), 1e-3) {
		t.Fatalf("big app time %v, want ~1.84", tBig)
	}
	if tBig > tSmall {
		t.Fatalf("big app %v should finish before small %v", tBig, tSmall)
	}
}

func TestFabricWithCacheRejected(t *testing.T) {
	eng := sim.NewEngine()
	cfg := defaultCfg()
	cfg.Fabric = fabric.New(eng)
	cfg.CacheBW = 2 * cfg.ServerBW
	cfg.CacheBytes = 1 << 20
	if err := cfg.Validate(); err == nil {
		t.Fatal("fabric+cache should be rejected")
	}
}

func TestReadAlone(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	f := fs.Create("a")
	var elapsed float64
	eng.Go("r", func(p *sim.Proc) {
		elapsed = f.Read(p, Request{App: "a", Length: 400 << 20, Weight: 4})
	})
	eng.Run()
	if !almostEq(elapsed, 1.0, 1e-6) {
		t.Fatalf("read elapsed = %v, want 1.0", elapsed)
	}
}

func TestReaderInterferesWithWriter(t *testing.T) {
	eng := sim.NewEngine()
	fs := New(eng, defaultCfg())
	fa, fb := fs.Create("a"), fs.Create("b")
	var tw, tr float64
	eng.Go("w", func(p *sim.Proc) {
		tw = fa.Write(p, Request{App: "w", Length: 400 << 20, Weight: 4})
	})
	eng.Go("r", func(p *sim.Proc) {
		tr = fb.Read(p, Request{App: "r", Length: 400 << 20, Weight: 4})
	})
	eng.Run()
	// Disk heads and NICs are shared across directions: both take 2x.
	if !almostEq(tw, 2.0, 1e-6) || !almostEq(tr, 2.0, 1e-6) {
		t.Fatalf("tw=%v tr=%v, want 2.0 both", tw, tr)
	}
}
