package pfs

// PerServerBytes computes how many bytes of the extent [offset, offset+length)
// land on each of nservers servers under round-robin striping with the given
// stripe unit, starting at server (offset/stripe + firstServer) % nservers.
// It runs in O(nservers) regardless of extent size.
func PerServerBytes(offset, length, stripe int64, nservers int, firstServer int) []int64 {
	return PerServerBytesInto(make([]int64, nservers), offset, length, stripe, nservers, firstServer)
}

// PerServerBytesInto is PerServerBytes writing into caller-provided scratch,
// which must have length nservers; it returns the scratch. The transfer hot
// path uses it so striping a request allocates nothing.
func PerServerBytesInto(out []int64, offset, length, stripe int64, nservers int, firstServer int) []int64 {
	if len(out) != nservers {
		panic("pfs: PerServerBytesInto scratch length mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	if length <= 0 {
		return out
	}
	if stripe <= 0 {
		panic("pfs: stripe unit must be positive")
	}
	// First (possibly partial) stripe unit.
	first := offset / stripe
	last := (offset + length - 1) / stripe
	units := last - first + 1

	srv := func(unit int64) int {
		return int((unit+int64(firstServer))%int64(nservers)+int64(nservers)) % nservers
	}

	if units == 1 {
		out[srv(first)] = length
		return out
	}

	// Head partial unit.
	head := stripe - offset%stripe
	out[srv(first)] += head
	// Tail partial unit.
	tail := (offset+length-1)%stripe + 1
	out[srv(last)] += tail
	// Full middle units: distribute round-robin.
	middle := units - 2
	if middle > 0 {
		per := middle / int64(nservers)
		rem := middle % int64(nservers)
		for s := 0; s < nservers; s++ {
			out[s] += per * stripe
		}
		// The remaining `rem` units go to consecutive servers starting
		// after the head unit's server.
		for i := int64(0); i < rem; i++ {
			out[srv(first+1+i)] += stripe
		}
	}
	return out
}

// ServersTouched returns how many servers receive a non-zero share of the
// extent.
func ServersTouched(offset, length, stripe int64, nservers int, firstServer int) int {
	n := 0
	for _, b := range PerServerBytes(offset, length, stripe, nservers, firstServer) {
		if b > 0 {
			n++
		}
	}
	return n
}
