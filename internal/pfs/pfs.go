// Package pfs models a PVFS/OrangeFS-style parallel file system: files are
// striped round-robin across a set of storage servers, and each server
// services the write requests it receives under a configurable scheduling
// policy. Contention at these servers is the interference that CALCioM
// mitigates.
package pfs

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// SchedPolicy selects how a server services concurrent requests.
type SchedPolicy int

const (
	// Share interleaves all requests, processor-sharing the server
	// bandwidth proportionally to request weights (the default behaviour
	// of an uncoordinated file system: everyone interferes).
	Share SchedPolicy = iota
	// FIFO services one request at a time per server, in arrival order
	// (the "network request scheduler" baseline from the paper's intro).
	FIFO
	// Exclusive services one *application* at a time per server: requests
	// from the active app share the server; other apps queue (an
	// idealized server-side app-at-a-time scheduler, cf. Qian et al. and
	// Song et al. in the paper's related work).
	Exclusive
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case Share:
		return "share"
	case FIFO:
		return "fifo"
	case Exclusive:
		return "exclusive"
	}
	return fmt.Sprintf("SchedPolicy(%d)", int(p))
}

// Config describes a deployed file system.
type Config struct {
	Servers     int     // number of storage servers
	StripeBytes int64   // stripe unit
	ServerBW    float64 // per-server persistent bandwidth (bytes/s)
	CacheBW     float64 // per-server cache ingest bandwidth (0 = no cache)
	CacheBytes  float64 // per-server cache size in bytes (0 = no cache)
	Policy      SchedPolicy

	// Fabric, when non-nil, switches the transfer model from per-server
	// processor sharing with static injection caps to global max-min
	// fairness across an explicit network: each server becomes a fabric
	// link and each request crosses its client's NIC link too (see
	// Request.ClientLink). The write-back cache is not supported in this
	// mode.
	Fabric *fabric.Fabric
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("pfs: need at least one server, got %d", c.Servers)
	}
	if c.StripeBytes <= 0 {
		return fmt.Errorf("pfs: stripe unit must be positive, got %d", c.StripeBytes)
	}
	if c.ServerBW <= 0 {
		return fmt.Errorf("pfs: server bandwidth must be positive, got %v", c.ServerBW)
	}
	if c.Fabric != nil && c.CacheBytes > 0 {
		return fmt.Errorf("pfs: write-back cache is not supported with an explicit fabric")
	}
	return nil
}

// System is a deployed parallel file system.
type System struct {
	eng     *sim.Engine
	cfg     Config
	servers []*Server
	nfiles  int
}

// New deploys a file system on the engine.
func New(eng *sim.Engine, cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{eng: eng, cfg: cfg}
	for i := 0; i < cfg.Servers; i++ {
		s.servers = append(s.servers, newServer(eng, i, cfg))
	}
	return s
}

// Config returns the deployment configuration.
func (s *System) Config() Config { return s.cfg }

// Servers returns the server list.
func (s *System) Servers() []*Server { return s.servers }

// AggregateBW returns the sum of persistent server bandwidths — the peak
// sustained throughput of the file system.
func (s *System) AggregateBW() float64 {
	return float64(s.cfg.Servers) * s.cfg.ServerBW
}

// File is a striped file. Files are laid out starting at a deterministic
// first server derived from creation order, like PVFS distributing files.
type File struct {
	sys   *System
	name  string
	first int // first server for offset 0
}

// Create creates (or truncates) a striped file.
func (s *System) Create(name string) *File {
	f := &File{sys: s, name: name, first: s.nfiles % s.cfg.Servers}
	s.nfiles++
	return f
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Request describes one application-level write against the file system.
// The simulator aggregates the per-process requests of one application round
// into a single Request; Weight carries the number of underlying client
// streams so that servers share bandwidth proportionally to the real
// request pressure, and RateCap models the writers' total injection limit.
type Request struct {
	App     string  // application identity (used by Exclusive scheduling)
	Offset  int64   // byte offset in the file
	Length  int64   // byte count
	Weight  float64 // concurrent client streams this request represents
	RateCap float64 // total injection bandwidth cap, 0 = unlimited

	// ClientLink is the issuing application's NIC link; required when the
	// file system is deployed with an explicit fabric, ignored otherwise.
	ClientLink *fabric.Link
}

// Write performs the request synchronously from process p, blocking until
// every server involved has absorbed its share. It returns the elapsed
// virtual time.
func (f *File) Write(p *sim.Proc, req Request) float64 {
	return f.transfer(p, req, "w")
}

// Read performs a read request synchronously from process p. Reads are
// serviced by the same per-server resources as writes — on a storage server
// the disk heads and the NICs are shared between directions, which is why
// read traffic from one application interferes with another's writes. With
// a cache-enabled store, reads of recently-written data are serviced at
// cache speed, like the writes that produced them.
func (f *File) Read(p *sim.Proc, req Request) float64 {
	return f.transfer(p, req, "r")
}

func (f *File) transfer(p *sim.Proc, req Request, dir string) float64 {
	start := p.Now()
	if req.Length <= 0 {
		return 0
	}
	if req.Weight <= 0 {
		req.Weight = 1
	}
	sys := f.sys
	per := PerServerBytes(req.Offset, req.Length, sys.cfg.StripeBytes, sys.cfg.Servers, f.first)
	touched := 0
	for _, b := range per {
		if b > 0 {
			touched++
		}
	}
	wg := sim.NewWaitGroup(p.Engine())
	perWeight := req.Weight / float64(touched)
	var perCap float64
	if req.RateCap > 0 {
		perCap = req.RateCap / float64(touched)
	}
	for i, b := range per {
		if b == 0 {
			continue
		}
		wg.Add(1)
		sys.servers[i].submit(&serverReq{
			app:    req.App,
			name:   fmt.Sprintf("%s@%s[%d]%s", req.App, f.name, i, dir),
			bytes:  float64(b),
			weight: perWeight,
			cap:    perCap,
			client: req.ClientLink,
			done:   wg.Done,
		})
	}
	wg.Wait(p)
	return p.Now() - start
}

// Server is one storage server.
type Server struct {
	id    int
	cfg   Config
	store *disk.Store
	link  *fabric.Link // non-nil in fabric mode

	// FIFO / Exclusive queueing state.
	queue   []*serverReq
	current *serverReq // FIFO: in-service request
	curApp  string     // Exclusive: app being serviced
	inFlite int        // Exclusive: live jobs of curApp
}

type serverReq struct {
	app    string
	name   string
	bytes  float64
	weight float64
	cap    float64
	client *fabric.Link
	done   func()
}

func newServer(eng *sim.Engine, id int, cfg Config) *Server {
	sv := &Server{
		id:  id,
		cfg: cfg,
		store: disk.New(eng, fmt.Sprintf("srv%d", id), disk.Params{
			DiskBW:     cfg.ServerBW,
			CacheBW:    cfg.CacheBW,
			CacheBytes: cfg.CacheBytes,
		}),
	}
	if cfg.Fabric != nil {
		sv.link = cfg.Fabric.NewLink(fmt.Sprintf("srv%d", id), cfg.ServerBW)
	}
	return sv
}

// Link returns the server's fabric link (nil without an explicit fabric).
func (sv *Server) Link() *fabric.Link { return sv.link }

// Store exposes the server's storage target (for tests and metrics).
func (sv *Server) Store() *disk.Store { return sv.store }

// ID returns the server index.
func (sv *Server) ID() int { return sv.id }

func (sv *Server) submit(r *serverReq) {
	switch sv.cfg.Policy {
	case Share:
		sv.start(r)
	case FIFO:
		sv.queue = append(sv.queue, r)
		sv.pumpFIFO()
	case Exclusive:
		sv.queue = append(sv.queue, r)
		sv.pumpExclusive()
	default:
		panic("pfs: unknown scheduling policy")
	}
}

// start launches the request on the store (or, in fabric mode, as a flow
// crossing the client NIC and the server link).
func (sv *Server) start(r *serverReq) {
	done := r.done
	complete := func() {
		if done != nil {
			done()
		}
		sv.finished(r)
	}
	if sv.cfg.Fabric != nil {
		links := []*fabric.Link{sv.link}
		if r.client != nil {
			links = append(links, r.client)
		}
		sv.cfg.Fabric.Start(r.name, r.bytes, r.weight, links, complete)
		return
	}
	sv.store.Resource().Submit(r.name, r.bytes, r.weight, r.cap, complete)
}

func (sv *Server) finished(r *serverReq) {
	switch sv.cfg.Policy {
	case FIFO:
		if sv.current == r {
			sv.current = nil
		}
		sv.pumpFIFO()
	case Exclusive:
		sv.inFlite--
		sv.pumpExclusive()
	}
}

func (sv *Server) pumpFIFO() {
	if sv.current != nil || len(sv.queue) == 0 {
		return
	}
	r := sv.queue[0]
	sv.queue = sv.queue[1:]
	sv.current = r
	sv.start(r)
}

func (sv *Server) pumpExclusive() {
	if sv.inFlite == 0 {
		sv.curApp = ""
	}
	if len(sv.queue) == 0 {
		return
	}
	if sv.curApp == "" {
		sv.curApp = sv.queue[0].app
	}
	// Admit every queued request of the active application.
	keep := sv.queue[:0]
	for _, r := range sv.queue {
		if r.app == sv.curApp {
			sv.inFlite++
			sv.start(r)
		} else {
			keep = append(keep, r)
		}
	}
	sv.queue = append([]*serverReq(nil), keep...)
}
