// Package pfs models a PVFS/OrangeFS-style parallel file system: files are
// striped round-robin across a set of storage servers, and each server
// services the write requests it receives under a configurable scheduling
// policy. Contention at these servers is the interference that CALCioM
// mitigates.
package pfs

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// SchedPolicy selects how a server services concurrent requests.
type SchedPolicy int

const (
	// Share interleaves all requests, processor-sharing the server
	// bandwidth proportionally to request weights (the default behaviour
	// of an uncoordinated file system: everyone interferes).
	Share SchedPolicy = iota
	// FIFO services one request at a time per server, in arrival order
	// (the "network request scheduler" baseline from the paper's intro).
	FIFO
	// Exclusive services one *application* at a time per server: requests
	// from the active app share the server; other apps queue (an
	// idealized server-side app-at-a-time scheduler, cf. Qian et al. and
	// Song et al. in the paper's related work).
	Exclusive
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case Share:
		return "share"
	case FIFO:
		return "fifo"
	case Exclusive:
		return "exclusive"
	}
	return fmt.Sprintf("SchedPolicy(%d)", int(p))
}

// Config describes a deployed file system.
type Config struct {
	Servers     int     // number of storage servers
	StripeBytes int64   // stripe unit
	ServerBW    float64 // per-server persistent bandwidth (bytes/s)
	CacheBW     float64 // per-server cache ingest bandwidth (0 = no cache)
	CacheBytes  float64 // per-server cache size in bytes (0 = no cache)
	Policy      SchedPolicy

	// Fabric, when non-nil, switches the transfer model from per-server
	// processor sharing with static injection caps to global max-min
	// fairness across an explicit network: each server becomes a fabric
	// link and each request crosses its client's NIC link too (see
	// Request.ClientLink). The write-back cache is not supported in this
	// mode.
	Fabric *fabric.Fabric
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("pfs: need at least one server, got %d", c.Servers)
	}
	if c.StripeBytes <= 0 {
		return fmt.Errorf("pfs: stripe unit must be positive, got %d", c.StripeBytes)
	}
	if c.ServerBW <= 0 {
		return fmt.Errorf("pfs: server bandwidth must be positive, got %v", c.ServerBW)
	}
	if c.Fabric != nil && c.CacheBytes > 0 {
		return fmt.Errorf("pfs: write-back cache is not supported with an explicit fabric")
	}
	return nil
}

// System is a deployed parallel file system. A System is reusable across
// simulation runs: Reset returns it to its just-deployed state while
// retaining everything that is expensive to rebuild (servers, stores, the
// file table with its cached request names, pooled server requests and wait
// groups, striping scratch), so a sweep re-running the same scenario pays
// the object graph once.
type System struct {
	eng     *sim.Engine
	cfg     Config
	servers []*Server
	nfiles  int

	// files caches File objects by name across runs. Logical layout state
	// (the first server, derived from creation order) is recomputed on
	// every Create, so a reused file behaves exactly like a fresh one.
	files map[string]*File

	// Hot-path pools and scratch: per-transfer striping scratch, pooled
	// wait groups, and pooled server requests with their pre-bound
	// completion closures.
	perScratch []int64
	wgFree     []*sim.WaitGroup
	reqFree    []*serverReq
}

// New deploys a file system on the engine.
func New(eng *sim.Engine, cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{eng: eng, cfg: cfg, files: make(map[string]*File)}
	s.perScratch = make([]int64, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		s.servers = append(s.servers, newServer(s, eng, i, cfg))
	}
	return s
}

// Reset returns the file system to its just-deployed state on a freshly
// reset engine: no files laid out, empty server queues, empty stores.
// Retained across Reset: the server and store objects, cached File objects
// and their request-name strings, pooled server requests and wait groups.
// In explicit-fabric mode the fabric is owned by the caller and must be
// reset separately (see fabric.Fabric.Reset).
func (s *System) Reset() {
	s.nfiles = 0
	for _, sv := range s.servers {
		for i := range sv.queue {
			sv.queue[i] = nil
		}
		sv.queue = sv.queue[:0]
		sv.current = nil
		sv.curApp = ""
		sv.inFlite = 0
		sv.store.Reset()
	}
}

// getWG pops a pooled wait group or builds a fresh one.
func (s *System) getWG() *sim.WaitGroup {
	if n := len(s.wgFree); n > 0 {
		wg := s.wgFree[n-1]
		s.wgFree[n-1] = nil
		s.wgFree = s.wgFree[:n-1]
		return wg
	}
	return sim.NewWaitGroup(s.eng)
}

func (s *System) putWG(wg *sim.WaitGroup) {
	s.wgFree = append(s.wgFree, wg)
}

// getReq pops a pooled server request or builds one with its completion
// closure pre-bound, so submitting a request never allocates in steady
// state.
func (s *System) getReq() *serverReq {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree[n-1] = nil
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	r := &serverReq{}
	r.completeFn = r.complete
	return r
}

func (s *System) putReq(r *serverReq) {
	r.sv = nil
	r.client = nil
	r.wg = nil
	s.reqFree = append(s.reqFree, r)
}

// Config returns the deployment configuration.
func (s *System) Config() Config { return s.cfg }

// Servers returns the server list.
func (s *System) Servers() []*Server { return s.servers }

// AggregateBW returns the sum of persistent server bandwidths — the peak
// sustained throughput of the file system.
func (s *System) AggregateBW() float64 {
	return float64(s.cfg.Servers) * s.cfg.ServerBW
}

// File is a striped file. Files are laid out starting at a deterministic
// first server derived from creation order, like PVFS distributing files.
type File struct {
	sys   *System
	name  string
	first int // first server for offset 0

	// reqNames caches the per-server request-name strings, keyed by the
	// (app, direction) that last used each server, so the steady-state
	// transfer path formats no strings. The cache survives System.Reset.
	reqNames []reqName
}

type reqName struct {
	app, dir, name string
}

// Create creates (or truncates) a striped file. Re-creating a name returns
// the cached File object with its layout recomputed from the current
// creation order — indistinguishable from a fresh file, but reusable across
// runs without reallocation.
func (s *System) Create(name string) *File {
	f := s.files[name]
	if f == nil {
		f = &File{sys: s, name: name, reqNames: make([]reqName, s.cfg.Servers)}
		s.files[name] = f
	}
	f.first = s.nfiles % s.cfg.Servers
	s.nfiles++
	return f
}

// reqName returns the cached request name for server i, app and direction,
// formatting (and caching) it only on a miss.
func (f *File) reqName(i int, app, dir string) string {
	rn := &f.reqNames[i]
	if rn.name == "" || rn.app != app || rn.dir != dir {
		rn.app, rn.dir = app, dir
		rn.name = fmt.Sprintf("%s@%s[%d]%s", app, f.name, i, dir)
	}
	return rn.name
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Request describes one application-level write against the file system.
// The simulator aggregates the per-process requests of one application round
// into a single Request; Weight carries the number of underlying client
// streams so that servers share bandwidth proportionally to the real
// request pressure, and RateCap models the writers' total injection limit.
type Request struct {
	App     string  // application identity (used by Exclusive scheduling)
	Offset  int64   // byte offset in the file
	Length  int64   // byte count
	Weight  float64 // concurrent client streams this request represents
	RateCap float64 // total injection bandwidth cap, 0 = unlimited

	// ClientLink is the issuing application's NIC link; required when the
	// file system is deployed with an explicit fabric, ignored otherwise.
	ClientLink *fabric.Link
}

// Write performs the request synchronously from process p, blocking until
// every server involved has absorbed its share. It returns the elapsed
// virtual time.
func (f *File) Write(p *sim.Proc, req Request) float64 {
	return f.transfer(p, req, "w")
}

// Read performs a read request synchronously from process p. Reads are
// serviced by the same per-server resources as writes — on a storage server
// the disk heads and the NICs are shared between directions, which is why
// read traffic from one application interferes with another's writes. With
// a cache-enabled store, reads of recently-written data are serviced at
// cache speed, like the writes that produced them.
func (f *File) Read(p *sim.Proc, req Request) float64 {
	return f.transfer(p, req, "r")
}

func (f *File) transfer(p *sim.Proc, req Request, dir string) float64 {
	start := p.Now()
	if req.Length <= 0 {
		return 0
	}
	if req.Weight <= 0 {
		req.Weight = 1
	}
	sys := f.sys
	// The striping scratch is safe to share system-wide: between filling it
	// and the last submit below, the process never parks, and submit paths
	// only enqueue completions (they never re-enter transfer).
	per := PerServerBytesInto(sys.perScratch, req.Offset, req.Length, sys.cfg.StripeBytes, sys.cfg.Servers, f.first)
	touched := 0
	for _, b := range per {
		if b > 0 {
			touched++
		}
	}
	wg := sys.getWG()
	perWeight := req.Weight / float64(touched)
	var perCap float64
	if req.RateCap > 0 {
		perCap = req.RateCap / float64(touched)
	}
	for i, b := range per {
		if b == 0 {
			continue
		}
		wg.Add(1)
		r := sys.getReq()
		r.sv = sys.servers[i]
		r.app = req.App
		r.name = f.reqName(i, req.App, dir)
		r.bytes = float64(b)
		r.weight = perWeight
		r.cap = perCap
		r.client = req.ClientLink
		r.wg = wg
		r.sv.submit(r)
	}
	wg.Wait(p)
	sys.putWG(wg)
	return p.Now() - start
}

// Server is one storage server.
type Server struct {
	sys   *System
	id    int
	cfg   Config
	store *disk.Store
	link  *fabric.Link // non-nil in fabric mode

	// linkScratch backs the (at most two-element) path slice handed to
	// fabric.Start, which copies it; reused across requests.
	linkScratch [2]*fabric.Link

	// FIFO / Exclusive queueing state.
	queue   []*serverReq
	current *serverReq // FIFO: in-service request
	curApp  string     // Exclusive: app being serviced
	inFlite int        // Exclusive: live jobs of curApp
}

// serverReq is one per-server share of an application request. Requests are
// pooled on the System; completeFn is the completion closure bound once at
// allocation so completions never allocate.
type serverReq struct {
	sv         *Server
	app        string
	name       string
	bytes      float64
	weight     float64
	cap        float64
	client     *fabric.Link
	wg         *sim.WaitGroup
	completeFn func()
}

// complete notifies the issuing transfer, advances the server's queueing
// policy and returns the request to the pool.
func (r *serverReq) complete() {
	sv := r.sv
	if r.wg != nil {
		r.wg.Done()
	}
	sv.finished(r)
	sv.sys.putReq(r)
}

func newServer(sys *System, eng *sim.Engine, id int, cfg Config) *Server {
	sv := &Server{
		sys: sys,
		id:  id,
		cfg: cfg,
		store: disk.New(eng, fmt.Sprintf("srv%d", id), disk.Params{
			DiskBW:     cfg.ServerBW,
			CacheBW:    cfg.CacheBW,
			CacheBytes: cfg.CacheBytes,
		}),
	}
	if cfg.Fabric != nil {
		sv.link = cfg.Fabric.NewLink(fmt.Sprintf("srv%d", id), cfg.ServerBW)
	}
	return sv
}

// Link returns the server's fabric link (nil without an explicit fabric).
func (sv *Server) Link() *fabric.Link { return sv.link }

// Store exposes the server's storage target (for tests and metrics).
func (sv *Server) Store() *disk.Store { return sv.store }

// ID returns the server index.
func (sv *Server) ID() int { return sv.id }

func (sv *Server) submit(r *serverReq) {
	switch sv.cfg.Policy {
	case Share:
		sv.start(r)
	case FIFO:
		sv.queue = append(sv.queue, r)
		sv.pumpFIFO()
	case Exclusive:
		sv.queue = append(sv.queue, r)
		sv.pumpExclusive()
	default:
		panic("pfs: unknown scheduling policy")
	}
}

// start launches the request on the store (or, in fabric mode, as a flow
// crossing the client NIC and the server link).
func (sv *Server) start(r *serverReq) {
	if sv.cfg.Fabric != nil {
		sv.linkScratch[0] = sv.link
		links := sv.linkScratch[:1]
		if r.client != nil {
			links = append(links, r.client)
		}
		sv.cfg.Fabric.Start(r.name, r.bytes, r.weight, links, r.completeFn)
		return
	}
	sv.store.Resource().Submit(r.name, r.bytes, r.weight, r.cap, r.completeFn)
}

func (sv *Server) finished(r *serverReq) {
	switch sv.cfg.Policy {
	case FIFO:
		if sv.current == r {
			sv.current = nil
		}
		sv.pumpFIFO()
	case Exclusive:
		sv.inFlite--
		sv.pumpExclusive()
	}
}

func (sv *Server) pumpFIFO() {
	if sv.current != nil || len(sv.queue) == 0 {
		return
	}
	// Pop by copy-down so the queue keeps one stable backing array.
	r := sv.queue[0]
	copy(sv.queue, sv.queue[1:])
	sv.queue[len(sv.queue)-1] = nil
	sv.queue = sv.queue[:len(sv.queue)-1]
	sv.current = r
	sv.start(r)
}

func (sv *Server) pumpExclusive() {
	if sv.inFlite == 0 {
		sv.curApp = ""
	}
	if len(sv.queue) == 0 {
		return
	}
	if sv.curApp == "" {
		sv.curApp = sv.queue[0].app
	}
	// Admit every queued request of the active application, compacting the
	// rest in place (start never re-enters the pump synchronously:
	// completions arrive via posted callbacks).
	keep := sv.queue[:0]
	for _, r := range sv.queue {
		if r.app == sv.curApp {
			sv.inFlite++
			sv.start(r)
		} else {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(sv.queue); i++ {
		sv.queue[i] = nil
	}
	sv.queue = keep
}
