package trace

import (
	"bytes"
	"testing"
)

// fuzzSample encodes a valid trace in memory for the fuzz corpus (the
// *testing.F twin of writeSample).
func fuzzSample(f *testing.F, hdr Header, opts Options, evs []Event) []byte {
	f.Helper()
	var b bytes.Buffer
	w, err := NewWriterOptions(&b, hdr, opts)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range evs {
		w.Record(ev)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return b.Bytes()
}

// FuzzReader feeds arbitrary bytes through the trace reader, in both strict
// and lenient (truncation-tolerant) modes: calciom-replay opens operator
// files, and a corrupt or truncated trace must produce an error or a
// truncation report, never a panic or a runaway allocation. Seeds are the
// golden-bytes corpus: a plain version-3 file, one with sync records, the
// version-1 and version-2 encodings pinned by the compatibility tests, and
// a mid-record truncation.
func FuzzReader(f *testing.F) {
	events := []Event{
		{Type: EvRegister, Time: 1.5, SID: 7, App: "ab", Cores: 3},
		{Type: EvPrepare, Time: 2, SID: 7, Info: map[string]string{"b": "2", "a": "1"}},
		{Type: EvInform, Time: 2.5, SID: 7, Bytes: 8, Target: "bb1"},
		{Type: EvGrant, Time: 2.5, SID: 7, Target: "bb1"},
	}
	hdr := Header{Source: SourceDaemon, Policy: "fcfs"}
	plain := fuzzSample(f, hdr, Options{}, events)
	f.Add(plain)
	f.Add(fuzzSample(f, hdr, Options{SyncEvery: 1}, events))
	f.Add(plain[:len(plain)-9])               // trailer cut mid-record
	f.Add(plain[:14])                         // header cut mid-JSON
	f.Add([]byte("CALTRACE\x03\x00\xff\xff")) // header length past EOF
	f.Add([]byte("" +
		"CALTRACE" + "\x02\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		"\x01\x00\x00\x00\x00\x00\x00\xf8\x3f\x07\x00\x00\x00\x00\x00\x02\x00ab\x03\x00\x00\x00" +
		"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("" +
		"CALTRACE" + "\x01\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		"\x01\x00\x00\x00\x00\x00\x00\xf8\x3f\x07\x00\x00\x00\x02\x00ab\x03\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, lenient := range []bool{false, true} {
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				return
			}
			r.SetLenient(lenient)
			var ev Event
			// Every successful Next consumes at least a record prelude, so
			// the loop is bounded by the input length; the cap is a backstop.
			for i := 0; i <= len(data); i++ {
				if err := r.Next(&ev); err != nil {
					break
				}
			}
		}
	})
}
