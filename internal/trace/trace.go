// Package trace defines the calciomd coordination trace: a compact,
// versioned, append-only event log of everything the arbitration goroutine
// did — requests that mutated coordination state, explicit re-arbitrations,
// and the authorization flips they produced — precise enough that
// internal/replay can re-drive the recorded run through core.Arbiter and
// reproduce the grant sequence event for event, or re-arbitrate the same
// arrival pattern under a different policy.
//
// # File format (version 3)
//
// A trace file is:
//
//	magic   8 bytes  "CALTRACE"
//	version u16      format version (currently 3)
//	header  u16 len + that many bytes of JSON (Header)
//	records ...      until the trailer
//	trailer 0xFF, f64 time, u64 recorded, u64 dropped
//
// Interleaved with the event records, version-3 writers may emit sync
// records (type 0xFE, u64 recorded-so-far, u64 dropped-so-far) followed by
// a buffer flush. They are stream bookkeeping, not events: readers consume
// them transparently and they are not counted in the trailer's record
// count. Their purpose is crash consistency — a recorder killed without
// Close leaves a file whose last sync point bounds what was durably
// written, so a lenient reader (ReadLenient) can recover every complete
// record and report the drop count as of the last sync instead of refusing
// the whole file.
//
// Every record is little-endian and self-delimiting:
//
//	type    u8       one of the Ev* constants
//	time    f64      coordination clock, seconds (monotone per coordination
//	                 domain: per storage target daemon-side, per client for
//	                 client captures)
//	sid     u32      session identity (assigned at register; 0 = none)
//	target  u16 len + bytes   storage target ("" = the default target);
//	                 version-2 records only — a version-1 record has no
//	                 target field and reads back as target ""
//	extras  ...      type-specific, see the table below
//
// Per-type extras:
//
//	EvRegister    u16 name len + name bytes, u32 cores
//	EvPrepare     u16 pair count, then per pair u16 len + key, u16 len + val
//	                (keys sorted, so encoding is deterministic)
//	EvInform      f64 bytes done (0 = none reported)
//	EvProgress    f64 bytes done
//	EvRelease     f64 bytes done
//	EvComplete, EvCheck, EvWait, EvEnd, EvUnregister,
//	EvRecheck, EvGrant, EvRevoke   — no extras
//
// Versioning rules: the magic and version fields never move. A reader
// rejects versions it does not know. Additive changes (new event types, new
// header fields) bump the version; readers for version N+1 accept version N.
// The trailer is mandatory — a file that ends without one was truncated
// (the writer died before Close) and Read reports ErrTruncated.
//
// Version history: version 1 had no per-record target field (every event
// belongs to the single coordination domain); version 2 inserts the target
// between sid and the extras on every record, carrying the storage target
// whose per-target arbiter handled the event; version 3 adds the 0xFE sync
// record. Version-1 files read back with every Target empty, which replays
// as one shard — the single-target behavior they recorded.
//
// # Writer discipline
//
// Writer.Record is called from the daemon's arbitration goroutine, so it
// must never block and never allocate: events are passed by value through a
// fixed-capacity channel to a drain goroutine that owns all encoding and
// file I/O. When the channel is full the event is dropped and counted
// instead of stalling arbitration; the drop count is written into the
// trailer and surfaced by the reader, and replay refuses lossy traces (a
// gap would make the reproduction silently diverge).
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Version is the trace format version this package writes.
const Version = 3

var magic = [8]byte{'C', 'A', 'L', 'T', 'R', 'A', 'C', 'E'}

// Type identifies one kind of trace event.
type Type uint8

// Event types. The request events mirror the wire protocol verbs that
// mutate coordination state (error responses are not recorded — they have
// no state effect); EvUnregister is a session leaving (disconnect or
// eviction); EvRecheck is an arbitration not implied by a request event (a
// delay-policy recheck timer, or the re-arbitration after a mid-phase
// session vanished); EvGrant/EvRevoke are outcome events — the
// authorization flips one arbitration produced, in delivery order.
const (
	EvRegister Type = iota + 1
	EvPrepare
	EvComplete
	EvInform
	EvProgress
	EvCheck
	EvWait
	EvRelease
	EvEnd
	EvUnregister
	EvRecheck
	EvGrant
	EvRevoke

	// evSync is a version-3 stream-bookkeeping record: the writer's
	// recorded/dropped counters at a durability point, followed by a flush.
	// Not an event — readers consume it transparently.
	evSync    Type = 0xFE
	evTrailer Type = 0xFF
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case EvRegister:
		return "register"
	case EvPrepare:
		return "prepare"
	case EvComplete:
		return "complete"
	case EvInform:
		return "inform"
	case EvProgress:
		return "progress"
	case EvCheck:
		return "check"
	case EvWait:
		return "wait"
	case EvRelease:
		return "release"
	case EvEnd:
		return "end"
	case EvUnregister:
		return "unregister"
	case EvRecheck:
		return "recheck"
	case EvGrant:
		return "grant"
	case EvRevoke:
		return "revoke"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Event is one trace record. It is passed by value end to end — Record
// copies it into the writer's channel, Reader.Next fills the caller's —
// so the hot path never allocates for it. Only the fields relevant to the
// Type are meaningful; the rest are zero.
type Event struct {
	Type  Type
	Time  float64 // coordination clock, seconds
	SID   uint32  // session identity; 0 for EvRecheck
	Cores int32   // EvRegister
	Bytes float64 // EvInform, EvProgress, EvRelease: bytes done (0 = none)
	App   string  // EvRegister: application name
	// Target is the storage target whose coordination domain the event
	// belongs to; "" is the default target (and the only value version-1
	// traces can carry).
	Target string
	// Info is the EvPrepare payload. It is recorded by reference: the
	// recorder must not mutate the map after Record (the daemon's request
	// maps are write-once by construction).
	Info map[string]string
}

// Header is the one-time JSON blob after the magic: where the trace came
// from and enough of the recording configuration that replay can rebuild
// the recording policy and its performance model.
type Header struct {
	// Source is "calciomd" for daemon-side traces (authoritative: recorded
	// inside the arbitration goroutine, outcome events included) or
	// "client" for client-side captures (observational: per-client send
	// times, grant events are client-observed, exact verification is not
	// available).
	Source string `json:"source"`
	// Policy is the recording policy as configured ("fcfs", "interrupt",
	// "interfere", "delay").
	Policy string `json:"policy"`
	// DelayOverlap, FSMiBps and ProcNICMiBps mirror the daemon
	// configuration so replay can rebuild the delay policy and the
	// performance model.
	DelayOverlap float64 `json:"delay_overlap,omitempty"`
	FSMiBps      float64 `json:"fs_mibps,omitempty"`
	ProcNICMiBps float64 `json:"proc_nic_mibps,omitempty"`
}

// SourceDaemon and SourceClient are the recognized Header.Source values.
const (
	SourceDaemon = "calciomd"
	SourceClient = "client"
)

// DefaultBuffer is the writer's default in-flight event capacity.
const DefaultBuffer = 1 << 16

// Writer records events asynchronously: Record hands the event to a drain
// goroutine through a fixed-capacity channel and returns immediately.
// Record never blocks and never allocates; overflow is counted in Dropped
// instead. One goroutine may call Record at a time per ordering guarantee
// domain (the daemon's arbitration goroutine); concurrent Record from many
// goroutines is safe but interleaves events in channel order.
//
// Close must not race Record: stop recording first (the daemon closes the
// writer only after the arbitration loop has exited).
type Writer struct {
	ch   chan Event
	quit chan struct{}
	done chan struct{}
	once sync.Once

	recorded atomic.Uint64 // events accepted into the channel
	dropped  atomic.Uint64

	syncEvery    int           // emit a sync record every N encoded events (0 = never)
	syncInterval time.Duration // and at least this often while events flow (0 = never)

	bw  *bufio.Writer
	buf []byte // encoding scratch, owned by the drain goroutine
	err error  // first write error, surfaced by Close
}

// Options configures a Writer beyond the mandatory header.
type Options struct {
	// Buffer is the in-flight event capacity; <= 0 means DefaultBuffer.
	Buffer int
	// SyncEvery emits a sync record and flushes the output buffer every N
	// encoded events, bounding how much a crashed recorder loses. 0 means
	// never; the trailer at Close is then the only durability point.
	SyncEvery int
	// SyncInterval additionally emits a sync point when events have been
	// encoded but none flushed for this long — so a lightly loaded daemon's
	// trace is still near-complete after a kill -9. 0 disables the timer.
	SyncInterval time.Duration
}

// DefaultSyncEvery and DefaultSyncInterval are the sync cadence calciomd
// records with: a kill -9 loses at most 4096 events or one second of tail.
const (
	DefaultSyncEvery    = 4096
	DefaultSyncInterval = time.Second
)

// NewWriter writes the magic, version and header synchronously (so
// configuration errors surface immediately), then starts the drain
// goroutine. buffer <= 0 means DefaultBuffer. No sync records are emitted;
// use NewWriterOptions for crash-consistent recording.
func NewWriter(w io.Writer, hdr Header, buffer int) (*Writer, error) {
	return NewWriterOptions(w, hdr, Options{Buffer: buffer})
}

// NewWriterOptions is NewWriter with an explicit sync cadence.
func NewWriterOptions(w io.Writer, hdr Header, opts Options) (*Writer, error) {
	if hdr.Source == "" {
		hdr.Source = SourceDaemon
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if len(hj) > math.MaxUint16 {
		return nil, fmt.Errorf("trace: header too large (%d bytes)", len(hj))
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	tw := &Writer{
		ch:           make(chan Event, buffer),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		syncEvery:    opts.SyncEvery,
		syncInterval: opts.SyncInterval,
		bw:           bufio.NewWriter(w),
	}
	tw.bw.Write(magic[:])
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], Version)
	tw.bw.Write(u16[:])
	binary.LittleEndian.PutUint16(u16[:], uint16(len(hj)))
	tw.bw.Write(u16[:])
	tw.bw.Write(hj)
	if err := tw.bw.Flush(); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	go tw.drain()
	return tw, nil
}

// Record enqueues one event. It never blocks: when the buffer is full the
// event is dropped and counted. Safe to call on the arbitration hot path —
// the event travels by value, so Record performs no allocation.
func (w *Writer) Record(ev Event) {
	select {
	case w.ch <- ev:
		w.recorded.Add(1)
	default:
		w.dropped.Add(1)
	}
}

// Recorded returns the number of events accepted so far.
func (w *Writer) Recorded() uint64 { return w.recorded.Load() }

// Dropped returns the number of events dropped on overflow so far.
func (w *Writer) Dropped() uint64 { return w.dropped.Load() }

// Close drains the remaining events, writes the trailer and flushes. It
// returns the first write error, if any. Close is idempotent; Record calls
// racing Close may be counted as dropped.
func (w *Writer) Close() error {
	w.once.Do(func() { close(w.quit) })
	<-w.done
	return w.err
}

func (w *Writer) drain() {
	defer close(w.done)
	var encoded uint64 // events actually encoded, the drain goroutine's view
	var sinceSync uint64
	var tick <-chan time.Time
	if w.syncInterval > 0 {
		t := time.NewTicker(w.syncInterval)
		defer t.Stop()
		tick = t.C
	}
	sync := func() {
		if sinceSync == 0 {
			return
		}
		b := w.buf[:0]
		b = append(b, byte(evSync))
		b = binary.LittleEndian.AppendUint64(b, encoded)
		b = binary.LittleEndian.AppendUint64(b, w.dropped.Load())
		w.buf = b
		w.write(b)
		if err := w.bw.Flush(); err != nil && w.err == nil {
			w.err = fmt.Errorf("trace: flush: %w", err)
		}
		sinceSync = 0
	}
	handle := func(ev Event) {
		w.encode(ev)
		encoded++
		sinceSync++
		if w.syncEvery > 0 && sinceSync >= uint64(w.syncEvery) {
			sync()
		}
	}
	for {
		select {
		case ev := <-w.ch:
			handle(ev)
		case <-tick:
			sync()
		case <-w.quit:
			for {
				select {
				case ev := <-w.ch:
					handle(ev)
					continue
				default:
				}
				break
			}
			w.buf = w.buf[:0]
			w.buf = append(w.buf, byte(evTrailer))
			w.buf = le64(w.buf, 0) // trailer time, reserved
			w.buf = binary.LittleEndian.AppendUint64(w.buf, w.recorded.Load())
			w.buf = binary.LittleEndian.AppendUint64(w.buf, w.dropped.Load())
			w.write(w.buf)
			if err := w.bw.Flush(); err != nil && w.err == nil {
				w.err = fmt.Errorf("trace: flush: %w", err)
			}
			return
		}
	}
}

func le64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(b); err != nil {
		w.err = fmt.Errorf("trace: write: %w", err)
	}
}

// encode serializes one record into the scratch buffer and writes it. It
// runs on the drain goroutine only. A record the format cannot represent
// (a string beyond 64 KiB) fails the whole recording: w.err is set, no
// trailer is ever written, and the file reads back as truncated — a loud
// failure instead of silently altering data the replay depends on.
func (w *Writer) encode(ev Event) {
	if w.err != nil {
		return
	}
	b := w.buf[:0]
	b = append(b, byte(ev.Type))
	b = le64(b, ev.Time)
	b = binary.LittleEndian.AppendUint32(b, ev.SID)
	if b = w.appendString(b, ev.Target); b == nil {
		return
	}
	switch ev.Type {
	case EvRegister:
		if b = w.appendString(b, ev.App); b == nil {
			return
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(ev.Cores))
	case EvPrepare:
		if len(ev.Info) > math.MaxUint16 {
			w.err = fmt.Errorf("trace: unencodable record: info with %d pairs", len(ev.Info))
			return
		}
		keys := make([]string, 0, len(ev.Info))
		for k := range ev.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(keys)))
		for _, k := range keys {
			if b = w.appendString(b, k); b == nil {
				return
			}
			if b = w.appendString(b, ev.Info[k]); b == nil {
				return
			}
		}
	case EvInform, EvProgress, EvRelease:
		b = le64(b, ev.Bytes)
	}
	w.buf = b
	w.write(b)
}

// appendString appends a u16-length-prefixed string, or sets w.err and
// returns nil when the string cannot be represented.
func (w *Writer) appendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		w.err = fmt.Errorf("trace: unencodable record: string of %d bytes exceeds the 64 KiB field limit", len(s))
		return nil
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// ErrTruncated reports a trace that ends without a trailer: the recorder
// died before Close, so the tail of the run is missing.
var ErrTruncated = errors.New("trace: truncated (no trailer)")

// Reader decodes a trace stream: NewReader parses the magic, version and
// header; Next returns records until the trailer, then io.EOF.
type Reader struct {
	r       *bufio.Reader
	hdr     Header
	version uint16

	done     bool
	recorded uint64
	dropped  uint64
	read     uint64

	// lenient tolerates a torn tail: when set, a stream that ends without a
	// trailer (or mid-record) makes Next return io.EOF after the last
	// complete record instead of an error, with Truncated reporting what
	// happened and Dropped falling back to the last sync point's counter.
	lenient    bool
	truncated  bool
	syncRead   uint64 // recorded counter from the last sync record seen
	syncDrop   uint64 // dropped counter from the last sync record seen
	sawSync    bool
	truncAfter uint64 // records successfully read before the tear

	// targets interns target strings: a long trace repeats a handful of
	// target names on every record, so Next allocates each name once.
	targets map[string]string
	scratch []byte
}

// NewReader parses the stream preamble.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: not a calciom trace: %w", noEOF(err))
	}
	if m != magic {
		return nil, errors.New("trace: not a calciom trace (bad magic)")
	}
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("trace: version: %w", noEOF(err))
	}
	version := binary.LittleEndian.Uint16(u16[:])
	if version == 0 || version > Version {
		return nil, fmt.Errorf("trace: unsupported format version %d (this build reads <= %d)", version, Version)
	}
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return nil, fmt.Errorf("trace: header length: %w", noEOF(err))
	}
	hj := make([]byte, binary.LittleEndian.Uint16(u16[:]))
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("trace: header: %w", noEOF(err))
	}
	var hdr Header
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	return &Reader{r: br, hdr: hdr, version: version}, nil
}

// Header returns the parsed trace header.
func (r *Reader) Header() Header { return r.hdr }

// Version returns the file's format version.
func (r *Reader) Version() int { return int(r.version) }

// Recorded and Dropped return the trailer counters; valid only after Next
// has returned io.EOF. On a truncated stream read leniently, Recorded is
// the number of records actually recovered and Dropped falls back to the
// last sync point's counter (0 when the tear precedes the first sync).
func (r *Reader) Recorded() uint64 { return r.recorded }

// Dropped returns the number of events the recorder dropped on overflow.
func (r *Reader) Dropped() uint64 { return r.dropped }

// SetLenient makes a torn tail non-fatal: when the stream ends without a
// trailer, mid-record, or at garbage (all the shapes a kill -9 leaves),
// Next returns io.EOF after the last complete record instead of an error.
// Truncated then reports that the tail was lost. Must be set before the
// first Next.
func (r *Reader) SetLenient(v bool) { r.lenient = v }

// Truncated reports whether a lenient read hit a torn tail: the recorder
// died before writing the trailer, so events after the truncation point are
// missing. Valid after Next has returned io.EOF.
func (r *Reader) Truncated() bool { return r.truncated }

// TruncatedAfter returns how many records were recovered before the tear
// (equal to Recorded on truncated streams). Valid once Truncated is true.
func (r *Reader) TruncatedAfter() uint64 { return r.truncAfter }

// Next fills ev with the next record. It returns io.EOF after the trailer,
// ErrTruncated when the stream ends without one, and a descriptive error on
// corruption — except under SetLenient, where a torn tail ends the stream
// cleanly. The Info map and App string are freshly allocated per record;
// everything else reuses ev's storage.
func (r *Reader) Next(ev *Event) error {
	if r.done {
		return io.EOF
	}
	err := r.next(ev)
	if err == nil || err == io.EOF || !r.lenient {
		return err
	}
	// Lenient mode: the stream tore here. Everything already returned is
	// complete and usable; surface the tear through Truncated, not an error.
	r.truncated = true
	r.truncAfter = r.read
	r.recorded = r.read
	if r.sawSync {
		r.dropped = r.syncDrop
	}
	r.done = true
	return io.EOF
}

func (r *Reader) next(ev *Event) error {
	var fixed [13]byte // type + time + sid
	var t Type
	for {
		if _, err := io.ReadFull(r.r, fixed[:1]); err != nil {
			if err == io.EOF {
				return ErrTruncated
			}
			return fmt.Errorf("trace: record: %w", err)
		}
		t = Type(fixed[0])
		if t != evSync {
			break
		}
		// Sync record: stream bookkeeping, consumed transparently.
		var sy [16]byte
		if _, err := io.ReadFull(r.r, sy[:]); err != nil {
			return fmt.Errorf("trace: sync: %w", noEOF(err))
		}
		r.syncRead = binary.LittleEndian.Uint64(sy[0:8])
		r.syncDrop = binary.LittleEndian.Uint64(sy[8:16])
		r.sawSync = true
		if r.syncRead != r.read {
			return fmt.Errorf("trace: corrupt: sync point records %d events, stream holds %d", r.syncRead, r.read)
		}
	}
	if t == evTrailer {
		var tr [24]byte
		if _, err := io.ReadFull(r.r, tr[:]); err != nil {
			return fmt.Errorf("trace: trailer: %w", noEOF(err))
		}
		r.recorded = binary.LittleEndian.Uint64(tr[8:16])
		r.dropped = binary.LittleEndian.Uint64(tr[16:24])
		if r.recorded != r.read {
			return fmt.Errorf("trace: corrupt: trailer records %d events, stream holds %d", r.recorded, r.read)
		}
		r.done = true
		return io.EOF
	}
	if t < EvRegister || t > EvRevoke {
		return fmt.Errorf("trace: corrupt: unknown record type %d", fixed[0])
	}
	if _, err := io.ReadFull(r.r, fixed[1:]); err != nil {
		return fmt.Errorf("trace: record %s: %w", t, noEOF(err))
	}
	*ev = Event{
		Type: t,
		Time: math.Float64frombits(binary.LittleEndian.Uint64(fixed[1:9])),
		SID:  binary.LittleEndian.Uint32(fixed[9:13]),
	}
	if r.version >= 2 {
		target, err := r.readTarget()
		if err != nil {
			return fmt.Errorf("trace: %s target: %w", t, err)
		}
		ev.Target = target
	}
	switch t {
	case EvRegister:
		name, err := r.readString()
		if err != nil {
			return fmt.Errorf("trace: register name: %w", err)
		}
		var cores [4]byte
		if _, err := io.ReadFull(r.r, cores[:]); err != nil {
			return fmt.Errorf("trace: register cores: %w", noEOF(err))
		}
		ev.App = name
		ev.Cores = int32(binary.LittleEndian.Uint32(cores[:]))
	case EvPrepare:
		var cnt [2]byte
		if _, err := io.ReadFull(r.r, cnt[:]); err != nil {
			return fmt.Errorf("trace: prepare count: %w", noEOF(err))
		}
		n := int(binary.LittleEndian.Uint16(cnt[:]))
		info := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k, err := r.readString()
			if err != nil {
				return fmt.Errorf("trace: prepare key: %w", err)
			}
			v, err := r.readString()
			if err != nil {
				return fmt.Errorf("trace: prepare value: %w", err)
			}
			info[k] = v
		}
		ev.Info = info
	case EvInform, EvProgress, EvRelease:
		var by [8]byte
		if _, err := io.ReadFull(r.r, by[:]); err != nil {
			return fmt.Errorf("trace: %s bytes: %w", t, noEOF(err))
		}
		ev.Bytes = math.Float64frombits(binary.LittleEndian.Uint64(by[:]))
	}
	r.read++
	return nil
}

// readTarget reads a u16-length-prefixed target name, interning it so a
// trace that repeats a few target names on millions of records allocates
// each name only once.
func (r *Reader) readTarget() (string, error) {
	var ln [2]byte
	if _, err := io.ReadFull(r.r, ln[:]); err != nil {
		return "", noEOF(err)
	}
	n := int(binary.LittleEndian.Uint16(ln[:]))
	if n == 0 {
		return "", nil
	}
	if cap(r.scratch) < n {
		r.scratch = make([]byte, n)
	}
	r.scratch = r.scratch[:n]
	if _, err := io.ReadFull(r.r, r.scratch); err != nil {
		return "", noEOF(err)
	}
	if s, ok := r.targets[string(r.scratch)]; ok {
		return s, nil
	}
	if r.targets == nil {
		r.targets = make(map[string]string)
	}
	s := string(r.scratch)
	r.targets[s] = s
	return s, nil
}

func (r *Reader) readString() (string, error) {
	var ln [2]byte
	if _, err := io.ReadFull(r.r, ln[:]); err != nil {
		return "", noEOF(err)
	}
	b := make([]byte, binary.LittleEndian.Uint16(ln[:]))
	if _, err := io.ReadFull(r.r, b); err != nil {
		return "", noEOF(err)
	}
	return string(b), nil
}

// noEOF converts a mid-record io.EOF into io.ErrUnexpectedEOF so callers
// can distinguish clean ends of stream from torn records.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Trace is a fully loaded trace.
type Trace struct {
	Header  Header
	Events  []Event
	Dropped uint64 // events the recorder dropped on overflow
	// Truncated reports a lenient load of a trailer-less (crashed-recorder)
	// file: Events holds every complete record up to the tear; whatever the
	// recorder did afterwards is missing. Dropped is then the last sync
	// point's counter — a lower bound on the true drop count.
	Truncated bool
}

// Read loads a whole trace from a stream.
func Read(r io.Reader) (*Trace, error) { return read(r, false) }

// ReadLenient loads a whole trace, tolerating a torn tail: a stream a
// crashed recorder left behind loads with Truncated set instead of failing.
func ReadLenient(r io.Reader) (*Trace, error) { return read(r, true) }

func read(r io.Reader, lenient bool) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	tr.SetLenient(lenient)
	out := &Trace{Header: tr.Header()}
	for {
		var ev Event
		if err := tr.Next(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		out.Events = append(out.Events, ev)
	}
	out.Dropped = tr.Dropped()
	out.Truncated = tr.Truncated()
	return out, nil
}

// Load reads a trace file.
func Load(path string) (*Trace, error) {
	return load(path, Read)
}

// LoadLenient reads a trace file, tolerating a torn tail (see ReadLenient).
func LoadLenient(path string) (*Trace, error) {
	return load(path, ReadLenient)
}

func load(path string, read func(io.Reader) (*Trace, error)) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Span returns the time range covered by the events (0,0 when empty).
func (t *Trace) Span() (first, last float64) {
	if len(t.Events) == 0 {
		return 0, 0
	}
	first = t.Events[0].Time
	last = first
	for _, ev := range t.Events {
		if ev.Time < first {
			first = ev.Time
		}
		if ev.Time > last {
			last = ev.Time
		}
	}
	return first, last
}
