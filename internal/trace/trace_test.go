package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sampleEvents is a fixed sequence exercising every record shape.
func sampleEvents() []Event {
	return []Event{
		{Type: EvRegister, Time: 0.25, SID: 1, App: "alpha", Cores: 64, Target: "ssd0"},
		{Type: EvPrepare, Time: 0.5, SID: 1, Info: map[string]string{"bytes_total": "1024", "cores": "64"}, Target: "ssd0"},
		{Type: EvInform, Time: 0.75, SID: 1, Bytes: 0, Target: "ssd0"},
		{Type: EvGrant, Time: 0.75, SID: 1, Target: "ssd0"},
		{Type: EvWait, Time: 1, SID: 1},
		{Type: EvRegister, Time: 1.5, SID: 2, App: "beta", Cores: 8},
		{Type: EvInform, Time: 1.75, SID: 2},
		{Type: EvWait, Time: 1.75, SID: 2},
		{Type: EvCheck, Time: 1.8, SID: 2},
		{Type: EvProgress, Time: 2, SID: 1, Bytes: 512},
		{Type: EvRelease, Time: 2.5, SID: 1, Bytes: 1024},
		{Type: EvComplete, Time: 2.5, SID: 1},
		{Type: EvEnd, Time: 2.5, SID: 1},
		{Type: EvRevoke, Time: 2.5, SID: 1},
		{Type: EvGrant, Time: 2.5, SID: 2},
		{Type: EvRecheck, Time: 3},
		{Type: EvEnd, Time: 3.5, SID: 2},
		{Type: EvUnregister, Time: 4, SID: 2},
	}
}

func writeSample(t *testing.T, hdr Header, evs []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr, len(evs)+8)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		w.Record(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	hdr := Header{Source: SourceDaemon, Policy: "delay", DelayOverlap: 0.5, FSMiBps: 1024, ProcNICMiBps: 8}
	evs := sampleEvents()
	data := writeSample(t, hdr, evs)

	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header != hdr {
		t.Fatalf("header round trip: got %+v want %+v", tr.Header, hdr)
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped)
	}
	if len(tr.Events) != len(evs) {
		t.Fatalf("got %d events, want %d", len(tr.Events), len(evs))
	}
	for i := range evs {
		if !reflect.DeepEqual(tr.Events[i], evs[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, tr.Events[i], evs[i])
		}
	}
	first, last := tr.Span()
	if first != 0.25 || last != 4 {
		t.Fatalf("span = %g..%g, want 0.25..4", first, last)
	}
}

// TestGoldenBytes pins the version-3 encoding byte for byte: a format
// change that breaks old traces must be deliberate (bump Version and update
// this test), never accidental. The record encoding is identical to
// version 2; version 3 only adds the optional sync record (pinned in
// TestSyncGoldenBytes), so a syncless file differs from version 2 in the
// version field alone.
func TestGoldenBytes(t *testing.T) {
	data := writeSample(t, Header{Source: SourceDaemon, Policy: "fcfs"}, []Event{
		{Type: EvRegister, Time: 1.5, SID: 7, App: "ab", Cores: 3},
		{Type: EvPrepare, Time: 2, SID: 7, Info: map[string]string{"b": "2", "a": "1"}},
		{Type: EvInform, Time: 2.5, SID: 7, Bytes: 8, Target: "bb1"},
		{Type: EvGrant, Time: 2.5, SID: 7, Target: "bb1"},
	})
	want := "" +
		// magic, version, header length, header JSON
		"CALTRACE" + "\x03\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		// register: type 1, time 1.5, sid 7, target "", "ab", cores 3
		"\x01\x00\x00\x00\x00\x00\x00\xf8\x3f\x07\x00\x00\x00\x00\x00\x02\x00ab\x03\x00\x00\x00" +
		// prepare: type 2, time 2.0, sid 7, target "", 2 sorted pairs a=1 b=2
		"\x02\x00\x00\x00\x00\x00\x00\x00\x40\x07\x00\x00\x00\x00\x00\x02\x00" +
		"\x01\x00a\x01\x001" + "\x01\x00b\x01\x002" +
		// inform: type 4, time 2.5, sid 7, target "bb1", bytes 8.0
		"\x04\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00\x03\x00bb1\x00\x00\x00\x00\x00\x00\x20\x40" +
		// grant: type 12, time 2.5, sid 7, target "bb1"
		"\x0c\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00\x03\x00bb1" +
		// trailer: 0xFF, time 0, recorded 4, dropped 0
		"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
	if string(data) != want {
		t.Fatalf("version-%d encoding changed:\n got %q\nwant %q", Version, data, want)
	}
}

// TestReadVersion2 pins backward compatibility with version-2 files (the
// pre-sync-record encoding, byte for byte the version-2 golden bytes).
func TestReadVersion2(t *testing.T) {
	v2 := "" +
		"CALTRACE" + "\x02\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		"\x01\x00\x00\x00\x00\x00\x00\xf8\x3f\x07\x00\x00\x00\x00\x00\x02\x00ab\x03\x00\x00\x00" +
		"\x02\x00\x00\x00\x00\x00\x00\x00\x40\x07\x00\x00\x00\x00\x00\x02\x00" +
		"\x01\x00a\x01\x001" + "\x01\x00b\x01\x002" +
		"\x04\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00\x03\x00bb1\x00\x00\x00\x00\x00\x00\x20\x40" +
		"\x0c\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00\x03\x00bb1" +
		"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
	tr, err := Read(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: EvRegister, Time: 1.5, SID: 7, App: "ab", Cores: 3},
		{Type: EvPrepare, Time: 2, SID: 7, Info: map[string]string{"a": "1", "b": "2"}},
		{Type: EvInform, Time: 2.5, SID: 7, Bytes: 8, Target: "bb1"},
		{Type: EvGrant, Time: 2.5, SID: 7, Target: "bb1"},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(tr.Events), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(tr.Events[i], want[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, tr.Events[i], want[i])
		}
	}
}

// TestReadVersion1 pins backward compatibility: a version-1 file (the
// pre-target encoding, byte for byte the old golden bytes) must still parse,
// with every event's Target empty — the single coordination domain such
// traces recorded.
func TestReadVersion1(t *testing.T) {
	v1 := "" +
		"CALTRACE" + "\x01\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		"\x01\x00\x00\x00\x00\x00\x00\xf8\x3f\x07\x00\x00\x00\x02\x00ab\x03\x00\x00\x00" +
		"\x02\x00\x00\x00\x00\x00\x00\x00\x40\x07\x00\x00\x00\x02\x00" +
		"\x01\x00a\x01\x001" + "\x01\x00b\x01\x002" +
		"\x04\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00\x20\x40" +
		"\x0c\x00\x00\x00\x00\x00\x00\x04\x40\x07\x00\x00\x00" +
		"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
	tr, err := Read(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: EvRegister, Time: 1.5, SID: 7, App: "ab", Cores: 3},
		{Type: EvPrepare, Time: 2, SID: 7, Info: map[string]string{"a": "1", "b": "2"}},
		{Type: EvInform, Time: 2.5, SID: 7, Bytes: 8},
		{Type: EvGrant, Time: 2.5, SID: 7},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(tr.Events), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(tr.Events[i], want[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, tr.Events[i], want[i])
		}
		if tr.Events[i].Target != "" {
			t.Fatalf("event %d: version-1 record decoded with target %q", i, tr.Events[i].Target)
		}
	}
}

func TestTruncatedAndCorrupt(t *testing.T) {
	full := writeSample(t, Header{Policy: "fcfs"}, sampleEvents())

	t.Run("no trailer", func(t *testing.T) {
		// Cut exactly the trailer (25 bytes): clean record boundary, no close.
		_, err := Read(bytes.NewReader(full[:len(full)-25]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("torn record", func(t *testing.T) {
		_, err := Read(bytes.NewReader(full[:len(full)-30]))
		if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want unexpected EOF, got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOTATRCE"), full[8:]...)
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want bad-magic error, got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		binary.LittleEndian.PutUint16(bad[8:10], Version+1)
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})
	t.Run("unknown record type", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		// First record starts right after magic+version+len+header JSON.
		off := 8 + 2 + 2 + int(binary.LittleEndian.Uint16(full[10:12]))
		bad[off] = 0x7E
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "unknown record type") {
			t.Fatalf("want corrupt-type error, got %v", err)
		}
	})
	t.Run("trailer count mismatch", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		binary.LittleEndian.PutUint64(bad[len(bad)-16:], 999)
		if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "trailer records") {
			t.Fatalf("want trailer-mismatch error, got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(nil)); err == nil {
			t.Fatal("want error on empty stream")
		}
	})
}

// blockingWriter blocks every Write until released, so the drain goroutine
// stalls and the channel fills up.
type blockingWriter struct {
	release chan struct{}
	buf     bytes.Buffer
	mu      sync.Mutex
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	<-b.release
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestOverflowDropAccounting fills a tiny buffer past capacity while the
// drain goroutine is stalled: the surplus must be dropped (never blocking
// the recorder), counted, written into the trailer and surfaced by the
// reader — and replayable consumers can see the trace is lossy.
func TestOverflowDropAccounting(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{})}
	close(bw.release) // let the header through
	w, err := NewWriter(bw, Header{Policy: "fcfs"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	bw.release = make(chan struct{}) // stall all record writes

	// Each record is bigger than the writer's internal buffer, so the very
	// first one the drain goroutine picks up blocks it inside Write; the
	// channel (capacity 4) then fills and the surplus must be dropped.
	const total = 64
	bigName := strings.Repeat("x", 8<<10)
	for i := 0; i < total; i++ {
		w.Record(Event{Type: EvRegister, Time: float64(i), SID: 1, App: bigName, Cores: 1})
	}
	rec, drop := w.Recorded(), w.Dropped()
	if rec < 4 || drop == 0 || rec+drop != total {
		t.Fatalf("recorded=%d dropped=%d, want >=4 recorded, >0 dropped, summing to %d", rec, drop, total)
	}
	// Channel capacity plus the few records the drain consumed first.
	if rec > 12 {
		t.Fatalf("recorded=%d, want <= 12 with a stalled drain and capacity 4", rec)
	}
	close(bw.release)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	bw.mu.Lock()
	data := append([]byte(nil), bw.buf.Bytes()...)
	bw.mu.Unlock()
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tr.Events)) != rec {
		t.Fatalf("reader got %d events, writer recorded %d", len(tr.Events), rec)
	}
	if tr.Dropped != drop {
		t.Fatalf("reader dropped=%d, writer dropped=%d", tr.Dropped, drop)
	}
}

// TestRecordDoesNotAllocate pins the hot-path contract: enqueueing an event
// (including one carrying a string and a map by reference) performs zero
// allocations.
func TestRecordDoesNotAllocate(t *testing.T) {
	w, err := NewWriter(io.Discard, Header{Policy: "fcfs"}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	info := map[string]string{"bytes_total": "4096"}
	ev := Event{Type: EvPrepare, Time: 1, SID: 3, Info: info, Target: "ssd0"}
	allocs := testing.AllocsPerRun(1000, func() {
		w.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestUnencodableStringFailsLoudly: a string beyond the format's 64 KiB
// field limit must fail the recording (Close errors, the file reads back
// truncated) instead of being silently truncated into data replay would
// trust.
func TestUnencodableStringFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Policy: "fcfs"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(Event{Type: EvRegister, Time: 1, SID: 1, App: strings.Repeat("x", 1<<16+1), Cores: 1})
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "unencodable") {
		t.Fatalf("want unencodable error from Close, got %v", err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTruncated) {
		t.Fatalf("failed recording should read back as truncated, got %v", err)
	}
}

// TestSyncGoldenBytes pins the version-3 sync record encoding: 0xFE, u64
// recorded-so-far, u64 dropped-so-far, emitted after every SyncEvery events.
func TestSyncGoldenBytes(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterOptions(&buf, Header{Source: SourceDaemon, Policy: "fcfs"}, Options{Buffer: 8, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Record(Event{Type: EvCheck, Time: 1, SID: 1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	check := "\x06\x00\x00\x00\x00\x00\x00\xf0\x3f\x01\x00\x00\x00\x00\x00"
	want := "" +
		"CALTRACE" + "\x03\x00" + "\x25\x00" +
		`{"source":"calciomd","policy":"fcfs"}` +
		check + check +
		// sync: 0xFE, recorded 2, dropped 0
		"\xfe\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00" +
		check +
		// trailer: 0xFF, time 0, recorded 3, dropped 0
		"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x03\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
	if buf.String() != want {
		t.Fatalf("sync encoding changed:\n got %q\nwant %q", buf.Bytes(), want)
	}
	// Sync records are bookkeeping, not events: a normal read consumes them
	// transparently and reports only the 3 real records.
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 || tr.Truncated {
		t.Fatalf("got %d events truncated=%v, want 3 events, complete", len(tr.Events), tr.Truncated)
	}
}

// TestLenientTruncatedRead simulates a kill -9 mid-record: the strict
// reader refuses, the lenient reader recovers every complete record and
// reports the truncation instead.
func TestLenientTruncatedRead(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterOptions(&buf, Header{Policy: "fcfs"}, Options{Buffer: 16, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Record(Event{Type: EvCheck, Time: float64(i), SID: 1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cuts := []struct {
		name string
		cut  int // bytes removed from the end
		want int // complete records recoverable
	}{
		{"trailer only", 25, 5},
		{"torn record", 25 + 7, 4},
		{"at sync point", 25 + 15, 4}, // 5th record gone, 2nd sync intact
		{"torn sync", 25 + 15 + 5, 4},
		{"deep tear", 25 + 15 + 17 + 15 + 7, 2},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			data := full[:len(full)-tc.cut]
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Fatal("strict read accepted a truncated stream")
			}
			tr, err := ReadLenient(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("lenient read: %v", err)
			}
			if !tr.Truncated {
				t.Fatal("lenient read of torn stream: Truncated not set")
			}
			if len(tr.Events) != tc.want {
				t.Fatalf("recovered %d events, want %d", len(tr.Events), tc.want)
			}
			if tr.Dropped != 0 {
				t.Fatalf("dropped = %d, want 0", tr.Dropped)
			}
		})
	}

	// A complete stream read leniently is indistinguishable from a strict read.
	tr, err := ReadLenient(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Truncated || len(tr.Events) != 5 {
		t.Fatalf("complete stream: truncated=%v events=%d", tr.Truncated, len(tr.Events))
	}
}

// TestLenientReaderCounters pins the Reader-level lenient API surface used
// by calciom-replay's truncation report.
func TestLenientReaderCounters(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterOptions(&buf, Header{Policy: "fcfs"}, Options{Buffer: 8, SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w.Record(Event{Type: EvCheck, Time: float64(i), SID: 1})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data = data[:len(data)-25-17-7] // trailer, final sync, torn 4th record

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.SetLenient(true)
	var n int
	for {
		var ev Event
		if err := r.Next(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 || !r.Truncated() || r.TruncatedAfter() != 3 || r.Recorded() != 3 {
		t.Fatalf("n=%d truncated=%v after=%d recorded=%d, want 3/true/3/3",
			n, r.Truncated(), r.TruncatedAfter(), r.Recorded())
	}
}

func TestWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Policy: "fcfs"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(Event{Type: EvCheck, Time: 1, SID: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Record after Close must not panic; the event is simply dropped once
	// the buffer fills (the drain goroutine is gone).
	for i := 0; i < 8; i++ {
		w.Record(Event{Type: EvCheck, Time: 2, SID: 1})
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(tr.Events))
	}
}
