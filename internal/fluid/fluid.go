// Package fluid implements a capacity-sharing ("fluid flow") resource model
// on top of the sim engine.
//
// A Resource has a capacity in units/second (typically bytes/s). Jobs with a
// fixed amount of work share that capacity by weighted max-min fairness
// (water-filling): capacity is divided proportionally to job weights, except
// that a job never receives more than its own rate cap; surplus from capped
// jobs is redistributed to the others. Whenever the job set, a cap, or the
// capacity changes, rates are recomputed, in-flight progress is integrated,
// and the next completion event is rescheduled.
//
// This is the contention primitive of the whole simulator: a parallel file
// system server under concurrent load is a Resource, and "interference" is
// nothing more than jobs sharing its capacity.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Resource is a shared capacity. Not safe for concurrent use; all access
// happens in scheduler context, which the sim engine serializes.
type Resource struct {
	eng        *sim.Engine
	name       string
	capacity   float64
	initCap    float64 // capacity at construction, restored by Reset
	jobs       []*Job
	lastUpdate float64
	completion *sim.Timer

	// OnRateChange, if non-nil, is invoked after every rate reallocation
	// with the new total allocated rate. The disk cache model uses it to
	// integrate dirty bytes.
	OnRateChange func(totalRate float64)

	totalRate float64

	// Reallocation scratch, reused so the steady-state hot path performs
	// no allocations.
	finished []*Job
	uncapped []*Job

	// Job recycling. Completed and cancelled jobs retire (bounded) but are
	// not reused within the same run — callers may hold a finished job's
	// handle and read Done/Remaining. Reset moves retired jobs to the free
	// list, so a reused resource replays a run without re-paying its job
	// allocations.
	jobFree    []*Job
	jobRetired []*Job
}

// Job is a unit of work being serviced by a Resource.
type Job struct {
	res       *Resource
	name      string
	total     float64
	remaining float64
	weight    float64
	rateCap   float64 // 0 means uncapped
	rate      float64
	onDone    func()
	done      bool
	cancelled bool
	started   float64
}

// NewResource creates a resource with the given capacity (units/second).
func NewResource(eng *sim.Engine, name string, capacity float64) *Resource {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: negative or NaN capacity %v", capacity))
	}
	r := &Resource{eng: eng, name: name, capacity: capacity, initCap: capacity, lastUpdate: eng.Now()}
	r.completion = eng.NewTimer(r.onCompletion)
	return r
}

// Reset returns the resource to its just-constructed state on a freshly
// reset engine: no jobs, construction-time capacity, progress clock
// re-anchored at the engine's current time. The reallocation scratch
// survives, and retired jobs move to the free list so a reused resource
// replays a run allocation-free. Job handles from before the reset must not
// be used afterwards, as their structs are recycled.
func (r *Resource) Reset() {
	for _, j := range r.jobs {
		j.cancelled = true
		j.onDone = nil
		r.retire(j)
	}
	for i := range r.jobs {
		r.jobs[i] = nil
	}
	r.jobs = r.jobs[:0]
	r.jobFree = append(r.jobFree, r.jobRetired...)
	for i := range r.jobRetired {
		r.jobRetired[i] = nil
	}
	r.jobRetired = r.jobRetired[:0]
	r.capacity = r.initCap
	r.totalRate = 0
	r.lastUpdate = r.eng.Now()
	r.completion.Cancel()
}

// maxRetired bounds the retired-job list; beyond it, excess jobs are left
// to the garbage collector.
const maxRetired = 4096

func (r *Resource) retire(j *Job) {
	if len(r.jobRetired) < maxRetired {
		r.jobRetired = append(r.jobRetired, j)
	}
}

// getJob pops a pooled job or allocates a fresh one.
func (r *Resource) getJob() *Job {
	if n := len(r.jobFree); n > 0 {
		j := r.jobFree[n-1]
		r.jobFree[n-1] = nil
		r.jobFree = r.jobFree[:n-1]
		return j
	}
	return &Job{}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the current capacity.
func (r *Resource) Capacity() float64 { return r.capacity }

// TotalRate returns the currently allocated aggregate rate.
func (r *Resource) TotalRate() float64 { return r.totalRate }

// Active returns the number of in-flight jobs.
func (r *Resource) Active() int { return len(r.jobs) }

// SetCapacity changes the capacity and reallocates rates.
func (r *Resource) SetCapacity(c float64) {
	if c < 0 || math.IsNaN(c) {
		panic(fmt.Sprintf("fluid: negative or NaN capacity %v", c))
	}
	if c == r.capacity {
		return
	}
	r.advance()
	r.capacity = c
	r.reallocate()
}

// Submit adds a job of `work` units with the given fairness weight and rate
// cap (0 = uncapped). onDone runs in scheduler context when the job's work
// reaches zero. Work of zero completes on the next tick.
func (r *Resource) Submit(name string, work, weight, rateCap float64, onDone func()) *Job {
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("fluid: bad work %v", work))
	}
	if !(weight > 0) { // also rejects NaN
		panic(fmt.Sprintf("fluid: weight must be positive, got %v", weight))
	}
	if rateCap < 0 {
		panic(fmt.Sprintf("fluid: negative rate cap %v", rateCap))
	}
	j := r.getJob()
	*j = Job{
		res: r, name: name, total: work, remaining: work,
		weight: weight, rateCap: rateCap, onDone: onDone,
		started: r.eng.Now(),
	}
	r.advance()
	r.jobs = append(r.jobs, j)
	r.reallocate()
	return j
}

// Cancel removes an unfinished job from the resource. Its onDone callback
// never runs. Cancelling a finished or cancelled job is a no-op.
func (j *Job) Cancel() {
	if j.done || j.cancelled {
		return
	}
	r := j.res
	r.advance()
	j.cancelled = true
	r.remove(j)
	j.onDone = nil
	r.retire(j)
	r.reallocate()
}

// SetWeight changes the job's fairness weight.
func (j *Job) SetWeight(w float64) {
	if w <= 0 {
		panic("fluid: weight must be positive")
	}
	r := j.res
	r.advance()
	j.weight = w
	r.reallocate()
}

// SetRateCap changes the job's rate cap (0 = uncapped).
func (j *Job) SetRateCap(c float64) {
	if c < 0 {
		panic("fluid: negative rate cap")
	}
	r := j.res
	r.advance()
	j.rateCap = c
	r.reallocate()
}

// Remaining returns the work left, accurate as of the current virtual time.
func (j *Job) Remaining() float64 {
	if j.done || j.cancelled {
		return 0
	}
	j.res.advance()
	j.res.reallocate()
	return j.remaining
}

// Rate returns the currently allocated service rate.
func (j *Job) Rate() float64 { return j.rate }

// Done reports whether the job completed.
func (j *Job) Done() bool { return j.done }

// Started returns the submission time.
func (j *Job) Started() float64 { return j.started }

// Name returns the job name.
func (j *Job) Name() string { return j.name }

func (r *Resource) remove(j *Job) {
	for i, x := range r.jobs {
		if x == j {
			r.jobs = append(r.jobs[:i], r.jobs[i+1:]...)
			return
		}
	}
}

// advance integrates job progress from lastUpdate to now at current rates.
func (r *Resource) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpdate
	if dt < 0 {
		panic("fluid: time went backwards")
	}
	if dt > 0 {
		for _, j := range r.jobs {
			j.remaining -= j.rate * dt
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
	}
	r.lastUpdate = now
}

// eps returns the completion tolerance for a job: float error accumulated
// over repeated advances stays far below this.
func (j *Job) eps() float64 {
	e := j.total * 1e-9
	if e < 1e-6 {
		e = 1e-6
	}
	return e
}

// reallocate recomputes rates by water-filling and schedules the next
// completion event. Jobs already at (or within tolerance of) zero work are
// completed immediately.
func (r *Resource) reallocate() {
	// Complete anything that is effectively done first. Take ownership of
	// the batch scratch for the duration: OnRateChange may legally
	// re-enter reallocate (the disk cache model does), and a re-entrant
	// call must not scribble over this call's in-flight batch.
	finished := r.finished[:0]
	r.finished = nil
	live := r.jobs[:0]
	for _, j := range r.jobs {
		if j.remaining <= j.eps() {
			j.remaining = 0
			j.done = true
			j.rate = 0
			finished = append(finished, j)
		} else {
			live = append(live, j)
		}
	}
	// Clear the tail slots vacated by finished jobs so they don't leak
	// through the backing array.
	for i := len(live); i < len(live)+len(finished); i++ {
		r.jobs[i] = nil
	}
	r.jobs = live

	r.waterFill()

	// Schedule next completion.
	r.completion.Cancel()
	next := math.Inf(1)
	for _, j := range r.jobs {
		if j.rate > 0 {
			t := j.remaining / j.rate
			if t < next {
				next = t
			}
		}
	}
	if !math.IsInf(next, 1) {
		r.completion.Schedule(next)
	}

	if r.OnRateChange != nil {
		r.OnRateChange(r.totalRate)
	}
	for _, j := range finished {
		if j.onDone != nil {
			// Run the callback via the event queue so completion side
			// effects interleave deterministically with other events.
			r.eng.Post(j.onDone)
		}
	}
	for i, j := range finished {
		j.onDone = nil
		r.retire(j)
		finished[i] = nil
	}
	r.finished = finished[:0]
}

func (r *Resource) onCompletion() {
	r.advance()
	r.reallocate()
}

// waterFill assigns rates by weighted max-min fairness under per-job caps.
func (r *Resource) waterFill() {
	for _, j := range r.jobs {
		j.rate = 0
	}
	avail := r.capacity
	if cap(r.uncapped) < len(r.jobs) {
		r.uncapped = make([]*Job, len(r.jobs))
	}
	uncapped := r.uncapped[:len(r.jobs)]
	copy(uncapped, r.jobs)
	for len(uncapped) > 0 && avail > 0 {
		var wsum float64
		for _, j := range uncapped {
			wsum += j.weight
		}
		if wsum == 0 {
			break
		}
		perWeight := avail / wsum
		progressed := false
		keep := uncapped[:0]
		for _, j := range uncapped {
			fair := perWeight * j.weight
			if j.rateCap > 0 && j.rateCap < fair {
				j.rate = j.rateCap
				avail -= j.rateCap
				progressed = true
			} else {
				keep = append(keep, j)
			}
		}
		uncapped = keep
		if !progressed {
			for _, j := range uncapped {
				j.rate = perWeight * j.weight
			}
			avail = 0
			break
		}
	}
	var total float64
	for _, j := range r.jobs {
		total += j.rate
	}
	r.totalRate = total
	// Drop job pointers from the scratch so completed jobs can be GC'd.
	scratch := r.uncapped[:len(r.jobs)]
	for i := range scratch {
		scratch[i] = nil
	}
}
