package fluid

import "math"

// Flow describes one flow for the closed-form solver.
type Flow struct {
	Work   float64 // units of work to complete
	Weight float64 // fairness weight (> 0)
	Cap    float64 // max rate, 0 = uncapped
}

// Solver computes closed-form finish times under weighted max-min sharing
// with caps, reusing its internal scratch across calls: the per-step
// water-fill allocates nothing after the first use at a given flow count.
// A Solver is not safe for concurrent use; its zero value is ready.
type Solver struct {
	rates   []float64
	idx     []int
	rem     []float64
	active  []bool
	arrived []bool
}

// grow resizes the scratch for n flows, reusing capacity when possible.
func (s *Solver) grow(n int) {
	if cap(s.rates) < n {
		s.rates = make([]float64, n)
		s.idx = make([]int, 0, n)
		s.rem = make([]float64, n)
		s.active = make([]bool, n)
		s.arrived = make([]bool, n)
	}
	s.rates = s.rates[:n]
	s.rem = s.rem[:n]
	s.active = s.active[:n]
	s.arrived = s.arrived[:n]
}

// FinishTimes computes, analytically, when each flow completes if all flows
// start at t=0 on a resource of the given capacity under weighted max-min
// sharing with caps — the same allocation rule the simulated Resource uses.
// It returns one finish time per flow (math.Inf(1) if a flow can never
// finish, e.g. zero capacity and zero cap). The returned slice is freshly
// allocated and owned by the caller; only the intermediate scratch is
// reused.
//
// The algorithm steps from completion to completion: rates are constant
// between completions, so each step advances to the earliest remaining
// finish. O(n^2) in the number of flows.
func (s *Solver) FinishTimes(capacity float64, flows []Flow) []float64 {
	n := len(flows)
	s.grow(n)
	finish := make([]float64, n)
	rem, active := s.rem, s.active
	for i, f := range flows {
		rem[i] = f.Work
		active[i] = f.Work > 0
		if !active[i] {
			finish[i] = 0
		}
	}
	now := 0.0
	for {
		rates := s.waterFill(capacity, flows)
		// Earliest completion among active flows.
		best := math.Inf(1)
		for i := range flows {
			if active[i] && rates[i] > 0 {
				if t := rem[i] / rates[i]; t < best {
					best = t
				}
			}
		}
		if math.IsInf(best, 1) {
			// Nothing can progress; everything still active never ends.
			for i := range flows {
				if active[i] {
					finish[i] = math.Inf(1)
				}
			}
			return finish
		}
		now += best
		done := false
		for i := range flows {
			if !active[i] {
				continue
			}
			rem[i] -= rates[i] * best
			if rem[i] <= rem0eps(flows[i].Work) {
				rem[i] = 0
				active[i] = false
				finish[i] = now
				done = true
			}
		}
		if !done {
			// Numerical stall guard: force the minimum-remaining flow out.
			mi, mv := -1, math.Inf(1)
			for i := range flows {
				if active[i] && rates[i] > 0 && rem[i] < mv {
					mi, mv = i, rem[i]
				}
			}
			if mi < 0 {
				for i := range flows {
					if active[i] {
						finish[i] = math.Inf(1)
					}
				}
				return finish
			}
			active[mi] = false
			finish[mi] = now
		}
		all := true
		for i := range flows {
			if active[i] {
				all = false
				break
			}
		}
		if all {
			return finish
		}
	}
}

// FinishTimes is the convenience form of Solver.FinishTimes for one-off
// calls; repeated callers (∆-graph sweeps) should hold a Solver.
func FinishTimes(capacity float64, flows []Flow) []float64 {
	var s Solver
	return s.FinishTimes(capacity, flows)
}

func rem0eps(total float64) float64 {
	e := total * 1e-9
	if e < 1e-9 {
		e = 1e-9
	}
	return e
}

// waterFill mirrors Resource.waterFill for plain slices, writing rates into
// the solver's scratch (valid until the next call). It consumes s.rem and
// s.active as the current progress state.
func (s *Solver) waterFill(capacity float64, flows []Flow) []float64 {
	rates := s.rates
	for i := range rates {
		rates[i] = 0
	}
	avail := capacity
	idx := s.idx[:0]
	for i := range flows {
		if s.active[i] && s.rem[i] > 0 {
			idx = append(idx, i)
		}
	}
	for len(idx) > 0 && avail > 0 {
		var wsum float64
		for _, i := range idx {
			wsum += flows[i].Weight
		}
		if wsum == 0 {
			break
		}
		perWeight := avail / wsum
		progressed := false
		keep := idx[:0]
		for _, i := range idx {
			fair := perWeight * flows[i].Weight
			if flows[i].Cap > 0 && flows[i].Cap < fair {
				rates[i] = flows[i].Cap
				avail -= flows[i].Cap
				progressed = true
			} else {
				keep = append(keep, i)
			}
		}
		idx = keep
		if !progressed {
			for _, i := range idx {
				rates[i] = perWeight * flows[i].Weight
			}
			break
		}
	}
	s.idx = idx[:0]
	return rates
}
