package fluid

import "math"

// Flow describes one flow for the closed-form solver.
type Flow struct {
	Work   float64 // units of work to complete
	Weight float64 // fairness weight (> 0)
	Cap    float64 // max rate, 0 = uncapped
}

// FinishTimes computes, analytically, when each flow completes if all flows
// start at t=0 on a resource of the given capacity under weighted max-min
// sharing with caps — the same allocation rule the simulated Resource uses.
// It returns one finish time per flow (math.Inf(1) if a flow can never
// finish, e.g. zero capacity and zero cap).
//
// The algorithm steps from completion to completion: rates are constant
// between completions, so each step advances to the earliest remaining
// finish. O(n^2) in the number of flows.
func FinishTimes(capacity float64, flows []Flow) []float64 {
	n := len(flows)
	finish := make([]float64, n)
	rem := make([]float64, n)
	active := make([]bool, n)
	for i, f := range flows {
		rem[i] = f.Work
		active[i] = f.Work > 0
		if !active[i] {
			finish[i] = 0
		}
	}
	now := 0.0
	for {
		rates := waterFillFlows(capacity, flows, rem, active)
		// Earliest completion among active flows.
		best := math.Inf(1)
		for i := range flows {
			if active[i] && rates[i] > 0 {
				if t := rem[i] / rates[i]; t < best {
					best = t
				}
			}
		}
		if math.IsInf(best, 1) {
			// Nothing can progress; everything still active never ends.
			for i := range flows {
				if active[i] {
					finish[i] = math.Inf(1)
				}
			}
			return finish
		}
		now += best
		done := false
		for i := range flows {
			if !active[i] {
				continue
			}
			rem[i] -= rates[i] * best
			if rem[i] <= rem0eps(flows[i].Work) {
				rem[i] = 0
				active[i] = false
				finish[i] = now
				done = true
			}
		}
		if !done {
			// Numerical stall guard: force the minimum-remaining flow out.
			mi, mv := -1, math.Inf(1)
			for i := range flows {
				if active[i] && rates[i] > 0 && rem[i] < mv {
					mi, mv = i, rem[i]
				}
			}
			if mi < 0 {
				for i := range flows {
					if active[i] {
						finish[i] = math.Inf(1)
					}
				}
				return finish
			}
			active[mi] = false
			finish[mi] = now
		}
		all := true
		for i := range flows {
			if active[i] {
				all = false
				break
			}
		}
		if all {
			return finish
		}
	}
}

func rem0eps(total float64) float64 {
	e := total * 1e-9
	if e < 1e-9 {
		e = 1e-9
	}
	return e
}

// waterFillFlows mirrors Resource.waterFill for plain slices.
func waterFillFlows(capacity float64, flows []Flow, rem []float64, active []bool) []float64 {
	n := len(flows)
	rates := make([]float64, n)
	avail := capacity
	idx := make([]int, 0, n)
	for i := range flows {
		if active[i] && rem[i] > 0 {
			idx = append(idx, i)
		}
	}
	for len(idx) > 0 && avail > 0 {
		var wsum float64
		for _, i := range idx {
			wsum += flows[i].Weight
		}
		if wsum == 0 {
			break
		}
		perWeight := avail / wsum
		progressed := false
		keep := idx[:0]
		for _, i := range idx {
			fair := perWeight * flows[i].Weight
			if flows[i].Cap > 0 && flows[i].Cap < fair {
				rates[i] = flows[i].Cap
				avail -= flows[i].Cap
				progressed = true
			} else {
				keep = append(keep, i)
			}
		}
		idx = keep
		if !progressed {
			for _, i := range idx {
				rates[i] = perWeight * flows[i].Weight
			}
			break
		}
	}
	return rates
}
