package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(1, scale)
}

func TestSingleJobFullRate(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var done float64 = -1
	r.Submit("j", 1000, 1, 0, func() { done = e.Now() })
	e.Run()
	if !almostEq(done, 10, 1e-9) {
		t.Fatalf("completion at %v, want 10", done)
	}
}

func TestEqualSharing(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var t1, t2 float64
	r.Submit("a", 1000, 1, 0, func() { t1 = e.Now() })
	r.Submit("b", 1000, 1, 0, func() { t2 = e.Now() })
	e.Run()
	// Both share 50/50 and finish together at t=20.
	if !almostEq(t1, 20, 1e-9) || !almostEq(t2, 20, 1e-9) {
		t.Fatalf("completions %v %v, want 20 20", t1, t2)
	}
}

func TestWeightedSharing(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var tBig, tSmall float64
	// Big gets 3/4 of capacity, small 1/4.
	r.Submit("big", 300, 3, 0, func() { tBig = e.Now() })
	r.Submit("small", 100, 1, 0, func() { tSmall = e.Now() })
	e.Run()
	if !almostEq(tBig, 4, 1e-9) || !almostEq(tSmall, 4, 1e-9) {
		t.Fatalf("completions big=%v small=%v, want 4 4", tBig, tSmall)
	}
}

func TestRateCapRedistribution(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var tCapped, tFree float64
	// Capped job limited to 10; the other should get 90.
	r.Submit("capped", 100, 1, 10, func() { tCapped = e.Now() })
	r.Submit("free", 900, 1, 0, func() { tFree = e.Now() })
	e.Run()
	if !almostEq(tCapped, 10, 1e-9) {
		t.Fatalf("capped done at %v, want 10", tCapped)
	}
	if !almostEq(tFree, 10, 1e-9) {
		t.Fatalf("free done at %v, want 10 (90 B/s for 900)", tFree)
	}
}

func TestLateArrivalSlowsFirst(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var tA, tB float64
	r.Submit("a", 1000, 1, 0, func() { tA = e.Now() })
	e.Schedule(5, func() {
		r.Submit("b", 1000, 1, 0, func() { tB = e.Now() })
	})
	e.Run()
	// A runs alone 5s (500 done), then shares: remaining 500 at 50 B/s -> 15.
	if !almostEq(tA, 15, 1e-9) {
		t.Fatalf("tA = %v, want 15", tA)
	}
	// B: 500 done by t=15, then alone: 500 at 100 -> t=20.
	if !almostEq(tB, 20, 1e-9) {
		t.Fatalf("tB = %v, want 20", tB)
	}
}

func TestCancelReleasesShare(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var tB float64
	ja := r.Submit("a", 1e6, 1, 0, func() { t.Error("cancelled job completed") })
	r.Submit("b", 1000, 1, 0, func() { tB = e.Now() })
	e.Schedule(5, func() { ja.Cancel() })
	e.Run()
	// B gets 50 B/s for 5s (250), then full 100: (1000-250)/100 = 7.5 -> 12.5.
	if !almostEq(tB, 12.5, 1e-9) {
		t.Fatalf("tB = %v, want 12.5", tB)
	}
	if ja.Done() {
		t.Fatal("cancelled job reports done")
	}
}

func TestSetCapacity(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var done float64
	r.Submit("j", 1000, 1, 0, func() { done = e.Now() })
	e.Schedule(5, func() { r.SetCapacity(50) })
	e.Run()
	// 500 at 100, then 500 at 50 -> 5 + 10 = 15.
	if !almostEq(done, 15, 1e-9) {
		t.Fatalf("done = %v, want 15", done)
	}
}

func TestZeroCapacityStalls(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 0)
	r.Submit("j", 1000, 1, 0, nil)
	e.Schedule(10, func() { r.SetCapacity(100) })
	var done float64
	r.Submit("k", 500, 1, 0, func() { done = e.Now() })
	e.Run()
	// From t=10: 1500 total work, k has 500 weight-1 of 2 jobs: k at 50 B/s
	// finishes at t=20; j continues.
	if !almostEq(done, 20, 1e-9) {
		t.Fatalf("done = %v, want 20", done)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	fired := false
	r.Submit("empty", 0, 1, 0, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("zero-work job never completed")
	}
}

func TestSetWeightMidFlight(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	var tA float64
	ja := r.Submit("a", 1000, 1, 0, func() { tA = e.Now() })
	r.Submit("b", 1e9, 1, 0, nil)
	e.Schedule(5, func() { ja.SetWeight(3) })
	e.Schedule(20, func() {
		// Drain: cancel b so the run ends.
		for _, j := range []*Job{ja} {
			_ = j
		}
	})
	e.Run()
	// a: 5s at 50 (250), then 75 B/s: (1000-250)/75 = 10 -> t=15.
	if !almostEq(tA, 15, 1e-9) {
		t.Fatalf("tA = %v, want 15", tA)
	}
}

func TestRemainingQuery(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 100)
	j := r.Submit("j", 1000, 1, 0, nil)
	e.Schedule(3, func() {
		if got := j.Remaining(); !almostEq(got, 700, 1e-9) {
			t.Errorf("remaining = %v, want 700", got)
		}
	})
	e.Run()
	if j.Remaining() != 0 {
		t.Fatalf("remaining after completion = %v", j.Remaining())
	}
}

func TestSubmitValidation(t *testing.T) {
	e := sim.NewEngine()
	r := NewResource(e, "r", 10)
	for _, tc := range []struct {
		name               string
		work, weight, rcap float64
	}{
		{"negative work", -1, 1, 0},
		{"zero weight", 1, 0, 0},
		{"negative cap", 1, 1, -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			r.Submit("x", tc.work, tc.weight, tc.rcap, nil)
		}()
	}
}

// Property: simulated completions match the analytic solver for concurrent
// same-start jobs.
func TestPropertySimMatchesSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{
				Work:   1 + rng.Float64()*1e6,
				Weight: 1 + rng.Float64()*10,
			}
			if rng.Intn(2) == 0 {
				flows[i].Cap = 1 + rng.Float64()*100
			}
		}
		capacity := 10 + rng.Float64()*1000
		want := FinishTimes(capacity, flows)

		e := sim.NewEngine()
		r := NewResource(e, "r", capacity)
		got := make([]float64, n)
		for i, fl := range flows {
			i := i
			r.Submit("j", fl.Work, fl.Weight, fl.Cap, func() { got[i] = e.Now() })
		}
		e.Run()
		for i := range got {
			if !almostEq(got[i], want[i], 1e-6) {
				t.Logf("seed %d: job %d sim=%v solver=%v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: work is conserved — the sum of completed work equals the input,
// and completion times are consistent with capacity (total work / capacity
// <= makespan when nothing is capped).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		capacity := 50 + rng.Float64()*500
		var total float64
		flows := make([]Flow, n)
		for i := range flows {
			flows[i] = Flow{Work: 1 + rng.Float64()*1e5, Weight: 1 + rng.Float64()*5}
			total += flows[i].Work
		}
		fin := FinishTimes(capacity, flows)
		makespan := 0.0
		for _, t := range fin {
			if t > makespan {
				makespan = t
			}
		}
		// With no caps the resource is fully utilized until the last
		// completion: makespan == total/capacity.
		return almostEq(makespan, total/capacity, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: staggered solver agrees with simulated late arrivals.
func TestPropertyStaggeredMatchesSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		capacity := 10 + rng.Float64()*200
		flows := make([]Flow, n)
		starts := make([]float64, n)
		for i := range flows {
			flows[i] = Flow{Work: 1 + rng.Float64()*1e4, Weight: 1 + rng.Float64()*4}
			if rng.Intn(3) == 0 {
				flows[i].Cap = 1 + rng.Float64()*50
			}
			starts[i] = rng.Float64() * 20
		}
		want := StaggeredFinishTimes(capacity, flows, starts)

		e := sim.NewEngine()
		r := NewResource(e, "r", capacity)
		got := make([]float64, n)
		for i, fl := range flows {
			i, fl := i, fl
			e.At(starts[i], func() {
				r.Submit("j", fl.Work, fl.Weight, fl.Cap, func() { got[i] = e.Now() })
			})
		}
		e.Run()
		for i := range got {
			if !almostEq(got[i], want[i], 1e-6) {
				t.Logf("seed %d: job %d sim=%v solver=%v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFinishTimesInfinity(t *testing.T) {
	fin := FinishTimes(0, []Flow{{Work: 10, Weight: 1}})
	if !math.IsInf(fin[0], 1) {
		t.Fatalf("expected +Inf for zero capacity, got %v", fin[0])
	}
}

func TestStaggeredSimpleOverlap(t *testing.T) {
	// Two equal flows, second arrives at t=5: the paper's expected model.
	flows := []Flow{{Work: 1000, Weight: 1}, {Work: 1000, Weight: 1}}
	fin := StaggeredFinishTimes(100, flows, []float64{0, 5})
	// A alone 5s -> 500 left shared at 50 -> done t=15.
	// B: 500 done by 15, then alone -> t=20.
	if !almostEq(fin[0], 15, 1e-9) || !almostEq(fin[1], 20, 1e-9) {
		t.Fatalf("fin = %v, want [15 20]", fin)
	}
}

// TestSolverReuseMatchesFresh: a Solver reused across many differently-sized
// problems must return exactly what a fresh computation returns — stale
// scratch state must never leak between calls.
func TestSolverReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reused Solver
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		capacity := 1 + rng.Float64()*100
		flows := make([]Flow, n)
		starts := make([]float64, n)
		for i := range flows {
			flows[i] = Flow{Work: rng.Float64() * 1e4, Weight: 1 + rng.Float64()*4}
			if rng.Intn(3) == 0 {
				flows[i].Cap = rng.Float64() * 20
			}
			starts[i] = rng.Float64() * 50
		}
		got := reused.FinishTimes(capacity, flows)
		want := FinishTimes(capacity, flows)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d flow %d: reused %v fresh %v", trial, i, got[i], want[i])
			}
		}
		gotS := reused.StaggeredFinishTimes(capacity, flows, starts)
		wantS := StaggeredFinishTimes(capacity, flows, starts)
		for i := range gotS {
			if gotS[i] != wantS[i] && !(math.IsNaN(gotS[i]) && math.IsNaN(wantS[i])) {
				t.Fatalf("trial %d flow %d staggered: reused %v fresh %v", trial, i, gotS[i], wantS[i])
			}
		}
	}
}

// TestReallocateReentrant: OnRateChange may re-enter reallocate (the disk
// cache model's documented pattern). A re-entrant call that itself
// completes a job must not corrupt the outer call's completion batch.
func TestReallocateReentrant(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "r", 100)
	var completed []string
	reentered := false
	r.OnRateChange = func(float64) {
		if !reentered && eng.Now() > 0 {
			reentered = true
			// Zero-work job: completes inside this nested reallocate.
			r.Submit("nested", 0, 1, 0, func() { completed = append(completed, "nested") })
		}
	}
	r.Submit("outer", 100, 1, 0, func() { completed = append(completed, "outer") })
	eng.Run()
	if len(completed) != 2 {
		t.Fatalf("completed = %v, want both callbacks", completed)
	}
}

func TestNaNCapacityPanics(t *testing.T) {
	eng := sim.NewEngine()
	r := NewResource(eng, "r", 100)
	for i, fn := range []func(){
		func() { NewResource(eng, "bad", math.NaN()) },
		func() { r.SetCapacity(math.NaN()) },
		func() { r.Submit("j", 1, math.NaN(), 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic on NaN", i)
				}
			}()
			fn()
		}()
	}
}
