package fluid

import "math"

// StaggeredFinishTimes generalizes FinishTimes to flows that start at
// different times: flow i becomes active at starts[i] and completes when its
// work is done under weighted max-min sharing with whoever else is active.
// It returns absolute finish times (same clock as starts).
//
// This is the "expected" interference model of the paper's ∆-graphs: two
// identical applications offset by dt sharing the file system
// proportionally. Repeated callers (∆-graph sweeps) should hold a Solver
// and use its method form, which reuses the per-step water-fill scratch.
func StaggeredFinishTimes(capacity float64, flows []Flow, starts []float64) []float64 {
	var s Solver
	return s.StaggeredFinishTimes(capacity, flows, starts)
}

// StaggeredFinishTimes is the scratch-reusing form of the package-level
// function. The returned slice is freshly allocated and owned by the caller.
func (s *Solver) StaggeredFinishTimes(capacity float64, flows []Flow, starts []float64) []float64 {
	n := len(flows)
	if len(starts) != n {
		panic("fluid: starts length mismatch")
	}
	s.grow(n)
	finish := make([]float64, n)
	rem, arrived, active := s.rem, s.arrived, s.active
	for i, f := range flows {
		rem[i] = f.Work
		arrived[i] = false
		active[i] = false
		finish[i] = math.NaN()
	}

	now := math.Inf(1)
	for _, st := range starts {
		if st < now {
			now = st
		}
	}

	for {
		// Activate arrivals.
		for i := range flows {
			if !arrived[i] && starts[i] <= now {
				arrived[i] = true
				if rem[i] <= 0 {
					finish[i] = now
				} else {
					active[i] = true
				}
			}
		}
		// Done?
		allDone := true
		for i := range flows {
			if !arrived[i] || active[i] {
				allDone = false
				break
			}
		}
		if allDone {
			return finish
		}

		rates := s.waterFill(capacity, flows)

		// Next event: earliest completion or next arrival.
		next := math.Inf(1)
		for i := range flows {
			if active[i] && rates[i] > 0 {
				if t := now + rem[i]/rates[i]; t < next {
					next = t
				}
			}
		}
		for i := range flows {
			if !arrived[i] && starts[i] > now && starts[i] < next {
				next = starts[i]
			}
		}
		if math.IsInf(next, 1) {
			// Stalled flows can never finish.
			for i := range flows {
				if active[i] {
					finish[i] = math.Inf(1)
					active[i] = false
				}
			}
			// Remaining arrivals may still progress alone.
			stillArriving := false
			for i := range flows {
				if !arrived[i] {
					stillArriving = true
					if starts[i] > now {
						next = math.Min(next, starts[i])
					}
				}
			}
			if !stillArriving {
				return finish
			}
			now = next
			continue
		}

		dt := next - now
		for i := range flows {
			if active[i] {
				rem[i] -= rates[i] * dt
				if rem[i] <= rem0eps(flows[i].Work) {
					rem[i] = 0
					active[i] = false
					finish[i] = next
				}
			}
		}
		now = next
	}
}
