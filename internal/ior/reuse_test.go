package ior_test

import (
	"testing"

	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// reuseSpec builds a two-app platform spec around the given preset
// workloads — the configurations internal/ior/presets.go arms once at
// construction.
func reuseSpec(wA, wB ior.Workload) platform.Spec {
	return platform.Spec{
		FS:            pfs.Config{Servers: 4, StripeBytes: 1 << 20, ServerBW: 256 << 20},
		ProcNIC:       8 << 20,
		CommBWPerProc: 8 << 20,
		CommAlpha:     1e-6,
		CoordLatency:  1e-4,
		Apps: []platform.AppSpec{
			{Name: "cm1", Procs: 16, Nodes: 4, W: wA, Gran: ior.PerRound},
			{Name: "namd", Procs: 16, Nodes: 4, W: wB, Gran: ior.PerRound},
		},
	}
}

// TestReusedRunnerMatchesFreshEventForEvent is the ior.Reset regression for
// preset configurations: a run on a reused platform (Reset re-arms the
// runners; presets are never re-parsed) must emit exactly the same timeline
// — every compute/comm/write/read interval, in order, with identical
// endpoints — and the same phase statistics as a run on a fresh platform.
func TestReusedRunnerMatchesFreshEventForEvent(t *testing.T) {
	spec := reuseSpec(ior.CM1Workload(2), ior.NAMDWorkload(3))
	starts := []float64{0, 0.5}

	record := func(p *platform.Platform) (*timeline.Recorder, [2]ior.Stats) {
		rec := &timeline.Recorder{}
		p.Run(starts, rec)
		var st [2]ior.Stats
		for i, r := range p.Runners {
			st[i].Phases = append([]ior.PhaseStat(nil), r.Stats.Phases...)
		}
		return rec, st
	}

	fresh, freshStats := record(platform.New(sim.NewEngine(), spec, nil))

	reused := platform.New(sim.NewEngine(), spec, nil)
	reused.Run(starts, nil) // warm the platform: the next run is a true reuse
	got, gotStats := record(reused)

	fi, gi := fresh.Intervals(), got.Intervals()
	if len(fi) != len(gi) {
		t.Fatalf("interval count: fresh %d vs reused %d", len(fi), len(gi))
	}
	for i := range fi {
		if fi[i] != gi[i] {
			t.Fatalf("interval %d diverged: fresh %+v vs reused %+v", i, fi[i], gi[i])
		}
	}
	for a := range freshStats {
		fp, gp := freshStats[a].Phases, gotStats[a].Phases
		if len(fp) != len(gp) {
			t.Fatalf("app %d: phase count %d vs %d", a, len(fp), len(gp))
		}
		for i := range fp {
			if fp[i] != gp[i] {
				t.Fatalf("app %d phase %d diverged: %+v vs %+v", a, i, fp[i], gp[i])
			}
		}
	}
}

// TestPresetsArmed: presets arrive with defaults folded in (armed once at
// construction), so building a runner from one — and resetting it — never
// re-derives configuration.
func TestPresetsArmed(t *testing.T) {
	for name, w := range map[string]ior.Workload{
		"cm1":        ior.CM1Workload(2),
		"namd":       ior.NAMDWorkload(2),
		"checkpoint": ior.CheckpointWorkload(4, 60, 2),
	} {
		if w.Files <= 0 || w.Phases <= 0 || w.CB.BufBytes <= 0 || w.ReqBytes <= 0 {
			t.Fatalf("%s: preset not armed: %+v", name, w)
		}
	}
}
