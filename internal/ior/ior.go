// Package ior is the reproduction of the paper's IOR-derived benchmark: a
// configurable synthetic workload with precise control over access pattern
// (contiguous or strided), block counts and sizes, number of files, rounds
// of collective buffering, and the placement of CALCioM coordination calls.
package ior

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// PatternKind is the spatial access pattern of each process.
type PatternKind int

const (
	// Contiguous: each process writes one contiguous region; ROMIO skips
	// the shuffle and processes write directly (paper Figs. 2, 7, 10).
	Contiguous PatternKind = iota
	// Strided: processes write interleaved blocks, triggering two-phase
	// collective buffering with communication rounds (paper Figs. 6, 8, 9).
	Strided
)

// String implements fmt.Stringer.
func (k PatternKind) String() string {
	if k == Contiguous {
		return "contiguous"
	}
	return "strided"
}

// Granularity says where the driver places its CALCioM coordination points
// (Inform/Release pairs). Finer granularity lets an application be
// interrupted sooner (paper Fig. 10 contrasts file-level and round-level).
type Granularity int

const (
	// PerPhase: coordinate only at I/O-phase boundaries; once started, a
	// phase cannot be interrupted.
	PerPhase Granularity = iota
	// PerFile: coordination points between files.
	PerFile
	// PerRound: coordination points between every collective-buffering
	// round (or contiguous request) — the custom ADIO-layer integration
	// from the paper.
	PerRound
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case PerPhase:
		return "phase"
	case PerFile:
		return "file"
	case PerRound:
		return "round"
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// AccessKind is the direction of the workload's file accesses.
type AccessKind int

const (
	// WriteAccess: the workload writes (the paper's entire evaluation).
	WriteAccess AccessKind = iota
	// ReadAccess: the workload reads back files of the same shape —
	// an extension beyond the paper's write/write study.
	ReadAccess
)

// String implements fmt.Stringer.
func (a AccessKind) String() string {
	if a == ReadAccess {
		return "read"
	}
	return "write"
}

// CollectiveBuffering configures two-phase I/O.
type CollectiveBuffering struct {
	Aggregators int   // 0 = one per node
	BufBytes    int64 // per-aggregator buffer per round (default 16 MiB)
}

// Workload is one application's I/O behaviour.
type Workload struct {
	Pattern       PatternKind
	BlockSize     int64 // bytes per block, per process
	BlocksPerProc int   // blocks per process per file
	Files         int   // files per phase (default 1)
	ReqBytes      int64 // contiguous request granularity per process (default: whole block run)
	CB            CollectiveBuffering
	Phases        int     // I/O phases (default 1)
	ComputeTime   float64 // seconds of computation between phases

	// Adaptive applications poll the coordinator before each I/O phase
	// and, when another application is using the file system, run their
	// next computation block first and come back to the I/O afterwards —
	// the reorganization the paper's §III-C sketches. Requires a Session.
	Adaptive bool

	// Access is the direction of the file accesses (default WriteAccess).
	Access AccessKind
}

func (w Workload) withDefaults() Workload {
	if w.Files <= 0 {
		w.Files = 1
	}
	if w.Phases <= 0 {
		w.Phases = 1
	}
	if w.CB.BufBytes <= 0 {
		w.CB.BufBytes = 16 << 20
	}
	if w.ReqBytes <= 0 {
		w.ReqBytes = w.BytesPerProc()
	}
	return w
}

// BytesPerProc returns bytes written per process per file.
func (w Workload) BytesPerProc() int64 {
	return w.BlockSize * int64(w.BlocksPerProc)
}

// FileBytes returns bytes per file across all processes of the app.
func (w Workload) FileBytes(procs int) int64 {
	return w.BytesPerProc() * int64(procs)
}

// PhaseBytes returns bytes per phase across all files.
func (w Workload) PhaseBytes(procs int) int64 {
	ww := w.withDefaults()
	return ww.FileBytes(procs) * int64(ww.Files)
}

// plan describes the per-file round structure for an app.
type plan struct {
	rounds     int
	roundBytes int64 // bytes per full round (whole app)
	writers    int   // concurrent client streams
	twoPhase   bool  // comm round before each write round
}

func (w Workload) planFor(app *mpi.App) plan {
	ww := w.withDefaults()
	fileBytes := ww.FileBytes(app.Procs)
	if ww.Pattern == Strided {
		aggs := ww.CB.Aggregators
		if aggs <= 0 {
			aggs = app.Nodes
		}
		if aggs > app.Procs {
			aggs = app.Procs
		}
		rb := int64(aggs) * ww.CB.BufBytes
		r := int(ceilDiv(fileBytes, rb))
		return plan{rounds: r, roundBytes: rb, writers: aggs, twoPhase: true}
	}
	rb := int64(app.Procs) * ww.ReqBytes
	r := int(ceilDiv(fileBytes, rb))
	return plan{rounds: r, roundBytes: rb, writers: app.Procs, twoPhase: false}
}

// Rounds returns the number of write rounds per file for the app.
func (w Workload) Rounds(app *mpi.App) int { return w.planFor(app).rounds }

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("ior: division by non-positive")
	}
	return (a + b - 1) / b
}

// PhaseStat records one I/O phase of a run.
type PhaseStat struct {
	Start     float64
	End       float64
	CommTime  float64 // time in collective-buffering communication
	WriteTime float64 // time in file-system writes
	Bytes     int64
}

// IOTime is the observed I/O phase duration (waits included), the paper's
// "write time".
func (s PhaseStat) IOTime() float64 { return s.End - s.Start }

// Throughput is bytes per second over the observed phase duration.
func (s PhaseStat) Throughput() float64 {
	t := s.IOTime()
	if t <= 0 {
		return 0
	}
	return float64(s.Bytes) / t
}

// Stats aggregates a run.
type Stats struct {
	Phases []PhaseStat
}

// TotalIOTime sums observed phase durations.
func (s *Stats) TotalIOTime() float64 {
	var t float64
	for _, ph := range s.Phases {
		t += ph.IOTime()
	}
	return t
}

// TotalBytes sums bytes written.
func (s *Stats) TotalBytes() int64 {
	var b int64
	for _, ph := range s.Phases {
		b += ph.Bytes
	}
	return b
}

// Runner executes a workload for one application. A Runner is reusable: the
// workload is armed (defaults folded in) once at construction, and Reset
// clears only the per-run statistics, keeping the armed workload, the
// cached file names and the stats backing array, so re-running a scenario
// on a reused platform allocates nothing in steady state.
type Runner struct {
	App     *mpi.App
	W       Workload
	Session *core.Session // nil runs uncoordinated
	Gran    Granularity
	Stats   Stats

	// Timeline, when non-nil, records compute/wait/comm/write intervals
	// for Gantt rendering (see internal/timeline).
	Timeline *timeline.Recorder

	// fileNames caches the formatted file name per (phase, file) index so
	// repeated runs of a reused runner format no strings.
	fileNames []string

	// runFn is r.Run bound once, so starting the runner does not allocate
	// a method-value closure per run.
	runFn func(p *sim.Proc)
}

// NewRunner builds a runner; session may be nil for uncoordinated runs.
func NewRunner(app *mpi.App, w Workload, session *core.Session, gran Granularity) *Runner {
	return &Runner{App: app, W: w.withDefaults(), Session: session, Gran: gran}
}

// Reset clears the per-run statistics (retaining their backing) and drops
// the timeline recorder, preparing the runner for another run on a reset
// platform. The armed workload and session binding are retained — the
// reuse contract: Reset re-arms, it never re-derives.
func (r *Runner) Reset() {
	r.Stats.Phases = r.Stats.Phases[:0]
	r.Timeline = nil
}

// fileName returns the cached name for file f of the given phase.
func (r *Runner) fileName(phase, f int) string {
	if r.fileNames == nil {
		r.fileNames = make([]string, r.W.Phases*r.W.Files)
	}
	idx := phase*r.W.Files + f
	if r.fileNames[idx] == "" {
		r.fileNames[idx] = fmt.Sprintf("%s.p%d.f%d", r.App.Name, phase, f)
	}
	return r.fileNames[idx]
}

// Start launches the workload as a process at absolute time t and returns
// the process.
func (r *Runner) Start(t float64) *sim.Proc {
	if r.runFn == nil {
		r.runFn = r.Run
	}
	return r.App.Plat.Eng.GoAt(t, r.App.Name, r.runFn)
}

// Run executes all phases from process p. The schedule is
// IO(0) C(0) IO(1) C(1) ... IO(n-1); an Adaptive workload may swap an
// IO(k)/C(k) pair when the file system is busy at IO(k)'s start.
func (r *Runner) Run(p *sim.Proc) {
	w := r.W
	for phase := 0; phase < w.Phases; phase++ {
		computeAfter := phase < w.Phases-1 && w.ComputeTime > 0
		if w.Adaptive && r.Session != nil && computeAfter && r.Session.C.SystemBusy() {
			// Another app is doing I/O: reorganize — compute now, write
			// into the (hopefully) quieter window afterwards.
			r.compute(p, w.ComputeTime)
			computeAfter = false
		}
		r.runPhase(p, phase)
		if computeAfter {
			r.compute(p, w.ComputeTime)
		}
	}
}

func (r *Runner) compute(p *sim.Proc, d float64) {
	t0 := p.Now()
	p.Sleep(d)
	r.record(timeline.Compute, t0, p.Now())
}

// record adds an interval to the optional timeline.
func (r *Runner) record(kind timeline.Kind, start, end float64) {
	if r.Timeline != nil && end > start {
		r.Timeline.Add(r.App.Name, kind, start, end)
	}
}

func (r *Runner) runPhase(p *sim.Proc, phase int) {
	app := r.App
	w := r.W
	pl := w.planFor(app)
	phaseBytes := w.PhaseBytes(app.Procs)

	// The observed I/O time starts when the application *wants* to write:
	// time spent waiting for authorization is part of the phase, exactly as
	// the paper measures the serialized application's write time.
	ps := PhaseStat{Start: p.Now()}
	if r.Session != nil {
		info := Info(app, w)
		t0 := p.Now()
		r.Session.Begin(p, info)
		r.record(timeline.Wait, t0, p.Now())
	}
	var bytesDone int64

	for f := 0; f < w.Files; f++ {
		file := app.Plat.FS.Create(r.fileName(phase, f))
		fileBytes := w.FileBytes(app.Procs)
		var off int64
		for round := 0; round < pl.rounds; round++ {
			rb := pl.roundBytes
			if rem := fileBytes - off; rb > rem {
				rb = rem
			}
			if pl.twoPhase {
				ct := app.AlltoallTime(float64(rb))
				if ct > 0 {
					t0 := p.Now()
					p.Sleep(ct)
					ps.CommTime += ct
					r.record(timeline.Comm, t0, p.Now())
				}
			}
			wStart := p.Now()
			// The app's injection limit caps the write: aggregators relay
			// data gathered from all processes, so the aggregate flow into
			// the file system is bounded by the whole app's NICs, not by
			// the aggregator count. In explicit-fabric mode the NIC link
			// enforces that limit by construction.
			req := pfs.Request{
				App:    app.Name,
				Offset: off,
				Length: rb,
				Weight: float64(pl.writers),
			}
			if nic := app.NIC(); nic != nil {
				req.ClientLink = nic
			} else {
				req.RateCap = app.InjectionBW()
			}
			if w.Access == ReadAccess {
				file.Read(p, req)
				r.record(timeline.Read, wStart, p.Now())
			} else {
				file.Write(p, req)
				r.record(timeline.Write, wStart, p.Now())
			}
			ps.WriteTime += p.Now() - wStart
			off += rb
			bytesDone += rb
			if r.Session != nil {
				r.Session.C.Progress(float64(bytesDone))
				last := f == w.Files-1 && round == pl.rounds-1
				if !last && r.yieldAfterRound(round, pl.rounds) {
					t0 := p.Now()
					r.Session.Yield(p)
					r.record(timeline.Wait, t0, p.Now())
				}
			}
		}
	}

	ps.End = p.Now()
	ps.Bytes = phaseBytes
	r.Stats.Phases = append(r.Stats.Phases, ps)
	if r.Session != nil {
		r.Session.End(p)
	}
}

// yieldAfterRound decides whether a coordination point follows this round.
func (r *Runner) yieldAfterRound(round, rounds int) bool {
	switch r.Gran {
	case PerRound:
		return true
	case PerFile:
		return round == rounds-1 // file boundary
	default:
		return false
	}
}

// Info builds the CALCioM Prepare info for a phase of this workload, the
// knowledge the paper says applications should share: bytes, files, rounds,
// cores, and the app's expected solo bandwidth.
func Info(app *mpi.App, w Workload) core.Info {
	w = w.withDefaults()
	pl := w.planFor(app)
	info := core.Info{}
	info.SetFloat(core.KeyBytesTotal, float64(w.PhaseBytes(app.Procs)))
	info.SetInt(core.KeyFiles, int64(w.Files))
	info.SetInt(core.KeyRounds, int64(pl.rounds*w.Files))
	info.SetFloat(core.KeyBytesPerRound, float64(pl.roundBytes))
	info.SetInt(core.KeyCores, int64(app.Procs))
	info.SetFloat(core.KeyAloneBW, app.AloneBW())
	return info
}
