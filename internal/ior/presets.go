package ior

// Presets for the application behaviours the paper's §II-E uses to motivate
// workload diversity. They cannot be captured by a storage system that only
// sees raw requests — which is exactly why CALCioM has applications declare
// them.
//
// Every preset returns a fully armed workload — defaults already folded in
// via withDefaults — so building a Runner from a preset, and re-running
// that Runner after a platform Reset, never re-derives configuration: the
// reuse contract is that arming happens exactly once, here.

// CM1Workload models the CM1 atmospheric simulation on Blue Waters as the
// paper describes it: synchronous snapshot files of 23 MB per core every
// 3 minutes, collectively written.
func CM1Workload(phases int) Workload {
	return Workload{
		Pattern:       Contiguous,
		BlockSize:     23 << 20,
		BlocksPerProc: 1,
		ReqBytes:      4 << 20,
		Phases:        phases,
		ComputeTime:   180,
	}.withDefaults()
}

// NAMDWorkload models the NAMD chemistry simulation: trajectory writes of a
// few bytes per core every second, funneled through a small set of output
// processors. Per-core output is rounded up to a kilobyte so a phase is
// representable; the point is the shape — tiny, frequent, asynchronous-ish
// accesses from few writers.
func NAMDWorkload(phases int) Workload {
	return Workload{
		Pattern:       Strided, // gathered to designated output procs
		BlockSize:     1 << 10,
		BlocksPerProc: 1,
		CB:            CollectiveBuffering{Aggregators: 8, BufBytes: 1 << 20},
		Phases:        phases,
		ComputeTime:   1,
	}.withDefaults()
}

// CheckpointWorkload models a periodic defensive checkpoint: every core
// dumps `mbPerCore` MiB every `period` seconds, the dominant I/O pattern of
// leadership-class machines.
func CheckpointWorkload(mbPerCore int64, period float64, phases int) Workload {
	return Workload{
		Pattern:       Contiguous,
		BlockSize:     mbPerCore << 20,
		BlocksPerProc: 1,
		ReqBytes:      4 << 20,
		Phases:        phases,
		ComputeTime:   period,
	}.withDefaults()
}
