package ior

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
)

const miB = int64(1) << 20

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func newPlatform() *mpi.Platform {
	eng := sim.NewEngine()
	fs := pfs.New(eng, pfs.Config{Servers: 4, StripeBytes: miB, ServerBW: 256 * float64(miB)})
	return &mpi.Platform{
		Eng: eng, FS: fs,
		ProcNIC:       4 * float64(miB),
		CommBWPerProc: 2 * float64(miB),
		CommAlpha:     1e-6,
	}
}

func TestWorkloadDerivedQuantities(t *testing.T) {
	w := Workload{Pattern: Contiguous, BlockSize: 4 * miB, BlocksPerProc: 2}
	if w.BytesPerProc() != 8*miB {
		t.Fatalf("bytes/proc = %d", w.BytesPerProc())
	}
	if w.FileBytes(10) != 80*miB {
		t.Fatalf("file bytes = %d", w.FileBytes(10))
	}
	w.Files = 3
	if w.PhaseBytes(10) != 240*miB {
		t.Fatalf("phase bytes = %d", w.PhaseBytes(10))
	}
}

func TestContiguousRounds(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	w := Workload{Pattern: Contiguous, BlockSize: 16 * miB, BlocksPerProc: 1, ReqBytes: 4 * miB}
	if got := w.Rounds(app); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	// Default request size: whole block run in one round.
	w2 := Workload{Pattern: Contiguous, BlockSize: 16 * miB, BlocksPerProc: 1}
	if got := w2.Rounds(app); got != 1 {
		t.Fatalf("default rounds = %d, want 1", got)
	}
}

func TestStridedRoundsUseAggregators(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	w := Workload{
		Pattern: Strided, BlockSize: 2 * miB, BlocksPerProc: 8,
		CB: CollectiveBuffering{BufBytes: 16 * miB},
	}
	// File bytes = 16 procs * 16 MiB = 256 MiB; round = 4 aggs * 16 MiB.
	if got := w.Rounds(app); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	// Aggregator count never exceeds procs.
	app2 := pl.NewApp("b", 2, 4)
	if got := w.Rounds(app2); got <= 0 {
		t.Fatalf("rounds = %d", got)
	}
}

func TestRunContiguousAloneTiming(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	// 16 procs x 16 MiB = 256 MiB; injection 64 MiB/s binds vs FS 1 GiB/s.
	w := Workload{Pattern: Contiguous, BlockSize: 16 * miB, BlocksPerProc: 1, ReqBytes: 4 * miB}
	r := NewRunner(app, w, nil, PerRound)
	r.Start(0)
	pl.Eng.Run()
	if len(r.Stats.Phases) != 1 {
		t.Fatalf("phases = %d", len(r.Stats.Phases))
	}
	want := 256.0 / 64.0
	if got := r.Stats.TotalIOTime(); !almostEq(got, want, 1e-6) {
		t.Fatalf("io time = %v, want %v", got, want)
	}
	if got := r.Stats.TotalBytes(); got != 256*miB {
		t.Fatalf("bytes = %d", got)
	}
	ph := r.Stats.Phases[0]
	if ph.CommTime != 0 {
		t.Fatalf("contiguous should have no comm time, got %v", ph.CommTime)
	}
	if !almostEq(ph.WriteTime, want, 1e-6) {
		t.Fatalf("write time = %v", ph.WriteTime)
	}
	if !almostEq(ph.Throughput(), 64*float64(miB), 1e-6) {
		t.Fatalf("throughput = %v", ph.Throughput())
	}
}

func TestRunStridedHasCommPhases(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	w := Workload{
		Pattern: Strided, BlockSize: 2 * miB, BlocksPerProc: 8,
		CB: CollectiveBuffering{BufBytes: 16 * miB},
	}
	r := NewRunner(app, w, nil, PerRound)
	r.Start(0)
	pl.Eng.Run()
	ph := r.Stats.Phases[0]
	if ph.CommTime <= 0 {
		t.Fatal("strided pattern should include comm time")
	}
	if ph.WriteTime <= 0 {
		t.Fatal("no write time recorded")
	}
	if !almostEq(ph.IOTime(), ph.CommTime+ph.WriteTime, 1e-6) {
		t.Fatalf("phase %v != comm %v + write %v", ph.IOTime(), ph.CommTime, ph.WriteTime)
	}
}

func TestMultiplePhasesWithComputeTime(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 4, 4)
	w := Workload{
		Pattern: Contiguous, BlockSize: 4 * miB, BlocksPerProc: 1,
		Phases: 3, ComputeTime: 5,
	}
	r := NewRunner(app, w, nil, PerPhase)
	r.Start(0)
	pl.Eng.Run()
	if len(r.Stats.Phases) != 3 {
		t.Fatalf("phases = %d", len(r.Stats.Phases))
	}
	// Phase k starts >= 5s after phase k-1 ended.
	for i := 1; i < 3; i++ {
		gap := r.Stats.Phases[i].Start - r.Stats.Phases[i-1].End
		if !almostEq(gap, 5, 1e-9) {
			t.Fatalf("gap %d = %v, want 5", i, gap)
		}
	}
}

func TestMultipleFiles(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 4, 4)
	w := Workload{Pattern: Contiguous, BlockSize: 4 * miB, BlocksPerProc: 1, Files: 4}
	r := NewRunner(app, w, nil, PerFile)
	r.Start(0)
	pl.Eng.Run()
	if got := r.Stats.TotalBytes(); got != 4*4*4*miB {
		t.Fatalf("bytes = %d", got)
	}
}

func TestTwoRunnersInterfere(t *testing.T) {
	pl := newPlatform()
	// Two equal apps big enough to saturate the FS aggregate (1 GiB/s).
	a := pl.NewApp("a", 512, 128)
	b := pl.NewApp("b", 512, 128)
	w := Workload{Pattern: Contiguous, BlockSize: 4 * miB, BlocksPerProc: 1, ReqBytes: miB}
	ra := NewRunner(a, w, nil, PerRound)
	rb := NewRunner(b, w, nil, PerRound)
	ra.Start(0)
	rb.Start(0)
	pl.Eng.Run()
	ta, tb := ra.Stats.TotalIOTime(), rb.Stats.TotalIOTime()
	solo := 512.0 * 4.0 / 1024.0 // 2 GiB at 1 GiB/s
	if ta < 1.8*solo || tb < 1.8*solo {
		t.Fatalf("interference too weak: ta=%v tb=%v solo=%v", ta, tb, solo)
	}
}

func TestCoordinatedRunReportsProgress(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	layer := core.NewLayer(pl.Eng, core.FCFSPolicy{}, 1e-4)
	sess := core.NewSession(layer.Register("a", 16))
	w := Workload{Pattern: Contiguous, BlockSize: 16 * miB, BlocksPerProc: 1, ReqBytes: 4 * miB}
	r := NewRunner(app, w, sess, PerRound)
	r.Start(0)
	pl.Eng.Run()
	if sess.C.State() != core.Idle {
		t.Fatalf("coordinator state %v after run", sess.C.State())
	}
	if len(layer.Log()) == 0 {
		t.Fatal("no arbitration happened")
	}
}

func TestInfoContents(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	w := Workload{
		Pattern: Strided, BlockSize: 2 * miB, BlocksPerProc: 8, Files: 2,
		CB: CollectiveBuffering{BufBytes: 16 * miB},
	}
	info := Info(app, w)
	if got := info.Float(core.KeyBytesTotal, 0); got != float64(2*16*16*miB) {
		t.Fatalf("bytes_total = %v", got)
	}
	if got := info.Int(core.KeyFiles, 0); got != 2 {
		t.Fatalf("files = %d", got)
	}
	if got := info.Int(core.KeyCores, 0); got != 16 {
		t.Fatalf("cores = %d", got)
	}
	if got := info.Int(core.KeyRounds, 0); got != 8 {
		t.Fatalf("rounds = %d (4 per file x 2 files)", got)
	}
	if info.Float(core.KeyAloneBW, 0) <= 0 {
		t.Fatal("alone_bw missing")
	}
}

func TestGranularityStrings(t *testing.T) {
	if PerPhase.String() != "phase" || PerFile.String() != "file" || PerRound.String() != "round" {
		t.Fatal("granularity names")
	}
	if Contiguous.String() != "contiguous" || Strided.String() != "strided" {
		t.Fatal("pattern names")
	}
}

func TestLastRoundPartial(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 4, 4)
	// 4 procs x 10 MiB = 40 MiB; rounds of 4x3=12 MiB -> 3 full + 4 MiB.
	w := Workload{Pattern: Contiguous, BlockSize: 10 * miB, BlocksPerProc: 1, ReqBytes: 3 * miB}
	r := NewRunner(app, w, nil, PerRound)
	r.Start(0)
	pl.Eng.Run()
	if got := r.Stats.TotalBytes(); got != 40*miB {
		t.Fatalf("bytes = %d, want all written", got)
	}
	// Injection 16 MiB/s: exactly 2.5s.
	if got := r.Stats.TotalIOTime(); !almostEq(got, 2.5, 1e-6) {
		t.Fatalf("time = %v, want 2.5", got)
	}
}

func TestReadWorkload(t *testing.T) {
	pl := newPlatform()
	app := pl.NewApp("a", 16, 4)
	w := Workload{
		Pattern: Contiguous, BlockSize: 16 * miB, BlocksPerProc: 1,
		ReqBytes: 4 * miB, Access: ReadAccess,
	}
	r := NewRunner(app, w, nil, PerRound)
	r.Start(0)
	pl.Eng.Run()
	// Same contention model as writes: injection-bound at 64 MiB/s.
	if got := r.Stats.TotalIOTime(); !almostEq(got, 4.0, 1e-6) {
		t.Fatalf("read io time = %v, want 4.0", got)
	}
	if WriteAccess.String() != "write" || ReadAccess.String() != "read" {
		t.Fatal("access kind names")
	}
}

func TestAdaptiveWorkloadReducesInterference(t *testing.T) {
	// Two identical periodic apps that would collide on every phase; run
	// once with B blind, once with B polling SystemBusy and computing
	// first when the file system is busy.
	run := func(adaptive bool) float64 {
		pl := newPlatform()
		layer := core.NewLayer(pl.Eng, core.InterferePolicy{}, 1e-4)
		mk := func(name string, adapt bool) *Runner {
			app := pl.NewApp(name, 512, 128)
			w := Workload{
				Pattern: Contiguous, BlockSize: 4 * miB, BlocksPerProc: 1,
				Phases: 4, ComputeTime: 6, Adaptive: adapt,
			}
			return NewRunner(app, w, core.NewSession(layer.Register(name, 512)), PerPhase)
		}
		ra := mk("a", false)
		rb := mk("b", adaptive)
		ra.Start(0)
		rb.Start(0.25)
		pl.Eng.Run()
		return rb.Stats.TotalIOTime()
	}
	blind := run(false)
	adaptive := run(true)
	// Solo would be 8s (4 phases x 2 GiB at 1 GiB/s). Adaptation must
	// recover a substantial part of the interference penalty.
	if adaptive >= blind {
		t.Fatalf("adaptive io %v should beat blind %v", adaptive, blind)
	}
	if (blind-adaptive)/(blind-8) < 0.5 {
		t.Fatalf("adaptation recovered too little: blind %v adaptive %v solo 8", blind, adaptive)
	}
}
