package machine

import (
	"testing"

	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/swf"
)

// stressedConfig is a machine under heavy I/O pressure, where coordination
// matters: a 16 GiB/s file system against jobs writing 8 MiB/core every
// 300 s.
func stressedConfig() Config {
	cfg := IntrepidConfig()
	cfg.FS.Servers = 32
	cfg.BytesPerCore = 8 << 20
	cfg.PhasePeriod = 300
	return cfg
}

func shortTrace() *swf.Trace {
	tr := swf.Generate(swf.GenConfig{Seed: 42, Days: 1})
	tr.Jobs = tr.Jobs[:80]
	return tr
}

func TestUncoordinatedBaseline(t *testing.T) {
	tr := shortTrace()
	res := Run(stressedConfig(), tr, nil)
	if res.JobsSimulated != 80 {
		t.Fatalf("jobs = %d, want 80", res.JobsSimulated)
	}
	if res.Policy != "uncoordinated" {
		t.Fatalf("policy = %q", res.Policy)
	}
	if res.Decisions != 0 {
		t.Fatal("uncoordinated run should have no decisions")
	}
	// Interference must be visible in this regime.
	if res.Overhead() < 0.10 {
		t.Fatalf("overhead = %v, want >= 10%%", res.Overhead())
	}
	for _, j := range res.Jobs {
		if j.Factor < 1-1e-6 {
			t.Fatalf("job %d factor %v < 1", j.ID, j.Factor)
		}
		if j.IOTime <= 0 || j.SoloIO <= 0 {
			t.Fatalf("job %d has empty I/O accounting", j.ID)
		}
		if j.Depart <= j.Arrive {
			t.Fatalf("job %d departs before arriving", j.ID)
		}
	}
}

func TestByteAccounting(t *testing.T) {
	tr := shortTrace()
	cfg := stressedConfig()
	res := Run(cfg, tr, nil)
	var want int64
	for _, j := range tr.Jobs {
		phases := int(j.Runtime / cfg.PhasePeriod)
		if phases < 1 {
			phases = 1
		}
		want += int64(phases) * int64(j.Procs) * cfg.BytesPerCore
	}
	if res.TotalIOBytes != want {
		t.Fatalf("bytes = %d, want %d", res.TotalIOBytes, want)
	}
}

func TestCoordinationReducesWaste(t *testing.T) {
	tr := shortTrace()
	cfg := stressedConfig()
	base := Run(cfg, tr, nil)
	fcfs := Run(cfg, tr, delta.FCFS)
	if fcfs.Decisions == 0 {
		t.Fatal("coordinated run logged no decisions")
	}
	// FCFS serialization must reduce machine-wide waste in the heavy
	// regime (the paper's core claim at machine scale).
	if fcfs.CPUSecWasted >= base.CPUSecWasted {
		t.Fatalf("FCFS %v should beat uncoordinated %v", fcfs.CPUSecWasted, base.CPUSecWasted)
	}
	if fcfs.MeanFactor >= base.MeanFactor {
		t.Fatalf("FCFS mean factor %v should beat %v", fcfs.MeanFactor, base.MeanFactor)
	}
}

func TestDeterminism(t *testing.T) {
	tr := shortTrace()
	cfg := stressedConfig()
	a := Run(cfg, tr, delta.FCFS)
	b := Run(cfg, tr, delta.FCFS)
	if a.CPUSecWasted != b.CPUSecWasted || a.MeanFactor != b.MeanFactor {
		t.Fatal("machine study not deterministic")
	}
}

func TestMaxJobsCap(t *testing.T) {
	tr := shortTrace()
	cfg := stressedConfig()
	cfg.MaxJobs = 10
	res := Run(cfg, tr, nil)
	if res.JobsSimulated != 10 {
		t.Fatalf("jobs = %d, want 10", res.JobsSimulated)
	}
}

func TestLightLoadHasLittleInterference(t *testing.T) {
	tr := shortTrace()
	cfg := IntrepidConfig() // full 64 GiB/s file system, light I/O
	res := Run(cfg, tr, nil)
	if res.Overhead() > 0.10 {
		t.Fatalf("light-load overhead = %v, want < 10%%", res.Overhead())
	}
}

func TestGranularityConfig(t *testing.T) {
	tr := shortTrace()
	tr.Jobs = tr.Jobs[:20]
	cfg := stressedConfig()
	cfg.Gran = ior.PerPhase
	res := Run(cfg, tr, delta.FCFS)
	if res.JobsSimulated != 20 {
		t.Fatalf("jobs = %d", res.JobsSimulated)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero period")
		}
	}()
	Run(Config{FS: stressedConfig().FS, ProcNIC: 1}, shortTrace(), nil)
}

func TestResultString(t *testing.T) {
	tr := shortTrace()
	tr.Jobs = tr.Jobs[:5]
	res := Run(stressedConfig(), tr, nil)
	if s := res.String(); s == "" {
		t.Fatal("empty summary")
	}
}
