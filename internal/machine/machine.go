// Package machine runs trace-driven, machine-scale studies: a whole job
// trace (Standard Workload Format) is replayed against one shared parallel
// file system, every job performs periodic I/O phases, and the study
// measures what the paper's Section II can only estimate — how much CPU
// time the machine wastes in interfering I/O — with and without CALCioM.
//
// The paper evaluates pairs of applications and notes that the strategies
// "naturally extend to more than two applications"; this package is that
// extension: tens of concurrent jobs of wildly different sizes coordinated
// through one Layer.
package machine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/swf"
)

// Config describes the simulated machine and the per-job I/O behaviour.
type Config struct {
	FS            pfs.Config
	ProcNIC       float64 // injection bandwidth per core (bytes/s)
	CommBWPerProc float64
	CommAlpha     float64
	CoordLatency  float64 // CALCioM message latency

	// PhasePeriod is the compute time between a job's I/O phases
	// (seconds); BytesPerCore is the data each core writes per phase.
	// Together with the trace's runtimes they set E[µ], the fraction of
	// time jobs spend doing I/O.
	PhasePeriod  float64
	BytesPerCore int64

	// MaxJobs caps how many trace jobs are replayed (0 = all).
	MaxJobs int
	// Granularity of the coordination points (default: per round).
	Gran ior.Granularity
}

// IntrepidConfig returns a machine sized like Argonne's Intrepid (the
// trace's host): 128 file-system servers at 512 MiB/s (a ~64 GiB/s storage
// system) and BG/P-like per-core injection bandwidth.
func IntrepidConfig() Config {
	return Config{
		FS: pfs.Config{
			Servers:     128,
			StripeBytes: 1 << 20,
			ServerBW:    512 * float64(1<<20),
			Policy:      pfs.Share,
		},
		ProcNIC:       3 * float64(1<<20),
		CommBWPerProc: 1.5 * float64(1<<20),
		CommAlpha:     2e-6,
		CoordLatency:  1e-3,
		PhasePeriod:   600,
		BytesPerCore:  2 << 20,
		Gran:          ior.PerRound,
	}
}

// JobOutcome is the per-job result of a study.
type JobOutcome struct {
	ID      int
	Cores   int
	Phases  int
	IOTime  float64 // observed total I/O time (waits included)
	SoloIO  float64 // analytic solo I/O time for the same bytes
	Factor  float64 // IOTime / SoloIO
	Arrive  float64
	Depart  float64 // when the job's last phase finished
	Decided int     // arbitration decisions while the job was present (coordinated runs)
}

// Result aggregates a study run.
type Result struct {
	Policy        string
	Jobs          []JobOutcome
	CPUSecWasted  float64 // Σ cores · IOTime
	CPUSecSolo    float64 // Σ cores · SoloIO (lower bound)
	MeanFactor    float64
	MaxFactor     float64
	P95Factor     float64
	Makespan      float64
	Decisions     int
	TotalIOBytes  int64
	JobsSimulated int
}

// Overhead returns the fraction of I/O CPU-seconds beyond the solo lower
// bound: 0 means interference-free.
func (r Result) Overhead() float64 {
	if r.CPUSecSolo <= 0 {
		return 0
	}
	return r.CPUSecWasted/r.CPUSecSolo - 1
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf(
		"%s: %d jobs, wasted %.3g core-s (solo bound %.3g, overhead %.1f%%), factor mean %.2f p95 %.2f max %.2f",
		r.Policy, r.JobsSimulated, r.CPUSecWasted, r.CPUSecSolo, 100*r.Overhead(),
		r.MeanFactor, r.P95Factor, r.MaxFactor)
}

// Run replays the trace under the given coordination policy factory
// (nil = uncoordinated interference).
func Run(cfg Config, tr *swf.Trace, factory delta.PolicyFactory) Result {
	if cfg.PhasePeriod <= 0 || cfg.BytesPerCore <= 0 {
		panic("machine: PhasePeriod and BytesPerCore must be positive")
	}
	eng := sim.NewEngine()
	fs := pfs.New(eng, cfg.FS)
	plat := &mpi.Platform{
		Eng: eng, FS: fs,
		ProcNIC:       cfg.ProcNIC,
		CommBWPerProc: cfg.CommBWPerProc,
		CommAlpha:     cfg.CommAlpha,
	}
	model := &core.PerfModel{FSBandwidth: fs.AggregateBW(), ProcNIC: cfg.ProcNIC}
	var layer *core.Layer
	policyName := "uncoordinated"
	if factory != nil {
		pol := factory(model)
		policyName = pol.Name()
		layer = core.NewLayer(eng, pol, cfg.CoordLatency)
	}

	jobs := tr.Jobs
	if cfg.MaxJobs > 0 && len(jobs) > cfg.MaxJobs {
		jobs = jobs[:cfg.MaxJobs]
	}

	type tracked struct {
		job    swf.Job
		runner *ior.Runner
		phases int
	}
	var tracked_ []tracked
	for _, j := range jobs {
		if j.Runtime <= 0 || j.Procs <= 0 {
			continue
		}
		phases := int(j.Runtime / cfg.PhasePeriod)
		if phases < 1 {
			phases = 1
		}
		w := ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     cfg.BytesPerCore,
			BlocksPerProc: 1,
			Phases:        phases,
			ComputeTime:   cfg.PhasePeriod,
		}
		app := plat.NewApp(fmt.Sprintf("job%d", j.ID), j.Procs, 0)
		var sess *core.Session
		if layer != nil {
			sess = core.NewSession(layer.Register(app.Name, j.Procs))
		}
		r := ior.NewRunner(app, w, sess, cfg.Gran)
		r.Start(j.Start())
		tracked_ = append(tracked_, tracked{job: j, runner: r, phases: phases})
	}

	makespan := eng.Run()

	res := Result{Policy: policyName, Makespan: makespan, JobsSimulated: len(tracked_)}
	var factors []float64
	for _, t := range tracked_ {
		bytes := float64(t.runner.Stats.TotalBytes())
		aloneBW := math.Min(float64(t.job.Procs)*cfg.ProcNIC, fs.AggregateBW())
		solo := bytes / aloneBW
		io := t.runner.Stats.TotalIOTime()
		factor := io / solo
		res.Jobs = append(res.Jobs, JobOutcome{
			ID:     t.job.ID,
			Cores:  t.job.Procs,
			Phases: t.phases,
			IOTime: io,
			SoloIO: solo,
			Factor: factor,
			Arrive: t.job.Start(),
			Depart: t.runner.Stats.Phases[len(t.runner.Stats.Phases)-1].End,
		})
		res.CPUSecWasted += float64(t.job.Procs) * io
		res.CPUSecSolo += float64(t.job.Procs) * solo
		res.TotalIOBytes += t.runner.Stats.TotalBytes()
		factors = append(factors, factor)
	}
	if layer != nil {
		res.Decisions = len(layer.Log())
	}
	if len(factors) > 0 {
		sort.Float64s(factors)
		var sum float64
		for _, f := range factors {
			sum += f
		}
		res.MeanFactor = sum / float64(len(factors))
		res.MaxFactor = factors[len(factors)-1]
		res.P95Factor = factors[(len(factors)*95)/100]
	}
	return res
}
