package chaos

import (
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							break
						}
					}
					if err != nil {
						break
					}
				}
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestTransparentForwarding(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Options{Target: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := readFull(c, got)
	if err != nil || n != len(msg) {
		t.Fatalf("read %d bytes, err %v", n, err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestScheduledReset(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Options{Target: ln.Addr().String(), ResetEvery: 50 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The connection must die within a few reset periods even though the
	// endpoints are healthy.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expected the proxied connection to be reset")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection survived past the reset schedule")
	}
}

func TestPartitionRefusesAndCuts(t *testing.T) {
	ln := echoServer(t)
	p, err := New(Options{
		Target:         ln.Addr().String(),
		PartitionEvery: 40 * time.Millisecond,
		PartitionFor:   200 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A connection opened before the partition must be cut by it.
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expected the partition to cut the connection")
	}

	// During the partition window, new connections are refused or
	// immediately closed. (Dial may succeed at TCP level before the proxy
	// closes it, so probe with a read.)
	deadline := time.Now().Add(time.Second)
	refused := false
	for time.Now().Before(deadline) && !refused {
		c2, err := net.Dial("tcp", p.Addr())
		if err != nil {
			refused = true
			break
		}
		c2.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := c2.Read(buf); err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				refused = true
			}
		}
		c2.Close()
	}
	if !refused {
		t.Fatal("no connection was refused during partition windows")
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
