// Package chaos is an in-process fault-injecting TCP proxy for exercising
// the coordination stack's failure paths: it sits between clients and
// calciomd, forwarding byte streams while injecting connection resets,
// per-chunk forwarding delays, and periodic partition windows on a
// deterministic schedule (seeded, so a failing chaos run reproduces).
//
// The proxy is deliberately protocol-blind — it tears connections at
// arbitrary byte boundaries, which is exactly what makes it useful: torn
// frames, lost responses, and half-written requests are the cases the
// client's reconnect/resume layer and the daemon's grace windows must
// absorb. calciom-load wires it in front of the daemon under the -chaos*
// flags; the CI chaos smoke runs a fleet through it.
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options configures the fault schedule. The zero value (beyond Target) is
// a transparent proxy.
type Options struct {
	// Listen is the address to accept clients on; empty means an ephemeral
	// localhost port (read it back from Proxy.Addr).
	Listen string
	// Target is the upstream (daemon) address. Required.
	Target string
	// ResetEvery, when positive, resets each proxied connection roughly
	// this long after it is accepted (jittered ±50% from the seed), at an
	// arbitrary byte boundary.
	ResetEvery time.Duration
	// Delay, when positive, delays every forwarded chunk by this much in
	// each direction — a slow, high-latency network.
	Delay time.Duration
	// PartitionEvery/PartitionFor, when both positive, schedule periodic
	// partitions: every PartitionEvery the proxy cuts all live connections
	// and refuses new ones for PartitionFor.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
	// Garbage, when true, injects protocol garbage into the client→daemon
	// byte stream on the seeded schedule: roughly one forwarded chunk in
	// sixteen has a random byte's bit flipped in place, and roughly one in
	// sixty-four is preceded by a junk frame (a well-formed length prefix
	// over random bytes). The daemon must reject what it can see — never
	// panic, never over-allocate — but a flip landing in a length prefix
	// desyncs the framing invisibly (the daemon just waits for bytes that
	// will never come), so the proxy tears the corrupted pair shortly after
	// the injection; the reconnect layer must absorb the torn session either
	// way.
	Garbage bool
	// Seed makes the jitter deterministic; 0 means seed 1.
	Seed int64
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Proxy is a running chaos proxy. Close stops the listener, cuts every
// proxied connection, and waits for the internal goroutines to finish.
type Proxy struct {
	opts Options
	ln   net.Listener
	rng  *rand.Rand // guarded by mu

	mu          sync.Mutex
	conns       map[net.Conn]struct{} // client-side conns of live pairs
	partitioned bool
	closed      bool

	wg sync.WaitGroup
}

// New starts a proxy. It accepts immediately; faults follow the schedule.
func New(opts Options) (*Proxy, error) {
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Proxy{
		opts:  opts,
		ln:    ln,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[net.Conn]struct{}),
	}
	if p.opts.Logf == nil {
		p.opts.Logf = func(string, ...any) {}
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if opts.PartitionEvery > 0 && opts.PartitionFor > 0 {
		p.wg.Add(1)
		go p.partitionLoop()
	}
	return p, nil
}

// Addr is the address clients should dial instead of the daemon.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the proxy and severs every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.cutAll("shutdown")
	p.wg.Wait()
	return err
}

func (p *Proxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Cut severs every live proxied connection right now — a one-shot manual
// fault for deterministic tests (the scheduled faults keep running).
func (p *Proxy) Cut() { p.cutAll("manual cut") }

// cutAll severs every live proxied connection.
func (p *Proxy) cutAll(why string) {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if len(conns) > 0 {
		p.opts.Logf("chaos: cut %d connection(s): %s", len(conns), why)
	}
}

func (p *Proxy) partitionLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.opts.PartitionEvery)
	defer tick.Stop()
	for range tick.C {
		if p.isClosed() {
			return
		}
		p.mu.Lock()
		p.partitioned = true
		p.mu.Unlock()
		p.opts.Logf("chaos: partition for %v", p.opts.PartitionFor)
		p.cutAll("partition")
		time.Sleep(p.opts.PartitionFor)
		p.mu.Lock()
		p.partitioned = false
		closed := p.closed
		p.mu.Unlock()
		p.opts.Logf("chaos: partition healed")
		if closed {
			return
		}
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse := p.partitioned || p.closed
		var resetAfter time.Duration
		if p.opts.ResetEvery > 0 {
			// Jitter ±50% so a fleet's resets don't synchronize.
			half := int64(p.opts.ResetEvery) / 2
			resetAfter = p.opts.ResetEvery/2 + time.Duration(p.rng.Int63n(half+1))
		}
		p.mu.Unlock()
		if refuse {
			conn.Close()
			continue
		}
		up, err := net.Dial("tcp", p.opts.Target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(conn, up, resetAfter)
	}
}

// serve shuttles bytes between one client connection and its upstream pair
// until either side dies or the scheduled reset fires.
func (p *Proxy) serve(conn, up net.Conn, resetAfter time.Duration) {
	defer p.wg.Done()
	var timer *time.Timer
	if resetAfter > 0 {
		timer = time.AfterFunc(resetAfter, func() {
			p.opts.Logf("chaos: reset after %v", resetAfter)
			conn.Close()
			up.Close()
		})
	}
	var cp sync.WaitGroup
	cp.Add(2)
	go func() { defer cp.Done(); p.pump(up, conn, p.opts.Garbage) }()
	go func() { defer cp.Done(); p.pump(conn, up, false) }()
	cp.Wait()
	if timer != nil {
		timer.Stop()
	}
	conn.Close()
	up.Close()
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// pump copies src→dst in chunks, applying the configured per-chunk delay
// and, with garble set (the client→daemon direction under Garbage), the
// seeded corruption schedule.
func (p *Proxy) pump(dst, src net.Conn, garble bool) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if p.opts.Delay > 0 {
				time.Sleep(p.opts.Delay)
			}
			injected := false
			if garble {
				junk, hit := p.garble(buf[:n])
				injected = hit
				if junk != nil {
					if _, werr := dst.Write(junk); werr != nil {
						break
					}
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
			if injected {
				// A corrupted stream may be invisibly desynced (a flipped
				// length prefix leaves the daemon waiting forever), so give
				// the bytes a moment to land and then tear the pair — the
				// same fate as a reset, which the reconnect layer absorbs.
				time.AfterFunc(100*time.Millisecond, func() {
					dst.Close()
					src.Close()
				})
			}
		}
		if err != nil {
			if err != io.EOF {
				_ = err
			}
			break
		}
	}
	// Half-close semantics are irrelevant for a fault proxy: one side dying
	// tears the pair, which is also what a real reset does.
	dst.Close()
	src.Close()
}

// garble applies the seeded garbage schedule to one forwarded chunk: it
// may flip a bit of chunk in place, and it may return a junk frame to
// inject ahead of the chunk (nil means nothing to inject); hit reports
// whether either fault fired. The rng is shared across pumps, so the
// schedule is deterministic only for a fixed interleaving — what the seed
// pins down is the corruption mix, not which connection eats which fault.
func (p *Proxy) garble(chunk []byte) (junk []byte, hit bool) {
	p.mu.Lock()
	roll := p.rng.Intn(64)
	var flipAt, flipBit = -1, byte(0)
	if roll < 4 {
		flipAt = p.rng.Intn(len(chunk))
		flipBit = 1 << p.rng.Intn(8)
	}
	if roll == 4 {
		// A well-formed length prefix over random bytes: frames fine,
		// decodes to garbage.
		n := 1 + p.rng.Intn(32)
		junk = make([]byte, 4+n)
		junk[3] = byte(n)
		for i := 4; i < len(junk); i++ {
			junk[i] = byte(p.rng.Intn(256))
		}
	}
	p.mu.Unlock()
	if flipAt >= 0 {
		chunk[flipAt] ^= flipBit
		p.opts.Logf("chaos: garbage: flipped bit %#02x at offset %d of a %d-byte chunk", flipBit, flipAt, len(chunk))
	}
	if junk != nil {
		p.opts.Logf("chaos: garbage: injected %d-byte junk frame", len(junk))
	}
	return junk, flipAt >= 0 || junk != nil
}
