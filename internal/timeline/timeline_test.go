package timeline

import (
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	r.Add("A", Write, 0, 2)
	r.Add("A", Wait, 2, 3)
	r.Add("B", Write, 1, 4)
	if len(r.Intervals()) != 3 {
		t.Fatalf("intervals = %d", len(r.Intervals()))
	}
	actors := r.Actors()
	if len(actors) != 2 || actors[0] != "A" || actors[1] != "B" {
		t.Fatalf("actors = %v", actors)
	}
	lo, hi := r.Span()
	if lo != 0 || hi != 4 {
		t.Fatalf("span = %v %v", lo, hi)
	}
}

func TestTotals(t *testing.T) {
	var r Recorder
	r.Add("A", Write, 0, 2)
	r.Add("A", Write, 5, 6)
	r.Add("A", Wait, 2, 5)
	tot := r.Totals()
	if tot["A"][Write] != 3 || tot["A"][Wait] != 3 {
		t.Fatalf("totals = %v", tot["A"])
	}
}

func TestGanttRendering(t *testing.T) {
	var r Recorder
	r.Add("app-a", Write, 0, 5)
	r.Add("app-a", Wait, 5, 10)
	r.Add("app-b", Comm, 0, 10)
	g := r.Gantt(40)
	for _, want := range []string{"app-a", "app-b", "#", "w", "c", "legend"} {
		if !strings.Contains(g, want) {
			t.Fatalf("gantt missing %q:\n%s", want, g)
		}
	}
	// Rows are equal width.
	var widths []int
	for _, line := range strings.Split(g, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 && strings.HasSuffix(line, "|") {
			widths = append(widths, len(line))
		}
	}
	if len(widths) != 2 || widths[0] != widths[1] {
		t.Fatalf("row widths = %v", widths)
	}
}

func TestGanttEmpty(t *testing.T) {
	var r Recorder
	if g := r.Gantt(40); !strings.Contains(g, "empty") {
		t.Fatalf("empty gantt = %q", g)
	}
}

func TestGanttInstantEventVisible(t *testing.T) {
	var r Recorder
	r.Add("A", Write, 0, 10)
	r.Add("A", Wait, 5, 5.0001)
	g := r.Gantt(40)
	if !strings.Contains(g, "w") {
		t.Fatalf("instant event invisible:\n%s", g)
	}
}

func TestBadIntervalPanics(t *testing.T) {
	var r Recorder
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Add("A", Write, 5, 4)
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		Compute: "compute", Wait: "wait", Comm: "comm", Write: "write", Read: "read",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
}
