// Package timeline records labeled intervals from a simulation run and
// renders them as an ASCII Gantt chart — the visualization equivalent of
// the paper's Fig. 5 policy diagrams, produced from actual runs.
package timeline

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies an interval.
type Kind int

const (
	// Compute: the application runs between I/O phases.
	Compute Kind = iota
	// Wait: blocked in the coordination layer.
	Wait
	// Comm: collective-buffering communication round.
	Comm
	// Write: file-system write round.
	Write
	// Read: file-system read round.
	Read
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Wait:
		return "wait"
	case Comm:
		return "comm"
	case Write:
		return "write"
	case Read:
		return "read"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// glyph is the Gantt fill character per kind.
func (k Kind) glyph() byte {
	switch k {
	case Compute:
		return '.'
	case Wait:
		return 'w'
	case Comm:
		return 'c'
	case Write:
		return '#'
	case Read:
		return 'r'
	}
	return '?'
}

// Interval is one recorded span.
type Interval struct {
	Actor string
	Kind  Kind
	Start float64
	End   float64
}

// Recorder accumulates intervals. The zero value is ready to use.
type Recorder struct {
	intervals []Interval
}

// Add records an interval; zero-length intervals are kept (they still show
// in totals) but render nothing.
func (r *Recorder) Add(actor string, kind Kind, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("timeline: interval ends before it starts: %v > %v", start, end))
	}
	r.intervals = append(r.intervals, Interval{actor, kind, start, end})
}

// Intervals returns all recorded intervals.
func (r *Recorder) Intervals() []Interval { return r.intervals }

// Actors returns the distinct actor names in first-appearance order.
func (r *Recorder) Actors() []string {
	var out []string
	seen := map[string]bool{}
	for _, iv := range r.intervals {
		if !seen[iv.Actor] {
			seen[iv.Actor] = true
			out = append(out, iv.Actor)
		}
	}
	return out
}

// Totals sums interval durations per (actor, kind).
func (r *Recorder) Totals() map[string]map[Kind]float64 {
	out := map[string]map[Kind]float64{}
	for _, iv := range r.intervals {
		m := out[iv.Actor]
		if m == nil {
			m = map[Kind]float64{}
			out[iv.Actor] = m
		}
		m[iv.Kind] += iv.End - iv.Start
	}
	return out
}

// Span returns the [min, max] time covered.
func (r *Recorder) Span() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, iv := range r.intervals {
		lo = math.Min(lo, iv.Start)
		hi = math.Max(hi, iv.End)
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}

// Gantt renders the recorded intervals as one row per actor. Later
// intervals overwrite earlier ones where they overlap; within one actor a
// well-formed simulation produces disjoint intervals anyway.
func (r *Recorder) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	lo, hi := r.Span()
	if hi <= lo {
		return "(empty timeline)\n"
	}
	actors := r.Actors()
	sort.Strings(actors)
	rows := make(map[string][]byte, len(actors))
	maxName := 0
	for _, a := range actors {
		rows[a] = []byte(strings.Repeat(" ", width))
		if len(a) > maxName {
			maxName = len(a)
		}
	}
	scale := float64(width) / (hi - lo)
	for _, iv := range r.intervals {
		row := rows[iv.Actor]
		s := int((iv.Start - lo) * scale)
		e := int(math.Ceil((iv.End - lo) * scale))
		if e > width {
			e = width
		}
		if e == s && e < width {
			e = s + 1 // make instantaneous events visible
		}
		for i := s; i < e; i++ {
			row[i] = iv.Kind.glyph()
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  t=%.2fs%s t=%.2fs\n", maxName, "",
		lo, strings.Repeat(" ", max(0, width-16)), hi)
	for _, a := range actors {
		fmt.Fprintf(&b, "%*s |%s|\n", maxName, a, rows[a])
	}
	fmt.Fprintf(&b, "%*s  legend: #=write c=comm w=wait r=read .=compute\n", maxName, "")
	return b.String()
}
