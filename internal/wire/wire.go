// Package wire defines the calciomd network protocol: the CALCioM
// coordination API (Prepare/Complete/Inform/Check/Wait/Release, paper
// §III-C) carried as length-prefixed JSON frames over a byte stream.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many bytes of JSON. Frames above MaxFrame are rejected on both read
// and write, so a corrupt length prefix cannot make a peer allocate
// unboundedly.
//
// Message flow: the client sends Request frames, each carrying a
// client-chosen nonzero Seq; the server answers every request with exactly
// one Response frame of type TypeResp echoing that Seq. Responses can be
// deferred and arrive out of order — TypeWait in particular is answered only
// once arbitration authorizes the application. The server additionally
// pushes unsolicited frames (Seq 0) of type TypeGrant or TypeRevoke whenever
// an application's authorization flips without a Wait pending, so a client
// polling Check sees revocations without a round trip.
//
// Request types and their fields:
//
//	register  App, Cores, Target?  introduce the application (first request);
//	                               Target sets the session's default target
//	prepare   Info, Target?        stack MPI_Info-style hints (bytes_total, ...)
//	complete  Target?              unstack the most recent prepare
//	inform    BytesDone?, Target?  open/continue an I/O phase, trigger arbitration
//	progress  BytesDone, Target?   report progress only; no state change
//	check     Target?              poll authorization; never blocks
//	wait      Target?              block until authorized (deferred response)
//	release   BytesDone?, Target?  end one access step
//	end       Target?              end the I/O phase entirely
//	stats     —                    LASSi-style live metrics snapshot
//
// Target names the storage target (PFS server group, burst buffer, ...)
// whose coordination domain the request addresses: arbitration is
// independent per target, so a grant on one target never convoys behind a
// holder on another. An empty Target means the session's default target
// (itself defaulting to ""), which preserves the original single-target
// protocol byte for byte — a client that never sets Target speaks exactly
// the pre-target wire format.
//
// Every TypeResp response carries the application's authorization on the
// request's target at the time it was sent (Target echoed), so a client can
// maintain its cached per-target Check state from the ordered response
// stream alone.
//
// The protocol is deliberately ignorant of transport concerns beyond
// framing; internal/server and internal/client own connection lifecycle.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// MaxFrame is the maximum payload size either side will read or write.
const MaxFrame = 1 << 20

// Request types, client → server.
const (
	TypeRegister = "register"
	TypePrepare  = "prepare"
	TypeComplete = "complete"
	TypeInform   = "inform"
	TypeProgress = "progress"
	TypeCheck    = "check"
	TypeWait     = "wait"
	TypeRelease  = "release"
	TypeEnd      = "end"
	TypeStats    = "stats"
)

// Response types, server → client.
const (
	// TypeResp answers one Request, echoing its Seq.
	TypeResp = "resp"
	// TypeGrant is an unsolicited authorization grant (Seq 0).
	TypeGrant = "grant"
	// TypeRevoke is an unsolicited authorization revocation (Seq 0).
	TypeRevoke = "revoke"
)

// Error codes carried on Response.Code when Err is set. Codes partition
// failures into retryable conditions (the request may succeed against the
// same daemon later, or against its successor after a restart) and fatal
// protocol errors (retrying the identical request can never succeed).
// Responses from daemons predating codes carry Code "" — clients must treat
// an empty code as fatal, which matches the old fail-fast behavior.
const (
	// CodeDraining: the daemon is shutting down gracefully; re-issue the
	// request after reconnecting (to a restarted daemon). Retryable.
	CodeDraining = "draining"
	// CodeStaleIncarnation: a register named an incarnation not newer than
	// the one the daemon already holds for that app name — a second client
	// instance lost the resume race. Fatal for this client instance.
	CodeStaleIncarnation = "stale_incarnation"
	// CodeDuplicate: the app name is registered by a live session and the
	// register carried no incarnation (legacy client). Fatal.
	CodeDuplicate = "duplicate"
	// CodeTooManyTargets: the daemon's MaxTargets bound is exhausted. Fatal.
	CodeTooManyTargets = "too_many_targets"
	// CodeProtocol: the request violated the coordination protocol state
	// machine (complete without prepare, release while idle, ...). Fatal.
	CodeProtocol = "protocol"
	// CodeBusy: admission control rejected a new registration because the
	// daemon is at its max_sessions bound. Retryable — capacity frees as
	// sessions end or are evicted.
	CodeBusy = "busy"
	// CodeOverloaded: the daemon shed this request under load (a shard over
	// its queue high-water mark sheds advisory verbs; a connection over its
	// rate limit is throttled). Retryable after backing off.
	CodeOverloaded = "overloaded"
)

// Retryable reports whether an error code names a transient condition worth
// backing off and retrying, as opposed to a protocol violation or a lost
// resume race that no retry can fix.
func Retryable(code string) bool {
	return code == CodeDraining || code == CodeBusy || code == CodeOverloaded
}

// Request is a client → server message.
type Request struct {
	Seq   uint64            `json:"seq"`
	Type  string            `json:"type"`
	App   string            `json:"app,omitempty"`   // register
	Cores int               `json:"cores,omitempty"` // register
	Info  map[string]string `json:"info,omitempty"`  // prepare
	// BytesDone, when positive, reports phase progress (monotone max), as
	// the paper piggybacks progress on coordination messages. Honored on
	// inform and release.
	BytesDone float64 `json:"bytes_done,omitempty"`
	// Target names the storage target this request addresses; empty means
	// the session's default target. On register it sets that default.
	Target string `json:"target,omitempty"`
	// Incarnation, on register, is the client instance's monotonically
	// increasing connection epoch for this app name. Zero means a legacy
	// client: the name must be free. Nonzero means resume semantics: if the
	// name is held by a disconnected (grace-window) or superseded session,
	// a strictly newer incarnation reclaims the name and its accounting.
	Incarnation uint64 `json:"incarnation,omitempty"`
	// SelfGrants and DegradedS, on register, report coordination the client
	// performed for itself while the daemon was unreachable past its
	// fail-open deadline: the number of self-granted waits and the seconds
	// spent in degraded (uncoordinated) mode since the last report. The
	// daemon folds them into per-app degraded accounting in Stats.
	SelfGrants uint64  `json:"self_grants,omitempty"`
	DegradedS  float64 `json:"degraded_s,omitempty"`
}

// Response is a server → client message: either the answer to one request
// (TypeResp, Seq echoed) or an unsolicited push (TypeGrant/TypeRevoke,
// Seq 0).
type Response struct {
	Seq  uint64 `json:"seq,omitempty"`
	Type string `json:"type"`
	OK   bool   `json:"ok,omitempty"`
	Err  string `json:"err,omitempty"`
	// Code classifies Err (see the Code* constants); empty on success and
	// on errors from daemons predating typed codes (treat as fatal).
	Code       string `json:"code,omitempty"`
	Authorized bool   `json:"authorized,omitempty"`
	// Target names the storage target the Authorized bit (or the pushed
	// grant/revoke) refers to; empty is the default target.
	Target string `json:"target,omitempty"`
	Stats  *Stats `json:"stats,omitempty"`
}

// AppStats is one application's slice of the live metrics snapshot on one
// storage target. An application coordinating on several targets appears
// once per target; a session appears from its first coordination verb on a
// target (registration alone announces no coordination domain, so a
// registered-but-idle session is counted in Stats.Sessions but has no app
// row yet).
type AppStats struct {
	Name string `json:"name"`
	// Target is the storage target these counters belong to ("" = default).
	Target     string  `json:"target,omitempty"`
	Cores      int     `json:"cores"`
	State      string  `json:"state"`
	Authorized bool    `json:"authorized,omitempty"`
	Phases     int     `json:"phases"`
	Grants     uint64  `json:"grants"`
	BytesTotal float64 `json:"bytes_total,omitempty"`
	BytesDone  float64 `json:"bytes_done,omitempty"`
	IOTimeS    float64 `json:"io_time_s"`
	WaitTimeS  float64 `json:"wait_time_s"`
	// WaitsImmediate counts Waits answered without deferral (the app was
	// already authorized — the only cost was the protocol round trip);
	// WaitsDeferred counts Waits parked until a later arbitration granted
	// access. Their sum is Grants.
	WaitsImmediate uint64 `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64 `json:"waits_deferred,omitempty"`
	// ConvoyWaitS and ProtocolWaitS decompose WaitTimeS by the cause at the
	// moment the Wait was deferred: convoy time was spent queued behind
	// another authorized application (the fcfs start-up convoy the load
	// generator's -stagger flag works around); protocol time was deferred
	// with no other holder — pure arbitration/recheck latency (a delay
	// policy holding everyone back, for example). Replay (internal/replay)
	// computes the identical decomposition offline.
	ConvoyWaitS   float64 `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS float64 `json:"protocol_wait_s,omitempty"`
	// Interference is observed I/O time over model-estimated solo time for
	// the work declared so far — the live analogue of the paper's I factor.
	// Zero when the daemon has no performance model.
	Interference float64 `json:"interference,omitempty"`
}

// TargetStats is one storage target's slice of the machine-wide aggregates:
// the combining layer over the per-target arbiters. Counters follow the
// same cumulative discipline as the top-level Stats fields.
type TargetStats struct {
	Target         string  `json:"target"` // "" = the default target
	Apps           int     `json:"apps"`   // sessions attached to this target
	Arbitrations   uint64  `json:"arbitrations"`
	GrantsServed   uint64  `json:"grants_served"`
	WaitsImmediate uint64  `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64  `json:"waits_deferred,omitempty"`
	ConvoyWaitS    float64 `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS  float64 `json:"protocol_wait_s,omitempty"`
	LastDecision   string  `json:"last_decision,omitempty"`
	// WaitHist summarizes this target's wait-to-grant latency distribution;
	// nil on daemons not collecting metrics (the field predates nothing — it
	// simply rides along only when an obs registry is configured).
	WaitHist *Hist `json:"wait_hist,omitempty"`
}

// Hist is a fixed-bucket histogram summary riding a stats snapshot: the
// upper bounds (seconds) and one count per bucket, the last being the +Inf
// overflow. It carries the same shape the daemon's /metrics endpoint
// exposes, so offline replay can report percentiles bucket-compatible with
// the live scrape.
type Hist struct {
	BoundsS []float64 `json:"bounds_s"`
	Counts  []uint64  `json:"counts"` // len(BoundsS)+1
	SumS    float64   `json:"sum_s"`
	Count   uint64    `json:"count"`
}

// Add folds another histogram with identical bounds into h (merging shard
// histograms into the machine-wide one).
func (h *Hist) Add(o *Hist) {
	if o == nil {
		return
	}
	for i := range o.Counts {
		if i < len(h.Counts) {
			h.Counts[i] += o.Counts[i]
		}
	}
	h.SumS += o.SumS
	h.Count += o.Count
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the bound
// of the bucket the ceil-rank observation landed in, +Inf for the overflow
// bucket, 0 on an empty histogram. Bucket resolution bounds the error, which
// is the usual histogram-quantile trade.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			if i < len(h.BoundsS) {
				return h.BoundsS[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Stats is the daemon's LASSi-style live snapshot: per-application I/O and
// wait accounting plus machine-wide aggregates, computed on demand from the
// arbitration goroutines so it is always consistent. Apps are sorted by
// (name, target); Targets by target name. The top-level counters are the
// sums over all targets, so a single-target daemon reports exactly what it
// did before targets existed.
type Stats struct {
	Policy           string  `json:"policy"`
	NowS             float64 `json:"now_s"`
	Sessions         int     `json:"sessions"`
	Arbitrations     uint64  `json:"arbitrations"`
	GrantsServed     uint64  `json:"grants_served"`
	CPUSecondsWasted float64 `json:"cpu_seconds_wasted"`
	SumInterference  float64 `json:"sum_interference,omitempty"`
	// Machine-wide sums of the per-app wait decomposition (see AppStats),
	// cumulative like GrantsServed: departed sessions' counters remain
	// included, so the aggregates match what a replay of the full trace
	// reports (the Apps list itself covers only live sessions).
	WaitsImmediate uint64  `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64  `json:"waits_deferred,omitempty"`
	ConvoyWaitS    float64 `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS  float64 `json:"protocol_wait_s,omitempty"`
	LastDecision   string  `json:"last_decision,omitempty"`
	// SelfGrants and DegradedS total the degraded (uncoordinated) windows
	// clients have reported on resume: waits each client granted itself
	// while the daemon was unreachable past its fail-open deadline, and the
	// seconds spent in that mode. Cumulative per app name (not per target —
	// a client cut off from the daemon is cut off from every target), and
	// preserved across resume like the rest of the accounting.
	SelfGrants uint64  `json:"self_grants,omitempty"`
	DegradedS  float64 `json:"degraded_s,omitempty"`
	// WaitHist is the machine-wide wait-to-grant latency histogram (the sum
	// of every target's); nil unless the daemon collects metrics.
	WaitHist *Hist      `json:"wait_hist,omitempty"`
	Apps     []AppStats `json:"apps,omitempty"`
	// Degraded lists per-app-name degraded windows, sorted by name; only
	// apps that reported any appear. Kept separate from Apps because those
	// rows are per (app, target) while fail-open is a per-client condition.
	Degraded []DegradedStats `json:"degraded,omitempty"`
	// Targets is the per-storage-target breakdown, one entry per target
	// that has seen coordination traffic, sorted by target name.
	Targets []TargetStats `json:"targets,omitempty"`
}

// DegradedStats is one application's cumulative fail-open accounting: how
// much coordination it performed for itself while the daemon was
// unreachable. Reported by the client on resume, so the daemon that was down
// learns about the outage from the survivors that come back.
type DegradedStats struct {
	Name       string  `json:"name"`
	SelfGrants uint64  `json:"self_grants"`
	DegradedS  float64 `json:"degraded_s"`
	// Resumes counts successful resume registrations (incarnation > 1 on a
	// name the daemon knew), degraded or not — a measure of connection churn.
	Resumes uint64 `json:"resumes,omitempty"`
}

// Write marshals v and writes it as one frame.
func Write(w io.Writer, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(buf) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(buf), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Reader decodes frames from a stream, reusing one payload buffer across
// reads.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps a stream. The caller should pass something buffered.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read decodes the next frame into v. io.EOF is returned untouched on a
// clean end of stream (EOF at a frame boundary); a partial frame becomes
// io.ErrUnexpectedEOF.
func (d *Reader) Read(v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("wire: bad frame length %d", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if err := json.Unmarshal(d.buf, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Read decodes one frame from r into v (a convenience for one-shot use;
// Reader amortizes the buffer).
func Read(r io.Reader, v any) error { return NewReader(r).Read(v) }
