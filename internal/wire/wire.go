// Package wire defines the calciomd network protocol: the CALCioM
// coordination API (Prepare/Complete/Inform/Check/Wait/Release, paper
// §III-C) carried as length-prefixed JSON frames over a byte stream.
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many bytes of JSON. Frames above MaxFrame are rejected on both read
// and write, so a corrupt length prefix cannot make a peer allocate
// unboundedly.
//
// Message flow: the client sends Request frames, each carrying a
// client-chosen nonzero Seq; the server answers every request with exactly
// one Response frame of type TypeResp echoing that Seq. Responses can be
// deferred and arrive out of order — TypeWait in particular is answered only
// once arbitration authorizes the application. The server additionally
// pushes unsolicited frames (Seq 0) of type TypeGrant or TypeRevoke whenever
// an application's authorization flips without a Wait pending, so a client
// polling Check sees revocations without a round trip.
//
// Request types and their fields:
//
//	register  App, Cores, Target?  introduce the application (first request);
//	                               Target sets the session's default target
//	prepare   Info, Target?        stack MPI_Info-style hints (bytes_total, ...)
//	complete  Target?              unstack the most recent prepare
//	inform    BytesDone?, Target?  open/continue an I/O phase, trigger arbitration
//	progress  BytesDone, Target?   report progress only; no state change
//	check     Target?              poll authorization; never blocks
//	wait      Target?              block until authorized (deferred response)
//	release   BytesDone?, Target?  end one access step
//	end       Target?              end the I/O phase entirely
//	stats     —                    LASSi-style live metrics snapshot
//
// Target names the storage target (PFS server group, burst buffer, ...)
// whose coordination domain the request addresses: arbitration is
// independent per target, so a grant on one target never convoys behind a
// holder on another. An empty Target means the session's default target
// (itself defaulting to ""), which preserves the original single-target
// protocol byte for byte — a client that never sets Target speaks exactly
// the pre-target wire format.
//
// Every TypeResp response carries the application's authorization on the
// request's target at the time it was sent (Target echoed), so a client can
// maintain its cached per-target Check state from the ordered response
// stream alone.
//
// The protocol is deliberately ignorant of transport concerns beyond
// framing; internal/server and internal/client own connection lifecycle.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame is the maximum payload size either side will read or write.
const MaxFrame = 1 << 20

// Request types, client → server.
const (
	TypeRegister = "register"
	TypePrepare  = "prepare"
	TypeComplete = "complete"
	TypeInform   = "inform"
	TypeProgress = "progress"
	TypeCheck    = "check"
	TypeWait     = "wait"
	TypeRelease  = "release"
	TypeEnd      = "end"
	TypeStats    = "stats"
)

// Response types, server → client.
const (
	// TypeResp answers one Request, echoing its Seq.
	TypeResp = "resp"
	// TypeGrant is an unsolicited authorization grant (Seq 0).
	TypeGrant = "grant"
	// TypeRevoke is an unsolicited authorization revocation (Seq 0).
	TypeRevoke = "revoke"
)

// Request is a client → server message.
type Request struct {
	Seq   uint64            `json:"seq"`
	Type  string            `json:"type"`
	App   string            `json:"app,omitempty"`   // register
	Cores int               `json:"cores,omitempty"` // register
	Info  map[string]string `json:"info,omitempty"`  // prepare
	// BytesDone, when positive, reports phase progress (monotone max), as
	// the paper piggybacks progress on coordination messages. Honored on
	// inform and release.
	BytesDone float64 `json:"bytes_done,omitempty"`
	// Target names the storage target this request addresses; empty means
	// the session's default target. On register it sets that default.
	Target string `json:"target,omitempty"`
}

// Response is a server → client message: either the answer to one request
// (TypeResp, Seq echoed) or an unsolicited push (TypeGrant/TypeRevoke,
// Seq 0).
type Response struct {
	Seq        uint64 `json:"seq,omitempty"`
	Type       string `json:"type"`
	OK         bool   `json:"ok,omitempty"`
	Err        string `json:"err,omitempty"`
	Authorized bool   `json:"authorized,omitempty"`
	// Target names the storage target the Authorized bit (or the pushed
	// grant/revoke) refers to; empty is the default target.
	Target string `json:"target,omitempty"`
	Stats  *Stats `json:"stats,omitempty"`
}

// AppStats is one application's slice of the live metrics snapshot on one
// storage target. An application coordinating on several targets appears
// once per target; a session appears from its first coordination verb on a
// target (registration alone announces no coordination domain, so a
// registered-but-idle session is counted in Stats.Sessions but has no app
// row yet).
type AppStats struct {
	Name string `json:"name"`
	// Target is the storage target these counters belong to ("" = default).
	Target     string  `json:"target,omitempty"`
	Cores      int     `json:"cores"`
	State      string  `json:"state"`
	Authorized bool    `json:"authorized,omitempty"`
	Phases     int     `json:"phases"`
	Grants     uint64  `json:"grants"`
	BytesTotal float64 `json:"bytes_total,omitempty"`
	BytesDone  float64 `json:"bytes_done,omitempty"`
	IOTimeS    float64 `json:"io_time_s"`
	WaitTimeS  float64 `json:"wait_time_s"`
	// WaitsImmediate counts Waits answered without deferral (the app was
	// already authorized — the only cost was the protocol round trip);
	// WaitsDeferred counts Waits parked until a later arbitration granted
	// access. Their sum is Grants.
	WaitsImmediate uint64 `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64 `json:"waits_deferred,omitempty"`
	// ConvoyWaitS and ProtocolWaitS decompose WaitTimeS by the cause at the
	// moment the Wait was deferred: convoy time was spent queued behind
	// another authorized application (the fcfs start-up convoy the load
	// generator's -stagger flag works around); protocol time was deferred
	// with no other holder — pure arbitration/recheck latency (a delay
	// policy holding everyone back, for example). Replay (internal/replay)
	// computes the identical decomposition offline.
	ConvoyWaitS   float64 `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS float64 `json:"protocol_wait_s,omitempty"`
	// Interference is observed I/O time over model-estimated solo time for
	// the work declared so far — the live analogue of the paper's I factor.
	// Zero when the daemon has no performance model.
	Interference float64 `json:"interference,omitempty"`
}

// TargetStats is one storage target's slice of the machine-wide aggregates:
// the combining layer over the per-target arbiters. Counters follow the
// same cumulative discipline as the top-level Stats fields.
type TargetStats struct {
	Target         string  `json:"target"` // "" = the default target
	Apps           int     `json:"apps"`   // sessions attached to this target
	Arbitrations   uint64  `json:"arbitrations"`
	GrantsServed   uint64  `json:"grants_served"`
	WaitsImmediate uint64  `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64  `json:"waits_deferred,omitempty"`
	ConvoyWaitS    float64 `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS  float64 `json:"protocol_wait_s,omitempty"`
	LastDecision   string  `json:"last_decision,omitempty"`
}

// Stats is the daemon's LASSi-style live snapshot: per-application I/O and
// wait accounting plus machine-wide aggregates, computed on demand from the
// arbitration goroutines so it is always consistent. Apps are sorted by
// (name, target); Targets by target name. The top-level counters are the
// sums over all targets, so a single-target daemon reports exactly what it
// did before targets existed.
type Stats struct {
	Policy           string  `json:"policy"`
	NowS             float64 `json:"now_s"`
	Sessions         int     `json:"sessions"`
	Arbitrations     uint64  `json:"arbitrations"`
	GrantsServed     uint64  `json:"grants_served"`
	CPUSecondsWasted float64 `json:"cpu_seconds_wasted"`
	SumInterference  float64 `json:"sum_interference,omitempty"`
	// Machine-wide sums of the per-app wait decomposition (see AppStats),
	// cumulative like GrantsServed: departed sessions' counters remain
	// included, so the aggregates match what a replay of the full trace
	// reports (the Apps list itself covers only live sessions).
	WaitsImmediate uint64     `json:"waits_immediate,omitempty"`
	WaitsDeferred  uint64     `json:"waits_deferred,omitempty"`
	ConvoyWaitS    float64    `json:"convoy_wait_s,omitempty"`
	ProtocolWaitS  float64    `json:"protocol_wait_s,omitempty"`
	LastDecision   string     `json:"last_decision,omitempty"`
	Apps           []AppStats `json:"apps,omitempty"`
	// Targets is the per-storage-target breakdown, one entry per target
	// that has seen coordination traffic, sorted by target name.
	Targets []TargetStats `json:"targets,omitempty"`
}

// Write marshals v and writes it as one frame.
func Write(w io.Writer, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(buf) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(buf), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Reader decodes frames from a stream, reusing one payload buffer across
// reads.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps a stream. The caller should pass something buffered.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read decodes the next frame into v. io.EOF is returned untouched on a
// clean end of stream (EOF at a frame boundary); a partial frame becomes
// io.ErrUnexpectedEOF.
func (d *Reader) Read(v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("wire: bad frame length %d", n)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if err := json.Unmarshal(d.buf, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Read decodes one frame from r into v (a convenience for one-shot use;
// Reader amortizes the buffer).
func Read(r io.Reader, v any) error { return NewReader(r).Read(v) }
