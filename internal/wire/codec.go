package wire

import "io"

// Codec negotiation. The v1 protocol is length-prefixed JSON: every frame
// starts with a 4-byte big-endian payload length, and because MaxFrame is
// 1<<20 (< 1<<24) the first byte a v1 client ever sends is 0x00. A v2-capable
// client instead opens the connection with a two-byte hello [HelloMagic,
// version]; the server peeks at the first byte, and anything other than
// HelloMagic falls through to the v1 JSON path untouched — a client that
// never negotiates sees today's protocol byte for byte. On a recognised
// hello the server answers with the same two bytes and both directions
// switch to the negotiated codec before the first frame. Clients pipeline
// the hello with their first request (typically register), so negotiation
// adds no round trip.
const (
	// HelloMagic opens a codec-negotiation hello. It can never begin a v1
	// frame: v1 length prefixes are bounded by MaxFrame < 1<<24, so their
	// first byte is always zero.
	HelloMagic = 0xCB

	// VersionJSON is the implicit v1 length-prefixed JSON protocol. It is
	// never sent on the wire; it is what a connection speaks when no hello
	// was exchanged.
	VersionJSON = 1

	// VersionBinary is the v2 binary codec implemented by internal/wirebin.
	VersionBinary = 2

	// VersionBinaryMux is the v2 binary codec with session multiplexing: the
	// connection carries many logical sessions (streams), every frame's
	// payload is prefixed with a uvarint stream id, and both sides batch
	// writes across streams into one flush (group commit). The framing is
	// otherwise VersionBinary's; a daemon that predates mux rejects the
	// hello and closes, exactly like any other unknown version.
	VersionBinaryMux = 3
)

// RequestReader decodes a stream of requests (the server's read side).
// A reader carries per-connection decode state (reused buffers, interned
// strings) and must be used from a single goroutine.
type RequestReader interface {
	Read(*Request) error
}

// RequestWriter encodes requests onto a stream (the client's write side).
// Writers do not flush; the caller owns buffering and flush policy.
type RequestWriter interface {
	Write(*Request) error
}

// ResponseReader decodes a stream of responses (the client's read side).
type ResponseReader interface {
	Read(*Response) error
}

// ResponseWriter encodes responses onto a stream (the server's write side).
type ResponseWriter interface {
	Write(*Response) error
}

// Codec constructs the per-direction, per-connection encode/decode state of
// one wire format. Reader and writer halves of a connection may live in
// different goroutines, so each half is constructed independently.
type Codec interface {
	// Name identifies the codec in logs and metric labels: "json" or "binary".
	Name() string
	NewRequestReader(r io.Reader) RequestReader
	NewRequestWriter(w io.Writer) RequestWriter
	NewResponseReader(r io.Reader) ResponseReader
	NewResponseWriter(w io.Writer) ResponseWriter
}

// JSON is the v1 length-prefixed JSON codec. Its byte stream is exactly the
// protocol that predates codec negotiation.
var JSON Codec = jsonCodec{}

type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

func (jsonCodec) NewRequestReader(r io.Reader) RequestReader { return &jsonRequestReader{NewReader(r)} }
func (jsonCodec) NewRequestWriter(w io.Writer) RequestWriter { return jsonRequestWriter{w} }
func (jsonCodec) NewResponseReader(r io.Reader) ResponseReader {
	return &jsonResponseReader{NewReader(r)}
}
func (jsonCodec) NewResponseWriter(w io.Writer) ResponseWriter { return jsonResponseWriter{w} }

type jsonRequestReader struct{ r *Reader }

func (j *jsonRequestReader) Read(req *Request) error { return j.r.Read(req) }

type jsonResponseReader struct{ r *Reader }

func (j *jsonResponseReader) Read(resp *Response) error { return j.r.Read(resp) }

type jsonRequestWriter struct{ w io.Writer }

func (j jsonRequestWriter) Write(req *Request) error { return Write(j.w, req) }

type jsonResponseWriter struct{ w io.Writer }

func (j jsonResponseWriter) Write(resp *Response) error { return Write(j.w, resp) }
