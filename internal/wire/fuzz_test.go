package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader: whatever
// arrives on a daemon socket — truncated frames, hostile length prefixes,
// garbage JSON — must surface as an error, never a panic or an unbounded
// allocation. Seeds cover well-formed single and pipelined frames plus the
// classic malformations.
func FuzzReadFrame(f *testing.F) {
	frame := func(v any) []byte {
		var b bytes.Buffer
		if err := Write(&b, v); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(Request{Seq: 1, Type: TypeRegister, App: "A", Cores: 64, Incarnation: 1}))
	f.Add(frame(Request{Seq: 2, Type: TypePrepare, Info: map[string]string{"bytes_total": "1000"}}))
	f.Add(append(frame(Request{Seq: 3, Type: TypeInform, Target: "pfs0"}),
		frame(Request{Seq: 4, Type: TypeWait})...))
	f.Add(frame(Response{Seq: 1, Type: TypeResp, OK: true, Authorized: true, Target: "bb1"}))
	f.Add([]byte{0, 0, 0, 0})                  // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'}) // length far past MaxFrame
	f.Add([]byte{0x00, 0x10, 0x00, 0x00, '{'}) // truncated payload
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			var req Request
			if err := d.Read(&req); err != nil {
				return // malformed input must fail with an error, not a panic
			}
		}
	})
}

// FuzzDecodeRequest fuzzes the payload layer under a well-formed length
// prefix, reaching the JSON decoding a hostile client fully controls. A
// payload that decodes must also re-encode: the daemon echoes request
// fields (Seq, Target) into responses through the same marshaller, so a
// decodable-but-unmarshalable request would let a client crash replies.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"seq":1,"type":"register","app":"A","cores":4}`))
	f.Add([]byte(`{"seq":9,"type":"wait","target":"pfs0"}`))
	f.Add([]byte(`{"seq":2,"type":"release","bytes_done":1e300}`))
	f.Add([]byte(`{"seq":1,"type":"register","incarnation":18446744073709551615}`))
	f.Add([]byte(`{"seq":1,"type":"prepare","info":{"a":"1","b":"2"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > MaxFrame {
			t.Skip()
		}
		var b bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		b.Write(hdr[:])
		b.Write(payload)
		var req Request
		if err := Read(&b, &req); err != nil {
			return
		}
		// Escaping can grow a re-encoded string up to 6x (one control byte
		// becomes \u00XX), so only payloads with re-encode headroom under
		// MaxFrame assert the round trip.
		if len(payload) <= MaxFrame/8 {
			if err := Write(io.Discard, req); err != nil {
				t.Fatalf("decoded request failed to re-encode: %v (payload %q)", err, payload)
			}
		}
	})
}
