package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []Request{
		{Seq: 1, Type: TypeRegister, App: "A", Cores: 512},
		{Seq: 2, Type: TypePrepare, Info: map[string]string{"bytes_total": "1048576"}},
		{Seq: 3, Type: TypeInform, BytesDone: 42.5},
		{Seq: 4, Type: TypeWait},
	}
	for _, r := range reqs {
		if err := Write(&buf, r); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	dec := NewReader(&buf)
	for i, want := range reqs {
		var got Request
		if err := dec.Read(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Type != want.Type || got.App != want.App ||
			got.Cores != want.Cores || got.BytesDone != want.BytesDone {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if want.Info != nil && got.Info["bytes_total"] != want.Info["bytes_total"] {
			t.Fatalf("frame %d: info %v want %v", i, got.Info, want.Info)
		}
	}
	var extra Request
	if err := dec.Read(&extra); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{Seq: 7, Type: TypeResp, OK: true, Authorized: true,
		Stats: &Stats{Policy: "fcfs", GrantsServed: 3, Apps: []AppStats{{Name: "A", Cores: 4}}}}
	if err := Write(&buf, resp); err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := Read(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if !got.OK || !got.Authorized || got.Seq != 7 || got.Stats == nil ||
		got.Stats.Policy != "fcfs" || len(got.Stats.Apps) != 1 || got.Stats.Apps[0].Name != "A" {
		t.Fatalf("got %+v (stats %+v)", got, got.Stats)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Request{Seq: 1, Type: TypeCheck}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut inside the payload: must be ErrUnexpectedEOF, not a clean EOF.
	var got Request
	if err := Read(bytes.NewReader(full[:len(full)-2]), &got); err != io.ErrUnexpectedEOF {
		t.Fatalf("payload cut: want ErrUnexpectedEOF, got %v", err)
	}
	// Cut inside the header.
	if err := Read(bytes.NewReader(full[:2]), &got); err != io.ErrUnexpectedEOF {
		t.Fatalf("header cut: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var got Request
	err := Read(bytes.NewReader(hdr[:]), &got)
	if err == nil || !strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("want bad frame length error, got %v", err)
	}
	big := Request{Seq: 1, Type: TypePrepare,
		Info: map[string]string{"k": strings.Repeat("x", MaxFrame)}}
	if err := Write(io.Discard, big); err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("want oversize write error, got %v", err)
	}
}

func TestZeroLengthFrameRejected(t *testing.T) {
	var got Request
	err := Read(bytes.NewReader([]byte{0, 0, 0, 0}), &got)
	if err == nil || !strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("want bad frame length error, got %v", err)
	}
}

func TestGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var got Request
	if err := Read(&buf, &got); err == nil || !strings.Contains(err.Error(), "unmarshal") {
		t.Fatalf("want unmarshal error, got %v", err)
	}
}

// TestReaderReusesBuffer pins the allocation-amortization property: after the
// first read, same-size frames must not grow the buffer.
func TestReaderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 64; i++ {
		if err := Write(&buf, Request{Seq: uint64(i + 100), Type: TypeInform}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewReader(&buf)
	var got Request
	if err := dec.Read(&got); err != nil {
		t.Fatal(err)
	}
	c := cap(dec.buf)
	for i := 1; i < 64; i++ {
		if err := dec.Read(&got); err != nil {
			t.Fatal(err)
		}
	}
	if cap(dec.buf) != c {
		t.Fatalf("buffer regrew: %d -> %d", c, cap(dec.buf))
	}
}
