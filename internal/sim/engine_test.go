package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final clock = %v, want 3", e.Now())
	}
}

func TestScheduleTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Schedule(0.5, func() { e.Cancel(ev) })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	// Cancelling again is a no-op.
	e.Cancel(ev)
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(5, func() { count++ })
	end := e.RunUntil(2)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if end != 2 {
		t.Fatalf("clock = %v, want 2", end)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count after Run = %d, want 2", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(1, func() {})
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Stop", count)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake []float64
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(1)
		wake = append(wake, p.Now())
		p.Sleep(2.5)
		wake = append(wake, p.Now())
	})
	e.Run()
	if len(wake) != 2 || wake[0] != 1 || wake[1] != 3.5 {
		t.Fatalf("wake times = %v, want [1 3.5]", wake)
	}
}

func TestProcSleepZeroYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcSleepUntil(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.SleepUntil(4)
		if p.Now() != 4 {
			t.Errorf("now = %v, want 4", p.Now())
		}
		p.SleepUntil(2) // in the past: no-op
		if p.Now() != 4 {
			t.Errorf("now after past SleepUntil = %v, want 4", p.Now())
		}
	})
	e.Run()
}

func TestGoAt(t *testing.T) {
	e := NewEngine()
	started := -1.0
	e.GoAt(7, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 7 {
		t.Fatalf("start = %v, want 7", started)
	}
}

func TestSuspendResume(t *testing.T) {
	e := NewEngine()
	var r *Resumer
	done := -1.0
	e.Go("waiter", func(p *Proc) {
		r = p.Suspend()
		r.Park()
		done = p.Now()
	})
	e.Schedule(3, func() { r.Resume() })
	e.Run()
	if done != 3 {
		t.Fatalf("resumed at %v, want 3", done)
	}
	if !r.Fired() {
		t.Fatal("resumer should report fired")
	}
	r.Resume() // idempotent
}

func TestCondBroadcastFIFO(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Schedule(1, func() {
		if c.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", c.Waiters())
		}
		c.Broadcast()
	})
	e.Run()
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGate(t *testing.T) {
	e := NewEngine()
	g := NewGate(e, false)
	passed := -1.0
	e.Go("p", func(p *Proc) {
		g.Pass(p)
		passed = p.Now()
	})
	e.Schedule(2, func() { g.Open() })
	e.Run()
	if passed != 2 {
		t.Fatalf("passed at %v, want 2", passed)
	}
	if !g.IsOpen() {
		t.Fatal("gate should be open")
	}
	g.Close()
	if g.IsOpen() {
		t.Fatal("gate should be closed")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(2)
	done := -1.0
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	e.Schedule(1, wg.Done)
	e.Schedule(4, wg.Done)
	e.Run()
	if done != 4 {
		t.Fatalf("wait released at %v, want 4", done)
	}
	// Waiting on a zero group returns immediately.
	second := -1.0
	e.Go("fast", func(p *Proc) {
		wg.Wait(p)
		second = p.Now()
	})
	e.Run()
	if second != 4 {
		t.Fatalf("zero-group wait at %v, want 4", second)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative counter")
		}
	}()
	wg.Done()
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) {
		NewCond(e).Wait(p) // nobody will broadcast
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e.Run()
}

func TestDeterminismManyProcs(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var ts []float64
		for i := 0; i < 50; i++ {
			d := rng.Float64() * 10
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				ts = append(ts, p.Now())
				p.Sleep(d / 2)
				ts = append(ts, p.Now())
			})
		}
		e.Run()
		return ts
	}
	a := trace(42)
	b := trace(42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in nondecreasing time order, whatever the
// schedule.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delays []float64) bool {
		e := NewEngine()
		var fired []float64
		n := 0
		for _, d := range delays {
			if d < 0 {
				d = -d
			}
			if d > 1e9 {
				continue
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
			n++
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling from inside events preserves ordering.
func TestPropertyNestedSchedule(t *testing.T) {
	f := func(seed int64) bool {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var fired []float64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			e.Schedule(rng.Float64(), func() {
				fired = append(fired, e.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		e.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTracer(t *testing.T) {
	e := NewEngine()
	var lines []string
	e.SetTracer(TracerFunc(func(now float64, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%.1f ", now)+fmt.Sprintf(format, args...))
	}))
	e.Schedule(2, func() { e.Tracef("fired %d", 42) })
	e.Run()
	if len(lines) != 1 || lines[0] != "2.0 fired 42" {
		t.Fatalf("trace lines = %q", lines)
	}
	e.SetTracer(nil)
	e.Tracef("ignored") // must not panic with nil tracer
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d", e.Pending())
	}
}

func TestAtRejectsNaN(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling at NaN")
		}
	}()
	e.At(math.NaN(), func() {})
}

// TestCancelAfterPoolReuse pins down the safety contract of the event free
// list: a handle detaches from its record when the event fires or is
// cancelled, so a stale Cancel must never hit the record's next occupant.
func TestCancelAfterPoolReuse(t *testing.T) {
	e := NewEngine()
	ev1 := e.Schedule(1, func() {})
	e.Run()
	if !ev1.Cancelled() {
		t.Fatal("fired event should report cancelled")
	}
	// ev2 reuses ev1's pooled record.
	fired := false
	ev2 := e.Schedule(1, func() { fired = true })
	e.Cancel(ev1) // stale: must not touch ev2
	e.Run()
	if !fired {
		t.Fatal("stale Cancel of a fired handle cancelled the reused record")
	}
	// Same for a cancelled (rather than fired) handle.
	ev3 := e.Schedule(1, func() {})
	e.Cancel(ev3)
	fired = false
	ev4 := e.Schedule(1, func() { fired = true })
	e.Cancel(ev3) // stale double-cancel
	e.Run()
	if !fired {
		t.Fatal("stale double-Cancel cancelled the reused record")
	}
	_ = ev2
	_ = ev4
}

// TestPostFastPath checks that Post interleaves with same-instant heap
// events in sequence order, exactly like Schedule(0, ...).
func TestPostFastPath(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Post(func() { got = append(got, 0) })
	e.Schedule(0, func() { got = append(got, 1) })
	e.Post(func() { got = append(got, 2) })
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestPostNested checks posts made from inside posted callbacks run at the
// same instant, after everything already queued.
func TestPostNested(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Post(func() {
		got = append(got, 0)
		e.Post(func() { got = append(got, 2) })
	})
	e.Post(func() { got = append(got, 1) })
	e.Schedule(1, func() { got = append(got, 3) })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 1 {
		t.Fatalf("clock = %v, want 1", e.Now())
	}
}

// TestPostBeforeEarlierHeapEvent: a post at t=5 must still run before a
// heap event at t=7.
func TestPostBeforeEarlierHeapEvent(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(5, func() { e.Post(func() { got = append(got, "post@5") }) })
	e.Schedule(7, func() { got = append(got, "heap@7") })
	e.Run()
	if len(got) != 2 || got[0] != "post@5" || got[1] != "heap@7" {
		t.Fatalf("order = %v", got)
	}
}

func TestTimerRescheduleAndCancel(t *testing.T) {
	e := NewEngine()
	var fired []float64
	tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
	if tm.Pending() {
		t.Fatal("new timer should not be pending")
	}
	tm.Schedule(5)
	tm.Schedule(2) // replaces the pending occurrence
	if !tm.Pending() || tm.When() != 2 {
		t.Fatalf("pending=%v when=%v, want true/2", tm.Pending(), tm.When())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", fired)
	}
	// Rearm after firing: the owned record is reusable.
	tm.Schedule(3)
	tm.Cancel()
	tm.Cancel() // double cancel is a no-op
	e.Run()
	if len(fired) != 1 {
		t.Fatalf("cancelled timer fired: %v", fired)
	}
	tm.ScheduleAt(e.Now() + 4)
	e.Run()
	if len(fired) != 2 || fired[1] != 6 {
		t.Fatalf("fired = %v, want [2 6]", fired)
	}
}

func TestTimerOrderingMatchesSequence(t *testing.T) {
	e := NewEngine()
	var got []int
	tm := e.NewTimer(func() { got = append(got, 0) })
	tm.Schedule(1)
	e.Schedule(1, func() { got = append(got, 1) })
	e.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("order = %v, want [0 1]", got)
	}
}

// TestScheduleSteadyStateDoesNotGrow exercises the free list: a long
// schedule/fire cycle must recycle records rather than accumulate them.
func TestScheduleSteadyStateDoesNotGrow(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10000; i++ {
		e.Schedule(1, func() {})
		e.Run()
	}
	if len(e.free) > 4 {
		t.Fatalf("free list grew to %d records; want a handful", len(e.free))
	}
}

// TestPostRespectsHorizon: posted callbacks belong to the instant they were
// posted at, so a RunUntil horizon already behind the clock must not fire
// them — they wait for the next run, exactly like a Schedule(0) event.
func TestPostRespectsHorizon(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.RunUntil(5) // clock at 5
	fired := false
	e.Post(func() { fired = true })
	e.RunUntil(3) // horizon behind now: nothing may fire
	if fired {
		t.Fatal("post fired past the horizon")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !fired {
		t.Fatal("post lost after horizon-limited run")
	}
}

func TestResetClearsStateKeepsPools(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	run := func() []float64 {
		fired = fired[:0]
		eng.Schedule(2, func() { fired = append(fired, eng.Now()) })
		eng.Schedule(1, func() {
			fired = append(fired, eng.Now())
			eng.Post(func() { fired = append(fired, -eng.Now()) })
		})
		eng.Run()
		return append([]float64(nil), fired...)
	}
	first := run()

	// Leave debris behind: pending events, a posted callback, a pending
	// timer, an advanced clock — Reset must clear all of it.
	ev := eng.Schedule(5, func() { t.Error("cancelled-epoch event fired") })
	eng.Post(func() { t.Error("cancelled-epoch post fired") })
	tm := eng.NewTimer(func() { t.Error("cancelled-epoch timer fired") })
	tm.Schedule(3)
	eng.Reset()
	if eng.Now() != 0 || eng.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", eng.Now(), eng.Pending())
	}
	if tm.Pending() {
		t.Fatal("timer still pending after Reset")
	}
	eng.Cancel(ev) // stale handle must stay a harmless no-op
	tm.Cancel()

	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay diverged: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first, second)
		}
	}
	// The timer must be re-armable after a reset.
	armed := false
	tm2 := eng.NewTimer(func() { armed = true })
	tm2.Schedule(1)
	eng.Run()
	if !armed {
		t.Fatal("timer did not fire after reset")
	}
}

func TestResetWithLiveProcsPanics(t *testing.T) {
	eng := NewEngine()
	eng.Go("p", func(p *Proc) { p.Suspend().Park() })
	eng.RunUntil(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng.Reset()
}

// TestResetReusesRecords pins the point of Reset: after a warm-up run, a
// reset engine replays the same schedule out of its record free list. Only
// the 16-byte cancellation handles remain (they are deliberately not pooled
// — stale-handle safety), so the reset replay must allocate at most one
// handle per Schedule, strictly less than a fresh engine pays.
func TestResetReusesRecords(t *testing.T) {
	const events = 64
	load := func(eng *Engine) {
		for i := 0; i < events; i++ {
			eng.Schedule(float64(i%7), func() {})
		}
		eng.Run()
	}
	fresh := testing.AllocsPerRun(10, func() {
		load(NewEngine())
	})
	eng := NewEngine()
	load(eng)
	reset := testing.AllocsPerRun(10, func() {
		eng.Reset()
		load(eng)
	})
	if reset > events+1 {
		t.Fatalf("reset+replay allocates %.1f/run, want <= %d (handles only)", reset, events+1)
	}
	if reset >= fresh {
		t.Fatalf("reset replay (%.1f allocs) not cheaper than fresh engine (%.1f)", reset, fresh)
	}
}
