// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Simulated processes are goroutines that run one at a time under a
// strict handshake with the scheduler, so a simulation is fully deterministic
// regardless of GOMAXPROCS: at any instant either the scheduler or exactly
// one process goroutine is runnable.
//
// Time is a float64 number of seconds. Ties are broken by event creation
// order, so schedules built in the same order replay identically.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	time float64
	seq  uint64
	fn   func()
	idx  int // heap index; -1 once fired or cancelled
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.time }

// Cancelled reports whether the event has fired or been cancelled.
func (ev *Event) Cancelled() bool { return ev.idx < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// yield is signalled by a process goroutine when it parks or exits,
	// returning control to the scheduler.
	yield chan struct{}

	procs   int // live (started, not finished) processes
	stopped bool
	tracer  Tracer
}

// Tracer receives a line for every traced simulation action. Nil disables
// tracing.
type Tracer interface {
	Trace(now float64, format string, args ...any)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(now float64, format string, args ...any)

// Trace implements Tracer.
func (f TracerFunc) Trace(now float64, format string, args ...any) { f(now, format, args...) }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetTracer installs a tracer for debugging; nil disables tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracef emits a trace line if a tracer is installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer.Trace(e.now, format, args...)
	}
}

// Schedule registers fn to run after delay seconds. A negative delay is an
// error in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute time t, which must not be in the past.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: t=%v now=%v", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
	ev.fn = nil
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until none remain or Stop is called. It returns the
// final clock value.
func (e *Engine) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time <= horizon and, for a finite horizon,
// advances the clock all the way to it. It returns the final clock value.
//
// RunUntil panics if live processes remain blocked with no pending event to
// wake them and the horizon is infinite (a deadlock in the simulated
// system), because silently returning would make such bugs very hard to
// find. With a finite horizon, blocked processes may legitimately be waiting
// for signals scheduled later.
func (e *Engine) RunUntil(horizon float64) float64 {
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.time > horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = next.time
		fn := next.fn
		next.fn = nil
		fn()
	}
	if !e.stopped && !math.IsInf(horizon, 1) {
		if e.now < horizon {
			e.now = horizon
		}
		return e.now
	}
	if !e.stopped && e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", e.procs, e.now))
	}
	return e.now
}
