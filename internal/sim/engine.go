// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Simulated processes are goroutines that run one at a time under a
// strict handshake with the scheduler, so a simulation is fully deterministic
// regardless of GOMAXPROCS: at any instant either the scheduler or exactly
// one process goroutine is runnable.
//
// Time is a float64 number of seconds. Ties are broken by event creation
// order, so schedules built in the same order replay identically.
//
// The engine is built for allocation-free steady-state operation: fired and
// cancelled event records return to a free list, zero-delay callbacks run
// through a reusable FIFO ring (Post), and recurring timeouts can reuse an
// owner-managed Timer instead of allocating a fresh event per occurrence.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// record is the engine-internal scheduled-callback state. Records are stored
// in the heap by pointer and recycled through a free list once they fire or
// are cancelled — except Timer-owned records, which belong to their Timer.
type record struct {
	time   float64
	seq    uint64
	fn     func()
	idx    int    // heap index; -1 when not queued
	handle *Event // attached cancellation handle, nil for Timer/Post records
	owned  bool   // Timer-owned: never returned to the engine free list
}

// Event is a cancellation handle for a callback scheduled with Schedule or
// At. The handle detaches from its underlying record when the event fires or
// is cancelled, so holding (or re-cancelling) a stale handle is always safe
// even though records are pooled and reused.
type Event struct {
	time float64
	rec  *record
}

// Time returns the virtual time at which the event fires (or fired).
func (ev *Event) Time() float64 { return ev.time }

// Cancelled reports whether the event has fired or been cancelled.
func (ev *Event) Cancelled() bool { return ev.rec == nil }

type eventHeap []*record

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	r := x.(*record)
	r.idx = len(*h)
	*h = append(*h, r)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.idx = -1
	*h = old[:n-1]
	return r
}

// zeroCall is one entry of the zero-delay FIFO ring. Entries are created by
// Post at the current time and always run before the clock advances, ordered
// against heap events by the shared sequence counter.
type zeroCall struct {
	seq uint64
	fn  func()
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// zq is the zero-delay callback ring: Post appends, the run loop
	// consumes from zhead. When drained it is reset in place, so steady
	// state does not allocate.
	zq    []zeroCall
	zhead int

	// free is the record free list. Records recycle through it when they
	// fire or are cancelled, so steady-state scheduling does not allocate.
	free []*record

	// yield is signalled by a process goroutine when it parks or exits,
	// returning control to the scheduler.
	yield chan struct{}

	// procFree holds pooled procs (channel + wake timer + bound closures;
	// no goroutine while idle) ready for reuse by Go/GoAt. Finished procs
	// first land on procRetired — not directly on the free list — so a
	// *Proc handle returned by Go stays valid (Done, Name) for the rest of
	// the run; Reset moves retired procs to the free list.
	procFree    []*Proc
	procRetired []*Proc

	procs   int // live (started, not finished) processes
	stopped bool
	tracer  Tracer
}

// Tracer receives a line for every traced simulation action. Nil disables
// tracing.
type Tracer interface {
	Trace(now float64, format string, args ...any)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(now float64, format string, args ...any)

// Trace implements Tracer.
func (f TracerFunc) Trace(now float64, format string, args ...any) { f(now, format, args...) }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// SetTracer installs a tracer for debugging; nil disables tracing.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracef emits a trace line if a tracer is installed.
func (e *Engine) Tracef(format string, args ...any) {
	if e.tracer != nil {
		e.tracer.Trace(e.now, format, args...)
	}
}

// newRecord pops a record from the free list, or allocates one.
func (e *Engine) newRecord() *record {
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return r
	}
	return &record{idx: -1}
}

// release detaches a record's handle and returns it to the free list.
// Timer-owned records are left to their owner.
func (e *Engine) release(r *record) {
	if r.handle != nil {
		r.handle.rec = nil
		r.handle = nil
	}
	r.fn = nil
	if !r.owned {
		e.free = append(e.free, r)
	}
}

// Schedule registers fn to run after delay seconds. A negative delay is an
// error in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At registers fn to run at absolute time t, which must not be in the past
// and must not be NaN.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling in the past or at NaN: t=%v now=%v", t, e.now))
	}
	r := e.newRecord()
	r.time = t
	r.seq = e.seq
	r.fn = fn
	e.seq++
	ev := &Event{time: t, rec: r}
	r.handle = ev
	heap.Push(&e.events, r)
	return ev
}

// Post registers fn to run at the current time, after every already-queued
// callback for this instant — exactly like Schedule(0, fn) but through a
// reusable FIFO ring with no handle and no allocation. It is the fast path
// for the overwhelmingly common fire-and-forget zero-delay callback
// (completion notifications, process wake-ups); use Schedule(0, fn) only
// when the callback might need cancelling.
func (e *Engine) Post(fn func()) {
	e.zq = append(e.zq, zeroCall{seq: e.seq, fn: fn})
	e.seq++
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op: the handle detached from its (since recycled) record
// when the event fired, so a stale Cancel can never hit a reused record.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.rec == nil {
		return
	}
	r := ev.rec
	if r.idx >= 0 {
		heap.Remove(&e.events, r.idx)
	}
	e.release(r)
}

// Pending returns the number of callbacks waiting to fire, including posted
// zero-delay callbacks.
func (e *Engine) Pending() int { return len(e.events) + len(e.zq) - e.zhead }

// Reset returns the engine to a pristine state — clock at zero, sequence
// counter restarted, no pending events — while keeping its allocated
// capacity: the record free list, the heap's backing array and the Post
// ring survive, so a worker sweeping many simulation points can run every
// point on one engine and stop paying the per-run event allocations (the
// delta package's sweep workers do exactly this).
//
// Reset panics if live processes remain: their goroutines are parked on
// state the reset would orphan. Pending events are dropped, their
// cancellation handles detached (a stale Cancel stays a no-op) and
// Timer-owned records disarmed in place, so owners may re-arm their Timers
// after the reset. The tracer is kept.
func (e *Engine) Reset() {
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: Reset with %d live process(es)", e.procs))
	}
	for _, r := range e.events {
		r.idx = -1
		if r.handle != nil {
			r.handle.rec = nil
			r.handle = nil
		}
		r.fn = nil
		if !r.owned {
			e.free = append(e.free, r)
		}
	}
	e.events = e.events[:0]
	for i := e.zhead; i < len(e.zq); i++ {
		e.zq[i].fn = nil
	}
	e.zq = e.zq[:0]
	e.zhead = 0
	e.procFree = append(e.procFree, e.procRetired...)
	for i := range e.procRetired {
		e.procRetired[i] = nil
	}
	e.procRetired = e.procRetired[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until none remain or Stop is called. It returns the
// final clock value.
func (e *Engine) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time <= horizon and, for a finite horizon,
// advances the clock all the way to it. It returns the final clock value.
//
// RunUntil panics if live processes remain blocked with no pending event to
// wake them and the horizon is infinite (a deadlock in the simulated
// system), because silently returning would make such bugs very hard to
// find. With a finite horizon, blocked processes may legitimately be waiting
// for signals scheduled later.
func (e *Engine) RunUntil(horizon float64) float64 {
	for !e.stopped {
		// Posted zero-delay callbacks live at the current instant; they
		// run before the clock can advance, interleaved with same-time
		// heap events by the shared sequence counter.
		if e.zhead < len(e.zq) && e.now <= horizon {
			zc := e.zq[e.zhead]
			if len(e.events) == 0 || e.events[0].time > e.now ||
				(e.events[0].time == e.now && zc.seq < e.events[0].seq) {
				e.zq[e.zhead].fn = nil
				e.zhead++
				if e.zhead == len(e.zq) {
					e.zq = e.zq[:0]
					e.zhead = 0
				}
				zc.fn()
				continue
			}
		}
		if len(e.events) == 0 {
			break
		}
		next := e.events[0]
		if next.time > horizon {
			break
		}
		heap.Pop(&e.events)
		e.now = next.time
		fn := next.fn
		e.release(next)
		fn()
	}
	if !e.stopped && !math.IsInf(horizon, 1) {
		if e.now < horizon {
			e.now = horizon
		}
		return e.now
	}
	if !e.stopped && e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", e.procs, e.now))
	}
	return e.now
}

// Timer is a reusable scheduled callback owned by its creator: one callback
// function, at most one pending occurrence, zero allocations to (re)arm.
// It is the tool for recurring timeout patterns — e.g. a contention model's
// "next completion" event that is cancelled and rescheduled on every rate
// change. Not safe for use from multiple goroutines (like the Engine).
type Timer struct {
	eng *Engine
	fn  func()
	rec record
}

// NewTimer returns an unarmed timer that will run fn each time it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	t := &Timer{eng: e, fn: fn}
	t.rec.owned = true
	t.rec.idx = -1
	return t
}

// Schedule arms the timer to fire after delay seconds, replacing any pending
// occurrence. Panics on negative or NaN delays, like Engine.Schedule.
func (t *Timer) Schedule(delay float64) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	t.ScheduleAt(t.eng.now + delay)
}

// ScheduleAt arms the timer to fire at absolute time at, replacing any
// pending occurrence. Panics on past or NaN times, like Engine.At.
func (t *Timer) ScheduleAt(at float64) {
	e := t.eng
	if at < e.now || math.IsNaN(at) {
		panic(fmt.Sprintf("sim: scheduling in the past or at NaN: t=%v now=%v", at, e.now))
	}
	t.Cancel()
	t.rec.time = at
	t.rec.seq = e.seq
	t.rec.fn = t.fn
	e.seq++
	heap.Push(&e.events, &t.rec)
}

// Cancel disarms a pending timer; a no-op if the timer is not pending.
func (t *Timer) Cancel() {
	if t.rec.idx >= 0 {
		heap.Remove(&t.eng.events, t.rec.idx)
		t.rec.fn = nil
	}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.rec.idx >= 0 }

// When returns the fire time of a pending timer (meaningless otherwise).
func (t *Timer) When() float64 { return t.rec.time }
