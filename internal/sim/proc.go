package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs exclusively while all
// other goroutines (including the scheduler) are blocked. Procs communicate
// and synchronize only through the engine, never through Go channels of
// their own, which keeps runs deterministic.
//
// Procs are pooled: when a body returns, its goroutine exits and the proc
// (channel, wake timer, bound closures) parks on a retired list; Engine.Reset
// moves retired procs to a free list for reuse by later Go/GoAt calls, which
// spawn a fresh goroutine per body. A *Proc handle therefore stays valid —
// Done, Name — until the engine is reset, and must not be retained across a
// Reset. An idle pooled proc holds no goroutine, so discarding an engine
// leaks nothing.
type Proc struct {
	eng  *Engine
	name string
	run  chan struct{} // scheduler -> proc token
	done bool
	body func(p *Proc)

	// transferFn and bodyFn are p.transfer / p.runBody bound once, so
	// posting wake-ups and spawning the per-body goroutine never allocate
	// method-value closures.
	transferFn func()
	bodyFn     func()

	// wake is the reusable timer that resumes a sleeping proc. A proc has
	// at most one pending sleep, so a single owned record suffices and
	// sleeping never allocates. While the proc is not yet started, the same
	// timer carries the start event, so launching never allocates either.
	wake *Timer
}

// Go starts body as a new process at the current time. The body runs when
// the engine processes the start event. Go may be called both from outside
// Run (to set up the simulation) and from inside a running process or event.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, body)
}

// GoAt starts body as a new process at absolute time t. The proc comes from
// the engine's free pool when one is available, so in steady state
// (re-running a schedule after Reset) starting a process allocates nothing.
func (e *Engine) GoAt(t float64, name string, body func(p *Proc)) *Proc {
	p := e.getProc()
	p.name = name
	p.body = body
	p.done = false
	e.procs++
	// The wake timer is necessarily unarmed here (the proc is not running),
	// so it can carry the start event.
	p.wake.ScheduleAt(t)
	return p
}

// getProc pops a pooled proc or builds a fresh one, then spawns the
// goroutine that will run exactly one body and exit. The goroutine is
// per-body — never parked idle — so an engine that falls out of scope is
// ordinary garbage; only the proc's channel, timer and closures recycle.
func (e *Engine) getProc() *Proc {
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree[n-1] = nil
		e.procFree = e.procFree[:n-1]
	} else {
		p = &Proc{eng: e, run: make(chan struct{})}
		p.transferFn = p.transfer
		p.bodyFn = p.runBody
		p.wake = e.NewTimer(p.transferFn)
	}
	go p.bodyFn()
	return p
}

func (p *Proc) runBody() {
	<-p.run // wait for the scheduler to hand over control
	e := p.eng
	defer func() {
		p.done = true
		p.body = nil
		e.procs--
		e.procRetired = append(e.procRetired, p)
		e.yield <- struct{}{}
	}()
	p.body(p)
}

// transfer hands control to the proc goroutine and blocks until it parks or
// exits. Must be called from scheduler context (inside an event callback).
func (p *Proc) transfer() {
	p.run <- struct{}{}
	<-p.eng.yield
}

// park blocks the proc until something calls resume. Must be called from the
// proc's own goroutine.
func (p *Proc) park() {
	p.eng.yield <- struct{}{}
	<-p.run
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Sleep suspends the process for d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Sleep(%v) from %q", d, p.name))
	}
	if d == 0 {
		// Still yield through the event queue so equal-time ordering is
		// consistent with other zero-delay work.
		p.eng.Post(p.transferFn)
		p.park()
		return
	}
	p.wake.Schedule(d)
	p.park()
}

// SleepUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) SleepUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t - p.eng.now)
}

// Suspend parks the process until Resume is called on the handle returned.
// The handle's Resume is idempotent: calls after the first are no-ops, so it
// is safe to race a timeout against another waker.
//
//	h := p.Suspend()   // from another event: h.Resume()
func (p *Proc) Suspend() *Resumer {
	return &Resumer{p: p}
}

// Resumer resumes a suspended process exactly once.
type Resumer struct {
	p     *Proc
	fired bool
}

// Resume schedules the process to continue. Safe to call multiple times;
// only the first call has an effect. Must not be called before the process
// has actually parked via Park.
func (r *Resumer) Resume() {
	if r.fired {
		return
	}
	r.fired = true
	r.p.eng.Post(r.p.transferFn)
}

// Fired reports whether Resume has been called.
func (r *Resumer) Fired() bool { return r.fired }

// Park parks the process; it returns when the associated Resumer fires.
// Park must be called from the process's own goroutine, after installing the
// Resumer where some event will find it.
func (r *Resumer) Park() { r.p.park() }

// Cond is a broadcast condition: processes wait on it and are all released
// by Broadcast, in FIFO order of arrival.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition bound to the engine.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait parks the calling process until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Waiters returns the number of processes currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Broadcast releases all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.eng.Post(w.transferFn)
	}
}

// Gate is a binary open/closed barrier. While closed, Pass blocks; while
// open, Pass returns immediately. Opening releases all current waiters.
type Gate struct {
	cond *Cond
	open bool
}

// NewGate returns a gate in the given initial state.
func NewGate(e *Engine, open bool) *Gate {
	return &Gate{cond: NewCond(e), open: open}
}

// Open opens the gate and releases all waiters.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.cond.Broadcast()
}

// Close closes the gate; subsequent Pass calls block.
func (g *Gate) Close() { g.open = false }

// IsOpen reports the gate state.
func (g *Gate) IsOpen() bool { return g.open }

// Pass blocks p until the gate is open. Because Open broadcasts, a gate that
// is closed again in the same instant may still admit the released waiters;
// callers that need re-check semantics should loop.
func (g *Gate) Pass(p *Proc) {
	for !g.open {
		g.cond.Wait(p)
	}
}

// WaitGroup counts outstanding activities and lets a process wait for zero.
type WaitGroup struct {
	eng   *Engine
	n     int
	conds []*Proc
}

// NewWaitGroup returns a wait group bound to the engine.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the counter by delta (may be negative, like sync.WaitGroup).
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 && len(w.conds) > 0 {
		// Release waiters, keeping the backing array so a reused wait group
		// does not re-pay the waiter-list allocation. Post only enqueues, so
		// no new waiter can arrive while the loop runs.
		ws := w.conds
		for i, pr := range ws {
			w.eng.Post(pr.transferFn)
			ws[i] = nil
		}
		w.conds = ws[:0]
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.n }

// Wait parks p until the counter reaches zero (immediately if already zero).
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.conds = append(w.conds, p)
	p.park()
}
