package disk

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPlainDiskNoCache(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, "d", Params{DiskBW: 100})
	var done float64
	s.Resource().Submit("w", 1000, 1, 0, func() { done = e.Now() })
	e.Run()
	if !almostEq(done, 10, 1e-9) {
		t.Fatalf("done = %v, want 10", done)
	}
}

func TestCacheAbsorbsSmallBurst(t *testing.T) {
	e := sim.NewEngine()
	// Cache 10x faster than disk, big enough for the whole burst.
	s := New(e, "d", Params{DiskBW: 100, CacheBW: 1000, CacheBytes: 5000})
	var done float64
	s.Resource().Submit("w", 1000, 1, 0, func() { done = e.Now() })
	e.Run()
	// Fully absorbed at cache speed: 1s. (Dirty grows at 900/s -> 900 < 5000.)
	if !almostEq(done, 1, 1e-9) {
		t.Fatalf("done = %v, want 1 (cache speed)", done)
	}
}

func TestCacheOverflowFallsToDiskSpeed(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, "d", Params{DiskBW: 100, CacheBW: 1000, CacheBytes: 900})
	var done float64
	s.Resource().Submit("w", 10000, 1, 0, func() { done = e.Now() })
	e.Run()
	// Cache fills at net 900/s -> full at t=1 (1000 ingested). Remaining
	// 9000 at disk speed 100 -> 90s more: t=91.
	if !almostEq(done, 91, 1e-6) {
		t.Fatalf("done = %v, want 91", done)
	}
}

func TestCacheDrainsBetweenBursts(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, "d", Params{DiskBW: 100, CacheBW: 1000, CacheBytes: 1000})
	var t1, t2 float64
	s.Resource().Submit("w1", 900, 1, 0, func() { t1 = e.Now() })
	// Second burst 20s later: cache has fully drained (dirty 810 at t=0.9,
	// drains in 8.1s), so it is absorbed at cache speed again.
	e.At(20, func() {
		s.Resource().Submit("w2", 900, 1, 0, func() { t2 = e.Now() })
	})
	e.Run()
	if !almostEq(t1, 0.9, 1e-9) {
		t.Fatalf("t1 = %v, want 0.9", t1)
	}
	if !almostEq(t2, 20.9, 1e-9) {
		t.Fatalf("t2 = %v, want 20.9 (cache drained)", t2)
	}
}

func TestOverlappingBurstsOverflow(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, "d", Params{DiskBW: 100, CacheBW: 1000, CacheBytes: 1000})
	var t1, t2 float64
	// Two writers at once: combined burst 1800 > cache 1000 + drained bytes.
	s.Resource().Submit("w1", 900, 1, 0, func() { t1 = e.Now() })
	s.Resource().Submit("w2", 900, 1, 0, func() { t2 = e.Now() })
	e.Run()
	// Ingest 1000/s, net fill 900/s -> full at t=1000/900=1.111s with
	// 1111 ingested. Remaining 689 at 100/s -> t = 1.111 + 6.89 = 8.0s.
	if !almostEq(t2, 8.0, 1e-3) {
		t.Fatalf("t2 = %v, want ~8.0 (overflow to disk speed)", t2)
	}
	if t1 > t2 {
		t.Fatalf("t1 %v should be <= t2 %v", t1, t2)
	}
	// Both finish far later than a lone 900-byte burst (0.9s): this is the
	// Fig. 3 throughput collapse.
	if t1 < 2 {
		t.Fatalf("t1 = %v; expected cache collapse > 2s", t1)
	}
}

func TestDirtyQuery(t *testing.T) {
	e := sim.NewEngine()
	s := New(e, "d", Params{DiskBW: 100, CacheBW: 1000, CacheBytes: 5000})
	s.Resource().Submit("w", 1000, 1, 0, nil)
	e.At(0.5, func() {
		// Ingested 500, drained 50 -> dirty 450.
		if got := s.Dirty(); !almostEq(got, 450, 1e-6) {
			t.Errorf("dirty = %v, want 450", got)
		}
	})
	e.Run()
	// After long idle the cache is clean.
	if got := s.Dirty(); got != 0 {
		// Drain continues after ingest ends; run the clock forward.
		e.RunUntil(e.Now() + 100)
		if got = s.Dirty(); got != 0 {
			t.Fatalf("dirty after drain = %v, want 0", got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine()
	cases := []Params{
		{DiskBW: 0},
		{DiskBW: 100, CacheBW: 1000},               // cache bw without size
		{DiskBW: 100, CacheBytes: 10},              // size without bw
		{DiskBW: 100, CacheBW: 50, CacheBytes: 10}, // cache slower than disk
	}
	for i, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(e, "d", p)
		}()
	}
}
