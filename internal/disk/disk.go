// Package disk models a storage target with an optional write-back cache in
// front of a slower persistent medium.
//
// Writes land in the cache at CacheBW as long as dirty bytes stay below
// CacheBytes; a background drain empties the cache at DiskBW. When the cache
// fills, ingest capacity collapses to the drain rate — exactly the cliff that
// CALCioM's Figure 3 demonstrates when two applications' write bursts
// overlap. With CacheBytes == 0 the store is a plain disk at DiskBW
// (the paper's Grid'5000 configuration disables the cache for this reason).
package disk

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/sim"
)

// Params configures a Store.
type Params struct {
	DiskBW     float64 // bytes/s sustained by the persistent medium (> 0)
	CacheBW    float64 // bytes/s ingest while cache has room (0 disables cache)
	CacheBytes float64 // cache capacity in bytes (0 disables cache)
}

// Store is a storage target. All access happens in scheduler context.
type Store struct {
	eng  *sim.Engine
	name string
	p    Params
	res  *fluid.Resource

	dirty      float64
	lastT      float64
	ingestRate float64 // rate as of lastT
	full       bool

	crossing *sim.Event // pending fill/empty threshold event
}

// New creates a store. CacheBW and CacheBytes must both be set (or both
// zero); a cache with no capacity or no speed is a configuration error.
func New(eng *sim.Engine, name string, p Params) *Store {
	if p.DiskBW <= 0 {
		panic(fmt.Sprintf("disk: DiskBW must be positive, got %v", p.DiskBW))
	}
	if (p.CacheBW == 0) != (p.CacheBytes == 0) {
		panic("disk: CacheBW and CacheBytes must be both zero or both set")
	}
	if p.CacheBW != 0 && p.CacheBW < p.DiskBW {
		panic("disk: cache slower than disk makes no sense")
	}
	s := &Store{eng: eng, name: name, p: p, lastT: eng.Now()}
	s.res = fluid.NewResource(eng, name, s.ingestCapacity())
	if s.cached() {
		s.res.OnRateChange = s.onRateChange
	}
	return s
}

func (s *Store) cached() bool { return s.p.CacheBytes > 0 }

// Reset returns the store to its just-constructed state on a freshly reset
// engine: empty cache, construction-time ingest capacity, no pending
// threshold crossing. The underlying fluid resource is reset too (its job
// pool survives), so a reused store replays a run allocation-free.
func (s *Store) Reset() {
	s.dirty = 0
	s.ingestRate = 0
	s.full = false
	s.lastT = s.eng.Now()
	// The crossing event, if any, was dropped by the engine reset; a stale
	// handle Cancel is a safe no-op either way.
	s.eng.Cancel(s.crossing)
	s.crossing = nil
	s.res.Reset()
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Resource exposes the ingest resource; callers submit write jobs to it.
func (s *Store) Resource() *fluid.Resource { return s.res }

// DiskBW returns the persistent-medium bandwidth.
func (s *Store) DiskBW() float64 { return s.p.DiskBW }

// Dirty returns the dirty byte count, integrated to the current time.
func (s *Store) Dirty() float64 {
	s.advanceDirty()
	return s.dirty
}

// ingestCapacity returns the resource capacity for the current cache state.
func (s *Store) ingestCapacity() float64 {
	if !s.cached() || s.full {
		return s.p.DiskBW
	}
	return s.p.CacheBW
}

// advanceDirty integrates dirty bytes since lastT at the recorded ingest
// rate, minus the continuous drain at DiskBW.
func (s *Store) advanceDirty() {
	now := s.eng.Now()
	dt := now - s.lastT
	if dt <= 0 {
		s.lastT = now
		return
	}
	s.dirty += (s.ingestRate - s.p.DiskBW) * dt
	if s.dirty < 0 {
		s.dirty = 0
	}
	if s.dirty > s.p.CacheBytes {
		s.dirty = s.p.CacheBytes
	}
	s.lastT = now
}

// onRateChange is called by the fluid resource after every reallocation.
// It integrates dirty bytes at the old rate, adopts the new rate, updates
// the fill state and schedules the next threshold crossing.
func (s *Store) onRateChange(total float64) {
	s.advanceDirty()
	s.ingestRate = total
	s.updateState()
}

func (s *Store) updateState() {
	if s.crossing != nil {
		s.eng.Cancel(s.crossing)
		s.crossing = nil
	}
	net := s.ingestRate - s.p.DiskBW
	switch {
	case s.full:
		// Cache pinned at capacity: ingest is clamped to DiskBW so dirty
		// stays full while demand persists. It can only start draining
		// when ingest drops below disk speed.
		if net < 0 {
			// Leave "full" as soon as we begin draining; restore cache
			// speed so the next burst is absorbed again.
			s.full = false
			s.switchCapacity()
			return
		}
	case net > 0:
		if s.dirty >= s.p.CacheBytes {
			s.full = true
			s.switchCapacity()
			return
		}
		dt := (s.p.CacheBytes - s.dirty) / net
		s.crossing = s.eng.Schedule(dt, s.onFill)
	}
}

func (s *Store) onFill() {
	s.crossing = nil
	s.advanceDirty()
	if s.dirty >= s.p.CacheBytes*(1-1e-9) {
		s.dirty = s.p.CacheBytes
		s.full = true
		s.switchCapacity()
	} else {
		s.updateState()
	}
}

// switchCapacity applies the capacity implied by the fill state. SetCapacity
// triggers a reallocation, which re-enters onRateChange; the state fields
// are already consistent so the recursion settles immediately.
func (s *Store) switchCapacity() {
	s.res.SetCapacity(s.ingestCapacity())
	if s.res.Capacity() == s.ingestCapacity() && s.crossing == nil {
		// SetCapacity may have been a no-op (same value), in which case
		// onRateChange did not run; make sure crossings are scheduled.
		s.updateState()
	}
}
