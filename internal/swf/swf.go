// Package swf reads, writes, generates and analyzes job traces in the
// Standard Workload Format (SWF) of the Parallel Workload Archive.
//
// The paper's Figure 1 is computed from ANL-Intrepid-2009-1.swf (8 months of
// Intrepid scheduler logs). That trace cannot be redistributed here, so the
// package also provides a synthetic generator calibrated to the published
// distribution shapes: half the jobs at or below 2,048 cores, and a
// concurrent-job count distributed over roughly 4–60 with most mass around
// 8–16. The analyses accept any SWF trace, real or synthetic.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Job is one SWF record. Times are in seconds from the trace start.
type Job struct {
	ID        int
	Submit    float64
	Wait      float64
	Runtime   float64
	Procs     int
	Status    int
	User      int
	Queue     int
	Partition int
}

// Start returns the dispatch time (submit + wait).
func (j Job) Start() float64 { return j.Submit + j.Wait }

// End returns the completion time.
func (j Job) End() float64 { return j.Start() + j.Runtime }

// Trace is a parsed workload.
type Trace struct {
	Header map[string]string // header fields (";" comments "Key: Value")
	Jobs   []Job
}

// Parse reads an SWF trace. Malformed lines are reported with their line
// number; unknown header comments are preserved.
func Parse(r io.Reader) (*Trace, error) {
	tr := &Trace{Header: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if k, v, ok := strings.Cut(strings.TrimLeft(line, "; "), ":"); ok {
				tr.Header[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 5 {
			return nil, fmt.Errorf("swf: line %d: want >= 5 fields, got %d", lineno, len(f))
		}
		job := Job{}
		var err error
		geti := func(s string) int {
			if err != nil {
				return 0
			}
			var v int
			v, err = strconv.Atoi(s)
			return v
		}
		getf := func(s string) float64 {
			if err != nil {
				return 0
			}
			var v float64
			v, err = strconv.ParseFloat(s, 64)
			return v
		}
		job.ID = geti(f[0])
		job.Submit = getf(f[1])
		job.Wait = getf(f[2])
		job.Runtime = getf(f[3])
		job.Procs = geti(f[4])
		if len(f) > 10 {
			job.Status = geti(f[10])
		}
		if len(f) > 11 {
			job.User = geti(f[11])
		}
		if len(f) > 14 {
			job.Queue = geti(f[14])
		}
		if len(f) > 15 {
			job.Partition = geti(f[15])
		}
		if err != nil {
			return nil, fmt.Errorf("swf: line %d: %v", lineno, err)
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Write emits the trace in SWF text form (18 columns, unknown fields -1).
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	keys := make([]string, 0, len(tr.Header))
	for k := range tr.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "; %s: %s\n", k, tr.Header[k])
	}
	for _, j := range tr.Jobs {
		// job submit wait run procs cpu mem reqprocs reqtime reqmem
		// status user group exe queue partition prec think
		fmt.Fprintf(bw, "%d %.0f %.0f %.0f %d -1 -1 %d %.0f -1 %d %d -1 -1 %d %d -1 -1\n",
			j.ID, j.Submit, j.Wait, j.Runtime, j.Procs, j.Procs, j.Runtime,
			j.Status, j.User, j.Queue, j.Partition)
	}
	return bw.Flush()
}

// Duration returns the trace time span (first submit to last end).
func (tr *Trace) Duration() float64 {
	if len(tr.Jobs) == 0 {
		return 0
	}
	lo, hi := tr.Jobs[0].Start(), tr.Jobs[0].End()
	for _, j := range tr.Jobs {
		if j.Start() < lo {
			lo = j.Start()
		}
		if j.End() > hi {
			hi = j.End()
		}
	}
	return hi - lo
}
