package swf

import (
	"math"
	"sort"
)

// SizeBucket is one histogram bucket of the job-size distribution.
type SizeBucket struct {
	Cores     int     // bucket upper edge (inclusive), e.g. 256, 512, ...
	Share     float64 // fraction of jobs in the bucket
	CDF       float64 // cumulative fraction of jobs with size <= Cores
	TimeShare float64 // runtime-weighted fraction
	TimeCDF   float64 // runtime-weighted cumulative fraction
	Count     int
}

// SizeDistribution computes the paper's Fig. 1(a): the distribution of job
// sizes in power-of-two buckets, both by job count and weighted by duration
// ("half of the machine time is used by applications smaller than 2,048
// cores").
func SizeDistribution(tr *Trace) []SizeBucket {
	if len(tr.Jobs) == 0 {
		return nil
	}
	maxProcs := 0
	for _, j := range tr.Jobs {
		if j.Procs > maxProcs {
			maxProcs = j.Procs
		}
	}
	var edges []int
	for e := 256; e < maxProcs; e *= 2 {
		edges = append(edges, e)
	}
	edges = append(edges, maxProcs)

	counts := make([]int, len(edges))
	times := make([]float64, len(edges))
	var totalT float64
	for _, j := range tr.Jobs {
		i := sort.SearchInts(edges, j.Procs)
		if i == len(edges) {
			i = len(edges) - 1
		}
		counts[i]++
		times[i] += j.Runtime
		totalT += j.Runtime
	}
	out := make([]SizeBucket, len(edges))
	cum, cumT := 0.0, 0.0
	n := float64(len(tr.Jobs))
	for i, e := range edges {
		share := float64(counts[i]) / n
		tshare := 0.0
		if totalT > 0 {
			tshare = times[i] / totalT
		}
		cum += share
		cumT += tshare
		out[i] = SizeBucket{Cores: e, Share: share, CDF: cum, TimeShare: tshare, TimeCDF: cumT, Count: counts[i]}
	}
	return out
}

// MedianJobSize returns the job size at the 50% CDF point.
func MedianJobSize(tr *Trace) int {
	sizes := make([]int, len(tr.Jobs))
	for i, j := range tr.Jobs {
		sizes[i] = j.Procs
	}
	sort.Ints(sizes)
	if len(sizes) == 0 {
		return 0
	}
	return sizes[len(sizes)/2]
}

// ConcurrencyDistribution computes the paper's Fig. 1(b): the fraction of
// total wall time during which exactly k jobs run concurrently. The returned
// slice is indexed by k (0 up to the observed maximum).
func ConcurrencyDistribution(tr *Trace) []float64 {
	if len(tr.Jobs) == 0 {
		return nil
	}
	type ev struct {
		t     float64
		delta int
	}
	evs := make([]ev, 0, 2*len(tr.Jobs))
	for _, j := range tr.Jobs {
		if j.Runtime <= 0 {
			continue
		}
		evs = append(evs, ev{j.Start(), +1}, ev{j.End(), -1})
	}
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].t != evs[k].t {
			return evs[i].t < evs[k].t
		}
		return evs[i].delta < evs[k].delta // ends before starts at ties
	})
	var spans []float64
	cur, last := 0, evs[0].t
	total := 0.0
	for _, e := range evs {
		dt := e.t - last
		if dt > 0 {
			for len(spans) <= cur {
				spans = append(spans, 0)
			}
			spans[cur] += dt
			total += dt
		}
		cur += e.delta
		last = e.t
	}
	if total > 0 {
		for i := range spans {
			spans[i] /= total
		}
	}
	return spans
}

// MeanConcurrency returns E[X] under the concurrency distribution.
func MeanConcurrency(tr *Trace) float64 {
	d := ConcurrencyDistribution(tr)
	var m float64
	for k, p := range d {
		m += float64(k) * p
	}
	return m
}

// ProbOtherDoingIO evaluates the paper's §II-B lower bound on the
// probability that, observing the system at a random instant, at least one
// application is in an I/O phase:
//
//	P = 1 − Σ_n P(X = n) · (1 − E[µ])^n
//
// where X is the number of concurrently running jobs and µ the fraction of
// time an application spends doing I/O.
func ProbOtherDoingIO(tr *Trace, mu float64) float64 {
	if mu < 0 || mu > 1 {
		panic("swf: mu must be in [0,1]")
	}
	d := ConcurrencyDistribution(tr)
	var none float64
	for n, p := range d {
		none += p * math.Pow(1-mu, float64(n))
	}
	return 1 - none
}

// ProbOtherDoingIOFromDist is ProbOtherDoingIO on a given distribution.
func ProbOtherDoingIOFromDist(dist []float64, mu float64) float64 {
	var none float64
	for n, p := range dist {
		none += p * math.Pow(1-mu, float64(n))
	}
	return 1 - none
}
