package swf

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: map[string]string{"Computer": "test"},
		Jobs: []Job{
			{ID: 1, Submit: 0, Wait: 0, Runtime: 10, Procs: 256, Status: 1},
			{ID: 2, Submit: 2, Wait: 1, Runtime: 10, Procs: 2048, Status: 1},
			{ID: 3, Submit: 20, Wait: 0, Runtime: 5, Procs: 131072, Status: 1},
		},
	}
}

func TestParseBasic(t *testing.T) {
	in := `; Computer: Intrepid
; MaxProcs: 163840
1 0 5 3600 2048 -1 -1 2048 3600 -1 1 3 -1 -1 0 0 -1 -1
2 100 0 60 256 -1 -1 256 60 -1 1 4 -1 -1 0 0 -1 -1
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header["Computer"] != "Intrepid" {
		t.Fatalf("header = %v", tr.Header)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Wait != 5 || j.Runtime != 3600 || j.Procs != 2048 {
		t.Fatalf("job = %+v", j)
	}
	if j.Start() != 5 || j.End() != 3605 {
		t.Fatalf("start/end = %v/%v", j.Start(), j.End())
	}
}

func TestParseRejectsShortLines(t *testing.T) {
	_, err := Parse(strings.NewReader("1 2 3\n"))
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	_, err := Parse(strings.NewReader("a b c d e\n"))
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("job count %d != %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Wait != b.Wait ||
			a.Runtime != b.Runtime || a.Procs != b.Procs {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if back.Header["Computer"] != "test" {
		t.Fatalf("header lost: %v", back.Header)
	}
}

func TestPropertyGenerateRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := Generate(GenConfig{Seed: seed, Days: 3})
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil {
			return false
		}
		if len(back.Jobs) != len(tr.Jobs) {
			return false
		}
		for i := range tr.Jobs {
			if tr.Jobs[i].Procs != back.Jobs[i].Procs {
				return false
			}
			if math.Abs(tr.Jobs[i].Start()-back.Jobs[i].Start()) > 1.5 {
				return false // times are rounded to whole seconds
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeDistribution(t *testing.T) {
	tr := sampleTrace()
	buckets := SizeDistribution(tr)
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	var sum float64
	for _, b := range buckets {
		sum += b.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	last := buckets[len(buckets)-1]
	if math.Abs(last.CDF-1) > 1e-9 || math.Abs(last.TimeCDF-1) > 1e-9 {
		t.Fatalf("CDF endpoint %v / %v", last.CDF, last.TimeCDF)
	}
	// 256-core job lands in the first bucket.
	if buckets[0].Cores != 256 || buckets[0].Count != 1 {
		t.Fatalf("first bucket %+v", buckets[0])
	}
}

func TestConcurrencyDistribution(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{Submit: 0, Runtime: 10, Procs: 1},
		{Submit: 5, Runtime: 10, Procs: 1},
	}}
	d := ConcurrencyDistribution(tr)
	// Timeline: [0,5) 1 job, [5,10) 2 jobs, [10,15) 1 job. Total 15.
	if len(d) < 3 {
		t.Fatalf("dist = %v", d)
	}
	if math.Abs(d[1]-10.0/15) > 1e-9 || math.Abs(d[2]-5.0/15) > 1e-9 {
		t.Fatalf("dist = %v, want [_, 2/3, 1/3]", d)
	}
	if m := MeanConcurrency(tr); math.Abs(m-(10.0/15+2*5.0/15)) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestProbOtherDoingIO(t *testing.T) {
	// Always exactly 2 jobs running: P = 1 - (1-mu)^2.
	tr := &Trace{Jobs: []Job{
		{Submit: 0, Runtime: 100, Procs: 1},
		{Submit: 0, Runtime: 100, Procs: 1},
	}}
	got := ProbOtherDoingIO(tr, 0.05)
	want := 1 - math.Pow(0.95, 2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("P = %v, want %v", got, want)
	}
	if p := ProbOtherDoingIO(tr, 0); p != 0 {
		t.Fatalf("P(mu=0) = %v, want 0", p)
	}
	if p := ProbOtherDoingIO(tr, 1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(mu=1) = %v, want 1", p)
	}
}

func TestGenerateCalibration(t *testing.T) {
	tr := Generate(GenConfig{Seed: 1, Days: 60})
	if len(tr.Jobs) < 1000 {
		t.Fatalf("only %d jobs generated", len(tr.Jobs))
	}
	// Half the jobs at or below 2048 cores (the paper's headline stat).
	med := MedianJobSize(tr)
	if med > 2048 || med < 256 {
		t.Fatalf("median job size = %d, want within (256, 2048]", med)
	}
	// Mean concurrency near the configured target of 20.
	if m := MeanConcurrency(tr); m < 15 || m > 26 {
		t.Fatalf("mean concurrency = %v, want ~20", m)
	}
	// The paper's probability example: E[mu]=5% gives P around 64%.
	if p := ProbOtherDoingIO(tr, 0.05); p < 0.50 || p > 0.80 {
		t.Fatalf("P(I/O overlap) = %v, want ~0.64", p)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(GenConfig{Seed: 7, Days: 5})
	b := Generate(GenConfig{Seed: 7, Days: 5})
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestDuration(t *testing.T) {
	tr := sampleTrace()
	// Last job ends at 25; first starts at 0.
	if d := tr.Duration(); math.Abs(d-25) > 1e-9 {
		t.Fatalf("duration = %v, want 25", d)
	}
	empty := &Trace{}
	if empty.Duration() != 0 {
		t.Fatal("empty duration should be 0")
	}
}

func TestProbOtherDoingIOFromDist(t *testing.T) {
	dist := []float64{0, 0, 1} // always two jobs
	got := ProbOtherDoingIOFromDist(dist, 0.5)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("P = %v, want 0.75", got)
	}
}

func TestMuValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mu out of range")
		}
	}()
	ProbOtherDoingIO(sampleTrace(), 1.5)
}
