package swf

import (
	"math"
	"math/rand"
	"strconv"
)

// GenConfig parameterizes the synthetic Intrepid-like trace generator.
type GenConfig struct {
	Seed        int64
	Days        float64 // trace length in days (the paper uses ~8 months ≈ 243)
	MachineSize int     // total cores (Intrepid: 163,840)
	// ArrivalRate is the mean job arrival rate in jobs/second. Zero picks
	// a rate that yields a mean concurrency of about TargetConcurrency.
	ArrivalRate float64
	// TargetConcurrency is the desired mean number of concurrently
	// running jobs. Default 20, which reproduces both Fig. 1b's 4-60
	// support and the paper's P(I/O overlap) = 64% at E[mu] = 5%
	// (1 - 0.95^20 = 0.64).
	TargetConcurrency float64
	// MeanRuntime is the mean job runtime in seconds (default 7200).
	MeanRuntime float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Days <= 0 {
		c.Days = 243
	}
	if c.MachineSize <= 0 {
		c.MachineSize = 163840
	}
	if c.TargetConcurrency <= 0 {
		c.TargetConcurrency = 20
	}
	if c.MeanRuntime <= 0 {
		c.MeanRuntime = 7200
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = c.TargetConcurrency / c.MeanRuntime
	}
	return c
}

// sizeMix is the job-size mixture calibrated to Fig. 1(a): half the jobs at
// or below 2,048 cores on a 163,840-core machine, with the 256-core bucket
// the largest.
var sizeMix = []struct {
	cores  int
	weight float64
}{
	{256, 0.26},
	{512, 0.16},
	{1024, 0.06},
	{2048, 0.05},
	{4096, 0.17},
	{8192, 0.09},
	{16384, 0.09},
	{32768, 0.06},
	{65536, 0.04},
	{131072, 0.015},
	{163840, 0.005},
}

// Generate produces a synthetic trace: Poisson arrivals, the calibrated
// power-of-two size mixture, and lognormal runtimes. The header records the
// generator settings.
func Generate(cfg GenConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Days * 86400

	var wsum float64
	for _, s := range sizeMix {
		wsum += s.weight
	}

	// Lognormal runtime with the requested mean: mean = exp(mu + s^2/2).
	sigma := 1.1
	lmu := math.Log(cfg.MeanRuntime) - sigma*sigma/2

	tr := &Trace{Header: map[string]string{
		"Computer":  "Synthetic Intrepid-like (CALCioM reproduction)",
		"MaxProcs":  strconv.Itoa(cfg.MachineSize),
		"Note":      "generated: Poisson arrivals, power-of-two size mixture, lognormal runtimes",
		"UnixStart": "0",
	}}

	t := 0.0
	id := 1
	for {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		if t > horizon {
			break
		}
		// Pick a size from the mixture.
		x := rng.Float64() * wsum
		cores := sizeMix[len(sizeMix)-1].cores
		for _, s := range sizeMix {
			if x < s.weight {
				cores = s.cores
				break
			}
			x -= s.weight
		}
		run := math.Exp(lmu + sigma*rng.NormFloat64())
		if run < 60 {
			run = 60
		}
		if run > 86400 {
			run = 86400
		}
		tr.Jobs = append(tr.Jobs, Job{
			ID:      id,
			Submit:  t,
			Wait:    rng.ExpFloat64() * 300,
			Runtime: run,
			Procs:   cores,
			Status:  1,
			User:    1 + rng.Intn(200),
		})
		id++
	}
	return tr
}
