package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
)

// Admin bundles everything calciomd's admin listener serves. All fields are
// optional; nil fields render sensible defaults so tests can serve a bare
// registry.
type Admin struct {
	// Registry backs /metrics.
	Registry *Registry
	// Extra, if set, is invoked after the registry renders so the daemon can
	// append scrape-time series (per-app rows computed from the stats merge)
	// without keeping them updated on the hot path.
	Extra func(w io.Writer)
	// Health returns the current health word: "serving", "draining",
	// "degraded", "closed". Backs /healthz (non-"serving" answers 503 so
	// load balancers can act on it).
	Health func() string
	// Status returns the object rendered as JSON on /statusz (the full
	// wire.Stats snapshot in calciomd).
	Status func() any
}

// Handler returns the admin mux: /metrics, /healthz, /statusz, and the
// net/http/pprof family under /debug/pprof/.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/healthz", a.healthz)
	mux.HandleFunc("/statusz", a.statusz)
	// Register pprof explicitly: the side-effect import registers on
	// http.DefaultServeMux, which this handler deliberately does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *Admin) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if a.Registry != nil {
		a.Registry.WriteTo(w)
	}
	if a.Extra != nil {
		a.Extra(w)
	}
}

func (a *Admin) healthz(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if a.Health != nil {
		state = a.Health()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if state != "serving" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	io.WriteString(w, state+"\n")
}

func (a *Admin) statusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var status any
	if a.Status != nil {
		status = a.Status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(status); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
