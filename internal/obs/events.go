package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
)

// EventKind classifies a grant-lifecycle event.
type EventKind uint8

// Grant-lifecycle event kinds, in rough protocol order.
const (
	EvRegister    EventKind = iota + 1 // a session registered a fresh name
	EvResume                           // a session resumed an existing name
	EvGrant                            // a Wait was served (sampled by Sample)
	EvRevoke                           // a holder's authorization was revoked
	EvGraceExpire                      // a disconnected session's grace window ran out
	EvDrain                            // pending Waits answered with retryable draining
	EvDisconnect                       // a session dropped
	EvBusy                             // a register was rejected at the session bound
	EvShed                             // an advisory request was shed under brownout (sampled)
	EvRateLimit                        // a connection tripped its rate limit (Queue = strike)
)

// Event is one grant-lifecycle record, passed by value from the emitting
// goroutine into the log's channel so emitting never allocates or blocks.
type Event struct {
	Kind EventKind
	Time float64 // coordination clock, seconds
	App  string
	// Target is the storage target the event happened on (grant, revoke,
	// drain); empty for session-scoped events.
	Target string
	// WaitS is the wait-to-grant latency of a served Wait; Queue the number
	// of Waits already parked on the target when this one was deferred (0 =
	// served immediately); Convoy whether the deferral was behind another
	// authorized app (vs pure protocol/arbitration latency).
	WaitS       float64
	Queue       int32
	Convoy      bool
	Deferred    bool
	Incarnation uint64
}

// EventLog is a sampled, asynchronous structured log of grant-lifecycle
// events. Emit is safe on the arbitration hot path: a nil check, an atomic
// sample counter, and a non-blocking by-value channel send — formatting and
// the slog call happen on the log's own drain goroutine. Overflow is
// drop-counted, never waited on.
type EventLog struct {
	log     *slog.Logger
	ch      chan Event
	stop    chan struct{}
	done    chan struct{}
	sample  uint64
	grants  atomic.Uint64
	sheds   atomic.Uint64
	dropped atomic.Uint64
}

// DefaultEventBuffer bounds in-flight events between emitters and the
// drain goroutine.
const DefaultEventBuffer = 4096

// NewEventLog starts an event log writing to logger. sample thins the
// high-frequency events: only every sample-th EvGrant (and EvShed) is
// logged (<= 1 logs them all); lifecycle events (register, resume, revoke,
// grace expiry, drain, disconnect, busy rejects, rate limiting) are never
// sampled away. buffer <= 0 means DefaultEventBuffer.
func NewEventLog(logger *slog.Logger, sample int, buffer int) *EventLog {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	if sample < 1 {
		sample = 1
	}
	l := &EventLog{
		log:    logger,
		ch:     make(chan Event, buffer),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		sample: uint64(sample),
	}
	go l.drain()
	return l
}

// Emit records one event. Nil-safe (a nil *EventLog drops everything), so
// instrumented code needs no enablement branches beyond the pointer it
// already holds.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	switch ev.Kind {
	case EvGrant:
		if (l.grants.Add(1)-1)%l.sample != 0 {
			return
		}
	case EvShed:
		// Sheds are as high-frequency as grants under overload; same stride.
		if (l.sheds.Add(1)-1)%l.sample != 0 {
			return
		}
	}
	select {
	case l.ch <- ev:
	default:
		l.dropped.Add(1)
	}
}

// Dropped returns how many events overflowed the buffer.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Close flushes queued events and stops the drain goroutine. Emit calls
// racing Close may be dropped; they are not counted as overflow.
func (l *EventLog) Close() {
	if l == nil {
		return
	}
	close(l.stop)
	<-l.done
}

func (l *EventLog) drain() {
	defer close(l.done)
	for {
		select {
		case ev := <-l.ch:
			l.emit(ev)
		case <-l.stop:
			for {
				select {
				case ev := <-l.ch:
					l.emit(ev)
					continue
				default:
				}
				return
			}
		}
	}
}

// emit formats one event through slog. Runs only on the drain goroutine.
func (l *EventLog) emit(ev Event) {
	ctx := context.Background()
	switch ev.Kind {
	case EvRegister:
		l.log.LogAttrs(ctx, slog.LevelInfo, "register",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.String("target", ev.Target), slog.Uint64("incarnation", ev.Incarnation))
	case EvResume:
		l.log.LogAttrs(ctx, slog.LevelInfo, "resume",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.Uint64("incarnation", ev.Incarnation))
	case EvGrant:
		cause := "immediate"
		if ev.Deferred {
			cause = "protocol"
			if ev.Convoy {
				cause = "convoy"
			}
		}
		l.log.LogAttrs(ctx, slog.LevelDebug, "grant",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.String("target", ev.Target), slog.Float64("wait_s", ev.WaitS),
			slog.Int("queue", int(ev.Queue)), slog.String("cause", cause))
	case EvRevoke:
		l.log.LogAttrs(ctx, slog.LevelInfo, "revoke",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.String("target", ev.Target))
	case EvGraceExpire:
		l.log.LogAttrs(ctx, slog.LevelWarn, "grace-expired",
			slog.Float64("t", ev.Time), slog.String("app", ev.App))
	case EvDrain:
		l.log.LogAttrs(ctx, slog.LevelWarn, "drain",
			slog.Float64("t", ev.Time), slog.String("target", ev.Target),
			slog.Int("waits_failed", int(ev.Queue)))
	case EvDisconnect:
		l.log.LogAttrs(ctx, slog.LevelInfo, "disconnect",
			slog.Float64("t", ev.Time), slog.String("app", ev.App))
	case EvBusy:
		l.log.LogAttrs(ctx, slog.LevelWarn, "busy-reject",
			slog.Float64("t", ev.Time), slog.String("app", ev.App))
	case EvShed:
		l.log.LogAttrs(ctx, slog.LevelDebug, "shed",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.String("target", ev.Target))
	case EvRateLimit:
		l.log.LogAttrs(ctx, slog.LevelWarn, "rate-limited",
			slog.Float64("t", ev.Time), slog.String("app", ev.App),
			slog.Int("strike", int(ev.Queue)))
	}
}
