package obs

import (
	"bytes"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0)      // below first bound -> bucket 0
	h.Observe(-1)     // negative clamps into bucket 0
	h.Observe(0.001)  // exact edge -> le semantics, bucket 0
	h.Observe(0.0011) // just past the edge -> bucket 1
	h.Observe(0.1)    // exact last bound -> bucket 2
	h.Observe(99)     // above every bound -> +Inf overflow
	h.Observe(math.Inf(1))
	s := h.Snapshot()
	want := []uint64{3, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("total count: got %d, want 7", s.Count)
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	h.Observe(0.5)
	h.Observe(1.25)
	h.Observe(0) // zero contributes count but no sum
	s := h.Snapshot()
	if got, want := s.Sum, 1.75; math.Abs(got-want) > 1e-6 {
		t.Errorf("sum: got %v, want %v", got, want)
	}
	if s.Count != 3 {
		t.Errorf("count: got %d, want 3", s.Count)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*i%100) * 1e-4)
			}
		}(w + 1)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Errorf("count after concurrent observes: got %d, want %d", got, workers*per)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestObserveAllocFree(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	c := &Counter{}
	g := &Gauge{}
	f := &FloatCounter{}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0042)
		c.Inc()
		c.Add(3)
		g.Add(1)
		g.Add(-1)
		f.Add(0.25)
	}); n != 0 {
		t.Errorf("hot-path metric ops allocated %v allocs/op, want 0", n)
	}
}

func TestEmitAllocFree(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	l := NewEventLog(logger, 1024, 0) // heavy sampling: almost every grant skipped
	defer l.Close()
	ev := Event{Kind: EvGrant, App: "app0", Target: "t0", WaitS: 0.001}
	if n := testing.AllocsPerRun(1000, func() { l.Emit(ev) }); n != 0 {
		t.Errorf("EventLog.Emit allocated %v allocs/op, want 0", n)
	}
	var nilLog *EventLog
	if n := testing.AllocsPerRun(100, func() { nilLog.Emit(ev) }); n != 0 {
		t.Errorf("nil EventLog.Emit allocated %v allocs/op, want 0", n)
	}
}

func TestRegistryRenderDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("z_total", "z help", Label{"target", "t1"}).Add(7)
		r.Counter("z_total", "z help", Label{"target", "t0"}).Add(5)
		r.Gauge("a_depth", "a help").Set(-3)
		r.FloatCounter("m_seconds_total", "m help").Add(1.5)
		h := r.Histogram("w_seconds", "w help", []float64{0.01, 0.1}, Label{"target", "t0"})
		h.Observe(0.005)
		h.Observe(0.05)
		h.Observe(5)
		var b strings.Builder
		r.WriteTo(&b)
		return b.String()
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("render not deterministic:\n--- first\n%s\n--- run %d\n%s", first, i, got)
		}
	}
	for _, want := range []string{
		"# TYPE a_depth gauge\na_depth -3\n",
		`z_total{target="t0"} 5`,
		`z_total{target="t1"} 7`,
		"m_seconds_total 1.5",
		`w_seconds_bucket{target="t0",le="0.01"} 1`,
		`w_seconds_bucket{target="t0",le="0.1"} 2`,
		`w_seconds_bucket{target="t0",le="+Inf"} 3`,
		`w_seconds_count{target="t0"} 3`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("render missing %q:\n%s", want, first)
		}
	}
	// a_depth < m_seconds_total < w_seconds < z_total: families sorted.
	order := []string{"a_depth", "m_seconds_total", "w_seconds", "z_total"}
	last := -1
	for _, name := range order {
		idx := strings.Index(first, "# HELP "+name)
		if idx <= last {
			t.Errorf("family %s out of order (index %d after %d)", name, idx, last)
		}
		last = idx
	}
}

func TestRegistryIdempotentAndKindConflict(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x", Label{"target", "t0"})
	c2 := r.Counter("x_total", "x", Label{"target", "t0"})
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "e", Label{"app", "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	r.WriteTo(&b)
	if want := `e_total{app="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped render missing %q:\n%s", want, b.String())
	}
}

func TestEventLogEmitsAndSamples(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	l := NewEventLog(logger, 4, 0)
	for i := 0; i < 16; i++ {
		l.Emit(Event{Kind: EvGrant, Time: float64(i), App: "app0", Target: "t0", WaitS: 0.001, Deferred: true, Convoy: true})
	}
	l.Emit(Event{Kind: EvRevoke, Time: 20, App: "app1", Target: "t0"})
	l.Emit(Event{Kind: EvGraceExpire, Time: 21, App: "app1"})
	l.Close()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if got := strings.Count(out, "msg=grant"); got != 4 {
		t.Errorf("sampled grants: got %d logged, want 4 of 16 at sample=4\n%s", got, out)
	}
	for _, want := range []string{"msg=revoke", "msg=grace-expired", "cause=convoy", "app=app1"} {
		if !strings.Contains(out, want) {
			t.Errorf("event log missing %q:\n%s", want, out)
		}
	}
	if l.Dropped() != 0 {
		t.Errorf("unexpected drops: %d", l.Dropped())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func TestAdminHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("calciomd_grants_total", "grants", Label{"target", "t0"}).Add(42)
	health := "serving"
	a := &Admin{
		Registry: r,
		Extra: func(w io.Writer) {
			io.WriteString(w, "extra_metric 1\n")
		},
		Health: func() string { return health },
		Status: func() any { return map[string]int{"sessions": 3} },
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `calciomd_grants_total{target="t0"} 42`) {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(body, "extra_metric 1") {
		t.Errorf("/metrics missing Extra output: %q", body)
	}

	code, body = get("/healthz")
	if code != 200 || body != "serving\n" {
		t.Errorf("/healthz serving: code=%d body=%q", code, body)
	}
	health = "draining"
	code, body = get("/healthz")
	if code != 503 || body != "draining\n" {
		t.Errorf("/healthz draining: code=%d body=%q", code, body)
	}

	code, body = get("/statusz")
	if code != 200 || !strings.Contains(body, `"sessions": 3`) {
		t.Errorf("/statusz: code=%d body=%q", code, body)
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
}
