// Package obs is calciomd's zero-dependency observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) whose hot-path
// operations are single atomic adds into preallocated storage, a Prometheus
// text-exposition renderer, an HTTP admin handler (/metrics, /healthz,
// /statusz, net/http/pprof), and a sampled structured event log for grant
// lifecycle logging.
//
// The package is built for instrumenting code that must stay allocation-free
// under load: Counter.Add, Gauge.Set/Add and Histogram.Observe never
// allocate, never lock, and never branch on more than a nil check plus a
// bucket search. All allocation happens at registration time (one series per
// (name, labels) pair, created once) and at render time (scrapes), both off
// the arbitration hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric (queue depths, session counts).
// The zero value is ready to use; methods are allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatCounter is a monotonically increasing float64 metric (accumulated
// seconds). Add is a CAS loop — still allocation-free, but meant for
// control-plane accounting rather than per-request hot paths.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v (v must be >= 0).
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// DefaultLatencyBuckets are the upper bounds (seconds) used for
// coordination-latency histograms: 10µs to 10s, roughly 1-2.5-5 per decade,
// with an implicit +Inf overflow bucket. wire.Hist summaries in daemon
// stats and offline replay use the same bounds, so live and replayed
// percentiles are comparable bucket for bucket.
var DefaultLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic, allocation-free
// observation. Buckets are preallocated at construction; Observe is a
// binary search over the (immutable) bounds plus one atomic add into the
// matching bucket and one atomic add into the fixed-point sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; bucket i counts v <= bounds[i]
	buckets []atomic.Uint64
	// sum is kept in nanosecond fixed point so Observe stays a plain
	// atomic add (float64 accumulation would need a CAS loop). At 1e-9
	// resolution an int64 holds ~292 years of accumulated latency.
	sumNanos atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (an implicit +Inf bucket is appended). Panics on empty or unsorted
// bounds — histogram shape is a programming decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Values at an exact bucket bound land in that
// bucket (le semantics); values above every bound land in the +Inf
// overflow bucket. Negative values clamp into the first bucket. Safe for
// concurrent use; never allocates.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s is the first index with bounds[i] >= v, which is
	// exactly the le-bucket; len(bounds) means overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	if v > 0 {
		h.sumNanos.Add(int64(v * 1e9))
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts has
// one entry per bucket (the last is the +Inf overflow); Count is their
// sum. Concurrent Observes may land between bucket reads — each bucket is
// internally consistent, which is what scraping needs.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state for rendering or merging.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    float64(h.sumNanos.Load()) / 1e9,
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// metric kinds for rendering.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// Label is one name=value pair attached to a metric series.
type Label struct{ Key, Value string }

// series is one (family, labels) instance.
type series struct {
	labels string // rendered `{k="v",...}`, or "" for an unlabeled series
	c      *Counter
	g      *Gauge
	f      *FloatCounter
	h      *Histogram
}

// family is one metric name: help text, kind, and its label series.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent — asking for an existing
// (name, labels) series returns the same instance, so callers can resolve
// their series once at setup and hold the pointer for the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) get(name, help, kind string, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.get(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.get(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// FloatCounter registers (or finds) a float counter series (rendered as a
// Prometheus counter).
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	s := r.get(name, help, kindCounter, labels)
	if s.f == nil {
		s.f = &FloatCounter{}
	}
	return s.f
}

// Histogram registers (or finds) a histogram series over the given bounds.
// An existing series keeps its original bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.get(name, help, kindHist, labels)
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// WriteTo renders every family in Prometheus text exposition format,
// deterministically: families sorted by name, series by label string.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
			case s.f != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.f.Value()))
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, strconv.FormatInt(s.g.Value(), 10))
			case s.h != nil:
				writeHist(&b, f.name, s.labels, s.h.Snapshot())
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHist renders one histogram series: cumulative le-buckets, sum,
// count.
func writeHist(b *strings.Builder, name, labels string, s HistSnapshot) {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", formatFloat(bound)), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// withLabel appends one more label pair to an already-rendered label set.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// renderLabels renders a label set in the given order (callers pass a fixed
// order, so one series always renders identically).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float like Prometheus clients do: shortest exact
// representation, deterministic across runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
