package wirebin

import (
	"bytes"
	"encoding/hex"
	"io"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// TestMuxGoldenBytes pins the mux framing: a mux frame is the non-mux frame
// with the uvarint stream id spliced in right after the length header.
func TestMuxGoldenBytes(t *testing.T) {
	req := wire.Request{Seq: 7, Type: wire.TypeWait, Target: "t3"}
	got, err := AppendMuxRequest(nil, 5, &req)
	if err != nil {
		t.Fatal(err)
	}
	// Non-mux encoding is 06070701027433; mux adds one length byte and the
	// stream id 05 before the verb.
	want, _ := hex.DecodeString("0705070701027433")
	if !bytes.Equal(got, want) {
		t.Fatalf("mux request encoding = %x, want %x", got, want)
	}

	resp := wire.Response{Type: wire.TypeGrant, Authorized: true}
	got, err = AppendMuxResponse(nil, 300, &resp)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 300 is the two-byte uvarint ac02.
	want, _ = hex.DecodeString("05ac02020002")
	if !bytes.Equal(got, want) {
		t.Fatalf("mux response encoding = %x, want %x", got, want)
	}
}

// TestMuxNonMuxUnchanged guards the acceptance criterion that non-mux
// encodings are byte-for-byte what they were before mux existed: the shared
// appendRequest/appendResponse body must not perturb the mux=false path.
func TestMuxNonMuxUnchanged(t *testing.T) {
	req := wire.Request{Seq: 7, Type: wire.TypeWait, Target: "t3"}
	frame := encodeReq(t, &req)
	if want, _ := hex.DecodeString("06070701027433"); !bytes.Equal(frame, want) {
		t.Fatalf("non-mux request encoding = %x, want %x", frame, want)
	}
	resp := wire.Response{Seq: 7, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t3"}
	rframe := encodeResp(t, &resp)
	if want, _ := hex.DecodeString("06010713027433"); !bytes.Equal(rframe, want) {
		t.Fatalf("non-mux response encoding = %x, want %x", rframe, want)
	}
}

// TestMuxRoundTrip interleaves several streams on one byte stream and checks
// every frame comes back with its stream id and payload intact.
func TestMuxRoundTrip(t *testing.T) {
	type tagged struct {
		stream uint64
		req    wire.Request
	}
	msgs := []tagged{
		{1, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "a", Cores: 4}},
		{2, wire.Request{Seq: 1, Type: wire.TypeInform, BytesDone: 3.5, Target: "t0"}},
		{1, wire.Request{Seq: 2, Type: wire.TypeWait, Target: "t0"}},
		{1 << 20, wire.Request{Seq: 1, Type: wire.TypeCheck}},
		{2, wire.Request{Seq: 2, Type: wire.TypeEnd, Target: "t0"}},
	}
	var stream []byte
	for i := range msgs {
		var err error
		if stream, err = AppendMuxRequest(stream, msgs[i].stream, &msgs[i].req); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewMuxRequestReader(bytes.NewReader(stream))
	for i := range msgs {
		var got wire.Request
		sid, err := rr.Read(&got)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if sid != msgs[i].stream {
			t.Fatalf("read %d: stream = %d, want %d", i, sid, msgs[i].stream)
		}
		if !reflect.DeepEqual(got, msgs[i].req) {
			t.Fatalf("read %d = %+v, want %+v", i, got, msgs[i].req)
		}
	}
	var end wire.Request
	if _, err := rr.Read(&end); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}

	resps := []struct {
		stream uint64
		resp   wire.Response
	}{
		{2, wire.Response{Seq: 1, Type: wire.TypeResp, OK: true, Authorized: true}},
		{1, wire.Response{Type: wire.TypeGrant, Authorized: true, Target: "t0"}},
		{3, wire.Response{Seq: 9, Type: wire.TypeResp, Err: "busy", Code: wire.CodeBusy}},
	}
	var rstream []byte
	for i := range resps {
		var err error
		if rstream, err = AppendMuxResponse(rstream, resps[i].stream, &resps[i].resp); err != nil {
			t.Fatal(err)
		}
	}
	pr := NewMuxResponseReader(bytes.NewReader(rstream))
	for i := range resps {
		var got wire.Response
		sid, err := pr.Read(&got)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if sid != resps[i].stream {
			t.Fatalf("read %d: stream = %d, want %d", i, sid, resps[i].stream)
		}
		if !reflect.DeepEqual(got, resps[i].resp) {
			t.Fatalf("read %d = %+v, want %+v", i, got, resps[i].resp)
		}
	}
}

// TestMuxStreamZeroRejected pins the invalid-stream contract on both encode
// and decode: ids start at 1.
func TestMuxStreamZeroRejected(t *testing.T) {
	req := wire.Request{Seq: 1, Type: wire.TypeCheck}
	if _, err := AppendMuxRequest(nil, 0, &req); err == nil {
		t.Fatal("AppendMuxRequest accepted stream 0")
	}
	resp := wire.Response{Seq: 1, Type: wire.TypeResp, OK: true}
	if _, err := AppendMuxResponse(nil, 0, &resp); err == nil {
		t.Fatal("AppendMuxResponse accepted stream 0")
	}
	// Hand-built frame: length 4, stream 0, then a check request.
	frame := []byte{0x04, 0x00, 0x06, 0x01, 0x00}
	rr := NewMuxRequestReader(bytes.NewReader(frame))
	var got wire.Request
	if _, err := rr.Read(&got); err == nil {
		t.Fatalf("decoded stream-0 frame into %+v, want error", got)
	}
}

// TestMuxSteadyStateAllocFree extends the hot-path zero-alloc guarantee to
// the mux framing: demuxing coordination verbs and encoding grant pushes
// must not allocate once buffers and interns are warm.
func TestMuxSteadyStateAllocFree(t *testing.T) {
	var stream []byte
	reqs := []wire.Request{
		{Seq: 1, Type: wire.TypeInform, BytesDone: 10, Target: "t1"},
		{Seq: 2, Type: wire.TypeWait, Target: "t1"},
		{Seq: 3, Type: wire.TypeRelease, BytesDone: 20, Target: "t1"},
		{Seq: 4, Type: wire.TypeEnd, Target: "t1"},
	}
	for i := range reqs {
		var err error
		if stream, err = AppendMuxRequest(stream, uint64(i%3+1), &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream)
	rr := NewMuxRequestReader(src)
	var req wire.Request
	decode := func() {
		src.Reset(stream)
		rr.fr.br = src
		for range reqs {
			if _, err := rr.Read(&req); err != nil {
				t.Fatal(err)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, decode); allocs != 0 {
		t.Fatalf("mux request decode: %v allocs/run, want 0", allocs)
	}

	resp := wire.Response{Seq: 2, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t1"}
	grant := wire.Response{Type: wire.TypeGrant, Authorized: true, Target: "t1"}
	buf := make([]byte, 0, 256)
	encode := func() {
		var err error
		if buf, err = AppendMuxResponse(buf[:0], 7, &resp); err != nil {
			t.Fatal(err)
		}
		if buf, err = AppendMuxResponse(buf, 12, &grant); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, encode); allocs != 0 {
		t.Fatalf("mux response encode: %v allocs/run, want 0", allocs)
	}
}
