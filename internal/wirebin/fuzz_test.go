package wirebin

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// goldenFrames is the seed corpus shared by both fuzz targets: every verb
// and response type encoded through the real encoder, so the fuzzer starts
// from well-formed frames and mutates from there.
func goldenFrames(f *testing.F) [][]byte {
	f.Helper()
	reqs := []wire.Request{
		{Seq: 1, Type: wire.TypeRegister, App: "app", Cores: 64, Target: "t1", Incarnation: 2, SelfGrants: 1, DegradedS: 0.5},
		{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{"bytes_total": "1048576"}},
		{Seq: 3, Type: wire.TypeInform, BytesDone: 10.5, Target: "t1"},
		{Seq: 4, Type: wire.TypeProgress, BytesDone: 11},
		{Seq: 5, Type: wire.TypeCheck},
		{Seq: 6, Type: wire.TypeWait, Target: "t1"},
		{Seq: 7, Type: wire.TypeRelease, BytesDone: 12},
		{Seq: 8, Type: wire.TypeComplete},
		{Seq: 9, Type: wire.TypeEnd},
		{Seq: 10, Type: wire.TypeStats},
	}
	var frames [][]byte
	for i := range reqs {
		frame, err := AppendRequest(nil, &reqs[i])
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, frame)
	}
	resps := []wire.Response{
		{Seq: 1, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t1"},
		{Type: wire.TypeGrant, Authorized: true},
		{Type: wire.TypeRevoke, Target: "t1"},
		{Seq: 2, Type: wire.TypeResp, Err: "shed", Code: wire.CodeOverloaded},
		{Seq: 3, Type: wire.TypeResp, OK: true, Stats: &wire.Stats{GrantsServed: 4, Sessions: 2}},
	}
	for i := range resps {
		frame, err := AppendResponse(nil, &resps[i])
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// FuzzReadFrameBinary tortures the frame layer: arbitrary bytes must never
// panic or over-allocate, only yield messages or errors. Both message
// directions are decoded from the same stream since framing is shared.
func FuzzReadFrameBinary(f *testing.F) {
	for _, frame := range goldenFrames(f) {
		f.Add(frame)
	}
	// Malformed headers: truncated varint, zero length, oversize length,
	// length varint longer than 5 bytes, header-only.
	f.Add([]byte{0x80})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x05, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := Codec{}.NewRequestReader(bytes.NewReader(data))
		var req wire.Request
		for i := 0; i < 64; i++ {
			if err := rr.Read(&req); err != nil {
				break
			}
		}
		pr := Codec{}.NewResponseReader(bytes.NewReader(data))
		var resp wire.Response
		for i := 0; i < 64; i++ {
			if err := pr.Read(&resp); err != nil {
				break
			}
		}
	})
}

// FuzzDecodeRequestBinary checks the decode/encode pair is a lossless,
// canonical round trip: any payload the decoder accepts must re-encode, and
// the re-encoding must decode back to an identical frame.
func FuzzDecodeRequestBinary(f *testing.F) {
	for _, frame := range goldenFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := Codec{}.NewRequestReader(bytes.NewReader(data))
		var req wire.Request
		if err := rr.Read(&req); err != nil {
			return
		}
		first, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request %+v failed to re-encode: %v", req, err)
		}
		rr2 := Codec{}.NewRequestReader(bytes.NewReader(first))
		var req2 wire.Request
		if err := rr2.Read(&req2); err != nil {
			t.Fatalf("canonical encoding %x failed to decode: %v", first, err)
		}
		second, err := AppendRequest(nil, &req2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not canonical: %x != %x", first, second)
		}
	})
}
