package wirebin

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// goldenFrames is the seed corpus shared by both fuzz targets: every verb
// and response type encoded through the real encoder, so the fuzzer starts
// from well-formed frames and mutates from there.
func goldenFrames(f *testing.F) [][]byte {
	f.Helper()
	reqs := []wire.Request{
		{Seq: 1, Type: wire.TypeRegister, App: "app", Cores: 64, Target: "t1", Incarnation: 2, SelfGrants: 1, DegradedS: 0.5},
		{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{"bytes_total": "1048576"}},
		{Seq: 3, Type: wire.TypeInform, BytesDone: 10.5, Target: "t1"},
		{Seq: 4, Type: wire.TypeProgress, BytesDone: 11},
		{Seq: 5, Type: wire.TypeCheck},
		{Seq: 6, Type: wire.TypeWait, Target: "t1"},
		{Seq: 7, Type: wire.TypeRelease, BytesDone: 12},
		{Seq: 8, Type: wire.TypeComplete},
		{Seq: 9, Type: wire.TypeEnd},
		{Seq: 10, Type: wire.TypeStats},
	}
	var frames [][]byte
	for i := range reqs {
		frame, err := AppendRequest(nil, &reqs[i])
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, frame)
	}
	resps := []wire.Response{
		{Seq: 1, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t1"},
		{Type: wire.TypeGrant, Authorized: true},
		{Type: wire.TypeRevoke, Target: "t1"},
		{Seq: 2, Type: wire.TypeResp, Err: "shed", Code: wire.CodeOverloaded},
		{Seq: 3, Type: wire.TypeResp, OK: true, Stats: &wire.Stats{GrantsServed: 4, Sessions: 2}},
	}
	for i := range resps {
		frame, err := AppendResponse(nil, &resps[i])
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, frame)
	}
	return frames
}

// FuzzReadFrameBinary tortures the frame layer: arbitrary bytes must never
// panic or over-allocate, only yield messages or errors. Both message
// directions are decoded from the same stream since framing is shared.
func FuzzReadFrameBinary(f *testing.F) {
	for _, frame := range goldenFrames(f) {
		f.Add(frame)
	}
	// Malformed headers: truncated varint, zero length, oversize length,
	// length varint longer than 5 bytes, header-only.
	f.Add([]byte{0x80})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x05, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := Codec{}.NewRequestReader(bytes.NewReader(data))
		var req wire.Request
		for i := 0; i < 64; i++ {
			if err := rr.Read(&req); err != nil {
				break
			}
		}
		pr := Codec{}.NewResponseReader(bytes.NewReader(data))
		var resp wire.Response
		for i := 0; i < 64; i++ {
			if err := pr.Read(&resp); err != nil {
				break
			}
		}
	})
}

// FuzzDecodeMuxFrame tortures the mux demux layer: torn frames, duplicate
// and unknown stream ids, stream 0, and stray negotiation bytes ([0xCB,
// version] hellos spliced into the stream) must never panic — only yield
// (stream, message) pairs or errors — and any mux request the decoder
// accepts must round-trip canonically with its stream id intact.
func FuzzDecodeMuxFrame(f *testing.F) {
	muxFrames := func() [][]byte {
		var frames [][]byte
		reqs := []struct {
			stream uint64
			req    wire.Request
		}{
			{1, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "app", Cores: 8}},
			{2, wire.Request{Seq: 2, Type: wire.TypeInform, BytesDone: 1.5, Target: "t1"}},
			{2, wire.Request{Seq: 3, Type: wire.TypeWait, Target: "t1"}},      // duplicate stream
			{1 << 21, wire.Request{Seq: 4, Type: wire.TypeEnd, Target: "t1"}}, // unknown/huge stream
		}
		for i := range reqs {
			frame, err := AppendMuxRequest(nil, reqs[i].stream, &reqs[i].req)
			if err != nil {
				f.Fatal(err)
			}
			frames = append(frames, frame)
		}
		resp := wire.Response{Type: wire.TypeGrant, Authorized: true, Target: "t1"}
		frame, err := AppendMuxResponse(nil, 3, &resp)
		if err != nil {
			f.Fatal(err)
		}
		return append(frames, frame)
	}()
	for _, frame := range muxFrames {
		f.Add(frame)
		// Torn variant: the frame cut mid-payload.
		f.Add(frame[:len(frame)-1])
		// Negotiation bytes interleaved before the frame.
		f.Add(append([]byte{wire.HelloMagic, wire.VersionBinaryMux}, frame...))
	}
	// Stream id 0, and a frame that is only a stream id with no message.
	f.Add([]byte{0x04, 0x00, 0x06, 0x01, 0x00})
	f.Add([]byte{0x01, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewMuxRequestReader(bytes.NewReader(data))
		var req wire.Request
		for i := 0; i < 64; i++ {
			stream, err := rr.Read(&req)
			if err != nil {
				break
			}
			if stream == 0 {
				t.Fatal("mux reader returned stream 0 without error")
			}
			first, err := AppendMuxRequest(nil, stream, &req)
			if err != nil {
				t.Fatalf("decoded mux request %+v failed to re-encode: %v", req, err)
			}
			var req2 wire.Request
			stream2, err := NewMuxRequestReader(bytes.NewReader(first)).Read(&req2)
			if err != nil {
				t.Fatalf("canonical mux encoding %x failed to decode: %v", first, err)
			}
			if stream2 != stream {
				t.Fatalf("stream id changed across round trip: %d -> %d", stream, stream2)
			}
			second, err := AppendMuxRequest(nil, stream2, &req2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("mux round trip not canonical: %x != %x", first, second)
			}
		}
		pr := NewMuxResponseReader(bytes.NewReader(data))
		var resp wire.Response
		for i := 0; i < 64; i++ {
			if _, err := pr.Read(&resp); err != nil {
				break
			}
		}
	})
}

// FuzzDecodeRequestBinary checks the decode/encode pair is a lossless,
// canonical round trip: any payload the decoder accepts must re-encode, and
// the re-encoding must decode back to an identical frame.
func FuzzDecodeRequestBinary(f *testing.F) {
	for _, frame := range goldenFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := Codec{}.NewRequestReader(bytes.NewReader(data))
		var req wire.Request
		if err := rr.Read(&req); err != nil {
			return
		}
		first, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request %+v failed to re-encode: %v", req, err)
		}
		rr2 := Codec{}.NewRequestReader(bytes.NewReader(first))
		var req2 wire.Request
		if err := rr2.Read(&req2); err != nil {
			t.Fatalf("canonical encoding %x failed to decode: %v", first, err)
		}
		second, err := AppendRequest(nil, &req2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not canonical: %x != %x", first, second)
		}
	})
}
