package wirebin

import (
	"bytes"
	"encoding/hex"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/wire"
)

func encodeReq(t *testing.T, req *wire.Request) []byte {
	t.Helper()
	buf, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	return buf
}

func encodeResp(t *testing.T, resp *wire.Response) []byte {
	t.Helper()
	buf, err := AppendResponse(nil, resp)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	return buf
}

// TestGoldenRequestBytes pins the exact wire bytes of representative
// requests. These encodings are protocol: a change here is a breaking wire
// format change and must bump the negotiated version instead.
func TestGoldenRequestBytes(t *testing.T) {
	cases := []struct {
		name string
		req  wire.Request
		hex  string
	}{
		{
			name: "wait with target",
			req:  wire.Request{Seq: 7, Type: wire.TypeWait, Target: "t3"},
			hex:  "06070701027433",
		},
		{
			name: "register",
			req:  wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 64, Incarnation: 3},
			hex:  "1001010801414003000000000000000000",
		},
		{
			name: "inform with bytes_done",
			req:  wire.Request{Seq: 2, Type: wire.TypeInform, BytesDone: 2.5},
			hex:  "0b0402020000000000000440",
		},
		{
			name: "check default target",
			req:  wire.Request{Seq: 9, Type: wire.TypeCheck},
			hex:  "03060900",
		},
		{
			name: "prepare with sorted info",
			req:  wire.Request{Seq: 3, Type: wire.TypePrepare, Info: map[string]string{"b": "2", "a": "1"}},
			hex:  "0c020304020161013101620132",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatal(err)
			}
			got := encodeReq(t, &tc.req)
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding = %x, want %x", got, want)
			}
		})
	}
}

// TestGoldenResponseBytes pins the exact wire bytes of representative
// responses.
func TestGoldenResponseBytes(t *testing.T) {
	cases := []struct {
		name string
		resp wire.Response
		hex  string
	}{
		{
			name: "ok authorized with target",
			resp: wire.Response{Seq: 7, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t3"},
			hex:  "06010713027433",
		},
		{
			name: "grant push",
			resp: wire.Response{Type: wire.TypeGrant, Authorized: true},
			hex:  "03020002",
		},
		{
			name: "error with code",
			resp: wire.Response{Seq: 4, Type: wire.TypeResp, Err: "no", Code: wire.CodeBusy},
			hex:  "0b01040c026e6f0462757379",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatal(err)
			}
			got := encodeResp(t, &tc.resp)
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding = %x, want %x", got, want)
			}
		})
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []wire.Request{
		{Seq: 1, Type: wire.TypeRegister, App: "app-1", Cores: 128, Target: "t1", Incarnation: 7, SelfGrants: 2, DegradedS: 1.25},
		{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{"bytes_total": "1048576", "mode": "write"}},
		{Seq: 3, Type: wire.TypeInform, BytesDone: 42.5, Target: "t1"},
		{Seq: 4, Type: wire.TypeProgress, BytesDone: 64},
		{Seq: 5, Type: wire.TypeCheck},
		{Seq: 6, Type: wire.TypeWait, Target: "t1"},
		{Seq: 7, Type: wire.TypeRelease, BytesDone: 100},
		{Seq: 8, Type: wire.TypeComplete},
		{Seq: 9, Type: wire.TypeEnd, Target: "t1"},
		{Seq: 10, Type: wire.TypeStats},
	}
	var stream []byte
	for i := range reqs {
		var err error
		if stream, err = AppendRequest(stream, &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	rr := Codec{}.NewRequestReader(bytes.NewReader(stream))
	for i := range reqs {
		var got wire.Request
		if err := rr.Read(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, reqs[i]) {
			t.Fatalf("request %d = %+v, want %+v", i, got, reqs[i])
		}
	}
	var end wire.Request
	if err := rr.Read(&end); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []wire.Response{
		{Seq: 1, Type: wire.TypeResp, OK: true},
		{Seq: 2, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t2"},
		{Type: wire.TypeGrant, Authorized: true, Target: "t2"},
		{Type: wire.TypeRevoke},
		{Seq: 3, Type: wire.TypeResp, Err: "busy", Code: wire.CodeBusy},
		{Seq: 4, Type: wire.TypeResp, OK: true, Stats: &wire.Stats{GrantsServed: 9, Sessions: 3}},
	}
	var stream []byte
	for i := range resps {
		var err error
		if stream, err = AppendResponse(stream, &resps[i]); err != nil {
			t.Fatal(err)
		}
	}
	rr := Codec{}.NewResponseReader(bytes.NewReader(stream))
	for i := range resps {
		var got wire.Response
		if err := rr.Read(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, resps[i]) {
			t.Fatalf("response %d = %+v, want %+v", i, got, resps[i])
		}
	}
}

// TestWriterFraming checks the writer halves produce the same bytes as the
// Append primitives, one frame per message.
func TestWriterFraming(t *testing.T) {
	req := wire.Request{Seq: 3, Type: wire.TypeWait, Target: "t0"}
	resp := wire.Response{Seq: 3, Type: wire.TypeResp, OK: true, Authorized: true}
	var rbuf, wbuf bytes.Buffer
	if err := (Codec{}).NewRequestWriter(&rbuf).Write(&req); err != nil {
		t.Fatal(err)
	}
	if err := (Codec{}).NewResponseWriter(&wbuf).Write(&resp); err != nil {
		t.Fatal(err)
	}
	if want := encodeReq(t, &req); !bytes.Equal(rbuf.Bytes(), want) {
		t.Fatalf("request writer bytes %x, want %x", rbuf.Bytes(), want)
	}
	if want := encodeResp(t, &resp); !bytes.Equal(wbuf.Bytes(), want) {
		t.Fatalf("response writer bytes %x, want %x", wbuf.Bytes(), want)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"zero length", []byte{0x00}},
		{"oversize length", []byte{0xff, 0xff, 0xff, 0xff, 0x7f}},
		{"varint too long", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}},
		{"unknown verb", []byte{0x03, 0xee, 0x01, 0x00}},
		{"unknown flags", []byte{0x03, 0x06, 0x01, 0x80}},
		{"truncated string", []byte{0x05, 0x07, 0x01, 0x01, 0x08, 0x61}},
		{"trailing bytes", []byte{0x04, 0x06, 0x01, 0x00, 0x00}},
		{"register fields on wait", []byte{0x10, 0x07, 0x01, 0x08, 0x01, 0x41, 0x40, 0x03, 0x00, 0, 0, 0, 0, 0, 0, 0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := Codec{}.NewRequestReader(bytes.NewReader(tc.frame))
			var req wire.Request
			if err := rr.Read(&req); err == nil {
				t.Fatalf("decoded %x into %+v, want error", tc.frame, req)
			}
		})
	}
}

// TestTruncatedFrame mirrors the v1 reader contract: EOF at a frame
// boundary passes through, a partial frame is ErrUnexpectedEOF.
func TestTruncatedFrame(t *testing.T) {
	frame := encodeReq(t, &wire.Request{Seq: 5, Type: wire.TypeWait, Target: "abc"})
	for cut := 1; cut < len(frame); cut++ {
		rr := Codec{}.NewRequestReader(bytes.NewReader(frame[:cut]))
		var req wire.Request
		err := rr.Read(&req)
		if err != io.ErrUnexpectedEOF && !strings.Contains(err.Error(), "unexpected EOF") {
			t.Fatalf("cut at %d: err = %v, want unexpected EOF", cut, err)
		}
	}
}

// TestSteadyStateAllocFree pins the zero-allocation guarantee for the
// daemon's hot path: decoding coordination requests and encoding their
// responses, with interned target names and warm buffers.
func TestSteadyStateAllocFree(t *testing.T) {
	var stream []byte
	reqs := []wire.Request{
		{Seq: 1, Type: wire.TypeInform, BytesDone: 10, Target: "t1"},
		{Seq: 2, Type: wire.TypeWait, Target: "t1"},
		{Seq: 3, Type: wire.TypeRelease, BytesDone: 20, Target: "t1"},
		{Seq: 4, Type: wire.TypeCheck},
		{Seq: 5, Type: wire.TypeEnd, Target: "t1"},
	}
	for i := range reqs {
		var err error
		if stream, err = AppendRequest(stream, &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream)
	rr := Codec{}.NewRequestReader(src).(*RequestReader)
	var req wire.Request
	decode := func() {
		src.Reset(stream)
		rr.fr.br = src // bytes.Reader is its own ByteReader
		for range reqs {
			if err := rr.Read(&req); err != nil {
				t.Fatal(err)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, decode); allocs != 0 {
		t.Fatalf("request decode: %v allocs/run, want 0", allocs)
	}

	rw := Codec{}.NewResponseWriter(io.Discard).(*ResponseWriter)
	resp := wire.Response{Seq: 2, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t1"}
	grant := wire.Response{Type: wire.TypeGrant, Authorized: true, Target: "t1"}
	encode := func() {
		if err := rw.Write(&resp); err != nil {
			t.Fatal(err)
		}
		if err := rw.Write(&grant); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, encode); allocs != 0 {
		t.Fatalf("response encode: %v allocs/run, want 0", allocs)
	}
}

// TestClientSideAllocFree covers the mirror-image hot path: the client
// encoding coordination requests and decoding responses.
func TestClientSideAllocFree(t *testing.T) {
	rw := Codec{}.NewRequestWriter(io.Discard).(*RequestWriter)
	req := wire.Request{Seq: 9, Type: wire.TypeWait, Target: "t1"}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := rw.Write(&req); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("request encode: %v allocs/run, want 0", allocs)
	}

	frame := encodeResp(t, &wire.Response{Seq: 9, Type: wire.TypeResp, OK: true, Authorized: true, Target: "t1"})
	src := bytes.NewReader(frame)
	rr := Codec{}.NewResponseReader(src).(*ResponseReader)
	var resp wire.Response
	if allocs := testing.AllocsPerRun(100, func() {
		src.Reset(frame)
		rr.fr.br = src
		if err := rr.Read(&resp); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("response decode: %v allocs/run, want 0", allocs)
	}
}

// TestInternBound checks the intern table stops retaining new names past
// its bound instead of growing without limit.
func TestInternBound(t *testing.T) {
	m := make(map[string]string)
	for i := 0; i < 4*internLimit; i++ {
		intern(m, []byte(strings.Repeat("x", 1+i%13)+string(rune('a'+i%26))))
	}
	if len(m) > internLimit {
		t.Fatalf("intern table grew to %d entries, bound is %d", len(m), internLimit)
	}
}

func TestNaNBytesDoneRoundTrips(t *testing.T) {
	req := wire.Request{Seq: 1, Type: wire.TypeInform, BytesDone: math.NaN()}
	frame := encodeReq(t, &req)
	rr := Codec{}.NewRequestReader(bytes.NewReader(frame))
	var got wire.Request
	if err := rr.Read(&got); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.BytesDone) != math.Float64bits(req.BytesDone) {
		t.Fatalf("NaN bits changed: %x -> %x", math.Float64bits(req.BytesDone), math.Float64bits(got.BytesDone))
	}
}
