// Package wirebin implements the v2 binary wire codec for the calciomd
// protocol: the same Request/Response message model as internal/wire, in a
// compact fixed-order binary encoding negotiated per connection (see the
// hello/ack handshake in internal/wire).
//
// Framing: every message is a uvarint payload length followed by that many
// payload bytes. Payloads above wire.MaxFrame (or empty) are rejected on
// both read and write, mirroring the v1 JSON framing guarantees.
//
// Request payload, fixed field order:
//
//	u8      verb        1=register 2=prepare 3=complete 4=inform 5=progress
//	                    6=check 7=wait 8=release 9=end 10=stats
//	uvarint seq
//	u8      flags       bit 0 target, bit 1 bytes_done, bit 2 info,
//	                    bit 3 register extras
//	[str    target]             if flags&1
//	[f64    bytes_done]         if flags&2 (IEEE-754 bits, little-endian)
//	[info]                      if flags&4: uvarint count, then count ×
//	                            (str key, str value), keys sorted ascending
//	[register extras]           if flags&8: str app, uvarint cores,
//	                            uvarint incarnation, uvarint self_grants,
//	                            f64 degraded_s
//
// Response payload, fixed field order:
//
//	u8      type        1=resp 2=grant 3=revoke
//	uvarint seq
//	u8      flags       bit 0 ok, bit 1 authorized, bit 2 err, bit 3 code,
//	                    bit 4 target, bit 5 stats
//	[str    err]        if flags&4
//	[str    code]       if flags&8
//	[str    target]     if flags&16
//	[str    stats]      if flags&32: the wire.Stats snapshot as JSON bytes
//
// str is uvarint length + bytes. Stats rides as an embedded JSON blob: it
// is a cold, stats-verb-only payload, so the zero-allocation discipline
// below does not extend to it.
//
// Encoders append into a per-connection scratch buffer and decoders reuse a
// per-connection payload buffer and intern target/app strings (the same
// discipline internal/trace uses), so steady-state coordination verbs —
// inform/progress/check/wait/release/end and their responses — encode and
// decode with zero allocations per message.
package wirebin

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/wire"
)

// Verb and response-type enums. Values are wire format — never renumber.
const (
	verbRegister = 1
	verbPrepare  = 2
	verbComplete = 3
	verbInform   = 4
	verbProgress = 5
	verbCheck    = 6
	verbWait     = 7
	verbRelease  = 8
	verbEnd      = 9
	verbStats    = 10

	respResp   = 1
	respGrant  = 2
	respRevoke = 3
)

// Request presence flags.
const (
	reqFlagTarget    = 1 << 0
	reqFlagBytesDone = 1 << 1
	reqFlagInfo      = 1 << 2
	reqFlagRegister  = 1 << 3
)

// Response presence flags.
const (
	respFlagOK         = 1 << 0
	respFlagAuthorized = 1 << 1
	respFlagErr        = 1 << 2
	respFlagCode       = 1 << 3
	respFlagTarget     = 1 << 4
	respFlagStats      = 1 << 5
)

// internLimit bounds the per-connection string intern tables so a peer
// cycling through distinct names cannot grow a decoder without bound; past
// the limit lookups still hit but misses allocate without being retained.
const internLimit = 1024

var verbCode = map[string]byte{
	wire.TypeRegister: verbRegister,
	wire.TypePrepare:  verbPrepare,
	wire.TypeComplete: verbComplete,
	wire.TypeInform:   verbInform,
	wire.TypeProgress: verbProgress,
	wire.TypeCheck:    verbCheck,
	wire.TypeWait:     verbWait,
	wire.TypeRelease:  verbRelease,
	wire.TypeEnd:      verbEnd,
	wire.TypeStats:    verbStats,
}

var verbName = [...]string{
	verbRegister: wire.TypeRegister,
	verbPrepare:  wire.TypePrepare,
	verbComplete: wire.TypeComplete,
	verbInform:   wire.TypeInform,
	verbProgress: wire.TypeProgress,
	verbCheck:    wire.TypeCheck,
	verbWait:     wire.TypeWait,
	verbRelease:  wire.TypeRelease,
	verbEnd:      wire.TypeEnd,
	verbStats:    wire.TypeStats,
}

var respCodeOf = map[string]byte{
	wire.TypeResp:   respResp,
	wire.TypeGrant:  respGrant,
	wire.TypeRevoke: respRevoke,
}

var respNameOf = [...]string{
	respResp:   wire.TypeResp,
	respGrant:  wire.TypeGrant,
	respRevoke: wire.TypeRevoke,
}

// Codec is the v2 binary wire.Codec.
type Codec struct{}

var _ wire.Codec = Codec{}

func (Codec) Name() string { return "binary" }

func (Codec) NewRequestReader(r io.Reader) wire.RequestReader {
	return &RequestReader{fr: newFrameReader(r)}
}

func (Codec) NewRequestWriter(w io.Writer) wire.RequestWriter {
	return &RequestWriter{w: w}
}

func (Codec) NewResponseReader(r io.Reader) wire.ResponseReader {
	return &ResponseReader{fr: newFrameReader(r)}
}

func (Codec) NewResponseWriter(w io.Writer) wire.ResponseWriter {
	return &ResponseWriter{w: w}
}

// frameReader reads uvarint-length-prefixed frames into a reused buffer.
type frameReader struct {
	r  io.Reader
	br io.ByteReader
	n  int // frames read, for error context
	// one is the fallback single-byte scratch when r is not a ByteReader
	// (e.g. a raw net.Conn during the client resume handshake, where
	// buffering would over-read bytes the post-handshake reader needs).
	one [1]byte
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	fr := &frameReader{r: r}
	fr.br, _ = r.(io.ByteReader)
	return fr
}

func (fr *frameReader) readByte() (byte, error) {
	if fr.br != nil {
		return fr.br.ReadByte()
	}
	if _, err := io.ReadFull(fr.r, fr.one[:]); err != nil {
		return 0, err
	}
	return fr.one[0], nil
}

// next reads one frame and returns its payload, valid until the next call.
// io.EOF surfaces unchanged only at a frame boundary, exactly like the v1
// wire.Reader; a partial header or payload becomes io.ErrUnexpectedEOF.
func (fr *frameReader) next() ([]byte, error) {
	var n uint64
	for shift := uint(0); ; shift += 7 {
		b, err := fr.readByte()
		if err != nil {
			if err == io.EOF && shift > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if shift >= 35 { // 5 bytes encode up to 1<<35; MaxFrame is far below
			return nil, fmt.Errorf("wirebin: frame %d: length varint too long", fr.n)
		}
		n |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("wirebin: frame %d: bad frame length 0", fr.n)
	}
	if n > wire.MaxFrame {
		return nil, fmt.Errorf("wirebin: frame %d: frame length %d exceeds max %d", fr.n, n, wire.MaxFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wirebin: frame %d: payload: %w", fr.n, err)
	}
	fr.n++
	return buf, nil
}

var errShort = errors.New("wirebin: truncated payload")

// errBadStream rejects stream id 0 on a mux frame: ids start at 1 so an
// all-zero or truncated prefix can never alias a live stream.
var errBadStream = errors.New("wirebin: invalid mux stream id 0")

// dec is a cursor over one frame's payload.
type dec struct {
	buf []byte
}

func (d *dec) u8() (byte, error) {
	if len(d.buf) < 1 {
		return 0, errShort
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errShort
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *dec) f64() (float64, error) {
	if len(d.buf) < 8 {
		return 0, errShort
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v, nil
}

// bytes returns the next uvarint-length-prefixed byte slice, aliasing the
// frame buffer (valid until the next frame is read).
func (d *dec) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)) {
		return nil, errShort
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b, nil
}

// intern maps a byte slice to a stable string, allocating only on first
// sight (the map lookup with a string(b) key does not allocate on hit).
func intern(m map[string]string, b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(m) < internLimit {
		m[s] = s
	}
	return s
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// writeFrame writes the uvarint length header and payload. Both writes land
// in the caller's buffered writer, so a flush is one syscall per batch.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > wire.MaxFrame {
		return fmt.Errorf("wirebin: bad frame payload size %d", len(payload))
	}
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendRequest appends the binary encoding of req (header and payload) to
// buf and returns the extended slice. It is the encoding primitive under
// RequestWriter, exposed for golden tests and pipelined handshakes.
func AppendRequest(buf []byte, req *wire.Request) ([]byte, error) {
	return appendRequest(buf, 0, false, req)
}

// AppendMuxRequest is AppendRequest for a mux connection: the frame payload
// starts with the uvarint stream id. Stream ids start at 1; 0 is invalid.
func AppendMuxRequest(buf []byte, stream uint64, req *wire.Request) ([]byte, error) {
	if stream == 0 {
		return buf, errBadStream
	}
	return appendRequest(buf, stream, true, req)
}

func appendRequest(buf []byte, stream uint64, mux bool, req *wire.Request) ([]byte, error) {
	verb, ok := verbCode[req.Type]
	if !ok {
		return buf, fmt.Errorf("wirebin: unknown request type %q", req.Type)
	}
	start := len(buf)
	// Reserve a 1-byte length header, the common case; move the payload if
	// it turns out longer.
	buf = append(buf, 0)
	if mux {
		buf = appendUvarint(buf, stream)
	}
	buf = append(buf, verb)
	buf = appendUvarint(buf, req.Seq)
	var flags byte
	if req.Target != "" {
		flags |= reqFlagTarget
	}
	if req.BytesDone != 0 {
		flags |= reqFlagBytesDone
	}
	if len(req.Info) > 0 {
		flags |= reqFlagInfo
	}
	if req.Type == wire.TypeRegister {
		flags |= reqFlagRegister
	}
	buf = append(buf, flags)
	if flags&reqFlagTarget != 0 {
		buf = appendStr(buf, req.Target)
	}
	if flags&reqFlagBytesDone != 0 {
		buf = appendF64(buf, req.BytesDone)
	}
	if flags&reqFlagInfo != 0 {
		keys := make([]string, 0, len(req.Info))
		for k := range req.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = appendUvarint(buf, uint64(len(keys)))
		for _, k := range keys {
			buf = appendStr(buf, k)
			buf = appendStr(buf, req.Info[k])
		}
	}
	if flags&reqFlagRegister != 0 {
		buf = appendStr(buf, req.App)
		buf = appendUvarint(buf, uint64(req.Cores))
		buf = appendUvarint(buf, req.Incarnation)
		buf = appendUvarint(buf, req.SelfGrants)
		buf = appendF64(buf, req.DegradedS)
	}
	return finishFrame(buf, start)
}

// AppendResponse appends the binary encoding of resp (header and payload)
// to buf and returns the extended slice.
func AppendResponse(buf []byte, resp *wire.Response) ([]byte, error) {
	return appendResponse(buf, 0, false, resp)
}

// AppendMuxResponse is AppendResponse for a mux connection: the frame
// payload starts with the uvarint stream id. Stream ids start at 1; 0 is
// invalid.
func AppendMuxResponse(buf []byte, stream uint64, resp *wire.Response) ([]byte, error) {
	if stream == 0 {
		return buf, errBadStream
	}
	return appendResponse(buf, stream, true, resp)
}

func appendResponse(buf []byte, stream uint64, mux bool, resp *wire.Response) ([]byte, error) {
	tc, ok := respCodeOf[resp.Type]
	if !ok {
		return buf, fmt.Errorf("wirebin: unknown response type %q", resp.Type)
	}
	start := len(buf)
	buf = append(buf, 0)
	if mux {
		buf = appendUvarint(buf, stream)
	}
	buf = append(buf, tc)
	buf = appendUvarint(buf, resp.Seq)
	var flags byte
	if resp.OK {
		flags |= respFlagOK
	}
	if resp.Authorized {
		flags |= respFlagAuthorized
	}
	if resp.Err != "" {
		flags |= respFlagErr
	}
	if resp.Code != "" {
		flags |= respFlagCode
	}
	if resp.Target != "" {
		flags |= respFlagTarget
	}
	if resp.Stats != nil {
		flags |= respFlagStats
	}
	buf = append(buf, flags)
	if flags&respFlagErr != 0 {
		buf = appendStr(buf, resp.Err)
	}
	if flags&respFlagCode != 0 {
		buf = appendStr(buf, resp.Code)
	}
	if flags&respFlagTarget != 0 {
		buf = appendStr(buf, resp.Target)
	}
	if flags&respFlagStats != 0 {
		blob, err := json.Marshal(resp.Stats)
		if err != nil {
			return buf[:start], fmt.Errorf("wirebin: marshal stats: %w", err)
		}
		buf = appendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return finishFrame(buf, start)
}

// finishFrame replaces the 1-byte header reservation at start with the real
// uvarint length of the payload that follows it, shifting the payload only
// when the header needs more than one byte.
func finishFrame(buf []byte, start int) ([]byte, error) {
	n := len(buf) - start - 1
	if n == 0 || n > wire.MaxFrame {
		return buf[:start], fmt.Errorf("wirebin: bad frame payload size %d", n)
	}
	if n < 0x80 {
		buf[start] = byte(n)
		return buf, nil
	}
	var hdr [binary.MaxVarintLen32]byte
	hn := binary.PutUvarint(hdr[:], uint64(n))
	buf = append(buf, hdr[:hn-1]...) // grow by the extra header bytes
	copy(buf[start+hn:], buf[start+1:start+1+n])
	copy(buf[start:], hdr[:hn])
	return buf, nil
}

// RequestWriter encodes requests into a reused scratch buffer and writes
// one frame per message. Single-goroutine, like every codec half.
type RequestWriter struct {
	w   io.Writer
	buf []byte
}

func (rw *RequestWriter) Write(req *wire.Request) error {
	buf, err := AppendRequest(rw.buf[:0], req)
	if err != nil {
		return err
	}
	rw.buf = buf[:0]
	_, err = rw.w.Write(buf)
	return err
}

// ResponseWriter encodes responses into a reused scratch buffer and writes
// one frame per message.
type ResponseWriter struct {
	w   io.Writer
	buf []byte
}

func (rw *ResponseWriter) Write(resp *wire.Response) error {
	buf, err := AppendResponse(rw.buf[:0], resp)
	if err != nil {
		return err
	}
	rw.buf = buf[:0]
	_, err = rw.w.Write(buf)
	return err
}

// RequestReader decodes request frames (the server's read side), interning
// target and app names so steady-state verbs decode without allocating.
type RequestReader struct {
	fr      *frameReader
	interns map[string]string
}

func (rr *RequestReader) Read(req *wire.Request) error {
	payload, err := rr.fr.next()
	if err != nil {
		return err
	}
	if rr.interns == nil {
		rr.interns = make(map[string]string)
	}
	return decodeRequest(payload, req, rr.interns)
}

func decodeRequest(payload []byte, req *wire.Request, interns map[string]string) error {
	d := dec{payload}
	verb, err := d.u8()
	if err != nil {
		return err
	}
	if int(verb) >= len(verbName) || verbName[verb] == "" {
		return fmt.Errorf("wirebin: unknown request verb %d", verb)
	}
	seq, err := d.uvarint()
	if err != nil {
		return err
	}
	flags, err := d.u8()
	if err != nil {
		return err
	}
	if flags&^byte(reqFlagTarget|reqFlagBytesDone|reqFlagInfo|reqFlagRegister) != 0 {
		return fmt.Errorf("wirebin: unknown request flags %#x", flags)
	}
	*req = wire.Request{Type: verbName[verb], Seq: seq}
	if flags&reqFlagTarget != 0 {
		b, err := d.bytes()
		if err != nil {
			return err
		}
		req.Target = intern(interns, b)
	}
	if flags&reqFlagBytesDone != 0 {
		if req.BytesDone, err = d.f64(); err != nil {
			return err
		}
	}
	if flags&reqFlagInfo != 0 {
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		// Each pair needs at least two length bytes, so n is bounded by the
		// remaining payload; reject early rather than over-allocate.
		if n > uint64(len(d.buf))/2 {
			return errShort
		}
		req.Info = make(map[string]string, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.bytes()
			if err != nil {
				return err
			}
			v, err := d.bytes()
			if err != nil {
				return err
			}
			req.Info[string(k)] = string(v)
		}
	}
	if flags&reqFlagRegister != 0 {
		if verbName[verb] != wire.TypeRegister {
			return fmt.Errorf("wirebin: register fields on %s request", verbName[verb])
		}
		b, err := d.bytes()
		if err != nil {
			return err
		}
		req.App = intern(interns, b)
		cores, err := d.uvarint()
		if err != nil {
			return err
		}
		req.Cores = int(cores)
		if req.Incarnation, err = d.uvarint(); err != nil {
			return err
		}
		if req.SelfGrants, err = d.uvarint(); err != nil {
			return err
		}
		if req.DegradedS, err = d.f64(); err != nil {
			return err
		}
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wirebin: %d trailing bytes after request", len(d.buf))
	}
	return nil
}

// ResponseReader decodes response frames (the client's read side).
type ResponseReader struct {
	fr      *frameReader
	interns map[string]string
}

func (rr *ResponseReader) Read(resp *wire.Response) error {
	payload, err := rr.fr.next()
	if err != nil {
		return err
	}
	if rr.interns == nil {
		rr.interns = make(map[string]string)
	}
	return decodeResponse(payload, resp, rr.interns)
}

func decodeResponse(payload []byte, resp *wire.Response, interns map[string]string) error {
	d := dec{payload}
	tc, err := d.u8()
	if err != nil {
		return err
	}
	if int(tc) >= len(respNameOf) || respNameOf[tc] == "" {
		return fmt.Errorf("wirebin: unknown response type %d", tc)
	}
	seq, err := d.uvarint()
	if err != nil {
		return err
	}
	flags, err := d.u8()
	if err != nil {
		return err
	}
	if flags&^byte(respFlagOK|respFlagAuthorized|respFlagErr|respFlagCode|respFlagTarget|respFlagStats) != 0 {
		return fmt.Errorf("wirebin: unknown response flags %#x", flags)
	}
	*resp = wire.Response{
		Type:       respNameOf[tc],
		Seq:        seq,
		OK:         flags&respFlagOK != 0,
		Authorized: flags&respFlagAuthorized != 0,
	}
	if flags&respFlagErr != 0 {
		b, err := d.bytes()
		if err != nil {
			return err
		}
		resp.Err = string(b)
	}
	if flags&respFlagCode != 0 {
		b, err := d.bytes()
		if err != nil {
			return err
		}
		resp.Code = intern(interns, b)
	}
	if flags&respFlagTarget != 0 {
		b, err := d.bytes()
		if err != nil {
			return err
		}
		resp.Target = intern(interns, b)
	}
	if flags&respFlagStats != 0 {
		b, err := d.bytes()
		if err != nil {
			return err
		}
		resp.Stats = new(wire.Stats)
		if err := json.Unmarshal(b, resp.Stats); err != nil {
			return fmt.Errorf("wirebin: unmarshal stats: %w", err)
		}
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wirebin: %d trailing bytes after response", len(d.buf))
	}
	return nil
}

// Mux framing (protocol version wire.VersionBinaryMux): identical frames to
// the non-mux v2 codec, except every frame payload begins with the uvarint
// stream id of the logical session the message belongs to. Stream ids start
// at 1; 0 is rejected on both encode and decode.

// muxStream consumes the leading uvarint stream id off a mux frame payload.
func muxStream(payload []byte) (uint64, []byte, error) {
	d := dec{payload}
	stream, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if stream == 0 {
		return 0, nil, errBadStream
	}
	return stream, d.buf, nil
}

// MuxRequestReader decodes mux request frames (the server's read side of a
// mux connection). Read returns the frame's stream id alongside the decoded
// request. All streams on a connection share one reader, one frame buffer,
// and one intern table.
type MuxRequestReader struct {
	fr      *frameReader
	interns map[string]string
}

func NewMuxRequestReader(r io.Reader) *MuxRequestReader {
	return &MuxRequestReader{fr: newFrameReader(r)}
}

func (rr *MuxRequestReader) Read(req *wire.Request) (uint64, error) {
	payload, err := rr.fr.next()
	if err != nil {
		return 0, err
	}
	stream, rest, err := muxStream(payload)
	if err != nil {
		return 0, err
	}
	if rr.interns == nil {
		rr.interns = make(map[string]string)
	}
	return stream, decodeRequest(rest, req, rr.interns)
}

// MuxResponseReader decodes mux response frames (the client's read side of a
// mux connection).
type MuxResponseReader struct {
	fr      *frameReader
	interns map[string]string
}

func NewMuxResponseReader(r io.Reader) *MuxResponseReader {
	return &MuxResponseReader{fr: newFrameReader(r)}
}

func (rr *MuxResponseReader) Read(resp *wire.Response) (uint64, error) {
	payload, err := rr.fr.next()
	if err != nil {
		return 0, err
	}
	stream, rest, err := muxStream(payload)
	if err != nil {
		return 0, err
	}
	if rr.interns == nil {
		rr.interns = make(map[string]string)
	}
	return stream, decodeResponse(rest, resp, rr.interns)
}
