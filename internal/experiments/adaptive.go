package experiments

import (
	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/platform"
)

// ExtensionAdaptive exercises the application-side reorganization the
// paper's §III-C sketches (and leaves to future work): an application polls
// the coordination layer before each I/O phase and, if the file system is
// busy, runs its next computation block first and writes afterwards.
//
// Two identical periodic applications whose phases would collide every
// single time desynchronize after one swap and stop interfering.
func ExtensionAdaptive() *Table {
	t := &Table{
		ID:      "extension-adaptive",
		Title:   "Application-side reorganization: periodic colliders with/without adaptation",
		Columns: []string{"adaptive", "timeA_s", "timeB_s", "sum_factors", "makespan_s"},
		Notes: "two 336-proc apps, 8 phases of 4 MiB/proc every 5 s, identical periods:\n" +
			"without adaptation every phase collides; polling SystemBusy before each\n" +
			"phase and computing first desynchronizes them after one swap",
	}
	pool := platform.NewPool() // every coordinated entry runs Interfere
	for _, adaptive := range []bool{false, true} {
		sc := NancyPlatform(false)
		w := ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     4 * MiB,
			BlocksPerProc: 1,
			Phases:        8,
			ComputeTime:   5,
			Adaptive:      adaptive,
		}
		sc.Apps = []delta.AppSpec{
			{Name: "A", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: w, Gran: ior.PerPhase},
			{Name: "B", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: w, Gran: ior.PerPhase},
		}
		soloA, soloB := sc.SoloOn(pool, 0), sc.SoloOn(pool, 1)
		// Interference policy: nobody blocks anybody; the adaptive app
		// only uses the shared knowledge to reschedule itself.
		res := sc.RunOn(pool, delta.Interfere, []float64{0, 0.5}, nil)
		sum := res.IOTime[0]/soloA + res.IOTime[1]/soloB
		flag := 0.0
		if adaptive {
			flag = 1
		}
		t.AddRow(flag, res.IOTime[0], res.IOTime[1], sum, res.Makespan)
	}
	return t
}

// ExtensionReadWrite extends the paper's write/write study to read/write
// interference: a reading application against a writing one on the Nancy
// platform. In the model both directions share the same disks and NICs, so
// the ∆-graph mirrors Fig. 2 — and CALCioM's FCFS protects the reader's
// first arrival exactly as it protects writers.
func ExtensionReadWrite(points int) *Table {
	sc := NancyPlatform(false)
	mk := func(access ior.AccessKind) ior.Workload {
		return ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     16 * MiB,
			BlocksPerProc: 1,
			ReqBytes:      2 * MiB,
			Access:        access,
		}
	}
	sc.Apps = []delta.AppSpec{
		{Name: "writer", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: mk(ior.WriteAccess), Gran: ior.PerRound},
		{Name: "reader", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: mk(ior.ReadAccess), Gran: ior.PerRound},
	}
	dts := linspace(-12, 12, points)
	inter := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)
	t := &Table{
		ID:      "extension-readwrite",
		Title:   "Read/write interference (extension): writer vs reader, 2x336 procs (Nancy)",
		Columns: []string{"dt_s", "tWriter_interfere", "tReader_interfere", "tWriter_fcfs", "tReader_fcfs"},
		Notes:   "reads share disks and NICs with writes; the ∆ mirrors Fig. 2 and FCFS protects the first arrival",
	}
	for i := range dts {
		t.AddRow(dts[i], inter.TimeA[i], inter.TimeB[i], fcfs.TimeA[i], fcfs.TimeB[i])
	}
	return t
}
