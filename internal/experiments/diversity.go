package experiments

import (
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/platform"
)

// ExtensionDiversity reproduces the paper's §II-E motivation as a measured
// experiment: a CM1-like snapshot writer (23 MB/core every 3 minutes) and a
// NAMD-like trickle writer (tiny frequent outputs through 8 output procs)
// share the file system. A storage system that only sees raw requests
// treats them alike; CALCioM knows the CM1 bursts dwarf the NAMD trickles
// and the dynamic policy protects the trickler at negligible cost.
//
// Policy codes: 0=uncoordinated, 1=fcfs, 2=dynamic(sum-interference).
func ExtensionDiversity() *Table {
	t := &Table{
		ID:      "extension-diversity",
		Title:   "Workload diversity (§II-E): CM1-like bursts vs NAMD-like trickle",
		Columns: []string{"policy", "factorCM1", "factorNAMD", "sum_factors"},
		Notes: "CM1: 1024 cores, 23 MB/core snapshots every 180 s; NAMD: 1024 cores,\n" +
			"~KB/core per second through 8 output procs. policy: 0=uncoordinated\n" +
			"1=fcfs 2=dynamic(sumI)",
	}
	build := func() delta.Scenario {
		sc := SurveyorPlatform()
		sc.Apps = []delta.AppSpec{
			{Name: "cm1", Procs: 1024, Nodes: nodesFor(1024, SurveyorCoresPerNode),
				W: ior.CM1Workload(3), Gran: ior.PerRound},
			{Name: "namd", Procs: 1024, Nodes: nodesFor(1024, SurveyorCoresPerNode),
				W: ior.NAMDWorkload(300), Gran: ior.PerRound},
		}
		return sc
	}

	model := SurveyorPlatform().Model()
	policies := []struct {
		code    float64
		factory delta.PolicyFactory
	}{
		{0, delta.Uncoordinated},
		{1, delta.FCFS},
		{2, delta.Dynamic(core.SumInterferenceFactors{Model: model}, true)},
	}
	// The solo calibrations share one pool; the policy runs keep their own
	// platforms since each iteration runs a different policy family.
	calib := platform.NewPool()
	sc := build()
	soloCM1 := sc.SoloOn(calib, 0)
	soloNAMD := sc.SoloOn(calib, 1)
	for _, p := range policies {
		res := build().Run(p.factory, []float64{0, 0})
		fCM1 := res.IOTime[0] / soloCM1
		fNAMD := res.IOTime[1] / soloNAMD
		t.AddRow(p.code, fCM1, fNAMD, fCM1+fNAMD)
	}
	return t
}

// ExtensionFairShare quantifies the paper's introduction argument: "a fair
// sharing of throughput between two concurrent applications will lead to
// both applications being slowed down", whereas unfair serialization is
// better machine-wide. A fair-share time-slicing policy is compared with
// interference, FCFS and the dynamic policy on the Fig. 10 workload.
//
// Policy codes: 0=uncoordinated, 1=fairshare, 2=fcfs, 3=dynamic(cpu-s).
func ExtensionFairShare() *Table {
	t := &Table{
		ID:      "extension-fairshare",
		Title:   "Fair sharing vs machine-wide efficiency (Fig. 10 workload, dt=2)",
		Columns: []string{"policy", "timeA_s", "timeB_s", "percore_s"},
		Notes: "fairness equalizes progress and slows everyone; serializing is unfair\n" +
			"but machine-wide better. policy: 0=uncoordinated 1=fairshare 2=fcfs 3=dynamic",
	}
	fairshare := func(m *core.PerfModel) core.Policy { return core.FairSharePolicy{Quantum: 0.5} }
	policies := []struct {
		code    float64
		factory delta.PolicyFactory
	}{
		{0, delta.Uncoordinated},
		{1, fairshare},
		{2, delta.FCFS},
		{3, delta.Dynamic(core.CPUSecondsWasted{}, false)},
	}
	for _, p := range policies {
		sc := fig10Scenario(ior.PerRound)
		res := sc.Run(p.factory, []float64{0, 2})
		perCore := (2048*res.IOTime[0] + 2048*res.IOTime[1]) / 4096
		t.AddRow(p.code, res.IOTime[0], res.IOTime[1], perCore)
	}
	return t
}
