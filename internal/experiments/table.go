package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is the uniform result format of every experiment: named columns and
// float rows, with free-text notes recording what the paper shows and what
// to compare.
type Table struct {
	ID      string // e.g. "fig2"
	Title   string
	Columns []string
	Rows    [][]float64
	Notes   string
}

// AddRow appends a row, validating the width.
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: %s: row width %d != %d columns", t.ID, len(vals), len(t.Columns)))
	}
	t.Rows = append(t.Rows, vals)
}

// Column returns the values of the named column.
func (t *Table) Column(name string) []float64 {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for r, row := range t.Rows {
				out[r] = row[i]
			}
			return out
		}
	}
	panic(fmt.Sprintf("experiments: %s: no column %q", t.ID, name))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		for _, line := range strings.Split(t.Notes, "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := formatCell(v)
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for r := range t.Rows {
		for i := range t.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cells[r][i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = formatCell(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 0):
		return "inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
