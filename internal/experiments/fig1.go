package experiments

import (
	"fmt"

	"repro/internal/swf"
)

// TraceConfig controls the synthetic Intrepid-like trace used by the Fig. 1
// experiments. Days is reduced relative to the paper's 8 months for test
// speed; the distributions are stationary so the shapes are unchanged.
type TraceConfig struct {
	Seed int64
	Days float64
}

// DefaultTrace is the configuration used by the benches and the CLI.
var DefaultTrace = TraceConfig{Seed: 20090101, Days: 243}

func (c TraceConfig) generate() *swf.Trace {
	return swf.Generate(swf.GenConfig{Seed: c.Seed, Days: c.Days})
}

// Fig1a reproduces Figure 1(a): the distribution of job sizes on Intrepid
// (histogram, CDF, and duration-weighted CDF). The paper's headline: half
// the jobs run on <= 2,048 cores (1.25% of the machine), and the statement
// still holds weighted by duration.
func Fig1a(cfg TraceConfig) *Table {
	tr := cfg.generate()
	t := &Table{
		ID:      "fig1a",
		Title:   "Distribution of job sizes (synthetic Intrepid-like trace)",
		Columns: []string{"cores", "pct_jobs", "cdf_pct", "pct_time", "time_cdf_pct"},
		Notes: fmt.Sprintf("paper: ~50%% of jobs <= 2048 cores; trace: %d jobs over %.0f days, median size %d",
			len(tr.Jobs), cfg.Days, swf.MedianJobSize(tr)),
	}
	for _, b := range swf.SizeDistribution(tr) {
		t.AddRow(float64(b.Cores), 100*b.Share, 100*b.CDF, 100*b.TimeShare, 100*b.TimeCDF)
	}
	return t
}

// Fig1b reproduces Figure 1(b): the proportion of total time during which k
// jobs run concurrently. The paper's mass sits between 4 and 60 concurrent
// jobs.
func Fig1b(cfg TraceConfig) *Table {
	tr := cfg.generate()
	dist := swf.ConcurrencyDistribution(tr)
	t := &Table{
		ID:      "fig1b",
		Title:   "Number of concurrent jobs by time unit",
		Columns: []string{"concurrent_jobs", "proportion_of_time"},
		Notes:   fmt.Sprintf("mean concurrency %.2f", swf.MeanConcurrency(tr)),
	}
	for k, p := range dist {
		if p == 0 && k > 0 {
			continue
		}
		t.AddRow(float64(k), p)
	}
	return t
}

// ProbIO reproduces the §II-B computation: the lower bound on the
// probability that at least one application is doing I/O at a random
// instant, as a function of E[µ]. The paper reports 64% at E[µ] = 5% on the
// Intrepid distribution.
func ProbIO(cfg TraceConfig) *Table {
	tr := cfg.generate()
	t := &Table{
		ID:      "prob-io",
		Title:   "P(another application is doing I/O) = 1 - Σ P(X=n)(1-E[µ])^n",
		Columns: []string{"mu_pct", "prob_pct"},
		Notes:   "paper: 64% at E[mu]=5% on the Intrepid trace",
	}
	for _, mu := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		t.AddRow(100*mu, 100*swf.ProbOtherDoingIO(tr, mu))
	}
	return t
}
