package experiments

// Experiment is a named, parameter-free experiment runner used by the CLI
// and the benchmark harness. Points counts are the defaults used for the
// recorded EXPERIMENTS.md tables.
type Experiment struct {
	ID    string
	Paper string // what the paper shows
	Run   func() *Table
}

// All returns every experiment in paper order, with default parameters.
func All() []Experiment {
	return []Experiment{
		{"fig1a", "Fig. 1a: distribution of job sizes on Intrepid", func() *Table { return Fig1a(DefaultTrace) }},
		{"fig1b", "Fig. 1b: number of concurrent jobs by time unit", func() *Table { return Fig1b(DefaultTrace) }},
		{"prob-io", "§II-B: probability another app is doing I/O", func() *Table { return ProbIO(DefaultTrace) }},
		{"fig2", "Fig. 2: ∆-graph of two equal apps + expected model", func() *Table { return Fig2(25) }},
		{"fig3", "Fig. 3: cache-enabled backend, periodic writers", func() *Table { return Fig3(10) }},
		{"fig4", "Fig. 4: small app crushed by a big one", Fig4},
		{"fig6", "Fig. 6: ∆-graphs across size splits", func() *Table { return Fig6(21) }},
		{"fig7a", "Fig. 7a: FCFS vs interference, 2x2048", func() *Table { return Fig7a(31) }},
		{"fig7b", "Fig. 7b: interference below expectation, 2x1024", func() *Table { return Fig7b(29) }},
		{"fig8a", "Fig. 8a: collective buffering vs serialization", func() *Table { return Fig8a(33) }},
		{"fig8b", "Fig. 8b: comm vs write phase impact", Fig8b},
		{"fig9", "Fig. 9: three policies across size splits", func() *Table { return Fig9(41) }},
		{"fig9-summary", "Fig. 9 (condensed): worst-case factors", func() *Table { return Fig9Summary(41) }},
		{"fig10", "Fig. 10: interruption granularity (saw pattern)", func() *Table { return Fig10(41) }},
		{"fig11", "Fig. 11: machine-wide metric, CALCioM dynamic", func() *Table { return Fig11(41) }},
		{"fig12", "Fig. 12: delayed overlap tradeoff", func() *Table { return Fig12(29) }},
		{"ablation-server-sched", "ablation: server-side scheduling vs coordination", AblationServerScheduler},
		{"ablation-granularity", "ablation: coordination-point granularity", AblationGranularity},
		{"ablation-latency", "ablation: message latency sensitivity", AblationMessageLatency},
		{"ablation-cb-buffer", "ablation: collective-buffering buffer size", AblationCollectiveBuffer},
		{"ablation-network", "ablation: static caps vs explicit max-min fabric", AblationNetworkModel},
		{"machine-study", "extension: trace-driven whole-machine study", func() *Table { return MachineStudy(150) }},
		{"extension-adaptive", "extension: application-side reorganization (§III-C)", ExtensionAdaptive},
		{"extension-readwrite", "extension: read/write interference", func() *Table { return ExtensionReadWrite(13) }},
		{"extension-diversity", "extension: §II-E workload diversity (CM1 vs NAMD)", ExtensionDiversity},
		{"extension-fairshare", "extension: fairness strawman vs machine-wide metrics", ExtensionFairShare},
	}
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}
