package experiments

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/ior"
)

// rennesSplitScenario builds the Grid'5000 Rennes scenario used by Figs. 6
// and 9: a 768-core budget split into A (768-n) and B (n), both writing a
// strided pattern through collective buffering.
func rennesSplitScenario(coresB int, perProcBytes int64) delta.Scenario {
	sc := RennesPlatform()
	coresA := 768 - coresB
	w := ior.Workload{
		Pattern:       ior.Strided,
		BlockSize:     2 * MiB,
		BlocksPerProc: int(perProcBytes / (2 * MiB)),
		CB:            ior.CollectiveBuffering{BufBytes: 16 * MiB},
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: coresA, Nodes: nodesFor(coresA, RennesCoresPerNode), W: w, Gran: ior.PerRound},
		{Name: "B", Procs: coresB, Nodes: nodesFor(coresB, RennesCoresPerNode), W: w, Gran: ior.PerRound},
	}
	return sc
}

// Fig6 reproduces Figure 6: ∆-graphs of the interference factor when 768
// cores are split into applications of different sizes (B on 24..384 cores),
// each process writing 16 MB (8 strides of 2 MB). The small application is
// hurt dramatically (factor up to ~14 at 24 cores) when it arrives second.
func Fig6(points int) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "∆-graphs of interference factor, 768 cores split A=(768-N) / B=N (Rennes)",
		Columns: []string{"coresB", "dt_s", "factorA", "factorB"},
		Notes:   "paper: factor up to 14 for the 24-core app; ~2 for the even split",
	}
	for _, nb := range []int{24, 48, 96, 192, 384} {
		sc := rennesSplitScenario(nb, 16*MiB)
		dts := linspace(-25, 25, points)
		s := sc.Sweep(delta.Uncoordinated, dts)
		for i := range dts {
			t.AddRow(float64(nb), dts[i], s.FactorA[i], s.FactorB[i])
		}
	}
	return t
}

// Fig9 reproduces Figure 9: the interference factor under the three static
// policies (interfering, FCFS serialization, interruption) for a very uneven
// split (744/24) and an even one (384/384), each process writing 8 MB
// strided. FCFS is disastrous for a small app arriving second (b); the
// interruption is the dual: bad for an equal-size first app (c).
func Fig9(points int) *Table {
	t := &Table{
		ID:    "fig9",
		Title: "Interference factor per policy: (A,B) = (744,24) and (384,384) on Rennes",
		Columns: []string{"coresA", "coresB", "dt_s",
			"fA_interfere", "fB_interfere",
			"fA_fcfs", "fB_fcfs",
			"fA_interrupt", "fB_interrupt"},
		Notes: "paper Fig. 9: FCFS hurts small B arriving second; interruption hurts equal-size A",
	}
	for _, nb := range []int{24, 384} {
		sc := rennesSplitScenario(nb, 8*MiB)
		dts := linspace(-20, 20, points)
		inter := sc.Sweep(delta.Uncoordinated, dts)
		fcfs := sc.Sweep(delta.FCFS, dts)
		irq := sc.Sweep(delta.Interrupt, dts)
		for i := range dts {
			t.AddRow(float64(768-nb), float64(nb), dts[i],
				inter.FactorA[i], inter.FactorB[i],
				fcfs.FactorA[i], fcfs.FactorB[i],
				irq.FactorA[i], irq.FactorB[i])
		}
	}
	return t
}

// Fig9Summary condenses Fig. 9 into the paper's qualitative claims, one row
// per (split, policy): worst-case factor for each app across the sweep.
func Fig9Summary(points int) *Table {
	t := &Table{
		ID:      "fig9-summary",
		Title:   "Worst-case interference factor per policy across the ∆ sweep",
		Columns: []string{"coresA", "coresB", "maxA_interfere", "maxB_interfere", "maxA_fcfs", "maxB_fcfs", "maxA_interrupt", "maxB_interrupt"},
	}
	full := Fig9(points)
	splits := [][2]float64{{744, 24}, {384, 384}}
	for _, sp := range splits {
		maxes := make([]float64, 6)
		for _, row := range full.Rows {
			if row[0] != sp[0] {
				continue
			}
			for c := 0; c < 6; c++ {
				if row[3+c] > maxes[c] {
					maxes[c] = row[3+c]
				}
			}
		}
		t.AddRow(sp[0], sp[1], maxes[0], maxes[1], maxes[2], maxes[3], maxes[4], maxes[5])
	}
	t.Notes = fmt.Sprintf("derived from fig9 with %d dt points per split", points)
	return t
}
