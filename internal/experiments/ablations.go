package experiments

import (
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/platform"
)

// AblationServerScheduler contrasts server-side request scheduling (the
// related-work approach CALCioM argues against) with application-level
// coordination: the same Fig. 7a workload under per-server processor
// sharing, per-server FIFO, and server-side app-exclusive service, all
// uncoordinated, against CALCioM FCFS.
func AblationServerScheduler() *Table {
	t := &Table{
		ID:      "ablation-server-sched",
		Title:   "Server-side scheduling vs cross-application coordination (Fig. 7a workload, dt=5)",
		Columns: []string{"mode", "timeA_s", "timeB_s", "sum_s"},
		Notes: "modes: 0=share (interference), 1=per-server FIFO, 2=server app-exclusive,\n" +
			"3=CALCioM FCFS. Server-side policies lack app knowledge; requests still interleave\n" +
			"across servers, so only the coordination layer fully protects the first app",
	}
	// One pool across modes: every scheduling mode is a distinct spec, and
	// the only coordinated entry runs FCFS, so no policy families mix.
	pool := platform.NewPool()
	for mode, setup := range []struct {
		policy  pfs.SchedPolicy
		factory delta.PolicyFactory
	}{
		{pfs.Share, delta.Uncoordinated},
		{pfs.FIFO, delta.Uncoordinated},
		{pfs.Exclusive, delta.Uncoordinated},
		{pfs.Share, delta.FCFS},
	} {
		sc := surveyorContiguous(2048)
		sc.FS.Policy = setup.policy
		res := sc.RunOn(pool, setup.factory, []float64{0, 5}, nil)
		t.AddRow(float64(mode), res.IOTime[0], res.IOTime[1], res.IOTime[0]+res.IOTime[1])
	}
	return t
}

// AblationGranularity sweeps the placement of coordination calls
// (phase / file / round) for the Fig. 10 interruption scenario, measuring
// how quickly the big application can yield.
func AblationGranularity() *Table {
	t := &Table{
		ID:      "ablation-granularity",
		Title:   "Coordination-point granularity under interruption (Fig. 10 workload, dt=5)",
		Columns: []string{"granularity", "timeA_s", "timeB_s"},
		Notes:   "granularity: 0=phase (cannot interrupt), 1=file, 2=round; finer helps B",
	}
	pool := platform.NewPool() // all entries run Interrupt: one family
	for _, g := range []ior.Granularity{ior.PerPhase, ior.PerFile, ior.PerRound} {
		sc := fig10Scenario(g)
		res := sc.RunOn(pool, delta.Interrupt, []float64{0, 5}, nil)
		t.AddRow(float64(g), res.IOTime[0], res.IOTime[1])
	}
	return t
}

// AblationMessageLatency sweeps the coordination message latency to show
// the dynamic policy's benefit is robust until latencies approach the round
// time (Fig. 11 scenario at dt=2).
func AblationMessageLatency() *Table {
	t := &Table{
		ID:      "ablation-latency",
		Title:   "Sensitivity of CALCioM dynamic to coordination message latency (dt=2)",
		Columns: []string{"latency_s", "percore_calciom_s", "percore_interfere_s"},
		Notes:   "coordination stays profitable while latency << round time (~0.5s here)",
	}
	pool := platform.NewPool() // coordinated entries all run the same dynamic policy
	base := fig10Scenario(ior.PerRound)
	interfere := base.RunOn(pool, delta.Uncoordinated, []float64{0, 2}, nil)
	perCore := func(res delta.Result) float64 {
		return (2048*res.IOTime[0] + 2048*res.IOTime[1]) / 4096
	}
	for _, lat := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 0.5} {
		sc := fig10Scenario(ior.PerRound)
		sc.CoordLatency = lat
		res := sc.RunOn(pool, delta.Dynamic(core.CPUSecondsWasted{}, false), []float64{0, 2}, nil)
		t.AddRow(lat, perCore(res), perCore(interfere))
	}
	return t
}

// AblationCollectiveBuffer sweeps the collective-buffering buffer size on
// the Fig. 8 workload: larger buffers mean fewer, longer rounds — less
// coordination overhead but coarser interruption.
func AblationCollectiveBuffer() *Table {
	t := &Table{
		ID:      "ablation-cb-buffer",
		Title:   "Collective-buffering buffer size (Fig. 8 workload, interrupt at dt=5)",
		Columns: []string{"buf_MiB", "rounds", "soloA_s", "timeA_s", "timeB_s"},
		Notes:   "smaller buffers -> more rounds -> faster yields for the interrupted app",
	}
	pool := platform.NewPool() // coordinated entries all run Interrupt
	for _, bufMiB := range []int64{4, 8, 16, 32, 64} {
		sc := surveyorStrided()
		for i := range sc.Apps {
			sc.Apps[i].W.CB.BufBytes = bufMiB * MiB
		}
		solo := sc.SoloOn(pool, 0)
		res := sc.RunOn(pool, delta.Interrupt, []float64{0, 5}, nil)
		// Recompute the round count for reporting.
		aggs := nodesFor(2048, SurveyorCoresPerNode)
		fileBytes := sc.Apps[0].W.FileBytes(2048)
		rounds := (fileBytes + int64(aggs)*bufMiB*MiB - 1) / (int64(aggs) * bufMiB * MiB)
		t.AddRow(float64(bufMiB), float64(rounds), solo, res.IOTime[0], res.IOTime[1])
	}
	return t
}

// AblationNetworkModel compares the default contention model (per-server
// processor sharing with static per-request injection caps) against the
// explicit-fabric model (per-app NIC links + per-server links under global
// max-min fairness) on the Fig. 6 small-vs-big scenario. Agreement here
// justifies the cheaper default model.
func AblationNetworkModel() *Table {
	t := &Table{
		ID:      "ablation-network",
		Title:   "Static injection caps vs explicit max-min fabric (Fig. 6 workload, N_B=24)",
		Columns: []string{"true_network", "dt_s", "factorA", "factorB"},
		Notes:   "both models must agree on the interference shape; fabric is ~2x slower to simulate",
	}
	for _, trueNet := range []bool{false, true} {
		sc := rennesSplitScenario(24, 16*MiB)
		sc.TrueNetwork = trueNet
		dts := []float64{-5, 0, 5, 10, 15}
		s := sc.Sweep(delta.Uncoordinated, dts)
		flag := 0.0
		if trueNet {
			flag = 1
		}
		for i := range dts {
			t.AddRow(flag, dts[i], s.FactorA[i], s.FactorB[i])
		}
	}
	return t
}
