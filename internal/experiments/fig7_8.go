package experiments

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/platform"
)

// surveyorContiguous builds the Surveyor scenario of Fig. 7: two equal
// applications writing 32 MB per process contiguously.
func surveyorContiguous(procs int) delta.Scenario {
	sc := SurveyorPlatform()
	w := ior.Workload{
		Pattern:       ior.Contiguous,
		BlockSize:     32 * MiB,
		BlocksPerProc: 1,
		ReqBytes:      4 * MiB, // 8 requests per process
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: procs, Nodes: nodesFor(procs, SurveyorCoresPerNode), W: w, Gran: ior.PerRound},
		{Name: "B", Procs: procs, Nodes: nodesFor(procs, SurveyorCoresPerNode), W: w, Gran: ior.PerRound},
	}
	return sc
}

// Fig7a reproduces Figure 7(a): 2x2048 cores on Surveyor, interfering vs
// FCFS-serialized. Serialization leaves the first application untouched and
// degrades only the second — better overall than mutual interference.
func Fig7a(points int) *Table {
	sc := surveyorContiguous(2048)
	dts := linspace(-15, 15, points)
	inter := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)

	t := &Table{
		ID:      "fig7a",
		Title:   "Surveyor 2x2048 procs, 32 MB/proc contiguous: interfering vs FCFS",
		Columns: []string{"dt_s", "tA_interfere", "tB_interfere", "tA_fcfs", "tB_fcfs"},
		Notes:   fmt.Sprintf("solo %.2fs; both apps saturate the FS so interference doubles times", inter.SoloA),
	}
	for i := range dts {
		t.AddRow(dts[i], inter.TimeA[i], inter.TimeB[i], fcfs.TimeA[i], fcfs.TimeB[i])
	}
	return t
}

// Fig7b reproduces Figure 7(b): the same experiment at 2x1024 cores. The
// smaller applications cannot saturate the file system alone, so measured
// interference is much lower than the proportional-sharing expectation and
// serializing is counterproductive for the second app.
func Fig7b(points int) *Table {
	sc := surveyorContiguous(1024)
	dts := linspace(-14, 14, points)
	inter := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)
	exp := sc.Expected(dts)

	t := &Table{
		ID:      "fig7b",
		Title:   "Surveyor 2x1024 procs, 32 MB/proc contiguous: interference below expectation",
		Columns: []string{"dt_s", "tA_interfere", "tB_interfere", "tA_fcfs", "tB_fcfs", "tA_expected", "tB_expected"},
		Notes: fmt.Sprintf("solo %.2fs; injection-limited apps leave headroom, so interfering beats FCFS for B",
			inter.SoloA),
	}
	for i := range dts {
		t.AddRow(dts[i], inter.TimeA[i], inter.TimeB[i], fcfs.TimeA[i], fcfs.TimeB[i], exp.TimeA[i], exp.TimeB[i])
	}
	return t
}

// surveyorStrided builds the Fig. 8 scenario: 2x2048 cores writing 16 MB per
// process in 16 blocks of 1 MB, strided, triggering collective buffering.
func surveyorStrided() delta.Scenario {
	sc := SurveyorPlatform()
	w := ior.Workload{
		Pattern:       ior.Strided,
		BlockSize:     1 * MiB,
		BlocksPerProc: 16,
		CB:            ior.CollectiveBuffering{BufBytes: 16 * MiB},
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: nodesFor(2048, SurveyorCoresPerNode), W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 2048, Nodes: nodesFor(2048, SurveyorCoresPerNode), W: w, Gran: ior.PerRound},
	}
	return sc
}

// Fig8a reproduces Figure 8(a): with collective buffering, the shuffle
// rounds are immune to file-system contention, so two interfering
// applications overlap their comm and write phases and finish *sooner* than
// the expected write-sharing model — and FCFS serialization penalizes the
// second application more than interference would.
func Fig8a(points int) *Table {
	sc := surveyorStrided()
	dts := linspace(-40, 40, points)
	inter := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)
	exp := sc.Expected(dts)

	t := &Table{
		ID:      "fig8a",
		Title:   "Surveyor 2x2048 strided 16x1MB (two-phase I/O): interfering vs FCFS vs expected",
		Columns: []string{"dt_s", "tA_interfere", "tB_interfere", "tA_fcfs", "tB_fcfs", "tA_expected", "tB_expected"},
		Notes:   fmt.Sprintf("solo %.2fs; comm rounds don't contend, so serialization overpenalizes", inter.SoloA),
	}
	for i := range dts {
		t.AddRow(dts[i], inter.TimeA[i], inter.TimeB[i], fcfs.TimeA[i], fcfs.TimeB[i], exp.TimeA[i], exp.TimeB[i])
	}
	return t
}

// Fig8b reproduces Figure 8(b): the decomposition of application A's phase
// into communication and write time, alone and under interference at dt=0
// and dt=10. Only the write phase suffers.
func Fig8b() *Table {
	sc := surveyorStrided()
	t := &Table{
		ID:      "fig8b",
		Title:   "Phases of collective buffering under interference (app A)",
		Columns: []string{"case_dt_s", "commA_s", "writeA_s", "totalA_s"},
		Notes:   "case_dt = -1 means no interference (A alone); comm is nearly unaffected",
	}
	// One pool: the solo spec and the two-app spec cache separate
	// platforms; the dt=0 and dt=10 cases re-run the cached two-app one.
	pool := platform.NewPool()

	// Alone.
	soloSc := sc
	soloSc.Apps = sc.Apps[:1]
	solo := soloSc.RunOn(pool, delta.Uncoordinated, []float64{0}, nil)
	ph := solo.Stats[0].Phases[0]
	t.AddRow(-1, ph.CommTime, ph.WriteTime, ph.IOTime())

	for _, dt := range []float64{0, 10} {
		res := sc.RunOn(pool, delta.Uncoordinated, []float64{0, dt}, nil)
		ph := res.Stats[0].Phases[0]
		t.AddRow(dt, ph.CommTime, ph.WriteTime, ph.IOTime())
	}
	return t
}
