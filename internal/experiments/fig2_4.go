package experiments

import (
	"fmt"

	"repro/internal/delta"
	"repro/internal/ior"
	"repro/internal/platform"
)

// fig2Scenario: Grid'5000 Nancy, PVFS on 35 nodes; two applications of 336
// processes each write 16 MB per process in a contiguous collective pattern.
func fig2Scenario() delta.Scenario {
	sc := NancyPlatform(false)
	w := ior.Workload{
		Pattern:       ior.Contiguous,
		BlockSize:     16 * MiB,
		BlocksPerProc: 1,
		ReqBytes:      2 * MiB, // 8 requests per process
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: w, Gran: ior.PerRound},
		{Name: "B", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: w, Gran: ior.PerRound},
	}
	return sc
}

// Fig2 reproduces Figure 2: the ∆-graph of two equal applications under
// pure interference, against the expected proportional-sharing model. The
// first arriver is favored but still degraded; the curve has the "∆" shape
// the graphs are named after.
func Fig2(points int) *Table {
	sc := fig2Scenario()
	dts := linspace(-12, 12, points)
	measured := sc.Sweep(delta.Uncoordinated, dts)
	expected := sc.Expected(dts)

	t := &Table{
		ID:      "fig2",
		Title:   "∆-graph: 2x336 procs, 16 MB/proc contiguous, PVFS on 35 servers (Nancy)",
		Columns: []string{"dt_s", "timeA_s", "timeB_s", "expectedA_s", "expectedB_s"},
		Notes: fmt.Sprintf("solo write time %.2fs; paper shows ~8.5s alone, ~17s at full overlap",
			measured.SoloA),
	}
	for i := range dts {
		t.AddRow(dts[i], measured.TimeA[i], measured.TimeB[i], expected.TimeA[i], expected.TimeB[i])
	}
	return t
}

// Fig3 reproduces Figure 3: two IOR instances writing periodically (every
// 10 s and every 7 s) against cache-enabled storage servers. When write
// bursts overlap, neither application benefits from the cache and observed
// throughput collapses toward raw disk speed.
func Fig3(iterations int) *Table {
	sc := NancyPlatform(true)
	mkApp := func(name string, period float64, phases int) delta.AppSpec {
		return delta.AppSpec{
			Name:  name,
			Procs: 336,
			Nodes: nodesFor(336, NancyCoresPerNode),
			W: ior.Workload{
				Pattern:       ior.Contiguous,
				BlockSize:     4 * MiB,
				BlocksPerProc: 1,
				Phases:        phases,
				ComputeTime:   period,
			},
			Gran: ior.PerPhase,
		}
	}
	sc.Apps = []delta.AppSpec{
		mkApp("ten", 10, iterations),
		mkApp("seven", 7, iterations+iterations/2),
	}

	// One pool serves both the solo calibration and the interfered run —
	// distinct specs, so each keeps its own cached platform and stats.
	pool := platform.NewPool()

	// Solo run of the 10-second writer.
	soloSc := sc
	soloSc.Apps = sc.Apps[:1]
	solo := soloSc.RunOn(pool, delta.Uncoordinated, []float64{0}, nil)

	// Interfered run: both instances.
	both := sc.RunOn(pool, delta.Uncoordinated, []float64{0, 0}, nil)

	t := &Table{
		ID:      "fig3",
		Title:   "Periodic writers vs storage cache: observed throughput of the 10s-period instance",
		Columns: []string{"iteration", "alone_MiBps", "interfered_MiBps"},
		Notes: "cache absorbs isolated bursts at cache speed; overlapping bursts overflow\n" +
			"the cache and collapse to (shared) disk speed — the paper's Fig. 3 cliff",
	}
	aloneStats := solo.Stats[0].Phases
	bothStats := both.Stats[0].Phases
	for i := 0; i < iterations && i < len(aloneStats) && i < len(bothStats); i++ {
		t.AddRow(float64(i+1),
			aloneStats[i].Throughput()/float64(MiB),
			bothStats[i].Throughput()/float64(MiB))
	}
	return t
}

// Fig4 reproduces Figure 4: application A on 336 cores and application B of
// varying size start writing at the same time; the small application's
// throughput collapses (a 6x decrease at 8 cores in the paper) because
// servers share bandwidth proportionally to request pressure.
func Fig4() *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Aggregate throughput when B (varying size) interferes with A (336 procs)",
		Columns: []string{"coresB", "thrB_alone_MiBps", "thrB_MiBps", "slowdownB", "thrA_MiBps", "aggregate_MiBps"},
		Notes:   "paper: B on 8 cores sees ~6x lower throughput than alone; each process writes 16 MB",
	}
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 16 * MiB, BlocksPerProc: 1, ReqBytes: 4 * MiB}
	pool := platform.NewPool() // shared engine across every size split
	for _, nb := range []int{8, 16, 32, 64, 128, 192, 336} {
		sc := NancyPlatform(false)
		sc.Apps = []delta.AppSpec{
			{Name: "A", Procs: 336, Nodes: nodesFor(336, NancyCoresPerNode), W: w, Gran: ior.PerRound},
			{Name: "B", Procs: nb, Nodes: nodesFor(nb, NancyCoresPerNode), W: w, Gran: ior.PerRound},
		}
		soloB := sc.SoloOn(pool, 1)
		res := sc.RunOn(pool, delta.Uncoordinated, []float64{0, 0}, nil)
		bytesA := float64(w.PhaseBytes(336))
		bytesB := float64(w.PhaseBytes(nb))
		thrBalone := bytesB / soloB / float64(MiB)
		thrB := bytesB / res.IOTime[1] / float64(MiB)
		thrA := bytesA / res.IOTime[0] / float64(MiB)
		agg := (bytesA + bytesB) / res.Makespan / float64(MiB)
		t.AddRow(float64(nb), thrBalone, thrB, thrBalone/thrB, thrA, agg)
	}
	return t
}
