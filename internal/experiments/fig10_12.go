package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/ior"
)

// fig10Scenario: Surveyor, 2x2048 cores; A writes 4 files of 4 MB per
// process (contiguous), B writes one such file. Requests of 1 MB per process
// give round-level interruption its granularity.
func fig10Scenario(granA ior.Granularity) delta.Scenario {
	sc := SurveyorPlatform()
	mk := func(files int) ior.Workload {
		return ior.Workload{
			Pattern:       ior.Contiguous,
			BlockSize:     4 * MiB,
			BlocksPerProc: 1,
			Files:         files,
			ReqBytes:      1 * MiB,
		}
	}
	sc.Apps = []delta.AppSpec{
		{Name: "A", Procs: 2048, Nodes: nodesFor(2048, SurveyorCoresPerNode), W: mk(4), Gran: granA},
		{Name: "B", Procs: 2048, Nodes: nodesFor(2048, SurveyorCoresPerNode), W: mk(1), Gran: ior.PerRound},
	}
	return sc
}

// Fig10 reproduces Figure 10: interruption granularity. With coordination
// points only between files, A can only pause at file boundaries, producing
// the paper's "saw" pattern in B's time; with round-level (ADIO) placement,
// A pauses almost immediately and B is barely impacted.
func Fig10(points int) *Table {
	dts := linspace(-10, 30, points)

	interfere := fig10Scenario(ior.PerRound).Sweep(delta.Uncoordinated, dts)
	fcfs := fig10Scenario(ior.PerRound).Sweep(delta.FCFS, dts)
	fileIRQ := fig10Scenario(ior.PerFile).Sweep(delta.Interrupt, dts)
	roundIRQ := fig10Scenario(ior.PerRound).Sweep(delta.Interrupt, dts)

	t := &Table{
		ID:    "fig10",
		Title: "Surveyor 2x2048: A writes 4 files x 4MB/proc, B writes 1; interruption granularity",
		Columns: []string{"dt_s",
			"tA_interfere", "tB_interfere",
			"tA_fcfs", "tB_fcfs",
			"tA_fileIRQ", "tB_fileIRQ",
			"tA_roundIRQ", "tB_roundIRQ"},
		Notes: fmt.Sprintf("soloA %.2fs soloB %.2fs; file-level interruption saws, round-level is flat",
			interfere.SoloA, interfere.SoloB),
	}
	for i := range dts {
		t.AddRow(dts[i],
			interfere.TimeA[i], interfere.TimeB[i],
			fcfs.TimeA[i], fcfs.TimeB[i],
			fileIRQ.TimeA[i], fileIRQ.TimeB[i],
			roundIRQ.TimeA[i], roundIRQ.TimeB[i])
	}
	return t
}

// Fig11 reproduces Figure 11: the machine-wide metric f = Σ N_X·T_X
// (CPU seconds per core wasted in I/O) with plain interference vs CALCioM
// dynamically choosing between FCFS and interruption (§IV-D: interrupt A
// iff dt < T_A(alone) − T_B(alone)).
func Fig11(points int) *Table {
	dts := linspace(-10, 30, points)
	interfere := fig10Scenario(ior.PerRound).Sweep(delta.Uncoordinated, dts)
	dyn := fig10Scenario(ior.PerRound).Sweep(delta.Dynamic(core.CPUSecondsWasted{}, false), dts)

	t := &Table{
		ID:      "fig11",
		Title:   "CPU seconds per core wasted in I/O: without CALCioM vs CALCioM dynamic",
		Columns: []string{"dt_s", "percore_interfere_s", "percore_calciom_s"},
		Notes: "paper Fig. 11: the dynamic choice always improves the specified metric;\n" +
			"decision threshold at dt = T_A(alone) - T_B(alone)",
	}
	for i := range dts {
		t.AddRow(dts[i], interfere.CPUPerCore[i], dyn.CPUPerCore[i])
	}
	return t
}

// Fig12 reproduces Figure 12: at 2x1024 cores the observed interference is
// low (Fig. 7b), so FCFS serialization is a bad choice; delaying the second
// application for a partial overlap is the better tradeoff.
func Fig12(points int) *Table {
	dts := linspace(-14, 14, points)
	sc := surveyorContiguous(1024)
	inter := sc.Sweep(delta.Uncoordinated, dts)
	fcfs := sc.Sweep(delta.FCFS, dts)
	delayed := sc.Sweep(delta.Delay(0.5), dts)

	t := &Table{
		ID:    "fig12",
		Title: "Surveyor 2x1024, 32 MB/proc: interfering vs FCFS vs delayed overlap",
		Columns: []string{"dt_s",
			"tA_interfere", "tB_interfere",
			"tA_fcfs", "tB_fcfs",
			"tA_delay", "tB_delay",
			"sum_interfere", "sum_fcfs", "sum_delay"},
		Notes: "low observed interference: serializing wastes time; a bounded delay does better",
	}
	for i := range dts {
		t.AddRow(dts[i],
			inter.TimeA[i], inter.TimeB[i],
			fcfs.TimeA[i], fcfs.TimeB[i],
			delayed.TimeA[i], delayed.TimeB[i],
			inter.TimeA[i]+inter.TimeB[i],
			fcfs.TimeA[i]+fcfs.TimeB[i],
			delayed.TimeA[i]+delayed.TimeB[i])
	}
	return t
}
