// Package experiments reproduces every table and figure of the paper's
// evaluation. Each Fig* function runs the corresponding experiment on a
// simulated platform and returns a Table with the same rows/series the paper
// reports. Platform constants live here, in one place, and are calibrated to
// the paper's *shapes* (who wins, by what factor, where crossovers sit) —
// see DESIGN.md §5 and EXPERIMENTS.md for paper-vs-measured notes.
package experiments

import (
	"repro/internal/delta"
	"repro/internal/pfs"
)

// Byte-size constants.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// RennesPlatform models the Grid'5000 Rennes deployment of the paper
// (Figs. 6 and 9): OrangeFS on 12 nodes of parapide with local-disk ext3
// backends and caching disabled; clients on parapluie (24 cores/node) over
// InfiniBand. 768 client cores total.
//
// Calibration: 12 servers x 60 MiB/s = 720 MiB/s aggregate; 12.5 MiB/s
// injection per core means ~58 cores saturate the file system, so a 24-core
// app reaches only ~300 MiB/s alone, and its proportional share in
// contention with a 744-core app is 720*24/768 = 22.5 MiB/s — a x13
// interference factor matching the paper's "up to 14".
func RennesPlatform() delta.Scenario {
	return delta.Scenario{
		Name: "grid5000-rennes",
		FS: pfs.Config{
			Servers:     12,
			StripeBytes: 64 * KiB,
			ServerBW:    60 * float64(MiB),
			Policy:      pfs.Share,
		},
		ProcNIC:       12.5 * float64(MiB),
		CommBWPerProc: 30 * float64(MiB),
		CommAlpha:     5e-6,
		CoordLatency:  1e-3,
	}
}

// RennesCoresPerNode is the parapluie node width used for aggregator counts.
const RennesCoresPerNode = 24

// NancyPlatform models the Grid'5000 Nancy deployment (Figs. 2, 3, 4):
// PVFS on 35 nodes across InfiniBand. For Fig. 3 the storage backend enables
// the kernel page cache; Figs. 2 and 4 disable it.
func NancyPlatform(cache bool) delta.Scenario {
	cfg := pfs.Config{
		Servers:     35,
		StripeBytes: 64 * KiB,
		ServerBW:    18 * float64(MiB),
		Policy:      pfs.Share,
	}
	if cache {
		// Kernel page cache: ~3x ingest speed, 40 MiB dirty limit per
		// server (1.4 GiB machine-wide).
		cfg.CacheBW = 54 * float64(MiB)
		cfg.CacheBytes = 40 * float64(MiB)
	}
	return delta.Scenario{
		Name:          "grid5000-nancy",
		FS:            cfg,
		ProcNIC:       12.5 * float64(MiB),
		CommBWPerProc: 30 * float64(MiB),
		CommAlpha:     5e-6,
		CoordLatency:  1e-3,
	}
}

// NancyCoresPerNode is the node width at the Nancy site (8 cores/node at the
// time of the paper's experiments).
const NancyCoresPerNode = 8

// SurveyorPlatform models Argonne's BG/P Surveyor (Figs. 7, 8, 10, 11, 12):
// one rack of Intrepid with a 4-server PVFS2 file system.
//
// Calibration: 4 servers x 1 GiB/s = 4 GiB/s aggregate; 3 MiB/s injection
// per core means 2048-core apps saturate the file system (Fig. 7a) while
// 1024-core apps are injection-limited to 3 GiB/s, so two of them demand
// 6 GiB/s against 4 GiB/s capacity and interfere *less* than a proportional
// split predicts (Fig. 7b). The slow per-core collective bandwidth makes
// two-phase I/O's shuffle a large fraction of strided writes (Fig. 8b).
func SurveyorPlatform() delta.Scenario {
	return delta.Scenario{
		Name: "surveyor",
		FS: pfs.Config{
			Servers:     4,
			StripeBytes: 1 * MiB,
			ServerBW:    1 * float64(GiB),
			Policy:      pfs.Share,
		},
		ProcNIC:       3 * float64(MiB),
		CommBWPerProc: 1.5 * float64(MiB),
		CommAlpha:     2e-6,
		CoordLatency:  1e-3,
	}
}

// SurveyorCoresPerNode is the BG/P node width.
const SurveyorCoresPerNode = 4

// nodesFor returns the node count for a job of procs cores at the given
// node width, at least 1.
func nodesFor(procs, coresPerNode int) int {
	n := procs / coresPerNode
	if n < 1 {
		n = 1
	}
	return n
}

// linspace returns n evenly spaced values over [lo, hi].
func linspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
