package experiments

import (
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/machine"
	"repro/internal/swf"
)

// MachineStudy extends the paper's pairwise evaluation to machine scale
// (its stated generalization: the strategies "naturally extend to more than
// two applications"): one day of an Intrepid-like job trace replayed
// against a shared file system under heavy periodic I/O, comparing the
// uncoordinated baseline with the static policies and CALCioM's dynamic
// selection.
//
// Policy codes: 0=uncoordinated, 1=FCFS, 2=interrupt,
// 3=dynamic(cpu-seconds), 4=dynamic(sum-interference).
func MachineStudy(jobs int) *Table {
	tr := swf.Generate(swf.GenConfig{Seed: 42, Days: 1})
	cfg := machine.IntrepidConfig()
	cfg.FS.Servers = 32 // a storage system undersized for the I/O burst rate
	cfg.BytesPerCore = 8 * MiB
	cfg.PhasePeriod = 300
	cfg.MaxJobs = jobs

	model := &core.PerfModel{
		FSBandwidth: float64(cfg.FS.Servers) * cfg.FS.ServerBW,
		ProcNIC:     cfg.ProcNIC,
	}
	policies := []struct {
		code    float64
		factory delta.PolicyFactory
	}{
		{0, delta.Uncoordinated},
		{1, delta.FCFS},
		{2, delta.Interrupt},
		{3, delta.Dynamic(core.CPUSecondsWasted{}, true)},
		{4, delta.Dynamic(core.SumInterferenceFactors{Model: model}, true)},
	}

	t := &Table{
		ID:    "machine-study",
		Title: "Trace-driven machine study: one day of Intrepid-like jobs on a shared FS",
		Columns: []string{"policy", "jobs", "overhead_pct", "mean_factor",
			"p95_factor", "max_factor", "wasted_Mcore_s", "decisions"},
		Notes: "policy: 0=uncoordinated 1=fcfs 2=interrupt 3=dynamic(cpu-s) 4=dynamic(sumI);\n" +
			"overhead = CPU-seconds wasted in I/O beyond the interference-free bound",
	}
	for _, p := range policies {
		res := machine.Run(cfg, tr, p.factory)
		t.AddRow(p.code, float64(res.JobsSimulated), 100*res.Overhead(),
			res.MeanFactor, res.P95Factor, res.MaxFactor,
			res.CPUSecWasted/1e6, float64(res.Decisions))
	}
	return t
}
