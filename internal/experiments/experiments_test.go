package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The tests in this file assert the paper's qualitative claims — the
// "shape" of every figure — on reduced point counts for speed. EXPERIMENTS.md
// records the full-resolution numbers.

var testTrace = TraceConfig{Seed: 20090101, Days: 40}

func colMax(t *Table, col string) float64 {
	m := math.Inf(-1)
	for _, v := range t.Column(col) {
		if v > m {
			m = v
		}
	}
	return m
}

func colMin(t *Table, col string) float64 {
	m := math.Inf(1)
	for _, v := range t.Column(col) {
		if v < m {
			m = v
		}
	}
	return m
}

func TestFig1aHalfJobsSmall(t *testing.T) {
	tbl := Fig1a(testTrace)
	// Paper: ~50% of jobs at <= 2048 cores, in both counts and time.
	var cdf2048, tcdf2048 float64
	cores := tbl.Column("cores")
	cdf := tbl.Column("cdf_pct")
	tcdf := tbl.Column("time_cdf_pct")
	for i, c := range cores {
		if c == 2048 {
			cdf2048, tcdf2048 = cdf[i], tcdf[i]
		}
	}
	if cdf2048 < 40 || cdf2048 > 65 {
		t.Fatalf("CDF at 2048 cores = %.1f%%, want ~50%%", cdf2048)
	}
	if tcdf2048 < 30 || tcdf2048 > 70 {
		t.Fatalf("time-weighted CDF at 2048 = %.1f%%, want ~50%%", tcdf2048)
	}
	// CDF must be monotone and end at 100.
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1]-1e-9 {
			t.Fatal("CDF not monotone")
		}
	}
	if math.Abs(cdf[len(cdf)-1]-100) > 1e-6 {
		t.Fatalf("CDF endpoint = %v", cdf[len(cdf)-1])
	}
}

func TestFig1bConcurrencyMass(t *testing.T) {
	tbl := Fig1b(testTrace)
	ks := tbl.Column("concurrent_jobs")
	ps := tbl.Column("proportion_of_time")
	var total, mass4to60 float64
	for i := range ks {
		total += ps[i]
		if ks[i] >= 4 && ks[i] <= 60 {
			mass4to60 += ps[i]
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("proportions sum to %v", total)
	}
	// Paper's Fig 1b: virtually all the mass between 4 and 60.
	if mass4to60 < 0.85 {
		t.Fatalf("mass in [4,60] = %v, want >= 0.85", mass4to60)
	}
}

func TestProbIOMatchesPaperRegime(t *testing.T) {
	tbl := ProbIO(testTrace)
	mus := tbl.Column("mu_pct")
	ps := tbl.Column("prob_pct")
	for i, mu := range mus {
		if mu == 5 {
			// Paper: 64% on the Intrepid trace. Accept the regime.
			if ps[i] < 25 || ps[i] > 90 {
				t.Fatalf("P at mu=5%% is %.1f%%, out of regime", ps[i])
			}
		}
	}
	// Monotone in mu.
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("P should grow with mu")
		}
	}
}

func TestFig2DeltaShape(t *testing.T) {
	tbl := Fig2(13)
	dt := tbl.Column("dt_s")
	ta := tbl.Column("timeA_s")
	tb := tbl.Column("timeB_s")
	ea := tbl.Column("expectedA_s")
	// Peak at dt=0, decaying to solo on both sides.
	var peakA, soloA float64
	for i := range dt {
		if dt[i] == 0 {
			peakA = ta[i]
		}
	}
	soloA = ta[0] // dt = -12: no overlap
	if peakA < 1.8*soloA || peakA > 2.2*soloA {
		t.Fatalf("peak/solo = %v, want ~2 (paper: 8.5s -> 17s)", peakA/soloA)
	}
	// Measured within 10% of the expected model (equal apps saturate).
	for i := range dt {
		if math.Abs(ta[i]-ea[i]) > 0.1*ea[i] {
			t.Fatalf("dt=%v: measured %v vs expected %v", dt[i], ta[i], ea[i])
		}
	}
	// Symmetry of the two instances.
	for i := range dt {
		if math.Abs(ta[i]-tb[i]) > 0.05*ta[i] {
			t.Fatalf("dt=%v: A %v and B %v should be symmetric", dt[i], ta[i], tb[i])
		}
	}
}

func TestFig3CacheCollapse(t *testing.T) {
	tbl := Fig3(10)
	alone := tbl.Column("alone_MiBps")
	shared := tbl.Column("interfered_MiBps")
	// Solo iterations all enjoy the cache.
	aloneMin := math.Inf(1)
	for _, v := range alone {
		if v < aloneMin {
			aloneMin = v
		}
	}
	if aloneMin < 1500 {
		t.Fatalf("solo throughput dipped to %v MiB/s; cache should absorb", aloneMin)
	}
	// At least one interfered iteration collapses below half the cache speed.
	sharedMin := math.Inf(1)
	for _, v := range shared {
		if v < sharedMin {
			sharedMin = v
		}
	}
	if sharedMin > aloneMin/2 {
		t.Fatalf("no cache collapse: min interfered %v vs alone %v", sharedMin, aloneMin)
	}
}

func TestFig4SmallAppCrushed(t *testing.T) {
	tbl := Fig4()
	cores := tbl.Column("coresB")
	slow := tbl.Column("slowdownB")
	for i := range cores {
		if cores[i] == 8 {
			// Paper: ~6x decrease for the 8-core app.
			if slow[i] < 4 || slow[i] > 10 {
				t.Fatalf("slowdown at 8 cores = %v, want ~6", slow[i])
			}
		}
		if cores[i] == 336 {
			// Equal apps: factor ~2.
			if slow[i] < 1.8 || slow[i] > 2.2 {
				t.Fatalf("slowdown at 336 cores = %v, want ~2", slow[i])
			}
		}
	}
}

func TestFig6SmallAppWorstCase(t *testing.T) {
	tbl := Fig6(11)
	cores := tbl.Column("coresB")
	fb := tbl.Column("factorB")
	fa := tbl.Column("factorA")
	maxB24, maxB384 := 0.0, 0.0
	maxA := 0.0
	for i := range cores {
		if cores[i] == 24 && fb[i] > maxB24 {
			maxB24 = fb[i]
		}
		if cores[i] == 384 && fb[i] > maxB384 {
			maxB384 = fb[i]
		}
		if fa[i] > maxA {
			maxA = fa[i]
		}
	}
	// Paper: factor up to ~14 for the 24-core app; we accept the same order
	// of magnitude (>6), and ~2 for the even split.
	if maxB24 < 6 {
		t.Fatalf("24-core worst factor %v, want > 6 (paper ~14)", maxB24)
	}
	if maxB384 < 1.7 || maxB384 > 2.3 {
		t.Fatalf("384-core worst factor %v, want ~2", maxB384)
	}
	// The big app is barely touched.
	if maxA > 2.1 {
		t.Fatalf("big-app factor %v, too high", maxA)
	}
	// Monotonicity: smaller B suffers more.
	if maxB24 <= maxB384 {
		t.Fatal("smaller app should suffer more")
	}
}

func TestFig7aFCFSProtectsFirst(t *testing.T) {
	tbl := Fig7a(13)
	dt := tbl.Column("dt_s")
	taInt := tbl.Column("tA_interfere")
	taF := tbl.Column("tA_fcfs")
	tbF := tbl.Column("tB_fcfs")
	for i := range dt {
		if dt[i] >= 0 && dt[i] <= 10 {
			// A arrived first: FCFS leaves it at solo speed while
			// interference slows it down.
			if taF[i] > taInt[i]-1 {
				t.Fatalf("dt=%v: FCFS A %v should beat interference %v", dt[i], taF[i], taInt[i])
			}
			// And B pays: roughly solo + A's remaining time.
			if tbF[i] < taF[i] {
				t.Fatalf("dt=%v: FCFS B %v should exceed A %v", dt[i], tbF[i], taF[i])
			}
		}
	}
}

func TestFig7bInterferenceBelowExpected(t *testing.T) {
	tbl := Fig7b(13)
	dt := tbl.Column("dt_s")
	ta := tbl.Column("tA_interfere")
	ea := tbl.Column("tA_expected")
	solo := ta[0]
	for i := range dt {
		if dt[i] == 0 {
			// Measured peak well below the expected 2x solo.
			if ta[i] > 0.85*ea[i] {
				t.Fatalf("peak %v not clearly below expected %v", ta[i], ea[i])
			}
			if ta[i]/solo > 1.7 {
				t.Fatalf("interference factor %v, want < 1.7 (injection-limited)", ta[i]/solo)
			}
		}
	}
}

func TestFig8aSerializationWorseThanInterference(t *testing.T) {
	tbl := Fig8a(17)
	dt := tbl.Column("dt_s")
	tbInt := tbl.Column("tB_interfere")
	tbF := tbl.Column("tB_fcfs")
	found := false
	for i := range dt {
		if dt[i] >= 0 && dt[i] <= 10 {
			found = true
			// The second app under FCFS pays more than under interference.
			if tbF[i] < tbInt[i] {
				t.Fatalf("dt=%v: FCFS B %v should exceed interfering B %v", dt[i], tbF[i], tbInt[i])
			}
		}
	}
	if !found {
		t.Fatal("no dt in window")
	}
}

func TestFig8bCommPhaseImmune(t *testing.T) {
	tbl := Fig8b()
	comm := tbl.Column("commA_s")
	write := tbl.Column("writeA_s")
	// Row 0: alone; row 1: dt=0. Comm unchanged, write roughly doubled.
	if math.Abs(comm[1]-comm[0]) > 0.05*comm[0] {
		t.Fatalf("comm changed under interference: %v -> %v", comm[0], comm[1])
	}
	if write[1] < 1.7*write[0] {
		t.Fatalf("write should roughly double: %v -> %v", write[0], write[1])
	}
}

func TestFig9PolicyDuality(t *testing.T) {
	tbl := Fig9(21)
	rows := tbl.Rows
	idx := map[string]int{}
	for i, c := range tbl.Columns {
		idx[c] = i
	}
	var worstBfcfs, worstBirq, worstAirqEq float64
	for _, r := range rows {
		if r[idx["coresB"]] == 24 && r[idx["dt_s"]] >= 0 {
			if v := r[idx["fB_fcfs"]]; v > worstBfcfs {
				worstBfcfs = v
			}
			if v := r[idx["fB_interrupt"]]; v > worstBirq {
				worstBirq = v
			}
		}
		if r[idx["coresB"]] == 384 {
			if v := r[idx["fA_interrupt"]]; v > worstAirqEq {
				worstAirqEq = v
			}
		}
	}
	// FCFS is terrible for the small app; interruption protects it.
	if worstBfcfs < 5 {
		t.Fatalf("FCFS worst B factor %v, want large", worstBfcfs)
	}
	if worstBirq > worstBfcfs/2 {
		t.Fatalf("interrupt worst B %v should be far below FCFS %v", worstBirq, worstBfcfs)
	}
	// Interruption hurts an equal-size first app (factor ~2).
	if worstAirqEq < 1.7 {
		t.Fatalf("equal-size interrupted A factor %v, want ~2", worstAirqEq)
	}
}

func TestFig9InterruptNegligibleCostForBig(t *testing.T) {
	// The paper's headline: preventing the 14x slowdown costs the big app
	// almost nothing.
	tbl := Fig9(21)
	idx := map[string]int{}
	for i, c := range tbl.Columns {
		idx[c] = i
	}
	for _, r := range tbl.Rows {
		if r[idx["coresB"]] == 24 {
			if f := r[idx["fA_interrupt"]]; f > 1.3 {
				t.Fatalf("big app interrupted by tiny app pays %v, want < 1.3", f)
			}
		}
	}
}

func TestFig10SawPattern(t *testing.T) {
	tbl := Fig10(41)
	dt := tbl.Column("dt_s")
	tbFile := tbl.Column("tB_fileIRQ")
	tbRound := tbl.Column("tB_roundIRQ")
	soloB := colMin(tbl, "tB_interfere")

	// Round-level interruption keeps B at essentially solo time for dt >= 0.
	// (The paper's interruption curves start at dt = 0: with dt < 0 there is
	// nobody to interrupt — and a newest-arrival policy would let the big
	// app preempt the small one.)
	for i := range dt {
		if dt[i] >= 0 && tbRound[i] > 1.25*soloB {
			t.Fatalf("dt=%v: round-level B %v, want ~solo %v", dt[i], tbRound[i], soloB)
		}
	}
	// File-level shows a saw: B sometimes waits up to a whole file.
	maxFile := 0.0
	for i := range dt {
		if dt[i] > 0 && dt[i] < 8 && tbFile[i] > maxFile {
			maxFile = tbFile[i]
		}
	}
	if maxFile < 1.3*soloB {
		t.Fatalf("file-level max B %v shows no saw (solo %v)", maxFile, soloB)
	}
	// And the saw tops below FCFS's worst case.
	maxFCFS := colMax(tbl, "tB_fcfs")
	if maxFile > maxFCFS+1e-9 {
		t.Fatalf("file-level %v exceeds FCFS %v", maxFile, maxFCFS)
	}
}

func TestFig11DynamicImprovesMetric(t *testing.T) {
	tbl := Fig11(21)
	dt := tbl.Column("dt_s")
	base := tbl.Column("percore_interfere_s")
	dyn := tbl.Column("percore_calciom_s")
	improvedSomewhere := false
	for i := range dt {
		// CALCioM never degrades the metric beyond coordination noise.
		if dyn[i] > base[i]+0.1 {
			t.Fatalf("dt=%v: CALCioM %v worse than interference %v", dt[i], dyn[i], base[i])
		}
		if dyn[i] < base[i]-0.5 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Fatal("dynamic choice never improved the metric")
	}
}

func TestFig12DelayTradeoff(t *testing.T) {
	tbl := Fig12(15)
	dt := tbl.Column("dt_s")
	tbF := tbl.Column("tB_fcfs")
	tbD := tbl.Column("tB_delay")
	taI := tbl.Column("tA_interfere")
	taD := tbl.Column("tA_delay")
	for i := range dt {
		if dt[i] == 0 {
			// Delay beats FCFS for the delayed app...
			if tbD[i] >= tbF[i] {
				t.Fatalf("delay B %v should beat FCFS B %v", tbD[i], tbF[i])
			}
			// ...and beats pure interference for the first app.
			if taD[i] >= taI[i] {
				t.Fatalf("delay A %v should beat interference A %v", taD[i], taI[i])
			}
		}
	}
}

func TestAblationGranularityMonotone(t *testing.T) {
	tbl := AblationGranularity()
	tb := tbl.Column("timeB_s")
	// Finer granularity: B's time should not increase.
	if !(tb[2] <= tb[1]+1e-6 && tb[1] <= tb[0]+1e-6) {
		t.Fatalf("B times %v not monotone with granularity", tb)
	}
}

func TestAblationLatency(t *testing.T) {
	tbl := AblationMessageLatency()
	dynCosts := tbl.Column("percore_calciom_s")
	base := tbl.Column("percore_interfere_s")[0]
	// At microsecond latency coordination clearly wins.
	if dynCosts[0] >= base {
		t.Fatalf("low-latency coordination %v should beat interference %v", dynCosts[0], base)
	}
}

func TestAblationServerScheduler(t *testing.T) {
	tbl := AblationServerScheduler()
	ta := tbl.Column("timeA_s")
	// CALCioM FCFS (mode 3) protects A at least as well as any server-side
	// policy (modes 0-2).
	for i := 0; i < 3; i++ {
		if ta[3] > ta[i]+0.2 {
			t.Fatalf("CALCioM A %v worse than server mode %d A %v", ta[3], i, ta[i])
		}
	}
}

func TestAblationCollectiveBuffer(t *testing.T) {
	tbl := AblationCollectiveBuffer()
	rounds := tbl.Column("rounds")
	tb := tbl.Column("timeB_s")
	// More rounds (smaller buffers) must not worsen the interrupted app B.
	for i := 1; i < len(rounds); i++ {
		if rounds[i] >= rounds[i-1] {
			t.Fatal("rounds should decrease with buffer size")
		}
	}
	if tb[0] > tb[len(tb)-1]+1e-6 {
		t.Fatalf("finest-grained B %v should beat coarsest %v", tb[0], tb[len(tb)-1])
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("registry run is slow")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if ByID(e.ID) == nil {
			t.Fatalf("ByID(%s) returned nil", e.ID)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("ByID should return nil for unknown")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}, Notes: "note"}
	tbl.AddRow(1, 2.5)
	tbl.AddRow(1000000, math.NaN())
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x — T ==", "# note", "a", "b", "2.5", "nan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Fatalf("csv header missing: %s", buf.String())
	}
	if tbl.String() == "" {
		t.Fatal("String empty")
	}
}

func TestTableColumnPanics(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown column")
		}
	}()
	tbl.Column("zzz")
}

func TestTableAddRowValidates(t *testing.T) {
	tbl := &Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong row width")
		}
	}()
	tbl.AddRow(1)
}

func TestMachineStudyPolicies(t *testing.T) {
	tbl := MachineStudy(60)
	over := tbl.Column("overhead_pct")
	mean := tbl.Column("mean_factor")
	// Row order: uncoordinated, fcfs, interrupt, dynamic(cpu), dynamic(sumI).
	if over[0] < 20 {
		t.Fatalf("uncoordinated overhead %v%%, want heavy regime", over[0])
	}
	if over[1] >= over[0] {
		t.Fatalf("FCFS overhead %v should beat uncoordinated %v", over[1], over[0])
	}
	if over[3] >= over[0] {
		t.Fatalf("dynamic overhead %v should beat uncoordinated %v", over[3], over[0])
	}
	// The sum-interference dynamic should deliver the best mean factor.
	best := mean[0]
	for _, m := range mean {
		if m < best {
			best = m
		}
	}
	if mean[4] > best*1.2 {
		t.Fatalf("dynamic(sumI) mean factor %v far from best %v", mean[4], best)
	}
	dec := tbl.Column("decisions")
	if dec[0] != 0 || dec[1] == 0 {
		t.Fatalf("decision counts wrong: %v", dec)
	}
}

func TestExtensionAdaptiveHelps(t *testing.T) {
	tbl := ExtensionAdaptive()
	sums := tbl.Column("sum_factors")
	if sums[1] >= sums[0] {
		t.Fatalf("adaptation should reduce interference: %v -> %v", sums[0], sums[1])
	}
	mk := tbl.Column("makespan_s")
	if mk[1] >= mk[0] {
		t.Fatalf("adaptation should shorten the makespan: %v -> %v", mk[0], mk[1])
	}
}

func TestAblationNetworkModelsAgree(t *testing.T) {
	tbl := AblationNetworkModel()
	idx := map[string]int{}
	for i, c := range tbl.Columns {
		idx[c] = i
	}
	// For each dt, the two models' factorB must agree within 10%.
	byDT := map[float64][2]float64{}
	for _, r := range tbl.Rows {
		e := byDT[r[idx["dt_s"]]]
		if r[idx["true_network"]] == 0 {
			e[0] = r[idx["factorB"]]
		} else {
			e[1] = r[idx["factorB"]]
		}
		byDT[r[idx["dt_s"]]] = e
	}
	for dt, pair := range byDT {
		if pair[0] == 0 || pair[1] == 0 {
			t.Fatalf("dt=%v missing a model", dt)
		}
		if math.Abs(pair[0]-pair[1]) > 0.1*pair[0] {
			t.Fatalf("dt=%v: models disagree: %v vs %v", dt, pair[0], pair[1])
		}
	}
}

func TestExtensionReadWrite(t *testing.T) {
	tbl := ExtensionReadWrite(7)
	dt := tbl.Column("dt_s")
	tw := tbl.Column("tWriter_interfere")
	trd := tbl.Column("tReader_interfere")
	twF := tbl.Column("tWriter_fcfs")
	trF := tbl.Column("tReader_fcfs")
	for i := range dt {
		if dt[i] == 0 {
			// Full overlap: both roughly double.
			if tw[i] < 1.8*tw[0] || trd[i] < 1.8*trd[0] {
				t.Fatalf("read/write interference too weak: %v %v (solo %v)", tw[i], trd[i], tw[0])
			}
			// FCFS serializes: whoever wins the arrival tie stays at solo
			// speed, the other pays roughly double.
			first, second := twF[i], trF[i]
			if first > second {
				first, second = second, first
			}
			if first > 1.1*tw[0] {
				t.Fatalf("FCFS first app %v should stay near solo %v", first, tw[0])
			}
			if second < 1.8*tw[0] {
				t.Fatalf("FCFS second app %v should pay ~2x solo %v", second, tw[0])
			}
		}
	}
}

func TestExtensionDiversity(t *testing.T) {
	tbl := ExtensionDiversity()
	fNAMD := tbl.Column("factorNAMD")
	fCM1 := tbl.Column("factorCM1")
	// Row order: uncoordinated, fcfs, dynamic(sumI).
	// FCFS is disastrous for the trickle writer...
	if fNAMD[1] < 10 {
		t.Fatalf("FCFS should crush the trickler: factor %v", fNAMD[1])
	}
	// ...dynamic keeps it an order of magnitude safer...
	if fNAMD[2] > fNAMD[1]/5 {
		t.Fatalf("dynamic %v should be far below FCFS %v", fNAMD[2], fNAMD[1])
	}
	// ...and the burst writer is never really hurt.
	for i, f := range fCM1 {
		if f > 1.2 {
			t.Fatalf("row %d: CM1 factor %v, want ~1", i, f)
		}
	}
}

func TestExtensionFairShare(t *testing.T) {
	tbl := ExtensionFairShare()
	percore := tbl.Column("percore_s")
	// Row order: uncoordinated, fairshare, fcfs, dynamic.
	// The paper's argument: fair sharing slows everyone down — worse than
	// plain interference on the machine-wide metric.
	if percore[1] <= percore[0] {
		t.Fatalf("fairshare %v should be worse than interference %v", percore[1], percore[0])
	}
	// The dynamic policy beats all of them.
	for i := 0; i < 3; i++ {
		if percore[3] >= percore[i] {
			t.Fatalf("dynamic %v should beat row %d (%v)", percore[3], i, percore[i])
		}
	}
}
