package replay

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// twoAppTrace is a hand-written daemon-style trace: A occupies the file
// system from t=1 to t=6 (two access steps), B arrives at t=2 and ends at
// t=8. Under fcfs the recording granted A at t=1 (inform arbitration) and B
// at t=6 (when A ended); those outcome events are included so Verify has
// something to check against.
func twoAppTrace() *trace.Trace {
	return &trace.Trace{
		Header: trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 0, SID: 1, App: "A", Cores: 4},
			{Type: trace.EvRegister, Time: 0.1, SID: 2, App: "B", Cores: 2},
			{Type: trace.EvPrepare, Time: 0.5, SID: 1, Info: map[string]string{core.KeyBytesTotal: "200"}},
			{Type: trace.EvPrepare, Time: 0.6, SID: 2, Info: map[string]string{core.KeyBytesTotal: "100"}},

			{Type: trace.EvInform, Time: 1, SID: 1},
			{Type: trace.EvGrant, Time: 1, SID: 1},
			{Type: trace.EvWait, Time: 1.1, SID: 1}, // immediate

			{Type: trace.EvInform, Time: 2, SID: 2},
			{Type: trace.EvWait, Time: 2.1, SID: 2}, // deferred behind A

			{Type: trace.EvRelease, Time: 5, SID: 1, Bytes: 100},
			{Type: trace.EvInform, Time: 5, SID: 1},
			{Type: trace.EvWait, Time: 5.1, SID: 1}, // immediate: A still head

			{Type: trace.EvRelease, Time: 6, SID: 1, Bytes: 200},
			{Type: trace.EvComplete, Time: 6, SID: 1},
			{Type: trace.EvEnd, Time: 6, SID: 1},
			{Type: trace.EvGrant, Time: 6, SID: 2}, // B takes over as A ends

			{Type: trace.EvRelease, Time: 8, SID: 2, Bytes: 100},
			{Type: trace.EvComplete, Time: 8, SID: 2},
			{Type: trace.EvEnd, Time: 8, SID: 2},
		},
	}
}

func TestUnderFCFS(t *testing.T) {
	tr := twoAppTrace()
	res, err := Under(tr, core.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantsServed != 3 {
		t.Fatalf("grants = %d, want 3 (A twice immediate, B once deferred)", res.GrantsServed)
	}
	if res.WaitsImmediate != 2 || res.WaitsDeferred != 1 {
		t.Fatalf("immediate/deferred = %d/%d, want 2/1", res.WaitsImmediate, res.WaitsDeferred)
	}
	// B waited from 2.1 until A ended at 6, behind an authorized holder.
	if got := res.TotalWaitS; math.Abs(got-3.9) > 1e-9 {
		t.Fatalf("total wait = %g, want 3.9", got)
	}
	if math.Abs(res.ConvoyWaitS-3.9) > 1e-9 || res.ProtocolWaitS != 0 {
		t.Fatalf("convoy/protocol = %g/%g, want 3.9/0", res.ConvoyWaitS, res.ProtocolWaitS)
	}
	if res.OverlapS != 0 {
		t.Fatalf("overlap = %g, want 0 under strict serialization", res.OverlapS)
	}
	if res.Unserved != 0 || res.Aborted != 0 {
		t.Fatalf("unserved/aborted = %d/%d, want 0/0", res.Unserved, res.Aborted)
	}
	if res.MakespanS != 8 {
		t.Fatalf("makespan = %g, want 8", res.MakespanS)
	}
	// Per-app: sorted by name.
	if len(res.Apps) != 2 || res.Apps[0].Name != "A" || res.Apps[1].Name != "B" {
		t.Fatalf("apps = %+v", res.Apps)
	}
	a, b := res.Apps[0], res.Apps[1]
	if a.IOTimeS != 5 || math.Abs(b.IOTimeS-6) > 1e-9 {
		t.Fatalf("io times = %g/%g, want 5/6", a.IOTimeS, b.IOTimeS)
	}
	if b.WaitS != 3.9 || a.WaitS != 0 {
		t.Fatalf("waits = %g/%g, want 0/3.9", a.WaitS, b.WaitS)
	}
	if p99 := res.WaitPercentile(99); p99 != 3.9 {
		t.Fatalf("p99 wait = %g, want 3.9", p99)
	}
}

func TestUnderInterfereOverlaps(t *testing.T) {
	tr := twoAppTrace()
	res, err := Under(tr, core.InterferePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWaitS != 0 || res.WaitsDeferred != 0 {
		t.Fatalf("interference should serve every wait immediately: %+v", res)
	}
	// B active 2.1..8, A active 1.1..5 and 5.1..6: overlap 2.1..5 and
	// 5.1..6 = 2.9 + 0.9 machine-seconds.
	if math.Abs(res.OverlapS-3.8) > 1e-9 {
		t.Fatalf("overlap = %g, want 3.8", res.OverlapS)
	}
}

func TestVerifyMatchesAndDetectsTampering(t *testing.T) {
	tr := twoAppTrace()
	v, err := Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("verify mismatch: %s", v.Mismatch)
	}
	if len(v.Recorded) != 2 || len(v.Flips) != 2 {
		t.Fatalf("flips: recorded %d, replayed %d, want 2/2", len(v.Recorded), len(v.Flips))
	}

	// Tamper: drop the second recorded grant; the replayed sequence is now
	// longer than the recorded one.
	tam := twoAppTrace()
	evs := tam.Events[:0]
	for _, ev := range tam.Events {
		if ev.Type == trace.EvGrant && ev.SID == 2 {
			continue
		}
		evs = append(evs, ev)
	}
	tam.Events = evs
	v2, err := Verify(tam)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Match {
		t.Fatal("tampered trace verified clean")
	}
	if v2.Mismatch == "" {
		t.Fatal("mismatch not described")
	}
}

func TestVerifyRefusesLossyAndClientTraces(t *testing.T) {
	lossy := twoAppTrace()
	lossy.Dropped = 3
	if _, err := Verify(lossy); err == nil || !strings.Contains(err.Error(), "lossy") {
		t.Fatalf("want lossy-trace refusal, got %v", err)
	}
	if _, err := Under(lossy, core.FCFSPolicy{}); err == nil || !strings.Contains(err.Error(), "lossy") {
		t.Fatalf("Under must refuse lossy traces too, got %v", err)
	}
	cl := twoAppTrace()
	cl.Header.Source = trace.SourceClient
	if _, err := Verify(cl); err == nil || !strings.Contains(err.Error(), "daemon-side") {
		t.Fatalf("want client-trace refusal, got %v", err)
	}
	if _, err := Under(cl, core.FCFSPolicy{}); err != nil {
		t.Fatalf("what-if on a client trace must work: %v", err)
	}
}

// TestSynthesizedRecheck exercises the delay policy's RecheckAfter on the
// virtual clock: the grant must land at an instant that appears nowhere in
// the trace — it was synthesized between events.
func TestSynthesizedRecheck(t *testing.T) {
	const mib = 1 << 20
	tr := &trace.Trace{
		Header: trace.Header{Source: trace.SourceDaemon, Policy: "delay",
			DelayOverlap: 0.5, FSMiBps: 1},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 0, SID: 1, App: "A", Cores: 1},
			{Type: trace.EvRegister, Time: 0, SID: 2, App: "B", Cores: 1},
			{Type: trace.EvPrepare, Time: 0, SID: 1, Info: map[string]string{core.KeyBytesTotal: "10485760"}}, // 10 MiB, solo 10s
			{Type: trace.EvPrepare, Time: 0, SID: 2, Info: map[string]string{core.KeyBytesTotal: "1048576"}},  // 1 MiB, solo 1s
			{Type: trace.EvInform, Time: 0, SID: 1},
			{Type: trace.EvWait, Time: 0, SID: 1}, // immediate: single app
			{Type: trace.EvInform, Time: 1, SID: 2},
			{Type: trace.EvWait, Time: 1, SID: 2}, // deferred: holder remains 10s, window 0.5s
			// A reports 9.4 MiB done at t=2: remaining 0.6s > 0.5s window,
			// so arbitration schedules a recheck at t=2.1 ...
			{Type: trace.EvRelease, Time: 2, SID: 1, Bytes: 9.4 * mib},
			{Type: trace.EvInform, Time: 2, SID: 1},
			{Type: trace.EvWait, Time: 2, SID: 1},
			// ... and a state-free progress report at t=2.05 shrinks the
			// remainder to 0.5s, so the recheck at 2.1 grants B.
			{Type: trace.EvProgress, Time: 2.05, SID: 1, Bytes: 9.5 * mib},
			{Type: trace.EvRelease, Time: 3, SID: 2, Bytes: 1 * mib},
			{Type: trace.EvEnd, Time: 3, SID: 2},
			{Type: trace.EvRelease, Time: 4, SID: 1, Bytes: 10 * mib},
			{Type: trace.EvEnd, Time: 4, SID: 1},
		},
	}
	pol, err := RecordingPolicy(tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Under(tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range res.Flips {
		if f.SID == 2 && f.Grant && math.Abs(f.Time-2.1) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no synthesized-recheck grant for B at t=2.1; flips: %v", res.Flips)
	}
	if res.GrantsServed != 3 {
		t.Fatalf("grants = %d, want 3", res.GrantsServed)
	}
}

func TestCompareStretchPenalizesInterference(t *testing.T) {
	tr := twoAppTrace()
	c, err := Compare(tr, StandardPolicies(tr.Header, -1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Recording != "fcfs" {
		t.Fatalf("recording = %q", c.Recording)
	}
	if len(c.Outcomes) != 3 { // no model in header: static policies only
		t.Fatalf("outcomes = %d, want 3", len(c.Outcomes))
	}
	byName := map[string]*Outcome{}
	for i := range c.Outcomes {
		byName[c.Outcomes[i].Policy] = &c.Outcomes[i]
	}
	fcfs, inter := byName["fcfs"], byName["interfere"]
	if fcfs == nil || inter == nil {
		t.Fatalf("missing outcomes: %v", byName)
	}
	// fcfs: no stretch, so its estimated time is service + wait; the
	// baseline attributes B's 3.9s to waiting, leaving service 5 + 2.1.
	if math.Abs(fcfs.EstIOTimeS-(5+2.1+3.9)) > 1e-9 {
		t.Fatalf("fcfs est = %g, want 11", fcfs.EstIOTimeS)
	}
	// interference: zero wait but stretched service; both must exceed the
	// contention-free service sum and the factors must exceed 1.
	if inter.TotalWaitS != 0 {
		t.Fatalf("interfere wait = %g", inter.TotalWaitS)
	}
	if inter.EstIOTimeS <= 5+2.1 {
		t.Fatalf("interference stretch missing: est = %g", inter.EstIOTimeS)
	}
	if inter.SumInterference <= 2 { // two apps, both factors > 1
		t.Fatalf("interfere sumI = %g, want > 2", inter.SumInterference)
	}
	if fcfs.CPUSecondsWasted <= 0 || inter.CPUSecondsWasted <= 0 {
		t.Fatalf("cpu-seconds: fcfs %g, interfere %g", fcfs.CPUSecondsWasted, inter.CPUSecondsWasted)
	}
	if c.Best < 0 || c.Best >= len(c.Outcomes) {
		t.Fatalf("best index %d out of range", c.Best)
	}
}

// TestUnregisterMidPhaseRearbitrates mirrors the daemon's vanished-holder
// handling: the survivors must be re-arbitrated when a busy session leaves.
func TestUnregisterMidPhaseRearbitrates(t *testing.T) {
	tr := &trace.Trace{
		Header: trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 0, SID: 1, App: "A", Cores: 1},
			{Type: trace.EvRegister, Time: 0, SID: 2, App: "B", Cores: 1},
			{Type: trace.EvInform, Time: 1, SID: 1},
			{Type: trace.EvWait, Time: 1, SID: 1},
			{Type: trace.EvInform, Time: 2, SID: 2},
			{Type: trace.EvWait, Time: 2, SID: 2},       // deferred behind A
			{Type: trace.EvUnregister, Time: 3, SID: 1}, // A vanishes mid-phase
			{Type: trace.EvRelease, Time: 5, SID: 2, Bytes: 1},
			{Type: trace.EvEnd, Time: 5, SID: 2},
		},
	}
	res, err := Under(tr, core.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantsServed != 2 {
		t.Fatalf("grants = %d, want 2 (B granted after A vanished)", res.GrantsServed)
	}
	if math.Abs(res.TotalWaitS-1) > 1e-9 { // B waited 2..3
		t.Fatalf("wait = %g, want 1", res.TotalWaitS)
	}
}

// TestUnservedCensoring: a wait still pending when the trace ends is
// censored at the last instant and reported, not silently dropped.
func TestUnservedCensoring(t *testing.T) {
	tr := &trace.Trace{
		Header: trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 0, SID: 1, App: "A", Cores: 1},
			{Type: trace.EvRegister, Time: 0, SID: 2, App: "B", Cores: 1},
			{Type: trace.EvInform, Time: 1, SID: 1},
			{Type: trace.EvWait, Time: 1, SID: 1},
			{Type: trace.EvInform, Time: 2, SID: 2},
			{Type: trace.EvWait, Time: 2, SID: 2}, // never served: A never ends
			{Type: trace.EvProgress, Time: 10, SID: 1, Bytes: 1},
		},
	}
	res, err := Under(tr, core.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 1 {
		t.Fatalf("unserved = %d, want 1", res.Unserved)
	}
	if math.Abs(res.TotalWaitS-8) > 1e-9 { // censored 2..10
		t.Fatalf("censored wait = %g, want 8", res.TotalWaitS)
	}
	if res.GrantsServed != 1 {
		t.Fatalf("grants = %d, want 1", res.GrantsServed)
	}
}
