// Package replay re-arbitrates a recorded coordination trace offline: it
// drives the request events of an internal/trace log through core.Arbiter —
// the same arbitration state machine the live daemon runs — on a virtual
// clock taken from the recorded timestamps.
//
// Like the live daemon, replay is sharded by storage target: the trace is
// partitioned into per-target event streams (a version-1 trace is one
// stream, the default target ""), each stream is re-arbitrated through its
// own Arbiter exactly as that target's shard goroutine would have, and the
// per-target results are merged into one Result. Registration is per
// target: a daemon trace records each shard's attach as its own EvRegister,
// so the partition reproduces each shard's registration order; client-side
// captures record one register per session, which the partitioner copies
// into every target the session later touches (and its unregister
// likewise), at the instant of first touch — mirroring the daemon's lazy
// attach.
//
// Two modes exist:
//
//   - Verify replays a daemon-side trace under its own recorded policy,
//     re-arbitrating exactly where the recording did (request events plus
//     the recorded recheck instants), and checks that the reproduced
//     authorization-flip sequence matches the recorded grant/revoke events
//     one for one. Because the daemon serializes all coordination through a
//     single goroutine, the trace captures the full serialized order and the
//     replay is exact — a mismatch means the trace is lossy or the
//     arbitration logic changed.
//
//   - Under replays the same arrival pattern under any policy ("what would
//     delay have done with last night's traffic?"). Here the recorded
//     outcome events are ignored and recheck arbitrations are synthesized
//     from the policy's own RecheckAfter requests on the virtual clock.
//
// The what-if replay is open-loop, in the tradition of LASSi-style
// after-the-fact I/O analytics: request instants stay where the recording
// put them, even though a live application blocked longer in Wait would
// have issued its next request later. Wait durations, their convoy-vs-
// protocol decomposition (identical to the daemon's live wire.Stats
// breakdown), and the derived interference and CPU-seconds estimates are
// therefore comparative figures across policies, not absolute predictions.
// Waits still pending when the trace ends are censored at the last recorded
// instant and counted as Unserved.
package replay

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Flip is one authorization change, in delivery order within its target.
type Flip struct {
	Time   float64
	SID    uint32
	Target string // storage target whose arbiter flipped it ("" = default)
	Grant  bool   // true = granted, false = revoked
}

// String renders one flip compactly.
func (f Flip) String() string {
	kind := "revoke"
	if f.Grant {
		kind = "grant"
	}
	if f.Target != "" {
		return fmt.Sprintf("%s sid=%d target=%s t=%.6f", kind, f.SID, f.Target, f.Time)
	}
	return fmt.Sprintf("%s sid=%d t=%.6f", kind, f.SID, f.Time)
}

// AppResult is one session's replayed outcome on one storage target.
// Sessions are identified by the trace SID; a name can recur if an
// application re-registered, and one SID recurs across targets when the
// session coordinated on several.
type AppResult struct {
	SID    uint32
	Name   string
	Target string
	Cores  int
	Phases int
	Grants uint64

	WaitsImmediate uint64
	WaitsDeferred  uint64
	WaitS          float64 // total deferred-wait time (censored waits included)
	ConvoyWaitS    float64
	ProtocolWaitS  float64
	IOTimeS        float64 // recorded phase-open time (trace-fixed)

	// ActiveS is the time this session spent inside an access step (between
	// a served Wait and the next Release/End, at recorded instants);
	// StretchedActiveS weighs each active second by the number of
	// concurrently active sessions — the paper's equal-share interference
	// model (two overlapped accesses each progress at half speed), used by
	// Compare to stretch service time under interference-permitting
	// policies.
	ActiveS          float64
	StretchedActiveS float64

	Unserved int // waits still pending at end of trace
	Aborted  int // waits cancelled by phase end or session departure
}

// Result is the outcome of one replay.
type Result struct {
	Policy string
	Events int

	Arbitrations uint64
	GrantsServed uint64

	WaitsImmediate uint64
	WaitsDeferred  uint64
	TotalWaitS     float64
	ConvoyWaitS    float64
	ProtocolWaitS  float64

	Unserved int
	Aborted  int

	// OverlapS integrates max(0, n-1) over time per target, n being the
	// number of sessions concurrently active on that target, summed over
	// targets: the machine-seconds of interference this policy permitted (0
	// under strict serialization). Activity on different targets does not
	// count as overlap — contention is per target.
	OverlapS float64

	// MakespanS is the last virtual-clock instant of the replay (the max
	// across targets).
	MakespanS float64

	// Flips is the reproduced authorization-change sequence, grouped by
	// target in sorted target order; within a target, delivery order.
	Flips []Flip
	// Waits holds every deferred-wait duration (seconds, censored pending
	// waits included), sorted ascending for percentile queries. Immediate
	// waits contribute a zero.
	Waits []float64
	// Apps holds per-session, per-target outcomes sorted by (Name, Target,
	// SID).
	Apps []AppResult
}

// WaitPercentile returns the p-th percentile (0..100, ceil-rank semantics)
// of the wait durations, 0 when no waits were observed.
func (r *Result) WaitPercentile(p float64) float64 {
	if len(r.Waits) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(r.Waits)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.Waits) {
		idx = len(r.Waits) - 1
	}
	return r.Waits[idx]
}

// MaxWait returns the largest wait duration, 0 when none.
func (r *Result) MaxWait() float64 {
	if len(r.Waits) == 0 {
		return 0
	}
	return r.Waits[len(r.Waits)-1]
}

// WaitHist summarizes the wait durations into the fixed buckets the live
// daemon's /metrics histograms use (obs.DefaultLatencyBuckets), so offline
// replay reports percentiles bucket-compatible with a live scrape.
func (r *Result) WaitHist() *wire.Hist {
	bounds := obs.DefaultLatencyBuckets
	h := &wire.Hist{BoundsS: bounds, Counts: make([]uint64, len(bounds)+1)}
	for _, w := range r.Waits {
		h.Counts[sort.SearchFloat64s(bounds, w)]++
		h.SumS += w
	}
	h.Count = uint64(len(r.Waits))
	return h
}

// RecordingPolicy rebuilds the policy the trace was recorded under from its
// header, via the same construction path as the daemon configuration.
func RecordingPolicy(hdr trace.Header) (core.Policy, error) {
	return headerDaemon(hdr).BuildPolicy()
}

// Model rebuilds the recording daemon's performance model from the header;
// nil when the daemon had none.
func Model(hdr trace.Header) *core.PerfModel {
	return headerDaemon(hdr).Model()
}

func headerDaemon(hdr trace.Header) config.Daemon {
	return config.Daemon{
		Policy:       hdr.Policy,
		DelayOverlap: hdr.DelayOverlap,
		FSMiBps:      hdr.FSMiBps,
		ProcNICMiBps: hdr.ProcNICMiBps,
	}
}

// checkReplayable rejects traces a replay would silently misrepresent. A
// truncated trace (loaded with trace.LoadLenient after a recorder crash) is
// replayable: truncation removes a suffix, so the surviving prefix is still
// an exact record — Verify just compares flips prefix-wise. A lossy trace
// (drop-counted overflow) has holes anywhere, so it is always refused.
func checkReplayable(tr *trace.Trace) error {
	if tr.Dropped > 0 {
		return fmt.Errorf("replay: trace is lossy (%d events dropped on overflow); replaying it would silently diverge", tr.Dropped)
	}
	return nil
}

// shardEvents is one storage target's slice of a partitioned trace.
type shardEvents struct {
	Target string
	Events []trace.Event
}

// partition splits a trace into per-target event streams, in sorted target
// order. Daemon traces partition exactly: every event (register, recheck
// and unregister included) was recorded by the shard that owns its target.
// Client-side captures record registration once per session, so the
// partitioner mirrors the daemon's lazy attach: the register is copied into
// a target's stream at the session's first event there, and the session's
// unregister is copied into every target it touched. A version-1 trace has
// every Target empty and partitions into the single default stream —
// byte-for-byte the unsharded replay input.
func partition(tr *trace.Trace) []shardEvents {
	type regInfo struct {
		app   string
		cores int32
	}
	idx := make(map[string]int)
	var parts []shardEvents
	emit := func(target string, ev trace.Event) {
		i, ok := idx[target]
		if !ok {
			i = len(parts)
			idx[target] = i
			parts = append(parts, shardEvents{Target: target})
		}
		parts[i].Events = append(parts[i].Events, ev)
	}
	type attachKey struct {
		target string
		sid    uint32
	}
	regs := make(map[uint32]regInfo)
	attached := make(map[attachKey]bool)
	client := tr.Header.Source == trace.SourceClient
	for _, ev := range tr.Events {
		switch ev.Type {
		case trace.EvRegister:
			regs[ev.SID] = regInfo{app: ev.App, cores: ev.Cores}
			if client {
				// A client-side register is session metadata, not an
				// attach: the session joins a target's stream lazily at
				// its first event there, like the daemon's lazy attach —
				// so no stream carries sessions that never coordinate on
				// its target.
				continue
			}
			attached[attachKey{ev.Target, ev.SID}] = true
			emit(ev.Target, ev)
		case trace.EvRecheck:
			emit(ev.Target, ev)
		case trace.EvUnregister:
			if attached[attachKey{ev.Target, ev.SID}] {
				delete(attached, attachKey{ev.Target, ev.SID})
				emit(ev.Target, ev)
			}
			if client {
				// One recorded unregister stands for the whole session:
				// propagate it to every other target it attached to.
				for i := range parts {
					t := parts[i].Target
					if t == ev.Target || !attached[attachKey{t, ev.SID}] {
						continue
					}
					delete(attached, attachKey{t, ev.SID})
					cp := ev
					cp.Target = t
					emit(t, cp)
				}
			}
		default:
			if !attached[attachKey{ev.Target, ev.SID}] && ev.SID != 0 {
				if reg, ok := regs[ev.SID]; ok {
					attached[attachKey{ev.Target, ev.SID}] = true
					emit(ev.Target, trace.Event{Type: trace.EvRegister, Time: ev.Time,
						SID: ev.SID, App: reg.app, Cores: reg.cores, Target: ev.Target})
				}
			}
			emit(ev.Target, ev)
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Target < parts[j].Target })
	return parts
}

// mergeResults combines per-target results into the machine-wide view:
// counters sum, Flips concatenate in target order, Waits re-sort, Apps
// re-sort by (Name, Target, SID), the makespan is the max.
func mergeResults(policy string, parts []Result) Result {
	out := Result{Policy: policy}
	for i := range parts {
		r := &parts[i]
		out.Events += r.Events
		out.Arbitrations += r.Arbitrations
		out.GrantsServed += r.GrantsServed
		out.WaitsImmediate += r.WaitsImmediate
		out.WaitsDeferred += r.WaitsDeferred
		out.TotalWaitS += r.TotalWaitS
		out.ConvoyWaitS += r.ConvoyWaitS
		out.ProtocolWaitS += r.ProtocolWaitS
		out.Unserved += r.Unserved
		out.Aborted += r.Aborted
		out.OverlapS += r.OverlapS
		if r.MakespanS > out.MakespanS {
			out.MakespanS = r.MakespanS
		}
		out.Flips = append(out.Flips, r.Flips...)
		out.Waits = append(out.Waits, r.Waits...)
		out.Apps = append(out.Apps, r.Apps...)
	}
	sort.Float64s(out.Waits)
	sort.Slice(out.Apps, func(i, j int) bool {
		a, b := &out.Apps[i], &out.Apps[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.SID < b.SID
	})
	return out
}

// Under replays the trace's request events under the given policy,
// re-arbitrating each storage target's stream independently and
// synthesizing per-target recheck arbitrations from the policy's
// RecheckAfter requests (the recorded outcome and recheck events are
// ignored).
func Under(tr *trace.Trace, pol core.Policy) (Result, error) {
	if err := checkReplayable(tr); err != nil {
		return Result{}, err
	}
	parts := partition(tr)
	results := make([]Result, 0, len(parts))
	for _, p := range parts {
		m := newMachine(pol, p.Target, true, false)
		if err := m.run(p.Events); err != nil {
			return Result{}, err
		}
		results = append(results, m.finish())
	}
	return mergeResults(pol.Name(), results), nil
}

// ShardVerify is one storage target's slice of an exact reproduction check.
type ShardVerify struct {
	Target       string
	GrantsServed uint64
	Flips        int
	Recorded     int
	Match        bool
	Mismatch     string
}

// VerifyResult is the outcome of an exact reproduction check.
type VerifyResult struct {
	Result
	// Recorded is the grant/revoke sequence the daemon logged, grouped by
	// target in sorted target order.
	Recorded []Flip
	// Match reports whether every target's replayed flips equal its
	// recorded ones event for event; Mismatch describes the first
	// divergence otherwise.
	Match    bool
	Mismatch string
	// Shards holds the per-target checks, in sorted target order.
	Shards []ShardVerify
}

// Verify replays a daemon-side trace under its own recorded policy and
// compares, per storage target, the reproduced authorization-flip sequence
// against the recorded one, event for event. The check is per target
// because only a target's own serialized order is recorded — the file-level
// interleaving across targets is scheduling noise.
func Verify(tr *trace.Trace) (VerifyResult, error) {
	if tr.Header.Source != trace.SourceDaemon {
		return VerifyResult{}, fmt.Errorf("replay: exact verification needs a daemon-side trace (source %q)", tr.Header.Source)
	}
	if err := checkReplayable(tr); err != nil {
		return VerifyResult{}, err
	}
	pol, err := RecordingPolicy(tr.Header)
	if err != nil {
		return VerifyResult{}, fmt.Errorf("replay: recording policy: %w", err)
	}
	parts := partition(tr)
	v := VerifyResult{Match: true}
	results := make([]Result, 0, len(parts))
	for _, p := range parts {
		m := newMachine(pol, p.Target, false, true)
		if err := m.run(p.Events); err != nil {
			return VerifyResult{}, err
		}
		res := m.finish()
		// On a truncated trace the file may have lost flip records whose
		// triggering requests survived, so the recorded flips are verified
		// as a prefix of the replayed sequence instead of an exact match.
		match, mismatch := compareFlips(m.recorded, res.Flips, tr.Truncated)
		if !match && p.Target != "" {
			mismatch = fmt.Sprintf("target %s: %s", p.Target, mismatch)
		}
		v.Shards = append(v.Shards, ShardVerify{
			Target:       p.Target,
			GrantsServed: res.GrantsServed,
			Flips:        len(res.Flips),
			Recorded:     len(m.recorded),
			Match:        match,
			Mismatch:     mismatch,
		})
		if !match && v.Match {
			v.Match, v.Mismatch = false, mismatch
		}
		v.Recorded = append(v.Recorded, m.recorded...)
		results = append(results, res)
	}
	v.Result = mergeResults(pol.Name(), results)
	return v, nil
}

func compareFlips(recorded, replayed []Flip, prefixOK bool) (bool, string) {
	n := len(recorded)
	if len(replayed) < n {
		n = len(replayed)
	}
	for i := 0; i < n; i++ {
		if recorded[i] != replayed[i] {
			return false, fmt.Sprintf("flip %d: recorded %s, replayed %s", i, recorded[i], replayed[i])
		}
	}
	if prefixOK && len(recorded) <= len(replayed) {
		return true, ""
	}
	if len(recorded) != len(replayed) {
		return false, fmt.Sprintf("recorded %d flips, replayed %d", len(recorded), len(replayed))
	}
	return true, ""
}

// sess mirrors the daemon's per-session accounting.
type sess struct {
	sid   uint32
	name  string
	cores int
	app   *core.AppState // nil once unregistered

	pending    bool
	waitFrom   float64
	waitConvoy bool
	phaseStart float64

	res AppResult
}

// machine drives core.Arbiter through one target's replay. It mirrors
// internal/server's per-shard handle/arbitrate logic without the network.
type machine struct {
	arb        *core.Arbiter
	target     string
	byID       map[uint32]*sess
	order      []*sess
	now        float64
	recheckAt  float64
	synthesize bool // derive rechecks from RecheckAfter (what-if mode)
	collect    bool // collect recorded EvGrant/EvRevoke for verification

	events   int
	recorded []Flip
	res      Result
}

func newMachine(pol core.Policy, target string, synthesize, collect bool) *machine {
	arb := core.NewArbiter(pol)
	arb.SetIndexed(true)
	arb.SetLogBound(0)
	return &machine{
		arb:        arb,
		target:     target,
		byID:       make(map[uint32]*sess),
		recheckAt:  math.Inf(1),
		synthesize: synthesize,
		collect:    collect,
		res:        Result{Policy: pol.Name()},
	}
}

func (m *machine) run(events []trace.Event) error {
	for i := range events {
		if err := m.step(&events[i]); err != nil {
			return fmt.Errorf("replay: event %d (%s): %w", i, events[i].Type, err)
		}
	}
	return nil
}

func (m *machine) step(ev *trace.Event) error {
	// The virtual clock never runs backwards: daemon traces are monotone by
	// construction; client-side captures may interleave slightly out of
	// order across connections and are clamped.
	t := ev.Time
	if t < m.now {
		t = m.now
	}
	// Synthesized rechecks due before this event fire first, exactly as the
	// daemon's recheck timer would have.
	for m.synthesize && m.recheckAt <= t {
		rt := m.recheckAt
		m.recheckAt = math.Inf(1)
		m.accrue(rt - m.now)
		m.now = rt
		m.arbitrate(rt)
		if m.recheckAt <= rt { // policies must move rechecks forward
			m.recheckAt = math.Inf(1)
		}
	}
	m.accrue(t - m.now)
	m.now = t
	m.events++

	s := m.byID[ev.SID]
	if ev.Type != trace.EvRegister && ev.Type != trace.EvRecheck &&
		(s == nil || s.app == nil) {
		// A session the replay does not know (or that already left): a
		// client-side capture can record such skew; ignore.
		if ev.Type == trace.EvGrant || ev.Type == trace.EvRevoke {
			if m.collect {
				m.recorded = append(m.recorded, Flip{Time: t, SID: ev.SID, Target: m.target, Grant: ev.Type == trace.EvGrant})
			}
		}
		return nil
	}

	switch ev.Type {
	case trace.EvRegister:
		if s != nil && s.app != nil {
			return fmt.Errorf("duplicate sid %d", ev.SID)
		}
		app, err := m.arb.Register(ev.App, int(ev.Cores))
		if err != nil {
			return err
		}
		if s != nil {
			// A resumed session (the daemon's rebind records unregister +
			// register under the same sid): accounting continues in the same
			// sess, mirroring the daemon carrying its binding counters over.
			s.app = app
			app.Data = s
			return nil
		}
		s = &sess{sid: ev.SID, name: ev.App, cores: int(ev.Cores), app: app}
		app.Data = s
		m.byID[ev.SID] = s
		m.order = append(m.order, s)

	case trace.EvPrepare:
		s.app.Prepare(core.Info(ev.Info))

	case trace.EvComplete:
		_ = s.app.Complete() // only successful Completes are recorded

	case trace.EvInform:
		if ev.Bytes > 0 {
			s.app.Progress(ev.Bytes)
		}
		if s.app.Inform(t) {
			s.phaseStart = t
			s.res.Phases++
		}
		m.arbitrate(t)

	case trace.EvProgress:
		if ev.Bytes > 0 {
			s.app.Progress(ev.Bytes)
		}

	case trace.EvCheck:
		// State-free.

	case trace.EvWait:
		if s.app.State() == core.Idle || s.pending {
			return nil // client-capture skew; the daemon never records these
		}
		if s.app.Authorized() {
			s.app.Activate()
			s.res.WaitsImmediate++
			s.res.Grants++
			m.res.GrantsServed++
			m.res.Waits = append(m.res.Waits, 0)
			return nil
		}
		s.pending = true
		s.waitFrom = t
		s.waitConvoy = m.arb.OtherAuthorized(s.app)

	case trace.EvRelease:
		if ev.Bytes > 0 {
			s.app.Progress(ev.Bytes)
		}
		if s.app.Release() == nil {
			m.arbitrate(t)
		}

	case trace.EvEnd:
		if s.pending {
			// The daemon fails a Wait pending under its own phase teardown.
			s.pending = false
			s.res.Aborted++
		}
		if s.app.State() != core.Idle {
			s.res.IOTimeS += t - s.phaseStart
		}
		s.app.End()
		m.arbitrate(t)

	case trace.EvUnregister:
		if s.pending {
			s.pending = false
			s.res.Aborted++
		}
		wasBusy := s.app.State() != core.Idle
		if wasBusy {
			s.res.IOTimeS += t - s.phaseStart
		}
		m.arb.Unregister(s.app)
		s.app = nil
		if m.synthesize && wasBusy {
			// Mirrors the daemon's re-arbitration after a mid-phase session
			// vanished; in verify mode the recorded EvRecheck drives it.
			m.arbitrate(t)
		}

	case trace.EvRecheck:
		if !m.synthesize {
			m.arbitrate(t)
		}

	case trace.EvGrant, trace.EvRevoke:
		if m.collect {
			m.recorded = append(m.recorded, Flip{Time: t, SID: ev.SID, Target: m.target, Grant: ev.Type == trace.EvGrant})
		}

	default:
		return fmt.Errorf("unhandled event type %d", ev.Type)
	}
	return nil
}

// accrue charges dt of virtual time to every session currently inside an
// access step: plain seconds into ActiveS, concurrency-weighted seconds
// into StretchedActiveS, and the surplus into the machine-wide OverlapS. A
// revoked-but-still-active session keeps accruing — preemption takes effect
// only at its next coordination point, exactly as in the live protocol.
func (m *machine) accrue(dt float64) {
	if dt <= 0 {
		return
	}
	n := 0
	for _, s := range m.order {
		if s.app != nil && s.app.State() == core.Active {
			n++
		}
	}
	if n == 0 {
		return
	}
	for _, s := range m.order {
		if s.app != nil && s.app.State() == core.Active {
			s.res.ActiveS += dt
			s.res.StretchedActiveS += dt * float64(n)
		}
	}
	m.res.OverlapS += dt * float64(n-1)
}

func (m *machine) arbitrate(t float64) {
	out := m.arb.Arbitrate(t)
	m.res.Arbitrations++
	m.recheckAt = math.Inf(1)
	if !out.Acted {
		return
	}
	for _, a := range out.Granted {
		s := a.Data.(*sess)
		m.res.Flips = append(m.res.Flips, Flip{Time: t, SID: s.sid, Target: m.target, Grant: true})
		if s.pending {
			s.app.Activate() // the served Wait enters the access step
			d := t - s.waitFrom
			s.res.WaitS += d
			if s.waitConvoy {
				s.res.ConvoyWaitS += d
			} else {
				s.res.ProtocolWaitS += d
			}
			s.res.WaitsDeferred++
			s.res.Grants++
			m.res.GrantsServed++
			m.res.Waits = append(m.res.Waits, d)
			s.pending = false
		}
	}
	for _, a := range out.Revoked {
		s := a.Data.(*sess)
		m.res.Flips = append(m.res.Flips, Flip{Time: t, SID: s.sid, Target: m.target, Grant: false})
	}
	if out.RecheckAfter > 0 {
		m.recheckAt = t + out.RecheckAfter
	}
}

// finish closes the books: open phases and pending waits are censored at
// the final virtual-clock instant, per-session results are aggregated and
// sorted, and wait durations are sorted for percentile queries.
func (m *machine) finish() Result {
	for _, s := range m.order {
		if s.app != nil && s.app.State() != core.Idle {
			s.res.IOTimeS += m.now - s.phaseStart
		}
		if s.pending {
			d := m.now - s.waitFrom
			s.res.WaitS += d
			if s.waitConvoy {
				s.res.ConvoyWaitS += d
			} else {
				s.res.ProtocolWaitS += d
			}
			s.res.Unserved++
			m.res.Waits = append(m.res.Waits, d)
			s.pending = false
		}
		s.res.SID = s.sid
		s.res.Name = s.name
		s.res.Target = m.target
		s.res.Cores = s.cores
		m.res.Apps = append(m.res.Apps, s.res)

		m.res.WaitsImmediate += s.res.WaitsImmediate
		m.res.WaitsDeferred += s.res.WaitsDeferred
		m.res.TotalWaitS += s.res.WaitS
		m.res.ConvoyWaitS += s.res.ConvoyWaitS
		m.res.ProtocolWaitS += s.res.ProtocolWaitS
		m.res.Unserved += s.res.Unserved
		m.res.Aborted += s.res.Aborted
	}
	sort.Slice(m.res.Apps, func(i, j int) bool {
		if m.res.Apps[i].Name != m.res.Apps[j].Name {
			return m.res.Apps[i].Name < m.res.Apps[j].Name
		}
		return m.res.Apps[i].SID < m.res.Apps[j].SID
	})
	sort.Float64s(m.res.Waits)
	m.res.Events = m.events
	m.res.MakespanS = m.now
	return m.res
}

// Named pairs a display name with a policy for comparison runs.
type Named struct {
	Name   string
	Policy core.Policy
}

// Outcome is one policy's replay plus the derived cross-policy estimates.
//
// The estimation follows the quantitative-interference tradition: each
// session's recorded I/O time splits into service time (phase time minus
// the wait the baseline replay attributes to coordination) and wait. Under
// another policy the wait is re-arbitrated, and the service time is
// stretched by the equal-share interference model — every active second
// shared with n-1 other active sessions costs n seconds (the paper's
// expected-∆ model), so permissive policies pay in stretch what they save
// in waiting. EstIOTimeS is Σ stretched service + wait, the per-app
// interference factor is (stretched+wait)/service, and CPUSecondsWasted is
// Σ cores · (stretched + wait).
type Outcome struct {
	Result
	EstIOTimeS       float64
	SumInterference  float64
	CPUSecondsWasted float64
}

// Comparison is a full cross-policy what-if study of one trace.
type Comparison struct {
	// Recording is the policy name the trace was recorded under.
	Recording string
	// Baseline is the what-if replay under the recording policy; its wait
	// attribution defines each session's service time.
	Baseline Result
	// Outcomes holds one entry per requested policy, in input order.
	Outcomes []Outcome
	// Best indexes the recommended outcome: minimal CPUSecondsWasted, ties
	// broken by total wait, then input order.
	Best int
}

// Compare replays the trace under every given policy and derives the
// comparison metrics against the recording-policy baseline.
func Compare(tr *trace.Trace, policies []Named) (Comparison, error) {
	if len(policies) == 0 {
		return Comparison{}, fmt.Errorf("replay: no policies to compare")
	}
	basePol, err := RecordingPolicy(tr.Header)
	if err != nil {
		return Comparison{}, fmt.Errorf("replay: recording policy: %w", err)
	}
	base, err := Under(tr, basePol)
	if err != nil {
		return Comparison{}, err
	}
	// Service time per (session, target): recorded phase time minus the
	// wait the baseline attributes to coordination.
	type svcKey struct {
		sid    uint32
		target string
	}
	service := make(map[svcKey]float64, len(base.Apps))
	for _, a := range base.Apps {
		s := a.IOTimeS - a.WaitS
		if s < 0 {
			s = 0
		}
		service[svcKey{a.SID, a.Target}] = s
	}
	c := Comparison{Recording: tr.Header.Policy, Baseline: base}
	for _, np := range policies {
		var res Result
		if np.Policy.Name() == base.Policy {
			// The candidate is the recording policy itself: reuse the
			// baseline replay instead of re-arbitrating the whole trace.
			res = base
		} else {
			var err error
			res, err = Under(tr, np.Policy)
			if err != nil {
				return Comparison{}, fmt.Errorf("replay: %s: %w", np.Name, err)
			}
		}
		res.Policy = np.Name
		rep := metrics.Report{Apps: make([]metrics.AppResult, 0, len(res.Apps))}
		var est float64
		for _, a := range res.Apps {
			sv := service[svcKey{a.SID, a.Target}]
			scaled := sv
			if a.ActiveS > 0 {
				scaled = sv * a.StretchedActiveS / a.ActiveS
			}
			estApp := scaled + a.WaitS
			est += estApp
			rep.Apps = append(rep.Apps, metrics.AppResult{
				Name:   a.Name,
				Cores:  a.Cores,
				IOTime: estApp,
				// AloneTime is the contention-free service time, so the
				// factor isolates what this policy's waiting and permitted
				// interference cost.
				AloneTime: sv,
			})
		}
		c.Outcomes = append(c.Outcomes, Outcome{
			Result:           res,
			EstIOTimeS:       est,
			SumInterference:  rep.SumInterferenceFinite(),
			CPUSecondsWasted: rep.CPUSecondsWasted(),
		})
	}
	c.Best = 0
	for i := 1; i < len(c.Outcomes); i++ {
		a, b := &c.Outcomes[i], &c.Outcomes[c.Best]
		switch {
		case a.CPUSecondsWasted < b.CPUSecondsWasted:
			c.Best = i
		case a.CPUSecondsWasted == b.CPUSecondsWasted && a.TotalWaitS < b.TotalWaitS:
			c.Best = i
		}
	}
	return c, nil
}

// StandardPolicies builds the canonical comparison set for a trace: the
// three static policies always, plus the delay and dynamic policies when
// the header carries a performance model. overlap < 0 uses the header's
// recorded overlap (falling back to 0.5 when unset).
func StandardPolicies(hdr trace.Header, overlap float64) []Named {
	out := []Named{
		{Name: "fcfs", Policy: core.FCFSPolicy{}},
		{Name: "interrupt", Policy: core.InterruptPolicy{}},
		{Name: "interfere", Policy: core.InterferePolicy{}},
	}
	if m := Model(hdr); m != nil {
		if overlap < 0 {
			overlap = hdr.DelayOverlap
			if overlap == 0 {
				overlap = 0.5
			}
		}
		out = append(out,
			Named{Name: fmt.Sprintf("delay(%.2f)", overlap), Policy: core.DelayPolicy{Overlap: overlap, Model: m}},
			Named{Name: "dynamic(cpu-seconds)", Policy: core.DynamicPolicy{Metric: core.CPUSecondsWasted{}, Model: m, AllowInterfere: true}},
		)
	}
	return out
}
