package replay

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// twoTargetTrace is a hand-written daemon-style v2 trace: on target "a", A
// holds the file system 1..6 while B (arriving at 2) queues behind it; on
// target "b", C arrives at 2.5 and is granted immediately — per-target
// arbitration must never convoy C behind A. Register events are per shard,
// exactly as the sharded daemon records its lazy attaches.
func twoTargetTrace() *trace.Trace {
	return &trace.Trace{
		Header: trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 1, SID: 1, App: "A", Cores: 4, Target: "a"},
			{Type: trace.EvInform, Time: 1, SID: 1, Target: "a"},
			{Type: trace.EvGrant, Time: 1, SID: 1, Target: "a"},
			{Type: trace.EvWait, Time: 1.1, SID: 1, Target: "a"}, // immediate

			{Type: trace.EvRegister, Time: 2, SID: 2, App: "B", Cores: 2, Target: "a"},
			{Type: trace.EvInform, Time: 2, SID: 2, Target: "a"},
			{Type: trace.EvWait, Time: 2.1, SID: 2, Target: "a"}, // deferred behind A

			{Type: trace.EvRegister, Time: 2.5, SID: 3, App: "C", Cores: 8, Target: "b"},
			{Type: trace.EvInform, Time: 2.5, SID: 3, Target: "b"},
			{Type: trace.EvGrant, Time: 2.5, SID: 3, Target: "b"},
			{Type: trace.EvWait, Time: 2.6, SID: 3, Target: "b"}, // immediate: b is free

			{Type: trace.EvRelease, Time: 4, SID: 3, Bytes: 10, Target: "b"},
			{Type: trace.EvEnd, Time: 4, SID: 3, Target: "b"},

			{Type: trace.EvRelease, Time: 6, SID: 1, Bytes: 100, Target: "a"},
			{Type: trace.EvEnd, Time: 6, SID: 1, Target: "a"},
			{Type: trace.EvGrant, Time: 6, SID: 2, Target: "a"}, // B takes over as A ends

			{Type: trace.EvRelease, Time: 8, SID: 2, Bytes: 50, Target: "a"},
			{Type: trace.EvEnd, Time: 8, SID: 2, Target: "a"},
		},
	}
}

func TestUnderShardedTargetsIndependent(t *testing.T) {
	res, err := Under(twoTargetTrace(), core.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantsServed != 3 {
		t.Fatalf("grants = %d, want 3", res.GrantsServed)
	}
	// Only B waited (2.1 .. 6, behind A on target a); C's wait on target b
	// was immediate even though target a had a holder the whole time.
	if res.WaitsImmediate != 2 || res.WaitsDeferred != 1 {
		t.Fatalf("immediate/deferred = %d/%d, want 2/1", res.WaitsImmediate, res.WaitsDeferred)
	}
	if math.Abs(res.TotalWaitS-3.9) > 1e-9 || math.Abs(res.ConvoyWaitS-3.9) > 1e-9 {
		t.Fatalf("wait = %g convoy = %g, want 3.9/3.9", res.TotalWaitS, res.ConvoyWaitS)
	}
	// A (active on a) and C (active on b) overlap in wall time 2.6..4, but
	// contention is per target: no overlap machine-seconds.
	if res.OverlapS != 0 {
		t.Fatalf("overlap = %g, want 0 across targets", res.OverlapS)
	}
	if res.MakespanS != 8 {
		t.Fatalf("makespan = %g, want 8", res.MakespanS)
	}
	if len(res.Apps) != 3 {
		t.Fatalf("apps = %+v", res.Apps)
	}
	// Sorted by (name, target, sid).
	if res.Apps[0].Name != "A" || res.Apps[0].Target != "a" ||
		res.Apps[2].Name != "C" || res.Apps[2].Target != "b" {
		t.Fatalf("apps = %+v", res.Apps)
	}
}

func TestVerifyShardedPerTarget(t *testing.T) {
	v, err := Verify(twoTargetTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("verify mismatch: %s", v.Mismatch)
	}
	if len(v.Shards) != 2 || v.Shards[0].Target != "a" || v.Shards[1].Target != "b" {
		t.Fatalf("shards = %+v", v.Shards)
	}
	if v.Shards[0].Flips != 2 || v.Shards[1].Flips != 1 {
		t.Fatalf("per-target flips = %+v", v.Shards)
	}

	// Tamper with one shard only: the other must still match, the whole
	// verification must not.
	tam := twoTargetTrace()
	evs := tam.Events[:0]
	for _, ev := range tam.Events {
		if ev.Type == trace.EvGrant && ev.SID == 2 {
			continue
		}
		evs = append(evs, ev)
	}
	tam.Events = evs
	v2, err := Verify(tam)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Match {
		t.Fatal("tampered shard verified clean")
	}
	for _, sh := range v2.Shards {
		switch sh.Target {
		case "a":
			if sh.Match {
				t.Fatal("tampered target a verified clean")
			}
		case "b":
			if !sh.Match {
				t.Fatalf("untampered target b failed: %s", sh.Mismatch)
			}
		}
	}
}

// TestClientCapturePartitionPropagatesSession: a client-side capture
// records one register and one unregister per session, yet the session
// coordinates on two targets — the partitioner must attach it to both (at
// first touch) and detach it from both, so the replay sees every stream.
func TestClientCapturePartitionPropagatesSession(t *testing.T) {
	tr := &trace.Trace{
		Header: trace.Header{Source: trace.SourceClient, Policy: "fcfs"},
		Events: []trace.Event{
			{Type: trace.EvRegister, Time: 0, SID: 1, App: "A", Cores: 4}, // default target only
			{Type: trace.EvInform, Time: 1, SID: 1, Target: "x"},
			{Type: trace.EvWait, Time: 1, SID: 1, Target: "x"},
			{Type: trace.EvInform, Time: 2, SID: 1, Target: "y"},
			{Type: trace.EvWait, Time: 2, SID: 1, Target: "y"},
			{Type: trace.EvRelease, Time: 3, SID: 1, Bytes: 1, Target: "x"},
			{Type: trace.EvEnd, Time: 3, SID: 1, Target: "x"},
			{Type: trace.EvRelease, Time: 4, SID: 1, Bytes: 1, Target: "y"},
			{Type: trace.EvEnd, Time: 4, SID: 1, Target: "y"},
			{Type: trace.EvUnregister, Time: 5, SID: 1},
		},
	}
	res, err := Under(tr, core.FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GrantsServed != 2 {
		t.Fatalf("grants = %d, want 2 (one per target)", res.GrantsServed)
	}
	if len(res.Apps) != 2 || res.Apps[0].Target != "x" || res.Apps[1].Target != "y" {
		t.Fatalf("apps = %+v, want A on x and y", res.Apps)
	}
	for _, a := range res.Apps {
		if a.Name != "A" || a.Grants != 1 || a.Phases != 1 {
			t.Fatalf("app %+v", a)
		}
	}
}

// v1TraceBytes hand-encodes a version-1 trace file (the pre-target format:
// no per-record target field) for the two-app fcfs run twoAppTrace models.
func v1TraceBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("CALTRACE")
	le16 := func(v uint16) {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], v)
		buf.Write(b[:])
	}
	le32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	le64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	f64 := func(v float64) { le64(math.Float64bits(v)) }
	str := func(s string) {
		le16(uint16(len(s)))
		buf.WriteString(s)
	}
	le16(1) // version 1
	hdr := `{"source":"calciomd","policy":"fcfs"}`
	le16(uint16(len(hdr)))
	buf.WriteString(hdr)
	evs := twoAppTrace().Events
	for _, ev := range evs {
		buf.WriteByte(byte(ev.Type))
		f64(ev.Time)
		le32(ev.SID)
		switch ev.Type {
		case trace.EvRegister:
			str(ev.App)
			le32(uint32(ev.Cores))
		case trace.EvPrepare:
			keys := core.Info(ev.Info).Keys()
			le16(uint16(len(keys)))
			for _, k := range keys {
				str(k)
				str(ev.Info[k])
			}
		case trace.EvInform, trace.EvProgress, trace.EvRelease:
			f64(ev.Bytes)
		}
	}
	buf.WriteByte(0xFF) // trailer
	f64(0)
	le64(uint64(len(evs)))
	le64(0)
	return buf.Bytes()
}

// TestVerifyVersion1Trace pins the compatibility acceptance bar: a
// version-1 single-target trace file — written before targets existed —
// must still load and verify exactly (match=true) under the sharded replay.
func TestVerifyVersion1Trace(t *testing.T) {
	tr, err := trace.Read(bytes.NewReader(v1TraceBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != len(twoAppTrace().Events) {
		t.Fatalf("v1 decode dropped events: %d", len(tr.Events))
	}
	v, err := Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("v1 trace failed verification: %s", v.Mismatch)
	}
	if len(v.Shards) != 1 || v.Shards[0].Target != "" {
		t.Fatalf("v1 trace partitioned into %+v, want the single default shard", v.Shards)
	}
	if v.GrantsServed != 3 {
		t.Fatalf("grants = %d, want 3", v.GrantsServed)
	}
}
