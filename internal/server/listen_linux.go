//go:build linux

package server

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT. The syscall package's Linux constants
// predate the option, so it is spelled out here; the value is 15 on every
// Linux architecture Go supports.
const soReusePort = 0xf

// reuseportAvailable gates ListenAndServe's listener sharding: on Linux,
// accept_loops > 1 binds that many SO_REUSEPORT listeners so the kernel
// spreads incoming connections across independent accept queues instead of
// serializing every accept behind one listener lock.
const reuseportAvailable = true

// listenReuseport opens n TCP listeners on addr, each with SO_REUSEPORT
// set. The first listen resolves addr (so ":0" picks the port exactly
// once); the rest bind the resolved address. On any failure every listener
// opened so far is closed.
func listenReuseport(addr string, n int) ([]net.Listener, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", addr)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns = append(lns, ln)
		if i == 0 {
			addr = ln.Addr().String()
		}
	}
	return lns, nil
}
