package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestMuxStress races 64 logical sessions over 4 physical mux connections
// (run under -race in CI): every stream hammers grant cycles concurrently,
// so the shared demux loops, group-commit write loops, and client-side
// shared writers all interleave. It asserts grant conservation — every
// client-observed grant is accounted in the daemon's per-app stats, none
// lost or duplicated by the shared writers — and checks the mux metrics
// (connection labels, live-stream gauge, batch histogram) that the scrape
// surface exposes.
func TestMuxStress(t *testing.T) {
	const (
		conns    = 4
		sessions = 64
		cycles   = 25
		targets  = 8
	)
	srv, addr := startTestServer(t, Config{Metrics: obs.NewRegistry()})

	muxes := make([]*client.Mux, conns)
	for i := range muxes {
		m, err := client.DialMux(addr, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		muxes[i] = m
		defer m.Close()
	}

	var granted atomic.Uint64
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	clients := make([]*client.Client, sessions)
	for i := 0; i < sessions; i++ {
		c, err := muxes[i%conns].Client()
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			if err := c.Register(fmt.Sprintf("stress-%02d", i), 1); err != nil {
				errs[i] = err
				return
			}
			tg := c.Target(fmt.Sprintf("t%d", i%targets))
			in := core.Info{}
			in.SetFloat(core.KeyBytesTotal, 1)
			for k := 0; k < cycles; k++ {
				if err := tg.Prepare(in); err != nil {
					errs[i] = err
					return
				}
				if err := tg.Inform(); err != nil {
					errs[i] = err
					return
				}
				if err := tg.Wait(); err != nil {
					errs[i] = err
					return
				}
				granted.Add(1)
				if err := tg.Release(1); err != nil {
					errs[i] = err
					return
				}
				if err := tg.Complete(); err != nil {
					errs[i] = err
					return
				}
				if err := tg.End(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// Grant conservation: the daemon's per-app accounting must equal the
	// grants the clients observed — the shared write loops delivered every
	// grant exactly once (a lost grant hangs a Wait; a duplicated one would
	// inflate the daemon-side count).
	st, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	var served uint64
	for i := range st.Apps {
		served += st.Apps[i].Grants
	}
	if want := granted.Load(); served != want {
		t.Fatalf("daemon accounted %d grants, clients observed %d", served, want)
	}
	if st.Sessions != sessions {
		t.Fatalf("daemon sees %d sessions, want %d", st.Sessions, sessions)
	}

	// Mux observability: the connection counter carries the mux label, the
	// gauge tracks the live stream table, and group commit observed batches.
	if got := srv.m.connsBinaryMux.Value(); got != conns {
		t.Fatalf("connsBinaryMux = %d, want %d", got, conns)
	}
	if got := srv.m.muxStreams.Value(); got != sessions {
		t.Fatalf("muxStreams gauge = %d, want %d live streams", got, sessions)
	}
	if s := srv.m.muxBatchFrames.Snapshot(); s.Count == 0 {
		t.Fatal("muxBatchFrames histogram observed no group-commit flushes")
	}

	// Dropping the physical connections retires every stream.
	for _, m := range muxes {
		m.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.m.muxStreams.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("muxStreams gauge stuck at %d after close", srv.m.muxStreams.Value())
		}
		time.Sleep(time.Millisecond)
	}
}
