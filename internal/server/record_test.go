package server

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/wire"
)

// driveSerialized pushes a fixed multi-app workload through the arbitration
// core directly (no network), the same shape as
// TestDeterministicGivenSerializedOrder.
func driveSerialized(srv *Server, apps, rounds int) {
	ss := make([]*session, apps)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%d", i), Cores: 16 * (i + 1)})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000"}})
	}
	for round := 0; round < rounds; round++ {
		for _, s := range ss {
			srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeInform})
			srv.handle(s, wire.Request{Seq: 4, Type: wire.TypeWait})
		}
		for _, s := range ss {
			srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease, BytesDone: float64(100 * (round + 1))})
			srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		}
	}
}

// TestRecordedTraceVerifiesExactly is the determinism acceptance test in
// miniature: a recorded fcfs run, replayed under fcfs, must reproduce the
// live authorization-flip sequence event for event and serve the same
// number of grants.
func TestRecordedTraceVerifiesExactly(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), Trace: w})
	if err != nil {
		t.Fatal(err)
	}
	driveSerialized(srv, 3, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Dropped() != 0 {
		t.Fatalf("%d events dropped", w.Dropped())
	}

	tr, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	v, err := replay.Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("replay diverged from recording: %s", v.Mismatch)
	}
	if len(v.Recorded) == 0 {
		t.Fatal("no flips recorded")
	}
	// The per-app wait decomposition must agree with the live snapshot too:
	// same classification logic, same instants.
	st := srv.snapshot(srv.clock())
	if v.GrantsServed != st.GrantsServed {
		t.Fatalf("replayed grants = %d, live = %d", v.GrantsServed, st.GrantsServed)
	}
	if v.Arbitrations != st.Arbitrations {
		t.Fatalf("replayed arbitrations = %d, live = %d", v.Arbitrations, st.Arbitrations)
	}
	if len(st.Apps) != len(v.Apps) {
		t.Fatalf("apps: live %d, replay %d", len(st.Apps), len(v.Apps))
	}
	for i, la := range st.Apps {
		ra := v.Apps[i]
		if la.Name != ra.Name || la.Grants != ra.Grants ||
			la.WaitsImmediate != ra.WaitsImmediate || la.WaitsDeferred != ra.WaitsDeferred ||
			la.ConvoyWaitS != ra.ConvoyWaitS || la.ProtocolWaitS != ra.ProtocolWaitS {
			t.Fatalf("app %d decomposition diverged:\nlive   %+v\nreplay %+v", i, la, ra)
		}
	}
}

// TestRecordUnderLoad runs a real daemon with recording enabled under 16
// concurrent network clients (the CI race job runs this with -race), then
// verifies the trace reproduces the live run exactly.
func TestRecordUnderLoad(t *testing.T) {
	const clients, phases, steps = 16, 3, 3
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}, Trace: w})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := stressClient(t, addr, fmt.Sprintf("app-%03d", i), phases, steps, func() {}, func() {}, nil, nil); err != nil {
				errs <- fmt.Errorf("app-%03d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	live := srv.Stats()
	srv.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped != 0 {
		t.Fatalf("%d events dropped under load", tr.Dropped)
	}
	v, err := replay.Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("replay diverged from live run: %s", v.Mismatch)
	}
	if want := uint64(clients * phases * steps); v.GrantsServed != want || live.GrantsServed != want {
		t.Fatalf("grants: replay %d, live %d, want %d", v.GrantsServed, live.GrantsServed, want)
	}
}

// TestRecordingStaysAllocFree pins the acceptance bar: with recording
// enabled, the arbitration steady state (release, end, inform, wait, one
// deferred grant) performs zero allocations — identical to the unrecorded
// hot path.
func TestRecordingStaysAllocFree(t *testing.T) {
	w, err := trace.NewWriter(io.Discard, trace.Header{Policy: "fcfs"}, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), Trace: w})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	ss := make([]*session, k)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%02d", i), Cores: 64})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000000"}})
		srv.handle(ss[i], wire.Request{Seq: 3, Type: wire.TypeInform})
		srv.handle(ss[i], wire.Request{Seq: 4, Type: wire.TypeWait})
	}
	n := 0
	cycle := func() {
		s := ss[n%k]
		n++
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	for i := 0; i < 256; i++ {
		cycle() // warm the decision-log ring and the writer's scratch
	}
	if allocs := testing.AllocsPerRun(512, cycle); allocs != 0 {
		t.Fatalf("recording adds %.2f allocs per arbitration cycle, want 0", allocs)
	}
}

// BenchmarkServerArbitrateRecording is BenchmarkServerArbitrate with trace
// recording enabled: the acceptance criterion is identical allocs/op (0).
func BenchmarkServerArbitrateRecording(b *testing.B) {
	w, err := trace.NewWriter(io.Discard, trace.Header{Policy: "fcfs"}, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), Trace: w})
	if err != nil {
		b.Fatal(err)
	}
	const k = 16
	ss := make([]*session, k)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%02d", i), Cores: 64})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000000"}})
		srv.handle(ss[i], wire.Request{Seq: 3, Type: wire.TypeInform})
		srv.handle(ss[i], wire.Request{Seq: 4, Type: wire.TypeWait})
	}
	cycle := func(holder int) {
		s := ss[holder]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	for n := 0; n < 128; n++ {
		cycle(n % k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cycle(n % k)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
}

// denyFirstPolicy denies everyone on the first arbitration and falls back
// to fcfs afterwards: it manufactures a deferred Wait with no other holder,
// the protocol (non-convoy) bucket of the wait decomposition.
type denyFirstPolicy struct{ calls *int }

func (denyFirstPolicy) Name() string { return "deny-first" }

func (p denyFirstPolicy) Arbitrate(now float64, apps []core.AppView) core.Decision {
	*p.calls++
	if *p.calls == 1 {
		return core.Decision{Allowed: map[string]bool{}, Reason: "warming up"}
	}
	return core.AllowOnly(apps[0].Name, "fcfs after warmup")
}

// TestConvoyProtocolBreakdown checks both buckets of the wait
// decomposition with exact logical-clock arithmetic.
func TestConvoyProtocolBreakdown(t *testing.T) {
	t.Run("convoy", func(t *testing.T) {
		srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock()})
		if err != nil {
			t.Fatal(err)
		}
		a := &session{out: make(chan wire.Response, 16)}
		b := &session{out: make(chan wire.Response, 16)}
		srv.handle(a, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 1})
		srv.handle(b, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "B", Cores: 1})
		srv.handle(a, wire.Request{Seq: 2, Type: wire.TypeInform})
		srv.handle(a, wire.Request{Seq: 3, Type: wire.TypeWait}) // immediate
		srv.handle(b, wire.Request{Seq: 2, Type: wire.TypeInform})
		srv.handle(b, wire.Request{Seq: 3, Type: wire.TypeWait}) // deferred behind A
		srv.handle(a, wire.Request{Seq: 4, Type: wire.TypeRelease})
		srv.handle(a, wire.Request{Seq: 5, Type: wire.TypeEnd}) // grants B

		ba, bb := testBinding(srv, a), testBinding(srv, b)
		if ba.waitsImmediate != 1 || ba.waitsDeferred != 0 {
			t.Fatalf("A immediate/deferred = %d/%d, want 1/0", ba.waitsImmediate, ba.waitsDeferred)
		}
		if bb.waitsDeferred != 1 || bb.convoyWait <= 0 || bb.protoWait != 0 {
			t.Fatalf("B deferred=%d convoy=%g proto=%g, want deferred behind A in the convoy bucket",
				bb.waitsDeferred, bb.convoyWait, bb.protoWait)
		}
		st := srv.snapshot(srv.clock())
		// A: 1 immediate; B: 1 deferred. Aggregates mirror that.
		if st.WaitsImmediate != 1 || st.WaitsDeferred != 1 {
			t.Fatalf("aggregate immediate/deferred = %d/%d, want 1/1", st.WaitsImmediate, st.WaitsDeferred)
		}
		if st.ConvoyWaitS != bb.convoyWait || st.ProtocolWaitS != 0 {
			t.Fatalf("aggregate convoy/proto = %g/%g", st.ConvoyWaitS, st.ProtocolWaitS)
		}
		// The aggregates are cumulative like GrantsServed: a departed
		// session's decomposition stays in the machine-wide sums.
		convoyBefore := st.ConvoyWaitS
		srv.drop(b, "test disconnect")
		st2 := srv.snapshot(srv.clock())
		if st2.WaitsImmediate != 1 || st2.WaitsDeferred != 1 || st2.ConvoyWaitS != convoyBefore {
			t.Fatalf("aggregates shrank after disconnect: %+v", st2)
		}
	})
	t.Run("protocol", func(t *testing.T) {
		calls := 0
		srv, err := New(Config{Policy: denyFirstPolicy{&calls}, Clock: logicalClock()})
		if err != nil {
			t.Fatal(err)
		}
		a := &session{}
		srv.handle(a, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 1})
		srv.handle(a, wire.Request{Seq: 2, Type: wire.TypeInform}) // arbitration 1: denied
		srv.handle(a, wire.Request{Seq: 3, Type: wire.TypeWait})   // deferred, nobody authorized
		srv.handle(a, wire.Request{Seq: 4, Type: wire.TypeInform}) // arbitration 2: granted
		ba := testBinding(srv, a)
		if ba.waitsDeferred != 1 || ba.protoWait <= 0 || ba.convoyWait != 0 {
			t.Fatalf("deferred=%d proto=%g convoy=%g, want the protocol bucket", ba.waitsDeferred, ba.protoWait, ba.convoyWait)
		}
	})
}
