package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestShardedTargetsIsolated drives two targets inline: a deferred waiter
// behind the fcfs holder on target "a" must not delay an arrival on target
// "b", and the merged stats must break the traffic down per target.
func TestShardedTargetsIsolated(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	hold := &session{out: make(chan wire.Response, 16)}
	wait := &session{out: make(chan wire.Response, 16)}
	other := &session{out: make(chan wire.Response, 16)}
	srv.handle(hold, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "hold", Cores: 1})
	srv.handle(wait, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "wait", Cores: 1})
	srv.handle(other, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "other", Cores: 1})

	srv.handle(hold, wire.Request{Seq: 2, Type: wire.TypeInform, Target: "a"})
	srv.handle(hold, wire.Request{Seq: 3, Type: wire.TypeWait, Target: "a"}) // immediate: holds a
	srv.handle(wait, wire.Request{Seq: 2, Type: wire.TypeInform, Target: "a"})
	srv.handle(wait, wire.Request{Seq: 3, Type: wire.TypeWait, Target: "a"}) // deferred behind hold

	// Target b is a different coordination domain: other is granted at once
	// even though a's arbiter has a queue.
	srv.handle(other, wire.Request{Seq: 2, Type: wire.TypeInform, Target: "b"})
	srv.handle(other, wire.Request{Seq: 3, Type: wire.TypeWait, Target: "b"})
	bo := testBindingOn(srv, other, "b")
	if bo == nil || bo.waitsImmediate != 1 || !bo.app.Authorized() {
		t.Fatalf("target b arrival was not served immediately: %+v", bo)
	}
	bw := testBindingOn(srv, wait, "a")
	if bw.waitSeq == 0 {
		t.Fatal("target a waiter not deferred behind the holder")
	}

	st := srv.snapshot(srv.clock())
	if st.GrantsServed != 2 {
		t.Fatalf("grants = %d, want 2 (hold on a, other on b)", st.GrantsServed)
	}
	if len(st.Targets) != 2 || st.Targets[0].Target != "a" || st.Targets[1].Target != "b" {
		t.Fatalf("target breakdown = %+v", st.Targets)
	}
	if st.Targets[0].GrantsServed != 1 || st.Targets[0].Apps != 2 {
		t.Fatalf("target a breakdown = %+v", st.Targets[0])
	}
	if st.Targets[1].GrantsServed != 1 || st.Targets[1].Apps != 1 {
		t.Fatalf("target b breakdown = %+v", st.Targets[1])
	}
	// Apps rows are per (name, target); the session names appear under
	// their targets only.
	if len(st.Apps) != 3 {
		t.Fatalf("app rows = %+v", st.Apps)
	}
	for _, a := range st.Apps {
		want := "a"
		if a.Name == "other" {
			want = "b"
		}
		if a.Target != want {
			t.Fatalf("app %s on target %q, want %q", a.Name, a.Target, want)
		}
	}

	// Releasing the holder grants the waiter on a; b is untouched.
	srv.handle(hold, wire.Request{Seq: 4, Type: wire.TypeRelease, Target: "a"})
	srv.handle(hold, wire.Request{Seq: 5, Type: wire.TypeEnd, Target: "a"})
	if bw.waitSeq != 0 || !bw.app.Authorized() {
		t.Fatal("target a waiter not granted after holder ended")
	}
}

// TestShardedDefaultTargetRouting: a session registered with a default
// target coordinates there without naming it on every request.
func TestShardedDefaultTargetRouting(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	s := &session{out: make(chan wire.Response, 16)}
	srv.handle(s, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 1, Target: "bb0"})
	srv.handle(s, wire.Request{Seq: 2, Type: wire.TypeInform}) // no Target: routes to bb0
	srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeWait})
	if b := testBindingOn(srv, s, "bb0"); b == nil || b.grants != 1 {
		t.Fatalf("default-target request did not route to bb0: %+v", b)
	}
	if sh := srv.shards[""]; sh != nil && len(sh.bindings) != 0 {
		t.Fatalf("default shard unexpectedly attached the session")
	}
}

// TestMaxTargetsBound: a client cannot grow the shard set past the
// configured bound — the request naming one target too many is rejected,
// and no shard is created for it.
func TestMaxTargetsBound(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), MaxTargets: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := &session{out: make(chan wire.Response, 16)}
	srv.handle(s, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 1})
	srv.handle(s, wire.Request{Seq: 2, Type: wire.TypeInform, Target: "t1"})
	srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeEnd, Target: "t1"})
	srv.handle(s, wire.Request{Seq: 4, Type: wire.TypeInform, Target: "t2"})
	srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeEnd, Target: "t2"})
	srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeInform, Target: "t3"})
	var last wire.Response
	for {
		select {
		case r := <-s.out:
			last = r
		default:
			goto done
		}
	}
done:
	if last.Seq != 6 || last.Err == "" || !strings.Contains(last.Err, "too many storage targets") {
		t.Fatalf("third target not rejected: %+v", last)
	}
	if len(srv.shards) != 2 {
		t.Fatalf("shard set grew past the bound: %d", len(srv.shards))
	}
}

// TestPipelinedRegisterInformNotMisrouted: a client that pipelines
// coordination frames behind its register (without awaiting the response)
// must have those frames land on its registered default target — never
// silently misrouted to the default shard "" — in order: the wait pipelined
// after the inform must see the informed phase, even though the inform may
// travel through the control goroutine while the wait is routed directly.
func TestPipelinedRegisterInformNotMisrouted(t *testing.T) {
	srv, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	for _, req := range []wire.Request{
		{Seq: 1, Type: wire.TypeRegister, App: "P", Cores: 1, Target: "x"},
		{Seq: 2, Type: wire.TypeInform},
		{Seq: 3, Type: wire.TypeWait},
		{Seq: 4, Type: wire.TypeRelease, BytesDone: 1},
		{Seq: 5, Type: wire.TypeEnd},
	} {
		if err := wire.Write(bw, req); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewReader(bufio.NewReader(conn))
	got := map[uint64]wire.Response{}
	for len(got) < 5 {
		var r wire.Response
		if err := dec.Read(&r); err != nil {
			t.Fatal(err)
		}
		if r.Seq != 0 {
			got[r.Seq] = r
		}
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if !got[seq].OK {
			t.Fatalf("pipelined request %d failed: %+v", seq, got[seq])
		}
	}
	for seq := uint64(2); seq <= 5; seq++ {
		if got[seq].Target != "x" {
			t.Fatalf("pipelined request %d not routed to the registered default target: %+v", seq, got[seq])
		}
	}
	st := srv.Stats()
	if len(st.Apps) != 1 || st.Apps[0].Target != "x" || st.Apps[0].Grants != 1 {
		t.Fatalf("session state after pipelined phase: %+v", st.Apps)
	}
}

// shardedClient drives one application on one target through its phases,
// wrapping every exclusively held access step in onGrant/onRelease.
func shardedClient(addr, name, target string, phases, steps int, onGrant, onRelease func()) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterOn(name, 8, target); err != nil {
		return err
	}
	tg := c.Target(target)
	in := core.Info{}
	in.SetFloat(core.KeyBytesTotal, float64(steps))
	for p := 0; p < phases; p++ {
		if err := tg.Prepare(in); err != nil {
			return err
		}
		if err := tg.Inform(); err != nil {
			return err
		}
		if err := tg.Wait(); err != nil {
			return err
		}
		for s := 0; s < steps; s++ {
			onGrant()
			onRelease()
			if err := tg.Release(float64(s + 1)); err != nil {
				return err
			}
			if s < steps-1 {
				if err := tg.Inform(); err != nil {
					return err
				}
				if err := tg.Wait(); err != nil {
					return err
				}
			}
		}
		if err := tg.Complete(); err != nil {
			return err
		}
		if err := tg.End(); err != nil {
			return err
		}
	}
	return nil
}

// TestStressShardedExactlyOneWriterPerTarget floods a live daemon with K
// targets × N clients under fcfs (the CI race job runs this with -race):
// within each target at most one application may hold an authorized access
// step at any instant, while the targets progress independently.
func TestStressShardedExactlyOneWriterPerTarget(t *testing.T) {
	const targets, clientsPerTarget, phases, steps = 4, 12, 3, 2
	srv, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}})

	active := make([]atomic.Int32, targets)
	var violations atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan error, targets*clientsPerTarget)
	for ti := 0; ti < targets; ti++ {
		target := fmt.Sprintf("t%d", ti)
		onGrant := func() {
			if n := active[ti].Add(1); n != 1 {
				violations.Add(1)
			}
			time.Sleep(50 * time.Microsecond) // widen the window a little
		}
		onRelease := func() { active[ti].Add(-1) }
		for i := 0; i < clientsPerTarget; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				if err := shardedClient(addr, name, target, phases, steps, onGrant, onRelease); err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
				}
			}(fmt.Sprintf("app-%s-%03d", target, i))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exactly-one-writer violations within a target under fcfs", v)
	}
	st := srv.Stats()
	want := uint64(targets * clientsPerTarget * phases * steps)
	if st.GrantsServed != want {
		t.Fatalf("grants = %d, want %d", st.GrantsServed, want)
	}
	if len(st.Targets) != targets {
		t.Fatalf("target breakdown has %d entries, want %d: %+v", len(st.Targets), targets, st.Targets)
	}
	per := want / targets
	for _, ts := range st.Targets {
		if ts.GrantsServed != per {
			t.Fatalf("target %s served %d grants, want %d", ts.Target, ts.GrantsServed, per)
		}
	}
}

// TestShardedGrantNeverBlocksOtherTarget pins cross-target independence on
// a live daemon: while a holder sits on target A without releasing, a
// client on target B must complete an entire workload.
func TestShardedGrantNeverBlocksOtherTarget(t *testing.T) {
	_, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}})

	holder, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.RegisterOn("holder", 8, "A"); err != nil {
		t.Fatal(err)
	}
	ha := holder.Target("A")
	if err := ha.Inform(); err != nil {
		t.Fatal(err)
	}
	if err := ha.Wait(); err != nil {
		t.Fatal(err)
	}
	// A second session queues behind the holder on A, proving A's arbiter
	// really is occupied while B proceeds.
	blocked, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()
	if err := blocked.RegisterOn("blocked", 8, "A"); err != nil {
		t.Fatal(err)
	}
	if err := blocked.Target("A").Inform(); err != nil {
		t.Fatal(err)
	}
	blockedDone := make(chan error, 1)
	go func() { blockedDone <- blocked.Target("A").Wait() }()

	done := make(chan error, 1)
	go func() {
		done <- shardedClient(addr, "runner", "B", 2, 2, func() {}, func() {})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("target B workload failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target B workload convoyed behind target A's holder")
	}
	select {
	case err := <-blockedDone:
		t.Fatalf("target A waiter returned while holder held access: %v", err)
	default:
	}
	if err := ha.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := ha.End(); err != nil {
		t.Fatal(err)
	}
	if err := <-blockedDone; err != nil {
		t.Fatalf("target A waiter after holder ended: %v", err)
	}
}

// driveShardedSerialized pushes a fixed multi-target workload through the
// arbitration core inline: apps sessions per target, each running rounds of
// inform/wait + release/end on its own target.
func driveShardedSerialized(srv *Server, targets, apps, rounds int) {
	ss := make(map[string][]*session, targets)
	var order []string
	for ti := 0; ti < targets; ti++ {
		target := fmt.Sprintf("t%d", ti)
		order = append(order, target)
		for i := 0; i < apps; i++ {
			s := &session{}
			srv.handle(s, wire.Request{Seq: 1, Type: wire.TypeRegister,
				App: fmt.Sprintf("app-%s-%d", target, i), Cores: 8, Target: target})
			srv.handle(s, wire.Request{Seq: 2, Type: wire.TypePrepare,
				Info: map[string]string{core.KeyBytesTotal: "1000"}, Target: target})
			ss[target] = append(ss[target], s)
		}
	}
	for round := 0; round < rounds; round++ {
		for _, target := range order {
			for _, s := range ss[target] {
				srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeInform, Target: target})
				srv.handle(s, wire.Request{Seq: 4, Type: wire.TypeWait, Target: target})
			}
		}
		for _, target := range order {
			for _, s := range ss[target] {
				srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease, BytesDone: float64(100 * (round + 1)), Target: target})
				srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd, Target: target})
			}
		}
	}
}

// TestRecordShardedVerifiesPerTarget is the sharded determinism acceptance
// test in miniature: a recorded multi-target fcfs run must verify per
// target — each shard's replayed grant sequence equals its recorded one —
// and the per-target grant counts must come out exact.
func TestRecordShardedVerifiesPerTarget(t *testing.T) {
	const targets, apps, rounds = 3, 2, 4
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Source: trace.SourceDaemon, Policy: "fcfs"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), Trace: w})
	if err != nil {
		t.Fatal(err)
	}
	driveShardedSerialized(srv, targets, apps, rounds)
	st := srv.snapshot(srv.clock())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	v, err := replay.Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Match {
		t.Fatalf("sharded replay diverged from recording: %s", v.Mismatch)
	}
	if len(v.Shards) != targets {
		t.Fatalf("verified %d shards, want %d", len(v.Shards), targets)
	}
	per := uint64(apps * rounds)
	for _, sh := range v.Shards {
		if !sh.Match {
			t.Fatalf("shard %s mismatched: %s", sh.Target, sh.Mismatch)
		}
		if sh.GrantsServed != per {
			t.Fatalf("shard %s replayed %d grants, want %d", sh.Target, sh.GrantsServed, per)
		}
	}
	if v.GrantsServed != st.GrantsServed {
		t.Fatalf("replayed grants = %d, live = %d", v.GrantsServed, st.GrantsServed)
	}
	if v.Arbitrations != st.Arbitrations {
		t.Fatalf("replayed arbitrations = %d, live = %d", v.Arbitrations, st.Arbitrations)
	}
	// The merged per-app decomposition must agree with the live snapshot:
	// both are sorted by (name, target).
	if len(st.Apps) != len(v.Apps) {
		t.Fatalf("apps: live %d, replay %d", len(st.Apps), len(v.Apps))
	}
	for i, la := range st.Apps {
		ra := v.Apps[i]
		if la.Name != ra.Name || la.Target != ra.Target || la.Grants != ra.Grants ||
			la.WaitsImmediate != ra.WaitsImmediate || la.WaitsDeferred != ra.WaitsDeferred ||
			la.ConvoyWaitS != ra.ConvoyWaitS || la.ProtocolWaitS != ra.ProtocolWaitS {
			t.Fatalf("app %d decomposition diverged:\nlive   %+v\nreplay %+v", i, la, ra)
		}
	}
}

// BenchmarkServerArbitrateSharded measures aggregate grant throughput for
// one fixed fleet — 64 sessions cycling release/end/inform/wait, the
// BenchmarkServerArbitrate shape — sharded across storage targets, with one
// driving goroutine per target (the daemon's per-shard arbitration
// goroutines without the network). targets=1 is the single-goroutine
// baseline: all 64 sessions in one arbiter. Sharding scales the aggregate
// two ways at once: each shard arbitrates over 64/targets applications
// (arbitration is O(apps) per grant — view rebuild, decision application,
// OtherAuthorized), and the shards run concurrently on however many cores
// the machine offers. The first effect alone shows up even on one core.
func BenchmarkServerArbitrateSharded(b *testing.B) {
	const fleet = 64
	for _, targets := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("targets=%d", targets), func(b *testing.B) {
			var tick atomic.Int64
			srv, err := New(Config{Policy: core.FCFSPolicy{},
				Clock: func() float64 { return float64(tick.Add(1)) * 1e-6 }})
			if err != nil {
				b.Fatal(err)
			}
			k := fleet / targets // sessions per target
			sess := make([][]*session, targets)
			for ti := 0; ti < targets; ti++ {
				sess[ti] = make([]*session, k)
				for i := range sess[ti] {
					s := &session{}
					sess[ti][i] = s
					srv.handle(s, wire.Request{Seq: 1, Type: wire.TypeRegister,
						App: fmt.Sprintf("app-%d-%02d", ti, i), Cores: 64, Target: fmt.Sprintf("t%d", ti)})
					srv.handle(s, wire.Request{Seq: 2, Type: wire.TypePrepare,
						Info: map[string]string{core.KeyBytesTotal: "1000000"}})
					srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeInform})
					srv.handle(s, wire.Request{Seq: 4, Type: wire.TypeWait})
				}
			}
			cycle := func(ti, n int) {
				s := sess[ti][n%k]
				srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
				srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
				srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
				srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
			}
			for ti := 0; ti < targets; ti++ {
				for n := 0; n < 128; n++ {
					cycle(ti, n) // warm each shard's decision-log ring
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for ti := 0; ti < targets; ti++ {
				iters := b.N / targets
				if ti < b.N%targets {
					iters++
				}
				wg.Add(1)
				go func(ti, iters int) {
					defer wg.Done()
					for n := 0; n < iters; n++ {
						cycle(ti, n)
					}
				}(ti, iters)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
		})
	}
}
