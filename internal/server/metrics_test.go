package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
)

// metricsServer is the BenchmarkServerArbitrate fixture with metrics and
// event collection enabled.
func metricsServer(tb testing.TB, k int) (*Server, []*session, *obs.Registry, *obs.EventLog) {
	reg := obs.NewRegistry()
	ev := obs.NewEventLog(slog.New(slog.NewTextHandler(io.Discard, nil)), 64, 0)
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(), Metrics: reg, Events: ev})
	if err != nil {
		tb.Fatal(err)
	}
	ss := make([]*session, k)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%02d", i), Cores: 64})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000000"}})
		srv.handle(ss[i], wire.Request{Seq: 3, Type: wire.TypeInform})
		srv.handle(ss[i], wire.Request{Seq: 4, Type: wire.TypeWait})
	}
	return srv, ss, reg, ev
}

// TestMetricsStayAllocFree pins the instrumented arbitration cycle at zero
// allocations, metrics and sampled event emission both enabled — the same
// guard recording has.
func TestMetricsStayAllocFree(t *testing.T) {
	srv, ss, _, ev := metricsServer(t, 8)
	defer ev.Close()
	n := 0
	cycle := func() {
		s := ss[n%len(ss)]
		n++
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	for i := 0; i < 256; i++ {
		cycle() // warm the decision-log ring and the event sampler
	}
	if allocs := testing.AllocsPerRun(512, cycle); allocs != 0 {
		t.Fatalf("metrics add %.2f allocs per arbitration cycle, want 0", allocs)
	}
}

// BenchmarkServerArbitrateMetrics is BenchmarkServerArbitrate with the obs
// registry and sampled event log enabled: the acceptance criterion is
// identical allocs/op (0).
func BenchmarkServerArbitrateMetrics(b *testing.B) {
	srv, ss, _, ev := metricsServer(b, 16)
	defer ev.Close()
	cycle := func(holder int) {
		s := ss[holder]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	for n := 0; n < 128; n++ {
		cycle(n % len(ss))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cycle(n % len(ss))
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
}

// TestMetricsMatchStats cross-checks the registry against the stats merge:
// the scrape-facing counters and the wire.Stats counters are two views of
// the same arbitration stream and must agree exactly.
func TestMetricsMatchStats(t *testing.T) {
	srv, ss, reg, ev := metricsServer(t, 4)
	defer ev.Close()
	for n := 0; n < 40; n++ {
		s := ss[n%len(ss)]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	st := srv.Stats()
	l := obs.Label{Key: "target", Value: ""}
	if got := reg.Counter("calciomd_grants_total", "", l).Value(); got != st.GrantsServed {
		t.Errorf("grants counter %d != stats GrantsServed %d", got, st.GrantsServed)
	}
	if got := reg.Counter("calciomd_arbitrations_total", "", l).Value(); got != st.Arbitrations {
		t.Errorf("arbitrations counter %d != stats Arbitrations %d", got, st.Arbitrations)
	}
	imm := reg.Counter("calciomd_waits_immediate_total", "", l).Value()
	def := reg.Counter("calciomd_waits_deferred_total", "", l).Value()
	if imm != st.WaitsImmediate || def != st.WaitsDeferred {
		t.Errorf("wait counters (%d, %d) != stats (%d, %d)", imm, def, st.WaitsImmediate, st.WaitsDeferred)
	}
	if st.WaitHist == nil {
		t.Fatal("stats carry no WaitHist with metrics enabled")
	}
	if st.WaitHist.Count != st.GrantsServed {
		t.Errorf("WaitHist.Count %d != GrantsServed %d (every wait observes)", st.WaitHist.Count, st.GrantsServed)
	}
	if q := st.WaitHist.Quantile(0.5); q < 0 {
		t.Errorf("median quantile %v", q)
	}
}

// TestAdminEndToEnd serves a traffic-bearing server's registry, health and
// status through obs.Admin and checks the scrape is consistent with stats.
func TestAdminEndToEnd(t *testing.T) {
	srv, ss, reg, ev := metricsServer(t, 4)
	defer ev.Close()
	for n := 0; n < 20; n++ {
		s := ss[n%len(ss)]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	admin := &obs.Admin{
		Registry: reg,
		Extra:    srv.WriteStatsMetrics,
		Health:   srv.Health,
		Status:   func() any { return srv.Stats() },
	}
	ts := httptest.NewServer(admin.Handler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	st := srv.Stats()
	body := get("/metrics")
	if want := fmt.Sprintf("calciomd_grants_total{target=\"\"} %d", st.GrantsServed); !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q", want)
	}
	if !strings.Contains(body, "calciomd_wait_seconds_bucket{target=\"\",le=\"+Inf\"}") {
		t.Error("/metrics missing wait histogram")
	}
	if want := `calciomd_app_grants_total{app="app-00",target=""}`; !strings.Contains(body, want) {
		t.Errorf("/metrics missing per-app row %q", want)
	}
	if !strings.Contains(body, fmt.Sprintf("calciomd_sessions %d", st.Sessions)) {
		t.Error("/metrics missing sessions gauge")
	}
	if got := get("/healthz"); got != "serving\n" {
		t.Errorf("/healthz: %q", got)
	}
	if got := get("/statusz"); !strings.Contains(got, `"policy": "fcfs"`) {
		t.Errorf("/statusz missing policy: %q", got)
	}
}
