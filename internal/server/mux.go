package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

// Session multiplexing (protocol version wire.VersionBinaryMux): one
// physical connection carries many logical sessions, each a stream id in
// the frame prefix. The demux loop (serveMux, on the accepting goroutine)
// owns the stream table and feeds the same routing path plain connections
// use — every stream is an ordinary *session to the control and shard
// goroutines. The shared write loop (muxWriteLoop) group-commits: it drains
// every response queued across all streams into the buffered writer and
// flushes once, so K concurrent grant cycles cost ~1 write syscall instead
// of K. The per-connection rate limiter and byte accounting cover the
// physical connection, which is what the syscall budget cares about.

// maxMuxStreams bounds one connection's stream table so a misbehaving
// client cannot grow daemon state without bound; crossing it drops the
// connection.
const maxMuxStreams = 1 << 16

// muxWriteBufferBytes sizes the shared write loop's buffer. Larger than the
// per-session 4KiB default because one flush carries frames for many
// streams.
const muxWriteBufferBytes = 32 << 10

// muxResp pairs a queued response with the stream session it belongs to;
// the write loop stamps the stream id at encode time.
type muxResp struct {
	s    *session
	resp wire.Response
}

// muxConn is the shared half of a mux connection: the response queue all
// streams feed and the teardown latch. The stream table itself lives in
// serveMux's locals — only the demux loop touches it.
type muxConn struct {
	srv       *Server
	conn      net.Conn
	wr        io.Writer
	out       chan muxResp
	quit      chan struct{} // closed at teardown; the write loop drains and exits
	dead      atomic.Bool
	torn      atomic.Bool
	slowDrops *obs.Counter
}

// send enqueues one stream's response without ever blocking an arbitration
// goroutine. Overflow kills the whole connection — with one write loop per
// connection there is no way to disconnect a single slow stream, and a
// client that cannot drain its shared socket has already lost every stream
// on it.
func (mc *muxConn) send(s *session, r wire.Response) {
	if mc.dead.Load() {
		return
	}
	select {
	case mc.out <- muxResp{s, r}:
	default:
		mc.dead.Store(true)
		if mc.slowDrops != nil {
			mc.slowDrops.Inc()
		}
		mc.conn.Close()
	}
}

// teardown ends the shared write loop (which closes the connection).
// Idempotent.
func (mc *muxConn) teardown() {
	mc.dead.Store(true)
	if mc.torn.CompareAndSwap(false, true) {
		close(mc.quit)
	}
}

// serveMux is the demux loop of one mux connection, run on the accepting
// goroutine after negotiation. It owns the stream table: the first frame
// naming an unknown stream id opens that stream as a fresh session (with
// its own register deadline), and frames for dropped streams reopen them —
// the client is expected to register again, exactly as it would after a
// reconnect on a plain connection.
func (srv *Server) serveMux(conn net.Conn, br *bufio.Reader, wr io.Writer) {
	buf := srv.cfg.WriteBuffer
	if buf <= 0 {
		buf = 256
	}
	mc := &muxConn{srv: srv, conn: conn, wr: wr, quit: make(chan struct{}),
		// One queue for every stream: scaled up from the per-session buffer
		// so a grant storm across thousands of streams is absorbed by
		// batching rather than tripping the overflow disconnect.
		out: make(chan muxResp, 16*buf)}
	if srv.m != nil {
		mc.slowDrops = srv.m.slowDisconnects
	}
	srv.wg.Add(1)
	go srv.muxWriteLoop(mc)
	dec := wirebin.NewMuxRequestReader(br)
	rl := srv.newRateLimiter()
	streams := make(map[uint64]*session)
	defer func() {
		for _, s := range streams {
			select {
			case srv.reqCh <- envelope{kind: kindDisconnect, s: s}:
			case <-srv.stop:
			}
		}
		if srv.m != nil {
			srv.m.muxStreams.Add(-int64(len(streams)))
		}
		mc.teardown()
	}()
	// A negotiated-but-silent mux connection has no streams yet, hence no
	// per-stream register deadline; keep the read deadline armed until the
	// first frame so it cannot park forever.
	deadline := srv.cfg.HandshakeTimeout > 0
	if deadline {
		conn.SetReadDeadline(time.Now().Add(srv.cfg.HandshakeTimeout))
	}
	for {
		var req wire.Request
		sid, err := dec.Read(&req)
		if err != nil {
			if deadline && len(streams) == 0 {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					if srv.m != nil {
						srv.m.handshakeTimeouts.Inc()
					}
					srv.logf("calciomd: dropping unregistered connection: handshake timeout")
				}
			}
			return
		}
		if deadline {
			conn.SetReadDeadline(time.Time{})
			deadline = false
		}
		if req.Seq == 0 {
			return // reserved for pushes; a zero Seq is a client bug
		}
		s := streams[sid]
		if s != nil && s.gone.Load() {
			// The stream was dropped (idle eviction, register deadline)
			// while the connection lived on; forget it so the frame reopens
			// the stream below.
			delete(streams, sid)
			if srv.m != nil {
				srv.m.muxStreams.Add(-1)
			}
			s = nil
		}
		if s == nil {
			if len(streams) >= maxMuxStreams {
				srv.logf("calciomd: mux connection exceeded %d streams, dropping", maxMuxStreams)
				return
			}
			s = &session{conn: conn, mc: mc, stream: sid, slowDrops: mc.slowDrops}
			if !srv.announce(s) {
				return
			}
			streams[sid] = s
			if srv.m != nil {
				srv.m.muxStreams.Add(1)
			}
		}
		admit, kill := rl.admit(srv, s, &req)
		if kill {
			return
		}
		if !admit {
			continue
		}
		if !srv.route(s, req) {
			return
		}
	}
}

// muxWriteLoop is the group-commit writer shared by every stream on one mux
// connection: each wakeup drains everything queued across all streams into
// the buffered writer and flushes once.
func (srv *Server) muxWriteLoop(mc *muxConn) {
	defer srv.wg.Done()
	defer mc.conn.Close()
	bw := bufio.NewWriterSize(mc.wr, muxWriteBufferBytes)
	var scratch []byte
	write := func(mr muxResp) {
		buf, err := wirebin.AppendMuxResponse(scratch[:0], mr.s.stream, &mr.resp)
		if err != nil {
			return // unencodable response; drop it, not the connection
		}
		scratch = buf
		if _, err := bw.Write(buf); err != nil {
			mc.dead.Store(true)
		}
	}
	// drain empties the queue without blocking and returns how many frames
	// joined the batch.
	drain := func(n int) int {
		for {
			select {
			case mr := <-mc.out:
				write(mr)
				n++
				continue
			default:
			}
			return n
		}
	}
	flush := func(n int) {
		if err := bw.Flush(); err != nil {
			mc.dead.Store(true)
		}
		if n > 0 && srv.m != nil {
			srv.m.muxBatchFrames.Observe(float64(n))
		}
	}
	for {
		select {
		case mr := <-mc.out:
			write(mr)
			// The sending shard parked this goroutine in the scheduler's
			// run-next slot; step behind the other runnable goroutines so
			// responses they are about to queue join this flush instead of
			// paying for their own.
			runtime.Gosched()
			flush(drain(1))
		case <-mc.quit:
			// Drain what the arbitration goroutines queued before teardown.
			flush(drain(0))
			return
		case <-srv.stop:
			// Shutdown: closing the connection unblocks the demux loop,
			// whose teardown path owns the per-stream disconnects.
			flush(drain(0))
			return
		}
	}
}
