package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// stressClient drives one application through its phases with raw
// coordination calls, invoking onGrant/onRelease around every exclusively
// held access step. A non-nil hold keeps the connection open after the work
// is done (onDone is called at that point) until the channel is closed, so
// tests can snapshot stats with all sessions still registered.
func stressClient(t *testing.T, addr, name string, phases, steps int,
	onGrant, onRelease func(), onDone func(), hold <-chan struct{}) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if hold != nil {
		defer func() { <-hold }()
	}
	if onDone != nil {
		defer onDone()
	}
	if err := c.Register(name, 32); err != nil {
		return err
	}
	in := core.Info{}
	in.SetFloat(core.KeyBytesTotal, float64(steps))
	for p := 0; p < phases; p++ {
		if err := c.Prepare(in); err != nil {
			return err
		}
		if err := c.Inform(); err != nil {
			return err
		}
		if err := c.Wait(); err != nil {
			return err
		}
		for s := 0; s < steps; s++ {
			onGrant()
			onRelease()
			if err := c.Release(float64(s + 1)); err != nil {
				return err
			}
			if s < steps-1 {
				if err := c.Inform(); err != nil {
					return err
				}
				if err := c.Wait(); err != nil {
					return err
				}
			}
		}
		if err := c.Complete(); err != nil {
			return err
		}
		if err := c.End(); err != nil {
			return err
		}
	}
	return nil
}

// TestStressFCFSExactlyOneWriter floods the daemon with concurrent sessions
// issuing interleaved Prepare/Wait/Release and asserts the fcfs invariant:
// at any instant at most one application holds an authorized access step.
// Run with -race (the CI race job does) to also exercise the
// connection/arbitration goroutine handoffs.
func TestStressFCFSExactlyOneWriter(t *testing.T) {
	const clients, phases, steps = 48, 3, 3
	_, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}})

	var active atomic.Int32
	var violations atomic.Int32
	onGrant := func() {
		if n := active.Add(1); n != 1 {
			violations.Add(1)
		}
		time.Sleep(50 * time.Microsecond) // widen the window a little
	}
	onRelease := func() { active.Add(-1) }

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := stressClient(t, addr, fmt.Sprintf("app-%03d", i), phases, steps, onGrant, onRelease, nil, nil); err != nil {
				errs <- fmt.Errorf("app-%03d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exactly-one-writer violations under fcfs", v)
	}
}

// TestStressInterruptSingleAuthorization runs the same flood under the
// interruption policy. Here the one-writer guarantee is weaker by design —
// a preempted holder pauses only at its next coordination point (paper
// §III-A2) — so the invariant is checked where it does hold: every logged
// decision authorizes at most one application, and every session completes.
func TestStressInterruptSingleAuthorization(t *testing.T) {
	const clients, phases, steps = 32, 2, 3
	srv, addr := startTestServer(t, Config{Policy: core.InterruptPolicy{}, LogBound: 1 << 20})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := stressClient(t, addr, fmt.Sprintf("app-%03d", i), phases, steps, func() {}, func() {}, nil, nil); err != nil {
				errs <- fmt.Errorf("app-%03d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if want := uint64(clients * phases * steps); st.GrantsServed != want {
		t.Fatalf("grants served = %d, want %d", st.GrantsServed, want)
	}
	srv.Close() // quiesce the shard goroutines before reading their logs
	log := srv.set.Log()
	if len(log) == 0 {
		t.Fatal("no decisions logged")
	}
	for _, d := range log {
		if len(d.Allowed) > 1 {
			t.Fatalf("interrupt decision authorized %v (want at most one)", d.Allowed)
		}
	}
}

// aggregate formats the deterministic slice of a finished run's stats:
// per-application phase/grant/progress counters and the grand totals. Wall
// times, latencies and decision interleavings legitimately vary run to run
// and are excluded.
func aggregate(srv *Server, clients int) string {
	st := srv.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "sessions=%d grants_served=%d\n", st.Sessions, st.GrantsServed)
	for _, a := range st.Apps {
		fmt.Fprintf(&sb, "%s cores=%d state=%s phases=%d grants=%d bytes_done=%.0f\n",
			a.Name, a.Cores, a.State, a.Phases, a.Grants, a.BytesDone)
	}
	return sb.String()
}

// TestAggregate64ClientsByteStable is the acceptance bar for the daemon: 64
// concurrent client connections complete a fixed workload and the aggregate
// stats are byte-identical across two independent runs, regardless of how
// the connection goroutines interleaved.
func TestAggregate64ClientsByteStable(t *testing.T) {
	const clients, phases, steps = 64, 2, 2
	run := func() string {
		srv, addr := startTestServer(t, Config{Policy: core.FCFSPolicy{}})
		hold := make(chan struct{})
		var worked, closed sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			worked.Add(1)
			closed.Add(1)
			go func(i int) {
				defer closed.Done()
				err := stressClient(t, addr, fmt.Sprintf("app-%03d", i), phases, steps,
					func() {}, func() {}, worked.Done, hold)
				if err != nil {
					errs <- err
				}
			}(i)
		}
		// Every client has finished its protocol exchange but is still
		// connected: the snapshot below sees the complete, settled state
		// of all 64 sessions.
		worked.Wait()
		agg := aggregate(srv, clients)
		close(hold)
		closed.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return agg
	}
	one, two := run(), run()
	if one != two {
		t.Fatalf("aggregate stats not byte-stable:\n--- run 1\n%s--- run 2\n%s", one, two)
	}
	if !strings.Contains(one, fmt.Sprintf("grants_served=%d", clients*phases*steps)) {
		t.Fatalf("unexpected totals:\n%s", one)
	}
	if got := strings.Count(one, "\n"); got != clients+1 {
		t.Fatalf("want %d app lines, got %d:\n%s", clients, got-1, one)
	}
}
