//go:build linux

package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// TestReuseportSharding exercises ListenAndServe's SO_REUSEPORT listener
// sharding: AcceptLoops extra listeners bind the same port, the kernel
// spreads incoming connections across their accept queues, and sessions
// served off every listener coordinate normally. Drain/Close must retire
// the extra listeners too (no dangling accept goroutines or bound ports).
func TestReuseportSharding(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, ListenAddr: "127.0.0.1:0", AcceptLoops: 4})
	if err != nil {
		t.Fatal(err)
	}
	go srv.ListenAndServe()
	t.Cleanup(func() { srv.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(time.Millisecond)
	}

	srv.mu.Lock()
	extras := len(srv.extraLns)
	srv.mu.Unlock()
	if extras != 3 {
		t.Fatalf("ListenAndServe with AcceptLoops=4 holds %d extra reuseport listeners, want 3", extras)
	}

	// Enough connections that the kernel's reuseport hash touches several
	// queues; every one must negotiate and coordinate regardless of which
	// listener accepted it.
	addr := srv.Addr().String()
	for i := 0; i < 16; i++ {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		if err := c.Register(fmt.Sprintf("rp-%02d", i), 1); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		sess := client.NewSessionOn(c, "shared")
		if err := sess.Begin(info(1)); err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		if err := sess.End(1); err != nil {
			t.Fatalf("end %d: %v", i, err)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// All listeners are closed: a fresh dial must fail.
	if c, err := client.Dial(addr); err == nil {
		c.Close()
		t.Fatal("dial succeeded after Close with reuseport listeners")
	}
}
