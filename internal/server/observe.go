package server

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/wire"
)

// shardMetrics is one target's hot-path instrumentation, resolved once at
// shard creation so the arbitration goroutine only ever touches atomic adds
// through pointers it already holds. Nil when the server has no registry.
type shardMetrics struct {
	grants         *obs.Counter
	arbitrations   *obs.Counter
	revokes        *obs.Counter
	waitsImmediate *obs.Counter
	waitsDeferred  *obs.Counter
	queueDepth     *obs.Gauge
	waitSeconds    *obs.Histogram
	holdSeconds    *obs.Histogram
	sheds          *obs.Counter
}

func newShardMetrics(r *obs.Registry, target string) *shardMetrics {
	l := obs.Label{Key: "target", Value: target}
	return &shardMetrics{
		grants: r.Counter("calciomd_grants_total",
			"Wait authorizations served, by storage target.", l),
		arbitrations: r.Counter("calciomd_arbitrations_total",
			"Arbitration rounds run, by storage target.", l),
		revokes: r.Counter("calciomd_revokes_total",
			"Authorizations revoked by arbitration, by storage target.", l),
		waitsImmediate: r.Counter("calciomd_waits_immediate_total",
			"Waits answered without deferral (already authorized).", l),
		waitsDeferred: r.Counter("calciomd_waits_deferred_total",
			"Waits parked until a later arbitration granted access.", l),
		queueDepth: r.Gauge("calciomd_queue_depth",
			"Waits currently parked on the target.", l),
		waitSeconds: r.Histogram("calciomd_wait_seconds",
			"Wait-to-grant latency in seconds (immediate waits observe 0).",
			obs.DefaultLatencyBuckets, l),
		holdSeconds: r.Histogram("calciomd_hold_seconds",
			"Grant hold time in seconds, from serve to release/end/revoke.",
			obs.DefaultLatencyBuckets, l),
		sheds: r.Counter("calciomd_sheds_total",
			"Advisory requests shed with code overloaded while the target's queue was in brownout.", l),
	}
}

// serverMetrics is the control-plane slice: degraded/fail-open folds and
// resume churn, accumulated on the control goroutine.
type serverMetrics struct {
	selfGrants      *obs.Counter
	degradedSeconds *obs.FloatCounter
	resumes         *obs.Counter

	// Overload-protection counters: admission rejects, stats sheds on the
	// control queue, per-connection rate-limit violations, handshake
	// deadline drops, and slow-client write-buffer disconnects.
	busyRejects       *obs.Counter
	statsSheds        *obs.Counter
	rateLimited       *obs.Counter
	handshakeTimeouts *obs.Counter
	slowDisconnects   *obs.Counter

	// Connection-machinery counters: connections by negotiated wire codec
	// and mux mode, and raw wire bytes in each direction (counted per
	// syscall-level read and write beneath the per-connection buffers).
	connsJSON      *obs.Counter
	connsBinary    *obs.Counter
	connsBinaryMux *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter

	// Mux instrumentation: live logical streams across all mux connections,
	// and how many response frames each group-commit flush carried (the
	// batching the mux write loop exists to produce).
	muxStreams     *obs.Gauge
	muxBatchFrames *obs.Histogram
}

// conns returns the connection counter for a negotiated codec and mux mode.
func (m *serverMetrics) conns(codec string, mux bool) *obs.Counter {
	switch {
	case mux:
		return m.connsBinaryMux
	case codec == "binary":
		return m.connsBinary
	default:
		return m.connsJSON
	}
}

// muxBatchBuckets bounds the group-commit batch-size histogram: powers of
// two up to the default write-buffer capacity.
var muxBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		selfGrants: r.Counter("calciomd_self_grants_total",
			"Waits clients granted themselves during fail-open windows, as reported on (re-)register."),
		degradedSeconds: r.FloatCounter("calciomd_degraded_seconds_total",
			"Seconds clients reported spending in degraded (uncoordinated) mode."),
		resumes: r.Counter("calciomd_resumes_total",
			"Successful resume registrations (connection churn)."),
		busyRejects: r.Counter("calciomd_busy_rejects_total",
			"Registrations rejected with code busy at the max_sessions bound."),
		statsSheds: r.Counter("calciomd_stats_sheds_total",
			"Stats requests shed with code overloaded while the control queue was in brownout."),
		rateLimited: r.Counter("calciomd_rate_limited_total",
			"Per-connection rate-limit violations (code overloaded; sustained abuse disconnects)."),
		handshakeTimeouts: r.Counter("calciomd_handshake_timeouts_total",
			"Connections dropped for not completing register within handshake_timeout_s."),
		slowDisconnects: r.Counter("calciomd_slow_disconnects_total",
			"Clients disconnected because their response buffer overflowed (too slow to drain)."),
		connsJSON: r.Counter("calciomd_connections_total",
			"Connections that completed codec negotiation, by wire codec and mux mode.",
			obs.Label{Key: "codec", Value: "json"}, obs.Label{Key: "mux", Value: "false"}),
		connsBinary: r.Counter("calciomd_connections_total",
			"Connections that completed codec negotiation, by wire codec and mux mode.",
			obs.Label{Key: "codec", Value: "binary"}, obs.Label{Key: "mux", Value: "false"}),
		connsBinaryMux: r.Counter("calciomd_connections_total",
			"Connections that completed codec negotiation, by wire codec and mux mode.",
			obs.Label{Key: "codec", Value: "binary"}, obs.Label{Key: "mux", Value: "true"}),
		bytesIn: r.Counter("calciomd_bytes_in_total",
			"Wire bytes read from client connections."),
		bytesOut: r.Counter("calciomd_bytes_out_total",
			"Wire bytes written to client connections."),
		muxStreams: r.Gauge("calciomd_mux_streams",
			"Live logical session streams across all mux connections."),
		muxBatchFrames: r.Histogram("calciomd_mux_batch_frames",
			"Response frames per group-commit flush on mux connections.",
			muxBatchBuckets),
	}
}

// Draining reports whether Drain has begun and Close has not finished —
// the window in which /healthz answers "draining".
func (srv *Server) Draining() bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.draining && !srv.closed
}

// Overloaded reports whether any request queue — a shard's or the control
// goroutine's — is currently in brownout (shedding advisory verbs).
func (srv *Server) Overloaded() bool {
	if srv.ctrlHot.Load() {
		return true
	}
	srv.shmu.RLock()
	defer srv.shmu.RUnlock()
	for _, sh := range srv.shardList {
		if sh.hot.Load() {
			return true
		}
	}
	return false
}

// Health returns the daemon's health word for /healthz: "closed",
// "draining", "overloaded" (a request queue is in brownout and advisory
// verbs are being shed), "degraded" (some client has reported fail-open
// coordination) or "serving".
func (srv *Server) Health() string {
	srv.mu.Lock()
	closed, draining := srv.closed, srv.draining
	srv.mu.Unlock()
	switch {
	case closed:
		return "closed"
	case draining:
		return "draining"
	case srv.Overloaded():
		return "overloaded"
	case srv.degradedSeen.Load():
		return "degraded"
	default:
		return "serving"
	}
}

// WriteStatsMetrics renders scrape-time metric series computed from the
// stats merge — per-application rows and machine-wide aggregates that would
// be wasteful to maintain on the hot path. It is meant as the Extra hook of
// an obs.Admin, appended after the registry's own families. Output is
// deterministic: Stats sorts Apps by (name, target) and Degraded by name.
func (srv *Server) WriteStatsMetrics(w io.Writer) {
	st := srv.Stats()
	fmt.Fprintf(w, "# HELP calciomd_sessions Connected (or grace-window) sessions.\n# TYPE calciomd_sessions gauge\ncalciomd_sessions %d\n", st.Sessions)
	fmt.Fprintf(w, "# HELP calciomd_cpu_seconds_wasted Core-seconds idled by I/O slowdown (paper §IV metric).\n# TYPE calciomd_cpu_seconds_wasted gauge\ncalciomd_cpu_seconds_wasted %s\n", formatScrapeFloat(st.CPUSecondsWasted))
	writeAppCounter(w, st, "calciomd_app_grants_total", "Grants served per application and target.", "counter",
		func(a *wire.AppStats) string { return fmt.Sprintf("%d", a.Grants) })
	writeAppCounter(w, st, "calciomd_app_io_seconds_total", "Cumulative I/O phase time per application and target.", "counter",
		func(a *wire.AppStats) string { return formatScrapeFloat(a.IOTimeS) })
	writeAppCounter(w, st, "calciomd_app_wait_seconds_total", "Cumulative wait time per application and target.", "counter",
		func(a *wire.AppStats) string { return formatScrapeFloat(a.WaitTimeS) })
	if len(st.Degraded) > 0 {
		fmt.Fprintf(w, "# HELP calciomd_app_resumes_total Successful resumes per application name.\n# TYPE calciomd_app_resumes_total counter\n")
		for i := range st.Degraded {
			d := &st.Degraded[i]
			fmt.Fprintf(w, "calciomd_app_resumes_total{app=\"%s\"} %d\n", scrapeEscape(d.Name), d.Resumes)
		}
	}
}

func writeAppCounter(w io.Writer, st wire.Stats, name, help, kind string, value func(*wire.AppStats) string) {
	if len(st.Apps) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	for i := range st.Apps {
		a := &st.Apps[i]
		fmt.Fprintf(w, "%s{app=\"%s\",target=\"%s\"} %s\n",
			name, scrapeEscape(a.Name), scrapeEscape(a.Target), value(a))
	}
}

var scrapeEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func scrapeEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return scrapeEscaper.Replace(v)
}

// formatScrapeFloat matches obs's float rendering so the appended series
// read like the registry's.
func formatScrapeFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// histFromSnapshot converts an obs histogram snapshot into the wire summary
// riding stats.
func histFromSnapshot(s obs.HistSnapshot) *wire.Hist {
	return &wire.Hist{BoundsS: s.Bounds, Counts: s.Counts, SumS: s.Sum, Count: s.Count}
}
