// Package server implements calciomd, the live CALCioM coordination daemon:
// the paper's arbitration layer run as a network service instead of inside
// the discrete-event simulator.
//
// Architecture: coordination is sharded by storage target. One goroutine per
// connection reads wire.Request frames and routes each to the arbitration
// goroutine of the target it addresses (register and stats go to a control
// goroutine that owns session lifecycle); one goroutine per connection
// writes responses and pushed grants/revocations back out. Each target's
// coordination state — its core.Arbiter from the shared core.ArbiterSet,
// per-session bindings, pending Waits, the decision log — is owned by that
// target's arbitration goroutine alone, so there is still no lock on the hot
// path, per-target decisions are fully deterministic given that target's
// serialized request order, and a grant on one target never waits for — or
// convoys behind — arbitration on another. A daemon whose clients never name
// a target runs exactly one shard (the default target ""), which is the
// original single-goroutine behavior.
//
// The arbitration hot path is allocation-conscious like the simulator's
// contention path: each Arbiter reuses its view/decision scratch, policies
// implementing core.IndexedArbitrator (fcfs, interrupt, interfere, delay)
// run map-free, and responses are written through per-connection buffered
// writers with batched flushes.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

// Config parameterizes a daemon.
type Config struct {
	// ListenAddr is the TCP address for ListenAndServe ("host:port").
	ListenAddr string
	// Policy arbitrates storage-target access; required. The shipped
	// policies are stateless values, so one policy instance serves every
	// target's arbiter.
	Policy core.Policy
	// Model, when set, lets stats estimate per-app solo times and live
	// interference factors (and is required by delay/dynamic policies,
	// which are constructed with it).
	Model *core.PerfModel
	// MaxTargets bounds how many distinct storage targets (shards, each a
	// goroutine plus an arbiter) the daemon will create; requests naming a
	// target beyond the bound are rejected, so a client cannot grow the
	// shard set without limit. 0 means the default (DefaultMaxTargets);
	// negative removes the bound.
	MaxTargets int
	// SessionTimeout evicts sessions idle longer than this; 0 disables.
	SessionTimeout time.Duration
	// GrantGrace keeps a disconnected registered session's coordination
	// state — its name, bindings, and any authorization it holds — alive
	// for this long, giving the client a window to reconnect and resume
	// under the same name with a higher incarnation. When the window
	// expires unresumed the session is dropped: its grants are revoked and
	// every target it was mid-phase on re-arbitrates, so one crashed client
	// convoys a target for at most GrantGrace. 0 drops a session the moment
	// its connection dies (the original behavior). GrantGrace should be
	// shorter than SessionTimeout: the grace window is for fast reconnects,
	// idle eviction for abandoned sessions.
	GrantGrace time.Duration
	// Clock returns the coordination time in seconds. Nil means monotonic
	// wall time since the server started. Tests inject a logical clock to
	// make entire runs deterministic. The clock must be safe for concurrent
	// use: every target's arbitration goroutine reads it.
	Clock func() float64
	// LogBound bounds each target's decision log kept for stats: 0 means
	// the default (256), negative disables logging entirely (benchmarks).
	LogBound int
	// Logf, when set, receives one line per lifecycle event (connects,
	// evictions, shutdown). The arbitration hot path never logs.
	Logf func(format string, args ...any)
	// Trace, when set, records every state-mutating coordination event (and
	// the authorization flips arbitration produced) for offline replay with
	// internal/replay. Every event carries the storage target whose shard
	// recorded it, so replay can partition the file back into per-target
	// streams. Recording rides the arbitration goroutines but adds neither
	// blocking nor allocation to them: events travel by value into the
	// writer's buffered channel, and overflow is drop-counted, never waited
	// on. The caller owns the writer and must Close it only after the
	// server has shut down.
	Trace *trace.Writer
	// Metrics, when set, receives hot-path instrumentation: per-target
	// grant/arbitration/revoke counters, queue-depth gauges, and
	// wait-to-grant and hold-time histograms. Each shard resolves its series
	// once at creation, so the arbitration goroutines only ever perform
	// atomic adds — the hot path stays allocation-free with metrics on. Nil
	// disables collection entirely (and stats carry no histograms).
	Metrics *obs.Registry
	// Events, when set, receives sampled grant-lifecycle events
	// (register/resume, wait→grant, revoke, grace expiry, drain). Emission
	// is a non-blocking by-value channel send; formatting happens on the
	// event log's own goroutine. The caller owns the log and must Close it
	// only after the server has shut down.
	Events *obs.EventLog
	// MaxSessions bounds concurrently registered application sessions:
	// a register that would grow the name table past it is rejected with
	// the retryable wire.CodeBusy. Resumes of held names never count
	// against the bound (they replace a session, not add one). 0 means
	// unlimited.
	MaxSessions int
	// HandshakeTimeout drops a connection that has not completed register
	// within it, so an idle unregistered socket cannot live forever (idle
	// eviction only covers registered sessions). 0 disables the deadline.
	HandshakeTimeout time.Duration
	// RateLimit caps each connection's sustained request rate in requests
	// per second, enforced by a per-connection token bucket (burst equal
	// to the rate) on the reader goroutine — no locks, no allocation. The
	// first violation is answered with the retryable wire.CodeOverloaded;
	// a second consecutive violation disconnects the client. 0 disables
	// per-connection rate limiting.
	RateLimit float64
	// WriteBuffer overrides each connection's response-buffer capacity
	// (default 256). A client too slow to drain it is disconnected rather
	// than allowed to stall arbitration; tests shrink the buffer to drive
	// that path deterministically.
	WriteBuffer int
	// AcceptLoops sets how many goroutines run the listener's accept loop
	// (default 1). Sharding the accept loop keeps connection-churn-heavy
	// workloads (100k-session rolling restarts) from serializing behind a
	// single accept caller. Values below 1 mean 1.
	AcceptLoops int
	// SockBuffer, when positive, sets the kernel read and write buffer
	// sizes (SO_RCVBUF/SO_SNDBUF) on every accepted TCP connection. 0
	// keeps the OS defaults.
	SockBuffer int
}

// envelope kinds. kindConnect/kindDisconnect/kindStats and control-plane
// kindRequest (register, stats) flow into the control goroutine;
// kindRequest for coordination verbs, kindRecheck, kindDetach and
// kindSnapshot flow into a shard's arbitration goroutine.
const (
	kindRequest = iota
	kindConnect
	kindDisconnect
	kindRecheck
	kindStats
	kindDetach
	kindSnapshot
	// kindRebind moves a limbo session's binding to the session that
	// resumed it (shard-bound; env.s is the old session, env.to the new).
	kindRebind
	// kindExpire is a limbo session's grace deadline (control-bound).
	kindExpire
	// kindDrain fails the shard's pending Waits with a retryable draining
	// error and refuses new ones (shard-bound; ackCh closed when done).
	kindDrain
	// kindHandshakeExpire is an unregistered connection's handshake
	// deadline (control-bound): if the session still has no identity the
	// slow-loris connection is dropped.
	kindHandshakeExpire
)

// Shard request queues and the control queue share one capacity; the
// shedding water marks hang off it. A shard enters brownout when its queue
// reaches shedHiWater (advisory verbs are answered with the retryable
// wire.CodeOverloaded instead of being enqueued) and exits only once the
// queue has drained to shedLoWater — hysteresis wide enough that a queue
// oscillating near one mark cannot flap the brownout bit.
const (
	queueCap    = 256
	shedHiWater = queueCap * 3 / 4
	shedLoWater = queueCap / 4
)

type envelope struct {
	kind    int
	s       *session
	to      *session // kindRebind: the resuming session
	req     wire.Request
	statsCh chan wire.Stats
	snapCh  chan shardSnap
	ackCh   chan struct{}
	now     float64
}

// ident is a session's registration identity, written once by the control
// goroutine at register and read by shard goroutines through an atomic
// pointer.
type ident struct {
	name      string
	cores     int
	sid       uint32 // trace session identity
	defTarget string // target requests with an empty Target route to
	// incarnation is the client instance's connection epoch: a register for
	// a held name with a strictly higher incarnation resumes the session
	// (reclaims name, sid and accounting); an equal-or-lower one is a lost
	// resume race and is rejected. 0 is a legacy client (never resumable).
	incarnation uint64
}

// session is one client connection. The shared fields are written by the
// control goroutine and read by reader/writer/shard goroutines; per-target
// coordination state lives in bindings owned by shard goroutines.
type session struct {
	conn net.Conn
	// rd and wr are the connection's byte streams, wrapped for byte
	// accounting when a metrics registry is configured. The reader and
	// writer goroutines buffer on top of them.
	rd io.Reader
	wr io.Writer
	// codec is the wire format negotiated from the connection's first byte
	// (see wire.HelloMagic). serveConn completes negotiation before the
	// session exists, so the write loop starts with the codec installed.
	codec wire.Codec
	out   chan wire.Response
	quit  chan struct{} // closed at teardown; the write loop drains and exits
	dead  atomic.Bool

	// mc and stream are set on mux stream sessions only: the session is one
	// logical stream of a shared mux connection. out and quit are nil then —
	// responses go through mc's group-commit write loop, and teardown marks
	// the stream dead without touching the shared connection.
	mc     *muxConn
	stream uint64

	id           atomic.Pointer[ident]
	gone         atomic.Bool   // dropped; shards ignore later envelopes
	torn         atomic.Bool   // teardown ran (limbo and drop may both reach it)
	lastSeen     atomic.Uint64 // float64 bits of the last request time
	pendingWaits atomic.Int32  // deferred Waits across all targets

	// limbo and graceTimer are owned by the control goroutine: a
	// disconnected registered session under Config.GrantGrace keeps its
	// coordination state until the timer fires or a resume reclaims it.
	limbo      bool
	graceTimer *time.Timer
	// handshake is the pre-register deadline timer, armed before the
	// kindConnect envelope is enqueued and owned by the control goroutine
	// afterwards; a successful register (or resume, or drop) disarms it.
	handshake *time.Timer
	// slowDrops, resolved at accept, counts this path: send disconnecting
	// the client because its response buffer overflowed. Nil without a
	// metrics registry. Incremented from shard goroutines, hence a counter
	// pointer rather than a trip through the control goroutine.
	slowDrops *obs.Counter
	// viaControl counts this session's coordination frames still in
	// flight through the control goroutine (frames read before the
	// session had an identity). While it is nonzero the reader keeps
	// routing through the control goroutine, so per-session order is one
	// FIFO path — a later frame can never overtake an earlier one into a
	// shard. The reader increments before sending; the control goroutine
	// decrements after forwarding (or answering).
	viaControl atomic.Int32
}

// touch stamps the session's idle-eviction clock.
func (s *session) touch(now float64) { s.lastSeen.Store(math.Float64bits(now)) }

// disarmHandshake stops the pre-register deadline. Control goroutine only.
func (s *session) disarmHandshake() {
	if s.handshake != nil {
		s.handshake.Stop()
		s.handshake = nil
	}
}

func (s *session) seen() float64 { return math.Float64frombits(s.lastSeen.Load()) }

// teardown ends the session's write loop (which closes the connection).
// Idempotent: the limbo path tears a connection down at disconnect, and the
// eventual drop (grace expiry, resume, shutdown) reaches here again.
func (s *session) teardown() {
	s.dead.Store(true)
	if s.quit != nil && s.torn.CompareAndSwap(false, true) {
		close(s.quit)
	}
}

// send enqueues a response without ever blocking an arbitration goroutine: a
// client too slow to drain its buffer is disconnected rather than allowed
// to stall arbitration for everyone else.
func (s *session) send(r wire.Response) {
	if s.dead.Load() {
		return
	}
	if s.mc != nil {
		s.mc.send(s, r)
		return
	}
	if s.out == nil {
		return
	}
	select {
	case s.out <- r:
	default:
		s.dead.Store(true)
		if s.slowDrops != nil {
			s.slowDrops.Inc()
		}
		s.conn.Close()
	}
}

// replyGone answers a request that reached a dropped session. For plain
// connections this is moot — drop tore the connection down, so the client
// sees the disconnect — but a mux stream's connection outlives the stream,
// and without an error reply the client would hang on the request forever.
func (s *session) replyGone(seq uint64, target string) {
	if s.mc == nil || seq == 0 {
		return
	}
	s.mc.send(s, wire.Response{Seq: seq, Type: wire.TypeResp,
		Err: "session dropped", Code: wire.CodeProtocol, Target: target})
}

// name returns the session's registered application name, or "" before
// register. Safe from any goroutine.
func (s *session) name() string {
	if id := s.id.Load(); id != nil {
		return id.name
	}
	return ""
}

// binding is one session's coordination state on one storage target, owned
// exclusively by that target's arbitration goroutine. It carries what the
// unsharded daemon kept per session: protocol state, the pending Wait, and
// the LASSi-style live accounting.
type binding struct {
	s   *session
	app *core.AppState
	sid uint32

	waitSeq    uint64 // Seq of the deferred Wait response; 0 = none pending
	waitFrom   float64
	waitConvoy bool  // deferred behind another authorized app (vs protocol)
	waitPos    int32 // Waits already parked on the target when this one was

	// grantAt/holding track the served grant currently outstanding, for the
	// hold-time histogram: set by serveGrant, cleared (and observed) at the
	// next release, end or revoke.
	grantAt float64
	holding bool

	phaseStart float64
	phases     int
	grants     uint64
	ioTime     float64
	waitTime   float64

	// Wait decomposition (see wire.AppStats): immediate vs deferred counts,
	// and deferred time split by what the wait was for.
	waitsImmediate uint64
	waitsDeferred  uint64
	convoyWait     float64
	protoWait      float64
}

// shard is one storage target's coordination domain: an arbiter from the
// server's ArbiterSet plus everything the arbitration goroutine owns for
// that target. In serving mode each shard has its own goroutine (run); in
// inline mode (tests, benchmarks driving handle directly) the caller's
// goroutine plays that role.
type shard struct {
	srv    *Server
	target string
	arb    *core.Arbiter
	ch     chan envelope
	done   chan struct{}

	// Resolved once at shard creation; nil when the server has no registry
	// or event log. Shard goroutines touch them without further lookups.
	m  *shardMetrics
	ev *obs.EventLog

	// hot is the brownout bit: set by reader goroutines when the queue
	// crosses shedHiWater, cleared (by readers or the shard goroutine)
	// once it drains to shedLoWater. While set, advisory verbs are shed
	// with the retryable wire.CodeOverloaded instead of enqueued.
	hot atomic.Bool

	// Owned by the shard's arbitration goroutine.
	bindings     map[*session]*binding
	recheck      *time.Timer
	arbitrations uint64
	grantsServed uint64
	pending      int32 // Waits currently parked (mirrored to m.queueDepth)
	draining     bool  // Drain ran: pending Waits failed, new ones refused

	// Wait-decomposition counters of departed bindings, folded in by
	// detach, so the aggregates are cumulative like grantsServed (and like
	// offline replay's totals) rather than shrinking as sessions leave.
	goneWaitsImmediate uint64
	goneWaitsDeferred  uint64
	goneConvoyWait     float64
	goneProtoWait      float64
}

// shardSnap is one shard's slice of a stats snapshot, assembled inside the
// shard's goroutine and merged by the control goroutine.
type shardSnap struct {
	target       string
	bindings     int
	arbitrations uint64
	grantsServed uint64

	waitsImmediate uint64
	waitsDeferred  uint64
	convoyWait     float64
	protoWait      float64

	lastDecision string
	lastTime     float64
	hasDecision  bool

	waitHist *wire.Hist // nil unless the server collects metrics

	apps []wire.AppStats
	rep  []metrics.AppResult
}

// Server is the coordination daemon. Create with New, run with Serve or
// ListenAndServe, stop with Close.
type Server struct {
	cfg   Config
	clock func() float64
	set   *core.ArbiterSet

	reqCh chan envelope
	stop  chan struct{}

	shmu       sync.RWMutex
	shards     map[string]*shard
	shardList  []*shard // sorted by target
	shardsLive bool     // serving: new shards start their own goroutine

	mu sync.Mutex
	ln net.Listener
	// extraLns are additional SO_REUSEPORT listeners on the same address
	// (ListenAndServe with AcceptLoops > 1 on Linux); Serve runs one accept
	// loop per extra listener, and Drain/Close close them with ln.
	extraLns  []net.Listener
	closed    bool
	draining  bool
	serving   bool
	serveDone chan struct{}
	loopDone  chan struct{}
	closeDone chan struct{} // closed once the first Close finished teardown
	wg        sync.WaitGroup
	final     wire.Stats // last snapshot, served after the loop exits

	// Owned by the control goroutine (or the caller in inline mode).
	sessions map[*session]struct{}
	names    map[string]*session // registered application names
	sidSeq   uint32              // last trace session identity handed out
	// degraded accumulates the fail-open accounting clients report on
	// (re-)register: per app name, cumulative across resumes. Owned like
	// sessions/names; surfaced through Stats.Degraded.
	degraded map[string]*wire.DegradedStats

	// m holds the control-plane metric series (nil without a registry);
	// degradedSeen flips once any client reports fail-open coordination and
	// feeds Health.
	m            *serverMetrics
	degradedSeen atomic.Bool
	// ctrlHot is the control queue's brownout bit (same hysteresis as a
	// shard's): while set, stats requests are shed so session lifecycle
	// traffic keeps flowing.
	ctrlHot atomic.Bool
}

// New validates the configuration and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Policy == nil {
		return nil, errors.New("server: nil policy")
	}
	clock := cfg.Clock
	if clock == nil {
		start := time.Now()
		clock = func() float64 { return time.Since(start).Seconds() }
	}
	set := core.NewArbiterSet(cfg.Policy)
	set.SetIndexed(true)
	switch {
	case cfg.LogBound < 0:
		set.SetLogBound(0)
	case cfg.LogBound == 0:
		set.SetLogBound(256)
	default:
		set.SetLogBound(cfg.LogBound)
	}
	var m *serverMetrics
	if cfg.Metrics != nil {
		m = newServerMetrics(cfg.Metrics)
	}
	return &Server{
		cfg:       cfg,
		clock:     clock,
		set:       set,
		m:         m,
		reqCh:     make(chan envelope, queueCap),
		stop:      make(chan struct{}),
		serveDone: make(chan struct{}),
		loopDone:  make(chan struct{}),
		closeDone: make(chan struct{}),
		shards:    make(map[string]*shard),
		sessions:  make(map[*session]struct{}),
		names:     make(map[string]*session),
		degraded:  make(map[string]*wire.DegradedStats),
	}, nil
}

func (srv *Server) logf(format string, args ...any) {
	if srv.cfg.Logf != nil {
		srv.cfg.Logf(format, args...)
	}
}

// Addr returns the listening address (nil before Serve).
func (srv *Server) Addr() net.Addr {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// DefaultMaxTargets is the default bound on distinct storage targets.
const DefaultMaxTargets = 256

// errTooManyTargets rejects requests that would grow the shard set past
// the configured bound.
var errTooManyTargets = errors.New("too many storage targets")

// shardFor returns the target's shard, creating it (and, when serving, its
// arbitration goroutine) on first use — unless that would exceed the
// target bound. Safe for concurrent use by the connection reader
// goroutines.
func (srv *Server) shardFor(target string) (*shard, error) {
	srv.shmu.RLock()
	sh := srv.shards[target]
	srv.shmu.RUnlock()
	if sh != nil {
		return sh, nil
	}
	srv.shmu.Lock()
	defer srv.shmu.Unlock()
	if sh = srv.shards[target]; sh != nil {
		return sh, nil
	}
	max := srv.cfg.MaxTargets
	if max == 0 {
		max = DefaultMaxTargets
	}
	if max > 0 && len(srv.shards) >= max {
		return nil, errTooManyTargets
	}
	sh = &shard{
		srv:      srv,
		target:   target,
		arb:      srv.set.Get(target),
		ch:       make(chan envelope, queueCap),
		done:     make(chan struct{}),
		bindings: make(map[*session]*binding),
		ev:       srv.cfg.Events,
	}
	if srv.cfg.Metrics != nil {
		sh.m = newShardMetrics(srv.cfg.Metrics, target)
	}
	srv.shards[target] = sh
	i := sort.Search(len(srv.shardList), func(i int) bool { return srv.shardList[i].target >= target })
	srv.shardList = append(srv.shardList, nil)
	copy(srv.shardList[i+1:], srv.shardList[i:])
	srv.shardList[i] = sh
	if srv.shardsLive {
		go sh.run()
	}
	return sh, nil
}

// shardsSorted snapshots the shard list in target order.
func (srv *Server) shardsSorted() []*shard {
	srv.shmu.RLock()
	defer srv.shmu.RUnlock()
	return append([]*shard(nil), srv.shardList...)
}

// routeTarget resolves a request's coordination domain: an explicit Target
// wins, otherwise the session's default target from registration.
func (srv *Server) routeTarget(s *session, target string) string {
	if target != "" {
		return target
	}
	if id := s.id.Load(); id != nil {
		return id.defTarget
	}
	return ""
}

// ListenAndServe listens on cfg.ListenAddr and serves until Close. With
// AcceptLoops > 1 on Linux it shards the listener itself: one SO_REUSEPORT
// socket per accept loop, so the kernel distributes connection bursts
// across independent accept queues. Elsewhere (or if the sharded bind
// fails) it falls back to AcceptLoops goroutines sharing one listener.
func (srv *Server) ListenAndServe() error {
	if n := srv.cfg.AcceptLoops; n > 1 && reuseportAvailable {
		if lns, err := listenReuseport(srv.cfg.ListenAddr, n); err == nil {
			srv.mu.Lock()
			srv.extraLns = lns[1:]
			srv.mu.Unlock()
			srv.logf("calciomd: %d reuseport listeners on %s", n, lns[0].Addr())
			return srv.Serve(lns[0])
		}
	}
	ln, err := net.Listen("tcp", srv.cfg.ListenAddr)
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a clean
// Close, or the accept error otherwise. Serve may be called at most once.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	if srv.serving {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("server: already serving")
	}
	srv.serving = true
	srv.ln = ln
	srv.mu.Unlock()
	srv.shmu.Lock()
	srv.shardsLive = true
	for _, sh := range srv.shardList {
		go sh.run()
	}
	srv.shmu.Unlock()
	// Closed when every accept loop has returned: after that, no new
	// startSession can run, which Close relies on for a complete teardown.
	defer close(srv.serveDone)
	go srv.loop()
	srv.logf("calciomd: serving on %s (policy %s)", ln.Addr(), srv.cfg.Policy.Name())
	accept := func(ln net.Listener) error {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			if tc, ok := conn.(*net.TCPConn); ok && srv.cfg.SockBuffer > 0 {
				tc.SetReadBuffer(srv.cfg.SockBuffer)
				tc.SetWriteBuffer(srv.cfg.SockBuffer)
			}
			srv.startSession(conn)
		}
	}
	// Accept-loop sharding. With SO_REUSEPORT listeners (ListenAndServe on
	// Linux) each extra listener gets its own accept loop; otherwise extra
	// goroutines accept from the shared listener so bursts of connection
	// churn are not serialized behind one accept caller. Closing the
	// listeners unblocks every loop.
	srv.mu.Lock()
	extras := srv.extraLns
	srv.mu.Unlock()
	var extra sync.WaitGroup
	if len(extras) > 0 {
		for _, eln := range extras {
			extra.Add(1)
			go func(eln net.Listener) {
				defer extra.Done()
				accept(eln)
			}(eln)
		}
	} else {
		for i := 1; i < srv.cfg.AcceptLoops; i++ {
			extra.Add(1)
			go func() {
				defer extra.Done()
				accept(ln)
			}()
		}
	}
	err := accept(ln)
	extra.Wait()
	srv.mu.Lock()
	clean := srv.closed || srv.draining
	srv.mu.Unlock()
	if clean {
		return nil
	}
	return err
}

// Drain begins a graceful shutdown: the listener stops accepting, every
// shard answers its pending Waits (and refuses subsequent ones) with a
// retryable wire.CodeDraining error, so clients unblock, learn the daemon is
// going away, and can retry against its successor instead of hanging into
// Close's teardown. Coordination state is otherwise intact — sessions may
// still Release/End cleanly. Drain returns once every existing shard has
// acknowledged; call Close afterwards to tear the daemon down.
func (srv *Server) Drain() {
	srv.mu.Lock()
	if srv.closed || srv.draining {
		srv.mu.Unlock()
		return
	}
	srv.draining = true
	ln, serving := srv.ln, srv.serving
	extras := srv.extraLns
	srv.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, eln := range extras {
		eln.Close()
	}
	srv.logf("calciomd: draining")
	for _, sh := range srv.shardsSorted() {
		if !serving {
			sh.drainWaits()
			continue
		}
		ack := make(chan struct{})
		select {
		case sh.ch <- envelope{kind: kindDrain, ackCh: ack}:
			select {
			case <-ack:
			case <-srv.stop:
			}
		case <-srv.stop:
		}
	}
}

// Close stops the daemon: the listener, every session, every shard and the
// control loop are torn down, and Close returns once all goroutines have
// exited. Concurrent and repeated Close calls are safe, and every one of
// them blocks until the teardown is complete — a caller that saw Serve
// return (the accept loop exits before the arbitration goroutines) can
// Close and then safely release resources the arbitration goroutines were
// using, such as a trace writer.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		<-srv.closeDone
		return nil
	}
	srv.closed = true
	ln, serving := srv.ln, srv.serving
	extras := srv.extraLns
	srv.mu.Unlock()
	defer close(srv.closeDone)
	if ln != nil {
		ln.Close()
	}
	for _, eln := range extras {
		eln.Close()
	}
	if serving {
		// Wait for the accept loop first: once it has returned, no further
		// startSession can enqueue a connection the control loop would
		// never see.
		<-srv.serveDone
	}
	close(srv.stop)
	if serving {
		<-srv.loopDone
		// Sessions whose kindConnect envelope was still queued when the
		// loop exited were never adopted by it; tear them down here or
		// their writer goroutines would block forever (and Close would
		// never return). Leftover envelopes of other kinds reference
		// sessions the loop already closed.
		for {
			select {
			case env := <-srv.reqCh:
				if env.kind == kindConnect {
					env.s.gone.Store(true)
					env.s.teardown()
				}
				continue
			default:
			}
			break
		}
	}
	srv.wg.Wait()
	return nil
}

// GrantsServed returns the total number of Wait authorizations served
// across every target. Exact once the server is closed; a snapshot while
// running.
func (srv *Server) GrantsServed() uint64 {
	return srv.Stats().GrantsServed
}

// Stats returns a live metrics snapshot, consistent because each target's
// slice is computed inside that target's arbitration goroutine and merged
// by the control goroutine. After Close it returns the final snapshot taken
// at shutdown; on a server that never served it snapshots inline (nothing
// else owns the state).
func (srv *Server) Stats() wire.Stats {
	srv.mu.Lock()
	if !srv.serving {
		defer srv.mu.Unlock()
		if srv.closed {
			return srv.final
		}
		// Inline mode: no goroutines own coordination state, and holding
		// mu keeps a concurrent Serve from flipping to serving mode (and
		// starting shard goroutines) mid-snapshot.
		return srv.snapshot(srv.clock())
	}
	srv.mu.Unlock()
	ch := make(chan wire.Stats, 1)
	select {
	case srv.reqCh <- envelope{kind: kindStats, statsCh: ch}:
		select {
		case st := <-ch:
			return st
		case <-srv.loopDone:
		}
	case <-srv.loopDone:
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.final
}

func (srv *Server) startSession(conn net.Conn) {
	srv.wg.Add(1)
	go srv.serveConn(conn)
}

// serveConn owns a freshly accepted connection: it negotiates the wire
// codec first — under the handshake deadline, so a silent connection cannot
// park in negotiation forever — and only then builds the session machinery
// the negotiated mode needs. A mux connection gets a demux loop and a
// shared group-commit write loop; a plain connection gets the classic
// one-session reader/writer pair.
func (srv *Server) serveConn(conn net.Conn) {
	defer srv.wg.Done()
	var rd io.Reader = conn
	var wr io.Writer = conn
	if srv.m != nil {
		rd = countReader{conn, srv.m.bytesIn}
		wr = countWriter{conn, srv.m.bytesOut}
	}
	if d := srv.cfg.HandshakeTimeout; d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
	br := bufio.NewReader(rd)
	codec, mux, err := srv.negotiate(br, wr)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if srv.m != nil {
				srv.m.handshakeTimeouts.Inc()
			}
			srv.logf("calciomd: dropping unregistered connection: handshake timeout")
		}
		conn.Close()
		return
	}
	if srv.cfg.HandshakeTimeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
	if srv.m != nil {
		srv.m.conns(codec.Name(), mux).Inc()
	}
	if mux {
		srv.serveMux(conn, br, wr)
		return
	}
	s := srv.newSession(conn, rd, wr)
	s.codec = codec
	if !srv.announce(s) {
		conn.Close()
		return
	}
	srv.wg.Add(1)
	go srv.writeLoop(s)
	srv.readLoop(s, br)
}

// newSession builds a plain (non-mux) session for an accepted connection.
func (srv *Server) newSession(conn net.Conn, rd io.Reader, wr io.Writer) *session {
	buf := srv.cfg.WriteBuffer
	if buf <= 0 {
		buf = 256
	}
	s := &session{conn: conn, rd: rd, wr: wr,
		out: make(chan wire.Response, buf), quit: make(chan struct{})}
	if srv.m != nil {
		s.slowDrops = srv.m.slowDisconnects
	}
	return s
}

// announce arms the session's register deadline and hands it to the control
// goroutine. It returns false when the server is stopping — the session was
// never adopted and the caller owns the connection's teardown.
func (srv *Server) announce(s *session) bool {
	// The handshake timer is armed before the kindConnect handoff, so the
	// control goroutine (which disarms it at register) observes it fully
	// formed via the channel send.
	if d := srv.cfg.HandshakeTimeout; d > 0 {
		s.handshake = time.AfterFunc(d, func() {
			select {
			case srv.reqCh <- envelope{kind: kindHandshakeExpire, s: s}:
			case <-srv.stop:
			}
		})
	}
	select {
	case srv.reqCh <- envelope{kind: kindConnect, s: s}:
		return true
	case <-srv.stop:
		if s.handshake != nil {
			s.handshake.Stop()
		}
		return false
	}
}

// sheddable reports whether a verb may be answered with CodeOverloaded
// under brownout. Advisory verbs only: a shed inform/check/progress/stats
// costs the client a backoff and a retry. State-critical verbs — register,
// prepare/complete, wait, release, end — are always admitted: shedding a
// release or end would wedge the grant pipeline behind a holder the daemon
// itself refused to hear from.
func sheddable(t string) bool {
	switch t {
	case wire.TypeInform, wire.TypeProgress, wire.TypeCheck, wire.TypeStats:
		return true
	}
	return false
}

// shed reports whether the shard is in brownout, updating the hysteresis
// bit from the current queue depth. Called by reader goroutines before
// enqueueing an advisory verb; racing readers may briefly disagree near a
// water mark, which is harmless — every shed is individually retryable.
func (sh *shard) shed() bool {
	q := len(sh.ch)
	if sh.hot.Load() {
		if q <= shedLoWater {
			sh.hot.Store(false)
			return false
		}
		return true
	}
	if q >= shedHiWater {
		sh.hot.Store(true)
		return true
	}
	return false
}

// ctrlShed is shed for the control queue (stats requests).
func (srv *Server) ctrlShed() bool {
	q := len(srv.reqCh)
	if srv.ctrlHot.Load() {
		if q <= shedLoWater {
			srv.ctrlHot.Store(false)
			return false
		}
		return true
	}
	if q >= shedHiWater {
		srv.ctrlHot.Store(true)
		return true
	}
	return false
}

// shedReply answers one shed request. The response carries no Authorized
// bit — the reader goroutine cannot see shard state — which is why the
// client library ignores the bit on busy/overloaded replies.
func (srv *Server) shedReply(s *session, seq uint64, verb, target string, now float64) {
	if srv.cfg.Events != nil {
		srv.cfg.Events.Emit(obs.Event{Kind: obs.EvShed, Time: now,
			App: s.name(), Target: target})
	}
	s.send(wire.Response{Seq: seq, Type: wire.TypeResp,
		Err:  "overloaded: " + verb + " shed, back off and retry",
		Code: wire.CodeOverloaded, Target: target})
}

// countReader and countWriter sit between a connection and its buffered
// reader/writer, counting wire bytes into registry counters with one atomic
// add per syscall-level read or write.
type countReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(uint64(n))
	}
	return n, err
}

type countWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}

// negotiate sniffs the connection's first byte to pick its wire codec. A v1
// JSON client's first byte is always 0x00 (frame lengths are bounded far
// below 1<<24), so anything but wire.HelloMagic falls through to the JSON
// codec with the byte stream untouched. On a hello it consumes the two
// hello bytes, writes the two-byte ack echoing the accepted version (no
// write loop exists yet, so serveConn's goroutine owns the connection), and
// switches the connection to the negotiated codec before the first frame.
// The returned mux flag selects the session-multiplexed framing on top of
// the binary codec (wire.VersionBinaryMux).
func (srv *Server) negotiate(br *bufio.Reader, wr io.Writer) (wire.Codec, bool, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, false, err
	}
	if first[0] != wire.HelloMagic {
		return wire.JSON, false, nil
	}
	var hello [2]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return nil, false, err
	}
	if hello[1] != wire.VersionBinary && hello[1] != wire.VersionBinaryMux {
		return nil, false, fmt.Errorf("unsupported codec version %d", hello[1])
	}
	if _, err := wr.Write(hello[:]); err != nil {
		return nil, false, err
	}
	return wirebin.Codec{}, hello[1] == wire.VersionBinaryMux, nil
}

// readLoop routes each request to the goroutine owning its state: register
// and stats to the control loop, coordination verbs to the shard of the
// target they address. A coordination frame read before the session has an
// identity — a client pipelining ahead of its register response — also
// goes to the control loop, which processes it strictly after the register
// it was queued behind and forwards it to the right shard, so the frame is
// never misrouted to the wrong coordination domain.
func (srv *Server) readLoop(s *session, br *bufio.Reader) {
	dec := s.codec.NewRequestReader(br)
	rl := srv.newRateLimiter()
	for {
		var req wire.Request
		if err := dec.Read(&req); err != nil {
			break
		}
		if req.Seq == 0 {
			break // reserved for pushes; a zero Seq is a client bug
		}
		admit, kill := rl.admit(srv, s, &req)
		if kill {
			break
		}
		if !admit {
			continue
		}
		if !srv.route(s, req) {
			return
		}
	}
	select {
	case srv.reqCh <- envelope{kind: kindDisconnect, s: s}:
	case <-srv.stop:
	}
}

// rateLimiter is a per-connection token bucket, plain locals on the reader
// goroutine: zero allocation, zero locks, refilled from the server clock so
// injected logical clocks keep tests deterministic. Burst equals the rate
// (at least 1), so a client may front-load one second's worth of requests.
// On a mux connection one bucket covers all streams — the limit bounds the
// physical connection, which is what the syscall budget cares about.
type rateLimiter struct {
	limit   float64
	burst   float64
	tokens  float64
	last    float64
	strikes int
}

func (srv *Server) newRateLimiter() rateLimiter {
	limit := srv.cfg.RateLimit
	burst := limit
	if burst < 1 {
		burst = 1
	}
	rl := rateLimiter{limit: limit, burst: burst, tokens: burst}
	if limit > 0 {
		rl.last = srv.clock()
	}
	return rl
}

// admit charges one request against the bucket. A false admit answered the
// request (shed with a retryable warning); kill means sustained abuse and
// the connection must be dropped.
func (rl *rateLimiter) admit(srv *Server, s *session, req *wire.Request) (bool, bool) {
	if rl.limit <= 0 {
		return true, false
	}
	now := srv.clock()
	rl.tokens += (now - rl.last) * rl.limit
	if rl.tokens > rl.burst {
		rl.tokens = rl.burst
	}
	rl.last = now
	if rl.tokens < 1 {
		// Over the limit: one retryable warning, then sustained abuse (a
		// second violation with no compliant request in between)
		// disconnects the client.
		rl.strikes++
		if srv.m != nil {
			srv.m.rateLimited.Inc()
		}
		if rl.strikes > 1 {
			srv.cfg.Events.Emit(obs.Event{Kind: obs.EvRateLimit,
				Time: now, App: s.name(), Queue: int32(rl.strikes)})
			return false, true
		}
		srv.cfg.Events.Emit(obs.Event{Kind: obs.EvRateLimit,
			Time: now, App: s.name(), Queue: 1})
		s.send(wire.Response{Seq: req.Seq, Type: wire.TypeResp,
			Err:  "overloaded: per-connection rate limit exceeded, back off",
			Code: wire.CodeOverloaded, Target: req.Target})
		return false, false
	}
	rl.tokens--
	rl.strikes = 0
	return true, false
}

// route sends one decoded request toward the goroutine owning its state:
// register and stats to the control loop, coordination verbs to the shard
// of the target they address. A coordination frame read before the session
// has an identity — a client pipelining ahead of its register response —
// also goes to the control loop, which processes it strictly after the
// register it was queued behind and forwards it to the right shard, so the
// frame is never misrouted to the wrong coordination domain. Returns false
// when the server is stopping.
func (srv *Server) route(s *session, req wire.Request) bool {
	ch := srv.reqCh
	coordination := req.Type != wire.TypeRegister && req.Type != wire.TypeStats
	if coordination && s.id.Load() != nil && s.viaControl.Load() == 0 {
		sh, err := srv.shardFor(srv.routeTarget(s, req.Target))
		if err != nil {
			s.reply(req.Seq, err, req.Target)
			return true
		}
		if sheddable(req.Type) && sh.shed() {
			if sh.m != nil {
				sh.m.sheds.Inc()
			}
			srv.shedReply(s, req.Seq, req.Type, sh.target, srv.clock())
			return true
		}
		ch = sh.ch
	} else if coordination {
		s.viaControl.Add(1)
	} else if req.Type == wire.TypeStats && srv.ctrlShed() {
		if srv.m != nil {
			srv.m.statsSheds.Inc()
		}
		srv.shedReply(s, req.Seq, req.Type, req.Target, srv.clock())
		return true
	}
	select {
	case ch <- envelope{kind: kindRequest, s: s, req: req}:
	case <-srv.stop:
		return false
	}
	return true
}

func (srv *Server) writeLoop(s *session) {
	defer srv.wg.Done()
	defer s.conn.Close()
	bw := bufio.NewWriter(s.wr)
	enc := s.codec.NewResponseWriter(bw)
	write := func(resp wire.Response) {
		if err := enc.Write(&resp); err != nil {
			s.dead.Store(true)
		}
		// Batch: flush only when no further response is queued.
		if len(s.out) == 0 {
			if err := bw.Flush(); err != nil {
				s.dead.Store(true)
			}
		}
	}
	for {
		select {
		case resp := <-s.out:
			write(resp)
		case <-s.quit:
			// Drain what the arbitration goroutines queued before teardown.
			for {
				select {
				case resp := <-s.out:
					write(resp)
					continue
				default:
				}
				return
			}
		}
	}
}

// loop is the control goroutine: session lifecycle (connect, register,
// disconnect, eviction), stats merging and shutdown. Coordination state
// lives with the shard goroutines.
func (srv *Server) loop() {
	defer close(srv.loopDone)
	var evict <-chan time.Time
	if srv.cfg.SessionTimeout > 0 {
		t := time.NewTicker(srv.cfg.SessionTimeout / 2)
		defer t.Stop()
		evict = t.C
	}
	for {
		select {
		case env := <-srv.reqCh:
			srv.dispatch(env)
			// Clear a stale brownout once the queue has drained: readers
			// only re-evaluate the bit when a request arrives, so an idle
			// daemon would otherwise report overloaded forever.
			if srv.ctrlHot.Load() && len(srv.reqCh) <= shedLoWater {
				srv.ctrlHot.Store(false)
			}
		case <-evict:
			srv.evictIdle()
		case <-srv.stop:
			srv.shutdown()
			return
		}
	}
}

func (srv *Server) dispatch(env envelope) {
	switch env.kind {
	case kindConnect:
		srv.sessions[env.s] = struct{}{}
		env.s.touch(srv.clock())
	case kindDisconnect:
		srv.disconnect(env.s)
	case kindHandshakeExpire:
		// The pre-register deadline. A register disarms the timer, but a
		// firing racing the disarm can still deliver this envelope — the
		// identity check makes it a no-op then.
		if !env.s.gone.Load() && !env.s.limbo && env.s.id.Load() == nil {
			if srv.m != nil {
				srv.m.handshakeTimeouts.Inc()
			}
			srv.logf("calciomd: dropping unregistered connection: handshake timeout")
			srv.drop(env.s, "handshake timeout")
		}
	case kindExpire:
		// The grace deadline of a limbo session. A resume stops the timer,
		// but a firing racing the stop can still deliver this envelope —
		// the limbo check makes it a no-op then (resume cleared it).
		if !env.s.gone.Load() && env.s.limbo {
			if id := env.s.id.Load(); id != nil {
				srv.cfg.Events.Emit(obs.Event{Kind: obs.EvGraceExpire,
					Time: srv.clock(), App: id.name})
			}
			srv.drop(env.s, "grace expired")
		}
	case kindStats:
		env.statsCh <- srv.snapshotLive()
	case kindRequest:
		if env.s.gone.Load() {
			env.s.replyGone(env.req.Seq, env.req.Target)
			return
		}
		now := srv.clock()
		env.s.touch(now)
		switch env.req.Type {
		case wire.TypeRegister:
			srv.register(env.s, env.req, now)
		case wire.TypeStats:
			st := srv.snapshotLive()
			env.s.send(wire.Response{Seq: env.req.Seq, Type: wire.TypeResp, OK: true, Stats: &st})
		default:
			// A coordination frame the reader routed through this queue
			// because the session had no identity yet (or had earlier such
			// frames still in flight — see session.viaControl). If a
			// pipelined register ahead of it in this queue has landed by
			// now, forward to the proper shard; otherwise the client
			// really isn't registered. The decrement comes after the
			// forward has been enqueued, so the reader resumes direct
			// routing only once this frame is in the shard's FIFO.
			if env.s.id.Load() == nil {
				env.s.reply(env.req.Seq, errors.New("not registered"), env.req.Target)
				env.s.viaControl.Add(-1)
				return
			}
			sh, err := srv.shardFor(srv.routeTarget(env.s, env.req.Target))
			if err != nil {
				env.s.reply(env.req.Seq, err, env.req.Target)
				env.s.viaControl.Add(-1)
				return
			}
			select {
			case sh.ch <- env:
			case <-srv.stop:
			}
			env.s.viaControl.Add(-1)
		}
	}
}

// register assigns the session its identity: name (globally unique across
// live sessions), cores, trace sid and default target. No arbiter learns
// about the application yet — each target's shard attaches it lazily on the
// session's first coordination request there, so registration order within
// a shard is its attach order (which is also what the trace records).
//
// A register naming an app the daemon already knows is a resume attempt
// when it carries a strictly higher incarnation: the old session — in its
// grace window after a disconnect, or a half-open zombie the client gave up
// on — is superseded and every shard moves its coordination accounting to
// the new connection. The client is expected to re-drive its protocol state
// (prepare/inform/wait) afterwards; the shard resets it at rebind, so
// resumed state is identical whether or not the daemon kept anything.
func (srv *Server) register(s *session, req wire.Request, now float64) {
	if id := s.id.Load(); id != nil {
		s.replyCode(req.Seq, wire.CodeProtocol, fmt.Errorf("already registered as %s", id.name), req.Target)
		return
	}
	if req.App == "" {
		s.replyCode(req.Seq, wire.CodeProtocol, errors.New("server: empty application name"), req.Target)
		return
	}
	if old, dup := srv.names[req.App]; dup {
		oldInc := uint64(0)
		if oid := old.id.Load(); oid != nil {
			oldInc = oid.incarnation
		}
		switch {
		case req.Incarnation == 0:
			s.replyCode(req.Seq, wire.CodeDuplicate, fmt.Errorf("server: duplicate application %q", req.App), req.Target)
		case req.Incarnation <= oldInc:
			s.replyCode(req.Seq, wire.CodeStaleIncarnation,
				fmt.Errorf("server: application %q resumed by incarnation %d, rejecting %d",
					req.App, oldInc, req.Incarnation), req.Target)
		default:
			srv.resume(s, old, req)
		}
		return
	}
	// Admission control: the bound gates only fresh names (the resume path
	// above replaces a session rather than adding one), and the reply is
	// the retryable CodeBusy — capacity frees as sessions end or are
	// evicted, so the client backs off instead of failing.
	if max := srv.cfg.MaxSessions; max > 0 && len(srv.names) >= max {
		if srv.m != nil {
			srv.m.busyRejects.Inc()
		}
		srv.cfg.Events.Emit(obs.Event{Kind: obs.EvBusy, Time: now, App: req.App})
		s.replyCode(req.Seq, wire.CodeBusy,
			fmt.Errorf("server: at session limit %d, try again later", max), req.Target)
		return
	}
	srv.sidSeq++
	id := &ident{name: req.App, cores: req.Cores, sid: srv.sidSeq,
		defTarget: req.Target, incarnation: req.Incarnation}
	srv.names[req.App] = s
	s.id.Store(id)
	s.disarmHandshake()
	// Incarnation > 1 on a fresh name is still a resume from the client's
	// point of view: its earlier incarnation registered with a daemon that
	// has since restarted.
	srv.foldDegraded(req, req.Incarnation > 1)
	srv.cfg.Events.Emit(obs.Event{Kind: obs.EvRegister, Time: now, App: req.App,
		Target: req.Target, Incarnation: req.Incarnation})
	s.reply(req.Seq, nil, req.Target)
}

// resume supersedes old with s: the name, trace sid and per-target
// accounting move to the new connection; the old session is torn down. The
// rebind envelopes are enqueued before the register reply is sent, so by the
// time the client's next coordination frame reaches a shard the binding is
// already its.
func (srv *Server) resume(s, old *session, req wire.Request) {
	oid := old.id.Load()
	id := &ident{name: req.App, cores: req.Cores, sid: oid.sid,
		defTarget: req.Target, incarnation: req.Incarnation}
	srv.names[req.App] = s
	s.id.Store(id)
	s.disarmHandshake()
	if old.graceTimer != nil {
		old.graceTimer.Stop()
		old.graceTimer = nil
	}
	old.limbo = false
	old.gone.Store(true)
	delete(srv.sessions, old)
	live := func() bool {
		srv.shmu.RLock()
		defer srv.shmu.RUnlock()
		return srv.shardsLive
	}()
	for _, sh := range srv.shardsSorted() {
		if !live {
			sh.rebind(old, s)
			continue
		}
		select {
		case sh.ch <- envelope{kind: kindRebind, s: old, to: s}:
		case <-srv.stop:
		}
	}
	old.teardown()
	srv.foldDegraded(req, true)
	srv.cfg.Events.Emit(obs.Event{Kind: obs.EvResume, Time: srv.clock(),
		App: req.App, Incarnation: req.Incarnation})
	srv.logf("calciomd: %s: resumed (incarnation %d)", req.App, req.Incarnation)
	s.reply(req.Seq, nil, req.Target)
}

// foldDegraded accumulates the fail-open report riding a register.
func (srv *Server) foldDegraded(req wire.Request, resumed bool) {
	if req.SelfGrants == 0 && req.DegradedS == 0 && !resumed {
		return
	}
	if req.SelfGrants > 0 || req.DegradedS > 0 {
		srv.degradedSeen.Store(true)
	}
	if srv.m != nil {
		srv.m.selfGrants.Add(req.SelfGrants)
		if req.DegradedS > 0 {
			srv.m.degradedSeconds.Add(req.DegradedS)
		}
		if resumed {
			srv.m.resumes.Inc()
		}
	}
	d := srv.degraded[req.App]
	if d == nil {
		d = &wire.DegradedStats{Name: req.App}
		srv.degraded[req.App] = d
	}
	d.SelfGrants += req.SelfGrants
	d.DegradedS += req.DegradedS
	if resumed {
		d.Resumes++
	}
}

// disconnect handles a connection death: under GrantGrace a registered
// session enters limbo — coordination state intact, name reserved — until
// the grace deadline or a resume; otherwise (no grace, or never registered)
// it is dropped immediately.
func (srv *Server) disconnect(s *session) {
	if s.gone.Load() || s.limbo {
		return
	}
	if id := s.id.Load(); id != nil {
		srv.cfg.Events.Emit(obs.Event{Kind: obs.EvDisconnect,
			Time: srv.clock(), App: id.name})
	}
	grace := srv.cfg.GrantGrace
	if grace <= 0 || s.id.Load() == nil {
		srv.drop(s, "disconnect")
		return
	}
	s.limbo = true
	s.teardown()
	s.graceTimer = time.AfterFunc(grace, func() {
		select {
		case srv.reqCh <- envelope{kind: kindExpire, s: s}:
		case <-srv.stop:
		}
	})
	if id := s.id.Load(); id != nil {
		srv.logf("calciomd: %s: disconnected, holding state for %s", id.name, grace)
	}
}

// reply answers a control-plane request (no binding, so never authorized).
// Errors are classified by codeFor; use replyCode for an explicit code.
func (s *session) reply(seq uint64, err error, target string) {
	code := ""
	if err != nil {
		code = codeFor(err)
	}
	s.replyCode(seq, code, err, target)
}

func (s *session) replyCode(seq uint64, code string, err error, target string) {
	r := wire.Response{Seq: seq, Type: wire.TypeResp, OK: err == nil, Target: target}
	if err != nil {
		r.Err = err.Error()
		r.Code = code
	}
	s.send(r)
}

// codeFor classifies an error reply for clients deciding between retry and
// fail-fast: everything here is fatal for the request that provoked it;
// retryable codes (draining) are set explicitly at their source.
func codeFor(err error) string {
	if errors.Is(err, errTooManyTargets) {
		return wire.CodeTooManyTargets
	}
	return wire.CodeProtocol
}

// drop removes a session: its name is freed, every shard is told to detach
// its binding (unregistering the app and re-arbitrating survivors), and the
// write loop is released. Safe to call once per session; later calls are
// no-ops.
func (srv *Server) drop(s *session, why string) {
	if !s.gone.CompareAndSwap(false, true) {
		return
	}
	if s.graceTimer != nil {
		s.graceTimer.Stop()
		s.graceTimer = nil
	}
	s.disarmHandshake()
	delete(srv.sessions, s)
	if id := s.id.Load(); id != nil {
		delete(srv.names, id.name)
		srv.logf("calciomd: %s: %s", id.name, why)
	}
	live := func() bool {
		srv.shmu.RLock()
		defer srv.shmu.RUnlock()
		return srv.shardsLive
	}()
	for _, sh := range srv.shardsSorted() {
		if !live {
			sh.detach(s)
			continue
		}
		select {
		case sh.ch <- envelope{kind: kindDetach, s: s}:
		case <-srv.stop:
			// Shutdown owns the rest of the teardown.
		}
	}
	s.teardown()
}

func (srv *Server) evictIdle() {
	now := srv.clock()
	limit := srv.cfg.SessionTimeout.Seconds()
	var stale []*session
	for s := range srv.sessions {
		// A session blocked in Wait on any target is not idle.
		if s.pendingWaits.Load() == 0 && now-s.seen() > limit {
			stale = append(stale, s)
		}
	}
	// Map iteration order is random; evict deterministically by name.
	sort.Slice(stale, func(i, j int) bool {
		ni, nj := "", ""
		if id := stale[i].id.Load(); id != nil {
			ni = id.name
		}
		if id := stale[j].id.Load(); id != nil {
			nj = id.name
		}
		return ni < nj
	})
	for _, s := range stale {
		srv.drop(s, "session timeout")
	}
}

// shutdown runs on the control goroutine once stop is closed: it waits for
// every shard goroutine to exit (after which this goroutine owns all
// coordination state again), takes the final snapshot inline, and tears
// down the remaining sessions. Shards created after stop closed never
// dispatch anything (run checks stop first), so waiting on the current list
// is complete.
func (srv *Server) shutdown() {
	for _, sh := range srv.shardsSorted() {
		<-sh.done
	}
	now := srv.clock()
	st := srv.snapshot(now)
	srv.mu.Lock()
	srv.final = st
	srv.mu.Unlock()
	for _, sh := range srv.shardsSorted() {
		if sh.recheck != nil {
			sh.recheck.Stop()
			sh.recheck = nil
		}
	}
	for s := range srv.sessions {
		s.gone.Store(true)
		s.teardown()
	}
	srv.sessions = nil
	srv.logf("calciomd: shutdown after %.3fs, %d grants served", now, st.GrantsServed)
}

// run is a shard's arbitration goroutine. The priority check on stop
// guarantees a shard created during shutdown never dispatches (and so never
// records a trace event after the control loop has exited).
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case <-sh.srv.stop:
			return
		default:
		}
		select {
		case env := <-sh.ch:
			sh.dispatch(env)
			// Clear a stale brownout once the queue has drained (readers
			// only re-evaluate on arrival; see Server.loop).
			if sh.hot.Load() && len(sh.ch) <= shedLoWater {
				sh.hot.Store(false)
			}
		case <-sh.srv.stop:
			return
		}
	}
}

func (sh *shard) dispatch(env envelope) {
	switch env.kind {
	case kindRequest:
		if env.s.gone.Load() {
			env.s.replyGone(env.req.Seq, env.req.Target)
			return
		}
		now := sh.srv.clock()
		env.s.touch(now)
		sh.handle(env.s, env.req, now)
	case kindRecheck:
		now := sh.srv.clock()
		sh.rec(trace.Event{Type: trace.EvRecheck, Time: now})
		sh.arbitrate(now)
	case kindDetach:
		sh.detach(env.s)
	case kindRebind:
		sh.rebind(env.s, env.to)
	case kindDrain:
		sh.drainWaits()
		close(env.ackCh)
	case kindSnapshot:
		env.snapCh <- sh.snap(env.now)
	}
}

// handle processes one request. It must stay panic-free for any request a
// client can send: protocol violations become error responses. Called from
// the shard's goroutine in serving mode, or from the caller's goroutine in
// inline mode (tests and benchmarks may drive disjoint shards concurrently
// — all state touched here is shard-local).
func (sh *shard) handle(s *session, req wire.Request, now float64) {
	b := sh.bindings[s]
	if b == nil {
		id := s.id.Load()
		if id == nil {
			sh.reply(nil, s, req.Seq, false, errors.New("not registered"))
			return
		}
		switch req.Type {
		case wire.TypePrepare, wire.TypeComplete, wire.TypeInform, wire.TypeProgress,
			wire.TypeCheck, wire.TypeWait, wire.TypeRelease, wire.TypeEnd:
			var err error
			if b, err = sh.attach(s, id, now); err != nil {
				sh.reply(nil, s, req.Seq, false, err)
				return
			}
		default:
			sh.reply(nil, s, req.Seq, false, fmt.Errorf("unknown request type %q", req.Type))
			return
		}
	}

	switch req.Type {
	case wire.TypePrepare:
		// The request's Info map is decode-fresh and never written after
		// this point, so recording it by reference is safe.
		sh.rec(trace.Event{Type: trace.EvPrepare, Time: now, SID: b.sid, Info: req.Info})
		b.app.Prepare(core.Info(req.Info))
		sh.reply(b, s, req.Seq, true, nil)

	case wire.TypeComplete:
		err := b.app.Complete()
		if err == nil {
			sh.rec(trace.Event{Type: trace.EvComplete, Time: now, SID: b.sid})
		}
		sh.reply(b, s, req.Seq, err == nil, err)

	case wire.TypeInform:
		sh.rec(trace.Event{Type: trace.EvInform, Time: now, SID: b.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			b.app.Progress(req.BytesDone)
		}
		if b.app.Inform(now) {
			b.phaseStart = now
			b.phases++
		}
		sh.arbitrate(now)
		sh.reply(b, s, req.Seq, true, nil)

	case wire.TypeProgress:
		// State-free, like the simulator's Coordinator.Progress: records
		// progress without opening a phase or triggering arbitration (the
		// value rides into the next inform/release arbitration).
		sh.rec(trace.Event{Type: trace.EvProgress, Time: now, SID: b.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			b.app.Progress(req.BytesDone)
		}
		sh.reply(b, s, req.Seq, true, nil)

	case wire.TypeCheck:
		sh.rec(trace.Event{Type: trace.EvCheck, Time: now, SID: b.sid})
		sh.reply(b, s, req.Seq, true, nil)

	case wire.TypeWait:
		if b.app.State() == core.Idle {
			sh.reply(b, s, req.Seq, false, fmt.Errorf("core: %s: Wait before Inform", b.app.Name()))
			return
		}
		if b.waitSeq != 0 {
			sh.reply(b, s, req.Seq, false, errors.New("wait already pending"))
			return
		}
		if sh.draining {
			// Never park a Wait on a daemon that is going away: the client
			// gets a retryable error now instead of hanging into teardown.
			s.send(wire.Response{Seq: req.Seq, Type: wire.TypeResp,
				Err: "draining: coordinator shutting down", Code: wire.CodeDraining,
				Authorized: b.app.Authorized(), Target: sh.target})
			return
		}
		sh.rec(trace.Event{Type: trace.EvWait, Time: now, SID: b.sid})
		if b.app.Authorized() {
			b.waitsImmediate++
			if sh.m != nil {
				sh.m.waitsImmediate.Inc()
				sh.m.waitSeconds.Observe(0)
			}
			if sh.ev != nil {
				sh.ev.Emit(obs.Event{Kind: obs.EvGrant, Time: now,
					App: b.app.Name(), Target: sh.target})
			}
			sh.serveGrant(b, req.Seq, now)
			return
		}
		b.waitSeq = req.Seq
		b.waitFrom = now
		b.waitConvoy = sh.arb.OtherAuthorized(b.app)
		b.waitPos = sh.pending
		s.pendingWaits.Add(1)
		sh.pending++
		if sh.m != nil {
			sh.m.queueDepth.Set(int64(sh.pending))
		}

	case wire.TypeRelease:
		// Recorded before the state-machine check: a failed Release still
		// applied the progress report, and replay mirrors exactly that.
		sh.rec(trace.Event{Type: trace.EvRelease, Time: now, SID: b.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			b.app.Progress(req.BytesDone)
		}
		if err := b.app.Release(); err != nil {
			sh.reply(b, s, req.Seq, false, err)
			return
		}
		sh.endHold(b, now)
		sh.arbitrate(now)
		sh.reply(b, s, req.Seq, true, nil)

	case wire.TypeEnd:
		if b.waitSeq != 0 {
			// A pipelined client is tearing the phase down under its own
			// pending Wait. Fail that Wait now: once the app is Idle it is
			// invisible to arbitration, so the deferred response would
			// never come and the dangling waitSeq would shield the session
			// from idle eviction forever.
			s.send(wire.Response{Seq: b.waitSeq, Type: wire.TypeResp,
				Err: "wait cancelled: phase ended", Code: wire.CodeProtocol, Target: sh.target})
			b.waitSeq = 0
			sh.unpark(s)
		}
		sh.rec(trace.Event{Type: trace.EvEnd, Time: now, SID: b.sid})
		if b.app.State() != core.Idle {
			b.ioTime += now - b.phaseStart
		}
		sh.endHold(b, now)
		b.app.End()
		sh.arbitrate(now)
		sh.reply(b, s, req.Seq, true, nil)

	default:
		sh.reply(b, s, req.Seq, false, fmt.Errorf("unknown request type %q", req.Type))
	}
}

// attach creates the session's binding on this target: the lazy per-shard
// registration that takes the place of the unsharded daemon's register-time
// Arbiter.Register. The trace records it as this shard's EvRegister, so
// replay reproduces the shard's registration order exactly.
func (sh *shard) attach(s *session, id *ident, now float64) (*binding, error) {
	app, err := sh.arb.Register(id.name, id.cores)
	if err != nil {
		return nil, err
	}
	b := &binding{s: s, app: app, sid: id.sid}
	app.Data = b
	sh.bindings[s] = b
	sh.rec(trace.Event{Type: trace.EvRegister, Time: now, SID: id.sid,
		App: id.name, Cores: int32(id.cores)})
	return b, nil
}

// detach is a session leaving this target: accounting folds into the
// shard's cumulative counters and, if the session was mid-phase, the
// survivors are re-arbitrated — a vanished holder must not wedge the queue.
func (sh *shard) detach(s *session) {
	b := sh.bindings[s]
	if b == nil {
		return
	}
	delete(sh.bindings, s)
	sh.goneWaitsImmediate += b.waitsImmediate
	sh.goneWaitsDeferred += b.waitsDeferred
	sh.goneConvoyWait += b.convoyWait
	sh.goneProtoWait += b.protoWait
	if b.waitSeq != 0 {
		b.waitSeq = 0
		sh.unpark(s)
	}
	now := sh.srv.clock()
	wasBusy := b.app.State() != core.Idle
	sh.arb.Unregister(b.app)
	b.app = nil
	sh.rec(trace.Event{Type: trace.EvUnregister, Time: now, SID: b.sid})
	if wasBusy {
		// A vanished mid-phase holder re-arbitrates the survivors; the trace
		// records this as an explicit recheck so replay re-arbitrates at the
		// same instant.
		sh.rec(trace.Event{Type: trace.EvRecheck, Time: now})
		sh.arbitrate(now)
	}
}

// rebind moves a resumed session's coordination state on this target from
// the dead connection to the new one. Protocol state is reset — the open
// phase is abandoned exactly as if the app had vanished (unregister,
// re-arbitrate survivors) and the app re-registers under the same name and
// sid — because the client cannot know which of its in-flight verbs the old
// connection delivered; it re-drives prepare/inform/wait from its own
// journal, which is correct against a reset state and only against one.
// Cumulative accounting (phases, grants, I/O and wait time) carries over,
// so stats and the `agg:` rollups see one application, not two. In the
// trace this is EvUnregister + EvRegister (+ EvRecheck when mid-phase):
// existing event types, so replay needs no special case.
func (sh *shard) rebind(old, s *session) {
	ob := sh.bindings[old]
	if ob == nil {
		return
	}
	id := s.id.Load()
	now := sh.srv.clock()
	delete(sh.bindings, old)
	sh.goneWaitsImmediate += ob.waitsImmediate
	sh.goneWaitsDeferred += ob.waitsDeferred
	sh.goneConvoyWait += ob.convoyWait
	sh.goneProtoWait += ob.protoWait
	if ob.waitSeq != 0 {
		// The deferred Wait died with the old connection; the client will
		// re-issue it after the resume.
		ob.waitSeq = 0
		sh.unpark(old)
	}
	wasBusy := ob.app.State() != core.Idle
	ioTime := ob.ioTime
	if wasBusy {
		ioTime += now - ob.phaseStart
	}
	sh.arb.Unregister(ob.app)
	sh.rec(trace.Event{Type: trace.EvUnregister, Time: now, SID: ob.sid})
	app, err := sh.arb.Register(id.name, id.cores)
	if err != nil {
		// Unreachable: the name was unregistered two lines up. Degrade to a
		// plain detach; the client's next verb will attach afresh.
		if wasBusy {
			sh.rec(trace.Event{Type: trace.EvRecheck, Time: now})
			sh.arbitrate(now)
		}
		return
	}
	b := &binding{s: s, app: app, sid: ob.sid,
		phases: ob.phases, grants: ob.grants, ioTime: ioTime, waitTime: ob.waitTime}
	app.Data = b
	sh.bindings[s] = b
	sh.rec(trace.Event{Type: trace.EvRegister, Time: now, SID: ob.sid,
		App: id.name, Cores: int32(id.cores)})
	if wasBusy {
		sh.rec(trace.Event{Type: trace.EvRecheck, Time: now})
		sh.arbitrate(now)
	}
}

// drainWaits is the shard half of Server.Drain: every parked Wait is
// answered with a retryable draining error (in registration order, so the
// response sequence is deterministic), and the draining flag makes handle
// refuse to park any new ones.
func (sh *shard) drainWaits() {
	sh.draining = true
	failed := int32(0)
	for _, a := range sh.arb.Apps() {
		b, ok := a.Data.(*binding)
		if !ok || b.waitSeq == 0 {
			continue
		}
		b.s.send(wire.Response{Seq: b.waitSeq, Type: wire.TypeResp,
			Err: "draining: coordinator shutting down", Code: wire.CodeDraining,
			Authorized: b.app.Authorized(), Target: sh.target})
		b.waitSeq = 0
		sh.unpark(b.s)
		failed++
	}
	if sh.ev != nil {
		sh.ev.Emit(obs.Event{Kind: obs.EvDrain, Time: sh.srv.clock(),
			Target: sh.target, Queue: failed})
	}
}

// reply sends the response to one request. Every response reports the
// application's current authorization on this shard's target (Target
// echoed), so the client library can maintain its cached per-target Check
// state from the response stream alone.
func (sh *shard) reply(b *binding, s *session, seq uint64, ok bool, err error) {
	r := wire.Response{Seq: seq, Type: wire.TypeResp, OK: ok, Target: sh.target}
	if err != nil {
		r.Err = err.Error()
		r.Code = codeFor(err)
	}
	if b != nil && b.app != nil {
		r.Authorized = b.app.Authorized()
	}
	s.send(r)
}

// serveGrant answers a Wait — immediately or deferred — and accounts for
// the served grant in one place.
func (sh *shard) serveGrant(b *binding, seq uint64, now float64) {
	b.app.Activate()
	b.grants++
	sh.grantsServed++
	b.grantAt = now
	b.holding = true
	if sh.m != nil {
		sh.m.grants.Inc()
	}
	b.s.send(wire.Response{Seq: seq, Type: wire.TypeResp, OK: true, Authorized: true, Target: sh.target})
}

// unpark undoes one parked Wait's queue accounting (served, cancelled,
// drained, or departed with its session).
func (sh *shard) unpark(s *session) {
	s.pendingWaits.Add(-1)
	sh.pending--
	if sh.m != nil {
		sh.m.queueDepth.Set(int64(sh.pending))
	}
}

// endHold closes the binding's outstanding grant hold, observing its
// duration. A no-op unless a serveGrant is outstanding.
func (sh *shard) endHold(b *binding, now float64) {
	if !b.holding {
		return
	}
	b.holding = false
	if sh.m != nil {
		sh.m.holdSeconds.Observe(now - b.grantAt)
	}
}

// rec records one trace event when recording is enabled, stamped with this
// shard's target. It is safe on the hot path: a nil check plus a by-value
// channel send.
func (sh *shard) rec(ev trace.Event) {
	if sh.srv.cfg.Trace != nil {
		ev.Target = sh.target
		sh.srv.cfg.Trace.Record(ev)
	}
}

// arbitrate runs one arbitration round on this target and delivers
// authorization changes: a granted application with a pending Wait receives
// its deferred response (this is a served grant); other flips are pushed as
// grant/revoke notifications. Delivery happens in registration order, so a
// serialized per-target request order yields one exact response order.
func (sh *shard) arbitrate(now float64) {
	if sh.recheck != nil {
		sh.recheck.Stop()
		sh.recheck = nil
	}
	out := sh.arb.Arbitrate(now)
	sh.arbitrations++
	if sh.m != nil {
		sh.m.arbitrations.Inc()
	}
	if !out.Acted {
		return
	}
	for _, a := range out.Granted {
		b := a.Data.(*binding)
		sh.rec(trace.Event{Type: trace.EvGrant, Time: now, SID: b.sid})
		if b.waitSeq != 0 {
			d := now - b.waitFrom
			b.waitTime += d
			if b.waitConvoy {
				b.convoyWait += d
			} else {
				b.protoWait += d
			}
			b.waitsDeferred++
			if sh.m != nil {
				sh.m.waitsDeferred.Inc()
				sh.m.waitSeconds.Observe(d)
			}
			if sh.ev != nil {
				sh.ev.Emit(obs.Event{Kind: obs.EvGrant, Time: now,
					App: b.app.Name(), Target: sh.target, WaitS: d,
					Queue: b.waitPos, Deferred: true, Convoy: b.waitConvoy})
			}
			seq := b.waitSeq
			b.waitSeq = 0
			sh.unpark(b.s)
			sh.serveGrant(b, seq, now)
		} else {
			b.s.send(wire.Response{Type: wire.TypeGrant, Authorized: true, Target: sh.target})
		}
	}
	for _, a := range out.Revoked {
		b := a.Data.(*binding)
		sh.rec(trace.Event{Type: trace.EvRevoke, Time: now, SID: b.sid})
		sh.endHold(b, now)
		if sh.m != nil {
			sh.m.revokes.Inc()
		}
		if sh.ev != nil {
			sh.ev.Emit(obs.Event{Kind: obs.EvRevoke, Time: now,
				App: b.app.Name(), Target: sh.target})
		}
		b.s.send(wire.Response{Type: wire.TypeRevoke, Target: sh.target})
	}
	if out.RecheckAfter > 0 {
		sh.recheck = time.AfterFunc(secondsToDuration(out.RecheckAfter), func() {
			select {
			case sh.ch <- envelope{kind: kindRecheck}:
			case <-sh.srv.stop:
			}
		})
	}
}

func secondsToDuration(s float64) time.Duration {
	if s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(s * float64(time.Second))
}

// snap builds this shard's slice of the stats snapshot: per-binding
// LASSi-style accounting in registration order, the shard aggregates, and
// the latest decision. Runs on the shard's goroutine (or inline).
func (sh *shard) snap(now float64) shardSnap {
	sn := shardSnap{
		target:         sh.target,
		bindings:       len(sh.bindings),
		arbitrations:   sh.arbitrations,
		grantsServed:   sh.grantsServed,
		waitsImmediate: sh.goneWaitsImmediate,
		waitsDeferred:  sh.goneWaitsDeferred,
		convoyWait:     sh.goneConvoyWait,
		protoWait:      sh.goneProtoWait,
	}
	if rec := sh.arb.LastRecord(); rec != nil {
		sn.lastDecision = fmt.Sprintf("t=%.3f allowed=%v %s", rec.Time, rec.Allowed, rec.Reason)
		sn.lastTime = rec.Time
		sn.hasDecision = true
	}
	if sh.m != nil {
		sn.waitHist = histFromSnapshot(sh.m.waitSeconds.Snapshot())
	}
	model := sh.srv.cfg.Model
	for _, a := range sh.arb.Apps() {
		b, ok := a.Data.(*binding)
		if !ok {
			continue
		}
		v := a.View()
		ioTime := b.ioTime
		if v.State != core.Idle {
			ioTime += now - b.phaseStart
		}
		as := wire.AppStats{
			Name:           v.Name,
			Target:         sh.target,
			Cores:          v.Cores,
			State:          v.State.String(),
			Authorized:     a.Authorized(),
			Phases:         b.phases,
			Grants:         b.grants,
			BytesTotal:     v.BytesTotal,
			BytesDone:      v.BytesDone,
			IOTimeS:        ioTime,
			WaitTimeS:      b.waitTime,
			WaitsImmediate: b.waitsImmediate,
			WaitsDeferred:  b.waitsDeferred,
			ConvoyWaitS:    b.convoyWait,
			ProtocolWaitS:  b.protoWait,
		}
		sn.waitsImmediate += b.waitsImmediate
		sn.waitsDeferred += b.waitsDeferred
		sn.convoyWait += b.convoyWait
		sn.protoWait += b.protoWait
		alone := 0.0
		if model != nil {
			// Live interference: observed time for the bytes moved so far
			// versus the model's solo estimate for those bytes.
			if solo := model.SoloTime(v, v.BytesDone); solo > 0 && !math.IsInf(solo, 1) {
				as.Interference = ioTime / solo
				alone = solo
			}
		}
		sn.rep = append(sn.rep, metrics.AppResult{
			Name: v.Name, Cores: v.Cores, IOTime: ioTime, AloneTime: alone,
		})
		sn.apps = append(sn.apps, as)
	}
	return sn
}

// snapshotLive gathers every shard's slice through its arbitration
// goroutine and merges. Runs on the control goroutine.
func (srv *Server) snapshotLive() wire.Stats {
	now := srv.clock()
	shards := srv.shardsSorted()
	snaps := make([]shardSnap, 0, len(shards))
	for _, sh := range shards {
		ch := make(chan shardSnap, 1)
		select {
		case sh.ch <- envelope{kind: kindSnapshot, now: now, snapCh: ch}:
			select {
			case sn := <-ch:
				snaps = append(snaps, sn)
			case <-srv.stop: // shard is exiting; shutdown owns the final snapshot
			}
		case <-srv.stop:
		}
	}
	return srv.merge(now, snaps)
}

// snapshot builds the full snapshot inline: every shard's slice on the
// calling goroutine. Only valid when no shard goroutines run (inline mode,
// or shutdown after they exited).
func (srv *Server) snapshot(now float64) wire.Stats {
	shards := srv.shardsSorted()
	snaps := make([]shardSnap, 0, len(shards))
	for _, sh := range shards {
		snaps = append(snaps, sh.snap(now))
	}
	return srv.merge(now, snaps)
}

// merge is the combining layer: per-target slices become the existing
// machine-wide wire.Stats shape (top-level counters are sums over targets,
// so single-target output is unchanged) plus the per-target breakdown.
func (srv *Server) merge(now float64, snaps []shardSnap) wire.Stats {
	st := wire.Stats{
		Policy:   srv.cfg.Policy.Name(),
		NowS:     now,
		Sessions: len(srv.sessions),
	}
	rep := metrics.Report{}
	lastTime := math.Inf(-1)
	for i := range snaps {
		sn := &snaps[i]
		st.Arbitrations += sn.arbitrations
		st.GrantsServed += sn.grantsServed
		st.WaitsImmediate += sn.waitsImmediate
		st.WaitsDeferred += sn.waitsDeferred
		st.ConvoyWaitS += sn.convoyWait
		st.ProtocolWaitS += sn.protoWait
		if sn.hasDecision && sn.lastTime > lastTime {
			lastTime = sn.lastTime
			st.LastDecision = sn.lastDecision
		}
		if sn.waitHist != nil {
			if st.WaitHist == nil {
				st.WaitHist = &wire.Hist{
					BoundsS: sn.waitHist.BoundsS,
					Counts:  make([]uint64, len(sn.waitHist.Counts)),
				}
			}
			st.WaitHist.Add(sn.waitHist)
		}
		st.Apps = append(st.Apps, sn.apps...)
		rep.Apps = append(rep.Apps, sn.rep...)
		st.Targets = append(st.Targets, wire.TargetStats{
			Target:         sn.target,
			Apps:           sn.bindings,
			Arbitrations:   sn.arbitrations,
			GrantsServed:   sn.grantsServed,
			WaitsImmediate: sn.waitsImmediate,
			WaitsDeferred:  sn.waitsDeferred,
			ConvoyWaitS:    sn.convoyWait,
			ProtocolWaitS:  sn.protoWait,
			LastDecision:   sn.lastDecision,
			WaitHist:       sn.waitHist,
		})
	}
	sort.Slice(st.Apps, func(i, j int) bool {
		if st.Apps[i].Name != st.Apps[j].Name {
			return st.Apps[i].Name < st.Apps[j].Name
		}
		return st.Apps[i].Target < st.Apps[j].Target
	})
	if len(srv.degraded) > 0 {
		names := make([]string, 0, len(srv.degraded))
		for name := range srv.degraded {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			d := srv.degraded[name]
			st.SelfGrants += d.SelfGrants
			st.DegradedS += d.DegradedS
			st.Degraded = append(st.Degraded, *d)
		}
	}
	st.CPUSecondsWasted = rep.CPUSecondsWasted()
	if srv.cfg.Model != nil {
		st.SumInterference = rep.SumInterferenceFinite()
	}
	return st
}

// handle is the inline-mode entry point: it plays the roles of the reader,
// control and shard goroutines on the caller's goroutine. Tests and
// benchmarks drive serialized (or per-shard-concurrent) request sequences
// through it; a serving server routes through readLoop instead.
func (srv *Server) handle(s *session, req wire.Request) {
	now := srv.clock()
	s.touch(now)
	switch req.Type {
	case wire.TypeRegister:
		srv.register(s, req, now)
	case wire.TypeStats:
		st := srv.snapshot(now)
		s.send(wire.Response{Seq: req.Seq, Type: wire.TypeResp, OK: true, Stats: &st})
	default:
		sh, err := srv.shardFor(srv.routeTarget(s, req.Target))
		if err != nil {
			s.reply(req.Seq, err, req.Target)
			return
		}
		sh.handle(s, req, now)
	}
}
