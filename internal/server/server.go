// Package server implements calciomd, the live CALCioM coordination daemon:
// the paper's arbitration layer run as a network service instead of inside
// the discrete-event simulator.
//
// Architecture: one goroutine per connection reads wire.Request frames and
// funnels them into a single arbitration goroutine; one goroutine per
// connection writes responses and pushed grants/revocations back out. All
// coordination state — the core.Arbiter shared with the simulator Layer,
// per-session accounting, pending Waits, the decision log — is owned by the
// arbitration goroutine alone, so there is no lock on the hot path and the
// daemon's decisions are fully deterministic given a serialized request
// order (with a deterministic Clock; the default clock is monotonic wall
// time).
//
// The arbitration hot path is allocation-conscious like the simulator's
// contention path: the Arbiter reuses its view/decision scratch, policies
// implementing core.IndexedArbitrator (fcfs, interrupt, interfere, delay)
// run map-free, and responses are written through per-connection buffered
// writers with batched flushes.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config parameterizes a daemon.
type Config struct {
	// ListenAddr is the TCP address for ListenAndServe ("host:port").
	ListenAddr string
	// Policy arbitrates file-system access; required.
	Policy core.Policy
	// Model, when set, lets stats estimate per-app solo times and live
	// interference factors (and is required by delay/dynamic policies,
	// which are constructed with it).
	Model *core.PerfModel
	// SessionTimeout evicts sessions idle longer than this; 0 disables.
	SessionTimeout time.Duration
	// Clock returns the coordination time in seconds. Nil means monotonic
	// wall time since the server started. Tests inject a logical clock to
	// make entire runs deterministic.
	Clock func() float64
	// LogBound bounds the decision log kept for stats: 0 means the default
	// (256), negative disables logging entirely (benchmarks).
	LogBound int
	// Logf, when set, receives one line per lifecycle event (connects,
	// evictions, shutdown). The arbitration hot path never logs.
	Logf func(format string, args ...any)
	// Trace, when set, records every state-mutating coordination event (and
	// the authorization flips arbitration produced) for offline replay with
	// internal/replay. Recording rides the arbitration goroutine but adds
	// neither blocking nor allocation to it: events travel by value into the
	// writer's buffered channel, and overflow is drop-counted, never waited
	// on. The caller owns the writer and must Close it only after the server
	// has shut down.
	Trace *trace.Writer
}

// envelope kinds flowing into the arbitration goroutine.
const (
	kindRequest = iota
	kindConnect
	kindDisconnect
	kindRecheck
	kindStats
)

type envelope struct {
	kind    int
	s       *session
	req     wire.Request
	statsCh chan wire.Stats
}

// session is one client connection. The conn/out/dead fields are shared
// with the reader and writer goroutines; everything else is owned by the
// arbitration goroutine.
type session struct {
	conn net.Conn
	out  chan wire.Response
	dead atomic.Bool

	app        *core.AppState
	sid        uint32 // trace session identity, assigned at register
	gone       bool   // unregistered/evicted; later envelopes are ignored
	waitSeq    uint64 // Seq of the deferred Wait response; 0 = none pending
	waitFrom   float64
	waitConvoy bool // deferred behind another authorized app (vs protocol)
	lastSeen   float64

	// LASSi-style live accounting, mirroring the simulator Coordinator.
	phaseStart float64
	phases     int
	grants     uint64
	ioTime     float64
	waitTime   float64

	// Wait decomposition (see wire.AppStats): immediate vs deferred counts,
	// and deferred time split by what the wait was for.
	waitsImmediate uint64
	waitsDeferred  uint64
	convoyWait     float64
	protoWait      float64
}

// send enqueues a response without ever blocking the arbitration loop: a
// client too slow to drain its buffer is disconnected rather than allowed
// to stall arbitration for everyone else.
func (s *session) send(r wire.Response) {
	if s.out == nil || s.dead.Load() {
		return
	}
	select {
	case s.out <- r:
	default:
		s.dead.Store(true)
		s.conn.Close()
	}
}

// Server is the coordination daemon. Create with New, run with Serve or
// ListenAndServe, stop with Close.
type Server struct {
	cfg   Config
	clock func() float64
	arb   *core.Arbiter

	reqCh chan envelope
	stop  chan struct{}

	mu        sync.Mutex
	ln        net.Listener
	closed    bool
	serving   bool
	serveDone chan struct{}
	loopDone  chan struct{}
	closeDone chan struct{} // closed once the first Close finished teardown
	wg        sync.WaitGroup
	final     wire.Stats // last snapshot, served after the loop exits

	// Owned by the arbitration goroutine.
	sessions     map[*session]struct{}
	recheck      *time.Timer
	arbitrations uint64
	grantsServed uint64
	sidSeq       uint32 // last trace session identity handed out

	// Wait-decomposition counters of departed sessions, folded in by drop,
	// so the machine-wide Stats aggregates are cumulative like GrantsServed
	// (and like offline replay's totals) rather than shrinking as sessions
	// disconnect.
	goneWaitsImmediate uint64
	goneWaitsDeferred  uint64
	goneConvoyWait     float64
	goneProtoWait      float64
}

// New validates the configuration and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Policy == nil {
		return nil, errors.New("server: nil policy")
	}
	clock := cfg.Clock
	if clock == nil {
		start := time.Now()
		clock = func() float64 { return time.Since(start).Seconds() }
	}
	arb := core.NewArbiter(cfg.Policy)
	arb.SetIndexed(true)
	switch {
	case cfg.LogBound < 0:
		arb.SetLogBound(0)
	case cfg.LogBound == 0:
		arb.SetLogBound(256)
	default:
		arb.SetLogBound(cfg.LogBound)
	}
	return &Server{
		cfg:       cfg,
		clock:     clock,
		arb:       arb,
		reqCh:     make(chan envelope, 256),
		stop:      make(chan struct{}),
		serveDone: make(chan struct{}),
		loopDone:  make(chan struct{}),
		closeDone: make(chan struct{}),
		sessions:  make(map[*session]struct{}),
	}, nil
}

func (srv *Server) logf(format string, args ...any) {
	if srv.cfg.Logf != nil {
		srv.cfg.Logf(format, args...)
	}
}

// Addr returns the listening address (nil before Serve).
func (srv *Server) Addr() net.Addr {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// ListenAndServe listens on cfg.ListenAddr and serves until Close.
func (srv *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", srv.cfg.ListenAddr)
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after a clean
// Close, or the accept error otherwise. Serve may be called at most once.
func (srv *Server) Serve(ln net.Listener) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	if srv.serving {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("server: already serving")
	}
	srv.serving = true
	srv.ln = ln
	srv.mu.Unlock()
	// Closed when the accept loop has returned: after that, no new
	// startSession can run, which Close relies on for a complete teardown.
	defer close(srv.serveDone)
	go srv.loop()
	srv.logf("calciomd: serving on %s (policy %s)", ln.Addr(), srv.cfg.Policy.Name())
	for {
		conn, err := ln.Accept()
		if err != nil {
			srv.mu.Lock()
			closed := srv.closed
			srv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		srv.startSession(conn)
	}
}

// Close stops the daemon: the listener, every session and the arbitration
// loop are torn down, and Close returns once all goroutines have exited.
// Concurrent and repeated Close calls are safe, and every one of them
// blocks until the teardown is complete — a caller that saw Serve return
// (the accept loop exits before the arbitration loop) can Close and then
// safely release resources the arbitration goroutine was using, such as a
// trace writer.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		<-srv.closeDone
		return nil
	}
	srv.closed = true
	ln, serving := srv.ln, srv.serving
	srv.mu.Unlock()
	defer close(srv.closeDone)
	if ln != nil {
		ln.Close()
	}
	if serving {
		// Wait for the accept loop first: once it has returned, no further
		// startSession can enqueue a connection the arbitration loop would
		// never see.
		<-srv.serveDone
	}
	close(srv.stop)
	if serving {
		<-srv.loopDone
		// Sessions whose kindConnect envelope was still queued when the
		// loop exited were never adopted by it; tear them down here or
		// their writer goroutines would block forever on an open out
		// channel (and Close would never return). Leftover envelopes of
		// other kinds reference sessions the loop already closed.
		for {
			select {
			case env := <-srv.reqCh:
				if env.kind == kindConnect {
					env.s.dead.Store(true)
					close(env.s.out)
					env.s.conn.Close()
				}
				continue
			default:
			}
			break
		}
	}
	srv.wg.Wait()
	return nil
}

// GrantsServed returns the total number of Wait authorizations served.
// Exact once the server is closed; a snapshot while running.
func (srv *Server) GrantsServed() uint64 {
	return srv.Stats().GrantsServed
}

// Stats returns a live metrics snapshot, consistent because it is computed
// inside the arbitration goroutine. After Close it returns the final
// snapshot taken at shutdown; on a server that never served it returns a
// zero snapshot instead of blocking.
func (srv *Server) Stats() wire.Stats {
	srv.mu.Lock()
	serving := srv.serving
	srv.mu.Unlock()
	if !serving {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.final
	}
	ch := make(chan wire.Stats, 1)
	select {
	case srv.reqCh <- envelope{kind: kindStats, statsCh: ch}:
		select {
		case st := <-ch:
			return st
		case <-srv.loopDone:
		}
	case <-srv.loopDone:
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.final
}

func (srv *Server) startSession(conn net.Conn) {
	s := &session{conn: conn, out: make(chan wire.Response, 256)}
	select {
	case srv.reqCh <- envelope{kind: kindConnect, s: s}:
	case <-srv.stop:
		conn.Close()
		return
	}
	srv.wg.Add(2)
	go srv.readLoop(s)
	go srv.writeLoop(s)
}

func (srv *Server) readLoop(s *session) {
	defer srv.wg.Done()
	dec := wire.NewReader(bufio.NewReader(s.conn))
	for {
		var req wire.Request
		if err := dec.Read(&req); err != nil {
			break
		}
		if req.Seq == 0 {
			break // reserved for pushes; a zero Seq is a client bug
		}
		select {
		case srv.reqCh <- envelope{kind: kindRequest, s: s, req: req}:
		case <-srv.stop:
			return
		}
	}
	select {
	case srv.reqCh <- envelope{kind: kindDisconnect, s: s}:
	case <-srv.stop:
	}
}

func (srv *Server) writeLoop(s *session) {
	defer srv.wg.Done()
	defer s.conn.Close()
	bw := bufio.NewWriter(s.conn)
	for resp := range s.out {
		if err := wire.Write(bw, resp); err != nil {
			s.dead.Store(true)
		}
		// Batch: flush only when no further response is queued.
		if len(s.out) == 0 {
			if err := bw.Flush(); err != nil {
				s.dead.Store(true)
			}
		}
	}
}

// loop is the arbitration goroutine: the only place coordination state is
// read or written.
func (srv *Server) loop() {
	defer close(srv.loopDone)
	var evict <-chan time.Time
	if srv.cfg.SessionTimeout > 0 {
		t := time.NewTicker(srv.cfg.SessionTimeout / 2)
		defer t.Stop()
		evict = t.C
	}
	for {
		select {
		case env := <-srv.reqCh:
			srv.dispatch(env)
		case <-evict:
			srv.evictIdle()
		case <-srv.stop:
			srv.shutdown()
			return
		}
	}
}

func (srv *Server) dispatch(env envelope) {
	switch env.kind {
	case kindConnect:
		srv.sessions[env.s] = struct{}{}
		env.s.lastSeen = srv.clock()
	case kindDisconnect:
		srv.drop(env.s, "disconnect")
	case kindRecheck:
		now := srv.clock()
		srv.rec(trace.Event{Type: trace.EvRecheck, Time: now})
		srv.arbitrate(now)
	case kindStats:
		env.statsCh <- srv.snapshot(srv.clock())
	case kindRequest:
		if env.s.gone {
			return
		}
		env.s.lastSeen = srv.clock()
		srv.handle(env.s, env.req)
	}
}

// drop unregisters a session's application and tears the connection down.
// If the application was mid-phase, the remaining applications are
// re-arbitrated — a vanished holder must not wedge the queue.
func (srv *Server) drop(s *session, why string) {
	if s.gone {
		return
	}
	s.gone = true
	delete(srv.sessions, s)
	srv.goneWaitsImmediate += s.waitsImmediate
	srv.goneWaitsDeferred += s.waitsDeferred
	srv.goneConvoyWait += s.convoyWait
	srv.goneProtoWait += s.protoWait
	wasBusy := false
	if s.app != nil {
		wasBusy = s.app.State() != core.Idle
		srv.logf("calciomd: %s: %s", s.app.Name(), why)
		srv.arb.Unregister(s.app)
		s.app = nil
		srv.rec(trace.Event{Type: trace.EvUnregister, Time: srv.clock(), SID: s.sid})
	}
	s.dead.Store(true)
	close(s.out)
	if wasBusy {
		// A vanished mid-phase holder re-arbitrates the survivors; the trace
		// records this as an explicit recheck so replay re-arbitrates at the
		// same instant.
		now := srv.clock()
		srv.rec(trace.Event{Type: trace.EvRecheck, Time: now})
		srv.arbitrate(now)
	}
}

func (srv *Server) evictIdle() {
	now := srv.clock()
	limit := srv.cfg.SessionTimeout.Seconds()
	var stale []*session
	for s := range srv.sessions {
		if s.waitSeq == 0 && now-s.lastSeen > limit {
			stale = append(stale, s)
		}
	}
	// Map iteration order is random; evict deterministically by name.
	sort.Slice(stale, func(i, j int) bool {
		ni, nj := "", ""
		if stale[i].app != nil {
			ni = stale[i].app.Name()
		}
		if stale[j].app != nil {
			nj = stale[j].app.Name()
		}
		return ni < nj
	})
	for _, s := range stale {
		srv.drop(s, "session timeout")
	}
}

func (srv *Server) shutdown() {
	now := srv.clock()
	st := srv.snapshot(now)
	srv.mu.Lock()
	srv.final = st
	srv.mu.Unlock()
	if srv.recheck != nil {
		srv.recheck.Stop()
		srv.recheck = nil
	}
	for s := range srv.sessions {
		s.gone = true
		s.dead.Store(true)
		close(s.out)
	}
	srv.sessions = nil
	srv.logf("calciomd: shutdown after %.3fs, %d grants served", now, st.GrantsServed)
}

// reply sends the response to one request. Every response reports the
// application's current authorization, so the client library can maintain
// its cached Check state from the response stream alone (single writer, in
// server order — no lost revocations).
func (s *session) reply(seq uint64, ok bool, err error) {
	r := wire.Response{Seq: seq, Type: wire.TypeResp, OK: ok}
	if err != nil {
		r.Err = err.Error()
	}
	if s.app != nil {
		r.Authorized = s.app.Authorized()
	}
	s.send(r)
}

// serveGrant answers a Wait — immediately or deferred — and accounts for
// the served grant in one place.
func (srv *Server) serveGrant(s *session, seq uint64) {
	s.app.Activate()
	s.grants++
	srv.grantsServed++
	s.send(wire.Response{Seq: seq, Type: wire.TypeResp, OK: true, Authorized: true})
}

// rec records one trace event when recording is enabled. It is safe on the
// hot path: a nil check plus a by-value channel send.
func (srv *Server) rec(ev trace.Event) {
	if srv.cfg.Trace != nil {
		srv.cfg.Trace.Record(ev)
	}
}

// handle processes one request. It must stay panic-free for any request a
// client can send: protocol violations become error responses.
func (srv *Server) handle(s *session, req wire.Request) {
	now := srv.clock()
	if s.app == nil && req.Type != wire.TypeRegister && req.Type != wire.TypeStats {
		s.reply(req.Seq, false, errors.New("not registered"))
		return
	}
	switch req.Type {
	case wire.TypeRegister:
		if s.app != nil {
			s.reply(req.Seq, false, fmt.Errorf("already registered as %s", s.app.Name()))
			return
		}
		app, err := srv.arb.Register(req.App, req.Cores)
		if err != nil {
			s.reply(req.Seq, false, err)
			return
		}
		app.Data = s
		s.app = app
		srv.sidSeq++
		s.sid = srv.sidSeq
		srv.rec(trace.Event{Type: trace.EvRegister, Time: now, SID: s.sid,
			App: req.App, Cores: int32(req.Cores)})
		s.reply(req.Seq, true, nil)

	case wire.TypePrepare:
		// The request's Info map is decode-fresh and never written after
		// this point, so recording it by reference is safe.
		srv.rec(trace.Event{Type: trace.EvPrepare, Time: now, SID: s.sid, Info: req.Info})
		s.app.Prepare(core.Info(req.Info))
		s.reply(req.Seq, true, nil)

	case wire.TypeComplete:
		err := s.app.Complete()
		if err == nil {
			srv.rec(trace.Event{Type: trace.EvComplete, Time: now, SID: s.sid})
		}
		s.reply(req.Seq, err == nil, err)

	case wire.TypeInform:
		srv.rec(trace.Event{Type: trace.EvInform, Time: now, SID: s.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			s.app.Progress(req.BytesDone)
		}
		if s.app.Inform(now) {
			s.phaseStart = now
			s.phases++
		}
		srv.arbitrate(now)
		s.reply(req.Seq, true, nil)

	case wire.TypeProgress:
		// State-free, like the simulator's Coordinator.Progress: records
		// progress without opening a phase or triggering arbitration (the
		// value rides into the next inform/release arbitration).
		srv.rec(trace.Event{Type: trace.EvProgress, Time: now, SID: s.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			s.app.Progress(req.BytesDone)
		}
		s.reply(req.Seq, true, nil)

	case wire.TypeCheck:
		srv.rec(trace.Event{Type: trace.EvCheck, Time: now, SID: s.sid})
		s.reply(req.Seq, true, nil)

	case wire.TypeWait:
		if s.app.State() == core.Idle {
			s.reply(req.Seq, false, fmt.Errorf("core: %s: Wait before Inform", s.app.Name()))
			return
		}
		if s.waitSeq != 0 {
			s.reply(req.Seq, false, errors.New("wait already pending"))
			return
		}
		srv.rec(trace.Event{Type: trace.EvWait, Time: now, SID: s.sid})
		if s.app.Authorized() {
			s.waitsImmediate++
			srv.serveGrant(s, req.Seq)
			return
		}
		s.waitSeq = req.Seq
		s.waitFrom = now
		s.waitConvoy = srv.arb.OtherAuthorized(s.app)

	case wire.TypeRelease:
		// Recorded before the state-machine check: a failed Release still
		// applied the progress report, and replay mirrors exactly that.
		srv.rec(trace.Event{Type: trace.EvRelease, Time: now, SID: s.sid, Bytes: req.BytesDone})
		if req.BytesDone > 0 {
			s.app.Progress(req.BytesDone)
		}
		if err := s.app.Release(); err != nil {
			s.reply(req.Seq, false, err)
			return
		}
		srv.arbitrate(now)
		s.reply(req.Seq, true, nil)

	case wire.TypeEnd:
		if s.waitSeq != 0 {
			// A pipelined client is tearing the phase down under its own
			// pending Wait. Fail that Wait now: once the app is Idle it is
			// invisible to arbitration, so the deferred response would
			// never come and the dangling waitSeq would shield the session
			// from idle eviction forever.
			s.send(wire.Response{Seq: s.waitSeq, Type: wire.TypeResp,
				Err: "wait cancelled: phase ended"})
			s.waitSeq = 0
		}
		srv.rec(trace.Event{Type: trace.EvEnd, Time: now, SID: s.sid})
		if s.app.State() != core.Idle {
			s.ioTime += now - s.phaseStart
		}
		s.app.End()
		srv.arbitrate(now)
		s.reply(req.Seq, true, nil)

	case wire.TypeStats:
		st := srv.snapshot(now)
		s.send(wire.Response{Seq: req.Seq, Type: wire.TypeResp, OK: true, Stats: &st})

	default:
		s.reply(req.Seq, false, fmt.Errorf("unknown request type %q", req.Type))
	}
}

// arbitrate runs one arbitration round and delivers authorization changes:
// a granted application with a pending Wait receives its deferred response
// (this is a served grant); other flips are pushed as grant/revoke
// notifications. Delivery happens in registration order, so a serialized
// request order yields one exact response order.
func (srv *Server) arbitrate(now float64) {
	if srv.recheck != nil {
		srv.recheck.Stop()
		srv.recheck = nil
	}
	out := srv.arb.Arbitrate(now)
	srv.arbitrations++
	if !out.Acted {
		return
	}
	for _, a := range out.Granted {
		s := a.Data.(*session)
		srv.rec(trace.Event{Type: trace.EvGrant, Time: now, SID: s.sid})
		if s.waitSeq != 0 {
			d := now - s.waitFrom
			s.waitTime += d
			if s.waitConvoy {
				s.convoyWait += d
			} else {
				s.protoWait += d
			}
			s.waitsDeferred++
			srv.serveGrant(s, s.waitSeq)
			s.waitSeq = 0
		} else {
			s.send(wire.Response{Type: wire.TypeGrant, Authorized: true})
		}
	}
	for _, a := range out.Revoked {
		s := a.Data.(*session)
		srv.rec(trace.Event{Type: trace.EvRevoke, Time: now, SID: s.sid})
		s.send(wire.Response{Type: wire.TypeRevoke})
	}
	if out.RecheckAfter > 0 {
		srv.recheck = time.AfterFunc(secondsToDuration(out.RecheckAfter), func() {
			select {
			case srv.reqCh <- envelope{kind: kindRecheck}:
			case <-srv.stop:
			}
		})
	}
}

func secondsToDuration(s float64) time.Duration {
	if s > math.MaxInt64/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(s * float64(time.Second))
}

// snapshot builds the LASSi-style live metrics view on internal/metrics:
// per-application observed I/O time (open phases count up to now), wait
// time, progress and grants, plus machine-wide CPU-seconds-wasted and — when
// a performance model is configured — live interference factors.
func (srv *Server) snapshot(now float64) wire.Stats {
	st := wire.Stats{
		Policy:         srv.cfg.Policy.Name(),
		NowS:           now,
		Sessions:       len(srv.sessions),
		Arbitrations:   srv.arbitrations,
		GrantsServed:   srv.grantsServed,
		WaitsImmediate: srv.goneWaitsImmediate,
		WaitsDeferred:  srv.goneWaitsDeferred,
		ConvoyWaitS:    srv.goneConvoyWait,
		ProtocolWaitS:  srv.goneProtoWait,
	}
	if rec := srv.arb.LastRecord(); rec != nil {
		st.LastDecision = fmt.Sprintf("t=%.3f allowed=%v %s", rec.Time, rec.Allowed, rec.Reason)
	}
	apps := srv.arb.Apps()
	rep := metrics.Report{Apps: make([]metrics.AppResult, 0, len(apps))}
	for _, a := range apps {
		s, ok := a.Data.(*session)
		if !ok {
			continue
		}
		v := a.View()
		ioTime := s.ioTime
		if v.State != core.Idle {
			ioTime += now - s.phaseStart
		}
		as := wire.AppStats{
			Name:           v.Name,
			Cores:          v.Cores,
			State:          v.State.String(),
			Authorized:     a.Authorized(),
			Phases:         s.phases,
			Grants:         s.grants,
			BytesTotal:     v.BytesTotal,
			BytesDone:      v.BytesDone,
			IOTimeS:        ioTime,
			WaitTimeS:      s.waitTime,
			WaitsImmediate: s.waitsImmediate,
			WaitsDeferred:  s.waitsDeferred,
			ConvoyWaitS:    s.convoyWait,
			ProtocolWaitS:  s.protoWait,
		}
		st.WaitsImmediate += s.waitsImmediate
		st.WaitsDeferred += s.waitsDeferred
		st.ConvoyWaitS += s.convoyWait
		st.ProtocolWaitS += s.protoWait
		alone := 0.0
		if srv.cfg.Model != nil {
			// Live interference: observed time for the bytes moved so far
			// versus the model's solo estimate for those bytes.
			if solo := srv.cfg.Model.SoloTime(v, v.BytesDone); solo > 0 && !math.IsInf(solo, 1) {
				as.Interference = ioTime / solo
				alone = solo
			}
		}
		rep.Apps = append(rep.Apps, metrics.AppResult{
			Name: v.Name, Cores: v.Cores, IOTime: ioTime, AloneTime: alone,
		})
		st.Apps = append(st.Apps, as)
	}
	sort.Slice(st.Apps, func(i, j int) bool { return st.Apps[i].Name < st.Apps[j].Name })
	st.CPUSecondsWasted = rep.CPUSecondsWasted()
	if srv.cfg.Model != nil {
		st.SumInterference = rep.SumInterferenceFinite()
	}
	return st
}
