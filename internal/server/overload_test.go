package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TestMaxSessionsAdmission: the MaxSessions bound rejects the registration
// past capacity with the retryable busy code, and a freed slot admits the
// next attempt.
func TestMaxSessionsAdmission(t *testing.T) {
	srv, addr := startTestServer(t, Config{MaxSessions: 2, Metrics: obs.NewRegistry()})
	a := dialT(t, addr)
	b := dialT(t, addr)
	if err := a.Register("A", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 4); err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	err := c.Register("C", 4)
	var re *client.ReplyError
	if !errors.As(err, &re) || re.Code != wire.CodeBusy {
		t.Fatalf("register over the bound = %v, want a %q reply", err, wire.CodeBusy)
	}
	if !wire.Retryable(re.Code) {
		t.Fatal("busy must be retryable: clients back off instead of failing")
	}
	if got := srv.m.busyRejects.Value(); got != 1 {
		t.Fatalf("busy rejects counter = %d, want 1", got)
	}
	// Freeing a slot (default grace 0: the disconnect drops the session
	// immediately) admits the next registration. The disconnect is processed
	// asynchronously, so poll with fresh connections.
	a.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := dialT(t, addr)
		if err := d.Register("D", 4); err == nil {
			break
		}
		d.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after a session disconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHandshakeTimeout: a connection that never registers is dropped at the
// deadline (the slow-loris guard), while a registered session is untouched
// by it.
func TestHandshakeTimeout(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		HandshakeTimeout: 30 * time.Millisecond, Metrics: obs.NewRegistry()})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	var buf [1]byte
	if _, err := raw.Read(buf[:]); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("unregistered connection survived the handshake deadline (read: %v)", err)
	}
	if got := srv.m.handshakeTimeouts.Value(); got != 1 {
		t.Fatalf("handshake timeouts counter = %d, want 1", got)
	}
	// A session that registers in time keeps its connection past the
	// deadline: the timer is disarmed at register.
	c := dialT(t, addr)
	if err := c.Register("A", 4); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if err := c.Target("").Inform(); err != nil {
		t.Fatalf("registered session dropped after the handshake deadline: %v", err)
	}
}

// TestShedHysteresis drives the brownout water marks directly on a bare
// shard queue: shedding starts at the high-water mark, persists through the
// band between the marks, and stops only at the low-water mark.
func TestShedHysteresis(t *testing.T) {
	sh := &shard{ch: make(chan envelope, queueCap)}
	for i := 0; i < shedHiWater-1; i++ {
		sh.ch <- envelope{}
	}
	if sh.shed() {
		t.Fatalf("queue %d (below hi-water %d) must not shed", len(sh.ch), shedHiWater)
	}
	sh.ch <- envelope{}
	if !sh.shed() {
		t.Fatalf("queue %d (at hi-water) must shed", len(sh.ch))
	}
	for len(sh.ch) > shedLoWater+1 {
		<-sh.ch
	}
	if !sh.shed() {
		t.Fatalf("queue %d (between the marks) must stay in brownout", len(sh.ch))
	}
	<-sh.ch
	if sh.shed() {
		t.Fatalf("queue %d (at lo-water %d) must exit brownout", len(sh.ch), shedLoWater)
	}
	if sh.hot.Load() {
		t.Fatal("hot bit must clear when brownout exits")
	}
}

// TestSheddableVerbs pins the never-shed set: state-critical verbs are
// always admitted, advisory verbs may be shed.
func TestSheddableVerbs(t *testing.T) {
	for _, v := range []string{wire.TypeRegister, wire.TypePrepare, wire.TypeComplete,
		wire.TypeWait, wire.TypeRelease, wire.TypeEnd} {
		if sheddable(v) {
			t.Errorf("%s is state-critical and must never shed", v)
		}
	}
	for _, v := range []string{wire.TypeInform, wire.TypeProgress, wire.TypeCheck, wire.TypeStats} {
		if !sheddable(v) {
			t.Errorf("%s is advisory and must be sheddable", v)
		}
	}
}

// TestRateLimitWarnsThenDisconnects: the first over-limit request gets one
// retryable overloaded reply; a second violation with no compliant request
// in between disconnects the connection. The logical clock makes refill
// negligible, so with RateLimit 1 the register consumes the whole burst.
func TestRateLimitWarnsThenDisconnects(t *testing.T) {
	srv, addr := startTestServer(t, Config{
		RateLimit: 1, Clock: logicalClock(), Metrics: obs.NewRegistry()})
	c := dialT(t, addr)
	if err := c.Register("A", 4); err != nil {
		t.Fatal(err)
	}
	_, err := c.Check()
	var re *client.ReplyError
	if !errors.As(err, &re) || re.Code != wire.CodeOverloaded {
		t.Fatalf("first over-limit request = %v, want a %q reply", err, wire.CodeOverloaded)
	}
	if !wire.Retryable(re.Code) {
		t.Fatal("overloaded must be retryable")
	}
	// Sustained abuse: the next over-limit request kills the connection (a
	// transport error, not another reply).
	_, err = c.Check()
	if err == nil {
		t.Fatal("second over-limit request must fail")
	}
	if errors.As(err, &re) {
		t.Fatalf("second violation should disconnect, not reply (got %q)", re.Code)
	}
	if got := srv.m.rateLimited.Value(); got != 2 {
		t.Fatalf("rate-limited counter = %d, want 2", got)
	}
}

// TestSlowClientDisconnect: a session whose write buffer overflows is cut
// off and counted in calciomd_slow_disconnects_total, and with a grace
// window configured the subsequent disconnect parks the session in limbo —
// name reserved, grants intact — instead of revoking immediately. Driven
// inline with a 1-slot buffer and no write loop, so the overflow is
// deterministic.
func TestSlowClientDisconnect(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(),
		WriteBuffer: 1, GrantGrace: time.Hour, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	s := &session{conn: sconn, out: make(chan wire.Response, 1), quit: make(chan struct{})}
	s.slowDrops = srv.m.slowDisconnects
	srv.sessions[s] = struct{}{}
	srv.handle(s, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 4}) // fills the only slot
	srv.handle(s, wire.Request{Seq: 2, Type: wire.TypeInform})                       // overflows it
	if got := srv.m.slowDisconnects.Value(); got != 1 {
		t.Fatalf("slow disconnects counter = %d, want 1", got)
	}
	cconn.SetReadDeadline(time.Now().Add(time.Second))
	var buf [1]byte
	if _, err := cconn.Read(buf[:]); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("overflow must close the connection (read: %v)", err)
	}
	// The reader reports the dead connection; with a grace window the
	// session enters limbo rather than being dropped.
	srv.disconnect(s)
	if !s.limbo {
		t.Fatal("slow disconnect with grace configured must park the session in limbo")
	}
	if _, reserved := srv.names["A"]; !reserved {
		t.Fatal("name must stay reserved through the grace window")
	}
	if bb := testBinding(srv, s); bb == nil || !bb.app.Authorized() {
		t.Fatal("the slow client's grant must survive into the grace window, not be revoked immediately")
	}
}

// BenchmarkServerArbitrateLimited is BenchmarkServerArbitrate with the whole
// overload-protection layer configured (session bound, handshake deadline,
// rate limit, metrics): the arbitration hot path must stay allocation-free
// with limits enabled, because admission and rate limiting live on the
// register path and the reader goroutines, not in the arbitration core.
func BenchmarkServerArbitrateLimited(b *testing.B) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(),
		MaxSessions: 64, HandshakeTimeout: time.Hour, RateLimit: 1e9,
		Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	const k = 16
	ss := make([]*session, k)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%02d", i), Cores: 64})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000000"}})
		srv.handle(ss[i], wire.Request{Seq: 3, Type: wire.TypeInform})
		srv.handle(ss[i], wire.Request{Seq: 4, Type: wire.TypeWait})
	}
	cycle := func(holder int) {
		s := ss[holder]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	for n := 0; n < 128; n++ {
		cycle(n % k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cycle(n % k)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
}
