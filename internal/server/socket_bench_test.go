package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

// The socket benchmarks measure the daemon end to end — TCP, codec
// negotiation, framing, arbitration, grant push — where the arbitration
// microbenchmarks (BenchmarkServerArbitrate*) stop at the handler. One op
// is one grant cycle (Inform, Wait, Release, End: four requests, one
// grant), driven by 8 workers over per-worker storage targets so cycles
// on different workers arbitrate independently. Reported metrics:
// grants/s, and bytes/req — daemon-side wire bytes (in+out) per request,
// the codec-footprint number the ROADMAP performance table tracks.
//
// BenchmarkSocketGrants holds 256 concurrent sessions in process and fits
// in a default 1024-fd limit. BenchmarkSocketGrants10k holds 10240
// concurrent sessions with the daemon in a helper process (re-exec of the
// test binary), because two 10k-connection endpoints cannot share one
// 20000-fd process; it skips when RLIMIT_NOFILE cannot cover its side.
// Run the big one with an explicit iteration count so the testing package
// does not redial the fleet per b.N estimate:
//
//	go test -run xxx -bench SocketGrants10k -benchtime 20000x -benchmem ./internal/server

const socketHelperEnv = "CALCIOM_SOCKET_BENCH_HELPER"

const socketBenchWorkers = 8

var socketBenchCodecs = []struct {
	name  string
	codec wire.Codec
}{
	{"json", wire.JSON},
	{"binary", wirebin.Codec{}},
}

func BenchmarkSocketGrants(b *testing.B) {
	for _, cc := range socketBenchCodecs {
		b.Run(cc.name, func(b *testing.B) {
			if got := raiseFDLimit(1024); got < 1024 {
				b.Skipf("need 1024 fds for 256 two-endpoint sessions, limit %d", got)
			}
			reg := obs.NewRegistry()
			srv, err := New(Config{Policy: core.FCFSPolicy{}, Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()
			runSocketBench(b, ln.Addr().String(), cc.codec, 256, func() (uint64, uint64) {
				return srv.m.bytesIn.Value(), srv.m.bytesOut.Value()
			})
		})
	}
}

func BenchmarkSocketGrants10k(b *testing.B) {
	for _, cc := range socketBenchCodecs {
		b.Run(cc.name, func(b *testing.B) {
			benchSocketHelperProcess(b, cc.codec, 10240)
		})
	}
}

// TestSocketBenchHelperProcess is not a test: it is the daemon half of
// BenchmarkSocketGrants10k, selected via -test.run when the benchmark
// re-execs the test binary. It serves until stdin closes, answering
// "stats" lines with the daemon-side byte counters so the parent can
// bracket its timed region exactly.
func TestSocketBenchHelperProcess(t *testing.T) {
	if os.Getenv(socketHelperEnv) != "1" {
		t.Skip("daemon helper process for BenchmarkSocketGrants10k")
	}
	raiseFDLimit(16000)
	reg := obs.NewRegistry()
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Metrics: reg, AcceptLoops: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("addr %s\n", ln.Addr().String())
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if sc.Text() == "stats" {
			fmt.Printf("stats bytes_in=%d bytes_out=%d\n",
				srv.m.bytesIn.Value(), srv.m.bytesOut.Value())
		}
	}
}

func benchSocketHelperProcess(b *testing.B, codec wire.Codec, sessions int) {
	need := uint64(sessions) + 512
	if got := raiseFDLimit(need); got < need {
		b.Skipf("need %d fds for %d client connections, limit %d", need, sessions, got)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestSocketBenchHelperProcess$")
	cmd.Env = append(os.Environ(), socketHelperEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	readLine := func(prefix string) string {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), prefix) {
				return strings.TrimPrefix(sc.Text(), prefix)
			}
		}
		b.Fatalf("helper exited before %q line", prefix)
		return ""
	}
	addr := readLine("addr ")
	runSocketBench(b, addr, codec, sessions, func() (uint64, uint64) {
		fmt.Fprintln(stdin, "stats")
		var in, out uint64
		if _, err := fmt.Sscanf(readLine("stats "), "bytes_in=%d bytes_out=%d", &in, &out); err != nil {
			b.Fatalf("helper stats line: %v", err)
		}
		return in, out
	})
}

// runSocketBench dials and registers the whole fleet, then times b.N
// grant cycles spread across the workers; every registered session stays
// connected for the duration, so the daemon holds `sessions` live
// connections while serving. stats reads the daemon-side byte counters.
func runSocketBench(b *testing.B, addr string, codec wire.Codec, sessions int, stats func() (uint64, uint64)) {
	opts := client.Options{Codec: codec}
	clients := make([]*client.Client, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bound dial concurrency: 10k at once would blow handshake deadlines
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := client.DialOptions(addr, opts)
			if err == nil {
				err = c.Register(fmt.Sprintf("bench-%05d", i), 1)
			}
			if err != nil {
				errs[i] = err
				return
			}
			clients[i] = c
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("session %d: %v", i, err)
		}
	}

	// Shard the fleet: worker w owns clients[i] with i%workers == w, all
	// bound to target t<w>, and retires its cycles round-robin over them.
	shards := make([][]client.Target, socketBenchWorkers)
	for i, c := range clients {
		w := i % socketBenchWorkers
		shards[w] = append(shards[w], c.Target(fmt.Sprintf("t%d", w)))
	}
	cycle := func(tg client.Target) error {
		if err := tg.Inform(); err != nil {
			return err
		}
		if err := tg.Wait(); err != nil {
			return err
		}
		if err := tg.Release(0); err != nil {
			return err
		}
		return tg.End()
	}
	// Touch every worker's path once so negotiation and shard creation are
	// out of the timed region.
	for _, shard := range shards {
		if err := cycle(shard[0]); err != nil {
			b.Fatal(err)
		}
	}

	startIn, startOut := stats()
	b.ReportAllocs()
	b.ResetTimer()
	var bwg sync.WaitGroup
	for w := 0; w < socketBenchWorkers; w++ {
		n := b.N / socketBenchWorkers
		if w < b.N%socketBenchWorkers {
			n++
		}
		bwg.Add(1)
		go func(shard []client.Target, n int) {
			defer bwg.Done()
			for k := 0; k < n; k++ {
				if err := cycle(shard[k%len(shard)]); err != nil {
					b.Error(err)
					return
				}
			}
		}(shards[w], n)
	}
	bwg.Wait()
	b.StopTimer()
	endIn, endOut := stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
	reqs := float64(4 * b.N)
	b.ReportMetric(float64((endIn-startIn)+(endOut-startOut))/reqs, "bytes/req")
}

// raiseFDLimit best-effort raises the soft RLIMIT_NOFILE to at least n
// (capped at the hard limit) and returns the resulting soft limit.
func raiseFDLimit(n uint64) uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur >= n {
		return rl.Cur
	}
	want := n
	if want > rl.Max {
		want = rl.Max
	}
	rl.Cur = want
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	return rl.Cur
}
