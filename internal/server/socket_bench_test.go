package server

import (
	"fmt"
	"net"
	"sync"
	"syscall"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

// The socket benchmarks measure the daemon end to end — TCP, codec
// negotiation, framing, arbitration, grant push — where the arbitration
// microbenchmarks (BenchmarkServerArbitrate*) stop at the handler. One op
// is one grant cycle (Inform, Wait, Release, End: four requests, one
// grant), driven by 8 workers over per-worker storage targets so cycles
// on different workers arbitrate independently. Reported metrics:
// grants/s, and bytes/req — daemon-side wire bytes (in+out) per request,
// the codec-footprint number the ROADMAP performance table tracks.
//
// BenchmarkSocketGrants holds 256 concurrent sessions in process, one
// connection each, and fits in a default 1024-fd limit.
// BenchmarkSocketGrantsMux holds the same 256 sessions as logical streams
// over 8 multiplexed connections — the apples-to-apples number for the
// session-mux extension. The 10k and 20k fleets ride mux connections too
// (10240 and 20480 sessions over 64 physical connections), which is what
// lets them run in process: the old helper-process re-exec existed only
// because two 10k-connection endpoints cannot share one 20000-fd process.
// Run the big ones with an explicit iteration count so the testing package
// does not redial the fleet per b.N estimate:
//
//	go test -run xxx -bench SocketGrants10k -benchtime 20000x -benchmem ./internal/server

// socketBenchWorkers is the one-connection-per-session harness's
// concurrency: 8 parallel grant cycles over 8 independent targets, the
// configuration every ROADMAP socket number since PR 9 was measured at.
const socketBenchWorkers = 8

// muxBenchWorkers drives the mux fleets harder: 64 concurrent grant cycles
// over 64 targets, 8 live streams per physical connection, which is the
// load shape session multiplexing exists for — the group-commit write
// loops (both sides) amortize one flush across every stream with a frame
// in flight.
const muxBenchWorkers = 64

var socketBenchCodecs = []struct {
	name  string
	codec wire.Codec
}{
	{"json", wire.JSON},
	{"binary", wirebin.Codec{}},
}

// startBenchServer runs an in-process daemon and returns its address plus a
// reader for the daemon-side byte counters.
func startBenchServer(b *testing.B) (string, func() (uint64, uint64)) {
	reg := obs.NewRegistry()
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), func() (uint64, uint64) {
		return srv.m.bytesIn.Value(), srv.m.bytesOut.Value()
	}
}

func BenchmarkSocketGrants(b *testing.B) {
	for _, cc := range socketBenchCodecs {
		b.Run(cc.name, func(b *testing.B) {
			if got := raiseFDLimit(1024); got < 1024 {
				b.Skipf("need 1024 fds for 256 two-endpoint sessions, limit %d", got)
			}
			addr, stats := startBenchServer(b)
			runSocketBench(b, addr, cc.codec, 256, stats)
		})
	}
}

func BenchmarkSocketGrantsMux(b *testing.B) {
	benchSocketMux(b, 256, 8)
}

func BenchmarkSocketGrants10k(b *testing.B) {
	benchSocketMux(b, 10240, 64)
}

func BenchmarkSocketGrants20k(b *testing.B) {
	benchSocketMux(b, 20480, 64)
}

// benchSocketMux times a fleet of logical sessions multiplexed over conns
// physical connections against an in-process daemon.
func benchSocketMux(b *testing.B, sessions, conns int) {
	if got := raiseFDLimit(1024); got < 1024 {
		b.Skipf("need 1024 fds, limit %d", got)
	}
	addr, stats := startBenchServer(b)
	muxes := make([]*client.Mux, conns)
	for i := range muxes {
		m, err := client.DialMux(addr, client.Options{})
		if err != nil {
			b.Fatal(err)
		}
		muxes[i] = m
	}
	defer func() {
		for _, m := range muxes {
			m.Close()
		}
	}()
	runSocketBenchDial(b, sessions, muxBenchWorkers, func(i int) (*client.Client, error) {
		return muxes[i%conns].Client()
	}, stats)
}

// runSocketBench is the one-connection-per-session harness: every session
// dials its own socket with the given codec.
func runSocketBench(b *testing.B, addr string, codec wire.Codec, sessions int, stats func() (uint64, uint64)) {
	opts := client.Options{Codec: codec}
	runSocketBenchDial(b, sessions, socketBenchWorkers, func(int) (*client.Client, error) {
		return client.DialOptions(addr, opts)
	}, stats)
}

// runSocketBenchDial dials and registers the whole fleet through the
// injected dialer, then times b.N grant cycles spread across the workers;
// every registered session stays connected for the duration, so the daemon
// holds `sessions` live logical sessions while serving. stats reads the
// daemon-side byte counters.
func runSocketBenchDial(b *testing.B, sessions, workers int, dial func(i int) (*client.Client, error), stats func() (uint64, uint64)) {
	clients := make([]*client.Client, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bound dial concurrency: 10k at once would blow handshake deadlines
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := dial(i)
			if err == nil {
				err = c.Register(fmt.Sprintf("bench-%05d", i), 1)
			}
			if err != nil {
				errs[i] = err
				return
			}
			clients[i] = c
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("session %d: %v", i, err)
		}
	}

	// Shard the fleet: worker w owns clients[i] with i%workers == w, all
	// bound to target t<w>, and retires its cycles round-robin over them.
	shards := make([][]client.Target, workers)
	for i, c := range clients {
		w := i % workers
		shards[w] = append(shards[w], c.Target(fmt.Sprintf("t%d", w)))
	}
	cycle := func(tg client.Target) error {
		if err := tg.Inform(); err != nil {
			return err
		}
		if err := tg.Wait(); err != nil {
			return err
		}
		if err := tg.Release(0); err != nil {
			return err
		}
		return tg.End()
	}
	// Touch every worker's path once so negotiation and shard creation are
	// out of the timed region.
	for _, shard := range shards {
		if err := cycle(shard[0]); err != nil {
			b.Fatal(err)
		}
	}

	startIn, startOut := stats()
	b.ReportAllocs()
	b.ResetTimer()
	var bwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		bwg.Add(1)
		go func(shard []client.Target, n int) {
			defer bwg.Done()
			for k := 0; k < n; k++ {
				if err := cycle(shard[k%len(shard)]); err != nil {
					b.Error(err)
					return
				}
			}
		}(shards[w], n)
	}
	bwg.Wait()
	b.StopTimer()
	endIn, endOut := stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
	reqs := float64(4 * b.N)
	b.ReportMetric(float64((endIn-startIn)+(endOut-startOut))/reqs, "bytes/req")
}

// raiseFDLimit best-effort raises the soft RLIMIT_NOFILE to at least n
// (capped at the hard limit) and returns the resulting soft limit.
func raiseFDLimit(n uint64) uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur >= n {
		return rl.Cur
	}
	want := n
	if want > rl.Max {
		want = rl.Max
	}
	rl.Cur = want
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	return rl.Cur
}
