package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/wire"
)

// logicalClock returns a deterministic strictly-monotonic clock: each call
// advances time by one microsecond. It is mutex-protected because the
// control and shard goroutines all read the server clock.
func logicalClock() func() float64 {
	var mu sync.Mutex
	var t float64
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		t += 1e-6
		return t
	}
}

// testBinding returns a session's coordination state on the given target.
func testBindingOn(srv *Server, s *session, target string) *binding {
	sh, err := srv.shardFor(target)
	if err != nil {
		panic(err)
	}
	return sh.bindings[s]
}

// testBinding is testBindingOn for the default target (inline-mode tests
// mostly drive a single shard).
func testBinding(srv *Server, s *session) *binding {
	return testBindingOn(srv, s, "")
}

func startTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Policy == nil {
		cfg.Policy = core.FCFSPolicy{}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func info(bytes float64) core.Info {
	in := core.Info{}
	in.SetFloat(core.KeyBytesTotal, bytes)
	return in
}

func TestSinglePhaseLifecycle(t *testing.T) {
	srv, addr := startTestServer(t, Config{})
	c := dialT(t, addr)
	if err := c.Register("A", 64); err != nil {
		t.Fatal(err)
	}
	sess := client.NewSession(c)
	if err := sess.Begin(info(100)); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if ok, err := c.Check(); err != nil || !ok {
		t.Fatalf("Check after Begin = %v, %v; want authorized", ok, err)
	}
	if err := sess.Yield(50); err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if err := sess.End(100); err != nil {
		t.Fatalf("End: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GrantsServed != 2 { // Begin + Yield each served one wait
		t.Fatalf("grants served = %d, want 2 (stats: %+v)", st.GrantsServed, st)
	}
	if len(st.Apps) != 1 || st.Apps[0].Name != "A" || st.Apps[0].Phases != 1 {
		t.Fatalf("app stats = %+v", st.Apps)
	}
	if st.Apps[0].State != "idle" || st.Apps[0].BytesDone != 100 {
		t.Fatalf("app stats = %+v", st.Apps[0])
	}
	if srv.GrantsServed() != 2 {
		t.Fatalf("server grants = %d", srv.GrantsServed())
	}
}

func TestFCFSSerializesSecondClient(t *testing.T) {
	_, addr := startTestServer(t, Config{Clock: logicalClock()})
	a := dialT(t, addr)
	b := dialT(t, addr)
	if err := a.Register("A", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 4); err != nil {
		t.Fatal(err)
	}
	sa, sb := client.NewSession(a), client.NewSession(b)
	if err := sa.Begin(info(10)); err != nil {
		t.Fatal(err)
	}
	// B informs and waits; the wait must be deferred until A ends.
	if err := b.Prepare(info(10)); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := b.Check(); ok {
		t.Fatal("B authorized while A holds access under fcfs")
	}
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	select {
	case err := <-done:
		t.Fatalf("B's Wait returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := sa.End(10); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("B's Wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B never granted after A ended")
	}
	if err := sb.End(10); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startTestServer(t, Config{})
	c := dialT(t, addr)

	// Everything but register requires registration.
	if err := c.Inform(); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("inform unregistered: %v", err)
	}
	if err := c.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("A", 1); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("double register: %v", err)
	}
	if err := c.Wait(); err == nil || !strings.Contains(err.Error(), "Wait before Inform") {
		t.Fatalf("wait before inform: %v", err)
	}
	if err := c.Complete(); err == nil || !strings.Contains(err.Error(), "Complete without Prepare") {
		t.Fatalf("complete without prepare: %v", err)
	}
	if err := c.Release(0); err == nil || !strings.Contains(err.Error(), "Release while") {
		t.Fatalf("release while idle: %v", err)
	}

	// Duplicate name from a second connection.
	d := dialT(t, addr)
	if err := d.Register("A", 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name: %v", err)
	}
	// The error must not have killed the session: a fresh name works.
	if err := d.Register("B", 1); err != nil {
		t.Fatalf("register after duplicate error: %v", err)
	}
}

func TestDisconnectOfHolderUnblocksQueue(t *testing.T) {
	_, addr := startTestServer(t, Config{Clock: logicalClock()})
	a := dialT(t, addr)
	b := dialT(t, addr)
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.NewSession(a).Begin(info(10)); err != nil {
		t.Fatal(err)
	}
	if err := b.Prepare(info(10)); err != nil {
		t.Fatal(err)
	}
	if err := b.Inform(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	time.Sleep(20 * time.Millisecond)
	a.Close() // the holder vanishes mid-phase
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("B's Wait after holder died: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B never granted after holder disconnected")
	}
}

func TestInterruptPreemptsHolder(t *testing.T) {
	_, addr := startTestServer(t, Config{Policy: core.InterruptPolicy{}, Clock: logicalClock()})
	a := dialT(t, addr)
	b := dialT(t, addr)
	if err := a.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	if err := client.NewSession(a).Begin(info(10)); err != nil {
		t.Fatal(err)
	}
	// B arrives later: under interruption it is granted immediately, and A
	// is revoked (observed at A's next coordination point).
	if err := client.NewSession(b).Begin(info(10)); err != nil {
		t.Fatalf("newcomer not granted under interrupt policy: %v", err)
	}
	if ok, _ := a.Check(); ok {
		t.Fatal("holder still authorized after interruption")
	}
	// A pauses at its next yield and resumes when B is done.
	done := make(chan error, 1)
	go func() { done <- client.NewSession(a).Yield(5) }()
	select {
	case err := <-done:
		t.Fatalf("A's Yield returned while B held access: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := client.NewSession(b).End(10); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("A's Yield after B ended: %v", err)
	}
}

func TestSessionTimeoutEviction(t *testing.T) {
	srv, addr := startTestServer(t, Config{SessionTimeout: 50 * time.Millisecond})
	c := dialT(t, addr)
	if err := c.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if st.Sessions == 0 && len(st.Apps) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not evicted: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A waiting client must NOT be evicted: blocked in Wait is not idle.
	d := dialT(t, addr)
	if err := d.Register("B", 1); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicGivenSerializedOrder replays one serialized request
// sequence against two fresh servers with identical logical clocks and
// requires bit-identical decision logs and stats.
func TestDeterministicGivenSerializedOrder(t *testing.T) {
	run := func() string {
		srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock(),
			Model: &core.PerfModel{FSBandwidth: 1e9, ProcNIC: 1e8}})
		if err != nil {
			t.Fatal(err)
		}
		// Drive the arbitration core directly (no network): three apps
		// interleaving phases in one fixed order.
		ss := make([]*session, 3)
		for i := range ss {
			ss[i] = &session{}
			srv.sessions = map[*session]struct{}{}
			srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%d", i), Cores: 32})
			srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000"}})
		}
		for round := 0; round < 5; round++ {
			for _, s := range ss {
				srv.handle(s, wire.Request{Seq: 3, Type: wire.TypeInform})
				srv.handle(s, wire.Request{Seq: 4, Type: wire.TypeWait})
			}
			for _, s := range ss {
				srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease, BytesDone: float64(100 * (round + 1))})
				srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
			}
		}
		var sb strings.Builder
		for _, d := range srv.set.Log() {
			fmt.Fprintf(&sb, "t=%.6f allowed=%v %s\n", d.Time, d.Allowed, d.Reason)
		}
		st := srv.snapshot(srv.clock())
		fmt.Fprintf(&sb, "grants=%d arbitrations=%d\n", st.GrantsServed, st.Arbitrations)
		for _, a := range st.Apps {
			fmt.Fprintf(&sb, "%s phases=%d grants=%d done=%.0f\n", a.Name, a.Phases, a.Grants, a.BytesDone)
		}
		return sb.String()
	}
	one, two := run(), run()
	if one != two {
		t.Fatalf("two identical serialized runs diverged:\n--- run 1\n%s--- run 2\n%s", one, two)
	}
	if !strings.Contains(one, "grants=") || strings.Contains(one, "grants=0 ") {
		t.Fatalf("implausible transcript:\n%s", one)
	}
}

// BenchmarkServerArbitrate measures the daemon's arbitration core — request
// handling, policy decision, grant delivery, bounded decision logging —
// without network I/O, under the default configuration (LogBound 256).
// Each iteration retires the current fcfs holder (release + end),
// re-queues it (inform + wait) and serves exactly one deferred grant to
// the next application in line.
func BenchmarkServerArbitrate(b *testing.B) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock()})
	if err != nil {
		b.Fatal(err)
	}
	const k = 16
	ss := make([]*session, k)
	for i := range ss {
		ss[i] = &session{}
		srv.handle(ss[i], wire.Request{Seq: 1, Type: wire.TypeRegister, App: fmt.Sprintf("app-%02d", i), Cores: 64})
		srv.handle(ss[i], wire.Request{Seq: 2, Type: wire.TypePrepare, Info: map[string]string{core.KeyBytesTotal: "1000000"}})
		srv.handle(ss[i], wire.Request{Seq: 3, Type: wire.TypeInform})
		srv.handle(ss[i], wire.Request{Seq: 4, Type: wire.TypeWait})
	}
	cycle := func(holder int) {
		s := ss[holder]
		srv.handle(s, wire.Request{Seq: 5, Type: wire.TypeRelease})
		srv.handle(s, wire.Request{Seq: 6, Type: wire.TypeEnd})
		srv.handle(s, wire.Request{Seq: 7, Type: wire.TypeInform})
		srv.handle(s, wire.Request{Seq: 8, Type: wire.TypeWait})
	}
	// Warm the decision-log ring past its bound so the timed region shows
	// the allocation-free steady state of the default config.
	for n := 0; n < 128; n++ {
		cycle(n % k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cycle(n % k)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "grants/s")
}

// TestEndCancelsPendingWait: a pipelined client that tears down its phase
// with a Wait still outstanding must get that Wait failed (not leaked — a
// dangling waitSeq would shield the session from idle eviction forever).
func TestEndCancelsPendingWait(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}, Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	drain := func(s *session) []wire.Response {
		var out []wire.Response
		for {
			select {
			case r := <-s.out:
				out = append(out, r)
			default:
				return out
			}
		}
	}
	a := &session{out: make(chan wire.Response, 16)}
	b := &session{out: make(chan wire.Response, 16)}
	srv.handle(a, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "A", Cores: 1})
	srv.handle(b, wire.Request{Seq: 1, Type: wire.TypeRegister, App: "B", Cores: 1})
	srv.handle(a, wire.Request{Seq: 2, Type: wire.TypeInform})
	srv.handle(a, wire.Request{Seq: 3, Type: wire.TypeWait}) // A holds access
	drain(a)
	drain(b)
	srv.handle(b, wire.Request{Seq: 2, Type: wire.TypeInform})
	srv.handle(b, wire.Request{Seq: 3, Type: wire.TypeWait}) // deferred
	if got := drain(b); len(got) != 1 {                      // only the inform response
		t.Fatalf("expected only the inform response before end, got %+v", got)
	}
	srv.handle(b, wire.Request{Seq: 4, Type: wire.TypeEnd})
	if bb := testBinding(srv, b); bb.waitSeq != 0 {
		t.Fatalf("waitSeq still dangling: %d", bb.waitSeq)
	}
	if n := b.pendingWaits.Load(); n != 0 {
		t.Fatalf("pendingWaits still %d after cancelled wait", n)
	}
	got := drain(b)
	if len(got) != 2 {
		t.Fatalf("want cancelled-wait + end responses, got %+v", got)
	}
	if got[0].Seq != 3 || got[0].Err == "" {
		t.Fatalf("pending wait not failed: %+v", got[0])
	}
	if got[1].Seq != 4 || !got[1].OK {
		t.Fatalf("end not acknowledged: %+v", got[1])
	}
}

// TestCloseWaitersBlockUntilTeardown: every Close call — not just the
// first — must return only after the arbitration loop has exited, so a
// caller that saw Serve return can Close and then release resources the
// arbitration goroutine was using (calciomd's trace writer relies on it).
func TestCloseWaitersBlockUntilTeardown(t *testing.T) {
	srv, addr := startTestServer(t, Config{})
	c := dialT(t, addr)
	if err := c.Register("A", 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
			select {
			case <-srv.loopDone:
			default:
				t.Error("Close returned before the arbitration loop exited")
			}
		}()
	}
	wg.Wait()
}

// TestStatsWithoutServeDoesNotHang: Stats on a server that never served
// must return a zero snapshot instead of blocking forever.
func TestStatsWithoutServeDoesNotHang(t *testing.T) {
	srv, err := New(Config{Policy: core.FCFSPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan wire.Stats, 1)
	go func() { done <- srv.Stats() }()
	select {
	case st := <-done:
		if st.GrantsServed != 0 {
			t.Fatalf("zero snapshot expected, got %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stats hung on never-served server")
	}
	srv.Close()
}
