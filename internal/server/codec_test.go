package server

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/internal/wirebin"
)

func dialBinaryT(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.DialOptions(addr, client.Options{Codec: wirebin.Codec{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBinaryCodecLifecycle drives the canonical phase sequence over the
// negotiated binary codec: the pipelined hello, binary register, grants,
// pushes and stats must behave exactly like the JSON protocol.
func TestBinaryCodecLifecycle(t *testing.T) {
	srv, addr := startTestServer(t, Config{})
	c := dialBinaryT(t, addr)
	if err := c.Register("A", 64); err != nil {
		t.Fatal(err)
	}
	sess := client.NewSession(c)
	if err := sess.Begin(info(100)); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if ok, err := c.Check(); err != nil || !ok {
		t.Fatalf("Check after Begin = %v, %v; want authorized", ok, err)
	}
	if err := sess.Yield(50); err != nil {
		t.Fatalf("Yield: %v", err)
	}
	if err := sess.End(100); err != nil {
		t.Fatalf("End: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GrantsServed != 2 || srv.GrantsServed() != 2 {
		t.Fatalf("grants served = %d/%d, want 2", st.GrantsServed, srv.GrantsServed())
	}
	if len(st.Apps) != 1 || st.Apps[0].Name != "A" || st.Apps[0].BytesDone != 100 {
		t.Fatalf("app stats = %+v", st.Apps)
	}
}

// TestMixedCodecSessions checks v1 and v2 clients coordinate on the same
// daemon: codec negotiation is per connection, arbitration is oblivious.
func TestMixedCodecSessions(t *testing.T) {
	_, addr := startTestServer(t, Config{Clock: logicalClock()})
	a := dialT(t, addr) // JSON v1
	b := dialBinaryT(t, addr)
	if err := a.Register("A", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 4); err != nil {
		t.Fatal(err)
	}
	sa, sb := client.NewSession(a), client.NewSession(b)
	if err := sa.Begin(info(10)); err != nil {
		t.Fatal(err)
	}
	// B parks behind A (FCFS), then A finishes and B is granted — the grant
	// is pushed to B over the binary codec.
	done := make(chan error, 1)
	go func() {
		if err := sb.Begin(info(10)); err != nil {
			done <- err
			return
		}
		done <- sb.End(10)
	}()
	time.Sleep(20 * time.Millisecond)
	if err := sa.End(10); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("binary session behind JSON holder: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("binary session hung behind JSON holder")
	}
}

// TestCodecConnectionMetrics checks the negotiated-codec connection
// counters and the byte counters beneath the per-connection buffers.
func TestCodecConnectionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startTestServer(t, Config{Metrics: reg})
	j := dialT(t, addr)
	b := dialBinaryT(t, addr)
	if err := j.Register("J", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("B", 1); err != nil {
		t.Fatal(err)
	}
	if got := srv.m.connsJSON.Value(); got != 1 {
		t.Fatalf("connections{codec=json} = %d, want 1", got)
	}
	if got := srv.m.connsBinary.Value(); got != 1 {
		t.Fatalf("connections{codec=binary} = %d, want 1", got)
	}
	if in, out := srv.m.bytesIn.Value(), srv.m.bytesOut.Value(); in == 0 || out == 0 {
		t.Fatalf("byte counters = in %d, out %d; want both nonzero", in, out)
	}
}

// TestUnsupportedCodecVersionRejected: a hello naming a version the daemon
// does not speak must close the connection rather than guess.
func TestUnsupportedCodecVersionRejected(t *testing.T) {
	_, addr := startTestServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{wire.HelloMagic, 99}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err != io.EOF {
		t.Fatalf("read after bad hello = %v, want EOF (connection closed)", err)
	}
}

// TestSocketTuningAndAcceptSharding exercises the listener options end to
// end: several accept loops and explicit kernel socket buffers must still
// serve every connection exactly once.
func TestSocketTuningAndAcceptSharding(t *testing.T) {
	srv, addr := startTestServer(t, Config{AcceptLoops: 4, SockBuffer: 64 << 10})
	const n = 8
	for i := 0; i < n; i++ {
		c := dialT(t, addr)
		if err := c.Register(string(rune('A'+i)), 1); err != nil {
			t.Fatal(err)
		}
		sess := client.NewSession(c)
		if err := sess.Begin(info(1)); err != nil {
			t.Fatal(err)
		}
		if err := sess.End(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.GrantsServed(); got != n {
		t.Fatalf("grants served = %d, want %d", got, n)
	}
}
