//go:build !linux

package server

import (
	"errors"
	"net"
)

// reuseportAvailable is false off Linux: ListenAndServe falls back to the
// shared-listener accept loops (AcceptLoops goroutines on one listener).
const reuseportAvailable = false

func listenReuseport(addr string, n int) ([]net.Listener, error) {
	return nil, errors.New("server: SO_REUSEPORT listener sharding requires linux")
}
