package delta

import (
	"runtime"
	"testing"

	"repro/internal/platform"
)

// fabricScenario is testScenario under the explicit-fabric contention model
// — the mode whose solver used to iterate Go maps while accumulating
// floats, a latent per-run nondeterminism.
func fabricScenario() Scenario {
	sc := testScenario()
	sc.TrueNetwork = true
	return sc
}

func runOnce(sc Scenario) Result {
	return sc.Run(FCFS, []float64{0, 3})
}

func sameResult(a, b Result) bool {
	if a.Makespan != b.Makespan || len(a.IOTime) != len(b.IOTime) {
		return false
	}
	for i := range a.IOTime {
		if a.IOTime[i] != b.IOTime[i] {
			return false
		}
	}
	return true
}

// TestTrueNetworkRunDeterministic: the same TrueNetwork scenario run twice
// must produce bit-identical Results — not merely within tolerance. The
// fabric solver iterates links and flows in dense ID order, so its float
// accumulation order (and thus every rate and completion time) is fixed.
func TestTrueNetworkRunDeterministic(t *testing.T) {
	sc := fabricScenario()
	a := runOnce(sc)
	for i := 0; i < 3; i++ {
		if b := runOnce(sc); !sameResult(a, b) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, a.IOTime, b.IOTime)
		}
	}
}

// TestSweepDeterministicAcrossGOMAXPROCS: a parallel sweep's outputs must
// not depend on how many workers ran it — each point is its own engine, and
// worker scheduling only changes who computes a point, never its value.
func TestSweepDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := fabricScenario()
	dts := []float64{-4, -1, 0, 1, 2, 4, 7}

	prev := runtime.GOMAXPROCS(1)
	serial := sc.Sweep(FCFS, dts)
	runtime.GOMAXPROCS(prev)
	parallel := sc.Sweep(FCFS, dts)

	for k := range dts {
		if serial.TimeA[k] != parallel.TimeA[k] || serial.TimeB[k] != parallel.TimeB[k] {
			t.Fatalf("dt=%v: serial (%v, %v) vs parallel (%v, %v)",
				dts[k], serial.TimeA[k], serial.TimeB[k], parallel.TimeA[k], parallel.TimeB[k])
		}
		if serial.FactorA[k] != parallel.FactorA[k] || serial.FactorB[k] != parallel.FactorB[k] ||
			serial.CPUPerCore[k] != parallel.CPUPerCore[k] {
			t.Fatalf("dt=%v: derived metrics diverged across GOMAXPROCS", dts[k])
		}
	}

	// And the whole sweep replays bit-identically.
	again := sc.Sweep(FCFS, dts)
	for k := range dts {
		if parallel.TimeA[k] != again.TimeA[k] || parallel.TimeB[k] != again.TimeB[k] {
			t.Fatalf("dt=%v: sweep not reproducible run-to-run", dts[k])
		}
	}
}

// TestSweepPointSteadyStateAllocFree guards the resettable-platform
// property the sweep workers rely on, alongside the fabric and engine alloc
// guards: from the 2nd point on, a reused platform runs a TrueNetwork sweep
// point with zero allocations — per-point cost is pure simulation, no
// object-graph churn.
func TestSweepPointSteadyStateAllocFree(t *testing.T) {
	sc := fabricScenario()
	pl := platform.NewPool().Acquire(sc.Spec(), nil)
	starts := []float64{0, 0}
	dts := []float64{-1, 0, 1, 3}
	run := func(dt float64) {
		starts[0], starts[1] = 0, dt
		if dt < 0 {
			starts[0], starts[1] = -dt, 0
		}
		pl.Run(starts, nil)
	}
	run(dts[0]) // first point builds the pools
	for _, dt := range dts {
		if allocs := testing.AllocsPerRun(20, func() { run(dt) }); allocs != 0 {
			t.Fatalf("dt=%v: steady-state sweep point allocates %.1f objects, want 0", dt, allocs)
		}
	}
}
