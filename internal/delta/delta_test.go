package delta

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ior"
	"repro/internal/pfs"
)

const miB = int64(1) << 20

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// testScenario: 4 servers x 64 MiB/s = 256 MiB/s; apps of 32 procs at
// 4 MiB/s NIC (128 MiB/s injection) writing 8 MiB/proc = 256 MiB each.
func testScenario() Scenario {
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 8 * miB, BlocksPerProc: 1, ReqBytes: 2 * miB}
	return Scenario{
		Name: "test",
		FS: pfs.Config{
			Servers: 4, StripeBytes: miB, ServerBW: 64 * float64(miB),
		},
		ProcNIC:       4 * float64(miB),
		CommBWPerProc: 4 * float64(miB),
		CoordLatency:  1e-4,
		Apps: []AppSpec{
			{Name: "A", Procs: 32, Nodes: 8, W: w, Gran: ior.PerRound},
			{Name: "B", Procs: 32, Nodes: 8, W: w, Gran: ior.PerRound},
		},
	}
}

func TestSoloTime(t *testing.T) {
	sc := testScenario()
	// 256 MiB at injection 128 MiB/s: 2s.
	if got := sc.Solo(0); !almostEq(got, 2, 1e-6) {
		t.Fatalf("solo = %v, want 2", got)
	}
}

func TestRunUncoordinatedOverlap(t *testing.T) {
	sc := testScenario()
	res := sc.Run(Uncoordinated, []float64{0, 0})
	// Combined demand 256 equals capacity: both take 2s... demand is
	// 2x128 = 256 = capacity, so no slowdown at all.
	if !almostEq(res.IOTime[0], 2, 1e-3) || !almostEq(res.IOTime[1], 2, 1e-3) {
		t.Fatalf("io times %v, want [2 2] (demand == capacity)", res.IOTime)
	}
	if res.Decisions != nil {
		t.Fatal("uncoordinated run should have no decisions")
	}
}

func TestRunFCFSSerializes(t *testing.T) {
	sc := testScenario()
	res := sc.Run(FCFS, []float64{0, 0.5})
	if !almostEq(res.IOTime[0], 2, 1e-2) {
		t.Fatalf("A = %v, want ~2 (protected)", res.IOTime[0])
	}
	// B waits 1.5s then writes 2s.
	if !almostEq(res.IOTime[1], 3.5, 1e-2) {
		t.Fatalf("B = %v, want ~3.5", res.IOTime[1])
	}
	if len(res.Decisions) == 0 {
		t.Fatal("coordinated run should log decisions")
	}
}

func TestSweepShapes(t *testing.T) {
	sc := testScenario()
	dts := []float64{-3, -1, 0, 1, 3}
	s := sc.Sweep(Uncoordinated, dts)
	if s.Policy != "uncoordinated" {
		t.Fatalf("policy name %q", s.Policy)
	}
	if len(s.TimeA) != len(dts) || len(s.FactorB) != len(dts) {
		t.Fatal("series length mismatch")
	}
	// No overlap at |dt| >= 2: factors 1.
	if !almostEq(s.FactorA[0], 1, 1e-6) || !almostEq(s.FactorB[4], 1, 1e-6) {
		t.Fatalf("edge factors %v %v, want 1", s.FactorA[0], s.FactorB[4])
	}
	for i := range dts {
		if s.TimeA[i] <= 0 || s.TimeB[i] <= 0 {
			t.Fatal("nonpositive times")
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	sc := testScenario()
	dts := []float64{-1, 0, 1}
	a := sc.Sweep(FCFS, dts)
	b := sc.Sweep(FCFS, dts)
	for i := range dts {
		if a.TimeA[i] != b.TimeA[i] || a.TimeB[i] != b.TimeB[i] {
			t.Fatalf("sweep not deterministic at %d", i)
		}
	}
}

func TestExpectedModel(t *testing.T) {
	sc := testScenario()
	dts := []float64{-4, -1, 0, 1, 4}
	s := sc.Expected(dts)
	solo := s.SoloA
	// Peak 2x solo at dt=0.
	if !almostEq(s.TimeA[2], 2*solo, 1e-6) {
		t.Fatalf("expected peak %v, want %v", s.TimeA[2], 2*solo)
	}
	// No overlap far out.
	if !almostEq(s.TimeA[0], solo, 1e-6) || !almostEq(s.TimeB[4], solo, 1e-6) {
		t.Fatal("expected tails should be solo")
	}
	// Piecewise linear: dt=1 -> first app 2*solo - dt.
	if !almostEq(s.TimeA[3], 2*solo-1, 1e-6) {
		t.Fatalf("expected at dt=1: %v, want %v", s.TimeA[3], 2*solo-1)
	}
}

func TestPolicyFactories(t *testing.T) {
	sc := testScenario()
	m := sc.Model()
	if m.FSBandwidth != 4*64*float64(miB) {
		t.Fatalf("model FS bw %v", m.FSBandwidth)
	}
	names := map[string]PolicyFactory{
		"interfere": Interfere,
		"fcfs":      FCFS,
		"interrupt": Interrupt,
	}
	for want, f := range names {
		if got := f(m).Name(); got != want {
			t.Fatalf("factory name %q, want %q", got, want)
		}
	}
	if got := Dynamic(core.CPUSecondsWasted{}, true)(m).Name(); got != "dynamic(cpu-seconds)" {
		t.Fatalf("dynamic name %q", got)
	}
	if got := Delay(0.5)(m).Name(); got != "delay(0.50)" {
		t.Fatalf("delay name %q", got)
	}
}

func TestRunValidatesStarts(t *testing.T) {
	sc := testScenario()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong starts length")
		}
	}()
	sc.Run(nil, []float64{0})
}

func TestSweepRequiresTwoApps(t *testing.T) {
	sc := testScenario()
	sc.Apps = sc.Apps[:1]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for single-app sweep")
		}
	}()
	sc.Sweep(nil, []float64{0})
}

func TestMakespan(t *testing.T) {
	sc := testScenario()
	res := sc.Run(Uncoordinated, []float64{0, 5})
	// B starts at 5 and takes 2s.
	if !almostEq(res.Makespan, 7, 1e-3) {
		t.Fatalf("makespan %v, want ~7", res.Makespan)
	}
}

// Property: across randomized two-app scenarios, coordination invariants
// hold end-to-end: the FCFS first arriver runs at essentially its solo
// time, every policy's outcome is at least solo (no time travel), and the
// interfering makespan never beats FCFS's first app.
func TestPropertyScenarioInvariants(t *testing.T) {
	rng := func(seed int64) *scenarioRNG { return &scenarioRNG{seed: seed} }
	for seed := int64(0); seed < 25; seed++ {
		r := rng(seed)
		sc := r.scenario()
		dt := r.f(0.1, 3)
		soloA := sc.Solo(0)
		soloB := sc.Solo(1)

		fcfs := sc.Run(FCFS, []float64{0, dt})
		inter := sc.Run(Uncoordinated, []float64{0, dt})

		// First arriver under FCFS pays only coordination messages.
		if fcfs.IOTime[0] > soloA*1.02+0.01 {
			t.Fatalf("seed %d: FCFS A %v exceeds solo %v", seed, fcfs.IOTime[0], soloA)
		}
		// Nobody ever beats their solo time.
		for i, v := range [][2]float64{{fcfs.IOTime[0], soloA}, {fcfs.IOTime[1], soloB},
			{inter.IOTime[0], soloA}, {inter.IOTime[1], soloB}} {
			if v[0] < v[1]*(1-1e-6) {
				t.Fatalf("seed %d case %d: time %v beats solo %v", seed, i, v[0], v[1])
			}
		}
		// FCFS's second app is never faster than interference lets it be
		// minus its own solo (sanity: queueing adds, never subtracts).
		if fcfs.IOTime[1] < soloB*(1-1e-6) {
			t.Fatalf("seed %d: FCFS B %v below solo %v", seed, fcfs.IOTime[1], soloB)
		}
	}
}

// scenarioRNG builds small random but valid scenarios.
type scenarioRNG struct{ seed int64 }

func (r *scenarioRNG) f(lo, hi float64) float64 {
	r.seed = r.seed*6364136223846793005 + 1442695040888963407
	u := float64((r.seed>>11)&((1<<52)-1)) / float64(int64(1)<<52)
	return lo + u*(hi-lo)
}

func (r *scenarioRNG) i(lo, hi int) int { return lo + int(r.f(0, float64(hi-lo+1))) }

func (r *scenarioRNG) scenario() Scenario {
	servers := r.i(2, 12)
	w := func() ior.Workload {
		pat := ior.Contiguous
		if r.i(0, 1) == 1 {
			pat = ior.Strided
		}
		return ior.Workload{
			Pattern:       pat,
			BlockSize:     int64(r.i(1, 8)) * miB,
			BlocksPerProc: r.i(1, 4),
			ReqBytes:      int64(r.i(1, 2)) * miB,
			CB:            ior.CollectiveBuffering{BufBytes: 8 * miB},
		}
	}
	return Scenario{
		Name: "random",
		FS: pfs.Config{
			Servers:     servers,
			StripeBytes: 256 << 10,
			ServerBW:    r.f(20, 120) * float64(miB),
		},
		ProcNIC:       r.f(2, 12) * float64(miB),
		CommBWPerProc: r.f(5, 40) * float64(miB),
		CommAlpha:     1e-6,
		CoordLatency:  1e-4,
		Apps: []AppSpec{
			{Name: "A", Procs: r.i(8, 256), Nodes: 0, W: w(), Gran: ior.PerRound},
			{Name: "B", Procs: r.i(8, 256), Nodes: 0, W: w(), Gran: ior.PerRound},
		},
	}
}
