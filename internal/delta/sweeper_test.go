package delta

import (
	"testing"

	"repro/internal/ior"
	"repro/internal/pfs"
)

// sweepScenario is a small TrueNetwork two-app scenario, the shape the
// macro benchmarks sweep.
func sweepScenario() Scenario {
	w := ior.Workload{Pattern: ior.Contiguous, BlockSize: 8 << 20, BlocksPerProc: 1, ReqBytes: 2 << 20}
	return Scenario{
		Name:        "sweeper-test",
		FS:          pfs.Config{Servers: 4, StripeBytes: 1 << 20, ServerBW: 500e6},
		ProcNIC:     50e6,
		TrueNetwork: true,
		Apps: []AppSpec{
			{Name: "A", Procs: 64, Nodes: 16, W: w, Gran: ior.PerRound},
			{Name: "B", Procs: 64, Nodes: 16, W: w, Gran: ior.PerRound},
		},
	}
}

func seriesEqual(t *testing.T, a, b Series) {
	t.Helper()
	if a.Policy != b.Policy || a.SoloA != b.SoloA || a.SoloB != b.SoloB {
		t.Fatalf("series headers differ: %+v vs %+v", a.Policy, b.Policy)
	}
	for _, pair := range [][2][]float64{
		{a.DT, b.DT}, {a.TimeA, b.TimeA}, {a.TimeB, b.TimeB},
		{a.FactorA, b.FactorA}, {a.FactorB, b.FactorB}, {a.CPUPerCore, b.CPUPerCore},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("series lengths differ: %d vs %d", len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("series diverge at %d: %v vs %v", i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestSweeperReuseBitIdentical pins the Sweeper contract: repeated sweeps
// on one executor — and sweeps of different point sets interleaved — are
// bit-identical to fresh Scenario.Sweep runs.
func TestSweeperReuseBitIdentical(t *testing.T) {
	sc := sweepScenario()
	dts := []float64{-4, -1, 0, 1, 4}
	fresh := sc.Sweep(Uncoordinated, dts)

	sw := NewSweeper()
	first := sw.Sweep(sc, Uncoordinated, dts)
	seriesEqual(t, fresh, first)

	// A different point set on the same executor, then the original again.
	sw.Sweep(sc, Uncoordinated, []float64{-2, 2})
	var again Series
	sw.SweepInto(&again, sc, Uncoordinated, dts)
	seriesEqual(t, fresh, again)
}

// TestSweeperSteadyStateAllocs guards the ROADMAP open item, now closed:
// with a persistent executor — worker goroutines kept alive and fed through
// channels — and a reused Series, the marginal sweep allocates NOTHING: no
// platform construction, no solo recalibration, no goroutine spawn, no
// output growth. AllocsPerRun counts mallocs process-wide, so the workers'
// sweep points are measured too.
func TestSweeperSteadyStateAllocs(t *testing.T) {
	sc := sweepScenario()
	dts := []float64{-4, -1, 0, 1, 4}
	sw := NewSweeper()
	defer sw.Close()
	var s Series
	sw.SweepInto(&s, sc, Uncoordinated, dts) // build platforms, size backing
	sw.SweepInto(&s, sc, Uncoordinated, dts) // settle any lazy growth

	allocs := testing.AllocsPerRun(5, func() {
		sw.SweepInto(&s, sc, Uncoordinated, dts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state SweepInto allocates %.1f objects per sweep, want 0", allocs)
	}
}

// TestSweeperCloseStopsWorkers: after Close the workers are gone and reuse
// panics loudly instead of hanging on a closed feed channel.
func TestSweeperCloseStopsWorkers(t *testing.T) {
	sc := sweepScenario()
	sw := NewSweeper()
	sw.Sweep(sc, Uncoordinated, []float64{0})
	sw.Close()
	sw.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("SweepInto after Close did not panic")
		}
	}()
	var s Series
	sw.SweepInto(&s, sc, Uncoordinated, []float64{0})
}
