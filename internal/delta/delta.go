// Package delta is the experiment harness for the paper's ∆-graphs:
// application A starts an I/O phase at a reference time, application B at an
// offset dt, and the observed I/O time (or interference factor I = T/T_alone)
// of each is plotted against dt, for each coordination policy.
package delta

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/platform"
	"repro/internal/timeline"
)

// AppSpec describes one application in a scenario.
type AppSpec = platform.AppSpec

// Scenario is a full experimental setup: platform constants plus the
// applications. One Scenario value is immutable and reusable; runs execute
// on a platform.Pool, which builds the pfs+ior+mpi+layer object graph once
// per distinct spec and resets it per run.
type Scenario struct {
	Name          string
	FS            pfs.Config
	ProcNIC       float64 // per-process injection bandwidth (bytes/s)
	CommBWPerProc float64 // per-process collective-comm bandwidth (bytes/s)
	CommAlpha     float64 // interconnect latency for collectives (s)
	CoordLatency  float64 // CALCioM message latency (s)
	Apps          []AppSpec

	// TrueNetwork switches the contention model from per-server sharing
	// with static injection caps to an explicit fabric (per-app NIC links
	// plus per-server links) under global max-min fairness. Used by the
	// network-model ablation.
	TrueNetwork bool
}

// Spec converts the scenario to the platform package's build description.
func (sc Scenario) Spec() platform.Spec {
	return platform.Spec{
		FS:            sc.FS,
		TrueNetwork:   sc.TrueNetwork,
		ProcNIC:       sc.ProcNIC,
		CommBWPerProc: sc.CommBWPerProc,
		CommAlpha:     sc.CommAlpha,
		CoordLatency:  sc.CoordLatency,
		Apps:          sc.Apps,
	}
}

// PolicyFactory builds a fresh policy for one run; the model carries the
// scenario's platform constants. A nil PolicyFactory means "no coordination
// layer at all" (the uncoordinated baseline).
type PolicyFactory func(m *core.PerfModel) core.Policy

// Predefined factories.
var (
	Uncoordinated PolicyFactory // nil: no layer
	Interfere     PolicyFactory = func(*core.PerfModel) core.Policy { return core.InterferePolicy{} }
	FCFS          PolicyFactory = func(*core.PerfModel) core.Policy { return core.FCFSPolicy{} }
	Interrupt     PolicyFactory = func(*core.PerfModel) core.Policy { return core.InterruptPolicy{} }
)

// Dynamic returns a factory for CALCioM's adaptive policy under a metric.
func Dynamic(metric core.Metric, allowInterfere bool) PolicyFactory {
	return func(m *core.PerfModel) core.Policy {
		return core.DynamicPolicy{Metric: metric, Model: m, AllowInterfere: allowInterfere}
	}
}

// Delay returns a factory for the Fig. 12 delay/overlap tradeoff policy.
func Delay(overlap float64) PolicyFactory {
	return func(m *core.PerfModel) core.Policy {
		return core.DelayPolicy{Overlap: overlap, Model: m}
	}
}

// Result is the outcome of one run.
type Result struct {
	IOTime    []float64 // per app: observed I/O time summed over phases
	Stats     []*ior.Stats
	Decisions []core.DecisionRecord
	Makespan  float64 // last I/O completion time
}

// Model returns the performance model for the scenario's platform.
func (sc Scenario) Model() *core.PerfModel { return sc.Spec().Model() }

// Run executes the scenario once with each app's I/O phase starting at the
// given absolute time.
func (sc Scenario) Run(factory PolicyFactory, starts []float64) Result {
	return sc.RunWithTimeline(factory, starts, nil)
}

// RunWithTimeline is Run with an optional interval recorder for Gantt
// rendering. The recorder must not be shared between concurrent runs.
func (sc Scenario) RunWithTimeline(factory PolicyFactory, starts []float64, rec *timeline.Recorder) Result {
	return sc.RunOn(platform.NewPool(), factory, starts, rec)
}

// RunOn executes the scenario on a caller-provided pool, reusing its cached
// platform when the pool has run this scenario (with this coordination
// mode) before. A harness that re-runs one scenario — a sweep worker, a
// what-if loop — holds one pool and stops paying per-run platform
// construction; results are bit-identical to a fresh platform. One pool
// must not mix policy families (see platform.Pool), and Result.Stats
// aliases the pooled runners' statistics: it is valid until the pool runs
// the same spec again (IOTime, Decisions and Makespan are snapshots and
// always remain valid).
func (sc Scenario) RunOn(pool *platform.Pool, factory PolicyFactory, starts []float64, rec *timeline.Recorder) Result {
	if len(starts) != len(sc.Apps) {
		panic("delta: starts length mismatch")
	}
	pl := pool.Acquire(sc.Spec(), factory)
	end := pl.Run(starts, rec)

	res := Result{Makespan: end}
	for _, r := range pl.Runners {
		res.IOTime = append(res.IOTime, r.Stats.TotalIOTime())
		res.Stats = append(res.Stats, &r.Stats)
	}
	if pl.Layer != nil {
		res.Decisions = pl.Layer.Log()
	}
	return res
}

// Solo runs application i alone (starting at 0, uncoordinated) and returns
// its observed I/O time — the T_alone calibration for interference factors.
func (sc Scenario) Solo(i int) float64 {
	return sc.SoloOn(platform.NewPool(), i)
}

// SoloOn is Solo on a reused pool: the solo platform for app i is cached
// alongside any other specs the pool has built (see RunOn).
func (sc Scenario) SoloOn(pool *platform.Pool, i int) float64 {
	solo := sc
	solo.Apps = sc.Apps[i : i+1 : i+1]
	return solo.RunOn(pool, nil, soloStart[:], nil).IOTime[0]
}

// soloTimeOn is SoloOn without building a Result: the Sweeper's
// steady-state calibration path, allocation-free on a warm pool.
func (sc Scenario) soloTimeOn(pool *platform.Pool, i int) float64 {
	solo := sc
	solo.Apps = sc.Apps[i : i+1 : i+1]
	pl := pool.Acquire(solo.Spec(), nil)
	pl.Run(soloStart[:], nil)
	return pl.Runners[0].Stats.TotalIOTime()
}

// soloStart is the shared zero start vector of every solo calibration.
var soloStart = [1]float64{0}

// Series is a swept ∆-graph for a two-application scenario under one policy.
type Series struct {
	Policy  string
	DT      []float64
	TimeA   []float64 // observed I/O time of app A (starts at max(0,-dt))
	TimeB   []float64 // observed I/O time of app B (starts at max(0,+dt))
	FactorA []float64 // TimeA / SoloA
	FactorB []float64
	SoloA   float64
	SoloB   float64
	// CPUPerCore is the machine-wide f/Σcores for each dt (Fig. 11 axis).
	CPUPerCore []float64
}

// policyName resolves a factory's display name.
func policyName(sc Scenario, factory PolicyFactory) string {
	if factory == nil {
		return "uncoordinated"
	}
	return factory(sc.Model()).Name()
}

// Sweep runs the two-app scenario at every dt under the policy. dt > 0
// means B starts after A, matching the paper's convention. It is the
// one-shot convenience over a fresh Sweeper; harnesses that sweep one
// policy family repeatedly (parameter studies, benchmarks) should hold a
// Sweeper so the per-sweep platform construction amortizes away too.
func (sc Scenario) Sweep(factory PolicyFactory, dts []float64) Series {
	return NewSweeper().Sweep(sc, factory, dts)
}

// Sweeper is a persistent ∆-sweep executor: it owns the solo-calibration
// pool, and a set of persistent worker goroutines (one platform pool each)
// fed per sweep through a channel, all reused across Sweep calls — a
// repeated sweep pays neither platform construction, solo recalibration nor
// worker-goroutine spawning; the steady-state SweepInto performs zero
// allocations (TestSweeperSteadyStateAllocs). Results are bit-identical to
// a fresh Sweep.
//
// Like platform.Pool, a Sweeper cannot distinguish policy constructors: use
// one Sweeper per policy family (the pools would otherwise hand a platform
// built for one policy to a sweep of another). A Sweeper is not
// goroutine-safe; one Sweep runs at a time. Close releases the worker
// goroutines; it is optional — an abandoned Sweeper's workers are reclaimed
// by a GC cleanup — but a Sweeper must not sweep after Close.
type Sweeper struct {
	calib *platform.Pool // solo calibrations, shared across sweeps
	ws    *workerSet     // persistent workers; separate allocation so the
	// GC cleanup below can close them without keeping the Sweeper alive

	// Per-sweep context, reused so waking the workers allocates nothing.
	job  sweepJob
	wg   sync.WaitGroup
	next atomic.Int64

	cleanup runtime.Cleanup
}

// workerSet owns the worker wake channels. It lives outside the Sweeper so
// runtime.AddCleanup can reference it after the Sweeper becomes
// unreachable.
type workerSet struct {
	chans  []chan *sweepJob
	closed bool
}

func (ws *workerSet) close() {
	if ws.closed {
		return
	}
	ws.closed = true
	for _, ch := range ws.chans {
		close(ch)
	}
}

// sweepJob is one sweep's shared context: workers pull point indices off
// the owner's counter and write results straight into the Series.
type sweepJob struct {
	sw             *Sweeper
	spec           platform.Spec
	factory        PolicyFactory
	dts            []float64
	s              *Series
	coresA, coresB float64
}

// run executes sweep points on one worker's pooled platform until the
// shared counter runs out. Every point is its own deterministic run, so
// results are independent of the worker count and of scheduling order.
func (job *sweepJob) run(pool *platform.Pool) {
	pl := pool.Acquire(job.spec, job.factory)
	var starts [2]float64
	n := len(job.dts)
	s := job.s
	for {
		k := int(job.sw.next.Add(1)) - 1
		if k >= n {
			return
		}
		dt := job.dts[k]
		starts[0], starts[1] = 0, dt
		if dt < 0 {
			starts[0], starts[1] = -dt, 0
		}
		pl.Run(starts[:], nil)
		ta := pl.Runners[0].Stats.TotalIOTime()
		tb := pl.Runners[1].Stats.TotalIOTime()
		s.TimeA[k] = ta
		s.TimeB[k] = tb
		s.FactorA[k] = ta / s.SoloA
		s.FactorB[k] = tb / s.SoloB
		// f/Σcores inlined (metrics.Report.CPUSecondsPerCore for two
		// apps) so the inner loop stays scratch-free.
		s.CPUPerCore[k] = (job.coresA*ta + job.coresB*tb) / (job.coresA + job.coresB)
	}
}

// NewSweeper returns an empty executor. Workers spawn on first use.
func NewSweeper() *Sweeper {
	sw := &Sweeper{calib: platform.NewPool(), ws: &workerSet{}}
	sw.cleanup = runtime.AddCleanup(sw, func(ws *workerSet) { ws.close() }, sw.ws)
	return sw
}

// Close stops the persistent worker goroutines. Optional (see Sweeper);
// idempotent; the Sweeper must not sweep afterwards.
func (sw *Sweeper) Close() {
	sw.cleanup.Stop()
	sw.ws.close()
}

// ensureWorkers grows the persistent worker set to n goroutines, each with
// its own platform pool.
func (sw *Sweeper) ensureWorkers(n int) {
	if sw.ws.closed {
		panic("delta: Sweeper used after Close")
	}
	for len(sw.ws.chans) < n {
		wake := make(chan *sweepJob)
		sw.ws.chans = append(sw.ws.chans, wake)
		go func(wake <-chan *sweepJob, pool *platform.Pool) {
			for job := range wake {
				job.run(pool)
				job.sw.wg.Done()
			}
		}(wake, platform.NewPool())
	}
}

// Sweep runs the scenario at every dt under the policy on the reused
// platforms, returning a freshly allocated Series.
func (sw *Sweeper) Sweep(sc Scenario, factory PolicyFactory, dts []float64) Series {
	var s Series
	sw.SweepInto(&s, sc, factory, dts)
	return s
}

// grow returns v resized to n, reusing its backing array when possible.
func grow(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// SweepInto is Sweep writing into a caller-owned Series, reusing its slice
// backing: a harness that sweeps in a loop with one Series allocates
// nothing at all after the first call — the persistent workers (at most one
// per OS thread) are woken through their feed channels with a pointer to
// the Sweeper's reused job context, pull points off a shared counter, and
// re-arm their pooled platforms per point. Every point is its own
// deterministic run, so results are independent of the worker count and of
// scheduling order.
func (sw *Sweeper) SweepInto(s *Series, sc Scenario, factory PolicyFactory, dts []float64) {
	if len(sc.Apps) != 2 {
		panic(fmt.Sprintf("delta: Sweep needs exactly 2 apps, got %d", len(sc.Apps)))
	}
	n := len(dts)
	s.Policy = policyName(sc, factory)
	s.DT = append(s.DT[:0], dts...)
	s.SoloA = sc.soloTimeOn(sw.calib, 0)
	s.SoloB = sc.soloTimeOn(sw.calib, 1)
	s.TimeA = grow(s.TimeA, n)
	s.TimeB = grow(s.TimeB, n)
	s.FactorA = grow(s.FactorA, n)
	s.FactorB = grow(s.FactorB, n)
	s.CPUPerCore = grow(s.CPUPerCore, n)

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	sw.ensureWorkers(workers)
	sw.job = sweepJob{
		sw:      sw,
		spec:    sc.Spec(),
		factory: factory,
		dts:     dts,
		s:       s,
		coresA:  float64(sc.Apps[0].Procs),
		coresB:  float64(sc.Apps[1].Procs),
	}
	sw.next.Store(0)
	sw.wg.Add(workers)
	for i := 0; i < workers; i++ {
		sw.ws.chans[i] <- &sw.job
	}
	sw.wg.Wait()
	// Drop the references to the caller's Series, dts and factory: a
	// long-lived Sweeper must not pin the last sweep's memory.
	sw.job = sweepJob{}
}

// Expected computes the paper's analytic "expected interference" ∆-graph:
// each application's I/O phase is treated as a unit of service equal to its
// solo time, and overlapping phases progress under equal proportional
// sharing (two overlapped apps each run at half speed). This is the
// piecewise-linear ∆ the graphs are named after: a peak of 2x the solo time
// at dt = 0, decaying to the solo time once the offset exceeds the phase
// length. Real systems can interfere less than this model (Figs. 7b, 8a —
// comm phases and injection limits leave headroom) or more (cache effects,
// Fig. 3).
func (sc Scenario) Expected(dts []float64) Series {
	if len(sc.Apps) != 2 {
		panic("delta: Expected needs exactly 2 apps")
	}
	calib := platform.NewPool()
	s := Series{
		Policy: "expected",
		DT:     append([]float64(nil), dts...),
		SoloA:  sc.SoloOn(calib, 0),
		SoloB:  sc.SoloOn(calib, 1),
	}
	flows := []fluid.Flow{
		{Work: s.SoloA, Weight: 1},
		{Work: s.SoloB, Weight: 1},
	}
	var solver fluid.Solver // water-fill scratch shared across the sweep
	starts := make([]float64, 2)
	for _, dt := range dts {
		startA, startB := 0.0, dt
		if dt < 0 {
			startA, startB = -dt, 0
		}
		starts[0], starts[1] = startA, startB
		fin := solver.StaggeredFinishTimes(1, flows, starts)
		ta := fin[0] - startA
		tb := fin[1] - startB
		s.TimeA = append(s.TimeA, ta)
		s.TimeB = append(s.TimeB, tb)
		s.FactorA = append(s.FactorA, ta/s.SoloA)
		s.FactorB = append(s.FactorB, tb/s.SoloB)
		f := (float64(sc.Apps[0].Procs)*ta + float64(sc.Apps[1].Procs)*tb) /
			float64(sc.Apps[0].Procs+sc.Apps[1].Procs)
		s.CPUPerCore = append(s.CPUPerCore, f)
	}
	return s
}
